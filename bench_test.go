package parbs

// One testing.B benchmark per table and figure of the paper's evaluation.
// Each bench regenerates its artifact through the experiment registry at
// reduced (quick) fidelity and reports the headline metrics; the full-
// fidelity reproduction is `go run ./cmd/experiments`.
//
// Micro-benchmarks of the substrates (device command issue, scheduler
// decision, trace generation) follow the experiment benches.

import (
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/exp"
	"repro/internal/memctrl"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// benchExperiment runs the registered experiment once per iteration.
func benchExperiment(b *testing.B, id string) {
	e, err := exp.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	x := exp.NewContext(true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb, err := e.Run(x)
		if err != nil {
			b.Fatal(err)
		}
		if len(tb.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

func BenchmarkFig1ConceptOverlap(b *testing.B)     { benchExperiment(b, "F1") }
func BenchmarkFig2ConceptParallelism(b *testing.B) { benchExperiment(b, "F2") }
func BenchmarkFig3WorkedExample(b *testing.B)      { benchExperiment(b, "F3") }
func BenchmarkTable1StateBits(b *testing.B)        { benchExperiment(b, "T1") }
func BenchmarkTable2Baseline(b *testing.B)         { benchExperiment(b, "T2") }
func BenchmarkTable3Characterization(b *testing.B) { benchExperiment(b, "T3") }
func BenchmarkFig5CaseStudyI(b *testing.B)         { benchExperiment(b, "F5") }
func BenchmarkFig6CaseStudyII(b *testing.B)        { benchExperiment(b, "F6") }
func BenchmarkFig7FourLbm(b *testing.B)            { benchExperiment(b, "F7") }
func BenchmarkFig8Avg4Core(b *testing.B)           { benchExperiment(b, "F8") }
func BenchmarkFig9EightCore(b *testing.B)          { benchExperiment(b, "F9") }
func BenchmarkFig10SixteenCore(b *testing.B)       { benchExperiment(b, "F10") }
func BenchmarkTable4Summary(b *testing.B)          { benchExperiment(b, "T4") }
func BenchmarkFig11MarkingCap(b *testing.B)        { benchExperiment(b, "F11") }
func BenchmarkFig12BatchingChoice(b *testing.B)    { benchExperiment(b, "F12") }
func BenchmarkFig13RankingSchemes(b *testing.B)    { benchExperiment(b, "F13") }
func BenchmarkFig14Priorities(b *testing.B)        { benchExperiment(b, "F14") }

// BenchmarkSimulatedCyclesPerSecond measures raw simulator speed: DRAM
// cycles simulated per wall second for a 4-core intensive mix.
func BenchmarkSimulatedCyclesPerSecond(b *testing.B) {
	cfg := sim.DefaultConfig(4)
	cfg.WarmupCPUCycles = 0
	cfg.MeasureCPUCycles = 500_000
	mix := workload.CaseStudyI()
	b.ResetTimer()
	var cycles int64
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(cfg, mix, sched.NewPARBSDefault())
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.DRAMCycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "DRAMcycles/s")
}

// BenchmarkSimulatedCyclesPerSecondTicked measures the same run with the
// next-event clock disabled (Config.ForceTicked): every DRAM cycle is
// evaluated. The gap to BenchmarkSimulatedCyclesPerSecond isolates the
// event clock's contribution from controller-level optimizations, which
// benefit both modes equally.
func BenchmarkSimulatedCyclesPerSecondTicked(b *testing.B) {
	cfg := sim.DefaultConfig(4)
	cfg.WarmupCPUCycles = 0
	cfg.MeasureCPUCycles = 500_000
	cfg.ForceTicked = true
	mix := workload.CaseStudyI()
	b.ResetTimer()
	var cycles int64
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(cfg, mix, sched.NewPARBSDefault())
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.DRAMCycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "DRAMcycles/s")
}

// BenchmarkIdleSingleCore measures the next-event clock on two single-core
// extremes, each against a ForceTicked companion that evaluates every
// DRAM cycle. The clock may only jump when every core is memory-blocked
// (a compute-busy core needs evaluation each cycle), so the two workloads
// bound its range:
//
//   - povray (0.03 MPKI): DRAM is idle for thousands of cycles between
//     requests, but the core is compute-bound and almost never blocks —
//     skip rate is under 1% and the residual win is controller-tick
//     elision, not cycle jumping.
//   - matlab (78 MPKI stream): the core is memory-stalled most of the
//     time, so the clock jumps across the known DRAM-latency intervals —
//     the skip-rate win the event clock was built for.
//
// BENCH_4.json records both ratios; the saturated 4-core numbers are in
// BENCH_2.json.
func BenchmarkIdleSingleCore(b *testing.B) {
	for _, wl := range []string{"povray", "matlab"} {
		for _, bc := range []struct {
			name   string
			ticked bool
		}{{"event-clock", false}, {"ticked", true}} {
			b.Run(wl+"/"+bc.name, func(b *testing.B) {
				cfg := sim.DefaultConfig(1)
				cfg.WarmupCPUCycles = 0
				cfg.MeasureCPUCycles = 2_000_000
				cfg.ForceTicked = bc.ticked
				mix := workload.Mix{Name: "idle", Benchmarks: []workload.Profile{workload.MustByName(wl)}}
				b.ResetTimer()
				var cycles, skipped int64
				for i := 0; i < b.N; i++ {
					res, err := sim.Run(cfg, mix, sched.NewPARBSDefault())
					if err != nil {
						b.Fatal(err)
					}
					cycles += res.DRAMCycles
					skipped += res.SkippedCycles
				}
				b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "DRAMcycles/s")
				b.ReportMetric(100*float64(skipped)/float64(cycles), "skipped%")
			})
		}
	}
}

// BenchmarkIndependentChannels measures the sharded Independent-channel
// engine on the paper's largest configuration (16 cores, 4 channels),
// sequential (Parallelism 1) vs parallel (Parallelism 4). The simulated
// schedule is byte-identical in both; the gap is pure wall-clock win from
// spreading the per-channel shards across worker goroutines, and collapses
// to barrier overhead when GOMAXPROCS is 1.
func BenchmarkIndependentChannels(b *testing.B) {
	for _, bc := range []struct {
		name string
		par  int
	}{{"sequential", 1}, {"parallel-4", 4}} {
		b.Run(bc.name, func(b *testing.B) {
			cfg := sim.DefaultConfig(16)
			cfg.WarmupCPUCycles = 0
			cfg.MeasureCPUCycles = 500_000
			cfg.Geometry.Channels = 4
			cfg.Parallelism = bc.par
			mix := workload.RandomMixes(1, 16, 1)[0]
			b.ResetTimer()
			var cycles int64
			for i := 0; i < b.N; i++ {
				res, err := sim.RunIndependent(cfg, mix, func() memctrl.Policy {
					return sched.NewPARBSDefault()
				})
				if err != nil {
					b.Fatal(err)
				}
				cycles += res.DRAMCycles
			}
			b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "DRAMcycles/s")
		})
	}
}

// BenchmarkSchedulers compares per-run cost of each policy.
func BenchmarkSchedulers(b *testing.B) {
	for _, name := range sched.Names() {
		b.Run(name, func(b *testing.B) {
			cfg := sim.DefaultConfig(4)
			cfg.WarmupCPUCycles = 0
			cfg.MeasureCPUCycles = 200_000
			mix := workload.CaseStudyI()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pol, err := sched.ByName(name)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := sim.Run(cfg, mix, pol); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDeviceIssue measures the DRAM device's command legality check
// and issue path.
func BenchmarkDeviceIssue(b *testing.B) {
	dev, err := dram.NewDevice(dram.DDR2_800(), dram.DefaultGeometry())
	if err != nil {
		b.Fatal(err)
	}
	now := int64(0)
	issued := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bank := issued % 8
		row := int64(issued % 16)
		cmd := dev.NextCommand(bank, row, false)
		if dev.CanIssue(now, cmd, bank, row) {
			dev.Issue(now, cmd, bank, row)
			issued++
		}
		now++
	}
}

// BenchmarkAbstractBatch measures the Figure 3 abstract model.
func BenchmarkAbstractBatch(b *testing.B) {
	batch := core.Figure3Batch()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, avg := batch.Simulate(core.AbsPARBS); avg != 3.125 {
			b.Fatal("wrong result")
		}
	}
}

// BenchmarkTraceGeneration measures synthetic trace throughput.
func BenchmarkTraceGeneration(b *testing.B) {
	g := dram.DefaultGeometry()
	for _, name := range []string{"libquantum", "mcf"} {
		b.Run(name, func(b *testing.B) {
			src := workload.MustByName(name).Trace(0, g, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				src.Next()
			}
		})
	}
}

// BenchmarkPolicyDecision measures one scheduling decision (candidate
// comparison) for FR-FCFS and PAR-BS over increasing buffer occupancy.
func BenchmarkPolicyDecision(b *testing.B) {
	for _, occupancy := range []int{16, 64, 128} {
		b.Run("occupancy-"+strconv.Itoa(occupancy), func(b *testing.B) {
			dev, err := dram.NewDevice(dram.DDR2_800(), dram.DefaultGeometry())
			if err != nil {
				b.Fatal(err)
			}
			pol := sched.NewPARBSDefault()
			ctrl, err := memctrl.NewController(dev, pol, memctrl.DefaultConfig(4))
			if err != nil {
				b.Fatal(err)
			}
			g := dev.Geometry()
			row := int64(0)
			// Keep occupancy constant: each completion re-enqueues a fresh
			// request, so every Tick scans a full buffer.
			ctrl.SetOnComplete(func(r *memctrl.Request, end int64) {
				row++
				addr := g.Unmap(dram.Location{Bank: int(row) % 8, Row: row % 1024, Col: 0})
				ctrl.EnqueueRead(int(row)%4, addr, end)
			})
			for i := 0; i < occupancy; i++ {
				addr := g.Unmap(dram.Location{Bank: i % 8, Row: int64(i), Col: 0})
				ctrl.EnqueueRead(i%4, addr, 0)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ctrl.Tick(int64(i)) // includes candidate scan + issue
			}
		})
	}
}
