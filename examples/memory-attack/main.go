// Memory-attack: demonstrate the denial-of-memory-service scenario that
// motivates the paper (Moscibroda & Mutlu, USENIX Security 2007, cited as
// [22]): a stream micro-attacker with perfect row-buffer locality starves
// co-scheduled victims under FR-FCFS, while PAR-BS's request batching
// bounds the damage.
//
//	go run ./examples/memory-attack
package main

import (
	"fmt"
	"log"

	parbs "repro"
)

func main() {
	system := parbs.DefaultSystem(4)
	// matlab is the most aggressive profile in the suite: 78 misses per
	// 1000 instructions at a 93.7% row-buffer hit rate — an excellent
	// stand-in for the hand-written stream attacker of the security paper.
	// The victims are ordinary programs with poor row-buffer locality.
	w, err := parbs.WorkloadFromNames("matlab", "omnetpp", "hmmer", "sjeng")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("attacker: matlab-like stream (93.7% row hits, 78 MPKI)")
	fmt.Println("victims:  omnetpp, hmmer, sjeng (low row-buffer locality)")

	for _, name := range []string{"FR-FCFS", "PAR-BS"} {
		s, err := parbs.SchedulerByName(name)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := parbs.Run(system, w, s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s\n", rep)
		worst := 0.0
		for _, t := range rep.Threads[1:] {
			if t.MemSlowdown > worst {
				worst = t.MemSlowdown
			}
		}
		fmt.Printf("attacker slowdown %.2f vs worst victim %.2f (ratio %.1fx)\n",
			rep.Threads[0].MemSlowdown, worst, worst/rep.Threads[0].MemSlowdown)
	}
	fmt.Println("\nbatching bounds how long the attacker's row-hit stream can capture a bank,")
	fmt.Println("so victims make steady progress under PAR-BS (Section 4.3 of the paper)")
}
