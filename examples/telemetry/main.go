// Telemetry and progress reporting with the context-aware Run API: run the
// paper's Case Study I under PAR-BS with a telemetry collector attached,
// print heartbeats while it runs, and write the per-epoch time series
// (queue occupancy, IPC/MCPI, slowdown, batch dynamics, bank utilization,
// latency histograms) as a versioned JSON report.
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	parbs "repro"
)

func main() {
	sys := parbs.DefaultSystem(4)
	sys.Device = parbs.DDR2_800
	w := parbs.CaseStudyI()

	// Cancel the whole run — including the alone baselines — if it ever
	// exceeds a wall-clock budget.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	tel := parbs.NewTelemetry(parbs.TelemetryConfig{EpochCycles: 10240})
	report, err := parbs.RunContext(ctx, sys, w, parbs.NewPARBS(parbs.PARBSOptions{}),
		parbs.WithTelemetry(tel),
		parbs.WithProgress(func(p parbs.Progress) {
			if p.CPUCycles%500_000 == 0 {
				fmt.Printf("  %-16s %4.0f%% (%d commands issued)\n",
					p.Phase, 100*float64(p.CPUCycles)/float64(p.TotalCPUCycles), p.CommandsIssued)
			}
		}))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println(report)

	data, err := tel.JSON()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := os.WriteFile("telemetry.json", data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote telemetry.json: %d epochs sampled\n", tel.Epochs())
}
