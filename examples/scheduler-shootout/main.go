// Scheduler-shootout: run every scheduler the paper evaluates on a random
// category-balanced workload set and rank them by fairness and throughput,
// a miniature of the paper's Figure 8.
//
//	go run ./examples/scheduler-shootout [-n workloads]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"sort"

	parbs "repro"
)

func main() {
	n := flag.Int("n", 6, "number of random 4-core workloads")
	flag.Parse()

	system := parbs.DefaultSystem(4)
	system.MeasureCycles = 1_000_000
	workloads := parbs.RandomWorkloads(*n, 4, 42)

	type agg struct {
		name        string
		unfair, wsp float64
		count       int
	}
	results := map[string]*agg{}
	for _, name := range parbs.SchedulerNames() {
		results[name] = &agg{name: name}
	}

	for _, w := range workloads {
		fmt.Printf("workload %v\n", w.Benchmarks())
		for _, name := range parbs.SchedulerNames() {
			s, err := parbs.SchedulerByName(name)
			if err != nil {
				log.Fatal(err)
			}
			rep, err := parbs.Run(system, w, s)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-8s unfairness %5.2f  weighted %6.3f  hmean %6.3f\n",
				name, rep.Unfairness, rep.WeightedSpeedup, rep.HmeanSpeedup)
			a := results[name]
			a.unfair += math.Log(rep.Unfairness)
			a.wsp += math.Log(rep.WeightedSpeedup)
			a.count++
		}
	}

	var order []*agg
	for _, a := range results {
		order = append(order, a)
	}
	sort.Slice(order, func(i, j int) bool { return order[i].unfair < order[j].unfair })
	fmt.Printf("\nGMEAN over %d workloads (best fairness first):\n", *n)
	for _, a := range order {
		fmt.Printf("  %-8s unfairness %5.2f  weighted speedup %6.3f\n",
			a.name, math.Exp(a.unfair/float64(a.count)), math.Exp(a.wsp/float64(a.count)))
	}
}
