// Custom-scheduler: implement a new DRAM scheduling policy against the
// library's substrate and race it against the paper's schedulers. The demo
// policy, "oldest-thread-first", services the thread with the oldest
// outstanding request first — a plausible-sounding fairness idea that the
// comparison shows is no match for batching + ranking.
//
//	go run ./examples/custom-scheduler
package main

import (
	"fmt"
	"log"

	parbs "repro"
)

func main() {
	// The custom policy: pick the candidate whose thread currently owns the
	// globally oldest request; break ties row-hit first, then by age.
	oldest := map[int]int64{} // thread -> oldest outstanding request ID
	outstanding := map[int64]int{}
	policy := parbs.CustomPolicy{
		Name: "oldest-thread-first",
		OnEnqueue: func(r parbs.RequestView, now int64) {
			outstanding[r.ID] = r.Thread
			if cur, ok := oldest[r.Thread]; !ok || r.ID < cur {
				oldest[r.Thread] = r.ID
			}
		},
		OnComplete: func(r parbs.RequestView, now int64) {
			delete(outstanding, r.ID)
			if oldest[r.Thread] == r.ID {
				// Recompute the thread's oldest outstanding request.
				best := int64(-1)
				for id, th := range outstanding {
					if th == r.Thread && (best < 0 || id < best) {
						best = id
					}
				}
				if best < 0 {
					delete(oldest, r.Thread)
				} else {
					oldest[r.Thread] = best
				}
			}
		},
		Less: func(a, b parbs.RequestView) bool {
			ao, bo := oldest[a.Thread], oldest[b.Thread]
			if ao != bo {
				return ao < bo
			}
			if a.RowHit != b.RowHit {
				return a.RowHit
			}
			return a.ID < b.ID
		},
	}
	custom, err := parbs.NewCustomScheduler(policy)
	if err != nil {
		log.Fatal(err)
	}

	system := parbs.DefaultSystem(4)
	workload := parbs.CaseStudyI()
	contenders := []parbs.Scheduler{custom}
	for _, name := range []string{"FR-FCFS", "STFM", "PAR-BS"} {
		s, err := parbs.SchedulerByName(name)
		if err != nil {
			log.Fatal(err)
		}
		contenders = append(contenders, s)
	}

	fmt.Printf("%-22s %12s %10s %10s\n", "scheduler", "unfairness", "Wspeedup", "Hspeedup")
	for _, s := range contenders {
		rep, err := parbs.Run(system, workload, s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %12.2f %10.3f %10.3f\n", rep.Scheduler, rep.Unfairness, rep.WeightedSpeedup, rep.HmeanSpeedup)
	}
	fmt.Println("\nswap in your own Less function to prototype a scheduler in a few lines")
}
