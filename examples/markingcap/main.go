// Markingcap: sweep PAR-BS's Marking-Cap on the memory-intensive case
// study, reproducing the trade-off of the paper's Figure 11 — tiny caps
// destroy row-buffer locality and throughput, huge caps re-introduce
// FR-FCFS-like unfairness, and the paper's default of 5 balances both.
//
//	go run ./examples/markingcap
package main

import (
	"fmt"
	"log"

	parbs "repro"
)

func main() {
	system := parbs.DefaultSystem(4)
	workload := parbs.CaseStudyI()

	fmt.Printf("%-8s %12s %10s %10s\n", "cap", "unfairness", "Wspeedup", "Hspeedup")
	for _, cap := range []int{1, 2, 5, 10, 20, -1} {
		report, err := parbs.Run(system, workload, parbs.NewPARBS(parbs.PARBSOptions{MarkingCap: cap}))
		if err != nil {
			log.Fatal(err)
		}
		label := fmt.Sprintf("c=%d", cap)
		if cap == -1 {
			label = "no-cap"
		}
		fmt.Printf("%-8s %12.2f %10.3f %10.3f\n", label, report.Unfairness, report.WeightedSpeedup, report.HmeanSpeedup)
	}
	fmt.Println("\nthe paper's default (cap=5) balances locality against batch turnaround")
}
