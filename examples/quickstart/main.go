// Quickstart: run the paper's memory-intensive case study under FR-FCFS
// and PAR-BS and compare fairness and throughput.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	parbs "repro"
)

func main() {
	system := parbs.DefaultSystem(4)
	workload := parbs.CaseStudyI() // libquantum + mcf + GemsFDTD + xalancbmk

	fmt.Printf("workload %v on a 4-core CMP sharing one DRAM channel\n\n", workload.Benchmarks())

	baseline, err := parbs.Run(system, workload, parbs.NewFRFCFS())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(baseline)

	ours, err := parbs.Run(system, workload, parbs.NewPARBS(parbs.PARBSOptions{}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ours)

	fmt.Printf("PAR-BS vs FR-FCFS: unfairness %.2f -> %.2f, weighted speedup %+.1f%%, hmean speedup %+.1f%%\n",
		baseline.Unfairness, ours.Unfairness,
		100*(ours.WeightedSpeedup/baseline.WeightedSpeedup-1),
		100*(ours.HmeanSpeedup/baseline.HmeanSpeedup-1))
}
