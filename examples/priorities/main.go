// Priorities: reproduce the scenario of the paper's Figure 14 — a
// latency-critical thread (omnetpp) shares the DRAM system with three
// background threads that the system software marks purely opportunistic.
// PAR-BS then services the background threads only when the memory system
// would otherwise be idle.
//
//	go run ./examples/priorities
package main

import (
	"fmt"
	"log"

	parbs "repro"
)

func main() {
	system := parbs.DefaultSystem(4)
	workload, err := parbs.WorkloadFromNames("libquantum", "milc", "omnetpp", "astar")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("omnetpp is latency-critical; libquantum, milc and astar are background work")

	// Without priorities, the memory-intensive background threads interfere.
	equal, err := parbs.Run(system, workload, parbs.NewPARBS(parbs.PARBSOptions{}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nequal priorities:\n%v", equal)

	// Opportunistic background: never marked, lowest unmarked priority.
	pri := parbs.NewPARBS(parbs.PARBSOptions{
		Priorities: []int{parbs.Opportunistic, parbs.Opportunistic, 1, parbs.Opportunistic},
	})
	isolated, err := parbs.Run(system, workload, pri)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nomnetpp priority 1, rest opportunistic:\n%v", isolated)

	// Weighted service is available on the QoS baselines for comparison.
	nfq, err := parbs.Run(system, workload, parbs.NewNFQ(1, 1, 8192, 1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nNFQ with a 8192x share for omnetpp (the paper's approximation):\n%v", nfq)

	fmt.Printf("\nomnetpp slowdown: %.2f (equal) -> %.2f (PAR-BS opportunistic) vs %.2f (NFQ weighted)\n",
		equal.Threads[2].MemSlowdown, isolated.Threads[2].MemSlowdown, nfq.Threads[2].MemSlowdown)
}
