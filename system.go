package parbs

import (
	"fmt"

	"repro/internal/dram"
	"repro/internal/sim"
	"repro/internal/workload"
)

// ChannelMode selects how a multi-channel memory system is organized.
// Use ParseChannelMode for flag strings.
type ChannelMode string

// Channel organizations.
const (
	// Lockstep gangs all channels into one wide command stream under a
	// single scheduler — the paper's organization (Section 6), and the
	// default (the zero value "" selects it).
	Lockstep ChannelMode = "lockstep"
	// Independent gives every channel its own controller and its own fresh
	// scheduler instance, with cache lines spread across channels — the
	// organization of most contemporary multi-channel controllers. In this
	// mode the channels are execution shards and the run can execute them
	// on parallel worker goroutines (WithParallelism) with byte-identical
	// results.
	Independent ChannelMode = "independent"
)

// ChannelModeNames lists the valid channel modes.
func ChannelModeNames() []string { return []string{string(Lockstep), string(Independent)} }

// ParseChannelMode maps a flag string to a ChannelMode. The empty string
// selects Lockstep.
func ParseChannelMode(s string) (ChannelMode, error) {
	switch ChannelMode(s) {
	case "", Lockstep:
		return Lockstep, nil
	case Independent:
		return Independent, nil
	default:
		return "", fmt.Errorf("parbs: unknown channel mode %q (want one of %v)", s, ChannelModeNames())
	}
}

// System describes the simulated CMP and memory system. Construct with
// DefaultSystem and adjust fields as needed.
type System struct {
	// Cores is the number of cores (one thread per core).
	Cores int
	// Channels is the number of DRAM channels; 0 scales with cores as in
	// the paper (1, 2, 4 for 4, 8, 16 cores). Positive values may not
	// exceed Cores — the paper scales channels strictly slower than cores,
	// and more channels than cores cannot be kept busy.
	Channels int
	// ChannelMode organizes the channels: Lockstep (default) gangs them
	// under one scheduler as in the paper; Independent runs one scheduler
	// per channel (see ChannelMode).
	ChannelMode ChannelMode
	// Banks is the number of DRAM banks per channel (default 8).
	Banks int
	// MeasureCycles is the measured CPU-cycle budget (default 2M).
	MeasureCycles int64
	// WarmupCycles is simulated and discarded first (default 200k).
	WarmupCycles int64
	// Seed drives trace generation.
	Seed int64
	// Device selects the DRAM generation: DDR2_800 (default, the paper's
	// baseline) or DDR3_1333. Use ParseDevice for flag strings.
	Device Device
}

// DefaultSystem returns the paper's baseline system for the core count.
func DefaultSystem(cores int) System {
	return System{Cores: cores, Seed: 1}
}

// Validate reports whether the system description is usable, with a
// descriptive error naming the offending field. Zero values mean "use the
// default" and are always valid; negative values are rejected rather than
// silently ignored. RunContext (via toSim) and the CLIs call it before
// simulating.
func (s System) Validate() error {
	switch {
	case s.Cores <= 0:
		return fmt.Errorf("parbs: system needs a positive core count, got %d", s.Cores)
	case s.Channels < 0:
		return fmt.Errorf("parbs: Channels must be >= 0 (0 scales with cores), got %d", s.Channels)
	case s.Channels > s.Cores:
		return fmt.Errorf("parbs: %d channels exceed %d cores; the paper scales channels 1/2/4 for 4/8/16 cores", s.Channels, s.Cores)
	case s.Banks < 0:
		return fmt.Errorf("parbs: Banks must be >= 0 (0 selects the default), got %d", s.Banks)
	case s.MeasureCycles < 0:
		return fmt.Errorf("parbs: MeasureCycles must be >= 0 (0 selects the default), got %d", s.MeasureCycles)
	case s.WarmupCycles < 0:
		return fmt.Errorf("parbs: WarmupCycles must be >= 0 (0 selects the default), got %d", s.WarmupCycles)
	}
	if _, err := ParseChannelMode(string(s.ChannelMode)); err != nil {
		return err
	}
	switch s.Device {
	case "", DDR2_800, DDR3_1333:
	default:
		return fmt.Errorf("parbs: unknown device %q (want one of %v)", s.Device, DeviceNames())
	}
	return nil
}

// toSim lowers the public System onto the internal configuration.
func (s System) toSim() (sim.Config, error) {
	if err := s.Validate(); err != nil {
		return sim.Config{}, err
	}
	cfg := sim.DefaultConfig(s.Cores)
	if s.Channels > 0 {
		cfg.Geometry.Channels = s.Channels
	}
	if s.Banks > 0 {
		cfg.Geometry.Banks = s.Banks
	}
	if s.MeasureCycles > 0 {
		cfg.MeasureCPUCycles = s.MeasureCycles
	}
	if s.WarmupCycles > 0 {
		cfg.WarmupCPUCycles = s.WarmupCycles
	}
	if s.Seed != 0 {
		cfg.Seed = s.Seed
	}
	switch s.Device {
	case "", DDR2_800:
		// baseline
	case DDR3_1333:
		cfg.Timing = dram.DDR3_1333()
		cfg.CPUCyclesPerDRAM = 6 // 4 GHz over a 667 MHz command clock
	}
	return cfg, nil
}

// Workload is a multiprogrammed workload: one benchmark per core.
type Workload struct {
	mix workload.Mix
}

// Name returns the workload's label.
func (w Workload) Name() string { return w.mix.Name }

// Benchmarks returns the benchmark names in core order.
func (w Workload) Benchmarks() []string { return workload.Names(w.mix.Benchmarks) }

// WorkloadFromNames builds a workload from Table 3 benchmark names
// (see BenchmarkNames).
func WorkloadFromNames(names ...string) (Workload, error) {
	m, err := workload.MixOf("custom", names...)
	return Workload{mix: m}, err
}

// CaseStudyI returns the paper's memory-intensive 4-core case study.
func CaseStudyI() Workload { return Workload{mix: workload.CaseStudyI()} }

// CaseStudyII returns the non-intensive 4-core case study.
func CaseStudyII() Workload { return Workload{mix: workload.CaseStudyII()} }

// CaseStudyIII returns four copies of lbm.
func CaseStudyIII() Workload { return Workload{mix: workload.CaseStudyIII()} }

// RandomWorkloads returns n category-balanced random workloads for the
// given core count, constructed as in the paper's Section 7.
func RandomWorkloads(n, cores int, seed int64) []Workload {
	ms := workload.RandomMixes(n, cores, seed)
	out := make([]Workload, len(ms))
	for i, m := range ms {
		out[i] = Workload{mix: m}
	}
	return out
}

// BenchmarkNames lists the 28 Table 3 benchmark names.
func BenchmarkNames() []string { return workload.Names(workload.Benchmarks()) }

// ThreadReport is one thread's outcome in a run.
type ThreadReport struct {
	// Benchmark is the profile name.
	Benchmark string
	// MemSlowdown is MCPI_shared / MCPI_alone (1.0 = unaffected).
	MemSlowdown float64
	// IPC is the thread's instructions per cycle in the shared run.
	IPC float64
	// BLP is the measured bank-level parallelism.
	BLP float64
	// RowHitRate is the fraction of reads serviced from an open row.
	RowHitRate float64
	// ASTPerReq is the average stall time per DRAM request, CPU cycles.
	ASTPerReq float64
}

// Report is the outcome of one shared run joined with alone baselines.
type Report struct {
	// Scheduler is the policy's name.
	Scheduler string
	// Threads holds per-thread outcomes in core order.
	Threads []ThreadReport
	// Unfairness is max/min memory slowdown (1.0 = perfectly fair).
	Unfairness float64
	// WeightedSpeedup is the paper's system throughput metric.
	WeightedSpeedup float64
	// HmeanSpeedup balances fairness and throughput.
	HmeanSpeedup float64
	// WorstCaseLatency is the largest read latency observed, CPU cycles.
	WorstCaseLatency int64
	// BusUtilization is the DRAM data bus utilization in [0,1].
	BusUtilization float64
}

// String renders the report as an aligned table.
func (r Report) String() string {
	s := fmt.Sprintf("scheduler %s: unfairness %.2f, weighted speedup %.3f, hmean speedup %.3f\n",
		r.Scheduler, r.Unfairness, r.WeightedSpeedup, r.HmeanSpeedup)
	for _, t := range r.Threads {
		s += fmt.Sprintf("  %-12s slowdown %5.2f  IPC %6.3f  BLP %5.2f  rbhit %5.3f  AST/req %7.1f\n",
			t.Benchmark, t.MemSlowdown, t.IPC, t.BLP, t.RowHitRate, t.ASTPerReq)
	}
	return s
}
