package parbs

import (
	"fmt"

	"repro/internal/dram"
	"repro/internal/sim"
	"repro/internal/workload"
)

// System describes the simulated CMP and memory system. Construct with
// DefaultSystem and adjust fields as needed.
type System struct {
	// Cores is the number of cores (one thread per core).
	Cores int
	// Channels is the number of lock-step DRAM channels; 0 scales with
	// cores as in the paper (1, 2, 4 for 4, 8, 16 cores).
	Channels int
	// Banks is the number of DRAM banks (default 8).
	Banks int
	// MeasureCycles is the measured CPU-cycle budget (default 2M).
	MeasureCycles int64
	// WarmupCycles is simulated and discarded first (default 200k).
	WarmupCycles int64
	// Seed drives trace generation.
	Seed int64
	// Device selects the DRAM generation: DDR2_800 (default, the paper's
	// baseline) or DDR3_1333. Use ParseDevice for flag strings.
	Device Device
}

// DefaultSystem returns the paper's baseline system for the core count.
func DefaultSystem(cores int) System {
	return System{Cores: cores, Seed: 1}
}

// toSim lowers the public System onto the internal configuration.
func (s System) toSim() (sim.Config, error) {
	if s.Cores <= 0 {
		return sim.Config{}, fmt.Errorf("parbs: system needs a positive core count, got %d", s.Cores)
	}
	cfg := sim.DefaultConfig(s.Cores)
	if s.Channels > 0 {
		cfg.Geometry.Channels = s.Channels
	}
	if s.Banks > 0 {
		cfg.Geometry.Banks = s.Banks
	}
	if s.MeasureCycles > 0 {
		cfg.MeasureCPUCycles = s.MeasureCycles
	}
	if s.WarmupCycles > 0 {
		cfg.WarmupCPUCycles = s.WarmupCycles
	}
	if s.Seed != 0 {
		cfg.Seed = s.Seed
	}
	switch s.Device {
	case "", DDR2_800:
		// baseline
	case DDR3_1333:
		cfg.Timing = dram.DDR3_1333()
		cfg.CPUCyclesPerDRAM = 6 // 4 GHz over a 667 MHz command clock
	default:
		return sim.Config{}, fmt.Errorf("parbs: unknown device %q (want one of %v)", s.Device, DeviceNames())
	}
	return cfg, nil
}

// Workload is a multiprogrammed workload: one benchmark per core.
type Workload struct {
	mix workload.Mix
}

// Name returns the workload's label.
func (w Workload) Name() string { return w.mix.Name }

// Benchmarks returns the benchmark names in core order.
func (w Workload) Benchmarks() []string { return workload.Names(w.mix.Benchmarks) }

// WorkloadFromNames builds a workload from Table 3 benchmark names
// (see BenchmarkNames).
func WorkloadFromNames(names ...string) (Workload, error) {
	m, err := workload.MixOf("custom", names...)
	return Workload{mix: m}, err
}

// CaseStudyI returns the paper's memory-intensive 4-core case study.
func CaseStudyI() Workload { return Workload{mix: workload.CaseStudyI()} }

// CaseStudyII returns the non-intensive 4-core case study.
func CaseStudyII() Workload { return Workload{mix: workload.CaseStudyII()} }

// CaseStudyIII returns four copies of lbm.
func CaseStudyIII() Workload { return Workload{mix: workload.CaseStudyIII()} }

// RandomWorkloads returns n category-balanced random workloads for the
// given core count, constructed as in the paper's Section 7.
func RandomWorkloads(n, cores int, seed int64) []Workload {
	ms := workload.RandomMixes(n, cores, seed)
	out := make([]Workload, len(ms))
	for i, m := range ms {
		out[i] = Workload{mix: m}
	}
	return out
}

// BenchmarkNames lists the 28 Table 3 benchmark names.
func BenchmarkNames() []string { return workload.Names(workload.Benchmarks()) }

// ThreadReport is one thread's outcome in a run.
type ThreadReport struct {
	// Benchmark is the profile name.
	Benchmark string
	// MemSlowdown is MCPI_shared / MCPI_alone (1.0 = unaffected).
	MemSlowdown float64
	// IPC is the thread's instructions per cycle in the shared run.
	IPC float64
	// BLP is the measured bank-level parallelism.
	BLP float64
	// RowHitRate is the fraction of reads serviced from an open row.
	RowHitRate float64
	// ASTPerReq is the average stall time per DRAM request, CPU cycles.
	ASTPerReq float64
}

// Report is the outcome of one shared run joined with alone baselines.
type Report struct {
	// Scheduler is the policy's name.
	Scheduler string
	// Threads holds per-thread outcomes in core order.
	Threads []ThreadReport
	// Unfairness is max/min memory slowdown (1.0 = perfectly fair).
	Unfairness float64
	// WeightedSpeedup is the paper's system throughput metric.
	WeightedSpeedup float64
	// HmeanSpeedup balances fairness and throughput.
	HmeanSpeedup float64
	// WorstCaseLatency is the largest read latency observed, CPU cycles.
	WorstCaseLatency int64
	// BusUtilization is the DRAM data bus utilization in [0,1].
	BusUtilization float64
}

// String renders the report as an aligned table.
func (r Report) String() string {
	s := fmt.Sprintf("scheduler %s: unfairness %.2f, weighted speedup %.3f, hmean speedup %.3f\n",
		r.Scheduler, r.Unfairness, r.WeightedSpeedup, r.HmeanSpeedup)
	for _, t := range r.Threads {
		s += fmt.Sprintf("  %-12s slowdown %5.2f  IPC %6.3f  BLP %5.2f  rbhit %5.3f  AST/req %7.1f\n",
			t.Benchmark, t.MemSlowdown, t.IPC, t.BLP, t.RowHitRate, t.ASTPerReq)
	}
	return s
}
