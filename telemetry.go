package parbs

import (
	"fmt"

	"repro/internal/telemetry"
)

// TelemetrySchema identifies the JSON wire format produced by
// Telemetry.JSON (and embedded in parbs-serve run results). Readers should
// reject reports with a different schema string.
const TelemetrySchema = telemetry.Schema

// TelemetryConfig sizes a Telemetry collector. The zero value selects the
// defaults.
type TelemetryConfig struct {
	// EpochCycles is the sampling period in CPU cycles (default 10240,
	// i.e. 1024 DRAM cycles at the baseline 10:1 clock ratio). Values
	// below one DRAM cycle are clamped up.
	EpochCycles int64
	// MaxEpochs caps the buffered epochs (default 4096); beyond it the
	// oldest epochs are dropped, recorded in the report's dropped count.
	MaxEpochs int
}

// Telemetry collects per-epoch time series from one run — queue occupancy
// and IPC/MCPI/slowdown per thread, batch dynamics, row-hit rate, per-bank
// utilization, BLP, read-latency histograms — and renders them as a
// versioned JSON report (schema "parbs.telemetry/v1").
//
// Attach with WithTelemetry; after the run returns, call JSON. Like
// Scheduler, a collector serves a single run: construct a fresh one per
// RunContext call.
type Telemetry struct {
	cfg    TelemetryConfig
	probe  *telemetry.Probe
	report *telemetry.RunReport
	bound  bool
}

// NewTelemetry returns a collector with the given configuration.
func NewTelemetry(cfg TelemetryConfig) *Telemetry {
	return &Telemetry{cfg: cfg}
}

// bind converts the CPU-cycle epoch to DRAM cycles for the clock ratio and
// builds the internal probe. It errors on reuse.
func (t *Telemetry) bind(cpuCyclesPerDRAM int64) (*telemetry.Probe, error) {
	if t == nil {
		return nil, fmt.Errorf("parbs: WithTelemetry needs a non-nil *Telemetry")
	}
	if t.bound {
		return nil, fmt.Errorf("parbs: Telemetry collector was already used in a run; construct a fresh one per run")
	}
	t.bound = true
	epochDRAM := t.cfg.EpochCycles / cpuCyclesPerDRAM
	if t.cfg.EpochCycles > 0 && epochDRAM < 1 {
		epochDRAM = 1
	}
	t.probe = telemetry.NewProbe(telemetry.Config{
		EpochDRAMCycles: epochDRAM,
		MaxEpochs:       t.cfg.MaxEpochs,
	})
	return t.probe, nil
}

// finish renders the probe's buffers into the final report; called by
// RunContext after the alone baselines complete.
func (t *Telemetry) finish(policy, workload string, benchmarks []string, aloneMCPI []float64) {
	t.report = t.probe.Report(telemetry.ReportMeta{
		Policy:     policy,
		Workload:   workload,
		Benchmarks: benchmarks,
		AloneMCPI:  aloneMCPI,
	})
}

// Epochs returns the number of epochs sampled, including any dropped from
// the buffer. Zero before the run completes.
func (t *Telemetry) Epochs() int {
	if t.probe == nil {
		return 0
	}
	return t.probe.Epochs()
}

// Dropped returns how many sampled epochs were overwritten after the
// buffer filled (the JSON report's dropped_epochs count). Zero before the
// run starts; size MaxEpochs up if it is non-zero and the tail matters.
func (t *Telemetry) Dropped() int {
	if t.probe == nil {
		return 0
	}
	return t.probe.DroppedEpochs()
}

// JSON renders the collected run report as indented, versioned JSON
// (schema "parbs.telemetry/v1"). It errors if the run has not completed.
func (t *Telemetry) JSON() ([]byte, error) {
	if t.report == nil {
		return nil, fmt.Errorf("parbs: telemetry report not available until the run completes")
	}
	return t.report.JSON()
}
