package parbs

import (
	"bytes"
	"fmt"
	"io"

	"repro/internal/trace"
)

// TraceSchema identifies the JSONL event-log wire format produced by
// Tracer.WriteEvents (and consumed by parbs-trace analyze). Readers should
// reject logs with a different schema string.
const TraceSchema = trace.Schema

// TracerConfig sizes a Tracer. The zero value selects the defaults.
type TracerConfig struct {
	// MaxEvents caps the buffered lifecycle events (default 2^20); beyond
	// it new events are dropped and counted, keeping the recorded prefix
	// complete.
	MaxEvents int
}

// Tracer records event-level request lifecycles from one run: arrival,
// marking into a batch, every DRAM command issued on the request's behalf
// (with the thread's rank at issue time), and data return, plus batch
// formation/drain spans. Tracers are passive — the command stream is
// byte-identical with and without one — and complement Telemetry's epoch
// aggregates with per-request forensics.
//
// Attach with WithTrace; after the run returns, render with WriteChrome
// (Perfetto / chrome://tracing) or WriteEvents (versioned JSONL for
// parbs-trace analyze). Like Scheduler, a tracer serves a single run:
// construct a fresh one per RunContext call.
type Tracer struct {
	cfg   TracerConfig
	inner *trace.Tracer
	bound bool
	done  bool
}

// NewTracer returns a tracer with the given configuration.
func NewTracer(cfg TracerConfig) *Tracer {
	return &Tracer{cfg: cfg, inner: trace.NewTracer(trace.Config{MaxEvents: cfg.MaxEvents})}
}

// bind hands the internal tracer to the run. It errors on reuse.
func (t *Tracer) bind() (*trace.Tracer, error) {
	if t.bound {
		return nil, fmt.Errorf("parbs: Tracer was already used in a run; construct a fresh one per run")
	}
	t.bound = true
	return t.inner, nil
}

// finish marks the recording complete; called by RunContext after the
// shared run returns.
func (t *Tracer) finish() { t.done = true }

// Events returns the number of lifecycle events recorded.
func (t *Tracer) Events() int { return t.inner.Events() }

// Dropped returns how many events were discarded after the buffer filled.
// Size MaxEvents up if it is non-zero and the tail matters.
func (t *Tracer) Dropped() int64 { return t.inner.Dropped() }

// WriteEvents renders the recorded run as schema-versioned JSONL (one JSON
// object per line, header first; schema TraceSchema). It errors if the run
// has not completed.
func (t *Tracer) WriteEvents(w io.Writer) error {
	if !t.done {
		return fmt.Errorf("parbs: no trace recorded until the run completes")
	}
	return t.inner.WriteJSONL(w)
}

// EventsJSONL renders WriteEvents into memory.
func (t *Tracer) EventsJSONL() ([]byte, error) {
	var buf bytes.Buffer
	if err := t.WriteEvents(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// WriteChrome renders the recorded run as Chrome trace-event JSON, loadable
// in Perfetto or chrome://tracing: threads as tracks, requests as spans
// with their wait decomposition in args, batches as async spans. It errors
// if the run has not completed.
func (t *Tracer) WriteChrome(w io.Writer) error {
	if !t.done {
		return fmt.Errorf("parbs: no trace recorded until the run completes")
	}
	return t.inner.WriteChrome(w)
}

// ChromeTrace renders WriteChrome into memory.
func (t *Tracer) ChromeTrace() ([]byte, error) {
	var buf bytes.Buffer
	if err := t.WriteChrome(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// WithTrace attaches a lifecycle tracer to the run; see Tracer. Each
// tracer serves one run; a nil tracer is a no-op.
func WithTrace(t *Tracer) RunOption {
	return func(rc *runConfig) { rc.tracer = t }
}

// TraceStream incrementally renders a tracer's event log as TraceSchema
// JSONL while the run is still executing: each Flush returns the bytes for
// the events recorded since the previous Flush (the first non-empty flush
// is prefixed with the stream's header line). Concatenating every chunk
// yields a valid parbs.trace/v1 stream covering a prefix of the run —
// except that the live header carries zero event/drop counts (they are
// unknown mid-run); consumers reconcile the real drop count from the
// completed log.
//
// Flush is only safe where the tracer itself is quiescent: inside a
// WithProgress callback (the engines invoke progress synchronously on the
// simulation goroutine) or after RunContext returns. Calling it from any
// other goroutine during a run is a data race.
type TraceStream struct {
	t      *Tracer
	cursor *trace.Cursor
}

// Stream returns an incremental JSONL view of the tracer's recording.
func (t *Tracer) Stream() *TraceStream { return &TraceStream{t: t} }

// Flush returns the JSONL bytes for events recorded since the last call,
// or nil when the tracer has not yet been bound to a run or nothing new
// was recorded. See TraceStream for when it is safe to call.
func (st *TraceStream) Flush() ([]byte, error) {
	if !st.t.bound || !st.t.inner.Bound() {
		return nil, nil
	}
	if st.cursor == nil {
		st.cursor = st.t.inner.NewCursor()
	}
	var buf bytes.Buffer
	if err := st.cursor.WriteNew(&buf); err != nil {
		return nil, err
	}
	if buf.Len() == 0 {
		return nil, nil
	}
	return buf.Bytes(), nil
}
