// Package parbs is a Go reproduction of "Parallelism-Aware Batch
// Scheduling: Enhancing both Performance and Fairness of Shared DRAM
// Systems" (Mutlu & Moscibroda, ISCA 2008).
//
// It bundles a cycle-level shared-DRAM-system simulator — DDR2-style
// banks and buses, an on-chip memory controller with pluggable scheduling
// policies, simplified out-of-order cores, and synthetic workloads matched
// to the paper's benchmark suite — together with the paper's scheduler
// (PAR-BS) and the four baselines it is evaluated against (FCFS, FR-FCFS,
// NFQ, STFM).
//
// Quick start:
//
//	w, _ := parbs.WorkloadFromNames("libquantum", "mcf", "GemsFDTD", "xalancbmk")
//	report, _ := parbs.Run(parbs.DefaultSystem(4), w, parbs.NewPARBS(parbs.PARBSOptions{}))
//	fmt.Println(report)
//
// The internal packages hold the substrates; the experiments that
// regenerate every table and figure of the paper live in internal/exp and
// are driven by cmd/experiments.
package parbs

import (
	"fmt"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/memctrl"
	"repro/internal/sched"
)

// Scheduler is a DRAM scheduling policy instance. Instances are stateful
// and single-use: construct a fresh one per Run. Reusing one is detected
// and Run returns an error instead of silently corrupting results.
//
// A Scheduler also carries its own construction recipe: on an Independent-
// channel system (System.ChannelMode) every channel gets its own fresh
// policy instance minted from the same recipe, so per-channel scheduler
// state (virtual clocks, batches, ranks) never leaks across channels.
type Scheduler struct {
	policy memctrl.Policy
	// factory re-creates the policy with identical configuration; one call
	// per channel in Independent mode.
	factory func() memctrl.Policy
	// used flips on the first Run. A pointer so the flag is shared across
	// copies of this value type.
	used *atomic.Bool
}

// newScheduler mints one policy from the factory and wraps it with fresh
// single-use tracking, keeping the factory for per-channel instantiation.
func newScheduler(factory func() memctrl.Policy) Scheduler {
	return Scheduler{policy: factory(), factory: factory, used: new(atomic.Bool)}
}

// acquire claims the scheduler for a run, failing on zero values and reuse.
func (s Scheduler) acquire() error {
	if s.policy == nil {
		return fmt.Errorf("parbs: zero Scheduler is not usable; construct one with NewFCFS, NewFRFCFS, NewNFQ, NewSTFM, NewPARBS or SchedulerByName")
	}
	if !s.used.CompareAndSwap(false, true) {
		return fmt.Errorf("parbs: scheduler %q was already used in a Run; scheduler instances are stateful and single-use — construct a fresh one per run", s.policy.Name())
	}
	return nil
}

// Name returns the scheduler's display name.
func (s Scheduler) Name() string { return s.policy.Name() }

// NewFCFS returns the first-come-first-serve baseline.
func NewFCFS() Scheduler {
	return newScheduler(func() memctrl.Policy { return sched.NewFCFS() })
}

// NewFRFCFS returns the throughput-oriented first-ready FCFS baseline,
// the common policy of Rixner et al. that PAR-BS is compared against.
func NewFRFCFS() Scheduler {
	return newScheduler(func() memctrl.Policy { return sched.NewFRFCFS() })
}

// NewNFQ returns the network-fair-queueing scheduler of Nesbit et al.
// (MICRO 2006). weights, if given, assigns per-thread bandwidth shares;
// omit for equal shares.
func NewNFQ(weights ...float64) Scheduler {
	if len(weights) == 0 {
		return newScheduler(func() memctrl.Policy { return sched.NewNFQ() })
	}
	w := append([]float64(nil), weights...)
	return newScheduler(func() memctrl.Policy { return sched.NewNFQWeighted(w) })
}

// NewSTFM returns the stall-time fair memory scheduler of Mutlu &
// Moscibroda (MICRO 2007). weights, if given, scales per-thread slowdown
// targets; omit for equal treatment.
func NewSTFM(weights ...float64) Scheduler {
	if len(weights) == 0 {
		return newScheduler(func() memctrl.Policy { return sched.NewSTFM() })
	}
	w := append([]float64(nil), weights...)
	return newScheduler(func() memctrl.Policy { return sched.NewSTFMWeighted(w) })
}

// Batching selects the PAR-BS batch formation mode.
type Batching string

// Batching modes (paper Sections 4.1 and 4.4).
const (
	// FullBatching forms a new batch when the previous one completes.
	FullBatching Batching = "full"
	// StaticBatching re-marks on a fixed period (BatchDuration).
	StaticBatching Batching = "static"
	// EmptySlotBatching admits late requests into unused batch slots.
	EmptySlotBatching Batching = "eslot"
)

// Ranking selects the PAR-BS within-batch thread ranking.
type Ranking string

// Ranking schemes (paper Sections 4.2, 4.4 and 8.3.3).
const (
	// MaxTotal is PAR-BS's shortest-job-first ranking (Rule 3).
	MaxTotal Ranking = "max-total"
	// TotalMax swaps the Max and Total rules.
	TotalMax Ranking = "total-max"
	// RandomRanking assigns random ranks each batch.
	RandomRanking Ranking = "random"
	// RoundRobinRanking rotates ranks across batches.
	RoundRobinRanking Ranking = "round-robin"
	// NoRankFRFCFS disables ranking (FR-FCFS within the batch).
	NoRankFRFCFS Ranking = "no-rank-frfcfs"
	// NoRankFCFS disables ranking and row-hit-first (FCFS within batch).
	NoRankFCFS Ranking = "no-rank-fcfs"
)

// Opportunistic is the special PAR-BS priority level L: threads at this
// level are never marked and are serviced only when the memory system
// would otherwise be idle (paper Section 5).
const Opportunistic = core.OpportunisticPriority

// PARBSOptions configures the PAR-BS scheduler. The zero value selects the
// paper's evaluated configuration: full batching, Marking-Cap 5, Max-Total
// ranking, equal priorities.
type PARBSOptions struct {
	// MarkingCap bounds requests marked per thread per bank; 0 keeps the
	// paper's default of 5 and -1 disables the cap.
	MarkingCap int
	// Batching selects the batch formation mode (default FullBatching).
	Batching Batching
	// BatchDuration is the StaticBatching period in DRAM cycles.
	BatchDuration int64
	// Ranking selects the within-batch ranking (default MaxTotal).
	Ranking Ranking
	// Priorities optionally assigns per-thread priority levels: 1 is
	// highest, larger numbers are lower, Opportunistic is never marked.
	Priorities []int
	// Seed drives random rank tie-breaking.
	Seed int64
}

// NewPARBS returns the paper's parallelism-aware batch scheduler.
// It panics on malformed options (mixed-up batching/ranking names);
// use NewPARBSWithOptions for the error-returning variant, or Validate
// to check first.
func NewPARBS(opts PARBSOptions) Scheduler {
	s, err := NewPARBSWithOptions(opts)
	if err != nil {
		panic(err)
	}
	return s
}

// NewPARBSWithOptions is NewPARBS with an error return instead of a panic,
// for callers assembling options at runtime (flags, config files).
func NewPARBSWithOptions(opts PARBSOptions) (Scheduler, error) {
	coreOpts, err := opts.toCore()
	if err != nil {
		return Scheduler{}, err
	}
	return newScheduler(func() memctrl.Policy {
		// Each instance copies the mutable option slices so per-channel
		// engines never share state.
		o := coreOpts
		o.Priorities = append([]int(nil), coreOpts.Priorities...)
		return sched.NewPARBS(o)
	}), nil
}

// Validate reports whether the options are well-formed for numThreads
// threads.
func (o PARBSOptions) Validate(numThreads int) error {
	coreOpts, err := o.toCore()
	if err != nil {
		return err
	}
	return coreOpts.Validate(numThreads)
}

func (o PARBSOptions) toCore() (core.Options, error) {
	out := core.DefaultOptions()
	switch {
	case o.MarkingCap < -1:
		return out, fmt.Errorf("parbs: MarkingCap must be >= -1, got %d", o.MarkingCap)
	case o.MarkingCap == -1:
		out.MarkingCap = 0 // core convention: 0 = no cap
	case o.MarkingCap > 0:
		out.MarkingCap = o.MarkingCap
	}
	switch o.Batching {
	case "", FullBatching:
		out.Batch = core.FullBatching
	case StaticBatching:
		out.Batch = core.StaticBatching
		out.BatchDuration = o.BatchDuration
	case EmptySlotBatching:
		out.Batch = core.EmptySlotBatching
	default:
		return out, fmt.Errorf("parbs: unknown batching %q", o.Batching)
	}
	switch o.Ranking {
	case "", MaxTotal:
		out.Rank = core.MaxTotal
	case TotalMax:
		out.Rank = core.TotalMax
	case RandomRanking:
		out.Rank = core.RandomRank
	case RoundRobinRanking:
		out.Rank = core.RoundRobin
	case NoRankFRFCFS:
		out.Rank = core.NoRankFRFCFS
	case NoRankFCFS:
		out.Rank = core.NoRankFCFS
	default:
		return out, fmt.Errorf("parbs: unknown ranking %q", o.Ranking)
	}
	out.Priorities = append([]int(nil), o.Priorities...)
	if o.Seed != 0 {
		out.Seed = o.Seed
	}
	return out, nil
}

// SchedulerByName constructs a scheduler from its paper name
// ("FCFS", "FR-FCFS", "NFQ", "STFM", "PAR-BS").
func SchedulerByName(name string) (Scheduler, error) {
	if _, err := sched.ByName(name); err != nil {
		return Scheduler{}, err
	}
	return newScheduler(func() memctrl.Policy {
		p, _ := sched.ByName(name) // validated above; ByName is deterministic
		return p
	}), nil
}

// SchedulerNames lists the five evaluated schedulers in paper order.
func SchedulerNames() []string { return sched.Names() }
