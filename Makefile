GO ?= go

.PHONY: all build vet test race bench-smoke bench serve serve-smoke trace-smoke analyze-smoke check ci

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short re-measurement of the engine benchmark, failing on a >20%
# DRAMcycles/s regression vs the floor checked in via BENCH_5.json, plus
# one-iteration breakage checks of the PolicyDecision benchmarks and the
# sequential/parallel Independent-channel engine.
bench-smoke:
	scripts/bench_smoke.sh

# Full measurement; rewrites BENCH_5.json (scheduler fast path), BENCH_3.json
# (sequential vs parallel sharded channels) and BENCH_4.json (idle-workload
# clock extremes) with fresh numbers (BENCH_1.json and BENCH_2.json are
# frozen artifacts of the bank-index rewrite and the next-event clock).
bench:
	scripts/bench.sh

# Run the simulation service locally (Ctrl-C drains gracefully).
serve:
	$(GO) run ./cmd/parbs-serve

# Boot the service, submit a quick job over HTTP, assert it completes.
serve-smoke:
	scripts/serve_smoke.sh

# Record a short traced run, analyze it, assert the starvation audit
# passes. Set TRACE_OUT=<dir> to keep the artifacts.
trace-smoke:
	scripts/trace_smoke.sh

# Record the memory-attack mix, run the windowed analytics pipeline over
# its event log, assert the bottleneck attribution names thread 0 (the
# stream attacker). Set ANALYZE_OUT=<dir> to keep the artifacts.
analyze-smoke:
	scripts/analyze_smoke.sh

check: build vet race bench-smoke

# What .github/workflows/ci.yml runs (race is a separate CI job but part
# of the local gate).
ci: build vet test race bench-smoke
