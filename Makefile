GO ?= go

.PHONY: all build vet test race bench-smoke bench serve serve-smoke trace-smoke check ci

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of the gated benchmarks: catches breakage, not regressions.
bench-smoke:
	$(GO) test -run '^$$' -bench 'SimulatedCyclesPerSecond|PolicyDecision' -benchtime 1x .

# Full measurement; rewrites BENCH_1.json with fresh "after" numbers.
bench:
	scripts/bench.sh

# Run the simulation service locally (Ctrl-C drains gracefully).
serve:
	$(GO) run ./cmd/parbs-serve

# Boot the service, submit a quick job over HTTP, assert it completes.
serve-smoke:
	scripts/serve_smoke.sh

# Record a short traced run, analyze it, assert the starvation audit
# passes. Set TRACE_OUT=<dir> to keep the artifacts.
trace-smoke:
	scripts/trace_smoke.sh

check: build vet race bench-smoke

# What .github/workflows/ci.yml runs (race is a separate CI job but part
# of the local gate).
ci: build vet test race bench-smoke
