package memctrl

import (
	"strings"
	"testing"

	"repro/internal/dram"
)

func TestCommandLogReceivesEveryCommand(t *testing.T) {
	c, _ := newTestController(t, 2)
	var events []CommandEvent
	c.SetCommandLog(func(ev CommandEvent) { events = append(events, ev) })
	g := c.Device().Geometry()
	c.EnqueueRead(0, g.Unmap(dram.Location{Bank: 0, Row: 1, Col: 0}), 0) // ACT + RD
	c.EnqueueRead(1, g.Unmap(dram.Location{Bank: 1, Row: 2, Col: 0}), 0) // ACT + RD
	for now := int64(0); now < 200; now++ {
		c.Tick(now)
	}
	if int64(len(events)) != c.CommandsIssued() {
		t.Fatalf("logged %d events, controller issued %d", len(events), c.CommandsIssued())
	}
	var acts, reads int
	for _, ev := range events {
		switch ev.Cmd {
		case dram.CmdActivate:
			acts++
		case dram.CmdRead:
			reads++
		}
		if ev.Thread < 0 || ev.ReqID < 0 {
			t.Errorf("request-driven command lacks attribution: %+v", ev)
		}
	}
	if acts != 2 || reads != 2 {
		t.Errorf("acts=%d reads=%d, want 2/2", acts, reads)
	}
}

func TestTimelineRendering(t *testing.T) {
	c, _ := newTestController(t, 2)
	tl := NewTimeline(c.Device().Geometry().Banks)
	tl.WithThreads = true
	c.SetCommandLog(tl.Record)
	c.EnqueueRead(0, 0, 0)
	for now := int64(0); now < 60; now++ {
		c.Tick(now)
	}
	if tl.Len() == 0 {
		t.Fatal("timeline recorded nothing")
	}
	s := tl.Render(0, 60)
	if !strings.Contains(s, "A") || !strings.Contains(s, "r") {
		t.Errorf("timeline missing ACT/RD marks:\n%s", s)
	}
	if !strings.Contains(s, "bank 0 |") || !strings.Contains(s, "thread |") {
		t.Errorf("timeline missing lanes:\n%s", s)
	}
	if got := tl.Render(10, 10); got != "" {
		t.Errorf("empty range rendered %q", got)
	}
}

func TestTimelineRefreshSpansAllBanks(t *testing.T) {
	c, _ := newRefreshController(t, 100)
	tl := NewTimeline(c.Device().Geometry().Banks)
	c.SetCommandLog(tl.Record)
	for now := int64(0); now < 300; now++ {
		c.Tick(now)
	}
	s := tl.Render(0, 300)
	if strings.Count(s, "F") < c.Device().Geometry().Banks {
		t.Errorf("refresh mark should span every bank lane:\n%s", s)
	}
}
