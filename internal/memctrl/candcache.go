package memctrl

import (
	"math"

	"repro/internal/dram"
)

// The incrementally-maintained per-bank best-candidate cache.
//
// The bank-indexed scan (bestCandidate) costs one Better call per buffered
// request on every evaluated cycle even though, between events, nothing that
// orders a bank's queue changes: queue membership changes only on
// enqueue/removal, the open row only when a command issues to the bank, and
// the policy's preference among a bank's same-class candidates only at the
// points the EpochedPolicy contract names (batch formation, fairness-mode
// flips, slot handoffs — see request.go). So each bank memoizes its
// per-class winners and the scan degrades to one staleness check plus O(1)
// class-winner comparisons per bank, rebuilding a bank's entry only when one
// of those three inputs actually moved:
//
//   - queue membership — enqueues fold the new request in incrementally
//     (cacheInsert) and removals at CAS issue invalidate only when a cached
//     winner departs (cacheRemove);
//   - device row state — the entry stores the open row it was computed
//     against and is rebuilt when the bank's current open row differs (an
//     activate or precharge in between, including refresh sequencing);
//   - policy order — the entry stores the policy's OrderEpoch and is rebuilt
//     when the current epoch differs.
//
// Only class *winners* are cached, never their legality or the final pick:
// command-class legality (tCAS/tPre/tAct) is re-checked against the device
// every scan, and the surviving winners are re-compared across banks and
// classes with fresh Better calls. That split is what keeps time-dependent
// ordering terms exact — they are uniform within one bank and class (the
// EpochedPolicy contract), so they can only influence the fresh cross-bank
// comparisons, never the cached within-class ones.
//
// The cache changes no observable behavior: winners equal the full rescan's
// (Better is a strict total order), and the failure bounds feeding the idle
// cache are computed from the same per-class facts the rescan derives, so
// command streams are byte-identical with the cache on, off
// (Config.DisableCandidateCache), or bypassed (Config.ReferenceScan) —
// pinned by the differential fuzz suites in internal/sim, and asserted
// per-scan against a forced rebuild under the parbsdebug build tag.

// bankCand is one bank's cached scan result for one direction (reads or
// writes).
type bankCand struct {
	// valid is cleared by the controller on any event touching the bank's
	// queue; openRow and epoch staleness are detected by comparison instead.
	valid bool
	// epoch is the policy's OrderEpoch at rebuild. Unused (zero) for writes,
	// whose FR-FCFS order is time-invariant.
	epoch uint64
	// openRow is the bank's open row at rebuild (-1 when closed); it decides
	// class membership, so a different current value forces a rebuild.
	openRow int64
	// act is the best request when the bank was closed (every request needs
	// an activate); hit and miss are the best open-row and conflicting
	// requests when it was open. Winners are over *eligible* requests only.
	act, hit, miss *Request
	// filtered records whether any queued request was eligibility-filtered
	// at rebuild, which disqualifies the bank from contributing a timing
	// bound on failure (the request may become eligible at any cycle).
	filtered bool
}

// invalidate marks the entry stale; the next scan rebuilds it.
func (e *bankCand) invalidate() { e.valid = false }

// cacheInsert folds a just-enqueued request into its bank's entry in O(1):
// adding a request can only change the winner of the request's own class,
// and only to the request itself. Call it after the policy's OnEnqueue hook
// has run — NFQ stamps the deadline and PAR-BS the empty-slot mark there,
// and the comparison below must see them. Classification uses the entry's
// stored openRow: if the device has moved on, the next scan rebuilds the
// entry anyway, and if the policy's epoch has moved the scan rebuilds too,
// so the comparison below only ever survives under the state it ran in.
func (c *Controller) cacheInsert(cache []bankCand, r *Request, isWrite bool) {
	e := &cache[r.Loc.Bank]
	if !e.valid {
		return
	}
	if !isWrite && c.elig != nil && !c.elig.Eligible(r) {
		e.filtered = true
		return
	}
	cas := dram.CmdRead
	if isWrite {
		cas = dram.CmdWrite
	}
	switch {
	case e.openRow < 0:
		if e.act == nil || c.better(Candidate{Req: r, Cmd: dram.CmdActivate, RowState: dram.RowClosed},
			Candidate{Req: e.act, Cmd: dram.CmdActivate, RowState: dram.RowClosed}, isWrite) {
			e.act = r
		}
	case r.Loc.Row == e.openRow:
		if e.hit == nil || c.better(Candidate{Req: r, Cmd: cas, RowState: dram.RowHit},
			Candidate{Req: e.hit, Cmd: cas, RowState: dram.RowHit}, isWrite) {
			e.hit = r
		}
	default:
		if e.miss == nil || c.better(Candidate{Req: r, Cmd: dram.CmdPrecharge, RowState: dram.RowConflict},
			Candidate{Req: e.miss, Cmd: dram.CmdPrecharge, RowState: dram.RowConflict}, isWrite) {
			e.miss = r
		}
	}
}

// cacheRemove updates a bank's entry for a request leaving its queue.
// Removing a non-winner cannot change any class winner, so the entry stays
// valid; removing a cached winner (the common case — the issued CAS *is*
// the scan's pick) demands a rebuild to find the runner-up. A set filtered
// flag also forces the rebuild: the departing request may have been the
// last ineligible one, and a stale flag would pin the bank's failure bound
// to `now`, diverging from the cache-off arm.
func (e *bankCand) cacheRemove(r *Request) {
	if r == e.act || r == e.hit || r == e.miss || e.filtered {
		e.valid = false
	}
}

// rebuild recomputes the entry's class winners by walking the bank queue
// once. Within-class comparisons use the same ordering function as the scan,
// applied to candidates of the class's (command, row-state) shape, so the
// stored winner is exactly the request the full enumeration would have
// preferred within that class.
func (c *Controller) rebuild(e *bankCand, q *reqList, openRow int64, isWrite bool, elig EligibilityPolicy) {
	e.openRow = openRow
	e.act, e.hit, e.miss = nil, nil, nil
	e.filtered = false
	cas := dram.CmdRead
	if isWrite {
		cas = dram.CmdWrite
	}
	for r := q.head; r != nil; r = q.next(r) {
		if elig != nil && !elig.Eligible(r) {
			e.filtered = true
			continue
		}
		switch {
		case openRow < 0:
			if e.act == nil || c.better(Candidate{Req: r, Cmd: dram.CmdActivate, RowState: dram.RowClosed},
				Candidate{Req: e.act, Cmd: dram.CmdActivate, RowState: dram.RowClosed}, isWrite) {
				e.act = r
			}
		case r.Loc.Row == openRow:
			if e.hit == nil || c.better(Candidate{Req: r, Cmd: cas, RowState: dram.RowHit},
				Candidate{Req: e.hit, Cmd: cas, RowState: dram.RowHit}, isWrite) {
				e.hit = r
			}
		default:
			if e.miss == nil || c.better(Candidate{Req: r, Cmd: dram.CmdPrecharge, RowState: dram.RowConflict},
				Candidate{Req: e.miss, Cmd: dram.CmdPrecharge, RowState: dram.RowConflict}, isWrite) {
				e.miss = r
			}
		}
	}
}

// bestCandidate picks the ordering function's most-preferred legal command
// over the given per-bank queues: the scheduling fast path. Per bank it
// performs one readiness check, one ScanBank legality probe, and — when the
// bank's cached entry is fresh — O(1) class-winner comparisons; stale
// entries are rebuilt with a single queue walk. useCache false (the
// cache-off differential arm, and policies without an OrderEpoch) rebuilds
// every bank on every scan, which runs the identical selection and bound
// logic on always-fresh entries.
//
// Every registered policy's Better is a strict total order (ties break on
// the unique request ID), so the winner is independent of enumeration order
// and both cache arms select exactly what the flat reference scan would —
// pinned by the command-stream equivalence tests in internal/sim.
//
// The third result is a lower bound on the next cycle at which any command
// for this queue set could become legal, valid until the next enqueue or
// issue (both invalidate the caller's idle cache). Whenever a bank's failure
// cannot be bounded from timing alone (an eligibility-filtered request may
// become eligible at any cycle), the bank contributes `now`, disabling
// skipping.
func (c *Controller) bestCandidate(queues []reqList, cache []bankCand, useCache bool, now int64, isWrite bool) (Candidate, bool, int64) {
	var best Candidate
	found := false
	bound := int64(math.MaxInt64)
	var elig EligibilityPolicy
	if !isWrite {
		elig = c.elig
	}
	var epoch uint64
	if useCache && !isWrite {
		epoch = c.epoched.OrderEpoch()
	}
	cas := dram.CmdRead
	if isWrite {
		cas = dram.CmdWrite
	}
	for b := range queues {
		q := &queues[b]
		if q.n == 0 {
			continue
		}
		if br := c.dev.BankReadyAt(b); now < br {
			if br < bound {
				bound = br
			}
			continue
		}
		openRow, tAct, tCAS, tPre := c.dev.ScanBank(b, isWrite)
		e := &cache[b]
		if !useCache || !e.valid || e.openRow != openRow || (!isWrite && e.epoch != epoch) {
			c.rebuild(e, q, openRow, isWrite, elig)
			e.epoch = epoch
			e.valid = true
		}
		if openRow < 0 {
			// Closed bank: every request needs an activate, whose legality is
			// row-independent — one check covers the whole queue.
			if now < tAct {
				if tAct < bound {
					bound = tAct
				}
				continue
			}
			if e.act == nil {
				bound = now // all eligibility-filtered; no timing bound
				continue
			}
			cand := Candidate{Req: e.act, Cmd: dram.CmdActivate, RowState: dram.RowClosed}
			if !found || c.better(cand, best, isWrite) {
				best, found = cand, true
			}
			continue
		}
		// Open bank: requests to the open row need a CAS, the rest a
		// precharge; each class's legality is again a single check.
		canCAS := now >= tCAS
		canPre := now >= tPre
		if !canCAS && !canPre {
			t := tCAS
			if tPre < t {
				t = tPre
			}
			if t < bound {
				bound = t
			}
			continue
		}
		had := false
		if e.hit != nil && canCAS {
			cand := Candidate{Req: e.hit, Cmd: cas, RowState: dram.RowHit}
			had = true
			if !found || c.better(cand, best, isWrite) {
				best, found = cand, true
			}
		}
		if e.miss != nil && canPre {
			cand := Candidate{Req: e.miss, Cmd: dram.CmdPrecharge, RowState: dram.RowConflict}
			had = true
			if !found || c.better(cand, best, isWrite) {
				best, found = cand, true
			}
		}
		if !had {
			// No candidate despite a legal class: the blocked class's own
			// readiness bounds the bank. Any eligibility-filtered request
			// bounds to now — it may become eligible while its class is
			// already legal.
			t := now
			if sawHit, sawConflict := e.hit != nil && !canCAS, e.miss != nil && !canPre; !e.filtered && (sawHit || sawConflict) {
				t = int64(math.MaxInt64)
				if sawHit && tCAS < t {
					t = tCAS
				}
				if sawConflict && tPre < t {
					t = tPre
				}
			}
			if t < bound {
				bound = t
			}
		}
	}
	if useCache {
		auditCandidateCache(c, queues, now, isWrite, best, found, bound)
	}
	return best, found, bound
}
