package memctrl

import (
	"math"

	"repro/internal/dram"
)

// NextEventer is an optional extension of Policy for the next-event
// simulation clock. Implementing it is a declaration that the policy's
// OnCycle hook is inert between events: skipping OnCycle calls over a span
// of cycles in which no request is enqueued, issued or completed, and no
// cycle at or past NextPolicyEventAt is crossed, leaves the policy in
// exactly the state per-cycle ticking would have produced.
//
// NextPolicyEventAt(now) returns a lower bound on the next cycle > now at
// which the policy's own state changes without an external trigger (e.g. a
// PAR-BS static re-marking deadline). It must never overshoot such a cycle;
// returning a smaller value (even now+1) is always safe and merely forces
// the clock to advance cycle by cycle. math.MaxInt64 means "no self-driven
// events".
//
// Policies that accrue state every cycle (STFM's stall clocks) must NOT
// implement this interface; the controller then reports now+1 from
// NextEventAt and the run degenerates to the legacy ticked loop, which is
// always correct.
type NextEventer interface {
	NextPolicyEventAt(now int64) int64
}

// NextEventAt returns a lower bound on the next DRAM cycle > now at which
// ticking the controller could have any observable effect: a burst retiring,
// a command becoming issuable for a buffered request, a refresh falling due,
// or the policy's own next self-driven event. Call it after Tick(now) on a
// cycle that issued no command; the simulation clock may then jump straight
// to the returned cycle, provided nothing outside the controller (a core
// enqueue) happens earlier.
//
// The bound never overshoots a real event — see DESIGN.md §13 for the
// contract — but may undershoot (eligibility-gated policies, refresh
// sequencing), in which case the caller re-evaluates and the clamp to now+1
// below guarantees forward progress.
func (c *Controller) NextEventAt(now int64) int64 {
	ne, ok := c.policy.(NextEventer)
	if !ok {
		return now + 1 // policy needs per-cycle OnCycle calls
	}
	if trefi := c.trefi; trefi > 0 {
		if now >= c.nextRefresh {
			return now + 1 // mid refresh sequence: tick through it
		}
		// The refresh deadline itself is an event: request scheduling is
		// preempted from that cycle on.
		if c.nextRefresh <= now+1 {
			return now + 1
		}
	}
	next := ne.NextPolicyEventAt(now)
	if trefi := c.trefi; trefi > 0 && c.nextRefresh < next {
		next = c.nextRefresh
	}
	if c.inflight.len() > 0 {
		if e := c.inflight.front().end; e < next {
			next = e
		}
	}
	// Reuse the idle cache when the scan that just failed armed it; it is the
	// same nextIssueAt bound, computed once instead of on every skip attempt.
	t := c.idleUntil
	if c.cfg.ReferenceScan || t <= now {
		t = c.nextIssueAt()
	}
	if t < next {
		next = t
	}
	if next <= now {
		next = now + 1
	}
	return next
}

// nextIssueAt returns a lower bound on the earliest cycle at which any
// buffered request's next command becomes device-legal, by walking the
// per-bank request queues. It is conservative in one direction only: when
// the open row's demand is all-read or all-write the bound still considers
// both CAS classes, which can only make it earlier. It runs only on the
// rare NextEventAt calls where the scan-byproduct idle cache is not armed,
// so the queue walk is not hot.
func (c *Controller) nextIssueAt() int64 {
	next := int64(math.MaxInt64)
	for b := range c.bankReads {
		rq, wq := &c.bankReads[b], &c.bankWrites[b]
		nr, nw := rq.n, wq.n
		if nr == 0 && nw == 0 {
			continue
		}
		openRow := c.dev.OpenRow(b)
		if openRow < 0 {
			// Closed bank: every buffered request proceeds with an activate,
			// whose legality is row-independent.
			if t := c.dev.ReadyAt(dram.CmdActivate, b); t < next {
				next = t
			}
			continue
		}
		anyHit, anyMiss := false, false
		for r := rq.head; r != nil; r = rq.next(r) {
			if r.Loc.Row == openRow {
				anyHit = true
			} else {
				anyMiss = true
			}
			if anyHit && anyMiss {
				break
			}
		}
		if !(anyHit && anyMiss) {
			for r := wq.head; r != nil; r = wq.next(r) {
				if r.Loc.Row == openRow {
					anyHit = true
				} else {
					anyMiss = true
				}
				if anyHit && anyMiss {
					break
				}
			}
		}
		if anyHit {
			if nr > 0 {
				if t := c.dev.ReadyAt(dram.CmdRead, b); t < next {
					next = t
				}
			}
			if nw > 0 {
				if t := c.dev.ReadyAt(dram.CmdWrite, b); t < next {
					next = t
				}
			}
		}
		if anyMiss {
			// Some request targets a different row and needs a precharge.
			if t := c.dev.ReadyAt(dram.CmdPrecharge, b); t < next {
				next = t
			}
		}
	}
	return next
}

// AccountIdleSpan applies the per-cycle accounting Tick would have performed
// over a span of `cycles` idle cycles the clock is about to skip: the cycles
// join the deferred BLP span (see blpPending). Valid only for spans in which
// no command issues and no burst retires — then banksBusy is constant, so
// the eventual closed-form flush equals the per-cycle sum exactly (the
// differential equivalence tests in internal/sim pin this).
func (c *Controller) AccountIdleSpan(cycles int64) {
	if cycles <= 0 {
		return
	}
	c.blpPending += cycles
}
