package memctrl

// Intrusive doubly-linked request lists. The controller keeps every buffered
// request on two lists at once — the buffer-order list (all reads, or all
// writes, oldest first) and its bank's queue — so ordered removal at CAS
// issue is O(1) pointer surgery instead of the slice copy() tail shift the
// previous representation paid (and, with it, the bulk write barriers the
// Go runtime emits for pointer-slice copies).
//
// The links live inside the Request itself (Request.links), indexed by list
// kind, so membership needs no per-node allocation and no auxiliary maps.
// A request is on at most one buffer list and one bank list at a time
// (reads and writes never share a list), which is why two link sets
// suffice.

// List kinds, indexing Request.links.
const (
	// linkBuf threads the whole read buffer (or the whole write buffer) in
	// arrival order.
	linkBuf = 0
	// linkBank threads one bank's queue in arrival order.
	linkBank = 1
)

// reqLinks is one list membership: the neighbors on that list.
type reqLinks struct {
	next, prev *Request
}

// reqList is an intrusive doubly-linked list of requests in arrival order.
// kind selects which of the Request's link sets this list threads.
type reqList struct {
	kind       int
	head, tail *Request
	n          int
}

// pushBack appends r, preserving arrival order (callers only ever append
// newly-enqueued requests).
func (l *reqList) pushBack(r *Request) {
	k := l.kind
	r.links[k].prev = l.tail
	r.links[k].next = nil
	if l.tail != nil {
		l.tail.links[k].next = r
	} else {
		l.head = r
	}
	l.tail = r
	l.n++
}

// remove unlinks r in O(1). r must be on the list; the cleared links make a
// double remove fail loudly (the second call would corrupt head/tail counts
// only after walking nil neighbors, and the parbsdebug audit catches the
// resulting stale cache immediately).
func (l *reqList) remove(r *Request) {
	k := l.kind
	if p := r.links[k].prev; p != nil {
		p.links[k].next = r.links[k].next
	} else {
		l.head = r.links[k].next
	}
	if nx := r.links[k].next; nx != nil {
		nx.links[k].prev = r.links[k].prev
	} else {
		l.tail = r.links[k].prev
	}
	r.links[k] = reqLinks{}
	l.n--
}

// next returns the element after r on this list.
func (l *reqList) next(r *Request) *Request { return r.links[l.kind].next }
