package memctrl

import (
	"math/rand"
	"testing"

	"repro/internal/dram"
)

// eventedPolicy is testPolicy plus the NextEventer declaration: its OnCycle
// only counts calls, so it is inert in the interface's sense.
type eventedPolicy struct{ testPolicy }

func (p *eventedPolicy) NextPolicyEventAt(now int64) int64 { return int64(1) << 62 }

// TestNextEventAtNeverOvershoots runs a ticked controller under a randomized
// enqueue stream and checks the core contract of the next-event clock: a
// prediction made on an idle cycle must not be overshot by any observable
// event (command issue or burst retire) occurring before it, unless an
// external enqueue intervened (which invalidates the prediction, exactly as
// a core enqueue ends a skip span in the simulator). It also checks that
// predictions land exactly on events often enough to be useful.
func TestNextEventAtNeverOvershoots(t *testing.T) {
	dev, err := dram.NewDevice(dram.DDR2_800(), dram.DefaultGeometry())
	if err != nil {
		t.Fatal(err)
	}
	pol := &eventedPolicy{}
	c, err := NewController(dev, pol, DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	completed := func() int64 {
		var s int64
		for th := 0; th < 2; th++ {
			st := c.ThreadStats(th)
			s += st.ReadsCompleted + st.WritesCompleted
		}
		return s
	}

	rng := rand.New(rand.NewSource(9))
	pred := int64(-1)
	lastIssued, lastCompleted := int64(0), int64(0)
	exactHits, skippable := 0, 0
	for now := int64(0); now < 20_000; now++ {
		enqueued := false
		if rng.Intn(6) == 0 && c.PendingReads() < 64 {
			if _, ok := c.EnqueueRead(rng.Intn(2), rng.Int63n(1<<14)*64, now); ok {
				enqueued = true
			}
		}
		if rng.Intn(20) == 0 && c.PendingWrites() < 32 {
			if c.EnqueueWrite(rng.Intn(2), rng.Int63n(1<<14)*64, now) {
				enqueued = true
			}
		}
		if enqueued {
			pred = -1 // external event: the idle-span prediction is void
		}
		c.Tick(now)
		issued, comp := c.CommandsIssued(), completed()
		event := issued != lastIssued || comp != lastCompleted
		lastIssued, lastCompleted = issued, comp
		if event {
			if pred >= 0 {
				if now < pred {
					t.Fatalf("event at cycle %d inside a predicted idle span (NextEventAt said %d)", now, pred)
				}
				if now == pred {
					exactHits++
				}
			}
			pred = -1
			continue
		}
		p := c.NextEventAt(now)
		if p <= now {
			t.Fatalf("NextEventAt(%d) = %d, not in the future", now, p)
		}
		if p > now+1 {
			skippable++
		}
		if pred < 0 || p < pred {
			pred = p
		}
	}
	if lastIssued == 0 {
		t.Fatal("no commands issued; test is vacuous")
	}
	if skippable == 0 {
		t.Error("NextEventAt never predicted past now+1; bound is uselessly conservative")
	}
	if exactHits == 0 {
		t.Error("no event ever landed exactly on a prediction; bound looks vacuously loose")
	}
}

// TestAccountIdleSpanMatchesPerCycle pins the closed-form BLP accounting to
// the per-cycle path it replaces over a span with constant bank occupancy.
func TestAccountIdleSpanMatchesPerCycle(t *testing.T) {
	build := func() *Controller {
		dev, err := dram.NewDevice(dram.DDR2_800(), dram.DefaultGeometry())
		if err != nil {
			t.Fatal(err)
		}
		c, err := NewController(dev, &eventedPolicy{}, DefaultConfig(3))
		if err != nil {
			t.Fatal(err)
		}
		copy(c.banksBusy, []int{2, 0, 5})
		return c
	}
	perCycle, closed := build(), build()
	const span = 37
	for i := 0; i < span; i++ {
		// One deferred cycle at a time, settled immediately: the per-cycle
		// accounting the ticked loop used to perform inline.
		perCycle.blpPending++
		perCycle.flushBLP()
	}
	closed.AccountIdleSpan(span)
	for th := 0; th < 3; th++ {
		a, b := perCycle.ThreadStats(th), closed.ThreadStats(th)
		if a != b {
			t.Errorf("thread %d: per-cycle stats %+v != closed-form %+v", th, a, b)
		}
	}
}
