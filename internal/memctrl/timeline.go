package memctrl

import (
	"fmt"
	"strings"

	"repro/internal/dram"
)

// Timeline records issued commands and renders them as per-bank ASCII
// lanes, a debugging aid for inspecting scheduling decisions:
//
//	bank 0 |A.r...rr......P.A..r
//	bank 1 |...A...r....w.......
//
// A=activate, P=precharge, r=read, w=write, F=refresh (spanning all
// banks), digits identify the issuing thread on the lane below when
// WithThreads is set.
type Timeline struct {
	banks  int
	events []CommandEvent
	// WithThreads adds a second lane per bank with thread digits.
	WithThreads bool
}

// NewTimeline returns a recorder for a device with the given bank count.
// Attach with ctrl.SetCommandLog(tl.Record).
func NewTimeline(banks int) *Timeline { return &Timeline{banks: banks} }

// Record appends one command event; pass it to SetCommandLog.
func (tl *Timeline) Record(ev CommandEvent) { tl.events = append(tl.events, ev) }

// Len returns the number of recorded events.
func (tl *Timeline) Len() int { return len(tl.events) }

// Render draws cycles [from, to) as one character column per DRAM cycle.
func (tl *Timeline) Render(from, to int64) string {
	if to <= from {
		return ""
	}
	width := int(to - from)
	lanes := make([][]byte, tl.banks)
	threads := make([][]byte, tl.banks)
	for b := range lanes {
		lanes[b] = []byte(strings.Repeat(".", width))
		threads[b] = []byte(strings.Repeat(" ", width))
	}
	for _, ev := range tl.events {
		if ev.Now < from || ev.Now >= to {
			continue
		}
		col := int(ev.Now - from)
		ch := byte('?')
		switch ev.Cmd {
		case dram.CmdActivate:
			ch = 'A'
		case dram.CmdPrecharge:
			ch = 'P'
		case dram.CmdRead:
			ch = 'r'
		case dram.CmdWrite:
			ch = 'w'
		case dram.CmdRefresh:
			ch = 'F'
		}
		if ev.Cmd == dram.CmdRefresh {
			for b := range lanes {
				lanes[b][col] = ch
			}
			continue
		}
		if ev.Bank >= 0 && ev.Bank < tl.banks {
			lanes[ev.Bank][col] = ch
			if ev.Thread >= 0 && ev.Thread < 10 {
				threads[ev.Bank][col] = byte('0' + ev.Thread)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "cycles %d..%d (A=act P=pre r=read w=write F=refresh)\n", from, to)
	for bank := range lanes {
		fmt.Fprintf(&b, "bank %d |%s|\n", bank, lanes[bank])
		if tl.WithThreads {
			fmt.Fprintf(&b, "thread |%s|\n", threads[bank])
		}
	}
	return b.String()
}
