//go:build parbsdebug

package memctrl

import "fmt"

// auditCandidateCache (parbsdebug build) re-runs every cached scan with all
// bank entries force-rebuilt and panics on any divergence — winner, found
// flag, or failure bound. A differential fuzz failure then localizes to the
// first scan whose cache went stale (naming the bank, epoch, and winners)
// instead of surfacing cycles later as a command-hash diff.
//
// Build with `go test -tags parbsdebug ./...` to run the whole suite under
// the audit; it is far too slow for benchmarks.
func auditCandidateCache(c *Controller, queues []reqList, now int64, isWrite bool, best Candidate, found bool, bound int64) {
	scratch := make([]bankCand, len(queues))
	rBest, rFound, rBound := c.bestCandidate(queues, scratch, false, now, isWrite)
	if rFound != found || rBound != bound ||
		(found && (rBest.Req != best.Req || rBest.Cmd != best.Cmd || rBest.RowState != best.RowState)) {
		var cb, rb string
		if found {
			cb = fmt.Sprintf("req %d (thread %d bank %d row %d) cmd %v state %v",
				best.Req.ID, best.Req.Thread, best.Req.Loc.Bank, best.Req.Loc.Row, best.Cmd, best.RowState)
		}
		if rFound {
			rb = fmt.Sprintf("req %d (thread %d bank %d row %d) cmd %v state %v",
				rBest.Req.ID, rBest.Req.Thread, rBest.Req.Loc.Bank, rBest.Req.Loc.Row, rBest.Cmd, rBest.RowState)
		}
		var epoch uint64
		if c.epoched != nil {
			epoch = c.epoched.OrderEpoch()
		}
		panic(fmt.Sprintf("memctrl: stale candidate cache at cycle %d (write=%v, policy %s, epoch %d):\n"+
			"  cached:  found=%v bound=%d %s\n  rescan:  found=%v bound=%d %s",
			now, isWrite, c.policy.Name(), epoch, found, bound, cb, rFound, rBound, rb))
	}
}
