//go:build !parbsdebug

package memctrl

// auditCandidateCache is the release-build no-op of the candidate-cache
// staleness audit; the parbsdebug build tag swaps in the checking version
// (audit_on.go). The empty body inlines away.
func auditCandidateCache(*Controller, []reqList, int64, bool, Candidate, bool, int64) {}
