package memctrl

import (
	"testing"

	"repro/internal/dram"
)

func newClosedPageController(t *testing.T) (*Controller, *testPolicy) {
	t.Helper()
	dev, err := dram.NewDevice(dram.DDR2_800(), dram.DefaultGeometry())
	if err != nil {
		t.Fatal(err)
	}
	p := &testPolicy{}
	cfg := DefaultConfig(1)
	cfg.ClosedPage = true
	c, err := NewController(dev, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c, p
}

func TestClosedPageAutoPrecharges(t *testing.T) {
	c, _ := newClosedPageController(t)
	g := c.Device().Geometry()
	done := 0
	c.SetOnComplete(func(r *Request, end int64) { done++ })
	// Two same-row reads far apart in time: under closed-page the row does
	// NOT survive between them, so the second needs its own activate.
	addr := g.Unmap(dram.Location{Bank: 0, Row: 5, Col: 0})
	c.EnqueueRead(0, addr, 0)
	now := int64(0)
	for ; now < 200 && done < 1; now++ {
		c.Tick(now)
	}
	if got := c.Device().OpenRow(0); got != -1 {
		t.Fatalf("row %d still open after auto-precharge", got)
	}
	c.EnqueueRead(0, addr+64, now)
	for ; now < 500 && done < 2; now++ {
		c.Tick(now)
	}
	if done != 2 {
		t.Fatal("reads did not complete")
	}
	st := c.Device().Stats()
	if st.Activates != 2 {
		t.Errorf("activates = %d, want 2 (closed page forces re-activation)", st.Activates)
	}
	if st.Precharges != 2 {
		t.Errorf("precharges = %d, want 2 (auto-precharge per access)", st.Precharges)
	}
}

func TestClosedPageKeepsRowForPendingHits(t *testing.T) {
	c, _ := newClosedPageController(t)
	g := c.Device().Geometry()
	done := 0
	c.SetOnComplete(func(r *Request, end int64) { done++ })
	// Two same-row reads queued together: the first access must NOT
	// auto-precharge because the second one wants the row.
	addr := g.Unmap(dram.Location{Bank: 0, Row: 5, Col: 0})
	c.EnqueueRead(0, addr, 0)
	c.EnqueueRead(0, addr+64, 0)
	for now := int64(0); now < 400 && done < 2; now++ {
		c.Tick(now)
	}
	if done != 2 {
		t.Fatal("reads did not complete")
	}
	st := c.Device().Stats()
	if st.Activates != 1 {
		t.Errorf("activates = %d, want 1 (row kept open for the queued hit)", st.Activates)
	}
}

func TestOpenPageDefaultKeepsRows(t *testing.T) {
	c, _ := newTestController(t, 1)
	done := 0
	c.SetOnComplete(func(r *Request, end int64) { done++ })
	c.EnqueueRead(0, 0, 0)
	for now := int64(0); now < 200 && done < 1; now++ {
		c.Tick(now)
	}
	g := c.Device().Geometry()
	if got := c.Device().OpenRow(g.Map(0).Bank); got < 0 {
		t.Error("open-page policy must leave the row open")
	}
}

func TestIssueAutoPrechargeRejectsNonCAS(t *testing.T) {
	dev, err := dram.NewDevice(dram.DDR2_800(), dram.DefaultGeometry())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("auto-precharge of ACT did not panic")
		}
	}()
	dev.IssueAutoPrecharge(0, dram.CmdActivate, 0, 1)
}

func TestAutoPrechargeDelaysNextActivate(t *testing.T) {
	dev, err := dram.NewDevice(dram.DDR2_800(), dram.DefaultGeometry())
	if err != nil {
		t.Fatal(err)
	}
	tm := dev.Timing()
	dev.Issue(0, dram.CmdActivate, 0, 1)
	dev.IssueAutoPrecharge(tm.TRCD, dram.CmdRead, 0, 1)
	// The implicit precharge starts after max(tRTP, tBankCAS) and takes
	// tRP; an activate before that must be illegal.
	earliest := tm.TRCD + tm.TBankCAS + tm.TRP
	if dev.CanIssue(earliest-1, dram.CmdActivate, 0, 2) {
		t.Errorf("activate legal before implicit precharge completes (%d)", earliest)
	}
	legal := false
	for c := earliest; c < earliest+40; c++ {
		if dev.CanIssue(c, dram.CmdActivate, 0, 2) {
			legal = true
			break
		}
	}
	if !legal {
		t.Error("activate never became legal after auto-precharge")
	}
}
