package memctrl

import (
	"testing"

	"repro/internal/dram"
)

func newRefreshController(t *testing.T, trefi int64) (*Controller, *testPolicy) {
	t.Helper()
	tm := dram.DDR2_800()
	tm.TREFI = trefi
	dev, err := dram.NewDevice(tm, dram.DefaultGeometry())
	if err != nil {
		t.Fatal(err)
	}
	p := &testPolicy{}
	c, err := NewController(dev, p, DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	return c, p
}

func TestRefreshHappensOnSchedule(t *testing.T) {
	const trefi = 400
	c, _ := newRefreshController(t, trefi)
	const cycles = 4000
	for now := int64(0); now < cycles; now++ {
		c.Tick(now)
	}
	got := c.Device().Stats().Refreshes
	want := int64(cycles / trefi)
	if got < want-1 || got > want+1 {
		t.Errorf("refreshes = %d over %d cycles, want ~%d", got, cycles, want)
	}
}

func TestRefreshClosesOpenRowsAndReadsStillComplete(t *testing.T) {
	c, _ := newRefreshController(t, 300)
	done := 0
	c.SetOnComplete(func(r *Request, end int64) { done++ })
	// A steady trickle of same-row reads: refresh must interleave without
	// losing any request, and the post-refresh access must re-activate.
	sent := 0
	for now := int64(0); now < 3000; now++ {
		if now%150 == 0 && sent < 15 {
			if _, ok := c.EnqueueRead(0, int64(sent%4)*64, now); ok {
				sent++
			}
		}
		c.Tick(now)
	}
	if done != sent {
		t.Fatalf("completed %d of %d reads across refreshes", done, sent)
	}
	st := c.Device().Stats()
	if st.Refreshes == 0 {
		t.Fatal("no refreshes issued")
	}
	// Same-row reads would be all-hit without refresh; refreshes force
	// re-activation, so activates must exceed 1.
	if st.Activates < 2 {
		t.Errorf("activates = %d; refresh should close the open row", st.Activates)
	}
}

func TestRefreshDisabledByDefault(t *testing.T) {
	c, _ := newTestController(t, 1)
	for now := int64(0); now < 5000; now++ {
		c.Tick(now)
	}
	if got := c.Device().Stats().Refreshes; got != 0 {
		t.Errorf("refreshes = %d with TREFI=0, want 0", got)
	}
}
