package memctrl

import (
	"fmt"

	"repro/internal/dram"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Config sizes the controller. The zero value is not usable; start from
// DefaultConfig.
type Config struct {
	// Threads is the number of threads (cores) that may issue requests.
	Threads int
	// ReadBufEntries is the memory request buffer capacity (Table 2: 128).
	ReadBufEntries int
	// WriteBufEntries is the write data buffer capacity (Table 2: 64).
	WriteBufEntries int
	// WriteDrainHigh and WriteDrainLow are the write-buffer occupancy
	// watermarks: at High the controller force-drains writes (even over
	// ready reads) until occupancy falls to Low.
	WriteDrainHigh int
	WriteDrainLow  int
	// ClosedPage selects the closed-page row policy: every column access
	// auto-precharges its row unless another buffered request targets the
	// same row. The paper's baseline (and default here) is open-page,
	// which row-hit-first scheduling exploits.
	ClosedPage bool
	// ReferenceScan disables the bank-indexed scheduling fast path and
	// falls back to the original O(buffer) candidate scan every cycle.
	// The two paths must produce byte-identical command streams; the
	// equivalence tests in internal/sim pin that. Reference only — slow.
	ReferenceScan bool
}

// DefaultConfig returns the paper's baseline controller configuration for
// the given thread count.
func DefaultConfig(threads int) Config {
	return Config{
		Threads:         threads,
		ReadBufEntries:  128,
		WriteBufEntries: 64,
		WriteDrainHigh:  48,
		WriteDrainLow:   16,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.Threads <= 0:
		return fmt.Errorf("memctrl: config: threads must be positive, got %d", c.Threads)
	case c.ReadBufEntries <= 0 || c.WriteBufEntries <= 0:
		return fmt.Errorf("memctrl: config: buffer capacities must be positive")
	case c.WriteDrainHigh > c.WriteBufEntries || c.WriteDrainLow < 0 || c.WriteDrainLow >= c.WriteDrainHigh:
		return fmt.Errorf("memctrl: config: need 0 <= low < high <= capacity, got low=%d high=%d cap=%d",
			c.WriteDrainLow, c.WriteDrainHigh, c.WriteBufEntries)
	}
	return nil
}

// ThreadStats aggregates per-thread service statistics over one run.
type ThreadStats struct {
	ReadsCompleted  int64
	WritesCompleted int64
	// TotalReadLatency is the sum over completed reads of
	// (completion - arrival), in DRAM cycles.
	TotalReadLatency int64
	// WorstCaseLatency is the maximum read latency observed, in DRAM cycles
	// (the paper's "WC lat." column of Table 4 in CPU cycles; the sim layer
	// converts).
	WorstCaseLatency int64
	// RowHitReads counts completed reads serviced without an activate.
	RowHitReads int64
	// blpSum / blpCycles implement the paper's BLP definition (Section 7):
	// the average number of banks servicing the thread's read requests,
	// over cycles in which at least one bank is servicing one.
	blpSum    int64
	blpCycles int64
}

// Merge combines stats from independent controllers serving the same
// thread (multi-channel systems): counters add, worst-case latency takes
// the maximum, and the BLP accumulators add — parallelism across
// controllers that overlaps in time is thus credited conservatively
// (the merged BLP is a weighted average, not a sum).
func (s ThreadStats) Merge(o ThreadStats) ThreadStats {
	out := ThreadStats{
		ReadsCompleted:   s.ReadsCompleted + o.ReadsCompleted,
		WritesCompleted:  s.WritesCompleted + o.WritesCompleted,
		TotalReadLatency: s.TotalReadLatency + o.TotalReadLatency,
		WorstCaseLatency: s.WorstCaseLatency,
		RowHitReads:      s.RowHitReads + o.RowHitReads,
		blpSum:           s.blpSum + o.blpSum,
		blpCycles:        s.blpCycles + o.blpCycles,
	}
	if o.WorstCaseLatency > out.WorstCaseLatency {
		out.WorstCaseLatency = o.WorstCaseLatency
	}
	return out
}

// BLP returns the thread's measured bank-level parallelism.
func (s ThreadStats) BLP() float64 {
	if s.blpCycles == 0 {
		return 0
	}
	return float64(s.blpSum) / float64(s.blpCycles)
}

// AvgReadLatency returns the mean read service latency in DRAM cycles.
func (s ThreadStats) AvgReadLatency() float64 {
	if s.ReadsCompleted == 0 {
		return 0
	}
	return float64(s.TotalReadLatency) / float64(s.ReadsCompleted)
}

// RowHitRate returns the fraction of completed reads serviced as row hits.
func (s ThreadStats) RowHitRate() float64 {
	if s.ReadsCompleted == 0 {
		return 0
	}
	return float64(s.RowHitReads) / float64(s.ReadsCompleted)
}

// BLPAccum exposes the raw BLP accumulators (sum of busy-bank counts and
// the cycle count they were accumulated over) for epoch-delta telemetry.
func (s ThreadStats) BLPAccum() (sum, cycles int64) {
	return s.blpSum, s.blpCycles
}

type inflightEntry struct {
	end int64
	req *Request
}

// Controller is one DRAM channel-group controller: a request buffer, a write
// buffer, a scheduling policy, and the DRAM device it drives.
type Controller struct {
	cfg    Config
	dev    *dram.Device
	policy Policy

	reads  []*Request
	writes []*Request
	// bankReads and bankWrites index the buffered requests by bank, each
	// queue in arrival order. They let the scheduler visit only banks that
	// can legally accept a command (see bestCandidate) and are kept in
	// sync with reads/writes on enqueue and CAS issue.
	bankReads  [][]*Request
	bankWrites [][]*Request
	// rowDemand counts buffered requests (reads and writes) per (bank, row),
	// making the closed-page rowWanted check O(1) instead of O(buffer).
	rowDemand []map[int64]int
	// inflight holds CAS-issued requests ordered by completion time (data
	// bus bursts complete in issue order, so a FIFO ring suffices).
	inflight inflightRing

	nextID     int64
	draining   bool
	onComplete func(*Request, int64)
	cmdLog     func(CommandEvent)
	// probe, when non-nil, receives per-read latency observations from the
	// retire path. It never influences scheduling.
	probe *telemetry.Probe
	// tracer, when non-nil, receives request lifecycle events (arrival,
	// command issue, completion). Like the probe it is strictly passive.
	tracer *trace.Tracer
	// ranked is the attached policy's ranking view when it has one, used
	// only to stamp rank-at-issue onto trace events.
	ranked RankedPolicy
	// nextRefresh is the next due all-bank refresh when the device's
	// TREFI is non-zero.
	nextRefresh int64

	// Table 1 registers: per-thread-per-bank and per-thread outstanding
	// read request counts (ReqsInBankPerThread, ReqsPerThread).
	perThreadPerBank [][]int
	perThread        []int
	// inServiceBank counts, per thread per bank, read requests with >=1
	// command issued and data not yet returned. banksBusy caches how many
	// banks have a non-zero count, for the BLP metric (writes never stall
	// a core, so the paper's bank-level parallelism is about demand misses).
	inServiceBank [][]int
	banksBusy     []int

	threadStats []ThreadStats
	cmdsIssued  int64
}

// NewController builds a controller over dev with the given policy.
func NewController(dev *dram.Device, policy Policy, cfg Config) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	banks := dev.Geometry().Banks
	c := &Controller{
		cfg:              cfg,
		dev:              dev,
		policy:           policy,
		bankReads:        make([][]*Request, banks),
		bankWrites:       make([][]*Request, banks),
		rowDemand:        make([]map[int64]int, banks),
		inflight:         newInflightRing(cfg.ReadBufEntries + cfg.WriteBufEntries),
		perThreadPerBank: make([][]int, cfg.Threads),
		perThread:        make([]int, cfg.Threads),
		inServiceBank:    make([][]int, cfg.Threads),
		banksBusy:        make([]int, cfg.Threads),
		threadStats:      make([]ThreadStats, cfg.Threads),
	}
	for b := range c.rowDemand {
		c.rowDemand[b] = make(map[int64]int)
	}
	for i := range c.perThreadPerBank {
		c.perThreadPerBank[i] = make([]int, banks)
		c.inServiceBank[i] = make([]int, banks)
	}
	c.nextRefresh = dev.Timing().TREFI
	policy.OnAttach(c)
	return c, nil
}

// Device returns the DRAM device the controller drives.
func (c *Controller) Device() *dram.Device { return c.dev }

// NumThreads returns the number of threads the controller serves.
func (c *Controller) NumThreads() int { return c.cfg.Threads }

// SetOnComplete registers the read-completion callback; it receives the
// request and the DRAM cycle its data burst finished.
func (c *Controller) SetOnComplete(fn func(*Request, int64)) { c.onComplete = fn }

// CommandEvent describes one issued DRAM command for logging/inspection.
type CommandEvent struct {
	Now  int64
	Cmd  dram.Command
	Bank int
	Row  int64
	// Thread is the issuing thread, or -1 for controller-initiated
	// commands (refresh sequencing).
	Thread int
	// ReqID is the request's arrival sequence number, or -1.
	ReqID int64
}

// SetCommandLog registers a hook receiving every issued DRAM command; nil
// disables logging. Intended for timelines and debugging, not hot paths.
func (c *Controller) SetCommandLog(fn func(CommandEvent)) { c.cmdLog = fn }

// SetProbe attaches a telemetry probe (nil detaches). The probe must be
// bound by the caller; the controller only feeds it read latencies.
func (c *Controller) SetProbe(p *telemetry.Probe) { c.probe = p }

// RankedPolicy is the optional ranking view of a scheduling policy: the
// thread's current rank position, 0 highest. *core.Engine satisfies it.
type RankedPolicy interface {
	RankPosition(thread int) int
}

// SetTracer attaches a lifecycle tracer (nil detaches). The tracer must be
// bound by the caller; the controller feeds it arrivals, per-command
// issues (with rank-at-issue when the policy ranks threads), and
// completions. It never influences scheduling.
func (c *Controller) SetTracer(t *trace.Tracer) {
	c.tracer = t
	c.ranked, _ = c.policy.(RankedPolicy)
}

// ReadRequests returns the live read request buffer. Policies may reorder
// their own bookkeeping from it but must not mutate the slice.
func (c *Controller) ReadRequests() []*Request { return c.reads }

// ReadsPerThread returns the thread's outstanding read count
// (Table 1 ReqsPerThread).
func (c *Controller) ReadsPerThread(thread int) int { return c.perThread[thread] }

// ReadsInBank returns the thread's outstanding reads to a bank
// (Table 1 ReqsInBankPerThread).
func (c *Controller) ReadsInBank(thread, bank int) int {
	return c.perThreadPerBank[thread][bank]
}

// PendingReads returns the total number of buffered reads.
func (c *Controller) PendingReads() int { return len(c.reads) }

// PendingWrites returns the write-buffer occupancy.
func (c *Controller) PendingWrites() int { return len(c.writes) }

// ThreadStats returns a copy of the accumulated stats for thread.
func (c *Controller) ThreadStats(thread int) ThreadStats { return c.threadStats[thread] }

// ResetStats zeroes all per-thread service statistics and the device
// counters, e.g. after warmup. Buffer contents and policy state persist.
func (c *Controller) ResetStats() {
	for i := range c.threadStats {
		c.threadStats[i] = ThreadStats{}
	}
	c.cmdsIssued = 0
	c.dev.ResetStats()
}

// CommandsIssued returns the total DRAM commands issued.
func (c *Controller) CommandsIssued() int64 { return c.cmdsIssued }

// EnqueueRead inserts a read request. It returns the request and true, or
// nil and false when the request buffer is full (the core must retry).
func (c *Controller) EnqueueRead(thread int, addr int64, now int64) (*Request, bool) {
	if len(c.reads) >= c.cfg.ReadBufEntries {
		return nil, false
	}
	r := c.newRequest(thread, addr, now, false)
	c.reads = append(c.reads, r)
	c.bankReads[r.Loc.Bank] = append(c.bankReads[r.Loc.Bank], r)
	c.rowDemand[r.Loc.Bank][r.Loc.Row]++
	c.perThread[thread]++
	c.perThreadPerBank[thread][r.Loc.Bank]++
	// Arrival is traced before the policy sees the request: empty-slot
	// batching may mark it inside OnEnqueue, and the trace must show the
	// arrival first.
	if c.tracer != nil {
		c.tracer.RequestArrived(r.ID, thread, r.Loc.Bank, r.Loc.Row, false, now)
	}
	c.policy.OnEnqueue(r, now)
	return r, true
}

// EnqueueWrite inserts a writeback. It returns false when the write buffer
// is full.
func (c *Controller) EnqueueWrite(thread int, addr int64, now int64) bool {
	if len(c.writes) >= c.cfg.WriteBufEntries {
		return false
	}
	r := c.newRequest(thread, addr, now, true)
	c.writes = append(c.writes, r)
	c.bankWrites[r.Loc.Bank] = append(c.bankWrites[r.Loc.Bank], r)
	c.rowDemand[r.Loc.Bank][r.Loc.Row]++
	if c.tracer != nil {
		c.tracer.RequestArrived(r.ID, thread, r.Loc.Bank, r.Loc.Row, true, now)
	}
	return true
}

func (c *Controller) newRequest(thread int, addr, now int64, isWrite bool) *Request {
	if thread < 0 || thread >= c.cfg.Threads {
		panic(fmt.Sprintf("memctrl: thread %d out of range [0,%d)", thread, c.cfg.Threads))
	}
	r := &Request{
		ID:       c.nextID,
		Thread:   thread,
		Addr:     addr,
		Loc:      c.dev.Geometry().Map(addr),
		IsWrite:  isWrite,
		Arrival:  now,
		firstCmd: -1,
	}
	c.nextID++
	return r
}

// Tick advances the controller by one DRAM cycle: it retires finished
// bursts, lets the policy update its state, and issues at most one ready
// command chosen by the policy (reads) or FR-FCFS (writes).
func (c *Controller) Tick(now int64) {
	c.retire(now)
	c.policy.OnCycle(now)
	c.accountBLP()

	// Global early-out: with the command bus busy this cycle, no command
	// of any kind can issue, so skip all candidate enumeration.
	if !c.dev.CommandBusFree(now) {
		return
	}

	// All-bank refresh takes absolute priority once due: close the open
	// banks, issue REF, and only then resume request scheduling. Modeled
	// but disabled by default (Timing.TREFI == 0); see DESIGN.md.
	if trefi := c.dev.Timing().TREFI; trefi > 0 && now >= c.nextRefresh {
		if c.refreshStep(now, trefi) {
			return
		}
	}

	// Write-drain hysteresis.
	if len(c.writes) >= c.cfg.WriteDrainHigh {
		c.draining = true
	} else if len(c.writes) <= c.cfg.WriteDrainLow {
		c.draining = false
	}

	if c.draining {
		if c.issueWrite(now) {
			return
		}
		if c.issueRead(now) {
			return
		}
		return
	}
	if c.issueRead(now) {
		return
	}
	c.issueWrite(now)
}

// refreshStep advances an in-progress refresh sequence: it issues a
// precharge to one open bank, or the refresh itself once all banks are
// closed. It reports whether the command slot was consumed (the caller
// must then skip request scheduling this cycle).
func (c *Controller) refreshStep(now, trefi int64) bool {
	if c.dev.CanIssue(now, dram.CmdRefresh, 0, 0) {
		c.dev.Issue(now, dram.CmdRefresh, 0, 0)
		c.cmdsIssued++
		c.logCmd(now, dram.CmdRefresh, 0, 0, nil)
		if c.tracer != nil {
			c.tracer.CommandIssued(-1, -1, dram.CmdRefresh, 0, 0, -1, now)
		}
		c.nextRefresh = now + trefi
		return true
	}
	for b := 0; b < c.dev.Geometry().Banks; b++ {
		if c.dev.OpenRow(b) >= 0 && c.dev.CanIssue(now, dram.CmdPrecharge, b, 0) {
			c.dev.Issue(now, dram.CmdPrecharge, b, 0)
			c.cmdsIssued++
			c.logCmd(now, dram.CmdPrecharge, b, 0, nil)
			if c.tracer != nil {
				c.tracer.CommandIssued(-1, -1, dram.CmdPrecharge, b, 0, -1, now)
			}
			return true
		}
	}
	// Banks are still inside tRAS or similar; wait without issuing new
	// work so the refresh is not pushed out indefinitely.
	return true
}

// retire completes data bursts whose end time has passed.
func (c *Controller) retire(now int64) {
	for c.inflight.len() > 0 && c.inflight.front().end <= now {
		e := c.inflight.pop()
		r := e.req
		r.done = true
		if c.tracer != nil {
			c.tracer.RequestCompleted(r.ID, r.Thread, e.end, e.end-r.Arrival)
		}
		st := &c.threadStats[r.Thread]
		if r.IsWrite {
			st.WritesCompleted++
			continue
		}
		c.inServiceBank[r.Thread][r.Loc.Bank]--
		if c.inServiceBank[r.Thread][r.Loc.Bank] == 0 {
			c.banksBusy[r.Thread]--
		}
		lat := e.end - r.Arrival
		st.ReadsCompleted++
		st.TotalReadLatency += lat
		if lat > st.WorstCaseLatency {
			st.WorstCaseLatency = lat
		}
		if c.probe != nil {
			c.probe.ObserveReadLatency(r.Thread, lat)
		}
		if r.WasRowHit() {
			st.RowHitReads++
		}
		c.policy.OnComplete(r, now)
		if c.onComplete != nil {
			c.onComplete(r, e.end)
		}
	}
}

func (c *Controller) accountBLP() {
	for t := range c.banksBusy {
		if n := c.banksBusy[t]; n > 0 {
			c.threadStats[t].blpSum += int64(n)
			c.threadStats[t].blpCycles++
		}
	}
}

// issueRead picks the policy's best ready read candidate and issues its
// command. It reports whether a command was issued.
func (c *Controller) issueRead(now int64) bool {
	best, ok := c.bestReadCandidate(now)
	if !ok {
		return false
	}
	c.issue(best, now)
	return true
}

// bestReadCandidate enumerates ready commands for buffered reads and returns
// the policy's most-preferred one.
func (c *Controller) bestReadCandidate(now int64) (Candidate, bool) {
	if c.cfg.ReferenceScan {
		return c.bestReadCandidateScan(now)
	}
	return c.bestCandidate(c.bankReads, now, false)
}

// bestCandidate is the bank-indexed scheduling fast path: it visits only
// banks with buffered work that have passed their readiness bound, performs
// one legality check per (bank, command class) instead of one per request,
// and lets the ordering function pick among the surviving candidates.
//
// Every registered policy's Better is a strict total order (all tie-break on
// the unique request ID), so the winner is independent of enumeration order
// and the fast path selects exactly what the flat scan would — pinned by the
// command-stream equivalence tests in internal/sim.
func (c *Controller) bestCandidate(queues [][]*Request, now int64, isWrite bool) (Candidate, bool) {
	var best Candidate
	found := false
	var elig EligibilityPolicy
	hasElig := false
	if !isWrite {
		elig, hasElig = c.policy.(EligibilityPolicy)
	}
	cas := dram.CmdRead
	if isWrite {
		cas = dram.CmdWrite
	}
	for b := range queues {
		queue := queues[b]
		if len(queue) == 0 || now < c.dev.BankReadyAt(b) {
			continue
		}
		openRow := c.dev.OpenRow(b)
		if openRow < 0 {
			// Closed bank: every request needs an activate, whose legality
			// is row-independent — one check covers the whole queue.
			if !c.dev.CanIssue(now, dram.CmdActivate, b, 0) {
				continue
			}
			for _, r := range queue {
				if hasElig && !elig.Eligible(r) {
					continue
				}
				cand := Candidate{Req: r, Cmd: dram.CmdActivate, RowState: dram.RowClosed}
				if !found || c.better(cand, best, isWrite) {
					best, found = cand, true
				}
			}
			continue
		}
		// Open bank: requests to the open row need a CAS, the rest need a
		// precharge; each class's legality is again a single check.
		canCAS := c.dev.CanIssue(now, cas, b, openRow)
		canPre := c.dev.CanIssue(now, dram.CmdPrecharge, b, 0)
		if !canCAS && !canPre {
			continue
		}
		for _, r := range queue {
			if hasElig && !elig.Eligible(r) {
				continue
			}
			var cand Candidate
			if r.Loc.Row == openRow {
				if !canCAS {
					continue
				}
				cand = Candidate{Req: r, Cmd: cas, RowState: dram.RowHit}
			} else {
				if !canPre {
					continue
				}
				cand = Candidate{Req: r, Cmd: dram.CmdPrecharge, RowState: dram.RowConflict}
			}
			if !found || c.better(cand, best, isWrite) {
				best, found = cand, true
			}
		}
	}
	return best, found
}

// better orders candidates: the attached policy for reads, FR-FCFS for
// writes.
func (c *Controller) better(a, b Candidate, isWrite bool) bool {
	if isWrite {
		return writeBetter(a, b)
	}
	return c.policy.Better(a, b)
}

// bestReadCandidateScan is the pre-index O(buffer) reference scan, retained
// for the equivalence tests (Config.ReferenceScan).
func (c *Controller) bestReadCandidateScan(now int64) (Candidate, bool) {
	var best Candidate
	found := false
	elig, hasElig := c.policy.(EligibilityPolicy)
	for _, r := range c.reads {
		if hasElig && !elig.Eligible(r) {
			continue
		}
		cand, ok := c.candidateFor(r, now)
		if !ok {
			continue
		}
		if !found || c.policy.Better(cand, best) {
			best = cand
			found = true
		}
	}
	return best, found
}

func (c *Controller) candidateFor(r *Request, now int64) (Candidate, bool) {
	state := c.dev.RowStateOf(r.Loc.Bank, r.Loc.Row)
	cmd := c.dev.NextCommand(r.Loc.Bank, r.Loc.Row, r.IsWrite)
	if !c.dev.CanIssue(now, cmd, r.Loc.Bank, r.Loc.Row) {
		return Candidate{}, false
	}
	return Candidate{Req: r, Cmd: cmd, RowState: state}, true
}

// issueWrite drains the write buffer with a fixed FR-FCFS order.
func (c *Controller) issueWrite(now int64) bool {
	var best Candidate
	var found bool
	if c.cfg.ReferenceScan {
		best, found = c.issueWriteScan(now)
	} else {
		best, found = c.bestCandidate(c.bankWrites, now, true)
	}
	if !found {
		return false
	}
	c.issue(best, now)
	return true
}

// issueWriteScan is the pre-index reference scan over the write buffer.
func (c *Controller) issueWriteScan(now int64) (Candidate, bool) {
	var best Candidate
	found := false
	for _, r := range c.writes {
		cand, ok := c.candidateFor(r, now)
		if !ok {
			continue
		}
		if !found || writeBetter(cand, best) {
			best = cand
			found = true
		}
	}
	return best, found
}

// writeBetter is FR-FCFS: row-hit CAS first, then oldest.
func writeBetter(a, b Candidate) bool {
	if a.IsRowHit() != b.IsRowHit() {
		return a.IsRowHit()
	}
	return a.Req.ID < b.Req.ID
}

// issue sends the candidate's command to the device and updates request and
// controller state.
func (c *Controller) issue(cand Candidate, now int64) {
	r := cand.Req
	var end int64
	if cand.Cmd == dram.CmdRead || cand.Cmd == dram.CmdWrite {
		end = c.issueCAS(cand, now)
	} else {
		end = c.dev.Issue(now, cand.Cmd, r.Loc.Bank, r.Loc.Row)
	}
	c.cmdsIssued++
	c.logCmd(now, cand.Cmd, r.Loc.Bank, r.Loc.Row, r)
	if c.tracer != nil {
		rank := -1
		if c.ranked != nil && !r.IsWrite {
			rank = c.ranked.RankPosition(r.Thread)
		}
		c.tracer.CommandIssued(r.ID, r.Thread, cand.Cmd, r.Loc.Bank, r.Loc.Row, rank, now)
	}
	if r.firstCmd < 0 {
		r.firstCmd = now
		if !r.IsWrite {
			if c.inServiceBank[r.Thread][r.Loc.Bank] == 0 {
				c.banksBusy[r.Thread]++
			}
			c.inServiceBank[r.Thread][r.Loc.Bank]++
		}
	}
	if cand.Cmd == dram.CmdPrecharge || cand.Cmd == dram.CmdActivate {
		r.neededACT = true
	}
	if !r.IsWrite {
		c.policy.OnIssue(cand, now)
	}
	if cand.Cmd == dram.CmdRead || cand.Cmd == dram.CmdWrite {
		c.removeBuffered(r)
		c.inflight.push(inflightEntry{end: end, req: r})
	}
}

// issueCAS sends the candidate's column access, with auto-precharge under
// the closed-page policy when no other buffered request wants the row.
func (c *Controller) issueCAS(cand Candidate, now int64) int64 {
	r := cand.Req
	if c.cfg.ClosedPage && !c.rowWanted(r) {
		return c.dev.IssueAutoPrecharge(now, cand.Cmd, r.Loc.Bank, r.Loc.Row)
	}
	return c.dev.Issue(now, cand.Cmd, r.Loc.Bank, r.Loc.Row)
}

// rowWanted reports whether any other buffered request targets req's row.
// The demand counter still includes req itself (it is removed from the
// buffer only after its CAS is chosen), hence the > 1 threshold.
func (c *Controller) rowWanted(req *Request) bool {
	if c.cfg.ReferenceScan {
		return c.rowWantedScan(req)
	}
	return c.rowDemand[req.Loc.Bank][req.Loc.Row] > 1
}

// rowWantedScan is the pre-index O(buffer) reference implementation.
func (c *Controller) rowWantedScan(req *Request) bool {
	for _, r := range c.reads {
		if r != req && r.Loc.Bank == req.Loc.Bank && r.Loc.Row == req.Loc.Row {
			return true
		}
	}
	for _, r := range c.writes {
		if r != req && r.Loc.Bank == req.Loc.Bank && r.Loc.Row == req.Loc.Row {
			return true
		}
	}
	return false
}

func (c *Controller) removeBuffered(r *Request) {
	if n := c.rowDemand[r.Loc.Bank][r.Loc.Row] - 1; n > 0 {
		c.rowDemand[r.Loc.Bank][r.Loc.Row] = n
	} else {
		delete(c.rowDemand[r.Loc.Bank], r.Loc.Row)
	}
	if r.IsWrite {
		c.writes = removeReq(c.writes, r)
		c.bankWrites[r.Loc.Bank] = removeReq(c.bankWrites[r.Loc.Bank], r)
		return
	}
	c.reads = removeReq(c.reads, r)
	c.bankReads[r.Loc.Bank] = removeReq(c.bankReads[r.Loc.Bank], r)
	c.perThread[r.Thread]--
	c.perThreadPerBank[r.Thread][r.Loc.Bank]--
}

func removeReq(s []*Request, r *Request) []*Request {
	for i, x := range s {
		if x == r {
			return append(s[:i], s[i+1:]...)
		}
	}
	panic("memctrl: request not found in buffer")
}

// logCmd forwards an issued command to the registered log hook.
func (c *Controller) logCmd(now int64, cmd dram.Command, bank int, row int64, r *Request) {
	if c.cmdLog == nil {
		return
	}
	ev := CommandEvent{Now: now, Cmd: cmd, Bank: bank, Row: row, Thread: -1, ReqID: -1}
	if r != nil {
		ev.Thread = r.Thread
		ev.ReqID = r.ID
	}
	c.cmdLog(ev)
}
