package memctrl

import (
	"fmt"
	"math"

	"repro/internal/dram"
	"repro/internal/trace"
)

// Config sizes the controller. The zero value is not usable; start from
// DefaultConfig.
type Config struct {
	// Threads is the number of threads (cores) that may issue requests.
	Threads int
	// ReadBufEntries is the memory request buffer capacity (Table 2: 128).
	ReadBufEntries int
	// WriteBufEntries is the write data buffer capacity (Table 2: 64).
	WriteBufEntries int
	// WriteDrainHigh and WriteDrainLow are the write-buffer occupancy
	// watermarks: at High the controller force-drains writes (even over
	// ready reads) until occupancy falls to Low.
	WriteDrainHigh int
	WriteDrainLow  int
	// ClosedPage selects the closed-page row policy: every column access
	// auto-precharges its row unless another buffered request targets the
	// same row. The paper's baseline (and default here) is open-page,
	// which row-hit-first scheduling exploits.
	ClosedPage bool
	// ReferenceScan disables the bank-indexed scheduling fast path and
	// falls back to the original O(buffer) candidate scan every cycle.
	// The two paths must produce byte-identical command streams; the
	// equivalence tests in internal/sim pin that. Reference only — slow.
	ReferenceScan bool
	// DisableCandidateCache keeps the bank-indexed fast path but rebuilds
	// every bank's candidate entry on every scan instead of reusing cached
	// class winners (see candcache.go). The command stream is byte-identical
	// either way — pinned by the differential fuzz suites — so the knob
	// exists for the cache-on/off differential arm and as an escape hatch,
	// not for correctness. Policies without an OrderEpoch (custom
	// schedulers) run as if it were set.
	DisableCandidateCache bool
	// Channel identifies this controller's channel in a sharded
	// multi-channel system; it is stamped onto CommandEvents and trace
	// events so merged per-channel streams stay attributable. 0 for
	// single-controller systems.
	Channel int
	// IDBase and IDStride shard the request-ID space across independent
	// controllers: controller ch of n assigns IDs ch, ch+n, ch+2n, ...
	// (IDBase=ch, IDStride=n), keeping IDs globally unique so merged trace
	// and command streams never collide. The zero values mean base 0,
	// stride 1 — the single-controller numbering.
	IDBase   int64
	IDStride int64
}

// DefaultConfig returns the paper's baseline controller configuration for
// the given thread count.
func DefaultConfig(threads int) Config {
	return Config{
		Threads:         threads,
		ReadBufEntries:  128,
		WriteBufEntries: 64,
		WriteDrainHigh:  48,
		WriteDrainLow:   16,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.Threads <= 0:
		return fmt.Errorf("memctrl: config: threads must be positive, got %d", c.Threads)
	case c.ReadBufEntries <= 0 || c.WriteBufEntries <= 0:
		return fmt.Errorf("memctrl: config: buffer capacities must be positive")
	case c.WriteDrainHigh > c.WriteBufEntries || c.WriteDrainLow < 0 || c.WriteDrainLow >= c.WriteDrainHigh:
		return fmt.Errorf("memctrl: config: need 0 <= low < high <= capacity, got low=%d high=%d cap=%d",
			c.WriteDrainLow, c.WriteDrainHigh, c.WriteBufEntries)
	case c.Channel < 0:
		return fmt.Errorf("memctrl: config: channel must be non-negative, got %d", c.Channel)
	case c.IDBase < 0 || c.IDStride < 0:
		return fmt.Errorf("memctrl: config: ID base/stride must be non-negative, got base=%d stride=%d",
			c.IDBase, c.IDStride)
	}
	return nil
}

// ThreadStats aggregates per-thread service statistics over one run.
type ThreadStats struct {
	ReadsCompleted  int64
	WritesCompleted int64
	// TotalReadLatency is the sum over completed reads of
	// (completion - arrival), in DRAM cycles.
	TotalReadLatency int64
	// WorstCaseLatency is the maximum read latency observed, in DRAM cycles
	// (the paper's "WC lat." column of Table 4 in CPU cycles; the sim layer
	// converts).
	WorstCaseLatency int64
	// RowHitReads counts completed reads serviced without an activate.
	RowHitReads int64
	// blpSum / blpCycles implement the paper's BLP definition (Section 7):
	// the average number of banks servicing the thread's read requests,
	// over cycles in which at least one bank is servicing one.
	blpSum    int64
	blpCycles int64
}

// Merge combines stats from independent controllers serving the same
// thread (multi-channel systems): counters add, worst-case latency takes
// the maximum, and the BLP accumulators add — parallelism across
// controllers that overlaps in time is thus credited conservatively
// (the merged BLP is a weighted average, not a sum).
func (s ThreadStats) Merge(o ThreadStats) ThreadStats {
	out := ThreadStats{
		ReadsCompleted:   s.ReadsCompleted + o.ReadsCompleted,
		WritesCompleted:  s.WritesCompleted + o.WritesCompleted,
		TotalReadLatency: s.TotalReadLatency + o.TotalReadLatency,
		WorstCaseLatency: s.WorstCaseLatency,
		RowHitReads:      s.RowHitReads + o.RowHitReads,
		blpSum:           s.blpSum + o.blpSum,
		blpCycles:        s.blpCycles + o.blpCycles,
	}
	if o.WorstCaseLatency > out.WorstCaseLatency {
		out.WorstCaseLatency = o.WorstCaseLatency
	}
	return out
}

// BLP returns the thread's measured bank-level parallelism.
func (s ThreadStats) BLP() float64 {
	if s.blpCycles == 0 {
		return 0
	}
	return float64(s.blpSum) / float64(s.blpCycles)
}

// AvgReadLatency returns the mean read service latency in DRAM cycles.
func (s ThreadStats) AvgReadLatency() float64 {
	if s.ReadsCompleted == 0 {
		return 0
	}
	return float64(s.TotalReadLatency) / float64(s.ReadsCompleted)
}

// RowHitRate returns the fraction of completed reads serviced as row hits.
func (s ThreadStats) RowHitRate() float64 {
	if s.ReadsCompleted == 0 {
		return 0
	}
	return float64(s.RowHitReads) / float64(s.ReadsCompleted)
}

// BLPAccum exposes the raw BLP accumulators (sum of busy-bank counts and
// the cycle count they were accumulated over) for epoch-delta telemetry.
func (s ThreadStats) BLPAccum() (sum, cycles int64) {
	return s.blpSum, s.blpCycles
}

type inflightEntry struct {
	end int64
	req *Request
}

// Controller is one DRAM channel-group controller: a request buffer, a write
// buffer, a scheduling policy, and the DRAM device it drives.
type Controller struct {
	cfg    Config
	dev    *dram.Device
	policy Policy

	// reads and writes hold the buffered requests in arrival order, as
	// intrusive doubly-linked lists (reqlist.go) so removal at CAS issue is
	// O(1) pointer surgery instead of a slice tail shift.
	reads  reqList
	writes reqList
	// bankReads and bankWrites index the buffered requests by bank, each
	// queue in arrival order on the requests' bank links. They let the
	// scheduler visit only banks that can legally accept a command (see
	// bestCandidate) and are kept in sync with reads/writes on enqueue and
	// CAS issue.
	bankReads  []reqList
	bankWrites []reqList
	// readCache and writeCache are the per-bank best-candidate caches over
	// the corresponding queues (candcache.go). cacheReads reports whether
	// the read cache may be reused across scans — the policy must publish an
	// order epoch for that; the write order (writeBetter) is static, so the
	// write cache only needs Config.DisableCandidateCache to be off.
	readCache  []bankCand
	writeCache []bankCand
	cacheReads bool
	// epoched and elig are the attached policy's optional views, resolved
	// once at construction so the hot scan performs no type assertions.
	epoched EpochedPolicy
	elig    EligibilityPolicy
	// freeReqs heads the retired-Request freelist newRequest recycles from.
	freeReqs *Request
	// inflight holds CAS-issued requests ordered by completion time (data
	// bus bursts complete in issue order, so a FIFO ring suffices).
	inflight inflightRing

	nextID     int64
	draining   bool
	onComplete func(*Request, int64)
	cmdLog     func(CommandEvent)
	// probe, when non-nil, receives per-read latency observations from the
	// retire path. It never influences scheduling.
	probe LatencyObserver
	// tracer, when non-nil, receives request lifecycle events (arrival,
	// command issue, completion). Like the probe it is strictly passive.
	tracer *trace.Tracer
	// ranked is the attached policy's ranking view when it has one, used
	// only to stamp rank-at-issue onto trace events.
	ranked RankedPolicy
	// nextRefresh is the next due all-bank refresh when the device's
	// TREFI is non-zero; trefi caches that interval so the per-cycle check
	// does not copy the device's whole Timing struct.
	nextRefresh int64
	trefi       int64

	// Table 1 registers: per-thread-per-bank and per-thread outstanding
	// read request counts (ReqsInBankPerThread, ReqsPerThread).
	perThreadPerBank [][]int
	perThread        []int
	// inServiceBank counts, per thread per bank, read requests with >=1
	// command issued and data not yet returned. banksBusy caches how many
	// banks have a non-zero count, for the BLP metric (writes never stall
	// a core, so the paper's bank-level parallelism is about demand misses).
	inServiceBank [][]int
	banksBusy     []int

	// blpPending counts evaluated (or skipped — see AccountIdleSpan) cycles
	// whose BLP accounting has not yet been folded into threadStats. The
	// per-cycle accrual the ticked loop used to perform is deferred until a
	// busy-bank count is about to change (retire, first service of a read)
	// or the stats are read, then applied in closed form: banksBusy is
	// constant over the pending span by construction, so the deferred sum
	// equals the per-cycle one bit for bit.
	blpPending int64

	threadStats []ThreadStats
	cmdsIssued  int64

	// enqueues counts accepted requests; see Enqueues.
	enqueues int64
	// idleUntil caches the earliest cycle at which any command could become
	// issuable, set after a scan cycle found nothing to issue. Until then the
	// Tick fast path skips candidate enumeration entirely. It is a pure
	// device-legality bound (nextIssueAt) and therefore ignores policy
	// eligibility — conservative, since eligibility can only remove
	// candidates, never make an illegal command legal. Invalidated (zeroed)
	// by anything that can create a new candidate or change device state:
	// enqueues and command issues (including refresh). Disabled under
	// Config.ReferenceScan so the reference path stays a true per-cycle
	// oracle for the equivalence tests.
	idleUntil int64
}

// NewController builds a controller over dev with the given policy.
func NewController(dev *dram.Device, policy Policy, cfg Config) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	banks := dev.Geometry().Banks
	c := &Controller{
		cfg:              cfg,
		dev:              dev,
		policy:           policy,
		reads:            reqList{kind: linkBuf},
		writes:           reqList{kind: linkBuf},
		bankReads:        make([]reqList, banks),
		bankWrites:       make([]reqList, banks),
		readCache:        make([]bankCand, banks),
		writeCache:       make([]bankCand, banks),
		inflight:         newInflightRing(cfg.ReadBufEntries + cfg.WriteBufEntries),
		perThreadPerBank: make([][]int, cfg.Threads),
		perThread:        make([]int, cfg.Threads),
		inServiceBank:    make([][]int, cfg.Threads),
		banksBusy:        make([]int, cfg.Threads),
		threadStats:      make([]ThreadStats, cfg.Threads),
	}
	for b := range c.bankReads {
		c.bankReads[b] = reqList{kind: linkBank}
		c.bankWrites[b] = reqList{kind: linkBank}
	}
	for i := range c.perThreadPerBank {
		c.perThreadPerBank[i] = make([]int, banks)
		c.inServiceBank[i] = make([]int, banks)
	}
	c.epoched, _ = policy.(EpochedPolicy)
	c.elig, _ = policy.(EligibilityPolicy)
	c.cacheReads = c.epoched != nil && !cfg.DisableCandidateCache
	if c.cfg.IDStride == 0 {
		c.cfg.IDStride = 1
	}
	c.nextID = c.cfg.IDBase
	c.trefi = dev.Timing().TREFI
	c.nextRefresh = c.trefi
	policy.OnAttach(c)
	return c, nil
}

// Device returns the DRAM device the controller drives.
func (c *Controller) Device() *dram.Device { return c.dev }

// NumThreads returns the number of threads the controller serves.
func (c *Controller) NumThreads() int { return c.cfg.Threads }

// SetOnComplete registers the read-completion callback; it receives the
// request and the DRAM cycle its data burst finished.
func (c *Controller) SetOnComplete(fn func(*Request, int64)) { c.onComplete = fn }

// CommandEvent describes one issued DRAM command for logging/inspection.
type CommandEvent struct {
	Now  int64
	Cmd  dram.Command
	Bank int
	Row  int64
	// Thread is the issuing thread, or -1 for controller-initiated
	// commands (refresh sequencing).
	Thread int
	// ReqID is the request's arrival sequence number, or -1.
	ReqID int64
	// Channel is the issuing controller's channel index (Config.Channel);
	// 0 in single-controller systems.
	Channel int
}

// SetCommandLog registers a hook receiving every issued DRAM command; nil
// disables logging. Intended for timelines and debugging, not hot paths.
func (c *Controller) SetCommandLog(fn func(CommandEvent)) { c.cmdLog = fn }

// LatencyObserver receives per-read service latencies from the retire
// path. *telemetry.Probe and *telemetry.Collector both satisfy it; the
// interface keeps the controller agnostic of which one a run attaches
// (sharded runs give every channel its own collector).
type LatencyObserver interface {
	ObserveReadLatency(thread int, lat int64)
}

// SetProbe attaches a telemetry latency observer (nil detaches). The
// observer must be bound/sized by the caller; the controller only feeds it
// read latencies.
func (c *Controller) SetProbe(p LatencyObserver) { c.probe = p }

// RankedPolicy is the optional ranking view of a scheduling policy: the
// thread's current rank position, 0 highest. *core.Engine satisfies it.
type RankedPolicy interface {
	RankPosition(thread int) int
}

// SetTracer attaches a lifecycle tracer (nil detaches). The tracer must be
// bound by the caller; the controller feeds it arrivals, per-command
// issues (with rank-at-issue when the policy ranks threads), and
// completions. It never influences scheduling.
func (c *Controller) SetTracer(t *trace.Tracer) {
	c.tracer = t
	c.ranked, _ = c.policy.(RankedPolicy)
}

// FirstRead returns the oldest buffered read request, or nil when the read
// buffer is empty. Policies iterate the buffer in arrival order via
// Request.NextBuffered; they must not unlink or reorder requests.
func (c *Controller) FirstRead() *Request { return c.reads.head }

// FirstReadInBank returns the oldest buffered read targeting the bank, or
// nil. Bank queues are in arrival order, so this is the bank's oldest
// request — the O(1) form of "does an older request wait on this bank".
func (c *Controller) FirstReadInBank(bank int) *Request { return c.bankReads[bank].head }

// ReadsPerThread returns the thread's outstanding read count
// (Table 1 ReqsPerThread).
func (c *Controller) ReadsPerThread(thread int) int { return c.perThread[thread] }

// ReadsInBank returns the thread's outstanding reads to a bank
// (Table 1 ReqsInBankPerThread).
func (c *Controller) ReadsInBank(thread, bank int) int {
	return c.perThreadPerBank[thread][bank]
}

// PendingReads returns the total number of buffered reads.
func (c *Controller) PendingReads() int { return c.reads.n }

// PendingWrites returns the write-buffer occupancy.
func (c *Controller) PendingWrites() int { return c.writes.n }

// ThreadStats returns a copy of the accumulated stats for thread. Deferred
// BLP accounting is folded in first, so the copy is exact as of the last
// Tick or AccountIdleSpan.
func (c *Controller) ThreadStats(thread int) ThreadStats {
	c.flushBLP()
	return c.threadStats[thread]
}

// ResetStats zeroes all per-thread service statistics and the device
// counters, e.g. after warmup. Buffer contents and policy state persist.
// Pending BLP cycles belong to the discarded window and are dropped with it.
func (c *Controller) ResetStats() {
	for i := range c.threadStats {
		c.threadStats[i] = ThreadStats{}
	}
	c.blpPending = 0
	c.cmdsIssued = 0
	c.dev.ResetStats()
}

// CommandsIssued returns the total DRAM commands issued.
func (c *Controller) CommandsIssued() int64 { return c.cmdsIssued }

// Enqueues returns the number of requests accepted into the read and write
// buffers since construction (never reset). The next-event run loop compares
// it across cycles to detect that an enqueue invalidated a previously
// computed NextEventAt bound.
func (c *Controller) Enqueues() int64 { return c.enqueues }

// EnqueueRead inserts a read request. It returns the request and true, or
// nil and false when the request buffer is full (the core must retry).
func (c *Controller) EnqueueRead(thread int, addr int64, now int64) (*Request, bool) {
	if c.reads.n >= c.cfg.ReadBufEntries {
		return nil, false
	}
	r := c.newRequest(thread, addr, now, false)
	c.idleUntil = 0
	c.enqueues++
	c.reads.pushBack(r)
	c.bankReads[r.Loc.Bank].pushBack(r)
	c.perThread[thread]++
	c.perThreadPerBank[thread][r.Loc.Bank]++
	// Arrival is traced before the policy sees the request: empty-slot
	// batching may mark it inside OnEnqueue, and the trace must show the
	// arrival first.
	if c.tracer != nil {
		c.tracer.RequestArrived(r.ID, thread, r.Loc.Bank, r.Loc.Row, false, now)
	}
	c.policy.OnEnqueue(r, now)
	// After OnEnqueue: the insert comparison must see the policy's
	// per-request stamps (NFQ deadline, empty-slot mark).
	c.cacheInsert(c.readCache, r, false)
	return r, true
}

// EnqueueWrite inserts a writeback. It returns false when the write buffer
// is full.
func (c *Controller) EnqueueWrite(thread int, addr int64, now int64) bool {
	if c.writes.n >= c.cfg.WriteBufEntries {
		return false
	}
	r := c.newRequest(thread, addr, now, true)
	c.idleUntil = 0
	c.enqueues++
	c.writes.pushBack(r)
	c.bankWrites[r.Loc.Bank].pushBack(r)
	c.cacheInsert(c.writeCache, r, true)
	if c.tracer != nil {
		c.tracer.RequestArrived(r.ID, thread, r.Loc.Bank, r.Loc.Row, true, now)
	}
	return true
}

func (c *Controller) newRequest(thread int, addr, now int64, isWrite bool) *Request {
	if thread < 0 || thread >= c.cfg.Threads {
		panic(fmt.Sprintf("memctrl: thread %d out of range [0,%d)", thread, c.cfg.Threads))
	}
	r := c.freeReqs
	if r != nil {
		c.freeReqs = r.links[linkBuf].next
	} else {
		r = new(Request)
	}
	*r = Request{
		ID:       c.nextID,
		Thread:   thread,
		Addr:     addr,
		Loc:      c.dev.Geometry().Map(addr),
		IsWrite:  isWrite,
		Arrival:  now,
		firstCmd: -1,
	}
	c.nextID += c.cfg.IDStride
	return r
}

// freeRequest returns a fully-retired request to the allocation freelist,
// chained through its buffer-link slot. Safe at retire time: by then the
// request is off every queue and cache, and no layer keeps the pointer past
// the completion callbacks — the cores resolve their window slot inside
// Complete (reading only Tag) and the multi-channel drain reads fields
// strictly before the next enqueue could pop the entry again.
func (c *Controller) freeRequest(r *Request) {
	r.links[linkBuf].next = c.freeReqs
	c.freeReqs = r
}

// Tick advances the controller by one DRAM cycle: it retires finished
// bursts, lets the policy update its state, and issues at most one ready
// command chosen by the policy (reads) or FR-FCFS (writes).
func (c *Controller) Tick(now int64) {
	c.retire(now)
	c.policy.OnCycle(now)
	// Defer this cycle's BLP accrual (see blpPending). Retires above already
	// flushed older cycles before changing any busy-bank count, so cycle
	// `now` is pending with its post-retire counts — exactly what the old
	// per-cycle accountBLP observed at this point.
	c.blpPending++

	// Global early-out: with the command bus busy this cycle, no command
	// of any kind can issue, so skip all candidate enumeration.
	if !c.dev.CommandBusFree(now) {
		return
	}

	// All-bank refresh takes absolute priority once due: close the open
	// banks, issue REF, and only then resume request scheduling. Modeled
	// but disabled by default (Timing.TREFI == 0); see DESIGN.md.
	if trefi := c.trefi; trefi > 0 && now >= c.nextRefresh {
		if c.refreshStep(now, trefi) {
			return
		}
	}

	// Idle fast path: an earlier scan proved no command can become legal
	// before idleUntil, and nothing has invalidated that bound since, so the
	// candidate enumeration below cannot succeed. Buffer occupancy is
	// unchanged over the window (enqueues invalidate), so the drain
	// hysteresis below would not flip either.
	if !c.cfg.ReferenceScan && now < c.idleUntil {
		return
	}

	// Write-drain hysteresis.
	if c.writes.n >= c.cfg.WriteDrainHigh {
		c.draining = true
	} else if c.writes.n <= c.cfg.WriteDrainLow {
		c.draining = false
	}

	// Both scans failing arms the idle cache with the min of their bounds,
	// computed as a byproduct of the failed scans themselves — no extra pass.
	var b1, b2 int64
	var ok bool
	if c.draining {
		if ok, b1 = c.issueWrite(now); ok {
			return
		}
		if ok, b2 = c.issueRead(now); ok {
			return
		}
	} else {
		if ok, b1 = c.issueRead(now); ok {
			return
		}
		if ok, b2 = c.issueWrite(now); ok {
			return
		}
	}
	if !c.cfg.ReferenceScan {
		if b2 < b1 {
			b1 = b2
		}
		c.idleUntil = b1
	}
}

// refreshStep advances an in-progress refresh sequence: it issues a
// precharge to one open bank, or the refresh itself once all banks are
// closed. It reports whether the command slot was consumed (the caller
// must then skip request scheduling this cycle).
func (c *Controller) refreshStep(now, trefi int64) bool {
	c.idleUntil = 0
	if c.dev.CanIssue(now, dram.CmdRefresh, 0, 0) {
		c.dev.Issue(now, dram.CmdRefresh, 0, 0)
		c.cmdsIssued++
		c.logCmd(now, dram.CmdRefresh, 0, 0, nil)
		if c.tracer != nil {
			c.tracer.CommandIssued(-1, -1, dram.CmdRefresh, 0, 0, -1, now)
		}
		c.nextRefresh = now + trefi
		return true
	}
	for b := 0; b < c.dev.Geometry().Banks; b++ {
		if c.dev.OpenRow(b) >= 0 && c.dev.CanIssue(now, dram.CmdPrecharge, b, 0) {
			c.dev.Issue(now, dram.CmdPrecharge, b, 0)
			c.cmdsIssued++
			c.logCmd(now, dram.CmdPrecharge, b, 0, nil)
			if c.tracer != nil {
				c.tracer.CommandIssued(-1, -1, dram.CmdPrecharge, b, 0, -1, now)
			}
			return true
		}
	}
	// Banks are still inside tRAS or similar; wait without issuing new
	// work so the refresh is not pushed out indefinitely.
	return true
}

// retire completes data bursts whose end time has passed.
func (c *Controller) retire(now int64) {
	for c.inflight.len() > 0 && c.inflight.front().end <= now {
		e := c.inflight.pop()
		r := e.req
		r.done = true
		if c.tracer != nil {
			c.tracer.RequestCompleted(r.ID, r.Thread, e.end, e.end-r.Arrival)
		}
		st := &c.threadStats[r.Thread]
		if r.IsWrite {
			st.WritesCompleted++
			c.freeRequest(r)
			continue
		}
		c.inServiceBank[r.Thread][r.Loc.Bank]--
		if c.inServiceBank[r.Thread][r.Loc.Bank] == 0 {
			// The busy-bank count is about to drop: settle all pending BLP
			// cycles (over which it was constant) before the transition.
			c.flushBLP()
			c.banksBusy[r.Thread]--
		}
		lat := e.end - r.Arrival
		st.ReadsCompleted++
		st.TotalReadLatency += lat
		if lat > st.WorstCaseLatency {
			st.WorstCaseLatency = lat
		}
		if c.probe != nil {
			c.probe.ObserveReadLatency(r.Thread, lat)
		}
		if r.WasRowHit() {
			st.RowHitReads++
		}
		c.policy.OnComplete(r, now)
		if c.onComplete != nil {
			c.onComplete(r, e.end)
		}
		c.freeRequest(r)
	}
}

// flushBLP folds the pending BLP cycles into threadStats in closed form.
// Callers guarantee every busy-bank count was constant over the pending
// span (retire and first-service flush before transitioning), so crediting
// `count × pending` equals the retired per-cycle accrual bit for bit.
func (c *Controller) flushBLP() {
	p := c.blpPending
	if p == 0 {
		return
	}
	c.blpPending = 0
	for t := range c.banksBusy {
		if n := c.banksBusy[t]; n > 0 {
			c.threadStats[t].blpSum += int64(n) * p
			c.threadStats[t].blpCycles += p
		}
	}
}

// issueRead picks the policy's best ready read candidate and issues its
// command. It reports whether a command was issued and, when it did not, a
// lower bound on the next cycle at which a read-side command could become
// legal (see bestCandidate).
func (c *Controller) issueRead(now int64) (bool, int64) {
	best, ok, bound := c.bestReadCandidate(now)
	if !ok {
		return false, bound
	}
	c.issue(best, now)
	return true, 0
}

// bestReadCandidate enumerates ready commands for buffered reads and returns
// the policy's most-preferred one.
func (c *Controller) bestReadCandidate(now int64) (Candidate, bool, int64) {
	if c.cfg.ReferenceScan {
		best, ok := c.bestReadCandidateScan(now)
		// The reference path never feeds the idle cache: it stays a pure
		// per-cycle oracle for the equivalence tests.
		return best, ok, now
	}
	return c.bestCandidate(c.bankReads, c.readCache, c.cacheReads, now, false)
}

// better orders candidates: the attached policy for reads, FR-FCFS for
// writes.
func (c *Controller) better(a, b Candidate, isWrite bool) bool {
	if isWrite {
		return writeBetter(a, b)
	}
	return c.policy.Better(a, b)
}

// bestReadCandidateScan is the pre-index O(buffer) reference scan, retained
// for the equivalence tests (Config.ReferenceScan).
func (c *Controller) bestReadCandidateScan(now int64) (Candidate, bool) {
	var best Candidate
	found := false
	elig, hasElig := c.policy.(EligibilityPolicy)
	for r := c.reads.head; r != nil; r = r.NextBuffered() {
		if hasElig && !elig.Eligible(r) {
			continue
		}
		cand, ok := c.candidateFor(r, now)
		if !ok {
			continue
		}
		if !found || c.policy.Better(cand, best) {
			best = cand
			found = true
		}
	}
	return best, found
}

func (c *Controller) candidateFor(r *Request, now int64) (Candidate, bool) {
	state := c.dev.RowStateOf(r.Loc.Bank, r.Loc.Row)
	cmd := c.dev.NextCommand(r.Loc.Bank, r.Loc.Row, r.IsWrite)
	if !c.dev.CanIssue(now, cmd, r.Loc.Bank, r.Loc.Row) {
		return Candidate{}, false
	}
	return Candidate{Req: r, Cmd: cmd, RowState: state}, true
}

// issueWrite drains the write buffer with a fixed FR-FCFS order. Like
// issueRead it reports whether a command issued and, on failure, a lower
// bound on the next cycle a write-side command could become legal (an empty
// buffer bounds to "never" — enqueues invalidate the idle cache).
func (c *Controller) issueWrite(now int64) (bool, int64) {
	if c.writes.n == 0 {
		return false, int64(math.MaxInt64)
	}
	var best Candidate
	var found bool
	bound := now
	if c.cfg.ReferenceScan {
		best, found = c.issueWriteScan(now)
	} else {
		// The write order (writeBetter) is time-invariant, so the write
		// cache needs no policy epoch — only the cache-off knob disables it.
		best, found, bound = c.bestCandidate(c.bankWrites, c.writeCache, !c.cfg.DisableCandidateCache, now, true)
	}
	if !found {
		return false, bound
	}
	c.issue(best, now)
	return true, 0
}

// issueWriteScan is the pre-index reference scan over the write buffer.
func (c *Controller) issueWriteScan(now int64) (Candidate, bool) {
	var best Candidate
	found := false
	for r := c.writes.head; r != nil; r = r.NextBuffered() {
		cand, ok := c.candidateFor(r, now)
		if !ok {
			continue
		}
		if !found || writeBetter(cand, best) {
			best = cand
			found = true
		}
	}
	return best, found
}

// writeBetter is FR-FCFS: row-hit CAS first, then oldest.
func writeBetter(a, b Candidate) bool {
	if a.IsRowHit() != b.IsRowHit() {
		return a.IsRowHit()
	}
	return a.Req.ID < b.Req.ID
}

// issue sends the candidate's command to the device and updates request and
// controller state.
func (c *Controller) issue(cand Candidate, now int64) {
	r := cand.Req
	c.idleUntil = 0
	var end int64
	if cand.Cmd == dram.CmdRead || cand.Cmd == dram.CmdWrite {
		end = c.issueCAS(cand, now)
	} else {
		end = c.dev.Issue(now, cand.Cmd, r.Loc.Bank, r.Loc.Row)
	}
	c.cmdsIssued++
	c.logCmd(now, cand.Cmd, r.Loc.Bank, r.Loc.Row, r)
	if c.tracer != nil {
		rank := -1
		if c.ranked != nil && !r.IsWrite {
			rank = c.ranked.RankPosition(r.Thread)
		}
		c.tracer.CommandIssued(r.ID, r.Thread, cand.Cmd, r.Loc.Bank, r.Loc.Row, rank, now)
	}
	if r.firstCmd < 0 {
		r.firstCmd = now
		if !r.IsWrite {
			if c.inServiceBank[r.Thread][r.Loc.Bank] == 0 {
				// First service raises the busy-bank count: settle pending
				// BLP cycles first. The pending span already includes cycle
				// `now` with its pre-issue count, matching the old per-cycle
				// accrual that ran before scheduling.
				c.flushBLP()
				c.banksBusy[r.Thread]++
			}
			c.inServiceBank[r.Thread][r.Loc.Bank]++
		}
	}
	if cand.Cmd == dram.CmdPrecharge || cand.Cmd == dram.CmdActivate {
		r.neededACT = true
	}
	if !r.IsWrite {
		c.policy.OnIssue(cand, now)
	}
	if cand.Cmd == dram.CmdRead || cand.Cmd == dram.CmdWrite {
		c.removeBuffered(r)
		c.inflight.push(inflightEntry{end: end, req: r})
	}
}

// issueCAS sends the candidate's column access, with auto-precharge under
// the closed-page policy when no other buffered request wants the row.
func (c *Controller) issueCAS(cand Candidate, now int64) int64 {
	r := cand.Req
	if c.cfg.ClosedPage && !c.rowWanted(r) {
		return c.dev.IssueAutoPrecharge(now, cand.Cmd, r.Loc.Bank, r.Loc.Row)
	}
	return c.dev.Issue(now, cand.Cmd, r.Loc.Bank, r.Loc.Row)
}

// rowWanted reports whether any other buffered request targets req's row.
// req itself is still buffered (it is removed only after its CAS is chosen),
// hence the self-exclusion. The fast path walks only req's bank queues; it
// runs once per CAS under the closed-page policy and never on the default
// open-page path, so it does not merit an index of its own.
func (c *Controller) rowWanted(req *Request) bool {
	if c.cfg.ReferenceScan {
		return c.rowWantedScan(req)
	}
	rq := &c.bankReads[req.Loc.Bank]
	for r := rq.head; r != nil; r = rq.next(r) {
		if r != req && r.Loc.Row == req.Loc.Row {
			return true
		}
	}
	wq := &c.bankWrites[req.Loc.Bank]
	for r := wq.head; r != nil; r = wq.next(r) {
		if r != req && r.Loc.Row == req.Loc.Row {
			return true
		}
	}
	return false
}

// rowWantedScan is the pre-index O(buffer) reference implementation.
func (c *Controller) rowWantedScan(req *Request) bool {
	for r := c.reads.head; r != nil; r = r.NextBuffered() {
		if r != req && r.Loc.Bank == req.Loc.Bank && r.Loc.Row == req.Loc.Row {
			return true
		}
	}
	for r := c.writes.head; r != nil; r = r.NextBuffered() {
		if r != req && r.Loc.Bank == req.Loc.Bank && r.Loc.Row == req.Loc.Row {
			return true
		}
	}
	return false
}

// removeBuffered unlinks a CAS-issued request from its buffer and bank
// queue — O(1) pointer surgery on the intrusive lists — and updates the
// bank's candidate entry (invalidated only when a cached winner departs).
func (c *Controller) removeBuffered(r *Request) {
	if r.IsWrite {
		c.writes.remove(r)
		c.bankWrites[r.Loc.Bank].remove(r)
		c.writeCache[r.Loc.Bank].cacheRemove(r)
		return
	}
	c.reads.remove(r)
	c.bankReads[r.Loc.Bank].remove(r)
	c.readCache[r.Loc.Bank].cacheRemove(r)
	c.perThread[r.Thread]--
	c.perThreadPerBank[r.Thread][r.Loc.Bank]--
}

// logCmd forwards an issued command to the registered log hook.
func (c *Controller) logCmd(now int64, cmd dram.Command, bank int, row int64, r *Request) {
	if c.cmdLog == nil {
		return
	}
	ev := CommandEvent{Now: now, Cmd: cmd, Bank: bank, Row: row, Thread: -1, ReqID: -1, Channel: c.cfg.Channel}
	if r != nil {
		ev.Thread = r.Thread
		ev.ReqID = r.ID
	}
	c.cmdLog(ev)
}
