package memctrl

// inflightRing is a FIFO ring buffer of CAS-issued requests ordered by data
// burst completion time. It replaces the earlier `inflight = inflight[1:]`
// slice shift, which both copied on append-wraparound and pinned every
// retired *Request in the backing array for the lifetime of the run.
type inflightRing struct {
	buf  []inflightEntry
	head int
	n    int
}

// newInflightRing pre-sizes the ring so steady-state operation never
// allocates; capacity is the worst-case number of concurrently inflight
// bursts (bounded by the request buffers feeding them).
func newInflightRing(capacity int) inflightRing {
	if capacity < 4 {
		capacity = 4
	}
	return inflightRing{buf: make([]inflightEntry, capacity)}
}

// len returns the number of queued entries.
func (q *inflightRing) len() int { return q.n }

// front returns the oldest entry; the ring must be non-empty.
func (q *inflightRing) front() inflightEntry {
	return q.buf[q.head]
}

// push appends an entry, growing the ring if full.
func (q *inflightRing) push(e inflightEntry) {
	if q.n == len(q.buf) {
		grown := make([]inflightEntry, 2*len(q.buf))
		for i := 0; i < q.n; i++ {
			grown[i] = q.buf[(q.head+i)%len(q.buf)]
		}
		q.buf, q.head = grown, 0
	}
	q.buf[(q.head+q.n)%len(q.buf)] = e
	q.n++
}

// pop removes and returns the oldest entry, releasing its slot's request
// pointer so retired requests become collectable immediately.
func (q *inflightRing) pop() inflightEntry {
	e := q.buf[q.head]
	q.buf[q.head] = inflightEntry{}
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return e
}
