package memctrl

import (
	"math/rand"
	"testing"

	"repro/internal/dram"
)

// testPolicy is a minimal FR-FCFS used to exercise the controller plumbing.
type testPolicy struct {
	ctrl      *Controller
	enqueues  int
	issues    int
	completes int
	cycles    int
}

func (p *testPolicy) Name() string { return "test-frfcfs" }
func (p *testPolicy) Better(a, b Candidate) bool {
	if a.IsRowHit() != b.IsRowHit() {
		return a.IsRowHit()
	}
	return a.Req.ID < b.Req.ID
}
func (p *testPolicy) OnAttach(c *Controller)          { p.ctrl = c }
func (p *testPolicy) OnEnqueue(r *Request, now int64) { p.enqueues++ }
func (p *testPolicy) OnIssue(c Candidate, now int64)  { p.issues++ }
func (p *testPolicy) OnComplete(r *Request, now int64) {
	p.completes++
}
func (p *testPolicy) OnCycle(now int64) { p.cycles++ }

func newTestController(t *testing.T, threads int) (*Controller, *testPolicy) {
	t.Helper()
	dev, err := dram.NewDevice(dram.DDR2_800(), dram.DefaultGeometry())
	if err != nil {
		t.Fatal(err)
	}
	p := &testPolicy{}
	c, err := NewController(dev, p, DefaultConfig(threads))
	if err != nil {
		t.Fatal(err)
	}
	return c, p
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero threads", func(c *Config) { c.Threads = 0 }},
		{"zero read buf", func(c *Config) { c.ReadBufEntries = 0 }},
		{"zero write buf", func(c *Config) { c.WriteBufEntries = 0 }},
		{"high > capacity", func(c *Config) { c.WriteDrainHigh = c.WriteBufEntries + 1 }},
		{"low >= high", func(c *Config) { c.WriteDrainLow = c.WriteDrainHigh }},
		{"negative low", func(c *Config) { c.WriteDrainLow = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig(4)
			tc.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Errorf("Validate accepted bad config (%s)", tc.name)
			}
		})
	}
	if err := DefaultConfig(4).Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestDefaultConfigMatchesPaperTable2(t *testing.T) {
	cfg := DefaultConfig(4)
	if cfg.ReadBufEntries != 128 {
		t.Errorf("request buffer = %d entries, want 128", cfg.ReadBufEntries)
	}
	if cfg.WriteBufEntries != 64 {
		t.Errorf("write buffer = %d entries, want 64", cfg.WriteBufEntries)
	}
}

func TestEnqueueReadCapacity(t *testing.T) {
	c, p := newTestController(t, 1)
	for i := 0; i < 128; i++ {
		if _, ok := c.EnqueueRead(0, int64(i)*64, 0); !ok {
			t.Fatalf("enqueue %d rejected below capacity", i)
		}
	}
	if _, ok := c.EnqueueRead(0, 9999*64, 0); ok {
		t.Fatal("enqueue accepted beyond 128-entry capacity")
	}
	if p.enqueues != 128 {
		t.Errorf("policy saw %d enqueues, want 128", p.enqueues)
	}
	if c.PendingReads() != 128 {
		t.Errorf("pending reads = %d, want 128", c.PendingReads())
	}
}

func TestEnqueueWriteCapacity(t *testing.T) {
	c, _ := newTestController(t, 1)
	for i := 0; i < 64; i++ {
		if !c.EnqueueWrite(0, int64(i)*64, 0) {
			t.Fatalf("write enqueue %d rejected below capacity", i)
		}
	}
	if c.EnqueueWrite(0, 9999*64, 0) {
		t.Fatal("write enqueue accepted beyond 64-entry capacity")
	}
}

func TestBadThreadPanics(t *testing.T) {
	c, _ := newTestController(t, 2)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range thread did not panic")
		}
	}()
	c.EnqueueRead(5, 0, 0)
}

func TestSingleReadCompletes(t *testing.T) {
	c, p := newTestController(t, 1)
	var completedAt int64 = -1
	c.SetOnComplete(func(r *Request, end int64) { completedAt = end })
	req, ok := c.EnqueueRead(0, 0, 0)
	if !ok {
		t.Fatal("enqueue failed")
	}
	for now := int64(0); now < 100 && completedAt < 0; now++ {
		c.Tick(now)
	}
	if completedAt < 0 {
		t.Fatal("read never completed")
	}
	tm := c.Device().Timing()
	// Closed bank: ACT at 0, RD at tRCD, data ends tRCD+tCL+burst.
	want := tm.TRCD + tm.TCL + c.Device().BurstCycles()
	if completedAt != want {
		t.Errorf("completion at %d, want %d", completedAt, want)
	}
	if req.WasRowHit() {
		t.Error("first access to closed bank reported as row hit")
	}
	st := c.ThreadStats(0)
	if st.ReadsCompleted != 1 || st.TotalReadLatency != want || st.WorstCaseLatency != want {
		t.Errorf("stats = %+v, want 1 read with latency %d", st, want)
	}
	if p.completes != 1 {
		t.Errorf("policy saw %d completes, want 1", p.completes)
	}
}

func TestRowHitSecondRead(t *testing.T) {
	c, _ := newTestController(t, 1)
	done := 0
	var hits int
	c.SetOnComplete(func(r *Request, end int64) {
		done++
		if r.WasRowHit() {
			hits++
		}
	})
	// Two reads to the same row: second should be a row hit.
	c.EnqueueRead(0, 0, 0)
	c.EnqueueRead(0, 64, 0)
	for now := int64(0); now < 200 && done < 2; now++ {
		c.Tick(now)
	}
	if done != 2 {
		t.Fatal("reads did not complete")
	}
	if hits != 1 {
		t.Errorf("row hits = %d, want exactly 1 (second read)", hits)
	}
	if got := c.ThreadStats(0).RowHitRate(); got != 0.5 {
		t.Errorf("row hit rate = %f, want 0.5", got)
	}
}

func TestTableOneRegisters(t *testing.T) {
	c, _ := newTestController(t, 2)
	g := c.Device().Geometry()
	// Three reads from thread 0 to bank of addr 0, one from thread 1.
	b := g.Map(0).Bank
	c.EnqueueRead(0, 0, 0)
	c.EnqueueRead(0, 64, 0)
	c.EnqueueRead(0, 128, 0)
	c.EnqueueRead(1, 0+1<<30, 0)
	if got := c.ReadsPerThread(0); got != 3 {
		t.Errorf("ReqsPerThread[0] = %d, want 3", got)
	}
	if got := c.ReadsInBank(0, b); got != 3 {
		t.Errorf("ReqsInBankPerThread[0][%d] = %d, want 3", b, got)
	}
	if got := c.ReadsPerThread(1); got != 1 {
		t.Errorf("ReqsPerThread[1] = %d, want 1", got)
	}
}

func TestWritesDrainWhenNoReads(t *testing.T) {
	c, _ := newTestController(t, 1)
	for i := 0; i < 4; i++ {
		c.EnqueueWrite(0, int64(i)*64, 0)
	}
	for now := int64(0); now < 300; now++ {
		c.Tick(now)
	}
	if got := c.ThreadStats(0).WritesCompleted; got != 4 {
		t.Errorf("writes completed = %d, want 4", got)
	}
	if c.PendingWrites() != 0 {
		t.Errorf("pending writes = %d, want 0", c.PendingWrites())
	}
}

func TestReadsPrioritizedOverWrites(t *testing.T) {
	c, _ := newTestController(t, 1)
	var order []bool // true = read
	c.SetOnComplete(func(r *Request, end int64) { order = append(order, true) })
	// Below the drain watermark, a ready read must beat buffered writes.
	for i := 0; i < 8; i++ {
		c.EnqueueWrite(0, int64(i+100)*2048*8, 0)
	}
	c.EnqueueRead(0, 0, 0)
	var readDone int64 = -1
	c.SetOnComplete(func(r *Request, end int64) {
		if !r.IsWrite && readDone < 0 {
			readDone = end
		}
	})
	for now := int64(0); now < 400; now++ {
		c.Tick(now)
	}
	tm := c.Device().Timing()
	uncontended := tm.TRCD + tm.TCL + c.Device().BurstCycles()
	if readDone != uncontended {
		t.Errorf("read completed at %d; want uncontended %d (writes must not delay it)", readDone, uncontended)
	}
	_ = order
}

func TestWriteDrainModeKicksIn(t *testing.T) {
	c, _ := newTestController(t, 1)
	// Fill write buffer to the high watermark; writes must then be serviced
	// even while reads are continuously available.
	for i := 0; i < 48; i++ {
		c.EnqueueWrite(0, int64(i)*2048*8, 0)
	}
	for i := 0; i < 64; i++ {
		c.EnqueueRead(0, int64(i)*64, 0)
	}
	for now := int64(0); now < 2000; now++ {
		c.Tick(now)
	}
	if got := c.ThreadStats(0).WritesCompleted; got == 0 {
		t.Error("drain mode never serviced writes despite full buffer")
	}
}

// TestConservationRandomStream checks that every enqueued request completes
// exactly once, under a random mixed read/write stream from several threads.
func TestConservationRandomStream(t *testing.T) {
	c, p := newTestController(t, 4)
	rng := rand.New(rand.NewSource(7))
	completed := map[int64]int{}
	c.SetOnComplete(func(r *Request, end int64) { completed[r.ID]++ })
	readsSent, writesSent := 0, 0
	now := int64(0)
	for ; now < 30000 && readsSent+writesSent < 600; now++ {
		if rng.Intn(3) == 0 {
			th := rng.Intn(4)
			addr := int64(th)<<32 | int64(rng.Intn(1<<20))&^63
			if rng.Intn(4) == 0 {
				if c.EnqueueWrite(th, addr, now) {
					writesSent++
				}
			} else {
				if _, ok := c.EnqueueRead(th, addr, now); ok {
					readsSent++
				}
			}
		}
		c.Tick(now)
	}
	for ; now < 100000; now++ {
		c.Tick(now)
		if c.PendingReads() == 0 && c.PendingWrites() == 0 && c.inflight.len() == 0 {
			break
		}
	}
	var reads, writes int64
	for th := 0; th < 4; th++ {
		st := c.ThreadStats(th)
		reads += st.ReadsCompleted
		writes += st.WritesCompleted
	}
	if reads != int64(readsSent) {
		t.Errorf("reads completed = %d, sent %d", reads, readsSent)
	}
	if writes != int64(writesSent) {
		t.Errorf("writes completed = %d, sent %d", writes, writesSent)
	}
	for id, n := range completed {
		if n != 1 {
			t.Errorf("request %d completed %d times", id, n)
		}
	}
	if p.completes != readsSent {
		t.Errorf("policy completions = %d, want %d (reads only)", p.completes, readsSent)
	}
	// BLP must be at least 1 whenever measured.
	for th := 0; th < 4; th++ {
		if blp := c.ThreadStats(th).BLP(); blp != 0 && blp < 1 {
			t.Errorf("thread %d BLP = %f, must be >= 1 when defined", th, blp)
		}
	}
}

func TestZeroStatsAccessors(t *testing.T) {
	var st ThreadStats
	if st.BLP() != 0 || st.AvgReadLatency() != 0 || st.RowHitRate() != 0 {
		t.Error("zero stats should report zero metrics")
	}
}
