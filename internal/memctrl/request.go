// Package memctrl implements the on-chip DRAM controller substrate of the
// PAR-BS paper (Mutlu & Moscibroda, ISCA 2008): a bounded memory request
// buffer, a write data buffer, and a pluggable scheduling policy that picks
// among ready DRAM commands every DRAM cycle.
//
// The baseline configuration (paper Table 2) is a 128-entry request buffer
// and a 64-entry write buffer with reads prioritized over writes. Policies
// (FCFS, FR-FCFS, NFQ, STFM, PAR-BS, ...) order read requests; writes are
// drained opportunistically when no read command is ready, or forcibly when
// the write buffer fills, mirroring how real controllers keep stores off the
// critical path.
package memctrl

import "repro/internal/dram"

// Request is one memory request (a cache-line read or write) in the
// controller's request buffer.
//
// The scratch fields Marked and Deadline belong to the attached Policy;
// they correspond to per-request registers that schedulers keep in the
// request buffer (the marked bit of the paper's Table 1, and the virtual
// finish time that the NFQ baseline keeps per request).
type Request struct {
	// ID is the controller-assigned arrival sequence number; it implements
	// the FCFS "request ID" component of the paper's Figure 4 priority value.
	ID int64
	// Thread is the requesting thread (== core) index.
	Thread int
	// Addr is the physical byte address.
	Addr int64
	// Loc is the decoded DRAM location.
	Loc dram.Location
	// IsWrite marks writeback requests; they never block a core.
	IsWrite bool
	// Arrival is the DRAM cycle the request entered the buffer.
	Arrival int64

	// Marked is the PAR-BS batch bit (Table 1, "Marked").
	Marked bool
	// Deadline is the NFQ virtual finish time.
	Deadline float64
	// Stamp is a policy-owned scratch counter; PAR-BS stores the batch
	// index current at arrival to derive its max-batch-wait bound.
	Stamp int64
	// Tag is issuer-owned scratch: the core that issued a read records its
	// instruction-window slot here (via MemPort.IssueRead) so the completion
	// routes back without a lookup table. Writes leave it zero.
	Tag int

	// neededACT records that the request could not be serviced as a row hit;
	// set when a precharge or activate is issued on its behalf.
	neededACT bool
	// firstCmd is the DRAM cycle the first command was issued for this
	// request, or -1 while it has received no service.
	firstCmd int64
	// done marks fully-serviced requests (data burst finished).
	done bool

	// links holds the request's intrusive list memberships (see reqlist.go):
	// linkBuf threads the read (or write) buffer in arrival order, linkBank
	// its bank's queue. Owned by the controller.
	links [2]reqLinks
}

// NextBuffered returns the next request in arrival order on the same buffer
// (read requests link to reads, writes to writes), or nil at the tail.
// Together with Controller.FirstRead it replaces the slice view policies
// used to iterate the buffer with, at the same oldest-first order.
func (r *Request) NextBuffered() *Request { return r.links[linkBuf].next }

// WasRowHit reports whether the request was serviced straight from the open
// row, i.e. no activate was needed on its behalf.
func (r *Request) WasRowHit() bool { return !r.neededACT }

// InService reports whether at least one DRAM command has been issued for the
// request but it has not yet completed. Used for the paper's bank-level
// parallelism (BLP) metric: the average number of a thread's requests being
// serviced concurrently.
func (r *Request) InService() bool { return r.firstCmd >= 0 && !r.done }

// Candidate pairs a request with the DRAM command it needs next and the
// row-buffer state it currently sees. Policies order candidates.
type Candidate struct {
	Req *Request
	Cmd dram.Command
	// RowState is the row-buffer state the *request* sees (hit, closed,
	// conflict). A row-hit candidate has Cmd == CmdRead or CmdWrite.
	RowState dram.RowState
}

// IsRowHit reports whether the candidate would be serviced as a row hit.
func (c Candidate) IsRowHit() bool { return c.RowState == dram.RowHit }

// Policy orders read requests. The controller calls Better to pick the best
// ready candidate each DRAM cycle and invokes the On* hooks so stateful
// policies (PAR-BS batching, NFQ virtual clocks, STFM slowdown estimation)
// can maintain their bookkeeping.
type Policy interface {
	// Name identifies the policy in results tables.
	Name() string
	// Better reports whether candidate a should be scheduled before b.
	// It must induce a strict weak ordering.
	Better(a, b Candidate) bool
	// OnAttach hands the policy its controller before the first cycle.
	OnAttach(c *Controller)
	// OnEnqueue runs when a read request enters the request buffer.
	OnEnqueue(r *Request, now int64)
	// OnIssue runs when any DRAM command is issued for a read request.
	OnIssue(cand Candidate, now int64)
	// OnComplete runs when a read request's data burst finishes.
	OnComplete(r *Request, now int64)
	// OnCycle runs once per DRAM cycle before scheduling.
	OnCycle(now int64)
}

// EligibilityPolicy is an optional extension of Policy: when implemented,
// the controller skips read requests for which Eligible reports false —
// the hook hard-partitioning schedulers (strict TDM) use to leave the
// channel idle rather than serve out-of-slot threads.
type EligibilityPolicy interface {
	Eligible(r *Request) bool
}

// EpochedPolicy is an optional extension of Policy that enables the
// controller's per-bank best-candidate cache (see candcache.go). Implementing
// it is a contract about Better (and Eligible, when present):
//
// Between two calls that return the same OrderEpoch value, and absent
// enqueue or issue events touching a bank, the relative order of any two
// candidates from that bank within the same command class (both row hits,
// both row conflicts, or both activates to a closed bank) must not change,
// and neither may their eligibility. Cross-bank and cross-class comparisons
// carry no such obligation — the controller re-compares class winners
// freshly on every scan, so terms that depend on the current cycle or on
// other banks' state (NFQ's tRAS boost window, TDM's slot owner,
// FR-FCFS+Cap's streak cap) stay exact as long as they are uniform within a
// bank-and-class.
//
// A policy must therefore bump (or otherwise change) its epoch whenever
// within-bank-within-class order can shift without such an event: PAR-BS on
// every batch formation (marking and ranking change), STFM when its
// fairness-mode decision (unfair, slowest) changes, TDM on slot-owner
// change. Completion hooks are bound by the same rule — an OnComplete that
// reorders live candidates must bump the epoch (PAR-BS's batch end only
// reorders at the next cycle's formBatch, which does). Policies whose
// within-bank-within-class order is time-invariant (FCFS, FR-FCFS, NFQ,
// FR-FCFS+Cap) return a constant.
//
// Policies that do not implement the interface get no candidate cache: the
// controller rescans their bank queues every evaluated cycle, which is
// always correct. DESIGN.md §16 specifies the full contract.
type EpochedPolicy interface {
	OrderEpoch() uint64
}
