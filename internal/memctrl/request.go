// Package memctrl implements the on-chip DRAM controller substrate of the
// PAR-BS paper (Mutlu & Moscibroda, ISCA 2008): a bounded memory request
// buffer, a write data buffer, and a pluggable scheduling policy that picks
// among ready DRAM commands every DRAM cycle.
//
// The baseline configuration (paper Table 2) is a 128-entry request buffer
// and a 64-entry write buffer with reads prioritized over writes. Policies
// (FCFS, FR-FCFS, NFQ, STFM, PAR-BS, ...) order read requests; writes are
// drained opportunistically when no read command is ready, or forcibly when
// the write buffer fills, mirroring how real controllers keep stores off the
// critical path.
package memctrl

import "repro/internal/dram"

// Request is one memory request (a cache-line read or write) in the
// controller's request buffer.
//
// The scratch fields Marked and Deadline belong to the attached Policy;
// they correspond to per-request registers that schedulers keep in the
// request buffer (the marked bit of the paper's Table 1, and the virtual
// finish time that the NFQ baseline keeps per request).
type Request struct {
	// ID is the controller-assigned arrival sequence number; it implements
	// the FCFS "request ID" component of the paper's Figure 4 priority value.
	ID int64
	// Thread is the requesting thread (== core) index.
	Thread int
	// Addr is the physical byte address.
	Addr int64
	// Loc is the decoded DRAM location.
	Loc dram.Location
	// IsWrite marks writeback requests; they never block a core.
	IsWrite bool
	// Arrival is the DRAM cycle the request entered the buffer.
	Arrival int64

	// Marked is the PAR-BS batch bit (Table 1, "Marked").
	Marked bool
	// Deadline is the NFQ virtual finish time.
	Deadline float64

	// neededACT records that the request could not be serviced as a row hit;
	// set when a precharge or activate is issued on its behalf.
	neededACT bool
	// firstCmd is the DRAM cycle the first command was issued for this
	// request, or -1 while it has received no service.
	firstCmd int64
	// done marks fully-serviced requests (data burst finished).
	done bool
}

// WasRowHit reports whether the request was serviced straight from the open
// row, i.e. no activate was needed on its behalf.
func (r *Request) WasRowHit() bool { return !r.neededACT }

// InService reports whether at least one DRAM command has been issued for the
// request but it has not yet completed. Used for the paper's bank-level
// parallelism (BLP) metric: the average number of a thread's requests being
// serviced concurrently.
func (r *Request) InService() bool { return r.firstCmd >= 0 && !r.done }

// Candidate pairs a request with the DRAM command it needs next and the
// row-buffer state it currently sees. Policies order candidates.
type Candidate struct {
	Req *Request
	Cmd dram.Command
	// RowState is the row-buffer state the *request* sees (hit, closed,
	// conflict). A row-hit candidate has Cmd == CmdRead or CmdWrite.
	RowState dram.RowState
}

// IsRowHit reports whether the candidate would be serviced as a row hit.
func (c Candidate) IsRowHit() bool { return c.RowState == dram.RowHit }

// Policy orders read requests. The controller calls Better to pick the best
// ready candidate each DRAM cycle and invokes the On* hooks so stateful
// policies (PAR-BS batching, NFQ virtual clocks, STFM slowdown estimation)
// can maintain their bookkeeping.
type Policy interface {
	// Name identifies the policy in results tables.
	Name() string
	// Better reports whether candidate a should be scheduled before b.
	// It must induce a strict weak ordering.
	Better(a, b Candidate) bool
	// OnAttach hands the policy its controller before the first cycle.
	OnAttach(c *Controller)
	// OnEnqueue runs when a read request enters the request buffer.
	OnEnqueue(r *Request, now int64)
	// OnIssue runs when any DRAM command is issued for a read request.
	OnIssue(cand Candidate, now int64)
	// OnComplete runs when a read request's data burst finishes.
	OnComplete(r *Request, now int64)
	// OnCycle runs once per DRAM cycle before scheduling.
	OnCycle(now int64)
}

// EligibilityPolicy is an optional extension of Policy: when implemented,
// the controller skips read requests for which Eligible reports false —
// the hook hard-partitioning schedulers (strict TDM) use to leave the
// channel idle rather than serve out-of-slot threads.
type EligibilityPolicy interface {
	Eligible(r *Request) bool
}
