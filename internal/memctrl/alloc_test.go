package memctrl

import (
	"testing"

	"repro/internal/dram"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// blockedPolicy is FR-FCFS with every request ineligible: the controller
// runs its full per-cycle scheduling enumeration but never issues, giving a
// pure measurement of the decision path.
type blockedPolicy struct{ testPolicy }

func (p *blockedPolicy) Eligible(*Request) bool { return false }

// fillBuffers loads the request and write buffers with a spread of banks
// and rows.
func fillBuffers(t *testing.T, c *Controller, reads, writes int) {
	t.Helper()
	g := c.Device().Geometry()
	for i := 0; i < reads; i++ {
		loc := dram.Location{Bank: i % g.Banks, Row: int64(i % 32), Col: 0}
		if _, ok := c.EnqueueRead(i%c.NumThreads(), g.Unmap(loc), 0); !ok {
			t.Fatalf("read buffer full at %d", i)
		}
	}
	for i := 0; i < writes; i++ {
		loc := dram.Location{Bank: i % g.Banks, Row: int64(16 + i%16), Col: 1}
		if !c.EnqueueWrite(i%c.NumThreads(), g.Unmap(loc), 0) {
			t.Fatalf("write buffer full at %d", i)
		}
	}
}

// TestSchedulingPathAllocationFree: enumerating candidates over a full
// buffer must not allocate, cycle after cycle.
func TestSchedulingPathAllocationFree(t *testing.T) {
	dev, err := dram.NewDevice(dram.DDR2_800(), dram.DefaultGeometry())
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewController(dev, &blockedPolicy{}, DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	fillBuffers(t, c, 128, 16)
	now := int64(0)
	avg := testing.AllocsPerRun(10, func() {
		for i := 0; i < 1000; i++ {
			c.Tick(now)
			now++
		}
	})
	if avg != 0 {
		t.Errorf("scheduling path allocates %.1f objects per 1000 idle-decision cycles, want 0", avg)
	}
}

// TestSchedulingPathAllocationFreeWithProbe: an attached telemetry probe
// must keep the per-cycle decision and retire paths allocation-free; the
// probe's ring buffers are all preallocated at Bind.
func TestSchedulingPathAllocationFreeWithProbe(t *testing.T) {
	dev, err := dram.NewDevice(dram.DDR2_800(), dram.DefaultGeometry())
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewController(dev, &testPolicy{}, DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	probe := telemetry.NewProbe(telemetry.Config{})
	probe.Bind(4, dev.Geometry().Banks, dev.BurstCycles(), 8)
	c.SetProbe(probe)
	g := dev.Geometry()
	// Sustained traffic so the probe's ObserveReadLatency hook runs on every
	// retire: each completion re-enqueues a fresh request.
	var seq int64
	c.SetOnComplete(func(r *Request, end int64) {
		seq++
		loc := dram.Location{Bank: int(seq) % g.Banks, Row: seq % 32, Col: 0}
		c.EnqueueRead(int(seq)%4, g.Unmap(loc), end)
	})
	fillBuffers(t, c, 64, 0)
	now := int64(0)
	for ; now < 20_000; now++ { // reach steady state
		c.Tick(now)
	}
	var enqueued int64
	avg := testing.AllocsPerRun(1, func() {
		start := seq
		for i := 0; i < 5_000; i++ {
			c.Tick(now)
			now++
		}
		enqueued = seq - start
	})
	if enqueued == 0 {
		t.Fatal("no traffic flowed; test is vacuous")
	}
	// Same bound as the probe-free steady-state test: only the Request
	// objects themselves may allocate.
	if avg > float64(enqueued)+8 {
		t.Errorf("probed controller allocated %.0f objects per window for %d enqueues; the probe must add none",
			avg, enqueued)
	}
	rep := probe.Report(telemetry.ReportMeta{})
	if rep.ReadLatency.Count == 0 {
		t.Error("probe observed no read latencies; hook coverage is vacuous")
	}
}

// TestUntracedPathAllocationFree pins the tracing layer's zero-overhead
// claim: with no tracer attached (the default), the nil-gated lifecycle
// hooks must leave the per-cycle decision path allocation-free.
func TestUntracedPathAllocationFree(t *testing.T) {
	dev, err := dram.NewDevice(dram.DDR2_800(), dram.DefaultGeometry())
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewController(dev, &blockedPolicy{}, DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	c.SetTracer(nil) // explicit: the gate, not an attached tracer
	fillBuffers(t, c, 128, 16)
	now := int64(0)
	avg := testing.AllocsPerRun(10, func() {
		for i := 0; i < 1000; i++ {
			c.Tick(now)
			now++
		}
	})
	if avg != 0 {
		t.Errorf("untraced decision path allocates %.1f objects per 1000 cycles, want 0", avg)
	}
}

// TestSaturatedTracerHookPathAddsNoAllocations: once a tracer's event
// buffer is full, every hook call only bumps the drop counter — sustained
// traffic must allocate no more than the untraced steady state (one
// Request per enqueue).
func TestSaturatedTracerHookPathAddsNoAllocations(t *testing.T) {
	dev, err := dram.NewDevice(dram.DDR2_800(), dram.DefaultGeometry())
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewController(dev, &testPolicy{}, DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.NewTracer(trace.Config{MaxEvents: 1})
	tr.Bind(trace.Meta{})
	c.SetTracer(tr)
	g := dev.Geometry()
	var seq int64
	enqueues := 0
	c.SetOnComplete(func(r *Request, end int64) {
		seq++
		loc := dram.Location{Bank: int(seq) % g.Banks, Row: seq % 32, Col: 0}
		if _, ok := c.EnqueueRead(int(seq)%4, g.Unmap(loc), end); ok {
			enqueues++
		}
	})
	fillBuffers(t, c, 64, 0)
	now := int64(0)
	for ; now < 20_000; now++ { // reach steady state; saturates the tracer
		c.Tick(now)
	}
	if tr.Dropped() == 0 {
		t.Fatal("tracer not saturated; test is vacuous")
	}
	const window = 5_000
	enqueues = 0
	avg := testing.AllocsPerRun(1, func() {
		for i := 0; i < window; i++ {
			c.Tick(now)
			now++
		}
	})
	perRun := float64(enqueues) / 2
	if perRun == 0 {
		t.Fatal("no traffic flowed; test is vacuous")
	}
	if avg > perRun+8 {
		t.Errorf("saturated-tracer controller allocated %.0f objects per window for %.0f enqueues; the hooks must add none",
			avg, perRun)
	}
}

// TestSteadyStateAllocationsBounded is the regression test for the former
// `inflight = inflight[1:]` slice retention: under sustained traffic the
// controller must allocate only the Request objects themselves (one per
// enqueue), never per-cycle or per-issue bookkeeping.
func TestSteadyStateAllocationsBounded(t *testing.T) {
	dev, err := dram.NewDevice(dram.DDR2_800(), dram.DefaultGeometry())
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewController(dev, &testPolicy{}, DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	g := dev.Geometry()
	// Constant occupancy: every completion re-enqueues a fresh request over
	// a recycled set of rows, so maps and slices reach steady state.
	var seq int64
	enqueues := 0
	c.SetOnComplete(func(r *Request, end int64) {
		seq++
		loc := dram.Location{Bank: int(seq) % g.Banks, Row: seq % 32, Col: 0}
		if _, ok := c.EnqueueRead(int(seq)%4, g.Unmap(loc), end); ok {
			enqueues++
		}
	})
	fillBuffers(t, c, 64, 0)
	now := int64(0)
	for ; now < 20_000; now++ { // reach steady state
		c.Tick(now)
	}
	const window = 5_000
	enqueues = 0
	avg := testing.AllocsPerRun(1, func() {
		for i := 0; i < window; i++ {
			c.Tick(now)
			now++
		}
	})
	// AllocsPerRun ran the body twice (one warm-up), so halve the enqueue
	// count it accumulated. Allow a small slack for map-bucket churn.
	perRun := float64(enqueues) / 2
	if avg > perRun+8 {
		t.Errorf("controller allocated %.0f objects per %d-cycle window for %.0f enqueues; want at most one per enqueue (+8 slack)",
			avg, window, perRun)
	}
	if perRun == 0 {
		t.Fatal("no traffic flowed; test is vacuous")
	}
}
