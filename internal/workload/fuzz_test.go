package workload

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadItems hardens the trace parser: arbitrary input must either
// parse or return an error — never panic — and parsed output must survive
// a write/read round trip.
func FuzzReadItems(f *testing.F) {
	f.Add("10\n1 R 64\n2 W 128\n")
	f.Add("# comment\n\n5\n")
	f.Add("1 R")
	f.Add("x y z")
	f.Add("9223372036854775807 R 9223372036854775807")
	f.Fuzz(func(t *testing.T, input string) {
		items, err := ReadItems(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteItems(&buf, items); err != nil {
			t.Fatalf("write of parsed items failed: %v", err)
		}
		back, err := ReadItems(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if len(back) != len(items) {
			t.Fatalf("round trip %d -> %d items", len(items), len(back))
		}
		for i := range items {
			if back[i] != items[i] {
				t.Fatalf("item %d changed across round trip", i)
			}
		}
	})
}
