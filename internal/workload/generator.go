package workload

import (
	"math/rand"

	"repro/internal/cpu"
	"repro/internal/dram"
)

// generator synthesizes an instruction stream matching a profile's Table 3
// signature:
//
//   - Memory intensity: accesses are spaced so the long-run rate is MPKI
//     load misses per 1000 instructions.
//   - Bank-level parallelism: misses arrive in episodes that touch ~BLP
//     distinct banks; the accesses of an episode are interleaved with tiny
//     compute gaps so they coexist in the 128-entry instruction window and
//     become concurrent DRAM requests.
//   - Row-buffer locality: within an episode, each touched bank receives a
//     run of consecutive cache lines from one row; run lengths are
//     geometric with mean 1/(1-RowHit), so when the run is serviced in
//     order all but its first access are row hits.
//
// Each thread works in a private slice of the row space, so co-scheduled
// threads never share rows — the multiprogrammed setting of the paper.
type generator struct {
	p    Profile
	g    dram.Geometry
	rng  *rand.Rand
	base int64 // first row of the thread's private row slice
	span int64 // rows in the slice

	// queue holds the items of the episode under emission; qHead is the
	// consumption cursor. The backing array is reused across episodes so
	// steady-state generation performs no allocations.
	queue []cpu.Item
	qHead int

	// runs and bankScratch are per-episode scratch, reused for the same
	// reason.
	runs        []bankRun
	bankScratch []int

	// rowOf tracks each bank's current row and next column for the thread.
	rowOf []int64
	colOf []int64

	// perm and offset implement sticky bank-set rotation: episodes that
	// follow each other closely (gap shorter than the instruction window)
	// draw their banks from a slowly-sliding window of a fixed permutation,
	// so two episodes coexisting in the window touch nearly the same banks
	// and the thread's bank-level parallelism stays at its target instead
	// of inflating.
	perm   []int
	offset int

	// lastGap is the previous episode's trailing compute gap; it decides
	// whether the next episode can overlap the previous one in the window.
	lastGap int64

	// carry accumulates the fractional instruction budget between misses.
	carry float64
}

// rowsPerThread bounds the supported thread count: Rows/rowsPerThread
// threads fit without overlap (16384/512 = 32 threads by default).
const rowsPerThread = 512

func newGenerator(p Profile, threadID int, g dram.Geometry, seed int64) *generator {
	gen := &generator{
		p:     p,
		g:     g,
		rng:   rand.New(rand.NewSource(seed*1_000_003 + int64(threadID)*7919 + int64(p.Index))),
		base:  (int64(threadID) * rowsPerThread) % g.Rows,
		span:  rowsPerThread,
		rowOf: make([]int64, g.Banks),
		colOf: make([]int64, g.Banks),
	}
	for b := range gen.rowOf {
		gen.rowOf[b] = gen.base + gen.rng.Int63n(gen.span)
	}
	gen.perm = gen.rng.Perm(g.Banks)
	return gen
}

// Next implements cpu.TraceSource.
func (gen *generator) Next() cpu.Item {
	if gen.qHead >= len(gen.queue) {
		gen.queue = gen.queue[:0]
		gen.qHead = 0
		gen.emitEpisode()
	}
	it := gen.queue[gen.qHead]
	gen.qHead++
	return it
}

// burstWidth draws the number of distinct banks an episode touches,
// clamped to the device's bank count. The structural width is calibrated
// above the BLP target (1 + (BLP-1)*2.2) because requests to distinct
// banks start and finish staggered, so the measured bank-parallelism of an
// episode is below the number of banks it touches; the factor was fitted
// so alone-run measured BLP matches Table 3 (see the Table 3 experiment).
func (gen *generator) burstWidth() int {
	blp := 1 + (gen.p.BLP-1)*widthFactor
	k := int(blp)
	if gen.rng.Float64() < blp-float64(k) {
		k++
	}
	if k < 1 {
		k = 1
	}
	if k > gen.g.Banks {
		k = gen.g.Banks
	}
	return k
}

// runLength draws a same-row run length with mean 1/(1-RowHit), capped at
// the row size so a run never crosses a row boundary.
func (gen *generator) runLength() int {
	hit := gen.p.RowHit
	if hit <= 0 {
		return 1
	}
	if hit > 0.97 {
		hit = 0.97
	}
	n := 1
	for gen.rng.Float64() < hit && int64(n) < gen.g.ColumnsPerRow() {
		n++
	}
	return n
}

// bankRun is one bank's same-row access run within an episode.
type bankRun struct {
	bank int
	len  int
}

// emitEpisode builds one miss episode plus its trailing compute gap.
func (gen *generator) emitEpisode() {
	width := gen.burstWidth()
	banks := gen.pickBanks(width)

	// Build the per-bank runs.
	if cap(gen.runs) < width {
		gen.runs = make([]bankRun, width)
	}
	runs := gen.runs[:width]
	total := 0
	for i, b := range banks {
		// Each run targets a fresh row: its first access is a row conflict
		// and the remainder are row hits when serviced in order, which
		// makes the long-run hit rate track 1 - 1/E[run length].
		gen.newRow(b)
		l := gen.runLength()
		runs[i] = bankRun{bank: b, len: l}
		total += l
	}

	// Interleave accesses across banks round-robin with 1-instruction gaps
	// so the whole episode fits in the instruction window.
	for emitted := 0; emitted < total; {
		for i := range runs {
			if runs[i].len == 0 {
				continue
			}
			runs[i].len--
			emitted++
			gen.queue = append(gen.queue, cpu.Item{
				NonMem:    1,
				Access:    cpu.Access{Addr: gen.nextAddr(runs[i].bank), Bank: runs[i].bank},
				HasAccess: true,
			})
		}
	}

	// Dirty evictions: writebacks into the rows just streamed through (the
	// lines the episode itself dirtied). Targeting the episode's rows keeps
	// writes from tearing down the thread's read row-locality, matching
	// streaming update benchmarks; writes never block the core either way.
	writes := int(gen.p.WriteRatio*float64(total) + gen.rng.Float64())
	for i := 0; i < writes; i++ {
		b := banks[gen.rng.Intn(len(banks))]
		addr := gen.g.Unmap(dram.Location{Bank: b, Row: gen.rowOf[b], Col: gen.rng.Int63n(gen.g.ColumnsPerRow())})
		gen.queue = append(gen.queue, cpu.Item{
			NonMem:    0,
			Access:    cpu.Access{Addr: addr, IsWrite: true},
			HasAccess: true,
		})
	}

	// Trailing compute gap sized to hit the MPKI target. The per-access
	// 1-instruction gaps above already consumed `total` instructions.
	perMiss := 1000 / gen.p.MPKI
	gen.carry += perMiss*float64(total) - float64(total)
	var gap int64
	if gen.carry > 0 {
		gap = int64(gen.carry)
		gen.carry -= float64(gap)
		if gap > 0 {
			gen.queue = append(gen.queue, cpu.Item{NonMem: gap})
		}
	}
	gen.lastGap = gap
}

// overlapWindow is the instruction distance within which two consecutive
// episodes can coexist in a 128-entry instruction window.
const overlapWindow = 256

// pickBanks selects `width` distinct banks. When the previous episode's
// gap was long enough that the episodes cannot overlap in the window, the
// set is re-randomized; otherwise it slides by one position so overlapping
// episodes touch nearly the same banks.
func (gen *generator) pickBanks(width int) []int {
	if gen.lastGap >= overlapWindow {
		gen.offset = gen.rng.Intn(gen.g.Banks)
	} else {
		gen.offset = (gen.offset + 1) % gen.g.Banks
	}
	out := gen.bankScratch[:0]
	for i := 0; i < width; i++ {
		out = append(out, gen.perm[(gen.offset+i)%gen.g.Banks])
	}
	gen.bankScratch = out
	return out
}

// nextAddr returns the next cache-line address of the bank's current run
// and advances the column pointer, starting a fresh row when the run was
// reset by emitEpisode's new-episode row choice.
func (gen *generator) nextAddr(bank int) int64 {
	if gen.colOf[bank] >= gen.g.ColumnsPerRow() {
		gen.newRow(bank)
	}
	addr := gen.g.Unmap(dram.Location{Bank: bank, Row: gen.rowOf[bank], Col: gen.colOf[bank]})
	gen.colOf[bank]++
	return addr
}

// newRow moves the bank pointer to a fresh random row.
func (gen *generator) newRow(bank int) {
	gen.rowOf[bank] = gen.base + gen.rng.Int63n(gen.span)
	gen.colOf[bank] = 0
}

// widthFactor calibrates structural episode width above the BLP target;
// see burstWidth.
const widthFactor = 1.0
