package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/cpu"
	"repro/internal/dram"
)

// This file provides trace materialization and a plain-text trace format,
// so workloads can be recorded, inspected, edited and replayed — the
// trace-driven workflow of the paper's methodology (their traces came from
// Pin; ours can come from the synthetic generator or from a file).
//
// Format: one item per line,
//
//	<nonmem> [R|W <addr>]
//
// where <nonmem> is the count of non-memory instructions preceding the
// access and the optional access is a load miss (R) or writeback (W) to a
// byte address. Lines starting with '#' are comments.

// RecordTrace materializes the first n items of the profile's trace.
func RecordTrace(p Profile, threadID int, g dram.Geometry, seed int64, n int) []cpu.Item {
	src := p.Trace(threadID, g, seed)
	items := make([]cpu.Item, 0, n)
	for len(items) < n {
		items = append(items, src.Next())
	}
	return items
}

// SliceTrace replays a recorded item list.
type SliceTrace struct {
	// Items is the trace body.
	Items []cpu.Item
	// Loop restarts from the beginning at the end; otherwise the trace
	// idles (empty items) once exhausted.
	Loop bool
	pos  int
}

// Next implements cpu.TraceSource.
func (s *SliceTrace) Next() cpu.Item {
	if s.pos >= len(s.Items) {
		if !s.Loop || len(s.Items) == 0 {
			return cpu.Item{}
		}
		s.pos = 0
	}
	it := s.Items[s.pos]
	s.pos++
	return it
}

// TraceProfile wraps recorded items as a Profile usable in a Mix. The
// geometry is needed to stamp each access's bank (required by the core's
// per-bank bookkeeping).
func TraceProfile(name string, items []cpu.Item, g dram.Geometry, loop bool) Profile {
	stamped := make([]cpu.Item, len(items))
	for i, it := range items {
		if it.HasAccess {
			it.Access.Bank = g.Map(it.Access.Addr).Bank
		}
		stamped[i] = it
	}
	return Profile{
		Name: name,
		Source: func(threadID int, _ dram.Geometry, _ int64) cpu.TraceSource {
			// Each core gets an independent cursor over the shared items.
			return &SliceTrace{Items: stamped, Loop: loop}
		},
	}
}

// WriteItems serializes items in the text trace format.
func WriteItems(w io.Writer, items []cpu.Item) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# parbs trace: <nonmem> [R|W <addr>]")
	for _, it := range items {
		if !it.HasAccess {
			fmt.Fprintf(bw, "%d\n", it.NonMem)
			continue
		}
		kind := "R"
		if it.Access.IsWrite {
			kind = "W"
		}
		fmt.Fprintf(bw, "%d %s %d\n", it.NonMem, kind, it.Access.Addr)
	}
	return bw.Flush()
}

// ReadItems parses the text trace format. Banks are left zero; use
// TraceProfile (or stamp manually) to bind addresses to a geometry.
func ReadItems(r io.Reader) ([]cpu.Item, error) {
	var items []cpu.Item
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		nonMem, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil || nonMem < 0 {
			return nil, fmt.Errorf("workload: trace line %d: bad instruction count %q", lineNo, fields[0])
		}
		it := cpu.Item{NonMem: nonMem}
		switch len(fields) {
		case 1:
			// pure compute run
		case 3:
			addr, err := strconv.ParseInt(fields[2], 10, 64)
			if err != nil || addr < 0 {
				return nil, fmt.Errorf("workload: trace line %d: bad address %q", lineNo, fields[2])
			}
			switch fields[1] {
			case "R":
				it.Access = cpu.Access{Addr: addr}
			case "W":
				it.Access = cpu.Access{Addr: addr, IsWrite: true}
			default:
				return nil, fmt.Errorf("workload: trace line %d: bad access kind %q", lineNo, fields[1])
			}
			it.HasAccess = true
		default:
			return nil, fmt.Errorf("workload: trace line %d: want 1 or 3 fields, got %d", lineNo, len(fields))
		}
		items = append(items, it)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return items, nil
}
