package workload

import (
	"fmt"
	"math/rand"
	"sort"
)

// Mix is a named multiprogrammed workload: one benchmark per core.
type Mix struct {
	Name       string
	Benchmarks []Profile
}

// MixOf builds a mix from benchmark names.
func MixOf(name string, names ...string) (Mix, error) {
	m := Mix{Name: name}
	for _, n := range names {
		p, err := ByName(n)
		if err != nil {
			return Mix{}, err
		}
		m.Benchmarks = append(m.Benchmarks, p)
	}
	return m, nil
}

func mustMix(name string, names ...string) Mix {
	m, err := MixOf(name, names...)
	if err != nil {
		panic(err)
	}
	return m
}

// CaseStudyI is the paper's Section 8.1.1 memory-intensive 4-core workload.
func CaseStudyI() Mix {
	return mustMix("CSI", "libquantum", "mcf", "GemsFDTD", "xalancbmk")
}

// CaseStudyII is the Section 8.1.2 non-intensive 4-core workload.
func CaseStudyII() Mix {
	return mustMix("CSII", "matlab", "h264ref", "omnetpp", "hmmer")
}

// CaseStudyIII is the Section 8.1.3 workload: four copies of lbm.
func CaseStudyIII() Mix {
	return mustMix("CSIII", "lbm", "lbm", "lbm", "lbm")
}

// FourCopies returns a 4-core mix of the named benchmark (Figure 13's
// 4 x lbm and 4 x matlab columns).
func FourCopies(name string) (Mix, error) {
	return MixOf("4x"+name, name, name, name, name)
}

// Figure8Samples returns the ten sample 4-core workloads labeled along the
// x-axis of Figure 8.
func Figure8Samples() []Mix {
	return []Mix{
		mustMix("W1", "libquantum", "h264ref", "omnetpp", "hmmer"),
		mustMix("W2", "lbm", "matlab", "GemsFDTD", "omnetpp"),
		mustMix("W3", "GemsFDTD", "omnetpp", "astar", "hmmer"),
		mustMix("W4", "libquantum", "xml-parser", "astar", "hmmer"),
		mustMix("W5", "matlab", "omnetpp", "astar", "bzip2"),
		mustMix("W6", "leslie3d", "leslie3d", "leslie3d", "leslie3d"),
		mustMix("W7", "sphinx3", "libquantum", "h264ref", "omnetpp"),
		mustMix("W8", "libquantum", "mcf", "xalancbmk", "gromacs"),
		mustMix("W9", "lbm", "matlab", "astar", "hmmer"),
		mustMix("W10", "lbm", "astar", "h264ref", "gromacs"),
	}
}

// Figure9Workload is the mixed 8-core workload of Figure 9.
func Figure9Workload() Mix {
	return mustMix("8core-mixed",
		"mcf", "xml-parser", "cactusADM", "astar", "hmmer", "h264ref", "gromacs", "bzip2")
}

// Figure10Samples returns the five sample 16-core workloads of Figure 10.
// The first two are given in the paper by Table 3 benchmark indices; the
// intensive/middle/non-intensive triples are reconstructed as the top,
// middle and bottom of the MCPI ranking (8 benchmarks, two copies each).
func Figure10Samples() []Mix {
	byIdx := func(name string, idx ...int) Mix {
		m := Mix{Name: name}
		for _, i := range idx {
			p, err := ByIndex(i)
			if err != nil {
				panic(err)
			}
			m.Benchmarks = append(m.Benchmarks, p)
		}
		return m
	}
	w1 := byIdx("W16-1", 1, 5, 6, 9, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 27, 28)
	w2 := byIdx("W16-2", 9, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 24, 25, 26, 27, 28)

	ranked := Benchmarks()
	sort.SliceStable(ranked, func(i, j int) bool { return ranked[i].MCPI > ranked[j].MCPI })
	slice16 := func(name string, from int) Mix {
		m := Mix{Name: name}
		for _, p := range ranked[from : from+8] {
			m.Benchmarks = append(m.Benchmarks, p, p)
		}
		return m
	}
	return []Mix{w1, w2,
		slice16("intensive16", 0),
		slice16("middle16", 10),
		slice16("non-intensive16", 20),
	}
}

// RandomMixes reproduces the paper's workload construction (Section 7):
// mixes are formed by pseudo-randomly selecting a benchmark from each of a
// combination of categories, such that different category combinations are
// evaluated. For cores == 4 the category combinations cycle through all
// 4-subsets of the 8 categories; for larger systems one benchmark is drawn
// per category round-robin.
func RandomMixes(n, cores int, seed int64) []Mix {
	rng := rand.New(rand.NewSource(seed))
	var combos [][]int
	if cores == 4 {
		combos = combinations(8, 4)
		rng.Shuffle(len(combos), func(i, j int) { combos[i], combos[j] = combos[j], combos[i] })
	}
	mixes := make([]Mix, 0, n)
	for i := 0; i < n; i++ {
		var cats []int
		if cores == 4 {
			cats = combos[i%len(combos)]
		} else {
			cats = make([]int, cores)
			for c := 0; c < cores; c++ {
				cats[c] = c % 8
			}
		}
		m := Mix{Name: fmt.Sprintf("rand%dc-%03d", cores, i)}
		for _, cat := range cats {
			pool := ByCategory(cat)
			m.Benchmarks = append(m.Benchmarks, pool[rng.Intn(len(pool))])
		}
		mixes = append(mixes, m)
	}
	return mixes
}

// combinations enumerates all k-subsets of {0..n-1}.
func combinations(n, k int) [][]int {
	var out [][]int
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		out = append(out, append([]int(nil), idx...))
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			return out
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}
