// Package workload models the paper's benchmark suite and workload mixes.
//
// The authors drove their simulator with Pin/iDNA traces of the SPEC
// CPU2006 benchmarks plus two Windows desktop applications (Table 3). We do
// not have those traces, so each benchmark is modeled as a synthetic
// statistical trace matched to its Table 3 signature — memory intensity
// (L2 MPKI), row-buffer locality (RB hit rate) and bank-level parallelism
// (BLP). These three properties are exactly the axes along which the paper
// categorizes benchmarks and explains every result, so preserving the
// triple preserves the scheduling behaviors under study (see DESIGN.md).
package workload

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/dram"
)

// Profile describes one benchmark's memory behavior, mirroring a row of the
// paper's Table 3.
type Profile struct {
	// Index is the benchmark number in Table 3 (1-based).
	Index int
	// Name is the benchmark name as printed in the paper.
	Name string
	// Type is FP, INT or DSK (desktop).
	Type string
	// MPKI is the L2 load misses per 1000 instructions (generation target).
	MPKI float64
	// RowHit is the row-buffer hit rate (generation target).
	RowHit float64
	// BLP is the bank-level parallelism (generation target).
	BLP float64
	// MCPI and ASTPerReq are the paper's measured values, kept for
	// reference and for the Table 3 characterization experiment.
	MCPI      float64
	ASTPerReq float64
	// Category is the paper's 3-bit class: MCPI high/low, RB hit high/low,
	// BLP high/low (e.g. 7 = 111 = intensive, high locality, high BLP).
	Category int
	// WriteRatio is the fraction of writebacks per load miss in the
	// generated trace (not in Table 3; dirty-eviction model).
	WriteRatio float64
	// Source, when non-nil, overrides the synthetic generator: the profile
	// replays the returned trace instead. Used for recorded or file-based
	// traces (see RecordTrace and TraceProfile).
	Source func(threadID int, g dram.Geometry, seed int64) cpu.TraceSource
}

// String returns "name (category C)".
func (p Profile) String() string { return fmt.Sprintf("%s (category %d)", p.Name, p.Category) }

// benchmarks is Table 3 verbatim (Index, Name, Type, MCPI, MPKI, RB hit,
// BLP, AST/req, Category).
var benchmarks = []Profile{
	{Index: 1, Name: "leslie3d", Type: "FP", MCPI: 7.30, MPKI: 51.52, RowHit: 0.628, BLP: 1.90, ASTPerReq: 139, Category: 7},
	{Index: 2, Name: "soplex", Type: "FP", MCPI: 6.18, MPKI: 47.58, RowHit: 0.788, BLP: 1.81, ASTPerReq: 125, Category: 7},
	{Index: 3, Name: "lbm", Type: "FP", MCPI: 3.57, MPKI: 43.59, RowHit: 0.611, BLP: 3.37, ASTPerReq: 77, Category: 7},
	{Index: 4, Name: "sphinx3", Type: "FP", MCPI: 3.05, MPKI: 24.89, RowHit: 0.750, BLP: 1.89, ASTPerReq: 117, Category: 7},
	{Index: 5, Name: "matlab", Type: "DSK", MCPI: 15.4, MPKI: 78.36, RowHit: 0.937, BLP: 1.08, ASTPerReq: 192, Category: 6},
	{Index: 6, Name: "libquantum", Type: "INT", MCPI: 9.10, MPKI: 50.00, RowHit: 0.984, BLP: 1.10, ASTPerReq: 181, Category: 6},
	{Index: 7, Name: "milc", Type: "FP", MCPI: 4.65, MPKI: 32.48, RowHit: 0.864, BLP: 1.51, ASTPerReq: 139, Category: 6},
	{Index: 8, Name: "xml-parser", Type: "DSK", MCPI: 2.92, MPKI: 18.23, RowHit: 0.953, BLP: 1.32, ASTPerReq: 158, Category: 6},
	{Index: 9, Name: "mcf", Type: "INT", MCPI: 6.45, MPKI: 98.68, RowHit: 0.415, BLP: 4.75, ASTPerReq: 64, Category: 5},
	{Index: 10, Name: "GemsFDTD", Type: "FP", MCPI: 4.08, MPKI: 29.95, RowHit: 0.204, BLP: 2.40, ASTPerReq: 126, Category: 5},
	{Index: 11, Name: "xalancbmk", Type: "INT", MCPI: 2.80, MPKI: 23.52, RowHit: 0.598, BLP: 2.27, ASTPerReq: 113, Category: 5},
	{Index: 12, Name: "cactusADM", Type: "FP", MCPI: 2.78, MPKI: 11.68, RowHit: 0.0675, BLP: 1.60, ASTPerReq: 219, Category: 4},
	{Index: 13, Name: "gcc", Type: "INT", MCPI: 0.05, MPKI: 0.37, RowHit: 0.639, BLP: 1.87, ASTPerReq: 127, Category: 3},
	{Index: 14, Name: "tonto", Type: "FP", MCPI: 0.02, MPKI: 0.13, RowHit: 0.707, BLP: 1.92, ASTPerReq: 108, Category: 3},
	{Index: 15, Name: "povray", Type: "FP", MCPI: 0.00, MPKI: 0.03, RowHit: 0.799, BLP: 1.75, ASTPerReq: 123, Category: 3},
	{Index: 16, Name: "h264ref", Type: "INT", MCPI: 0.48, MPKI: 2.65, RowHit: 0.765, BLP: 1.29, ASTPerReq: 161, Category: 2},
	{Index: 17, Name: "gobmk", Type: "INT", MCPI: 0.11, MPKI: 0.60, RowHit: 0.611, BLP: 1.46, ASTPerReq: 162, Category: 2},
	{Index: 18, Name: "dealII", Type: "FP", MCPI: 0.07, MPKI: 0.41, RowHit: 0.903, BLP: 1.21, ASTPerReq: 133, Category: 2},
	{Index: 19, Name: "namd", Type: "FP", MCPI: 0.06, MPKI: 0.33, RowHit: 0.866, BLP: 1.27, ASTPerReq: 160, Category: 2},
	{Index: 20, Name: "wrf", Type: "FP", MCPI: 0.05, MPKI: 0.28, RowHit: 0.836, BLP: 1.20, ASTPerReq: 164, Category: 2},
	{Index: 21, Name: "calculix", Type: "FP", MCPI: 0.04, MPKI: 0.19, RowHit: 0.759, BLP: 1.30, ASTPerReq: 157, Category: 2},
	{Index: 22, Name: "perlbench", Type: "INT", MCPI: 0.02, MPKI: 0.13, RowHit: 0.754, BLP: 1.69, ASTPerReq: 128, Category: 2},
	{Index: 23, Name: "omnetpp", Type: "INT", MCPI: 1.96, MPKI: 22.15, RowHit: 0.267, BLP: 3.78, ASTPerReq: 86, Category: 1},
	{Index: 24, Name: "bzip2", Type: "INT", MCPI: 0.49, MPKI: 3.56, RowHit: 0.520, BLP: 2.05, ASTPerReq: 127, Category: 1},
	{Index: 25, Name: "astar", Type: "INT", MCPI: 1.82, MPKI: 9.25, RowHit: 0.502, BLP: 1.45, ASTPerReq: 177, Category: 0},
	{Index: 26, Name: "hmmer", Type: "INT", MCPI: 1.50, MPKI: 5.67, RowHit: 0.338, BLP: 1.26, ASTPerReq: 231, Category: 0},
	{Index: 27, Name: "gromacs", Type: "FP", MCPI: 0.18, MPKI: 0.68, RowHit: 0.582, BLP: 1.04, ASTPerReq: 220, Category: 0},
	{Index: 28, Name: "sjeng", Type: "INT", MCPI: 0.10, MPKI: 0.41, RowHit: 0.168, BLP: 1.53, ASTPerReq: 192, Category: 0},
}

// Benchmarks returns Table 3: the 28 benchmark profiles in paper order.
// The returned slice is a copy; callers may modify it.
func Benchmarks() []Profile {
	out := make([]Profile, len(benchmarks))
	copy(out, benchmarks)
	for i := range out {
		out[i].WriteRatio = defaultWriteRatio
	}
	return out
}

// defaultWriteRatio models dirty evictions: one writeback per four load
// misses. Writes never block cores and are drained off the critical path.
const defaultWriteRatio = 0.25

// ByName returns the profile with the given Table 3 name.
func ByName(name string) (Profile, error) {
	for _, p := range Benchmarks() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// ByIndex returns the profile with the given 1-based Table 3 index.
func ByIndex(i int) (Profile, error) {
	if i < 1 || i > len(benchmarks) {
		return Profile{}, fmt.Errorf("workload: benchmark index %d out of range [1,%d]", i, len(benchmarks))
	}
	p := benchmarks[i-1]
	p.WriteRatio = defaultWriteRatio
	return p, nil
}

// ByCategory returns all profiles in the given 0..7 category.
func ByCategory(cat int) []Profile {
	var out []Profile
	for _, p := range Benchmarks() {
		if p.Category == cat {
			out = append(out, p)
		}
	}
	return out
}

// Names maps a profile slice to its names.
func Names(ps []Profile) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	return out
}

// MustByName is ByName for static benchmark names; it panics on a typo.
func MustByName(name string) Profile {
	p, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return p
}

// Trace returns a deterministic trace source for the profile, suitable for
// a cpu.Core: the synthetic generator matched to the profile's Table 3
// signature, or the custom Source when set. threadID selects the thread's
// private slice of the physical address space; seed varies the stream.
func (p Profile) Trace(threadID int, g dram.Geometry, seed int64) cpu.TraceSource {
	if p.Source != nil {
		return p.Source(threadID, g, seed)
	}
	return newGenerator(p, threadID, g, seed)
}
