package workload

import (
	"testing"
	"testing/quick"

	"repro/internal/cpu"
	"repro/internal/dram"
)

func TestBenchmarksMatchTable3(t *testing.T) {
	bs := Benchmarks()
	if len(bs) != 28 {
		t.Fatalf("got %d benchmarks, want 28 (Table 3)", len(bs))
	}
	// Spot-check the rows the paper's case studies lean on.
	spot := map[string]struct {
		mpki, rbhit, blp float64
		cat              int
	}{
		"libquantum": {50.00, 0.984, 1.10, 6},
		"mcf":        {98.68, 0.415, 4.75, 5},
		"lbm":        {43.59, 0.611, 3.37, 7},
		"omnetpp":    {22.15, 0.267, 3.78, 1},
		"hmmer":      {5.67, 0.338, 1.26, 0},
		"matlab":     {78.36, 0.937, 1.08, 6},
	}
	for name, want := range spot {
		p, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.MPKI != want.mpki || p.RowHit != want.rbhit || p.BLP != want.blp || p.Category != want.cat {
			t.Errorf("%s = %+v, want %+v", name, p, want)
		}
	}
	// Indices must be 1..28 in order.
	for i, p := range bs {
		if p.Index != i+1 {
			t.Errorf("benchmark %d has index %d", i, p.Index)
		}
	}
}

func TestCategoriesConsistent(t *testing.T) {
	// Category bit encoding: MCPI (1: >= 1.0), RB hit (1: >= 0.6ish),
	// BLP (1: high). Verify every benchmark's category has all 8 values
	// covered and each category is non-empty.
	for cat := 0; cat < 8; cat++ {
		if len(ByCategory(cat)) == 0 {
			t.Errorf("category %d empty", cat)
		}
	}
}

func TestByNameAndIndexErrors(t *testing.T) {
	if _, err := ByName("nosuch"); err == nil {
		t.Error("ByName accepted unknown name")
	}
	if _, err := ByIndex(0); err == nil {
		t.Error("ByIndex accepted 0")
	}
	if _, err := ByIndex(29); err == nil {
		t.Error("ByIndex accepted 29")
	}
	p, err := ByIndex(9)
	if err != nil || p.Name != "mcf" {
		t.Errorf("ByIndex(9) = %v, %v; want mcf", p.Name, err)
	}
}

func TestMustByNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustByName did not panic on typo")
		}
	}()
	MustByName("tyop")
}

func TestNames(t *testing.T) {
	got := Names(CaseStudyI().Benchmarks)
	want := []string{"libquantum", "mcf", "GemsFDTD", "xalancbmk"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names = %v, want %v", got, want)
		}
	}
}

func TestCaseStudyMixes(t *testing.T) {
	if len(CaseStudyI().Benchmarks) != 4 || len(CaseStudyII().Benchmarks) != 4 {
		t.Error("case studies must be 4-core")
	}
	for _, p := range CaseStudyIII().Benchmarks {
		if p.Name != "lbm" {
			t.Error("CSIII must be four copies of lbm")
		}
	}
	m, err := FourCopies("matlab")
	if err != nil || len(m.Benchmarks) != 4 || m.Benchmarks[3].Name != "matlab" {
		t.Errorf("FourCopies: %v %v", m, err)
	}
	if _, err := FourCopies("nosuch"); err == nil {
		t.Error("FourCopies accepted unknown name")
	}
	if _, err := MixOf("x", "nosuch"); err == nil {
		t.Error("MixOf accepted unknown name")
	}
}

func TestFigureWorkloads(t *testing.T) {
	if got := len(Figure8Samples()); got != 10 {
		t.Errorf("Figure 8 samples = %d, want 10", got)
	}
	if got := len(Figure9Workload().Benchmarks); got != 8 {
		t.Errorf("Figure 9 workload has %d benchmarks, want 8", got)
	}
	f10 := Figure10Samples()
	if len(f10) != 5 {
		t.Fatalf("Figure 10 samples = %d, want 5", len(f10))
	}
	for _, m := range f10 {
		if len(m.Benchmarks) != 16 {
			t.Errorf("%s has %d benchmarks, want 16", m.Name, len(m.Benchmarks))
		}
	}
	// W16-1 is specified by Table 3 indices 1,5,6,9,13-22,27,28.
	wantFirst := []string{"leslie3d", "matlab", "libquantum", "mcf"}
	for i, n := range wantFirst {
		if f10[0].Benchmarks[i].Name != n {
			t.Errorf("W16-1[%d] = %s, want %s", i, f10[0].Benchmarks[i].Name, n)
		}
	}
	// intensive16 must have higher mean paper-MCPI than non-intensive16.
	mean := func(m Mix) float64 {
		s := 0.0
		for _, p := range m.Benchmarks {
			s += p.MCPI
		}
		return s / float64(len(m.Benchmarks))
	}
	if mean(f10[2]) <= mean(f10[4]) {
		t.Error("intensive16 must be more intensive than non-intensive16")
	}
}

func TestRandomMixesConstruction(t *testing.T) {
	ms := RandomMixes(100, 4, 42)
	if len(ms) != 100 {
		t.Fatalf("got %d mixes", len(ms))
	}
	for _, m := range ms {
		if len(m.Benchmarks) != 4 {
			t.Fatalf("%s has %d benchmarks", m.Name, len(m.Benchmarks))
		}
	}
	// Reproducibility.
	again := RandomMixes(100, 4, 42)
	for i := range ms {
		for j := range ms[i].Benchmarks {
			if ms[i].Benchmarks[j].Name != again[i].Benchmarks[j].Name {
				t.Fatal("RandomMixes not deterministic for equal seeds")
			}
		}
	}
	// Different seeds should differ somewhere.
	other := RandomMixes(100, 4, 43)
	same := true
	for i := range ms {
		for j := range ms[i].Benchmarks {
			if ms[i].Benchmarks[j].Name != other[i].Benchmarks[j].Name {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds produced identical mixes")
	}
	// 8- and 16-core shapes.
	for _, m := range RandomMixes(16, 8, 7) {
		if len(m.Benchmarks) != 8 {
			t.Fatal("8-core mix wrong size")
		}
	}
	for _, m := range RandomMixes(12, 16, 7) {
		if len(m.Benchmarks) != 16 {
			t.Fatal("16-core mix wrong size")
		}
	}
}

func TestCombinations(t *testing.T) {
	cs := combinations(8, 4)
	if len(cs) != 70 {
		t.Fatalf("C(8,4) = %d, want 70", len(cs))
	}
	seen := map[[4]int]bool{}
	for _, c := range cs {
		var k [4]int
		copy(k[:], c)
		if seen[k] {
			t.Fatal("duplicate combination")
		}
		seen[k] = true
		for i := 1; i < 4; i++ {
			if c[i] <= c[i-1] {
				t.Fatal("combination not strictly increasing")
			}
		}
	}
}

// drainTrace pulls n accesses from a trace and returns them with the
// non-memory instruction count between them.
func drainTrace(src cpu.TraceSource, n int) (accs []cpu.Access, instrs int64) {
	for len(accs) < n {
		it := src.Next()
		instrs += it.NonMem
		if it.HasAccess {
			accs = append(accs, it.Access)
			instrs++ // the access instruction itself
		}
	}
	return accs, instrs
}

func TestGeneratorMatchesMPKI(t *testing.T) {
	g := dram.DefaultGeometry()
	for _, name := range []string{"libquantum", "mcf", "hmmer", "povray"} {
		p := MustByName(name)
		src := p.Trace(0, g, 1)
		reads := 0
		var instrs int64
		accs, instrs := drainTrace(src, 3000)
		for _, a := range accs {
			if !a.IsWrite {
				reads++
			}
		}
		gotMPKI := 1000 * float64(reads) / float64(instrs)
		if gotMPKI < p.MPKI*0.85 || gotMPKI > p.MPKI*1.15 {
			t.Errorf("%s: trace MPKI = %.2f, want ~%.2f", name, gotMPKI, p.MPKI)
		}
	}
}

func TestGeneratorThreadIsolation(t *testing.T) {
	g := dram.DefaultGeometry()
	p := MustByName("mcf")
	rows := func(thread int) map[[2]int64]bool {
		src := p.Trace(thread, g, 1)
		seen := map[[2]int64]bool{}
		accs, _ := drainTrace(src, 500)
		for _, a := range accs {
			loc := g.Map(a.Addr)
			seen[[2]int64{int64(loc.Bank), loc.Row}] = true
		}
		return seen
	}
	r0, r1 := rows(0), rows(1)
	for k := range r0 {
		if r1[k] {
			t.Fatalf("threads 0 and 1 share bank/row %v", k)
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	g := dram.DefaultGeometry()
	p := MustByName("omnetpp")
	a1, _ := drainTrace(p.Trace(2, g, 9), 400)
	a2, _ := drainTrace(p.Trace(2, g, 9), 400)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("generator not deterministic for equal seeds")
		}
	}
	b, _ := drainTrace(p.Trace(2, g, 10), 400)
	diff := false
	for i := range a1 {
		if a1[i] != b[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different seeds produced identical traces")
	}
}

func TestGeneratorBankFieldMatchesMapping(t *testing.T) {
	g := dram.DefaultGeometry()
	p := MustByName("lbm")
	src := p.Trace(1, g, 3)
	accs, _ := drainTrace(src, 500)
	for _, a := range accs {
		if a.IsWrite {
			continue
		}
		if got := g.Map(a.Addr).Bank; got != a.Bank {
			t.Fatalf("access bank field %d != mapped bank %d", a.Bank, got)
		}
	}
}

// TestGeneratorRowLocalityProperty: for any profile, a trace's per-bank
// consecutive-read streams stay within one row for approximately the
// profile's expected run length.
func TestGeneratorRunsStayInRow(t *testing.T) {
	g := dram.DefaultGeometry()
	f := func(pick uint8, seed int16) bool {
		bs := Benchmarks()
		p := bs[int(pick)%len(bs)]
		src := p.Trace(0, g, int64(seed))
		accs, _ := drainTrace(src, 200)
		lastRow := map[int]int64{}
		violations := 0
		for _, a := range accs {
			if a.IsWrite {
				continue
			}
			loc := g.Map(a.Addr)
			if prev, ok := lastRow[loc.Bank]; ok && prev != loc.Row {
				// Row switches are allowed (new runs) but must come with
				// column reset semantics, which Map guarantees; just count.
				violations++
			}
			lastRow[loc.Bank] = loc.Row
		}
		// Runs exist: not every access switches rows.
		return violations < len(accs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
