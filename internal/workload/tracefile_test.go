package workload

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/cpu"
	"repro/internal/dram"
)

func TestRecordTraceAndSliceReplay(t *testing.T) {
	g := dram.DefaultGeometry()
	p := MustByName("omnetpp")
	items := RecordTrace(p, 0, g, 5, 200)
	if len(items) != 200 {
		t.Fatalf("recorded %d items", len(items))
	}
	st := &SliceTrace{Items: items}
	for i := 0; i < 200; i++ {
		if got := st.Next(); got != items[i] {
			t.Fatalf("replay diverged at %d", i)
		}
	}
	// Exhausted, non-looping: idles with empty items.
	if got := st.Next(); got.HasAccess || got.NonMem != 0 {
		t.Errorf("exhausted trace yielded %+v", got)
	}
	// Looping: restarts.
	lt := &SliceTrace{Items: items, Loop: true}
	for i := 0; i < 200; i++ {
		lt.Next()
	}
	if got := lt.Next(); got != items[0] {
		t.Error("looping trace did not restart")
	}
	empty := &SliceTrace{Loop: true}
	if got := empty.Next(); got.HasAccess {
		t.Error("empty looping trace must idle")
	}
}

func TestWriteReadItemsRoundTrip(t *testing.T) {
	g := dram.DefaultGeometry()
	items := RecordTrace(MustByName("mcf"), 1, g, 3, 150)
	var buf bytes.Buffer
	if err := WriteItems(&buf, items); err != nil {
		t.Fatal(err)
	}
	back, err := ReadItems(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(items) {
		t.Fatalf("round trip %d -> %d items", len(items), len(back))
	}
	for i := range items {
		want := items[i]
		want.Access.Bank = 0 // text format does not carry banks
		if back[i] != want {
			t.Fatalf("item %d: %+v != %+v", i, back[i], want)
		}
	}
}

func TestReadItemsRejectsMalformed(t *testing.T) {
	bad := []string{
		"x",         // bad count
		"-3",        // negative count
		"1 R",       // missing addr
		"1 R x",     // bad addr
		"1 R -5",    // negative addr
		"1 Q 64",    // bad kind
		"1 R 64 zz", // too many fields
	}
	for _, line := range bad {
		if _, err := ReadItems(strings.NewReader(line)); err == nil {
			t.Errorf("ReadItems accepted %q", line)
		}
	}
	// Comments and blank lines are fine.
	got, err := ReadItems(strings.NewReader("# comment\n\n10\n1 R 64\n2 W 128\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || !got[1].HasAccess || !got[2].Access.IsWrite {
		t.Errorf("parsed %+v", got)
	}
}

func TestTraceProfileStampsBanksAndRuns(t *testing.T) {
	g := dram.DefaultGeometry()
	raw := []cpu.Item{
		{NonMem: 2, Access: cpu.Access{Addr: g.Unmap(dram.Location{Bank: 3, Row: 7, Col: 0})}, HasAccess: true},
		{NonMem: 50},
	}
	p := TraceProfile("custom", raw, g, false)
	src := p.Trace(0, g, 1)
	it := src.Next()
	if !it.HasAccess || it.Access.Bank != 3 {
		t.Errorf("bank not stamped: %+v", it)
	}
	// A second core gets an independent cursor.
	src2 := p.Trace(1, g, 1)
	if got := src2.Next(); got.Access.Bank != 3 {
		t.Error("second cursor broken")
	}
}
