package sim

import (
	"testing"

	"repro/internal/dram"
	"repro/internal/memctrl"
	"repro/internal/sched"
	"repro/internal/workload"
)

func TestRunIndependentBasics(t *testing.T) {
	cfg := quickCfg(8) // 2 channels by default
	mix := workload.Figure9Workload()
	res, err := RunIndependent(cfg, mix, func() memctrl.Policy { return sched.NewPARBSDefault() })
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "PAR-BS x2-independent" {
		t.Errorf("policy = %q", res.Policy)
	}
	var reads int64
	for i, th := range res.Threads {
		if th.CPU.Instructions == 0 {
			t.Errorf("thread %d made no progress", i)
		}
		reads += th.Mem.ReadsCompleted
	}
	if reads == 0 || res.DRAM.Reads == 0 {
		t.Fatal("no memory traffic through independent channels")
	}
	// Requests in flight across the warmup reset complete after the device
	// counters are wiped, so allow a small skew.
	if diff := reads - res.DRAM.Reads; diff < -64 || diff > 64 {
		t.Errorf("thread reads %d vs device reads %d: skew too large", reads, res.DRAM.Reads)
	}
	if u := res.BusUtilization(); u <= 0 || u > 1 {
		t.Errorf("bus utilization %v out of range", u)
	}
}

func TestRunIndependentValidation(t *testing.T) {
	cfg := quickCfg(8)
	short := workload.Mix{Name: "short", Benchmarks: workload.Figure9Workload().Benchmarks[:2]}
	if _, err := RunIndependent(cfg, short, func() memctrl.Policy { return sched.NewFCFS() }); err == nil {
		t.Error("mismatched mix accepted")
	}
	if _, err := RunIndependent(cfg, workload.Figure9Workload(), func() memctrl.Policy { return nil }); err == nil {
		t.Error("nil factory product accepted")
	}
	bad := cfg
	bad.Cores = 0
	if _, err := RunIndependent(bad, workload.Figure9Workload(), func() memctrl.Policy { return sched.NewFCFS() }); err == nil {
		t.Error("invalid config accepted")
	}
}

// TestChannelPortRouting checks line-granularity channel spreading and
// address compaction through the XOR-fold route: line 0 stays on channel 0,
// lines 1 and 2 fold to channel 1 for n=2, and per-controller addresses
// are contiguous.
func TestChannelPortRouting(t *testing.T) {
	p := &channelPort{line: 64, chans: 2}
	c0, a0 := p.routeIndex(0)
	c1, a1 := p.routeIndex(64)
	c2, a2 := p.routeIndex(128)
	if c0 != 0 || c1 != 1 || c2 != 1 {
		t.Errorf("channel routing = %d,%d,%d; want 0,1,1", c0, c1, c2)
	}
	if a0 != 0 || a1 != 0 || a2 != 64 {
		t.Errorf("compacted addrs = %d,%d,%d; want 0,0,64", a0, a1, a2)
	}
}

// routeIndex mirrors the port's routing for testing.
func (p *channelPort) routeIndex(addr int64) (int, int64) {
	return dram.ChannelRoute(addr, p.line, p.chans)
}

// TestIndependentVsGangedComparable: with the same aggregate bandwidth the
// two organizations should deliver broadly similar throughput on the same
// workload (within 35%), while per-channel scheduler state differs.
func TestIndependentVsGangedComparable(t *testing.T) {
	cfg := quickCfg(8)
	cfg.MeasureCPUCycles = 800_000
	mix := workload.Figure9Workload()
	ganged, err := Run(cfg, mix, sched.NewPARBSDefault())
	if err != nil {
		t.Fatal(err)
	}
	indep, err := RunIndependent(cfg, mix, func() memctrl.Policy { return sched.NewPARBSDefault() })
	if err != nil {
		t.Fatal(err)
	}
	var gi, ii int64
	for i := range ganged.Threads {
		gi += ganged.Threads[i].CPU.Instructions
		ii += indep.Threads[i].CPU.Instructions
	}
	lo, hi := float64(gi)*0.65, float64(gi)*1.35
	if float64(ii) < lo || float64(ii) > hi {
		t.Errorf("independent throughput %d vs ganged %d: outside comparable band", ii, gi)
	}
}
