// Package sim assembles the full system of the paper's Table 2 — cores,
// on-chip DRAM controller and DRAM device — and runs multiprogrammed
// workloads, both shared (all cores active) and alone (one thread on the
// same memory system), producing the raw measurements the metrics package
// turns into the paper's evaluation numbers.
package sim

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/memctrl"
	"repro/internal/metrics"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Config describes one simulated system.
type Config struct {
	// Cores is the number of cores (== threads; Section 2's assumption).
	Cores int
	// CPUCyclesPerDRAM is the clock ratio: a 4 GHz core over DDR2-800's
	// 400 MHz command clock gives 10.
	CPUCyclesPerDRAM int64
	// WarmupCPUCycles are simulated then discarded from all statistics.
	WarmupCPUCycles int64
	// MeasureCPUCycles is the measured portion of the run.
	MeasureCPUCycles int64
	// CompletionOverheadCPU is the fixed L2-miss round-trip overhead added
	// on top of the DRAM service time (cache hierarchy, on-chip network),
	// calibrated so a row-hit load's uncontended round trip is ~160 CPU
	// cycles as in Table 2.
	CompletionOverheadCPU int64
	// Timing and Geometry configure the DRAM device. Geometry.Channels
	// holds the lock-step channel count (1, 2, 4 for 4-, 8-, 16-core
	// systems, scaling bandwidth with cores as in Table 2).
	Timing   dram.Timing
	Geometry dram.Geometry
	// Ctrl configures the memory controller; Ctrl.Threads is overridden
	// with Cores.
	Ctrl memctrl.Config
	// Core configures each processing core.
	Core cpu.Config
	// Seed drives workload generation.
	Seed int64
	// CommandLog, when non-nil, receives every issued DRAM command
	// (debugging/timelines; see memctrl.Timeline).
	CommandLog func(memctrl.CommandEvent)
	// Probe, when non-nil, samples telemetry on the probe's epoch during
	// the measured window. Probes are passive: the command stream is
	// byte-identical with and without one (pinned by the equivalence
	// tests), and the nil-probe path performs no extra work.
	Probe *telemetry.Probe
	// Tracer, when non-nil, records request/batch lifecycle events for the
	// run (warmup included — forensics need complete request histories).
	// Tracers obey the same discipline as probes: passive, nil-gated, and
	// pinned non-perturbing by the equivalence tests.
	Tracer *trace.Tracer
	// Progress, when non-nil, is called at every epoch checkpoint
	// (heartbeats for long runs). It must not block.
	Progress func(Progress)
	// Context, when non-nil, is polled at every epoch checkpoint;
	// cancellation aborts the run with the context's error.
	Context context.Context
	// Parallelism bounds the worker goroutines RunIndependent spreads its
	// channel shards across: 0 uses GOMAXPROCS, 1 runs shards inline on the
	// calling goroutine, higher values are clamped to the channel count.
	// Results are byte-identical at every setting — the parallel
	// equivalence tests pin command stream, telemetry and traces against
	// the sequential path. Run (lock-step channels) has a single command
	// stream and ignores the field.
	Parallelism int
	// ForceTicked forces the legacy one-cycle-per-iteration run loop,
	// disabling next-event cycle skipping. The command stream, telemetry
	// report and trace log are byte-identical either way — pinned by the
	// differential equivalence tests — so the flag exists for differential
	// testing and as an escape hatch, not for correctness.
	ForceTicked bool
}

// Progress is a heartbeat snapshot delivered to Config.Progress.
type Progress struct {
	// DRAMCycle and TotalDRAMCycles locate the run: DRAMCycle/Total is the
	// fraction complete (warmup included).
	DRAMCycle       int64
	TotalDRAMCycles int64
	// CPUCycle is DRAMCycle in CPU cycles.
	CPUCycle int64
	// Warmup reports whether the run is still inside the warmup window.
	Warmup bool
	// CommandsIssued is the cumulative DRAM command count.
	CommandsIssued int64
	// PendingReads is the request-buffer occupancy at the checkpoint,
	// summed over channels in independent-channel runs.
	PendingReads int
	// PendingPerChannel is the per-channel request-buffer occupancy of an
	// independent-channel run (RunIndependent), indexed by channel; nil for
	// single-stream runs.
	PendingPerChannel []int
}

// DefaultConfig returns the paper's baseline system for the given core
// count: DDR2-800 with 8 banks, channels scaled 1/2/4 for 4/8/16 cores,
// a 128-entry request buffer and 128-entry instruction windows.
func DefaultConfig(cores int) Config {
	g := dram.DefaultGeometry()
	g.Channels = cores / 4
	if g.Channels < 1 {
		g.Channels = 1
	}
	return Config{
		Cores:                 cores,
		CPUCyclesPerDRAM:      10,
		WarmupCPUCycles:       200_000,
		MeasureCPUCycles:      2_000_000,
		CompletionOverheadCPU: 60,
		Timing:                dram.DDR2_800(),
		Geometry:              g,
		Ctrl:                  memctrl.DefaultConfig(cores),
		Core:                  cpu.DefaultConfig(),
		Seed:                  1,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.Cores <= 0:
		return fmt.Errorf("sim: cores must be positive, got %d", c.Cores)
	case c.CPUCyclesPerDRAM <= 0:
		return fmt.Errorf("sim: CPU:DRAM clock ratio must be positive")
	case c.MeasureCPUCycles <= 0:
		return fmt.Errorf("sim: measurement window must be positive")
	case c.WarmupCPUCycles < 0 || c.CompletionOverheadCPU < 0:
		return fmt.Errorf("sim: warmup and overhead must be non-negative")
	case c.Parallelism < 0:
		return fmt.Errorf("sim: parallelism must be non-negative, got %d", c.Parallelism)
	}
	if err := c.Core.Validate(); err != nil {
		return err
	}
	return nil
}

// Result is the outcome of one run.
type Result struct {
	// Policy is the scheduler's name.
	Policy string
	// Threads holds one outcome per core, in core order.
	Threads []metrics.ThreadOutcome
	// DRAM holds device-level counters for the measured window.
	DRAM dram.Stats
	// DRAMCycles is the measured window length in DRAM cycles.
	DRAMCycles int64
	// EvaluatedCycles counts the DRAM cycles the run loop actually
	// simulated and SkippedCycles those the next-event clock jumped over
	// (warmup included in both; they sum to the run's total span). Under
	// Config.ForceTicked SkippedCycles is 0.
	EvaluatedCycles int64
	SkippedCycles   int64
}

// BusUtilization returns the measured data-bus utilization.
func (r Result) BusUtilization() float64 {
	if r.DRAMCycles == 0 {
		return 0
	}
	return float64(r.DRAM.BusyCycles) / float64(r.DRAMCycles)
}

// livenessWindowDRAM is the scheduling-deadlock deadline in elapsed DRAM
// cycles: a run aborts when reads stay buffered with no command issued for
// longer than this. The next-event clock caps its jumps at this deadline
// whenever reads are pending, so the guard fires on the same cycle whether
// cycles are skipped or ticked.
const livenessWindowDRAM = 100_000

// Run simulates the mix on cfg under the given scheduling policy. The
// policy instance must be fresh (policies are stateful and single-use).
func Run(cfg Config, mix workload.Mix, policy memctrl.Policy) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if len(mix.Benchmarks) != cfg.Cores {
		return Result{}, fmt.Errorf("sim: mix %q has %d benchmarks for %d cores",
			mix.Name, len(mix.Benchmarks), cfg.Cores)
	}
	dev, err := dram.NewDevice(cfg.Timing, cfg.Geometry)
	if err != nil {
		return Result{}, err
	}
	ctrlCfg := cfg.Ctrl
	ctrlCfg.Threads = cfg.Cores
	ctrl, err := memctrl.NewController(dev, policy, ctrlCfg)
	if err != nil {
		return Result{}, err
	}
	if cfg.CommandLog != nil {
		ctrl.SetCommandLog(cfg.CommandLog)
	}
	port := &memPort{ctrl: ctrl}
	cores := make([]*cpu.Core, cfg.Cores)
	for i, p := range mix.Benchmarks {
		trace := p.Trace(i, cfg.Geometry, cfg.Seed)
		core, err := cpu.NewCore(i, cfg.Core, trace, port)
		if err != nil {
			return Result{}, err
		}
		cores[i] = core
	}
	ctrl.SetOnComplete(func(r *memctrl.Request, endDRAM int64) {
		cores[r.Thread].Complete(r, endDRAM*cfg.CPUCyclesPerDRAM+cfg.CompletionOverheadCPU)
	})

	ratio := cfg.CPUCyclesPerDRAM
	warmupDRAM := cfg.WarmupCPUCycles / ratio
	totalDRAM := warmupDRAM + cfg.MeasureCPUCycles/ratio

	// Telemetry setup: bind the probe's ring buffers to this run's shape and
	// attach the per-event hooks (read latencies from the controller, batch
	// lifecycle from a PAR-BS engine when the policy is one). Everything is
	// preallocated here; the per-cycle loop below allocates nothing.
	var tel *sampler
	checkEvery := int64(1024) // context/progress checkpoint period
	if probe := cfg.Probe; probe != nil {
		epochLen := probe.EpochDRAMCycles()
		checkEvery = epochLen
		probe.Bind(cfg.Cores, cfg.Geometry.Banks, dev.BurstCycles(),
			(totalDRAM-warmupDRAM)/epochLen)
		ctrl.SetProbe(probe)
		if eng, ok := policy.(interface{ SetBatchObserver(core.BatchObserver) }); ok {
			eng.SetBatchObserver(probe)
		}
		tel = &sampler{
			probe:      probe,
			cores:      cores,
			ctrl:       ctrl,
			dev:        dev,
			threads:    make([]telemetry.ThreadSample, cfg.Cores),
			bankCAS:    make([]int64, cfg.Geometry.Banks),
			nextSample: warmupDRAM + epochLen,
			epochLen:   epochLen,
		}
	}
	// Tracing setup: stamp the run's metadata and attach the lifecycle
	// hooks (arrivals/commands/completions from the controller, marking
	// and batch spans from a PAR-BS engine when the policy is one).
	if tr := cfg.Tracer; tr != nil {
		markingCap := 0
		if eng, ok := policy.(*core.Engine); ok {
			markingCap = eng.Options().MarkingCap
		}
		tr.Bind(trace.Meta{
			Policy:         policy.Name(),
			Workload:       mix.Name,
			Cores:          cfg.Cores,
			Banks:          cfg.Geometry.Banks,
			CPUPerDRAM:     ratio,
			WarmupDRAM:     warmupDRAM,
			TotalDRAM:      totalDRAM,
			MarkingCap:     markingCap,
			ReadBufEntries: ctrlCfg.ReadBufEntries,
		})
		ctrl.SetTracer(tr)
		if eng, ok := policy.(interface{ SetLifecycleObserver(core.LifecycleObserver) }); ok {
			eng.SetLifecycleObserver(tr)
		}
	}
	// Checkpoints (context polls, progress heartbeats) share the epoch
	// cadence; with no consumers the schedule stays past the horizon so the
	// loop pays only one int64 comparison per cycle.
	nextCheck := totalDRAM + 1
	if cfg.Context != nil || cfg.Progress != nil {
		nextCheck = checkEvery
	}

	// The run loop is a next-event clock: each iteration evaluates one DRAM
	// cycle (cores first over the CPU span they have not yet simulated, then
	// the controller), and when the evaluated cycle was provably inert —
	// the controller issued nothing and every core reported a stall bound —
	// the clock jumps straight to the earliest cycle at which anything can
	// happen. Jump targets are lower bounds that never overshoot an event
	// (DESIGN.md §13), and every externally-timed edge (warmup reset,
	// telemetry epoch, checkpoint, liveness deadline) caps the jump so it is
	// evaluated on exactly the cycle the ticked loop would have, making the
	// command stream, telemetry and traces byte-identical in both modes
	// (pinned by the differential equivalence tests).
	skipping := !cfg.ForceTicked
	// Per-core tick gating: a core whose last Tick ended in a provable
	// non-port stall is left unticked — its stall span accrues later in one
	// closed-form catch-up Tick — while other cores and the controller keep
	// running. The gate is re-evaluated every evaluated cycle through the
	// core's live BlockedUntil (which sees completions the controller queued
	// in between), and port-stalled cores are exempt: a command issue frees
	// the buffer slot they wait on, an event their stall bound cannot see.
	// Gating requires CompletionOverheadCPU >= ratio so a completion queued
	// by this cycle's controller tick (at dc*ratio+overhead) can never fall
	// inside the current core span — otherwise a catch-up tick would deliver
	// it one evaluated cycle earlier than per-cycle ticking does.
	gating := skipping && cfg.CompletionOverheadCPU >= ratio
	lastIssued, lastIssuedAt := int64(0), int64(0)
	evaluated := int64(0)
	// coreDone[i] is the CPU cycle core i has simulated up to.
	coreDone := make([]int64, cfg.Cores)
	// Controller-tick elision: ctrlNext is the bound NextEventAt returned
	// after the last unproductive controller tick. Until that cycle — and as
	// long as no core enqueues a request, which invalidates the bound — the
	// controller tick is skipped even while cores stay busy: nothing can
	// retire (the bound caps at the oldest in-flight burst's end), nothing
	// can issue, and the policy's OnCycle is inert between events (the
	// NextEventer contract; non-NextEventer policies pin the bound to now+1).
	// The per-cycle BLP accounting those ticks would have done accrues in
	// ctrlIdle and is applied in closed form before the next real tick or
	// any stats read.
	ctrlNext := int64(0)
	ctrlIdle := int64(0)
	ctrlEnq := int64(0)
	flushIdle := func() {
		if ctrlIdle > 0 {
			ctrl.AccountIdleSpan(ctrlIdle)
			ctrlIdle = 0
		}
	}
	for dc := int64(0); dc < totalDRAM; {
		if dc == warmupDRAM && dc > 0 {
			// A jump may land here with the cores' CPU time still inside the
			// warmup window; tick the (provably stalled) remainder first so
			// the discarded span accrues before the reset, exactly as in the
			// ticked loop.
			for i, core := range cores {
				if gap := dc*ratio - coreDone[i]; gap > 0 {
					core.Tick(coreDone[i], int(gap))
					coreDone[i] = dc * ratio
				}
			}
			for _, core := range cores {
				core.ResetStats()
			}
			flushIdle()
			ctrl.ResetStats()
			if tel != nil {
				tel.probe.Rebase()
			}
		}
		evaluated++
		port.now = dc
		tickEnd := (dc + 1) * ratio
		// The telemetry sampler reads core state after this cycle, so sample
		// cycles tick every core (as the per-cycle loop would) instead of
		// deferring.
		gate := gating && !(tel != nil && dc+1 == tel.nextSample)
		for i, core := range cores {
			if gate {
				if b := core.BlockedUntil(); b != 0 && tickEnd <= b && !core.BlockedOnPort() {
					continue // provably inert through tickEnd; defer the tick
				}
			}
			core.Tick(coreDone[i], int(tickEnd-coreDone[i]))
			coreDone[i] = tickEnd
		}
		issuedBefore := ctrl.CommandsIssued()
		if e := ctrl.Enqueues(); skipping && dc < ctrlNext && e == ctrlEnq {
			ctrlIdle++ // controller provably inert this cycle; tick elided
		} else {
			ctrlEnq = e
			flushIdle()
			ctrl.Tick(dc)
			if ctrl.CommandsIssued() == issuedBefore {
				ctrlNext = ctrl.NextEventAt(dc)
			} else {
				ctrlNext = dc + 1
			}
		}
		// Liveness check: buffered work with no command progress for a long
		// stretch of simulated time indicates a scheduling deadlock (a policy
		// bug). The window counts elapsed DRAM cycles, not loop iterations,
		// and jumps are capped at the deadline below, so the guard fires on
		// the same cycle with skipping on or off.
		if n := ctrl.CommandsIssued(); n != lastIssued {
			lastIssued, lastIssuedAt = n, dc
		} else if ctrl.PendingReads() > 0 && dc-lastIssuedAt > livenessWindowDRAM {
			return Result{}, fmt.Errorf("sim: no DRAM progress for %d cycles with %d reads pending (policy %s)",
				dc-lastIssuedAt, ctrl.PendingReads(), policy.Name())
		}
		if tel != nil && dc+1 == tel.nextSample {
			flushIdle()
			tel.sample(dc + 1)
		}
		if dc+1 == nextCheck {
			nextCheck += checkEvery
			if ctx := cfg.Context; ctx != nil {
				if err := ctx.Err(); err != nil {
					return Result{}, fmt.Errorf("sim: run canceled at DRAM cycle %d of %d: %w",
						dc+1, totalDRAM, err)
				}
			}
			if cfg.Progress != nil {
				cfg.Progress(Progress{
					DRAMCycle:       dc + 1,
					TotalDRAMCycles: totalDRAM,
					CPUCycle:        (dc + 1) * ratio,
					Warmup:          dc+1 < warmupDRAM,
					CommandsIssued:  lastIssued,
					PendingReads:    ctrl.PendingReads(),
				})
			}
		}
		next := dc + 1
		if skipping && ctrl.CommandsIssued() == issuedBefore {
			// The cycle was idle on the controller side. If every core is
			// provably blocked too, nothing observable can happen until the
			// earliest of the cores' wake cycles and the controller's next
			// event. A command issue this cycle would have freed a request-
			// or write-buffer slot (unblocking a fetch- or store-stalled
			// core), hence the issuedBefore guard.
			target := totalDRAM
			for _, core := range cores {
				b := core.BlockedUntil()
				if b == 0 {
					target = next
					break
				}
				if d := b / ratio; d < target {
					target = d
				}
			}
			if target > next {
				// ctrlNext is the same NextEventAt bound the ticked path
				// would recompute here: it was produced by the last
				// unproductive tick and stays valid (no enqueue, no issue
				// since — both force a re-tick above).
				if ctrlNext < target {
					target = ctrlNext
				}
				if dc < warmupDRAM && warmupDRAM < target {
					target = warmupDRAM
				}
				if tel != nil && tel.nextSample-1 < target {
					target = tel.nextSample - 1
				}
				if nextCheck-1 < target {
					target = nextCheck - 1
				}
				if ctrl.PendingReads() > 0 {
					if deadline := lastIssuedAt + livenessWindowDRAM + 1; deadline < target {
						target = deadline
					}
				}
			}
			if target > next {
				next = target
				ctrl.AccountIdleSpan(next - dc - 1)
			}
		}
		dc = next
	}
	// The final jump (or a still-armed per-core gate) may leave a core's CPU
	// time short of the horizon; it is provably stalled over the remainder
	// (jump targets and gates honored its wake bound), so this tick only
	// accrues stall cycles and delivers completions at the cycles per-cycle
	// ticking would have.
	for i, core := range cores {
		if tail := totalDRAM*ratio - coreDone[i]; tail > 0 {
			core.Tick(coreDone[i], int(tail))
		}
	}
	flushIdle()
	if tel != nil {
		tel.probe.RecordLoopStats(totalDRAM, evaluated, totalDRAM-evaluated)
	}

	res := Result{
		Policy:          policy.Name(),
		DRAM:            dev.Stats(),
		DRAMCycles:      totalDRAM - warmupDRAM,
		EvaluatedCycles: evaluated,
		SkippedCycles:   totalDRAM - evaluated,
	}
	for i, core := range cores {
		res.Threads = append(res.Threads, metrics.ThreadOutcome{
			Benchmark: mix.Benchmarks[i].Name,
			CPU:       core.Stats(),
			Mem:       ctrl.ThreadStats(i),
		})
	}
	return res, nil
}

// sampler holds the preallocated scratch a probed run fills at each epoch
// boundary.
type sampler struct {
	probe      *telemetry.Probe
	cores      []*cpu.Core
	ctrl       *memctrl.Controller
	dev        *dram.Device
	threads    []telemetry.ThreadSample
	bankCAS    []int64
	nextSample int64
	epochLen   int64
}

// sample snapshots the cumulative simulation counters into the probe at the
// epoch ending at DRAM cycle end. Allocation-free.
func (s *sampler) sample(end int64) {
	for i, core := range s.cores {
		st := core.Stats()
		ms := s.ctrl.ThreadStats(i)
		blpSum, blpCycles := ms.BLPAccum()
		s.threads[i] = telemetry.ThreadSample{
			Instructions:     st.Instructions,
			CPUCycles:        st.Cycles,
			MemStallCycles:   st.MemStallCycles,
			QueueLen:         s.ctrl.ReadsPerThread(i),
			WindowOccupancy:  core.WindowOccupancy(),
			ReadsCompleted:   ms.ReadsCompleted,
			TotalReadLatency: ms.TotalReadLatency,
			BLPSum:           blpSum,
			BLPCycles:        blpCycles,
		}
	}
	s.dev.CopyBankCAS(s.bankCAS)
	ds := s.dev.Stats()
	s.probe.Sample(end, s.threads, s.bankCAS, telemetry.DeviceSample{
		Reads:      ds.Reads,
		Writes:     ds.Writes,
		Activates:  ds.Activates,
		BusyCycles: ds.BusyCycles,
	})
	s.nextSample = end + s.epochLen
}

// RunAlone simulates one benchmark alone on the same memory system (same
// channel count, banks and controller) — the baseline for slowdown metrics.
// The scheduling policy is irrelevant with one thread; FR-FCFS is used as
// in the paper's alone runs. Telemetry probes, tracers and command logs
// apply only to the shared run and are stripped here; Context and Progress
// carry over.
func RunAlone(cfg Config, p workload.Profile) (metrics.ThreadOutcome, error) {
	alone := cfg
	alone.Cores = 1
	alone.Ctrl.Threads = 1
	alone.Probe = nil
	alone.Tracer = nil
	alone.CommandLog = nil
	mix := workload.Mix{Name: "alone-" + p.Name, Benchmarks: []workload.Profile{p}}
	res, err := Run(alone, mix, frfcfsPolicy())
	if err != nil {
		return metrics.ThreadOutcome{}, err
	}
	return res.Threads[0], nil
}

// memPort adapts the controller to the cpu.MemPort interface, carrying the
// current DRAM cycle.
type memPort struct {
	ctrl *memctrl.Controller
	now  int64
}

func (p *memPort) IssueRead(thread int, addr int64, tag int) bool {
	r, ok := p.ctrl.EnqueueRead(thread, addr, p.now)
	if ok {
		r.Tag = tag
	}
	return ok
}

func (p *memPort) IssueWrite(thread int, addr int64) bool {
	return p.ctrl.EnqueueWrite(thread, addr, p.now)
}
