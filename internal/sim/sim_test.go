package sim

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/workload"
)

// quickCfg is a reduced-length system for fast tests.
func quickCfg(cores int) Config {
	cfg := DefaultConfig(cores)
	cfg.WarmupCPUCycles = 50_000
	cfg.MeasureCPUCycles = 400_000
	return cfg
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig(4).Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Cores = 0 },
		func(c *Config) { c.CPUCyclesPerDRAM = 0 },
		func(c *Config) { c.MeasureCPUCycles = 0 },
		func(c *Config) { c.WarmupCPUCycles = -1 },
		func(c *Config) { c.CompletionOverheadCPU = -1 },
		func(c *Config) { c.Core.WindowSize = 0 },
	}
	for i, mutate := range cases {
		cfg := DefaultConfig(4)
		mutate(&cfg)
		if cfg.Validate() == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestDefaultConfigScalesChannels(t *testing.T) {
	// Table 2: 1, 2, 4 lock-step channels for 4-, 8-, 16-core systems.
	for cores, want := range map[int]int{4: 1, 8: 2, 16: 4, 2: 1} {
		if got := DefaultConfig(cores).Geometry.Channels; got != want {
			t.Errorf("%d cores: channels = %d, want %d", cores, got, want)
		}
	}
}

func TestRunRejectsMismatchedMix(t *testing.T) {
	cfg := quickCfg(4)
	mix := workload.Mix{Name: "short", Benchmarks: workload.CaseStudyI().Benchmarks[:2]}
	if _, err := Run(cfg, mix, sched.NewFRFCFS()); err == nil {
		t.Error("Run accepted a 2-benchmark mix on 4 cores")
	}
}

func TestRunProducesActivity(t *testing.T) {
	cfg := quickCfg(4)
	res, err := Run(cfg, workload.CaseStudyI(), sched.NewFRFCFS())
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "FR-FCFS" {
		t.Errorf("policy name %q", res.Policy)
	}
	if len(res.Threads) != 4 {
		t.Fatalf("threads = %d", len(res.Threads))
	}
	for i, th := range res.Threads {
		if th.CPU.Instructions == 0 {
			t.Errorf("thread %d committed nothing", i)
		}
		if th.CPU.LoadsIssued == 0 || th.Mem.ReadsCompleted == 0 {
			t.Errorf("thread %d has no memory traffic", i)
		}
	}
	if u := res.BusUtilization(); u <= 0 || u > 1 {
		t.Errorf("bus utilization = %v, want (0,1]", u)
	}
	if res.DRAM.Reads == 0 {
		t.Error("device saw no reads")
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := quickCfg(4)
	r1, err := Run(cfg, workload.CaseStudyII(), sched.NewPARBSDefault())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg, workload.CaseStudyII(), sched.NewPARBSDefault())
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Threads {
		if r1.Threads[i].CPU != r2.Threads[i].CPU {
			t.Fatalf("thread %d CPU stats differ between identical runs:\n%+v\n%+v",
				i, r1.Threads[i].CPU, r2.Threads[i].CPU)
		}
	}
}

func TestRunAloneBaseline(t *testing.T) {
	cfg := quickCfg(4)
	p := workload.MustByName("hmmer")
	out, err := RunAlone(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if out.Benchmark != "hmmer" {
		t.Errorf("benchmark = %q", out.Benchmark)
	}
	if out.CPU.MPKI() < p.MPKI*0.7 || out.CPU.MPKI() > p.MPKI*1.3 {
		t.Errorf("alone MPKI = %v, want ~%v", out.CPU.MPKI(), p.MPKI)
	}
}

// TestSharedSlowerThanAlone: interference can only hurt; every thread's
// shared MCPI must be at least its alone MCPI (within noise) on an
// intensive mix.
func TestSharedSlowerThanAlone(t *testing.T) {
	cfg := quickCfg(4)
	mix := workload.CaseStudyI()
	res, err := Run(cfg, mix, sched.NewFRFCFS())
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range mix.Benchmarks {
		alone, err := RunAlone(cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		c := metrics.Comparison{Alone: alone, Shared: res.Threads[i]}
		if sd := c.MemSlowdown(); sd < 1 {
			t.Errorf("%s: slowdown %v < 1", p.Name, sd)
		}
	}
}

// TestCaseStudyIShape asserts the paper's Figure 5 qualitative results on
// the memory-intensive case study:
//   - FR-FCFS slows libquantum (high locality) the least and is the most
//     unfair overall;
//   - PAR-BS achieves the best fairness and the best weighted speedup of
//     all five schedulers;
//   - PAR-BS keeps mcf's slowdown below NFQ's and STFM's (parallelism
//     preservation).
func TestCaseStudyIShape(t *testing.T) {
	cfg := quickCfg(4)
	cfg.MeasureCPUCycles = 1_000_000
	mix := workload.CaseStudyI()
	alone := map[string]metrics.ThreadOutcome{}
	for _, p := range mix.Benchmarks {
		out, err := RunAlone(cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		alone[p.Name] = out
	}
	type rr struct {
		unfair, wsp float64
		slowdowns   map[string]float64
	}
	results := map[string]rr{}
	for _, name := range sched.Names() {
		pol, err := sched.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(cfg, mix, pol)
		if err != nil {
			t.Fatal(err)
		}
		var cs []metrics.Comparison
		sds := map[string]float64{}
		for i, th := range res.Threads {
			c := metrics.Comparison{Alone: alone[th.Benchmark], Shared: th}
			cs = append(cs, c)
			sds[mix.Benchmarks[i].Name] = c.MemSlowdown()
		}
		results[name] = rr{unfair: metrics.Unfairness(cs), wsp: metrics.WeightedSpeedup(cs), slowdowns: sds}
	}
	fr, pb := results["FR-FCFS"], results["PAR-BS"]
	for b, sd := range fr.slowdowns {
		if b != "libquantum" && sd < fr.slowdowns["libquantum"] {
			t.Errorf("FR-FCFS: %s slowdown %.2f below libquantum's %.2f; row-hit-first must favor libquantum",
				b, sd, fr.slowdowns["libquantum"])
		}
	}
	for name, r := range results {
		if name == "PAR-BS" {
			continue
		}
		if pb.unfair > r.unfair+0.05 {
			t.Errorf("PAR-BS unfairness %.2f worse than %s's %.2f", pb.unfair, name, r.unfair)
		}
		if pb.wsp < r.wsp-0.02 {
			t.Errorf("PAR-BS weighted speedup %.3f below %s's %.3f", pb.wsp, name, r.wsp)
		}
	}
	if pb.slowdowns["mcf"] > results["STFM"].slowdowns["mcf"] {
		t.Errorf("PAR-BS mcf slowdown %.2f above STFM's %.2f; parallelism not preserved",
			pb.slowdowns["mcf"], results["STFM"].slowdowns["mcf"])
	}
}

// TestWarmupDiscard: stats must reflect only the measurement window; a run
// with warmup has (approximately) the same measured rates as one without.
func TestWarmupDiscard(t *testing.T) {
	base := quickCfg(4)
	base.WarmupCPUCycles = 0
	withWarm := quickCfg(4)
	withWarm.WarmupCPUCycles = 200_000
	r1, err := Run(base, workload.CaseStudyIII(), sched.NewFRFCFS())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(withWarm, workload.CaseStudyIII(), sched.NewFRFCFS())
	if err != nil {
		t.Fatal(err)
	}
	// Measured cycle budget must match MeasureCPUCycles, not include warmup.
	for i := range r2.Threads {
		if got, want := r2.Threads[i].CPU.Cycles, withWarm.MeasureCPUCycles; got != want {
			t.Errorf("thread %d measured %d cycles, want %d", i, got, want)
		}
	}
	// Rates should be in the same ballpark (warmup removes cold-start bias).
	m1 := r1.Threads[0].CPU.MCPI()
	m2 := r2.Threads[0].CPU.MCPI()
	if m1 <= 0 || m2 <= 0 {
		t.Fatal("no stalls measured")
	}
	if m2 > m1*1.5 || m2 < m1/1.5 {
		t.Errorf("MCPI with/without warmup differ too much: %v vs %v", m2, m1)
	}
}
