package sim

import (
	"encoding/binary"
	"hash/fnv"
	"testing"

	"repro/internal/memctrl"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/workload"
)

// tracedStream mirrors commandStream with a lifecycle tracer attached:
// identical configuration, same digest, plus the tracer recording.
func tracedStream(t *testing.T, name string, seed int64, tr *trace.Tracer) streamDigest {
	t.Helper()
	cfg := DefaultConfig(4)
	cfg.Seed = seed
	cfg.WarmupCPUCycles = 20_000
	cfg.MeasureCPUCycles = 300_000
	cfg.Tracer = tr
	h := fnv.New64a()
	var buf [8]byte
	var count int64
	cfg.CommandLog = func(ev memctrl.CommandEvent) {
		count++
		for _, v := range []int64{ev.Now, int64(ev.Cmd), int64(ev.Bank), ev.Row, int64(ev.Thread), ev.ReqID} {
			binary.LittleEndian.PutUint64(buf[:], uint64(v))
			h.Write(buf[:])
		}
	}
	pol, err := sched.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(cfg, workload.CaseStudyI(), pol); err != nil {
		t.Fatalf("%s seed %d traced: %v", name, seed, err)
	}
	return streamDigest{hash: h.Sum64(), count: count}
}

// TestTracedRunsPreserveCommandStream is the tracing golden-equivalence
// pin: attaching a lifecycle tracer must leave the DRAM command stream
// byte-identical for every registered policy — the tracer only observes.
func TestTracedRunsPreserveCommandStream(t *testing.T) {
	if testing.Short() {
		t.Skip("traced equivalence sweep is long; skipped with -short")
	}
	policies := append(sched.Names(), sched.ExtraNames()...)
	for _, name := range policies {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			bare := commandStream(t, name, 1, false, nil)
			tr := trace.NewTracer(trace.Config{})
			traced := tracedStream(t, name, 1, tr)
			if bare.count == 0 {
				t.Fatal("bare run issued no commands (vacuous)")
			}
			if bare != traced {
				t.Errorf("tracer perturbed the command stream: bare {hash %#x, %d cmds} vs traced {hash %#x, %d cmds}",
					bare.hash, bare.count, traced.hash, traced.count)
			}
			if tr.Events() == 0 {
				t.Error("tracer recorded nothing; equivalence is vacuous")
			}
		})
	}
}

// runTraced executes one simulation with a fresh tracer and returns the
// recorded log.
func runTraced(t *testing.T, polName string, mix workload.Mix, seed int64) *trace.Log {
	t.Helper()
	cfg := DefaultConfig(len(mix.Benchmarks))
	cfg.Seed = seed
	cfg.WarmupCPUCycles = 20_000
	cfg.MeasureCPUCycles = 400_000
	tr := trace.NewTracer(trace.Config{})
	cfg.Tracer = tr
	pol, err := sched.ByName(polName)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(cfg, mix, pol); err != nil {
		t.Fatalf("%s on %s: %v", polName, mix.Name, err)
	}
	if tr.Dropped() != 0 {
		t.Fatalf("tracer dropped %d events; the run outgrew the buffer", tr.Dropped())
	}
	return tr.Log()
}

// TestTraceLifecycleOrdering: on a real PAR-BS run every completed read's
// lifecycle must be well-formed — arrival before mark and first command,
// first command before completion — and read commands must carry the
// thread's rank at issue. A mark AFTER the first command is legitimate (an
// unmarked request issues when its bank has no marked candidate, then a
// batch formation sweeps it up mid-flight), so only arrival anchors it.
func TestTraceLifecycleOrdering(t *testing.T) {
	log := runTraced(t, "PAR-BS", workload.CaseStudyI(), 1)
	type life struct {
		arrive, mark, firstCmd, complete int64
		seen                             bool
	}
	lives := make(map[int64]*life)
	ranked := 0
	var batches, drains int
	for _, ev := range log.Events {
		switch ev.Kind {
		case trace.KindArrive:
			lives[ev.Req] = &life{arrive: ev.Cycle, mark: -1, firstCmd: -1, complete: -1, seen: true}
		case trace.KindMark:
			l := lives[ev.Req]
			if l == nil {
				t.Fatalf("request %d marked before arrival was traced", ev.Req)
			}
			if l.mark < 0 {
				l.mark = ev.Cycle
			}
		case trace.KindCommand:
			if ev.Req < 0 {
				continue // controller-initiated refresh sequencing
			}
			if ev.Rank >= 0 {
				ranked++
			}
			if l := lives[ev.Req]; l != nil && l.firstCmd < 0 {
				l.firstCmd = ev.Cycle
			}
		case trace.KindComplete:
			if l := lives[ev.Req]; l != nil {
				l.complete = ev.Cycle
			}
		case trace.KindBatch:
			batches++
		case trace.KindBatchEnd:
			drains++
		}
	}
	completed := 0
	for id, l := range lives {
		if l.complete < 0 {
			continue // still in flight at run end
		}
		completed++
		if l.mark >= 0 && l.mark < l.arrive {
			t.Errorf("request %d marked at %d before arrival %d", id, l.mark, l.arrive)
		}
		if l.firstCmd >= 0 && l.firstCmd < l.arrive {
			t.Errorf("request %d first command %d before arrival %d", id, l.firstCmd, l.arrive)
		}
		if l.firstCmd >= 0 && l.complete < l.firstCmd {
			t.Errorf("request %d completed %d before first command %d", id, l.complete, l.firstCmd)
		}
	}
	if completed == 0 {
		t.Fatal("no completed requests traced; test is vacuous")
	}
	if batches == 0 || drains == 0 {
		t.Errorf("PAR-BS run traced %d batch formations, %d drains; want both > 0", batches, drains)
	}
	if ranked == 0 {
		t.Error("no command carried a thread rank; rank-at-issue is untraced")
	}
}

// attackMix is the memory-attack workload of the audit test: matlab is the
// paper's streaming hog (maximal row-buffer locality), the other three are
// its victims.
func attackMix(t *testing.T) workload.Mix {
	t.Helper()
	mix, err := workload.MixOf("attack", "matlab", "omnetpp", "hmmer", "sjeng")
	if err != nil {
		t.Fatal(err)
	}
	return mix
}

// TestStarvationAuditEndToEnd drives the paper's §4.3 claim through the
// whole pipeline on two workloads: under PAR-BS no request waits more batch
// formations than the Marking-Cap bound allows and every latency fits the
// derived envelope, while FR-FCFS forms no batches and so offers no bound
// at all — exactly the starvation the attack workload exploits.
func TestStarvationAuditEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("audit runs four simulations; skipped with -short")
	}
	mixes := []workload.Mix{workload.CaseStudyI(), attackMix(t)}
	for _, mix := range mixes {
		mix := mix
		t.Run(mix.Name, func(t *testing.T) {
			t.Parallel()
			par := trace.Analyze(runTraced(t, "PAR-BS", mix, 1))
			if par.Requests == 0 || par.Batches == 0 {
				t.Fatalf("PAR-BS run traced %d requests, %d batches; vacuous", par.Requests, par.Batches)
			}
			if !par.Audit.Holds {
				t.Errorf("PAR-BS starvation bound violated on %s: %+v", mix.Name, par.Audit)
			}
			if par.Audit.MaxBatchesWaited > par.Audit.BatchWaitBound {
				t.Errorf("batch-wait: observed %d > bound %d", par.Audit.MaxBatchesWaited, par.Audit.BatchWaitBound)
			}

			fr := trace.Analyze(runTraced(t, "FR-FCFS", mix, 1))
			if fr.Audit.Batched || fr.Audit.Holds {
				t.Errorf("FR-FCFS audit should report no bound: %+v", fr.Audit)
			}
			t.Logf("%s worst read latency: PAR-BS %d cycles (envelope %d), FR-FCFS %d cycles",
				mix.Name, par.Audit.MaxDelayCycles, par.Audit.DelayBoundCycles, fr.Audit.MaxDelayCycles)
		})
	}
}
