package sim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/memctrl"
	"repro/internal/metrics"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workload"
)

// RunIndependent simulates the mix on a system whose channels are fully
// independent — one device, one controller and one fresh scheduling policy
// per channel, with cache lines spread across channels by dram.ChannelRoute
// — instead of the paper's lock-step (ganged) channels. This is the
// organization of most contemporary multi-channel controllers and the
// setting of the NFQ and STFM papers; comparing it against Run with the
// same total bandwidth isolates the effect of splitting the scheduler's
// view.
//
// cfg.Geometry.Channels gives the channel count; each per-channel device
// is built with Channels = 1 (a full-width burst). factory must return a
// fresh policy per call (policies are stateful).
//
// Each channel is an execution shard. Cores run on the calling goroutine
// every cycle (enqueue order is semantic: request-buffer back-pressure
// depends on it); the per-channel controllers advance either inline, in
// channel order, or spread across a pool of worker goroutines with a
// barrier per evaluated cycle (cfg.Parallelism). Shards never share
// mutable state within a cycle — completions, command-log events,
// telemetry and trace events buffer in the owning shard and are merged on
// the calling goroutine in channel order after the barrier — so the
// command stream, telemetry report and trace log are byte-identical at
// every parallelism level (pinned by the parallel equivalence tests).
//
// The run composes with the next-event clock exactly as Run does: each
// shard elides provably inert controller ticks on its own bound, and a
// cycle where no shard issued and every core is provably blocked jumps the
// shared clock to the earliest wake across all channels, capped by the
// same warmup/telemetry/checkpoint/liveness edges.
func RunIndependent(cfg Config, mix workload.Mix, factory func() memctrl.Policy) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	n := cfg.Geometry.Channels
	if n < 1 {
		return Result{}, fmt.Errorf("sim: independent channels need Channels >= 1, got %d", n)
	}
	if len(mix.Benchmarks) != cfg.Cores {
		return Result{}, fmt.Errorf("sim: mix %q has %d benchmarks for %d cores",
			mix.Name, len(mix.Benchmarks), cfg.Cores)
	}

	chanGeom := cfg.Geometry
	chanGeom.Channels = 1
	skipping := !cfg.ForceTicked
	shards := make([]*chanShard, n)
	pols := make([]memctrl.Policy, n)
	var policyName string
	for ch := 0; ch < n; ch++ {
		dev, err := dram.NewDevice(cfg.Timing, chanGeom)
		if err != nil {
			return Result{}, err
		}
		ctrlCfg := cfg.Ctrl
		ctrlCfg.Threads = cfg.Cores
		// Stamp the channel and stride request IDs so they stay globally
		// unique and shard-independent (trace analysis keys on them).
		ctrlCfg.Channel = ch
		ctrlCfg.IDBase = int64(ch)
		ctrlCfg.IDStride = int64(n)
		pol := factory()
		if pol == nil {
			return Result{}, fmt.Errorf("sim: policy factory returned nil")
		}
		policyName = pol.Name()
		pols[ch] = pol
		ctrl, err := memctrl.NewController(dev, pol, ctrlCfg)
		if err != nil {
			return Result{}, err
		}
		s := &chanShard{id: ch, ctrl: ctrl, dev: dev, skipping: skipping}
		// Completions and command-log events are produced inside the shard's
		// controller tick — possibly on a worker goroutine — so they buffer
		// shard-locally and drain on the run goroutine after the barrier.
		ctrl.SetOnComplete(func(r *memctrl.Request, endDRAM int64) {
			s.comps = append(s.comps, shardCompletion{req: r, end: endDRAM})
		})
		if cfg.CommandLog != nil {
			ctrl.SetCommandLog(func(ev memctrl.CommandEvent) {
				s.cmds = append(s.cmds, ev)
			})
		}
		shards[ch] = s
	}

	port := &channelPort{shards: shards, line: cfg.Geometry.LineBytes, chans: n}
	cores := make([]*cpu.Core, cfg.Cores)
	for i, p := range mix.Benchmarks {
		trace := p.Trace(i, chanGeom, cfg.Seed)
		core, err := cpu.NewCore(i, cfg.Core, trace, port)
		if err != nil {
			return Result{}, err
		}
		cores[i] = core
	}

	ratio := cfg.CPUCyclesPerDRAM
	warmupDRAM := cfg.WarmupCPUCycles / ratio
	totalDRAM := warmupDRAM + cfg.MeasureCPUCycles/ratio

	// Telemetry: the shared probe cannot be fed from worker goroutines, so
	// every shard observes into its own commutative collector and the
	// sampler absorbs them in channel order at each epoch boundary.
	var tel *chanSampler
	checkEvery := int64(1024)
	if probe := cfg.Probe; probe != nil {
		epochLen := probe.EpochDRAMCycles()
		checkEvery = epochLen
		probe.Bind(cfg.Cores, n*chanGeom.Banks, shards[0].dev.BurstCycles(),
			(totalDRAM-warmupDRAM)/epochLen)
		for ch, s := range shards {
			s.col = telemetry.NewCollector(cfg.Cores)
			s.ctrl.SetProbe(s.col)
			if eng, ok := pols[ch].(interface{ SetBatchObserver(core.BatchObserver) }); ok {
				eng.SetBatchObserver(s.col)
			}
		}
		tel = &chanSampler{
			probe:      probe,
			cores:      cores,
			shards:     shards,
			threads:    make([]telemetry.ThreadSample, cfg.Cores),
			bankCAS:    make([]int64, n*chanGeom.Banks),
			chanBanks:  chanGeom.Banks,
			nextSample: warmupDRAM + epochLen,
			epochLen:   epochLen,
		}
	}
	// Tracing: one shard tracer per channel (events stamped with the channel
	// index), merged back into the parent tracer after the run.
	var shardTracers []*trace.Tracer
	if tr := cfg.Tracer; tr != nil {
		markingCap := 0
		if eng, ok := pols[0].(*core.Engine); ok {
			markingCap = eng.Options().MarkingCap
		}
		tr.Bind(trace.Meta{
			Policy:         policyName,
			Workload:       mix.Name,
			Cores:          cfg.Cores,
			Banks:          chanGeom.Banks,
			Channels:       n,
			CPUPerDRAM:     ratio,
			WarmupDRAM:     warmupDRAM,
			TotalDRAM:      totalDRAM,
			MarkingCap:     markingCap,
			ReadBufEntries: cfg.Ctrl.ReadBufEntries,
		})
		shardTracers = make([]*trace.Tracer, n)
		for ch, s := range shards {
			st := tr.NewShard(ch)
			shardTracers[ch] = st
			s.ctrl.SetTracer(st)
			if eng, ok := pols[ch].(interface{ SetLifecycleObserver(core.LifecycleObserver) }); ok {
				eng.SetLifecycleObserver(st)
			}
		}
	}
	nextCheck := totalDRAM + 1
	if cfg.Context != nil || cfg.Progress != nil {
		nextCheck = checkEvery
	}

	// The shard executor: inline channel-order stepping, or the worker pool
	// with a per-cycle barrier. Both run the same chanShard.step, so the
	// choice cannot change any result.
	step := func(dc int64) {
		for _, s := range shards {
			s.step(dc)
		}
	}
	if w := workerCount(cfg.Parallelism, n); w > 1 {
		pool := newShardPool(shards, w)
		defer pool.stop()
		step = pool.cycle
	}
	// drain delivers the cycle's buffered cross-shard effects in channel
	// order on the run goroutine: completions to the cores (the same order
	// inline channel-order controller ticks produce) and command-log events
	// to the caller's sink.
	overhead := cfg.CompletionOverheadCPU
	drain := func() {
		for _, s := range shards {
			for _, c := range s.comps {
				cores[c.req.Thread].Complete(c.req, c.end*ratio+overhead)
			}
			s.comps = s.comps[:0]
			if cfg.CommandLog != nil {
				for _, ev := range s.cmds {
					cfg.CommandLog(ev)
				}
				s.cmds = s.cmds[:0]
			}
		}
	}

	issued := func() int64 {
		var t int64
		for _, s := range shards {
			t += s.ctrl.CommandsIssued()
		}
		return t
	}
	pending := func() int {
		var t int
		for _, s := range shards {
			t += s.ctrl.PendingReads()
		}
		return t
	}

	// The run loop mirrors Run's next-event clock cycle for cycle — see the
	// commentary there and DESIGN.md §13/§14 — with the controller phase
	// generalized to the shard executor.
	gating := skipping && cfg.CompletionOverheadCPU >= ratio
	lastIssued, lastIssuedAt := int64(0), int64(0)
	evaluated := int64(0)
	coreDone := make([]int64, cfg.Cores)
	for dc := int64(0); dc < totalDRAM; {
		if dc == warmupDRAM && dc > 0 {
			for i, core := range cores {
				if gap := dc*ratio - coreDone[i]; gap > 0 {
					core.Tick(coreDone[i], int(gap))
					coreDone[i] = dc * ratio
				}
			}
			for _, core := range cores {
				core.ResetStats()
			}
			for _, s := range shards {
				s.flushIdle()
				s.ctrl.ResetStats()
				if s.col != nil {
					s.col.Reset()
				}
			}
			if tel != nil {
				tel.probe.Rebase()
			}
		}
		evaluated++
		port.now = dc
		tickEnd := (dc + 1) * ratio
		gate := gating && !(tel != nil && dc+1 == tel.nextSample)
		for i, core := range cores {
			if gate {
				if b := core.BlockedUntil(); b != 0 && tickEnd <= b && !core.BlockedOnPort() {
					continue
				}
			}
			core.Tick(coreDone[i], int(tickEnd-coreDone[i]))
			coreDone[i] = tickEnd
		}
		issuedBefore := issued()
		step(dc)
		drain()
		issuedNow := issued()
		if issuedNow != lastIssued {
			lastIssued, lastIssuedAt = issuedNow, dc
		} else if pending() > 0 && dc-lastIssuedAt > livenessWindowDRAM {
			return Result{}, fmt.Errorf("sim: no DRAM progress for %d cycles with %d reads pending (policy %s)",
				dc-lastIssuedAt, pending(), policyName)
		}
		if tel != nil && dc+1 == tel.nextSample {
			tel.sample(dc + 1)
		}
		if dc+1 == nextCheck {
			nextCheck += checkEvery
			if ctx := cfg.Context; ctx != nil {
				if err := ctx.Err(); err != nil {
					return Result{}, fmt.Errorf("sim: run canceled at DRAM cycle %d of %d: %w",
						dc+1, totalDRAM, err)
				}
			}
			if cfg.Progress != nil {
				perChan := make([]int, n)
				for ch, s := range shards {
					perChan[ch] = s.ctrl.PendingReads()
				}
				total := 0
				for _, p := range perChan {
					total += p
				}
				cfg.Progress(Progress{
					DRAMCycle:         dc + 1,
					TotalDRAMCycles:   totalDRAM,
					CPUCycle:          (dc + 1) * ratio,
					Warmup:            dc+1 < warmupDRAM,
					CommandsIssued:    lastIssued,
					PendingReads:      total,
					PendingPerChannel: perChan,
				})
			}
		}
		next := dc + 1
		if skipping && issuedNow == issuedBefore {
			target := totalDRAM
			for _, core := range cores {
				b := core.BlockedUntil()
				if b == 0 {
					target = next
					break
				}
				if d := b / ratio; d < target {
					target = d
				}
			}
			if target > next {
				for _, s := range shards {
					if s.ctrlNext < target {
						target = s.ctrlNext
					}
				}
				if dc < warmupDRAM && warmupDRAM < target {
					target = warmupDRAM
				}
				if tel != nil && tel.nextSample-1 < target {
					target = tel.nextSample - 1
				}
				if nextCheck-1 < target {
					target = nextCheck - 1
				}
				if pending() > 0 {
					if deadline := lastIssuedAt + livenessWindowDRAM + 1; deadline < target {
						target = deadline
					}
				}
			}
			if target > next {
				// The skipped span is provably idle on every shard; the BLP
				// accounting accrues shard-locally and flushes in closed form
				// before the next real tick or stats read.
				for _, s := range shards {
					s.ctrlIdle += target - dc - 1
				}
				next = target
			}
		}
		dc = next
	}
	for i, core := range cores {
		if tail := totalDRAM*ratio - coreDone[i]; tail > 0 {
			core.Tick(coreDone[i], int(tail))
		}
	}
	for _, s := range shards {
		s.flushIdle()
	}
	if tel != nil {
		for _, s := range shards {
			tel.probe.Absorb(s.col)
		}
		tel.probe.RecordLoopStats(totalDRAM, evaluated, totalDRAM-evaluated)
	}
	if cfg.Tracer != nil {
		cfg.Tracer.MergeShards(shardTracers)
	}

	res := Result{
		Policy:          policyName + fmt.Sprintf(" x%d-independent", n),
		DRAMCycles:      totalDRAM - warmupDRAM,
		EvaluatedCycles: evaluated,
		SkippedCycles:   totalDRAM - evaluated,
	}
	for _, s := range shards {
		st := s.dev.Stats()
		res.DRAM.Activates += st.Activates
		res.DRAM.Precharges += st.Precharges
		res.DRAM.Reads += st.Reads
		res.DRAM.Writes += st.Writes
		res.DRAM.Refreshes += st.Refreshes
		res.DRAM.BusyCycles += st.BusyCycles / int64(n) // normalize to one bus
	}
	for i, core := range cores {
		merged := shards[0].ctrl.ThreadStats(i)
		for _, s := range shards[1:] {
			merged = merged.Merge(s.ctrl.ThreadStats(i))
		}
		res.Threads = append(res.Threads, metrics.ThreadOutcome{
			Benchmark: mix.Benchmarks[i].Name,
			CPU:       core.Stats(),
			Mem:       merged,
		})
	}
	return res, nil
}

// RunAloneIndependent simulates one benchmark alone on the same independent-
// channel memory system — the slowdown baseline matching RunIndependent the
// way RunAlone matches Run. FR-FCFS per channel, as in the paper's alone
// runs; probes, tracers and command logs are stripped, Context, Progress
// and Parallelism carry over.
func RunAloneIndependent(cfg Config, p workload.Profile) (metrics.ThreadOutcome, error) {
	alone := cfg
	alone.Cores = 1
	alone.Ctrl.Threads = 1
	alone.Probe = nil
	alone.Tracer = nil
	alone.CommandLog = nil
	mix := workload.Mix{Name: "alone-" + p.Name, Benchmarks: []workload.Profile{p}}
	res, err := RunIndependent(alone, mix, func() memctrl.Policy { return frfcfsPolicy() })
	if err != nil {
		return metrics.ThreadOutcome{}, err
	}
	return res.Threads[0], nil
}

// chanShard is one independent channel's execution state: its device and
// controller plus the shard-local next-event bookkeeping and the buffers
// that carry cross-shard effects back to the run goroutine. Within an
// evaluated cycle a shard is touched by exactly one goroutine.
type chanShard struct {
	id   int
	ctrl *memctrl.Controller
	dev  *dram.Device

	// Controller-tick elision state, per shard (see Run's commentary):
	// ctrlNext is the NextEventAt bound from the last unproductive tick,
	// ctrlEnq the enqueue count that validates it, ctrlIdle the elided
	// cycles awaiting closed-form BLP accounting.
	ctrlNext int64
	ctrlIdle int64
	ctrlEnq  int64
	skipping bool

	// comps and cmds buffer the cycle's completions and command-log events
	// for post-barrier channel-order delivery.
	comps []shardCompletion
	cmds  []memctrl.CommandEvent

	// col collects the shard's telemetry observations (nil when unprobed).
	col *telemetry.Collector
}

// shardCompletion is one retired request awaiting delivery to its core.
type shardCompletion struct {
	req *memctrl.Request
	end int64 // DRAM cycle of the data return
}

// step advances the shard's controller by one DRAM cycle, eliding the tick
// when the shard's next-event bound proves it inert — the per-shard half of
// the next-event clock. Safe to call from a worker goroutine: it touches
// only shard-owned state.
func (s *chanShard) step(dc int64) {
	if e := s.ctrl.Enqueues(); s.skipping && dc < s.ctrlNext && e == s.ctrlEnq {
		s.ctrlIdle++
		return
	}
	s.ctrlEnq = s.ctrl.Enqueues()
	s.flushIdle()
	before := s.ctrl.CommandsIssued()
	s.ctrl.Tick(dc)
	if s.ctrl.CommandsIssued() == before {
		s.ctrlNext = s.ctrl.NextEventAt(dc)
	} else {
		s.ctrlNext = dc + 1
	}
}

// flushIdle applies the accumulated elided-cycle BLP accounting.
func (s *chanShard) flushIdle() {
	if s.ctrlIdle > 0 {
		s.ctrl.AccountIdleSpan(s.ctrlIdle)
		s.ctrlIdle = 0
	}
}

// channelPort routes core memory traffic across the independent channel
// controllers by dram.ChannelRoute, carrying the current DRAM cycle.
type channelPort struct {
	shards []*chanShard
	line   int64
	chans  int
	now    int64
}

func (p *channelPort) IssueRead(thread int, addr int64, tag int) bool {
	ch, inner := dram.ChannelRoute(addr, p.line, p.chans)
	r, ok := p.shards[ch].ctrl.EnqueueRead(thread, inner, p.now)
	if ok {
		r.Tag = tag
	}
	return ok
}

func (p *channelPort) IssueWrite(thread int, addr int64) bool {
	ch, inner := dram.ChannelRoute(addr, p.line, p.chans)
	return p.shards[ch].ctrl.EnqueueWrite(thread, inner, p.now)
}

// chanSampler is the sharded counterpart of sampler: at each epoch boundary
// it absorbs every shard's collector into the probe (channel order), merges
// per-thread controller stats across channels, and concatenates per-channel
// bank CAS counters into the probe's flat bank axis.
type chanSampler struct {
	probe      *telemetry.Probe
	cores      []*cpu.Core
	shards     []*chanShard
	threads    []telemetry.ThreadSample
	bankCAS    []int64
	chanBanks  int
	nextSample int64
	epochLen   int64
}

// sample snapshots the cumulative simulation counters into the probe at the
// epoch ending at DRAM cycle end.
func (s *chanSampler) sample(end int64) {
	for _, sh := range s.shards {
		sh.flushIdle()
		s.probe.Absorb(sh.col)
	}
	for i, core := range s.cores {
		st := core.Stats()
		ms := s.shards[0].ctrl.ThreadStats(i)
		queue := s.shards[0].ctrl.ReadsPerThread(i)
		for _, sh := range s.shards[1:] {
			ms = ms.Merge(sh.ctrl.ThreadStats(i))
			queue += sh.ctrl.ReadsPerThread(i)
		}
		blpSum, blpCycles := ms.BLPAccum()
		s.threads[i] = telemetry.ThreadSample{
			Instructions:     st.Instructions,
			CPUCycles:        st.Cycles,
			MemStallCycles:   st.MemStallCycles,
			QueueLen:         queue,
			WindowOccupancy:  core.WindowOccupancy(),
			ReadsCompleted:   ms.ReadsCompleted,
			TotalReadLatency: ms.TotalReadLatency,
			BLPSum:           blpSum,
			BLPCycles:        blpCycles,
		}
	}
	var ds telemetry.DeviceSample
	for ch, sh := range s.shards {
		sh.dev.CopyBankCAS(s.bankCAS[ch*s.chanBanks : (ch+1)*s.chanBanks])
		dst := sh.dev.Stats()
		ds.Reads += dst.Reads
		ds.Writes += dst.Writes
		ds.Activates += dst.Activates
		ds.BusyCycles += dst.BusyCycles / int64(len(s.shards)) // one-bus normalization, as in Result
	}
	s.probe.Sample(end, s.threads, s.bankCAS, ds)
	s.nextSample = end + s.epochLen
}
