package sim

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/memctrl"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// RunIndependent simulates the mix on a system whose channels are fully
// independent — one device, one controller and one fresh scheduling policy
// per channel, with cache lines interleaved across channels — instead of
// the paper's lock-step (ganged) channels. This is the organization of
// most contemporary multi-channel controllers and the setting of the NFQ
// and STFM papers; comparing it against Run with the same total bandwidth
// isolates the effect of splitting the scheduler's view.
//
// cfg.Geometry.Channels gives the channel count; each per-channel device
// is built with Channels = 1 (a full-width burst). factory must return a
// fresh policy per call (policies are stateful).
func RunIndependent(cfg Config, mix workload.Mix, factory func() memctrl.Policy) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	n := cfg.Geometry.Channels
	if n < 1 {
		return Result{}, fmt.Errorf("sim: independent channels need Channels >= 1, got %d", n)
	}
	if len(mix.Benchmarks) != cfg.Cores {
		return Result{}, fmt.Errorf("sim: mix %q has %d benchmarks for %d cores",
			mix.Name, len(mix.Benchmarks), cfg.Cores)
	}

	chanGeom := cfg.Geometry
	chanGeom.Channels = 1
	ctrls := make([]*memctrl.Controller, n)
	devs := make([]*dram.Device, n)
	var policyName string
	for ch := 0; ch < n; ch++ {
		dev, err := dram.NewDevice(cfg.Timing, chanGeom)
		if err != nil {
			return Result{}, err
		}
		ctrlCfg := cfg.Ctrl
		ctrlCfg.Threads = cfg.Cores
		pol := factory()
		if pol == nil {
			return Result{}, fmt.Errorf("sim: policy factory returned nil")
		}
		policyName = pol.Name()
		ctrl, err := memctrl.NewController(dev, pol, ctrlCfg)
		if err != nil {
			return Result{}, err
		}
		if cfg.CommandLog != nil {
			ctrl.SetCommandLog(cfg.CommandLog)
		}
		ctrls[ch] = ctrl
		devs[ch] = dev
	}

	port := &interleavedPort{ctrls: ctrls, line: cfg.Geometry.LineBytes}
	cores := make([]*cpu.Core, cfg.Cores)
	for i, p := range mix.Benchmarks {
		trace := p.Trace(i, chanGeom, cfg.Seed)
		core, err := cpu.NewCore(i, cfg.Core, trace, port)
		if err != nil {
			return Result{}, err
		}
		cores[i] = core
	}
	for _, ctrl := range ctrls {
		ctrl.SetOnComplete(func(r *memctrl.Request, endDRAM int64) {
			cores[r.Thread].Complete(r, endDRAM*cfg.CPUCyclesPerDRAM+cfg.CompletionOverheadCPU)
		})
	}

	ratio := cfg.CPUCyclesPerDRAM
	warmupDRAM := cfg.WarmupCPUCycles / ratio
	totalDRAM := warmupDRAM + cfg.MeasureCPUCycles/ratio
	// Same next-event clock as Run, minus the telemetry/checkpoint edges this
	// mode does not support: a cycle where no controller issued and every core
	// is provably blocked jumps to the earliest wake across all channels.
	skipping := !cfg.ForceTicked
	issued := func() int64 {
		var s int64
		for _, ctrl := range ctrls {
			s += ctrl.CommandsIssued()
		}
		return s
	}
	evaluated := int64(0)
	coreCPU := int64(0)
	for dc := int64(0); dc < totalDRAM; {
		if dc == warmupDRAM && dc > 0 {
			// As in Run: finish the cores' pre-warmup span before the reset so
			// a boundary-straddling jump cannot leak warmup stalls into the
			// measured window.
			if gap := dc*ratio - coreCPU; gap > 0 {
				for _, core := range cores {
					core.Tick(coreCPU, int(gap))
				}
				coreCPU = dc * ratio
			}
			for _, core := range cores {
				core.ResetStats()
			}
			for _, ctrl := range ctrls {
				ctrl.ResetStats()
			}
		}
		evaluated++
		port.now = dc
		tickEnd := (dc + 1) * ratio
		for _, core := range cores {
			core.Tick(coreCPU, int(tickEnd-coreCPU))
		}
		coreCPU = tickEnd
		issuedBefore := issued()
		for _, ctrl := range ctrls {
			ctrl.Tick(dc)
		}
		next := dc + 1
		if skipping && issued() == issuedBefore {
			target := totalDRAM
			for _, core := range cores {
				b := core.BlockedUntil()
				if b == 0 {
					target = next
					break
				}
				if d := b / ratio; d < target {
					target = d
				}
			}
			if target > next {
				for _, ctrl := range ctrls {
					if t := ctrl.NextEventAt(dc); t < target {
						target = t
					}
				}
				if dc < warmupDRAM && warmupDRAM < target {
					target = warmupDRAM
				}
			}
			if target > next {
				next = target
				for _, ctrl := range ctrls {
					ctrl.AccountIdleSpan(next - dc - 1)
				}
			}
		}
		dc = next
	}
	if tail := totalDRAM*ratio - coreCPU; tail > 0 {
		for _, core := range cores {
			core.Tick(coreCPU, int(tail))
		}
	}

	res := Result{
		Policy:          policyName + fmt.Sprintf(" x%d-independent", n),
		DRAMCycles:      totalDRAM - warmupDRAM,
		EvaluatedCycles: evaluated,
		SkippedCycles:   totalDRAM - evaluated,
	}
	for _, dev := range devs {
		st := dev.Stats()
		res.DRAM.Activates += st.Activates
		res.DRAM.Precharges += st.Precharges
		res.DRAM.Reads += st.Reads
		res.DRAM.Writes += st.Writes
		res.DRAM.Refreshes += st.Refreshes
		res.DRAM.BusyCycles += st.BusyCycles / int64(n) // normalize to one bus
	}
	for i, core := range cores {
		merged := ctrls[0].ThreadStats(i)
		for _, ctrl := range ctrls[1:] {
			merged = merged.Merge(ctrl.ThreadStats(i))
		}
		res.Threads = append(res.Threads, metrics.ThreadOutcome{
			Benchmark: mix.Benchmarks[i].Name,
			CPU:       core.Stats(),
			Mem:       merged,
		})
	}
	return res, nil
}

// interleavedPort routes requests across independent channel controllers
// by cache-line interleaving: line L goes to controller L mod n, which
// sees the compacted address (L / n) * lineBytes.
type interleavedPort struct {
	ctrls []*memctrl.Controller
	line  int64
	now   int64
}

func (p *interleavedPort) route(addr int64) (*memctrl.Controller, int64) {
	n := int64(len(p.ctrls))
	l := addr / p.line
	return p.ctrls[l%n], (l / n) * p.line
}

func (p *interleavedPort) IssueRead(thread int, addr int64) (*memctrl.Request, bool) {
	ctrl, inner := p.route(addr)
	return ctrl.EnqueueRead(thread, inner, p.now)
}

func (p *interleavedPort) IssueWrite(thread int, addr int64) bool {
	ctrl, inner := p.route(addr)
	return ctrl.EnqueueWrite(thread, inner, p.now)
}
