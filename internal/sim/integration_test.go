package sim

import (
	"testing"

	"repro/internal/memctrl"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/workload"
)

// These integration tests assert the paper's qualitative results
// end-to-end at reduced scale, complementing TestCaseStudyIShape.

// compareMix runs a mix under a policy and joins with alone baselines.
func compareMix(t *testing.T, cfg Config, mix workload.Mix, policy memctrl.Policy,
	alone map[string]metrics.ThreadOutcome) ([]metrics.Comparison, Result) {
	t.Helper()
	res, err := Run(cfg, mix, policy)
	if err != nil {
		t.Fatal(err)
	}
	var cs []metrics.Comparison
	for i, th := range res.Threads {
		base, ok := alone[th.Benchmark]
		if !ok {
			base, err = RunAlone(cfg, mix.Benchmarks[i])
			if err != nil {
				t.Fatal(err)
			}
			alone[th.Benchmark] = base
		}
		cs = append(cs, metrics.Comparison{Alone: base, Shared: th})
	}
	return cs, res
}

// TestCaseStudyIIShape: Figure 6's headline — under FR-FCFS the high-BLP
// omnetpp is the most slowed thread; PAR-BS cuts its slowdown while
// achieving the best hmean speedup.
func TestCaseStudyIIShape(t *testing.T) {
	cfg := quickCfg(4)
	cfg.MeasureCPUCycles = 1_000_000
	mix := workload.CaseStudyII()
	alone := map[string]metrics.ThreadOutcome{}

	fr, _ := compareMix(t, cfg, mix, sched.NewFRFCFS(), alone)
	omnetppIdx := 2
	for i, c := range fr {
		if i != omnetppIdx && c.MemSlowdown() > fr[omnetppIdx].MemSlowdown() {
			t.Errorf("FR-FCFS: %s (%.2f) slowed more than high-BLP omnetpp (%.2f)",
				mix.Benchmarks[i].Name, c.MemSlowdown(), fr[omnetppIdx].MemSlowdown())
		}
	}
	pb, _ := compareMix(t, cfg, mix, sched.NewPARBSDefault(), alone)
	if pb[omnetppIdx].MemSlowdown() >= fr[omnetppIdx].MemSlowdown() {
		t.Errorf("PAR-BS omnetpp slowdown %.2f not below FR-FCFS's %.2f",
			pb[omnetppIdx].MemSlowdown(), fr[omnetppIdx].MemSlowdown())
	}
	if metrics.HmeanSpeedup(pb) <= metrics.HmeanSpeedup(fr) {
		t.Errorf("PAR-BS hmean %.3f not above FR-FCFS %.3f",
			metrics.HmeanSpeedup(pb), metrics.HmeanSpeedup(fr))
	}
}

// TestCaseStudyIIIShape: Figure 7's headline — all schedulers are nearly
// fair on 4x lbm, and NFQ has clearly the worst throughput.
func TestCaseStudyIIIShape(t *testing.T) {
	cfg := quickCfg(4)
	cfg.MeasureCPUCycles = 1_000_000
	mix := workload.CaseStudyIII()
	alone := map[string]metrics.ThreadOutcome{}
	wsp := map[string]float64{}
	for _, name := range []string{"FR-FCFS", "NFQ", "PAR-BS"} {
		pol, err := sched.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		cs, _ := compareMix(t, cfg, mix, pol, alone)
		if u := metrics.Unfairness(cs); u > 1.25 {
			t.Errorf("%s: unfairness %.2f on identical threads, want ~1", name, u)
		}
		wsp[name] = metrics.WeightedSpeedup(cs)
	}
	if wsp["NFQ"] >= wsp["FR-FCFS"] || wsp["NFQ"] >= wsp["PAR-BS"] {
		t.Errorf("NFQ throughput %.3f must be the worst (FR-FCFS %.3f, PAR-BS %.3f)",
			wsp["NFQ"], wsp["FR-FCFS"], wsp["PAR-BS"])
	}
}

// TestBatchingBoundsWorstCaseLatency: Table 4's "WC lat." claim — PAR-BS's
// worst-case request latency stays well below the QoS schedulers' (NFQ,
// STFM), which can delay individual requests for a very long time.
func TestBatchingBoundsWorstCaseLatency(t *testing.T) {
	cfg := quickCfg(4)
	cfg.MeasureCPUCycles = 1_500_000
	mix := workload.CaseStudyI()
	alone := map[string]metrics.ThreadOutcome{}
	wc := map[string]int64{}
	for _, name := range []string{"NFQ", "STFM", "PAR-BS"} {
		pol, err := sched.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		cs, _ := compareMix(t, cfg, mix, pol, alone)
		wc[name] = metrics.WorstCaseLatency(cs, cfg.CPUCyclesPerDRAM)
	}
	if wc["PAR-BS"] > wc["NFQ"] {
		t.Errorf("PAR-BS worst-case latency %d above NFQ's %d; batching must bound delay",
			wc["PAR-BS"], wc["NFQ"])
	}
}

// TestRefreshEndToEnd enables DDR2-rate refresh through the sim config and
// checks it costs a little throughput but changes nothing structurally.
func TestRefreshEndToEnd(t *testing.T) {
	base := quickCfg(4)
	withRef := quickCfg(4)
	withRef.Timing.TREFI = 3120 // 7.8 us
	mix := workload.CaseStudyI()
	r1, err := Run(base, mix, sched.NewPARBSDefault())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(withRef, mix, sched.NewPARBSDefault())
	if err != nil {
		t.Fatal(err)
	}
	if r2.DRAM.Refreshes == 0 {
		t.Fatal("no refreshes with TREFI set")
	}
	var i1, i2 int64
	for i := range r1.Threads {
		i1 += r1.Threads[i].CPU.Instructions
		i2 += r2.Threads[i].CPU.Instructions
	}
	if i2 > i1 {
		t.Errorf("refresh increased throughput (%d > %d)?", i2, i1)
	}
	if float64(i2) < 0.9*float64(i1) {
		t.Errorf("refresh cost %.1f%%, want < 10%%", 100*(1-float64(i2)/float64(i1)))
	}
}

// TestCommandLogThroughSim checks the sim-level command log plumbing.
func TestCommandLogThroughSim(t *testing.T) {
	cfg := quickCfg(4)
	cfg.MeasureCPUCycles = 200_000
	var n int64
	cfg.CommandLog = func(ev memctrl.CommandEvent) { n++ }
	res, err := Run(cfg, workload.CaseStudyI(), sched.NewFRFCFS())
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("command log saw nothing")
	}
	// The log covers warmup too; it must be at least the measured count.
	total := res.DRAM.Reads + res.DRAM.Writes + res.DRAM.Activates + res.DRAM.Precharges
	if n < total {
		t.Errorf("log %d < measured commands %d", n, total)
	}
}

// TestTraceProfileThroughSim drives a recorded trace through the full
// system: record lbm, replay it as a custom profile, expect behavior close
// to the generated original.
func TestTraceProfileThroughSim(t *testing.T) {
	cfg := quickCfg(1)
	cfg.Geometry.Channels = 1
	p := workload.MustByName("lbm")
	items := workload.RecordTrace(p, 0, cfg.Geometry, cfg.Seed, 60_000)
	replay := workload.TraceProfile("lbm-replay", items, cfg.Geometry, true)

	orig, err := RunAlone(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunAlone(cfg, replay)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CPU.LoadsIssued == 0 {
		t.Fatal("replay issued no loads")
	}
	om, rm := orig.CPU.MPKI(), rep.CPU.MPKI()
	if rm < om*0.8 || rm > om*1.2 {
		t.Errorf("replay MPKI %.2f vs original %.2f; replay should track", rm, om)
	}
}

// TestDeterminismAcrossPolicies: every policy must be reproducible
// run-to-run (policies with random tie-breaks are seeded).
func TestDeterminismAcrossPolicies(t *testing.T) {
	cfg := quickCfg(4)
	cfg.MeasureCPUCycles = 300_000
	mix := workload.CaseStudyI()
	for _, name := range sched.Names() {
		p1, _ := sched.ByName(name)
		p2, _ := sched.ByName(name)
		r1, err := Run(cfg, mix, p1)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := Run(cfg, mix, p2)
		if err != nil {
			t.Fatal(err)
		}
		for i := range r1.Threads {
			if r1.Threads[i].CPU != r2.Threads[i].CPU {
				t.Errorf("%s: thread %d differs across identical runs", name, i)
			}
		}
	}
}

// TestSixteenBanksConfig exercises a non-default geometry end-to-end.
func TestSixteenBanksConfig(t *testing.T) {
	cfg := quickCfg(4)
	cfg.Geometry.Banks = 16
	res, err := Run(cfg, workload.CaseStudyI(), sched.NewPARBSDefault())
	if err != nil {
		t.Fatal(err)
	}
	if res.DRAM.Reads == 0 {
		t.Fatal("no reads on 16-bank system")
	}
	// Sanity: requests map within the bank range.
	g := cfg.Geometry
	for i := 0; i < 1000; i++ {
		if b := g.Map(int64(i) * 64).Bank; b < 0 || b >= 16 {
			t.Fatalf("bank %d out of range", b)
		}
	}
}
