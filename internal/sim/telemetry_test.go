package sim

import (
	"context"
	"errors"
	"testing"

	"repro/internal/sched"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// TestTelemetryDoesNotPerturbSchedule is the probe-enabled arm of the
// golden command-stream equivalence: attaching a telemetry probe must leave
// the DRAM command stream byte-identical for every registered policy.
func TestTelemetryDoesNotPerturbSchedule(t *testing.T) {
	if testing.Short() {
		t.Skip("telemetry equivalence sweep is long; skipped with -short")
	}
	policies := append(sched.Names(), sched.ExtraNames()...)
	for _, name := range policies {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			bare := commandStream(t, name, 1, false, nil)
			probe := telemetry.NewProbe(telemetry.Config{})
			probed := commandStream(t, name, 1, false, probe)
			if bare.count == 0 {
				t.Fatal("run issued no commands (vacuous)")
			}
			if bare != probed {
				t.Errorf("probe perturbs the schedule: bare {hash %#x, %d cmds} vs probed {hash %#x, %d cmds}",
					bare.hash, bare.count, probed.hash, probed.count)
			}
			if probe.Epochs() == 0 {
				t.Error("probe sampled no epochs; equivalence is vacuous")
			}
		})
	}
}

// TestProbedRunSamplesSanely runs PAR-BS with a probe and checks the
// sampled series are present and internally consistent.
func TestProbedRunSamplesSanely(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.WarmupCPUCycles = 20_000
	cfg.MeasureCPUCycles = 400_000
	probe := telemetry.NewProbe(telemetry.Config{EpochDRAMCycles: 1024})
	cfg.Probe = probe
	pol, err := sched.ByName("PAR-BS")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(cfg, workload.CaseStudyI(), pol); err != nil {
		t.Fatal(err)
	}
	// Measured window: 400k CPU cycles / ratio 10 = 40k DRAM cycles ->
	// 39 full 1024-cycle epochs (the trailing partial epoch is not sampled).
	if got, want := probe.Epochs(), 39; got != want {
		t.Errorf("epochs = %d, want %d", got, want)
	}
	r := probe.Report(telemetry.ReportMeta{Policy: "PAR-BS", Workload: "CSI"})
	if len(r.Threads) != 4 || len(r.Banks) != cfg.Geometry.Banks {
		t.Fatalf("report shape: %d threads, %d banks; want 4 and %d",
			len(r.Threads), len(r.Banks), cfg.Geometry.Banks)
	}
	for _, series := range [][]float64{
		r.RowHitRate, r.BusUtilization, r.Threads[0].IPC, r.Threads[0].MCPI,
	} {
		if len(series) != r.Epochs {
			t.Fatalf("series length %d != %d epochs", len(series), r.Epochs)
		}
	}
	// A memory-intensive mix must show activity in every dimension.
	var ipcSum, busSum float64
	for i := 0; i < r.Epochs; i++ {
		ipcSum += r.Threads[0].IPC[i]
		busSum += r.BusUtilization[i]
	}
	if ipcSum == 0 || busSum == 0 {
		t.Errorf("dead series: sum(ipc)=%v sum(busutil)=%v", ipcSum, busSum)
	}
	if r.ReadLatency.Count == 0 {
		t.Error("no read latencies observed")
	}
	if r.Batches == nil || r.Batches.TotalFormed == 0 {
		t.Error("PAR-BS run produced no batch series")
	}
	if r.DroppedEpochs != 0 {
		t.Errorf("dropped %d epochs on a run that fits the ring", r.DroppedEpochs)
	}
}

// TestRunHonorsContextCancellation: a canceled context aborts the run at
// the next epoch checkpoint with an error wrapping the context's error.
func TestRunHonorsContextCancellation(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.WarmupCPUCycles = 0
	cfg.MeasureCPUCycles = 2_000_000
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already canceled: the first checkpoint must abort
	cfg.Context = ctx
	if _, err := Run(cfg, workload.CaseStudyI(), frfcfsPolicy()); !errors.Is(err, context.Canceled) {
		t.Fatalf("run with canceled context returned %v, want context.Canceled", err)
	}
}

// TestRunWithoutContextUnaffected: a nil context never aborts.
func TestRunWithoutContextUnaffected(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.WarmupCPUCycles = 0
	cfg.MeasureCPUCycles = 100_000
	if _, err := Run(cfg, workload.CaseStudyI(), frfcfsPolicy()); err != nil {
		t.Fatal(err)
	}
}

// TestProgressHeartbeats: the progress hook fires at epoch checkpoints with
// monotonically advancing cycles and correct phase accounting.
func TestProgressHeartbeats(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.WarmupCPUCycles = 20_000
	cfg.MeasureCPUCycles = 100_000
	var calls int
	var last Progress
	warmupSeen := false
	cfg.Progress = func(p Progress) {
		calls++
		if p.DRAMCycle <= last.DRAMCycle {
			t.Errorf("progress went backwards: %d after %d", p.DRAMCycle, last.DRAMCycle)
		}
		if p.Warmup {
			warmupSeen = true
		}
		last = p
	}
	if _, err := Run(cfg, workload.CaseStudyI(), frfcfsPolicy()); err != nil {
		t.Fatal(err)
	}
	// 12000 total DRAM cycles / 1024 checkpoint period = 11 heartbeats.
	if calls != 11 {
		t.Errorf("progress called %d times, want 11", calls)
	}
	if !warmupSeen {
		t.Error("no heartbeat reported the warmup phase")
	}
	if last.TotalDRAMCycles != 12_000 || last.CommandsIssued == 0 {
		t.Errorf("final heartbeat %+v looks wrong", last)
	}
}
