package sim

import (
	"runtime"
	"sync"
)

// The shard pool is the parallel executor of RunIndependent: W worker
// goroutines advance the channel shards through one DRAM cycle at a time
// with a barrier per cycle — the classic conservative-window parallel
// discrete-event scheme, with a one-cycle window (cores and controllers
// interact with one cycle of latency, so a cycle's shard steps are
// mutually independent by construction).
//
// Determinism does not depend on scheduling: shard j is owned by worker
// j mod W for the whole run, shards share no mutable state within a cycle,
// and everything that crosses shards (completions, command-log events,
// telemetry, traces) buffers shard-locally and is merged on the run
// goroutine in channel order after the barrier. The barrier's WaitGroup
// gives the run goroutine a happens-before edge over every shard's state,
// and the next start send hands it back.

// workerCount resolves the Parallelism knob against the shard count:
// 0 means GOMAXPROCS, 1 means inline sequential execution, and more
// workers than shards is clamped (extra workers would only idle).
func workerCount(parallelism, shards int) int {
	w := parallelism
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > shards {
		w = shards
	}
	if w < 1 {
		w = 1
	}
	return w
}

// shardPool runs chanShard.step across a fixed set of worker goroutines.
type shardPool struct {
	shards []*chanShard
	// start[w] carries the cycle number that releases worker w; cap 1 so
	// the run goroutine never blocks fanning out.
	start []chan int64
	// wg is the per-cycle barrier: armed to W before fan-out, released by
	// each worker after its shards step.
	wg sync.WaitGroup
	// quit, once closed, retires the workers; done joins them.
	quit    chan struct{}
	done    sync.WaitGroup
	stopped bool
}

func newShardPool(shards []*chanShard, workers int) *shardPool {
	p := &shardPool{
		shards: shards,
		start:  make([]chan int64, workers),
		quit:   make(chan struct{}),
	}
	for w := range p.start {
		p.start[w] = make(chan int64, 1)
		p.done.Add(1)
		go p.worker(w)
	}
	return p
}

// worker advances shards w, w+W, w+2W, … each cycle it is released for.
func (p *shardPool) worker(w int) {
	defer p.done.Done()
	stride := len(p.start)
	for {
		select {
		case <-p.quit:
			return
		case dc := <-p.start[w]:
			for j := w; j < len(p.shards); j += stride {
				p.shards[j].step(dc)
			}
			p.wg.Done()
		}
	}
}

// cycle steps every shard through DRAM cycle dc and returns after all have
// finished — the per-cycle barrier.
func (p *shardPool) cycle(dc int64) {
	p.wg.Add(len(p.start))
	for _, ch := range p.start {
		ch <- dc
	}
	p.wg.Wait()
}

// stop retires the workers and joins them; idempotent. RunIndependent
// defers it so no goroutine outlives the run (pinned by the leak test).
func (p *shardPool) stop() {
	if p.stopped {
		return
	}
	p.stopped = true
	close(p.quit)
	p.done.Wait()
}
