package sim

import (
	"math"

	"repro/internal/memctrl"
)

// aloneFRFCFS is the single-thread FR-FCFS used for alone-run baselines.
// It lives here (rather than importing internal/sched) to keep the sim
// package's dependencies limited to the substrates it wires together.
type aloneFRFCFS struct{}

func frfcfsPolicy() memctrl.Policy { return aloneFRFCFS{} }

// Name implements memctrl.Policy.
func (aloneFRFCFS) Name() string { return "FR-FCFS(alone)" }

// Better implements memctrl.Policy: row-hit first, then oldest.
func (aloneFRFCFS) Better(a, b memctrl.Candidate) bool {
	if a.IsRowHit() != b.IsRowHit() {
		return a.IsRowHit()
	}
	return a.Req.ID < b.Req.ID
}

func (aloneFRFCFS) OnAttach(*memctrl.Controller)       {}
func (aloneFRFCFS) OnEnqueue(*memctrl.Request, int64)  {}
func (aloneFRFCFS) OnIssue(memctrl.Candidate, int64)   {}
func (aloneFRFCFS) OnComplete(*memctrl.Request, int64) {}
func (aloneFRFCFS) OnCycle(int64)                      {}

// NextPolicyEventAt implements memctrl.NextEventer: stateless, no
// self-driven events — alone runs benefit most from cycle skipping.
func (aloneFRFCFS) NextPolicyEventAt(int64) int64 { return math.MaxInt64 }
