package sim

import (
	"encoding/binary"
	"hash/fnv"
	"testing"

	"repro/internal/memctrl"
	"repro/internal/sched"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// The golden equivalence harness: the bank-indexed controller fast path must
// emit a byte-identical DRAM command stream to the original O(buffer)
// reference scan (memctrl.Config.ReferenceScan), for every registered
// scheduling policy across several workload seeds. Identical command streams
// imply identical timing, so every table and figure of the reproduction is
// provably unchanged by the scheduling-path rewrite.

// streamDigest hashes every issued DRAM command, field by field, plus the
// event count (so a truncated stream cannot collide with its prefix).
type streamDigest struct {
	hash  uint64
	count int64
}

// run simulates mix under the policy named name and digests its command
// stream. referenceScan selects the pre-index scheduling path; probe, when
// non-nil, attaches telemetry sampling (which must not change the stream).
func commandStream(t *testing.T, name string, seed int64, referenceScan bool, probe *telemetry.Probe) streamDigest {
	t.Helper()
	cfg := DefaultConfig(4)
	cfg.Seed = seed
	cfg.WarmupCPUCycles = 20_000
	cfg.MeasureCPUCycles = 300_000
	cfg.Ctrl.ReferenceScan = referenceScan
	cfg.Probe = probe
	h := fnv.New64a()
	var buf [8]byte
	writeInt := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	var count int64
	cfg.CommandLog = func(ev memctrl.CommandEvent) {
		count++
		writeInt(ev.Now)
		writeInt(int64(ev.Cmd))
		writeInt(int64(ev.Bank))
		writeInt(ev.Row)
		writeInt(int64(ev.Thread))
		writeInt(ev.ReqID)
	}
	pol, err := sched.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(cfg, workload.CaseStudyI(), pol); err != nil {
		t.Fatalf("%s seed %d (reference=%v): %v", name, seed, referenceScan, err)
	}
	return streamDigest{hash: h.Sum64(), count: count}
}

// TestCommandStreamEquivalence pins the bank-indexed fast path to the
// reference scan for every paper and extra scheduler across three seeds.
func TestCommandStreamEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("equivalence sweep is long; skipped with -short")
	}
	policies := append(sched.Names(), sched.ExtraNames()...)
	seeds := []int64{1, 2, 3}
	for _, name := range policies {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			for _, seed := range seeds {
				ref := commandStream(t, name, seed, true, nil)
				fast := commandStream(t, name, seed, false, nil)
				if ref.count == 0 {
					t.Fatalf("seed %d: reference run issued no commands (vacuous)", seed)
				}
				if ref != fast {
					t.Errorf("seed %d: command streams diverge: reference {hash %#x, %d cmds} vs indexed {hash %#x, %d cmds}",
						seed, ref.hash, ref.count, fast.hash, fast.count)
				}
			}
		})
	}
}

// perturbedFRFCFS is FR-FCFS with the final tie-break inverted
// (youngest-first): a deliberately wrong policy used to prove the
// equivalence harness detects differing schedules.
type perturbedFRFCFS struct{ aloneFRFCFS }

func (perturbedFRFCFS) Name() string { return "FR-FCFS-perturbed" }
func (perturbedFRFCFS) Better(a, b memctrl.Candidate) bool {
	if a.IsRowHit() != b.IsRowHit() {
		return a.IsRowHit()
	}
	return a.Req.ID > b.Req.ID
}

// TestEquivalenceHarnessDetectsPerturbation guards the golden test against
// passing vacuously: the same digest machinery must tell a perturbed policy
// apart from the policy it perturbs.
func TestEquivalenceHarnessDetectsPerturbation(t *testing.T) {
	digest := func(pol memctrl.Policy) streamDigest {
		cfg := DefaultConfig(4)
		cfg.WarmupCPUCycles = 0
		cfg.MeasureCPUCycles = 200_000
		h := fnv.New64a()
		var buf [8]byte
		var count int64
		cfg.CommandLog = func(ev memctrl.CommandEvent) {
			count++
			for _, v := range []int64{ev.Now, int64(ev.Cmd), int64(ev.Bank), ev.Row, int64(ev.Thread), ev.ReqID} {
				binary.LittleEndian.PutUint64(buf[:], uint64(v))
				h.Write(buf[:])
			}
		}
		if _, err := Run(cfg, workload.CaseStudyI(), pol); err != nil {
			t.Fatal(err)
		}
		return streamDigest{hash: h.Sum64(), count: count}
	}
	base := digest(aloneFRFCFS{})
	perturbed := digest(perturbedFRFCFS{})
	if base.count == 0 || perturbed.count == 0 {
		t.Fatal("runs issued no commands; harness cannot discriminate")
	}
	if base == perturbed {
		t.Fatalf("perturbed policy produced an identical stream digest (%#x, %d cmds); the golden test would pass vacuously",
			base.hash, base.count)
	}
}
