package sim

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"testing"

	"repro/internal/memctrl"
	"repro/internal/sched"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workload"
)

// The golden equivalence harness: the bank-indexed controller fast path must
// emit a byte-identical DRAM command stream to the original O(buffer)
// reference scan (memctrl.Config.ReferenceScan), for every registered
// scheduling policy across several workload seeds. Identical command streams
// imply identical timing, so every table and figure of the reproduction is
// provably unchanged by the scheduling-path rewrite.

// streamDigest hashes every issued DRAM command, field by field, plus the
// event count (so a truncated stream cannot collide with its prefix).
type streamDigest struct {
	hash  uint64
	count int64
}

// run simulates mix under the policy named name and digests its command
// stream. referenceScan selects the pre-index scheduling path; probe, when
// non-nil, attaches telemetry sampling (which must not change the stream).
func commandStream(t *testing.T, name string, seed int64, referenceScan bool, probe *telemetry.Probe) streamDigest {
	t.Helper()
	cfg := DefaultConfig(4)
	cfg.Seed = seed
	cfg.WarmupCPUCycles = 20_000
	cfg.MeasureCPUCycles = 300_000
	cfg.Ctrl.ReferenceScan = referenceScan
	cfg.Probe = probe
	h := fnv.New64a()
	var buf [8]byte
	writeInt := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	var count int64
	cfg.CommandLog = func(ev memctrl.CommandEvent) {
		count++
		writeInt(ev.Now)
		writeInt(int64(ev.Cmd))
		writeInt(int64(ev.Bank))
		writeInt(ev.Row)
		writeInt(int64(ev.Thread))
		writeInt(ev.ReqID)
	}
	pol, err := sched.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(cfg, workload.CaseStudyI(), pol); err != nil {
		t.Fatalf("%s seed %d (reference=%v): %v", name, seed, referenceScan, err)
	}
	return streamDigest{hash: h.Sum64(), count: count}
}

// TestCommandStreamEquivalence pins the bank-indexed fast path to the
// reference scan for every paper and extra scheduler across three seeds.
func TestCommandStreamEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("equivalence sweep is long; skipped with -short")
	}
	policies := append(sched.Names(), sched.ExtraNames()...)
	seeds := []int64{1, 2, 3}
	for _, name := range policies {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			for _, seed := range seeds {
				ref := commandStream(t, name, seed, true, nil)
				fast := commandStream(t, name, seed, false, nil)
				if ref.count == 0 {
					t.Fatalf("seed %d: reference run issued no commands (vacuous)", seed)
				}
				if ref != fast {
					t.Errorf("seed %d: command streams diverge: reference {hash %#x, %d cmds} vs indexed {hash %#x, %d cmds}",
						seed, ref.hash, ref.count, fast.hash, fast.count)
				}
			}
		})
	}
}

// differentialRun executes one fully-instrumented run — command-stream
// digest, telemetry report and trace log all captured — under the chosen
// scheduling path (referenceScan), candidate-cache arm (disableCache) and
// run loop (forceTicked). The report's loop section is stripped before
// marshaling: it records evaluated/skipped cycle counts and so differs
// between the two loop modes by construction.
func differentialRun(t *testing.T, polName string, mix workload.Mix, seed int64, referenceScan, disableCache, forceTicked bool) (streamDigest, []byte, []byte) {
	t.Helper()
	cfg := DefaultConfig(4)
	cfg.Seed = seed
	cfg.WarmupCPUCycles = 10_000
	cfg.MeasureCPUCycles = 150_000
	cfg.Ctrl.ReferenceScan = referenceScan
	cfg.Ctrl.DisableCandidateCache = disableCache
	cfg.ForceTicked = forceTicked
	probe := telemetry.NewProbe(telemetry.Config{EpochDRAMCycles: 2048})
	cfg.Probe = probe
	tr := trace.NewTracer(trace.Config{})
	cfg.Tracer = tr
	h := fnv.New64a()
	var buf [8]byte
	var count int64
	cfg.CommandLog = func(ev memctrl.CommandEvent) {
		count++
		for _, v := range []int64{ev.Now, int64(ev.Cmd), int64(ev.Bank), ev.Row, int64(ev.Thread), ev.ReqID} {
			binary.LittleEndian.PutUint64(buf[:], uint64(v))
			h.Write(buf[:])
		}
	}
	pol, err := sched.ByName(polName)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(cfg, mix, pol); err != nil {
		t.Fatalf("%s %s (reference=%v ticked=%v): %v", polName, mix.Name, referenceScan, forceTicked, err)
	}
	rep := probe.Report(telemetry.ReportMeta{Policy: polName, Workload: mix.Name})
	rep.Loop = nil
	telJSON, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var traceBuf bytes.Buffer
	if err := tr.WriteJSONL(&traceBuf); err != nil {
		t.Fatal(err)
	}
	return streamDigest{hash: h.Sum64(), count: count}, telJSON, traceBuf.Bytes()
}

// expectIdenticalRuns asserts the full observable output of a ticked and a
// skipping run match byte for byte.
func expectIdenticalRuns(t *testing.T, polName string, mix workload.Mix, seed int64, referenceScan bool) {
	t.Helper()
	tick, tickTel, tickTr := differentialRun(t, polName, mix, seed, referenceScan, false, true)
	skip, skipTel, skipTr := differentialRun(t, polName, mix, seed, referenceScan, false, false)
	if tick.count == 0 {
		t.Fatalf("ticked run issued no commands (vacuous)")
	}
	if tick != skip {
		t.Errorf("command streams diverge: ticked {hash %#x, %d cmds} vs skipping {hash %#x, %d cmds}",
			tick.hash, tick.count, skip.hash, skip.count)
	}
	if !bytes.Equal(tickTel, skipTel) {
		t.Errorf("telemetry reports differ between ticked and skipping runs (%d vs %d bytes)",
			len(tickTel), len(skipTel))
	}
	if !bytes.Equal(tickTr, skipTr) {
		t.Errorf("trace logs differ between ticked and skipping runs (%d vs %d bytes)",
			len(tickTr), len(skipTr))
	}
}

// TestTickedSkippedEquivalence is the differential fuzz harness for the
// next-event run loop: randomized small mixes crossed with every registered
// policy, run once with the legacy ticked loop and once with cycle skipping.
// Command stream, telemetry report and trace log must all be byte-identical
// (the loop accounting section aside). The reference-scan scheduling path is
// exercised separately below so both controller paths are pinned.
func TestTickedSkippedEquivalence(t *testing.T) {
	mixes := workload.RandomMixes(2, 4, 20260808)
	if testing.Short() {
		mixes = mixes[:1]
	}
	policies := append(sched.Names(), sched.ExtraNames()...)
	for _, name := range policies {
		for mi := range mixes {
			name, mix, seed := name, mixes[mi], int64(11+mi)
			t.Run(fmt.Sprintf("%s/%s", name, mix.Name), func(t *testing.T) {
				t.Parallel()
				expectIdenticalRuns(t, name, mix, seed, false)
			})
		}
	}
	t.Run("PAR-BS/reference-scan", func(t *testing.T) {
		t.Parallel()
		expectIdenticalRuns(t, "PAR-BS", workload.CaseStudyI(), 7, true)
	})
	t.Run("FR-FCFS/reference-scan", func(t *testing.T) {
		t.Parallel()
		expectIdenticalRuns(t, "FR-FCFS", workload.CaseStudyI(), 7, true)
	})
}

// TestCandidateCacheEquivalence is the candidate-cache differential matrix:
// for every registered policy, a run with the per-bank candidate cache
// enabled must match the cache-off run (memctrl.Config.DisableCandidateCache)
// byte for byte — command stream, telemetry and trace log — under both the
// next-event and the legacy ticked loop. The cache memoizes per-bank class
// winners keyed on the policy's OrderEpoch, so this matrix is the end-to-end
// proof of each policy's EpochedPolicy contract (DESIGN.md §16); run under
// -race in CI alongside the loop and parallel matrices.
func TestCandidateCacheEquivalence(t *testing.T) {
	mixes := workload.RandomMixes(2, 4, 20260808)
	if testing.Short() {
		mixes = mixes[:1]
	}
	policies := append(sched.Names(), sched.ExtraNames()...)
	for _, name := range policies {
		for mi := range mixes {
			name, mix, seed := name, mixes[mi], int64(53+mi)
			t.Run(fmt.Sprintf("%s/%s", name, mix.Name), func(t *testing.T) {
				t.Parallel()
				for _, ticked := range []bool{false, true} {
					on, onTel, onTr := differentialRun(t, name, mix, seed, false, false, ticked)
					off, offTel, offTr := differentialRun(t, name, mix, seed, false, true, ticked)
					if on.count == 0 {
						t.Fatalf("ticked=%v: cache-on run issued no commands (vacuous)", ticked)
					}
					if on != off {
						t.Errorf("ticked=%v: command streams diverge: cache-on {hash %#x, %d cmds} vs cache-off {hash %#x, %d cmds}",
							ticked, on.hash, on.count, off.hash, off.count)
					}
					if !bytes.Equal(onTel, offTel) {
						t.Errorf("ticked=%v: telemetry reports differ between cache arms (%d vs %d bytes)",
							ticked, len(onTel), len(offTel))
					}
					if !bytes.Equal(onTr, offTr) {
						t.Errorf("ticked=%v: trace logs differ between cache arms (%d vs %d bytes)",
							ticked, len(onTr), len(offTr))
					}
				}
			})
		}
	}
	// The parallel multi-channel executor must agree across cache arms too:
	// each shard controller keeps its own cache, and worker scheduling must
	// not leak into the selection it memoizes.
	for _, name := range []string{"PAR-BS", "STFM"} {
		name := name
		t.Run(name+"/parallel", func(t *testing.T) {
			t.Parallel()
			on, onTel, onTr := differentialShardRun(t, name, workload.CaseStudyI(), 7, 4, 4, false, false)
			off, offTel, offTr := differentialShardRun(t, name, workload.CaseStudyI(), 7, 4, 4, true, false)
			if on.count == 0 {
				t.Fatal("cache-on parallel run issued no commands (vacuous)")
			}
			if on != off {
				t.Errorf("parallel command streams diverge across cache arms: on {hash %#x, %d cmds} vs off {hash %#x, %d cmds}",
					on.hash, on.count, off.hash, off.count)
			}
			if !bytes.Equal(onTel, offTel) {
				t.Errorf("parallel telemetry reports differ between cache arms (%d vs %d bytes)", len(onTel), len(offTel))
			}
			if !bytes.Equal(onTr, offTr) {
				t.Errorf("parallel trace logs differ between cache arms (%d vs %d bytes)", len(onTr), len(offTr))
			}
		})
	}
}

// perturbedFRFCFS is FR-FCFS with the final tie-break inverted
// (youngest-first): a deliberately wrong policy used to prove the
// equivalence harness detects differing schedules.
type perturbedFRFCFS struct{ aloneFRFCFS }

func (perturbedFRFCFS) Name() string { return "FR-FCFS-perturbed" }
func (perturbedFRFCFS) Better(a, b memctrl.Candidate) bool {
	if a.IsRowHit() != b.IsRowHit() {
		return a.IsRowHit()
	}
	return a.Req.ID > b.Req.ID
}

// TestEquivalenceHarnessDetectsPerturbation guards the golden test against
// passing vacuously: the same digest machinery must tell a perturbed policy
// apart from the policy it perturbs.
func TestEquivalenceHarnessDetectsPerturbation(t *testing.T) {
	digest := func(pol memctrl.Policy) streamDigest {
		cfg := DefaultConfig(4)
		cfg.WarmupCPUCycles = 0
		cfg.MeasureCPUCycles = 200_000
		h := fnv.New64a()
		var buf [8]byte
		var count int64
		cfg.CommandLog = func(ev memctrl.CommandEvent) {
			count++
			for _, v := range []int64{ev.Now, int64(ev.Cmd), int64(ev.Bank), ev.Row, int64(ev.Thread), ev.ReqID} {
				binary.LittleEndian.PutUint64(buf[:], uint64(v))
				h.Write(buf[:])
			}
		}
		if _, err := Run(cfg, workload.CaseStudyI(), pol); err != nil {
			t.Fatal(err)
		}
		return streamDigest{hash: h.Sum64(), count: count}
	}
	base := digest(aloneFRFCFS{})
	perturbed := digest(perturbedFRFCFS{})
	if base.count == 0 || perturbed.count == 0 {
		t.Fatal("runs issued no commands; harness cannot discriminate")
	}
	if base == perturbed {
		t.Fatalf("perturbed policy produced an identical stream digest (%#x, %d cmds); the golden test would pass vacuously",
			base.hash, base.count)
	}
}
