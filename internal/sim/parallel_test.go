package sim

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"runtime"
	"testing"
	"time"

	"repro/internal/memctrl"
	"repro/internal/sched"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workload"
)

// The parallel equivalence harness: RunIndependent must produce byte-
// identical observable output — command stream (channel stamps included),
// telemetry report and trace log — no matter how many worker goroutines
// execute the channel shards, and no matter whether the next-event clock
// skips or ticks. Sequential inline execution (Parallelism=1) is the
// reference; the parallel paths must match it exactly, for every
// registered policy. Run under -race in CI, this also proves the shard
// barrier protocol publishes every cross-shard effect correctly.

// differentialShardRun executes one fully-instrumented independent-channel
// run and captures its command-stream digest (with channel stamps),
// telemetry report and trace log.
func differentialShardRun(t *testing.T, polName string, mix workload.Mix, seed int64, channels, parallelism int, disableCache, forceTicked bool) (streamDigest, []byte, []byte) {
	t.Helper()
	cfg := DefaultConfig(4)
	cfg.Seed = seed
	cfg.WarmupCPUCycles = 10_000
	cfg.MeasureCPUCycles = 150_000
	cfg.Geometry.Channels = channels
	cfg.Parallelism = parallelism
	cfg.Ctrl.DisableCandidateCache = disableCache
	cfg.ForceTicked = forceTicked
	probe := telemetry.NewProbe(telemetry.Config{EpochDRAMCycles: 2048})
	cfg.Probe = probe
	tr := trace.NewTracer(trace.Config{})
	cfg.Tracer = tr
	h := fnv.New64a()
	var buf [8]byte
	var count int64
	cfg.CommandLog = func(ev memctrl.CommandEvent) {
		count++
		for _, v := range []int64{ev.Now, int64(ev.Channel), int64(ev.Cmd), int64(ev.Bank), ev.Row, int64(ev.Thread), ev.ReqID} {
			binary.LittleEndian.PutUint64(buf[:], uint64(v))
			h.Write(buf[:])
		}
	}
	factory := func() memctrl.Policy {
		pol, err := sched.ByName(polName)
		if err != nil {
			t.Fatal(err)
		}
		return pol
	}
	if _, err := RunIndependent(cfg, mix, factory); err != nil {
		t.Fatalf("%s %s (channels=%d parallelism=%d ticked=%v): %v",
			polName, mix.Name, channels, parallelism, forceTicked, err)
	}
	rep := probe.Report(telemetry.ReportMeta{Policy: polName, Workload: mix.Name})
	rep.Loop = nil
	telJSON, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var traceBuf bytes.Buffer
	if err := tr.WriteJSONL(&traceBuf); err != nil {
		t.Fatal(err)
	}
	return streamDigest{hash: h.Sum64(), count: count}, telJSON, traceBuf.Bytes()
}

// expectIdenticalShardRuns asserts two shard-executor configurations agree
// byte for byte on every observable output.
func expectIdenticalShardRuns(t *testing.T, polName string, mix workload.Mix, seed int64, channels int, parA, parB int, tickA, tickB bool) {
	t.Helper()
	a, aTel, aTr := differentialShardRun(t, polName, mix, seed, channels, parA, false, tickA)
	b, bTel, bTr := differentialShardRun(t, polName, mix, seed, channels, parB, false, tickB)
	if a.count == 0 {
		t.Fatal("reference run issued no commands (vacuous)")
	}
	if a != b {
		t.Errorf("command streams diverge: {par=%d ticked=%v: hash %#x, %d cmds} vs {par=%d ticked=%v: hash %#x, %d cmds}",
			parA, tickA, a.hash, a.count, parB, tickB, b.hash, b.count)
	}
	if !bytes.Equal(aTel, bTel) {
		t.Errorf("telemetry reports differ (%d vs %d bytes)", len(aTel), len(bTel))
	}
	if !bytes.Equal(aTr, bTr) {
		t.Errorf("trace logs differ (%d vs %d bytes)", len(aTr), len(bTr))
	}
}

// TestParallelSequentialEquivalence pins the parallel shard executor to
// the sequential inline path for every registered policy: same channels,
// same workload, Parallelism 1 vs 4 (and vs GOMAXPROCS), cycle skipping
// on. Byte-identical command hash, telemetry and traces required.
func TestParallelSequentialEquivalence(t *testing.T) {
	mixes := workload.RandomMixes(2, 4, 20260808)
	if testing.Short() {
		mixes = mixes[:1]
	}
	policies := append(sched.Names(), sched.ExtraNames()...)
	for _, name := range policies {
		for mi := range mixes {
			name, mix, seed := name, mixes[mi], int64(31+mi)
			t.Run(fmt.Sprintf("%s/%s", name, mix.Name), func(t *testing.T) {
				t.Parallel()
				expectIdenticalShardRuns(t, name, mix, seed, 4, 1, 4, false, false)
			})
		}
	}
	// GOMAXPROCS-many workers (Parallelism=0) must agree too.
	t.Run("PAR-BS/gomaxprocs", func(t *testing.T) {
		t.Parallel()
		expectIdenticalShardRuns(t, "PAR-BS", workload.CaseStudyI(), 7, 4, 1, 0, false, false)
	})
	// Non-pow2 channel counts exercise the modulo route.
	t.Run("FR-FCFS/3-channels", func(t *testing.T) {
		t.Parallel()
		expectIdenticalShardRuns(t, "FR-FCFS", workload.CaseStudyI(), 7, 3, 1, 3, false, false)
	})
}

// TestParallelTickedSkippedEquivalence crosses the parallel executor with
// the next-event clock: a parallel skipping run must match a parallel
// ticked run byte for byte (the per-shard tick elision and the global
// jumps cannot change anything observable).
func TestParallelTickedSkippedEquivalence(t *testing.T) {
	for _, name := range []string{"PAR-BS", "FR-FCFS", "STFM"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			expectIdenticalShardRuns(t, name, workload.CaseStudyI(), 13, 4, 4, 4, true, false)
		})
	}
}

// TestParallelCancellation proves a canceled context aborts a parallel
// sharded run promptly and that every shard worker goroutine exits — no
// goroutine may outlive RunIndependent, canceled or not.
func TestParallelCancellation(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancel up front: the first checkpoint must observe it
	cfg := DefaultConfig(4)
	cfg.WarmupCPUCycles = 10_000
	cfg.MeasureCPUCycles = 400_000
	cfg.Geometry.Channels = 4
	cfg.Parallelism = 4
	cfg.Context = ctx
	_, err := RunIndependent(cfg, workload.CaseStudyI(), func() memctrl.Policy { return sched.NewPARBSDefault() })
	if err == nil {
		t.Fatal("canceled run reported success")
	}
	if ctxErr := context.Cause(ctx); ctxErr != nil && err != nil {
		// The run error must wrap the context's cancellation.
		if got := err.Error(); !bytes.Contains([]byte(got), []byte("canceled")) {
			t.Errorf("error %q does not report cancellation", got)
		}
	}
	waitForGoroutines(t, before)
}

// TestParallelGoroutineExit proves a completed parallel run leaves no
// worker goroutines behind.
func TestParallelGoroutineExit(t *testing.T) {
	before := runtime.NumGoroutine()
	cfg := quickCfg(8)
	cfg.Parallelism = 0 // GOMAXPROCS workers
	if _, err := RunIndependent(cfg, workload.Figure9Workload(), func() memctrl.Policy { return sched.NewFRFCFS() }); err != nil {
		t.Fatal(err)
	}
	waitForGoroutines(t, before)
}

// waitForGoroutines polls until the goroutine count returns to the
// baseline (worker exits race the pool join's return only in the runtime's
// bookkeeping, so allow a short settle).
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d now vs %d before\n%s",
				runtime.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(5 * time.Millisecond)
	}
}
