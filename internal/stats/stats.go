// Package stats provides the small numeric helpers used by the evaluation:
// geometric and harmonic means, as the paper averages unfairness and
// speedups over workloads with the geometric mean (Figures 8 and 10).
package stats

import "math"

// GeoMean returns the geometric mean of xs. Non-positive inputs are invalid
// and yield NaN; an empty slice yields 0.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// HMean returns the harmonic mean of xs. Non-positive inputs yield NaN;
// an empty slice yields 0.
func HMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		sum += 1 / x
	}
	return float64(len(xs)) / sum
}

// Mean returns the arithmetic mean of xs; an empty slice yields 0.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// MinMax returns the minimum and maximum of xs; an empty slice yields 0, 0.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}
