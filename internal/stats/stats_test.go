package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Errorf("GeoMean(2,8) = %v, want 4", got)
	}
	if got := GeoMean([]float64{5}); got != 5 {
		t.Errorf("GeoMean(5) = %v", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %v, want 0", got)
	}
	if !math.IsNaN(GeoMean([]float64{1, -1})) {
		t.Error("GeoMean of negative input must be NaN")
	}
}

func TestHMean(t *testing.T) {
	if got := HMean([]float64{1, 1}); got != 1 {
		t.Errorf("HMean(1,1) = %v", got)
	}
	// HMean(2, 6) = 2/(1/2+1/6) = 3.
	if got := HMean([]float64{2, 6}); math.Abs(got-3) > 1e-12 {
		t.Errorf("HMean(2,6) = %v, want 3", got)
	}
	if got := HMean(nil); got != 0 {
		t.Errorf("HMean(nil) = %v", got)
	}
	if !math.IsNaN(HMean([]float64{0.5, 0})) {
		t.Error("HMean of zero input must be NaN")
	}
}

func TestMeanMinMax(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
	min, max := MinMax([]float64{3, 1, 2})
	if min != 1 || max != 3 {
		t.Errorf("MinMax = %v, %v", min, max)
	}
	min, max = MinMax(nil)
	if min != 0 || max != 0 {
		t.Error("MinMax(nil) should be 0,0")
	}
}

// Property: HMean <= GeoMean <= Mean for positive inputs (AM-GM-HM).
func TestMeanInequalityChain(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r%1000) + 1
		}
		h, g, m := HMean(xs), GeoMean(xs), Mean(xs)
		const eps = 1e-9
		return h <= g+eps && g <= m+eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
