package dram

import "fmt"

// Geometry describes the organization of the memory system visible to the
// address mapping: how many lock-step channels, banks, rows and columns.
type Geometry struct {
	// Channels is the number of parallel lock-step channels. Lock-step
	// channels act as one wide channel (a single command stream); their only
	// effect is to divide the data-burst occupancy. See Device.
	Channels int
	// Banks is the number of DRAM banks.
	Banks int
	// RowBytes is the size of one row (row-buffer) in bytes.
	RowBytes int64
	// LineBytes is the cache-line (and burst) size in bytes.
	LineBytes int64
	// Rows is the number of rows per bank.
	Rows int64
	// XORBankHash enables the XOR/permutation-based bank-index hashing of
	// Frailong et al. and Zhang et al., which the paper's baseline uses to
	// spread row-conflicting strides across banks.
	XORBankHash bool
	// LineInterleaved switches the address layout from row-interleaved
	// (default: consecutive cache lines walk one row of one bank, giving
	// streams row-buffer hits) to cache-line-interleaved (consecutive
	// lines alternate banks, spreading streams across banks at the cost of
	// row locality) — the classic mapping trade-off.
	LineInterleaved bool
}

// DefaultGeometry returns the paper's baseline geometry: 8 banks with 2 KB
// row buffers, 64-byte cache lines, and a single lock-step channel group.
func DefaultGeometry() Geometry {
	return Geometry{
		Channels:    1,
		Banks:       8,
		RowBytes:    2048,
		LineBytes:   64,
		Rows:        1 << 14,
		XORBankHash: true,
	}
}

// Validate reports whether the geometry is usable.
func (g Geometry) Validate() error {
	switch {
	case g.Channels <= 0:
		return fmt.Errorf("dram: geometry: channels must be positive, got %d", g.Channels)
	case g.Banks <= 0 || g.Banks&(g.Banks-1) != 0:
		return fmt.Errorf("dram: geometry: banks must be a positive power of two, got %d", g.Banks)
	case g.RowBytes <= 0 || g.RowBytes&(g.RowBytes-1) != 0:
		return fmt.Errorf("dram: geometry: row size must be a positive power of two, got %d", g.RowBytes)
	case g.LineBytes <= 0 || g.LineBytes&(g.LineBytes-1) != 0:
		return fmt.Errorf("dram: geometry: line size must be a positive power of two, got %d", g.LineBytes)
	case g.LineBytes > g.RowBytes:
		return fmt.Errorf("dram: geometry: line size %d exceeds row size %d", g.LineBytes, g.RowBytes)
	case g.Rows <= 0 || g.Rows&(g.Rows-1) != 0:
		return fmt.Errorf("dram: geometry: rows must be a positive power of two, got %d", g.Rows)
	}
	return nil
}

// ColumnsPerRow returns the number of cache lines per row.
func (g Geometry) ColumnsPerRow() int64 { return g.RowBytes / g.LineBytes }

// Location identifies a cache line within the memory system.
type Location struct {
	Bank int
	Row  int64
	Col  int64
}

// Map decodes a physical byte address to its DRAM location using a
// row:bank:column ordering (consecutive rows of one bank are far apart,
// consecutive cache lines walk a row, then move to the next bank), with an
// optional XOR hash of the bank index against the low row bits.
//
// The ordering places the bank index above the column bits so a unit-stride
// stream enjoys row hits, while the XOR hash decorrelates power-of-two
// strides, matching the paper's "XOR-based address-to-bank mapping".
func (g Geometry) Map(addr int64) Location {
	if addr < 0 {
		addr = -addr
	}
	line := addr / g.LineBytes
	cols := g.ColumnsPerRow()
	var bank int
	var col int64
	if g.LineInterleaved {
		bank = int(line % int64(g.Banks))
		line /= int64(g.Banks)
		col = line % cols
		line /= cols
	} else {
		col = line % cols
		line /= cols
		bank = int(line % int64(g.Banks))
		line /= int64(g.Banks)
	}
	row := line % g.Rows
	if g.XORBankHash {
		bank ^= int(row) & (g.Banks - 1)
	}
	return Location{Bank: bank, Row: row, Col: col}
}

// ChannelRoute splits a physical byte address across n independent
// channels at cache-line granularity and returns the target channel plus
// the compacted per-channel address the channel's own controller sees.
//
// For power-of-two channel counts the channel index is the XOR fold of the
// line index's successive log2(n)-bit fields — the same permutation-based
// hashing idea the bank mapping uses (Frailong et al., Zhang et al.) —
// which decorrelates power-of-two strides that a plain modulo interleave
// would pin to one channel. Non-power-of-two counts fall back to modulo.
//
// The mapping is injective together with the compacted address: two lines
// sharing a compacted address (line/n) differ only in the line index's low
// log2(n) bits, which the fold XORs in last, so their channels differ.
func ChannelRoute(addr, lineBytes int64, channels int) (int, int64) {
	if addr < 0 {
		addr = -addr
	}
	line := addr / lineBytes
	if channels <= 1 {
		return 0, line * lineBytes
	}
	inner := (line / int64(channels)) * lineBytes
	if channels&(channels-1) != 0 {
		return int(line % int64(channels)), inner
	}
	bits := 0
	for 1<<bits < channels {
		bits++
	}
	var fold int64
	for v := line; v != 0; v >>= bits {
		fold ^= v
	}
	return int(fold) & (channels - 1), inner
}

// Unmap is the inverse of Map; it reconstructs a canonical physical address
// (the lowest address that maps to the location). Map(Unmap(loc)) == loc for
// every in-range location, which the property tests verify.
func (g Geometry) Unmap(loc Location) int64 {
	bank := loc.Bank
	if g.XORBankHash {
		bank ^= int(loc.Row) & (g.Banks - 1)
	}
	line := loc.Row
	if g.LineInterleaved {
		line = line*g.ColumnsPerRow() + loc.Col
		line = line*int64(g.Banks) + int64(bank)
	} else {
		line = line*int64(g.Banks) + int64(bank)
		line = line*g.ColumnsPerRow() + loc.Col
	}
	return line * g.LineBytes
}
