package dram

import (
	"math/rand"
	"testing"
)

func newTestDevice(t *testing.T, channels int) *Device {
	t.Helper()
	g := DefaultGeometry()
	g.Channels = channels
	d, err := NewDevice(DDR2_800(), g)
	if err != nil {
		t.Fatalf("NewDevice: %v", err)
	}
	return d
}

func TestNewDeviceRejectsInvalidInputs(t *testing.T) {
	bad := DDR2_800()
	bad.TCL = 0
	if _, err := NewDevice(bad, DefaultGeometry()); err == nil {
		t.Error("NewDevice accepted invalid timing")
	}
	g := DefaultGeometry()
	g.Banks = 7
	if _, err := NewDevice(DDR2_800(), g); err == nil {
		t.Error("NewDevice accepted invalid geometry")
	}
}

func TestRowStateTransitions(t *testing.T) {
	d := newTestDevice(t, 1)
	if s := d.RowStateOf(0, 10); s != RowClosed {
		t.Fatalf("fresh bank state = %v, want closed", s)
	}
	if d.OpenRow(0) != -1 {
		t.Fatal("fresh bank should report open row -1")
	}
	now := int64(0)
	if !d.CanIssue(now, CmdActivate, 0, 10) {
		t.Fatal("activate to closed bank should be legal")
	}
	d.Issue(now, CmdActivate, 0, 10)
	if s := d.RowStateOf(0, 10); s != RowHit {
		t.Errorf("after ACT row 10: state = %v, want hit", s)
	}
	if s := d.RowStateOf(0, 11); s != RowConflict {
		t.Errorf("after ACT row 10, row 11 state = %v, want conflict", s)
	}
	if d.OpenRow(0) != 10 {
		t.Errorf("open row = %d, want 10", d.OpenRow(0))
	}
}

func TestNextCommandPerRowState(t *testing.T) {
	d := newTestDevice(t, 1)
	if c := d.NextCommand(0, 5, false); c != CmdActivate {
		t.Errorf("closed bank next command = %v, want ACT", c)
	}
	d.Issue(0, CmdActivate, 0, 5)
	if c := d.NextCommand(0, 5, false); c != CmdRead {
		t.Errorf("row-hit read next command = %v, want RD", c)
	}
	if c := d.NextCommand(0, 5, true); c != CmdWrite {
		t.Errorf("row-hit write next command = %v, want WR", c)
	}
	if c := d.NextCommand(0, 6, false); c != CmdPrecharge {
		t.Errorf("row-conflict next command = %v, want PRE", c)
	}
}

func TestReadRequiresTRCDAfterActivate(t *testing.T) {
	d := newTestDevice(t, 1)
	tm := d.Timing()
	d.Issue(0, CmdActivate, 0, 3)
	for now := int64(1); now < tm.TRCD; now++ {
		if d.CanIssue(now, CmdRead, 0, 3) {
			t.Fatalf("read legal at %d, before tRCD=%d", now, tm.TRCD)
		}
	}
	if !d.CanIssue(tm.TRCD, CmdRead, 0, 3) {
		t.Fatalf("read should be legal exactly at tRCD=%d", tm.TRCD)
	}
}

func TestPrechargeRespectsTRAS(t *testing.T) {
	d := newTestDevice(t, 1)
	tm := d.Timing()
	d.Issue(0, CmdActivate, 0, 3)
	if d.CanIssue(tm.TRAS-1, CmdPrecharge, 0, 0) {
		t.Fatal("precharge legal before tRAS elapsed")
	}
	if !d.CanIssue(tm.TRAS, CmdPrecharge, 0, 0) {
		t.Fatal("precharge should be legal at tRAS")
	}
}

func TestActivateAfterPrechargeRespectsTRP(t *testing.T) {
	d := newTestDevice(t, 1)
	tm := d.Timing()
	d.Issue(0, CmdActivate, 0, 3)
	pre := tm.TRAS
	d.Issue(pre, CmdPrecharge, 0, 0)
	if d.CanIssue(pre+tm.TRP-1, CmdActivate, 0, 4) {
		t.Fatal("activate legal before tRP elapsed")
	}
	if !d.CanIssue(pre+tm.TRP, CmdActivate, 0, 4) {
		t.Fatal("activate should be legal at PRE+tRP")
	}
}

func TestCommandBusOneCommandPerCycle(t *testing.T) {
	d := newTestDevice(t, 1)
	tm := d.Timing()
	d.Issue(5, CmdActivate, 0, 1)
	if d.CanIssue(5, CmdActivate, 1, 1) {
		t.Fatal("two commands in one cycle should be illegal")
	}
	// A read to bank 0 is otherwise legal at 5+tRCD; issuing an activate to
	// bank 1 on that same cycle must block it (one command per cycle).
	rd := 5 + tm.TRCD
	if !d.CanIssue(rd, CmdRead, 0, 1) {
		t.Fatal("read should be legal at ACT+tRCD")
	}
	d.Issue(rd, CmdActivate, 1, 1)
	if d.CanIssue(rd, CmdRead, 0, 1) {
		t.Fatal("read should be blocked by the command bus in the activate's cycle")
	}
	if !d.CanIssue(rd+1, CmdRead, 0, 1) {
		t.Fatal("read should be legal the cycle after")
	}
}

func TestTRRDSpacesActivatesAcrossBanks(t *testing.T) {
	d := newTestDevice(t, 1)
	tm := d.Timing()
	d.Issue(0, CmdActivate, 0, 1)
	for now := int64(1); now < tm.TRRD; now++ {
		if d.CanIssue(now, CmdActivate, 1, 1) {
			t.Fatalf("activate to bank 1 legal at %d, before tRRD=%d", now, tm.TRRD)
		}
	}
	if !d.CanIssue(tm.TRRD, CmdActivate, 1, 1) {
		t.Fatal("activate to bank 1 should be legal at tRRD")
	}
}

func TestTFAWLimitsFourActivates(t *testing.T) {
	d := newTestDevice(t, 1)
	tm := d.Timing()
	// Issue four activates as fast as tRRD allows.
	var now int64
	for b := 0; b < 4; b++ {
		for !d.CanIssue(now, CmdActivate, b, 1) {
			now++
		}
		d.Issue(now, CmdActivate, b, 1)
	}
	firstACT := int64(0)
	// The fifth activate must wait until firstACT+tFAW.
	fifth := firstACT + tm.TFAW
	for c := now + 1; c < fifth; c++ {
		if d.CanIssue(c, CmdActivate, 4, 1) {
			t.Fatalf("fifth activate legal at %d, before tFAW window end %d", c, fifth)
		}
	}
	if !d.CanIssue(fifth, CmdActivate, 4, 1) {
		t.Fatalf("fifth activate should be legal at %d", fifth)
	}
}

func TestDataBusSerializesBursts(t *testing.T) {
	d := newTestDevice(t, 1)
	tm := d.Timing()
	d.Issue(0, CmdActivate, 0, 1)
	d.Issue(tm.TRRD, CmdActivate, 1, 1)
	end0 := d.Issue(tm.TRCD, CmdRead, 0, 1)
	if want := tm.TRCD + tm.TCL + d.BurstCycles(); end0 != want {
		t.Fatalf("read completion = %d, want %d", end0, want)
	}
	// A second read's burst may not overlap the first: its data window
	// starts at issue+tCL, which must be >= end0.
	earliest := end0 - tm.TCL
	ok := int64(-1)
	for c := tm.TRCD + 1; c <= earliest+4; c++ {
		if d.CanIssue(c, CmdRead, 1, 1) {
			ok = c
			break
		}
	}
	if ok == -1 {
		t.Fatal("second read never became legal")
	}
	if ok < earliest {
		t.Fatalf("second read legal at %d; its burst would overlap (earliest legal %d)", ok, earliest)
	}
}

func TestLockStepChannelsShortenBursts(t *testing.T) {
	d1 := newTestDevice(t, 1)
	d2 := newTestDevice(t, 2)
	d4 := newTestDevice(t, 4)
	if d1.BurstCycles() != 4 || d2.BurstCycles() != 2 || d4.BurstCycles() != 1 {
		t.Errorf("burst cycles = %d/%d/%d for 1/2/4 channels, want 4/2/1",
			d1.BurstCycles(), d2.BurstCycles(), d4.BurstCycles())
	}
}

func TestWriteToReadTurnaround(t *testing.T) {
	d := newTestDevice(t, 1)
	tm := d.Timing()
	d.Issue(0, CmdActivate, 0, 1)
	end := d.Issue(tm.TRCD, CmdWrite, 0, 1)
	// A read on the channel must wait out tWTR after the write burst (and,
	// same-bank, the bank occupancy).
	want := max64(end+tm.TWTR, tm.TRCD+tm.TBankCAS)
	for c := end; c < want; c++ {
		if d.CanIssue(c, CmdRead, 0, 1) {
			t.Fatalf("read legal at %d, before write-to-read turnaround at %d", c, want)
		}
	}
	if !d.CanIssue(want, CmdRead, 0, 1) {
		t.Fatal("read should be legal after tWTR and bank occupancy")
	}
}

func TestWriteRecoveryDelaysPrecharge(t *testing.T) {
	d := newTestDevice(t, 1)
	tm := d.Timing()
	d.Issue(0, CmdActivate, 0, 1)
	end := d.Issue(tm.TRCD, CmdWrite, 0, 1)
	want := max64(end+tm.TWR, tm.TRCD+tm.TBankCAS)
	if d.CanIssue(want-1, CmdPrecharge, 0, 0) {
		t.Fatal("precharge legal before write recovery")
	}
	if !d.CanIssue(want, CmdPrecharge, 0, 0) {
		t.Fatalf("precharge should be legal at %d", want)
	}
}

// TestBankOccupancySerializesSameBankCAS verifies the non-pipelined bank
// model: a second CAS to the same bank must wait out tBankCAS, while a CAS
// to a different bank may proceed as soon as the data bus allows.
func TestBankOccupancySerializesSameBankCAS(t *testing.T) {
	d := newTestDevice(t, 1)
	tm := d.Timing()
	d.Issue(0, CmdActivate, 0, 1)
	d.Issue(tm.TRRD, CmdActivate, 1, 1)
	rd := tm.TRCD
	d.Issue(rd, CmdRead, 0, 1)
	for c := rd + 1; c < rd+tm.TBankCAS; c++ {
		if d.CanIssue(c, CmdRead, 0, 1) {
			t.Fatalf("same-bank read legal at %d, before tBankCAS=%d elapsed", c, tm.TBankCAS)
		}
	}
	if !d.CanIssue(rd+tm.TBankCAS, CmdRead, 0, 1) {
		t.Fatal("same-bank read should be legal after tBankCAS")
	}
	// Different bank: legal as soon as the data bus window is free.
	other := rd + tm.TCL + d.BurstCycles() - tm.TCL // = rd + burst
	found := false
	for c := rd + 1; c <= other+2; c++ {
		if d.CanIssue(c, CmdRead, 1, 1) {
			found = true
			if c >= rd+tm.TBankCAS {
				t.Fatalf("cross-bank read had to wait for tBankCAS (legal only at %d)", c)
			}
			break
		}
	}
	if !found {
		t.Fatal("cross-bank read never became legal in the probe window")
	}
}

func TestIssueIllegalCommandPanics(t *testing.T) {
	d := newTestDevice(t, 1)
	defer func() {
		if recover() == nil {
			t.Error("Issue of illegal command did not panic")
		}
	}()
	d.Issue(0, CmdRead, 0, 1) // bank closed: read is illegal
}

func TestCASToClosedOrWrongRowIsIllegal(t *testing.T) {
	d := newTestDevice(t, 1)
	tm := d.Timing()
	if d.CanIssue(0, CmdRead, 0, 1) || d.CanIssue(0, CmdWrite, 0, 1) {
		t.Fatal("CAS to closed bank should be illegal")
	}
	d.Issue(0, CmdActivate, 0, 1)
	if d.CanIssue(tm.TRCD, CmdRead, 0, 2) {
		t.Fatal("CAS to non-open row should be illegal")
	}
	if d.CanIssue(tm.TRCD, CmdPrecharge, 0, 0) {
		t.Fatal("precharge before tRAS should be illegal")
	}
	if d.CanIssue(tm.TRCD, CmdActivate, 0, 2) {
		t.Fatal("activate to open bank should be illegal")
	}
}

// TestRandomLegalCommandStreamInvariants drives the device with a random but
// always-legal command stream and checks global invariants: stats consistency
// and that CanIssue never permits a burst overlap (monotone data windows).
func TestRandomLegalCommandStreamInvariants(t *testing.T) {
	d := newTestDevice(t, 1)
	g := d.Geometry()
	rng := rand.New(rand.NewSource(42))
	var lastDataEnd, lastDataStart int64 = 0, -1
	issued := 0
	for now := int64(0); now < 20000 && issued < 3000; now++ {
		bankID := rng.Intn(g.Banks)
		row := int64(rng.Intn(16))
		cmds := []Command{CmdActivate, CmdPrecharge, CmdRead, CmdWrite}
		c := cmds[rng.Intn(len(cmds))]
		if !d.CanIssue(now, c, bankID, row) {
			continue
		}
		end := d.Issue(now, c, bankID, row)
		issued++
		if c == CmdRead || c == CmdWrite {
			var start int64
			if c == CmdRead {
				start = now + d.Timing().TCL
			} else {
				start = now + d.Timing().TCWL
			}
			if start < lastDataEnd {
				t.Fatalf("burst starting at %d overlaps previous burst ending %d", start, lastDataEnd)
			}
			if start < lastDataStart {
				t.Fatalf("data windows reordered: start %d before previous start %d", start, lastDataStart)
			}
			lastDataStart, lastDataEnd = start, end
		}
	}
	st := d.Stats()
	if issued == 0 {
		t.Fatal("random stream issued no commands")
	}
	if st.Activates < st.Precharges {
		t.Errorf("more precharges (%d) than activates (%d)", st.Precharges, st.Activates)
	}
	if st.BusyCycles != (st.Reads+st.Writes)*d.BurstCycles() {
		t.Errorf("busy cycles %d inconsistent with %d bursts", st.BusyCycles, st.Reads+st.Writes)
	}
	if hr := st.RowHitRate(); hr < 0 || hr > 1 {
		t.Errorf("row hit rate %f out of [0,1]", hr)
	}
}

func TestRowHitRateEmptyAndClamped(t *testing.T) {
	var s Stats
	if s.RowHitRate() != 0 {
		t.Error("empty stats should have hit rate 0")
	}
	s = Stats{Reads: 1, Activates: 5}
	if s.RowHitRate() != 0 {
		t.Error("hit rate should clamp at 0 when activates exceed CAS")
	}
}
