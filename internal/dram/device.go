package dram

import (
	"fmt"
	"math"
)

// RowState classifies the row-buffer state a request finds in its bank.
type RowState int

// Row-buffer states (Section 3 of the paper).
const (
	// RowHit: the request's row is open in the row buffer.
	RowHit RowState = iota
	// RowClosed: no row is open in the bank.
	RowClosed
	// RowConflict: a different row is open in the bank.
	RowConflict
)

// String returns a short name for the row-buffer state.
func (s RowState) String() string {
	switch s {
	case RowHit:
		return "hit"
	case RowClosed:
		return "closed"
	case RowConflict:
		return "conflict"
	default:
		return "???"
	}
}

// bank is the per-bank timing state.
type bank struct {
	open bool
	row  int64

	// Earliest DRAM cycle at which each command class may issue to this bank.
	actAllowed int64
	preAllowed int64
	rdAllowed  int64
	wrAllowed  int64

	// earliest is a cached conservative lower bound on the cycle at which
	// any request-servicing command (ACT/PRE/RD/WR) may legally issue to
	// this bank; see Device.BankReadyAt. Recomputed on every Issue that
	// touches the bank's gates.
	earliest int64
}

// Stats aggregates device-level counters for one run.
type Stats struct {
	Activates  int64
	Precharges int64
	Reads      int64
	Writes     int64
	Refreshes  int64
	BusyCycles int64 // cycles the data bus carried a burst
}

// RowHitRate returns the fraction of CAS commands serviced from an
// already-open row. Every activate is followed by exactly one CAS that
// needed it, so hits = CAS - activates.
func (s Stats) RowHitRate() float64 {
	cas := s.Reads + s.Writes
	if cas == 0 {
		return 0
	}
	hits := cas - s.Activates
	if hits < 0 {
		hits = 0
	}
	return float64(hits) / float64(cas)
}

// Device models one lock-step channel group of DDR2 SDRAM: a set of banks
// sharing a command bus (one command per DRAM cycle) and a data bus.
//
// The controller drives the device with CanIssue/Issue. The device enforces
// every timing constraint; attempting an illegal Issue panics, because a
// scheduler that issues illegal commands is a programming error, not a
// runtime condition.
type Device struct {
	timing Timing
	geom   Geometry
	banks  []bank

	// burst is the effective data-bus occupancy of one burst, after dividing
	// TBurst across the lock-step channels.
	burst int64

	// dataBusFree is the cycle at which the data bus becomes free.
	dataBusFree int64
	// wrToRdAllowed / rdToWrAllowed are channel-level turnaround gates.
	wrToRdAllowed int64
	rdToWrAllowed int64
	// lastCmdCycle enforces one command per DRAM cycle on the command bus.
	lastCmdCycle int64
	// nextCASAllowed enforces tCCD between CAS commands.
	nextCASAllowed int64
	// recent activates for the tFAW window (single rank).
	actWindow    [4]int64
	actWindowIdx int

	stats Stats
	// bankCAS counts CAS commands (reads + writes) issued per bank, for
	// per-bank utilization telemetry.
	bankCAS []int64
}

// NewDevice builds a device from validated timing and geometry.
func NewDevice(t Timing, g Geometry) (*Device, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	burst := t.TBurst / int64(g.Channels)
	if burst < 1 {
		burst = 1
	}
	d := &Device{
		timing:       t,
		geom:         g,
		banks:        make([]bank, g.Banks),
		burst:        burst,
		lastCmdCycle: -1,
		bankCAS:      make([]int64, g.Banks),
	}
	for i := range d.actWindow {
		d.actWindow[i] = -t.TFAW
	}
	d.refreshAllEarliest()
	return d, nil
}

// Timing returns the device's timing parameters.
func (d *Device) Timing() Timing { return d.timing }

// Geometry returns the device's geometry.
func (d *Device) Geometry() Geometry { return d.geom }

// BurstCycles returns the effective data-bus occupancy of one burst.
func (d *Device) BurstCycles() int64 { return d.burst }

// Stats returns a copy of the accumulated counters.
func (d *Device) Stats() Stats { return d.stats }

// ResetStats zeroes the accumulated counters, e.g. after warmup. Timing
// state (open rows, bus occupancy) is preserved.
func (d *Device) ResetStats() {
	d.stats = Stats{}
	for i := range d.bankCAS {
		d.bankCAS[i] = 0
	}
}

// BankCAS returns the number of CAS commands issued to the bank since the
// last ResetStats.
func (d *Device) BankCAS(bankID int) int64 { return d.bankCAS[bankID] }

// CopyBankCAS copies the per-bank CAS counters into dst (len == Banks)
// without allocating.
func (d *Device) CopyBankCAS(dst []int64) { copy(dst, d.bankCAS) }

// RowStateOf reports the row-buffer state a request to (bankID,row) sees.
func (d *Device) RowStateOf(bankID int, row int64) RowState {
	b := &d.banks[bankID]
	switch {
	case !b.open:
		return RowClosed
	case b.row == row:
		return RowHit
	default:
		return RowConflict
	}
}

// OpenRow returns the row open in bankID, or -1 when the bank is closed.
func (d *Device) OpenRow(bankID int) int64 {
	b := &d.banks[bankID]
	if !b.open {
		return -1
	}
	return b.row
}

// NextCommand returns the command a request to (bank,row) needs next in
// order to make progress, given the current row-buffer state.
func (d *Device) NextCommand(bankID int, row int64, isWrite bool) Command {
	switch d.RowStateOf(bankID, row) {
	case RowHit:
		if isWrite {
			return CmdWrite
		}
		return CmdRead
	case RowClosed:
		return CmdActivate
	default:
		return CmdPrecharge
	}
}

// fourthLastActivate returns the oldest activate in the tFAW window.
func (d *Device) fourthLastActivate() int64 {
	return d.actWindow[d.actWindowIdx]
}

// BankReadyAt returns a conservative lower bound on the DRAM cycle at which
// any request-servicing command (ACT, PRE, RD, WR) may legally issue to the
// bank: before this cycle every such command is guaranteed illegal, at or
// after it per-command CanIssue must still be consulted (channel-level
// constraints — the command bus, tCCD, bus turnaround and data-bus occupancy
// — are not folded in). Schedulers use it to skip whole banks without
// probing each buffered request. CmdRefresh is not covered; it has its own
// all-bank legality rule.
func (d *Device) BankReadyAt(bankID int) int64 {
	return d.banks[bankID].earliest
}

// CommandBusFree reports whether the shared command bus can carry a command
// at cycle now (the bus carries at most one command per DRAM cycle).
func (d *Device) CommandBusFree(now int64) bool { return now > d.lastCmdCycle }

// ReadyAt returns the exact earliest DRAM cycle at which cmd may legally
// issue to bankID, or math.MaxInt64 when the bank's row-buffer state
// precludes the command entirely (an activate to an open bank, a precharge
// or CAS to a closed one). For CAS commands the bound is for the bank's
// currently open row; callers must separately check that the request's row
// matches.
//
// Every timing gate is an absolute cycle value that changes only inside
// Issue, so between commands ReadyAt is constant and satisfies, for every
// cycle n:
//
//	CanIssue(n, cmd, bankID, openRow) == (n >= ReadyAt(cmd, bankID))
//
// (pinned by TestReadyAtMatchesCanIssue). This makes it an exact event
// source for the next-event simulation clock: jumping the clock to the
// minimum ReadyAt over demanded (bank, class) pairs can never step over a
// cycle at which a command first becomes legal. CmdRefresh is not covered;
// refresh sequencing has its own all-bank rule and the controller ticks
// through it.
func (d *Device) ReadyAt(cmd Command, bankID int) int64 {
	// The explicit comparison chains (rather than variadic max64) matter:
	// this is the scheduling fast path's innermost legality probe.
	b := &d.banks[bankID]
	t := d.lastCmdCycle + 1
	switch cmd {
	case CmdActivate:
		if b.open {
			return math.MaxInt64
		}
		return d.actReadyAt(b, t)
	case CmdPrecharge:
		if !b.open {
			return math.MaxInt64
		}
		if b.preAllowed > t {
			t = b.preAllowed
		}
		return t
	case CmdRead:
		if !b.open {
			return math.MaxInt64
		}
		return d.readReadyAt(b, t)
	case CmdWrite:
		if !b.open {
			return math.MaxInt64
		}
		return d.writeReadyAt(b, t)
	default:
		return math.MaxInt64
	}
}

// actReadyAt folds the bank and channel activate gates over the floor t.
func (d *Device) actReadyAt(b *bank, t int64) int64 {
	if b.actAllowed > t {
		t = b.actAllowed
	}
	if w := d.actWindow[d.actWindowIdx] + d.timing.TFAW; w > t {
		t = w
	}
	return t
}

// readReadyAt folds the bank and channel read-CAS gates over the floor t.
func (d *Device) readReadyAt(b *bank, t int64) int64 {
	if b.rdAllowed > t {
		t = b.rdAllowed
	}
	if d.nextCASAllowed > t {
		t = d.nextCASAllowed
	}
	if d.wrToRdAllowed > t {
		t = d.wrToRdAllowed
	}
	if v := d.dataBusFree - d.timing.TCL; v > t {
		t = v
	}
	return t
}

// writeReadyAt folds the bank and channel write-CAS gates over the floor t.
func (d *Device) writeReadyAt(b *bank, t int64) int64 {
	if b.wrAllowed > t {
		t = b.wrAllowed
	}
	if d.nextCASAllowed > t {
		t = d.nextCASAllowed
	}
	if d.rdToWrAllowed > t {
		t = d.rdToWrAllowed
	}
	if v := d.dataBusFree - d.timing.TCWL; v > t {
		t = v
	}
	return t
}

// ScanBank returns, in one call, everything the controller's candidate scan
// needs from one bank: the open row (-1 when the bank is closed) and the
// exact ReadyAt bounds of the command classes the bank's state admits — the
// activate bound when closed, the CAS (read or write, per isWrite) and
// precharge bounds when open. Unused bounds are math.MaxInt64, matching
// ReadyAt's convention for state-precluded commands; the values are exactly
// ReadyAt's (pinned by TestScanBankMatchesReadyAt). Folding the probes into
// one call removes three repeated bank-struct walks per scanned bank from
// the scheduler's inner loop.
func (d *Device) ScanBank(bankID int, isWrite bool) (openRow, tAct, tCAS, tPre int64) {
	b := &d.banks[bankID]
	bus := d.lastCmdCycle + 1
	if !b.open {
		return -1, d.actReadyAt(b, bus), math.MaxInt64, math.MaxInt64
	}
	if isWrite {
		tCAS = d.writeReadyAt(b, bus)
	} else {
		tCAS = d.readReadyAt(b, bus)
	}
	tPre = bus
	if b.preAllowed > tPre {
		tPre = b.preAllowed
	}
	return b.row, math.MaxInt64, tCAS, tPre
}

// refreshEarliest recomputes the bank's cached readiness lower bound from
// its timing gates and the device's tFAW window.
func (d *Device) refreshEarliest(bankID int) {
	b := &d.banks[bankID]
	if b.open {
		// An open bank can take a precharge or a CAS to the open row.
		e := b.preAllowed
		if b.rdAllowed < e {
			e = b.rdAllowed
		}
		if b.wrAllowed < e {
			e = b.wrAllowed
		}
		b.earliest = e
		return
	}
	// A closed bank can only take an activate, gated by tRC/tRP/tRRD (all
	// folded into actAllowed) and the four-activate window.
	e := b.actAllowed
	if w := d.fourthLastActivate() + d.timing.TFAW; w > e {
		e = w
	}
	b.earliest = e
}

// refreshAllEarliest recomputes every bank's cached readiness bound, after
// device-wide gate updates (activates move every bank's tRRD/tFAW gates,
// refresh moves every actAllowed).
func (d *Device) refreshAllEarliest() {
	for i := range d.banks {
		d.refreshEarliest(i)
	}
}

// CanIssue reports whether cmd may legally issue to bankID at cycle now.
// For CAS commands, row must match the open row.
func (d *Device) CanIssue(now int64, cmd Command, bankID int, row int64) bool {
	if now <= d.lastCmdCycle {
		return false // command bus carries one command per cycle
	}
	b := &d.banks[bankID]
	switch cmd {
	case CmdActivate:
		if b.open {
			return false
		}
		if now < b.actAllowed {
			return false
		}
		if d.fourthLastActivate()+d.timing.TFAW > now {
			return false
		}
		return true
	case CmdPrecharge:
		return b.open && now >= b.preAllowed
	case CmdRead:
		if !b.open || b.row != row || now < b.rdAllowed || now < d.nextCASAllowed {
			return false
		}
		if now < d.wrToRdAllowed {
			return false
		}
		return now+d.timing.TCL >= d.dataBusFree
	case CmdWrite:
		if !b.open || b.row != row || now < b.wrAllowed || now < d.nextCASAllowed {
			return false
		}
		if now < d.rdToWrAllowed {
			return false
		}
		return now+d.timing.TCWL >= d.dataBusFree
	case CmdRefresh:
		// All-bank refresh: every bank must be precharged and past its
		// activate gate (bank/rank idle).
		for i := range d.banks {
			if d.banks[i].open || now < d.banks[i].actAllowed {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// Issue applies cmd to bankID at cycle now and returns the cycle at which the
// command's effect completes: for CAS commands, the end of the data burst
// (when the last beat is on the bus); for ACT/PRE, the cycle after which the
// bank can accept the follow-up command. Issue panics if the command is not
// legal at now — use CanIssue first.
func (d *Device) Issue(now int64, cmd Command, bankID int, row int64) int64 {
	if !d.CanIssue(now, cmd, bankID, row) {
		panic(fmt.Sprintf("dram: illegal %s to bank %d row %d at cycle %d", cmd, bankID, row, now))
	}
	d.lastCmdCycle = now
	t := &d.timing
	b := &d.banks[bankID]
	switch cmd {
	case CmdActivate:
		b.open = true
		b.row = row
		b.rdAllowed = max64(b.rdAllowed, now+t.TRCD)
		b.wrAllowed = max64(b.wrAllowed, now+t.TRCD)
		b.preAllowed = max64(b.preAllowed, now+t.TRAS)
		b.actAllowed = max64(b.actAllowed, now+t.TRC)
		for i := range d.banks {
			if i != bankID {
				d.banks[i].actAllowed = max64(d.banks[i].actAllowed, now+t.TRRD)
			}
		}
		d.actWindow[d.actWindowIdx] = now
		d.actWindowIdx = (d.actWindowIdx + 1) % len(d.actWindow)
		d.refreshAllEarliest() // tRRD and the tFAW window moved every bank
		d.stats.Activates++
		return now + t.TRCD
	case CmdPrecharge:
		b.open = false
		b.actAllowed = max64(b.actAllowed, now+t.TRP)
		d.refreshEarliest(bankID)
		d.stats.Precharges++
		return now + t.TRP
	case CmdRead:
		start := now + t.TCL
		end := start + d.burst
		d.dataBusFree = end
		d.stats.BusyCycles += d.burst
		d.nextCASAllowed = max64(d.nextCASAllowed, now+t.TCCD)
		d.rdToWrAllowed = max64(d.rdToWrAllowed, end+t.TRTW-t.TCWL)
		b.preAllowed = max64(b.preAllowed, now+t.TRTP, now+t.TBankCAS)
		b.rdAllowed = max64(b.rdAllowed, now+t.TBankCAS)
		b.wrAllowed = max64(b.wrAllowed, now+t.TBankCAS)
		d.refreshEarliest(bankID)
		d.stats.Reads++
		d.bankCAS[bankID]++
		return end
	case CmdWrite:
		start := now + t.TCWL
		end := start + d.burst
		d.dataBusFree = end
		d.stats.BusyCycles += d.burst
		d.nextCASAllowed = max64(d.nextCASAllowed, now+t.TCCD)
		d.wrToRdAllowed = max64(d.wrToRdAllowed, end+t.TWTR)
		b.preAllowed = max64(b.preAllowed, end+t.TWR, now+t.TBankCAS)
		b.rdAllowed = max64(b.rdAllowed, now+t.TBankCAS)
		b.wrAllowed = max64(b.wrAllowed, now+t.TBankCAS)
		d.refreshEarliest(bankID)
		d.stats.Writes++
		d.bankCAS[bankID]++
		return end
	case CmdRefresh:
		for i := range d.banks {
			d.banks[i].actAllowed = max64(d.banks[i].actAllowed, now+t.TRFC)
		}
		d.refreshAllEarliest()
		d.stats.Refreshes++
		return now + t.TRFC
	default:
		panic("dram: unsupported command " + cmd.String())
	}
}

// IssueAutoPrecharge issues a CAS with auto-precharge (RDA/WRA): the bank's
// row closes automatically once the access completes, as under a
// closed-page controller policy. Legality is the same as for the plain CAS.
// It returns the data-burst end cycle.
func (d *Device) IssueAutoPrecharge(now int64, cmd Command, bankID int, row int64) int64 {
	if cmd != CmdRead && cmd != CmdWrite {
		panic("dram: auto-precharge applies to CAS commands only, got " + cmd.String())
	}
	end := d.Issue(now, cmd, bankID, row)
	t := &d.timing
	b := &d.banks[bankID]
	b.open = false
	// The implicit precharge starts when the access's recovery window ends
	// (tRTP for reads, tWR after the burst for writes — already folded into
	// preAllowed by Issue) and takes tRP.
	b.actAllowed = max64(b.actAllowed, b.preAllowed+t.TRP)
	d.refreshEarliest(bankID)
	d.stats.Precharges++
	return end
}

func max64(vals ...int64) int64 {
	m := vals[0]
	for _, v := range vals[1:] {
		if v > m {
			m = v
		}
	}
	return m
}
