package dram

import "testing"

func TestRefreshRequiresAllBanksClosed(t *testing.T) {
	d := newTestDevice(t, 1)
	tm := d.Timing()
	if !d.CanIssue(0, CmdRefresh, 0, 0) {
		t.Fatal("refresh to idle device should be legal")
	}
	d.Issue(0, CmdActivate, 2, 5)
	if d.CanIssue(1, CmdRefresh, 0, 0) {
		t.Fatal("refresh with an open bank should be illegal")
	}
	d.Issue(tm.TRAS, CmdPrecharge, 2, 0)
	if d.CanIssue(tm.TRAS+1, CmdRefresh, 0, 0) {
		t.Fatal("refresh during tRP should be illegal")
	}
	if !d.CanIssue(tm.TRAS+tm.TRP, CmdRefresh, 0, 0) {
		t.Fatal("refresh should be legal after precharge completes")
	}
}

func TestRefreshBlocksActivatesForTRFC(t *testing.T) {
	d := newTestDevice(t, 1)
	tm := d.Timing()
	end := d.Issue(0, CmdRefresh, 0, 0)
	if end != tm.TRFC {
		t.Errorf("refresh completion = %d, want tRFC = %d", end, tm.TRFC)
	}
	for _, b := range []int{0, 3, 7} {
		if d.CanIssue(tm.TRFC-1, CmdActivate, b, 1) {
			t.Fatalf("activate to bank %d legal before tRFC elapsed", b)
		}
		if !d.CanIssue(tm.TRFC, CmdActivate, b, 1) {
			t.Fatalf("activate to bank %d should be legal at tRFC", b)
		}
	}
	if d.Stats().Refreshes != 1 {
		t.Errorf("refreshes = %d, want 1", d.Stats().Refreshes)
	}
}

func TestRefreshCommandBusConflict(t *testing.T) {
	d := newTestDevice(t, 1)
	d.Issue(5, CmdRefresh, 0, 0)
	if d.CanIssue(5, CmdRefresh, 0, 0) {
		t.Fatal("two commands in one cycle should be illegal")
	}
}
