package dram

import (
	"math/rand"
	"testing"
)

// requestCommands are the commands schedulers issue on behalf of buffered
// requests; BankReadyAt's bound covers exactly these (not CmdRefresh).
var requestCommands = []Command{CmdActivate, CmdPrecharge, CmdRead, CmdWrite}

// checkReadyBound asserts the BankReadyAt invariant at cycle now: for every
// bank strictly before its readiness bound, no request-servicing command is
// legal, for any plausible row.
func checkReadyBound(t *testing.T, d *Device, now int64) {
	t.Helper()
	for b := 0; b < d.Geometry().Banks; b++ {
		ready := d.BankReadyAt(b)
		if now >= ready {
			continue
		}
		rows := []int64{0, 1, 7}
		if open := d.OpenRow(b); open >= 0 {
			rows = append(rows, open)
		}
		for _, cmd := range requestCommands {
			for _, row := range rows {
				if d.CanIssue(now, cmd, b, row) {
					t.Fatalf("cycle %d < BankReadyAt(%d)=%d but %s row %d is legal",
						now, b, ready, cmd, row)
				}
			}
		}
	}
}

// TestBankReadyAtFreshDevice: a fresh device must report every bank ready
// immediately (activates are legal at cycle 0).
func TestBankReadyAtFreshDevice(t *testing.T) {
	d := newTestDevice(t, 1)
	for b := 0; b < d.Geometry().Banks; b++ {
		if got := d.BankReadyAt(b); got > 0 {
			t.Errorf("fresh bank %d ready at %d, want <= 0", b, got)
		}
	}
}

// TestBankReadyAtTracksIssues drives a randomized legal command sequence and
// checks, every cycle, that BankReadyAt never claims readiness later than a
// command that is actually legal (conservative lower bound property).
func TestBankReadyAtTracksIssues(t *testing.T) {
	d := newTestDevice(t, 1)
	rng := rand.New(rand.NewSource(42))
	banks := d.Geometry().Banks
	for now := int64(0); now < 3000; now++ {
		checkReadyBound(t, d, now)
		// Try a random command on a random bank; issue when legal.
		b := rng.Intn(banks)
		row := int64(rng.Intn(4))
		cmd := requestCommands[rng.Intn(len(requestCommands))]
		if cmd == CmdRead || cmd == CmdWrite {
			if open := d.OpenRow(b); open >= 0 {
				row = open
			}
		}
		if d.CanIssue(now, cmd, b, row) {
			d.Issue(now, cmd, b, row)
		}
	}
}

// TestBankReadyAtAfterActivate: right after an activate, the bank itself is
// gated by tRCD (CAS) and tRAS (precharge), and sibling banks by tRRD — the
// cached bound must reflect all of it.
func TestBankReadyAtAfterActivate(t *testing.T) {
	d := newTestDevice(t, 1)
	tm := d.Timing()
	d.Issue(0, CmdActivate, 0, 3)
	// Bank 0 is open: earliest next command is the CAS at tRCD (tRAS for
	// precharge is longer).
	if got, want := d.BankReadyAt(0), tm.TRCD; got != want {
		t.Errorf("activated bank ready at %d, want tRCD=%d", got, want)
	}
	// Sibling banks are closed and gated by tRRD.
	if got, want := d.BankReadyAt(1), tm.TRRD; got != want {
		t.Errorf("sibling bank ready at %d, want tRRD=%d", got, want)
	}
}

// TestBankReadyAtAutoPrecharge: after a CAS with auto-precharge the bank is
// closed and its bound must cover the implicit precharge's tRP.
func TestBankReadyAtAutoPrecharge(t *testing.T) {
	d := newTestDevice(t, 1)
	tm := d.Timing()
	d.Issue(0, CmdActivate, 0, 3)
	casAt := tm.TRCD
	d.IssueAutoPrecharge(casAt, CmdRead, 0, 3)
	want := casAt + max64(tm.TRTP, tm.TBankCAS) + tm.TRP
	if got := d.BankReadyAt(0); got != want {
		t.Errorf("auto-precharged bank ready at %d, want %d", got, want)
	}
	for now := casAt + 1; now < want; now++ {
		checkReadyBound(t, d, now)
	}
}

// TestCommandBusFree: the command bus carries one command per cycle.
func TestCommandBusFree(t *testing.T) {
	d := newTestDevice(t, 1)
	if !d.CommandBusFree(0) {
		t.Fatal("fresh device should have a free command bus")
	}
	d.Issue(5, CmdActivate, 0, 0)
	if d.CommandBusFree(5) {
		t.Error("bus must be busy in the issue cycle")
	}
	if !d.CommandBusFree(6) {
		t.Error("bus must be free the cycle after an issue")
	}
}
