package dram

import (
	"testing"
	"testing/quick"
)

func TestDefaultGeometryMatchesPaper(t *testing.T) {
	g := DefaultGeometry()
	if g.Banks != 8 {
		t.Errorf("banks = %d, want 8", g.Banks)
	}
	if g.RowBytes != 2048 {
		t.Errorf("row size = %d, want 2048 (2 KB row buffer)", g.RowBytes)
	}
	if g.LineBytes != 64 {
		t.Errorf("line size = %d, want 64", g.LineBytes)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("default geometry invalid: %v", err)
	}
	if g.ColumnsPerRow() != 32 {
		t.Errorf("columns per row = %d, want 32", g.ColumnsPerRow())
	}
}

func TestGeometryValidateRejectsBadShapes(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Geometry)
	}{
		{"zero channels", func(g *Geometry) { g.Channels = 0 }},
		{"non-power-of-two banks", func(g *Geometry) { g.Banks = 6 }},
		{"zero banks", func(g *Geometry) { g.Banks = 0 }},
		{"non-power-of-two row", func(g *Geometry) { g.RowBytes = 1000 }},
		{"line > row", func(g *Geometry) { g.LineBytes = g.RowBytes * 2 }},
		{"non-power-of-two line", func(g *Geometry) { g.LineBytes = 48 }},
		{"zero rows", func(g *Geometry) { g.Rows = 0 }},
		{"non-power-of-two rows", func(g *Geometry) { g.Rows = 3000 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g := DefaultGeometry()
			c.mutate(&g)
			if err := g.Validate(); err == nil {
				t.Errorf("Validate accepted invalid geometry (%s)", c.name)
			}
		})
	}
}

// TestMapUnmapRoundTrip checks (property): Map(Unmap(loc)) == loc for every
// in-range location, with and without the XOR bank hash.
func TestMapUnmapRoundTrip(t *testing.T) {
	for _, hash := range []bool{true, false} {
		g := DefaultGeometry()
		g.XORBankHash = hash
		f := func(bankRaw uint8, rowRaw uint32, colRaw uint8) bool {
			loc := Location{
				Bank: int(bankRaw) % g.Banks,
				Row:  int64(rowRaw) % g.Rows,
				Col:  int64(colRaw) % g.ColumnsPerRow(),
			}
			return g.Map(g.Unmap(loc)) == loc
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
			t.Errorf("hash=%v: %v", hash, err)
		}
	}
}

// TestUnmapMapRoundTrip checks the other direction: for canonical addresses
// (multiples of the line size within the device capacity), Unmap(Map(a)) == a.
func TestUnmapMapRoundTrip(t *testing.T) {
	g := DefaultGeometry()
	capacity := g.RowBytes * int64(g.Banks) * g.Rows
	f := func(raw uint64) bool {
		addr := (int64(raw%uint64(capacity)) / g.LineBytes) * g.LineBytes
		return g.Unmap(g.Map(addr)) == addr
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestMapSequentialLinesWalkARow verifies the row:bank:column ordering: a
// unit-stride cache-line stream stays in one row of one bank until the row
// is exhausted — the property that gives streaming threads row-buffer hits.
func TestMapSequentialLinesWalkARow(t *testing.T) {
	g := DefaultGeometry()
	base := int64(1 << 20)
	first := g.Map(base)
	for i := int64(1); i < g.ColumnsPerRow(); i++ {
		loc := g.Map(base + i*g.LineBytes)
		if loc.Bank != first.Bank || loc.Row != first.Row {
			// Crossing a row boundary mid-walk is allowed only if base was
			// not row-aligned; re-derive alignment and tolerate the switch.
			if (base/g.LineBytes+i)%g.ColumnsPerRow() != 0 {
				t.Fatalf("line %d left row early: %+v vs %+v", i, loc, first)
			}
			break
		}
		if loc.Col != first.Col+i {
			t.Fatalf("line %d: col = %d, want %d", i, loc.Col, first.Col+i)
		}
	}
}

// TestXORHashSpreadsRowStride verifies that with the XOR hash, a stream that
// strides by exactly one row (a classic pathological stride) is spread across
// different banks rather than hammering one bank.
func TestXORHashSpreadsRowStride(t *testing.T) {
	g := DefaultGeometry()
	rowStride := g.RowBytes * int64(g.Banks) // next row, same bank pre-hash
	seen := map[int]bool{}
	for i := int64(0); i < int64(g.Banks); i++ {
		seen[g.Map(i*rowStride).Bank] = true
	}
	if len(seen) != g.Banks {
		t.Errorf("XOR hash spread row-stride over %d banks, want %d", len(seen), g.Banks)
	}

	g.XORBankHash = false
	seen = map[int]bool{}
	for i := int64(0); i < int64(g.Banks); i++ {
		seen[g.Map(i*rowStride).Bank] = true
	}
	if len(seen) != 1 {
		t.Errorf("without hash, row-stride touched %d banks, want 1", len(seen))
	}
}

func TestMapNegativeAddressDoesNotPanic(t *testing.T) {
	g := DefaultGeometry()
	loc := g.Map(-4096)
	if loc.Bank < 0 || loc.Bank >= g.Banks || loc.Row < 0 || loc.Col < 0 {
		t.Errorf("negative address mapped out of range: %+v", loc)
	}
}

// TestLineInterleavedMapping checks the alternative layout: consecutive
// lines alternate banks, and the round trip still holds.
func TestLineInterleavedMapping(t *testing.T) {
	g := DefaultGeometry()
	g.LineInterleaved = true
	g.XORBankHash = false
	seen := map[int]bool{}
	for i := int64(0); i < int64(g.Banks); i++ {
		seen[g.Map(i*g.LineBytes).Bank] = true
	}
	if len(seen) != g.Banks {
		t.Errorf("line interleaving spread %d banks over consecutive lines, want %d", len(seen), g.Banks)
	}
	// Round trip property under both hash settings.
	for _, hash := range []bool{false, true} {
		g.XORBankHash = hash
		f := func(bankRaw uint8, rowRaw uint32, colRaw uint8) bool {
			loc := Location{
				Bank: int(bankRaw) % g.Banks,
				Row:  int64(rowRaw) % g.Rows,
				Col:  int64(colRaw) % g.ColumnsPerRow(),
			}
			return g.Map(g.Unmap(loc)) == loc
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
			t.Errorf("hash=%v: %v", hash, err)
		}
	}
}

// TestChannelRouteSingle: one channel is the identity route.
func TestChannelRouteSingle(t *testing.T) {
	for _, addr := range []int64{0, 64, 4096, 1 << 30} {
		ch, inner := ChannelRoute(addr, 64, 1)
		if ch != 0 || inner != addr {
			t.Errorf("ChannelRoute(%d, 64, 1) = (%d, %d); want (0, %d)", addr, ch, inner, addr)
		}
	}
}

// TestChannelRouteInjective: no two lines may collide on the same
// (channel, compacted address) pair — a collision would silently merge
// distinct cache lines into one controller-side row. Checked exhaustively
// over a dense prefix for pow2 and non-pow2 channel counts.
func TestChannelRouteInjective(t *testing.T) {
	const lineBytes = 64
	for _, n := range []int{2, 3, 4, 5, 8} {
		seen := map[[2]int64]int64{}
		for line := int64(0); line < 1<<14; line++ {
			ch, inner := ChannelRoute(line*lineBytes, lineBytes, n)
			if ch < 0 || ch >= n {
				t.Fatalf("n=%d line=%d: channel %d out of range", n, line, ch)
			}
			if inner%lineBytes != 0 {
				t.Fatalf("n=%d line=%d: inner %d not line aligned", n, line, inner)
			}
			key := [2]int64{int64(ch), inner}
			if prev, dup := seen[key]; dup {
				t.Fatalf("n=%d: lines %d and %d both route to (ch %d, inner %d)", n, prev, line, ch, inner)
			}
			seen[key] = line
		}
	}
}

// TestChannelRouteBalance: the XOR fold must spread both sequential and
// large-stride streams near-uniformly — the stride case is the reason the
// fold exists (plain modulo pins a 2-channel-stride stream to one channel).
func TestChannelRouteBalance(t *testing.T) {
	const lineBytes, n = 64, 4
	for _, stride := range []int64{1, int64(n), 64 * int64(n)} {
		counts := make([]int64, n)
		const lines = 1 << 12
		for i := int64(0); i < lines; i++ {
			ch, _ := ChannelRoute(i*stride*lineBytes, lineBytes, n)
			counts[ch]++
		}
		for ch, c := range counts {
			if c < lines/(2*int64(n)) {
				t.Errorf("stride %d: channel %d got %d of %d lines — badly imbalanced %v",
					stride, ch, c, int64(lines), counts)
			}
		}
	}
}
