package dram

import (
	"math"
	"math/rand"
	"testing"
)

// TestScanBankMatchesReadyAt drives a device with a randomized legal command
// sequence and, after every issue, cross-checks ScanBank against the
// individual OpenRow/ReadyAt calls it batches: the snapshot must agree field
// for field with the scattered queries for both CAS classes on every bank.
// ScanBank exists purely so the controller's scheduling scan pays one call
// per bank instead of three; any divergence here would silently change
// scheduling decisions.
func TestScanBankMatchesReadyAt(t *testing.T) {
	d, err := NewDevice(DDR2_800(), DefaultGeometry())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	cmds := []Command{CmdActivate, CmdPrecharge, CmdRead, CmdWrite}
	banks := d.Geometry().Banks

	check := func(step int) {
		for b := 0; b < banks; b++ {
			for _, isWrite := range []bool{false, true} {
				openRow, tAct, tCAS, tPre := d.ScanBank(b, isWrite)
				if want := d.OpenRow(b); openRow != want {
					t.Fatalf("step %d bank %d: ScanBank openRow=%d, OpenRow=%d", step, b, openRow, want)
				}
				if openRow < 0 {
					if want := d.ReadyAt(CmdActivate, b); tAct != want {
						t.Fatalf("step %d bank %d closed: ScanBank tAct=%d, ReadyAt(ACT)=%d", step, b, tAct, want)
					}
					if tCAS != math.MaxInt64 || tPre != math.MaxInt64 {
						t.Fatalf("step %d bank %d closed: tCAS=%d tPre=%d, want MaxInt64", step, b, tCAS, tPre)
					}
					continue
				}
				if tAct != math.MaxInt64 {
					t.Fatalf("step %d bank %d open: tAct=%d, want MaxInt64", step, b, tAct)
				}
				cas := CmdRead
				if isWrite {
					cas = CmdWrite
				}
				if want := d.ReadyAt(cas, b); tCAS != want {
					t.Fatalf("step %d bank %d open: ScanBank tCAS=%d, ReadyAt(%s)=%d", step, b, tCAS, cas, want)
				}
				if want := d.ReadyAt(CmdPrecharge, b); tPre != want {
					t.Fatalf("step %d bank %d open: ScanBank tPre=%d, ReadyAt(PRE)=%d", step, b, tPre, want)
				}
			}
		}
	}

	check(-1)
	for i := 0; i < 400; i++ {
		type choice struct {
			cmd  Command
			bank int
			at   int64
		}
		var choices []choice
		for b := 0; b < banks; b++ {
			for _, cmd := range cmds {
				if at := d.ReadyAt(cmd, b); at != math.MaxInt64 {
					choices = append(choices, choice{cmd, b, at})
				}
			}
		}
		if len(choices) == 0 {
			t.Fatal("no command applicable; device wedged")
		}
		c := choices[rng.Intn(len(choices))]
		issueAt := c.at + rng.Int63n(3)
		row := d.OpenRow(c.bank)
		if c.cmd == CmdActivate {
			row = rng.Int63n(8)
		}
		if !d.CanIssue(issueAt, c.cmd, c.bank, row) {
			t.Fatalf("step %d: %s bank %d at %d (ReadyAt %d) unexpectedly illegal",
				i, c.cmd, c.bank, issueAt, c.at)
		}
		d.Issue(issueAt, c.cmd, c.bank, row)
		check(i)
	}
}
