// Package dram models a DDR2-style SDRAM device at the granularity a
// memory-access scheduler cares about: banks with row buffers, per-bank and
// per-channel timing constraints, and command/data bus occupancy.
//
// The model follows the baseline configuration of Mutlu & Moscibroda,
// "Parallelism-Aware Batch Scheduling" (ISCA 2008), Table 2: Micron
// DDR2-800 timing parameters, 8 banks, 2 KB row buffers, a single rank,
// and a 64-bit channel. Multiple channels are "parallel lock-step"
// channels as in the paper: they behave as one wide channel, so adding
// channels shortens the data-burst occupancy rather than adding an
// independent scheduler.
//
// All times inside this package are expressed in DRAM clock cycles
// (tCK = 2.5 ns for DDR2-800). The simulator's global clock runs in CPU
// cycles; the conversion factor lives in the sim package.
package dram

// Command is a DRAM command type issued by the memory controller.
type Command int

// DRAM command types.
const (
	CmdNone Command = iota
	// CmdActivate opens a row into the bank's row buffer (RAS).
	CmdActivate
	// CmdPrecharge closes the bank's open row.
	CmdPrecharge
	// CmdRead is a column read (CAS) from the open row.
	CmdRead
	// CmdWrite is a column write (CAS-W) into the open row.
	CmdWrite
	// CmdRefresh refreshes the device. Modeled but disabled by default.
	CmdRefresh
)

// String returns the conventional mnemonic of the command.
func (c Command) String() string {
	switch c {
	case CmdNone:
		return "NOP"
	case CmdActivate:
		return "ACT"
	case CmdPrecharge:
		return "PRE"
	case CmdRead:
		return "RD"
	case CmdWrite:
		return "WR"
	case CmdRefresh:
		return "REF"
	default:
		return "???"
	}
}

// Timing holds the DRAM timing constraints, in DRAM clock cycles.
//
// The zero value is not usable; start from DDR2_800() (the paper's device)
// and override fields as needed.
type Timing struct {
	// TCL is the CAS (read) latency: read command to first data beat.
	TCL int64
	// TCWL is the CAS write latency: write command to first data beat.
	TCWL int64
	// TRCD is the row-to-column delay: activate to first CAS.
	TRCD int64
	// TRP is the row precharge time: precharge to next activate.
	TRP int64
	// TRAS is the minimum time a row must stay open: activate to precharge.
	TRAS int64
	// TRC is the activate-to-activate time within one bank (TRAS + TRP).
	TRC int64
	// TBurst is the data-bus occupancy of one burst (BL/2 bus cycles).
	TBurst int64
	// TCCD is the minimum CAS-to-CAS spacing on a channel.
	TCCD int64
	// TRRD is the minimum activate-to-activate spacing across banks.
	TRRD int64
	// TFAW is the rolling window in which at most four activates may issue.
	TFAW int64
	// TWTR is the internal write-to-read turnaround after a write burst.
	TWTR int64
	// TRTP is the read-to-precharge delay within a bank.
	TRTP int64
	// TWR is the write recovery time: end of write burst to precharge.
	TWR int64
	// TRTW is the extra bus turnaround inserted between a read burst and a
	// following write burst on the same channel.
	TRTW int64
	// TREFI is the average refresh interval; zero disables refresh.
	TREFI int64
	// TRFC is the refresh cycle time (bank unavailable after refresh).
	TRFC int64
	// TBankCAS is the minimum same-bank CAS-to-CAS spacing: how long a
	// column access occupies its bank before the next column access to the
	// same bank may issue. It models the indivisible per-bank access
	// latency of the paper's Table 2 ("row-buffer hit: 40ns"): banks
	// service one access at a time while accesses to different banks
	// overlap, which is what makes bank-level parallelism matter. Zero
	// allows same-bank CAS pipelining at TCCD (modern burst pipelining).
	TBankCAS int64
}

// DDR2_800 returns the Micron DDR2-800 (MT47H128M8HQ-25) timing parameters
// used by the paper's baseline (Table 2): tCL = tRCD = tRP = 15 ns and
// BL/2 = 10 ns, i.e. 6, 6, 6 and 4 DRAM cycles at tCK = 2.5 ns.
func DDR2_800() Timing {
	return Timing{
		TCL:    6,  // 15 ns
		TCWL:   5,  // tCL - 1 per DDR2 convention
		TRCD:   6,  // 15 ns
		TRP:    6,  // 15 ns
		TRAS:   18, // 45 ns
		TRC:    24, // 60 ns
		TBurst: 4,  // BL=8 at double data rate -> 4 bus cycles = 10 ns
		TCCD:   2,
		TRRD:   3,  // 7.5 ns
		TFAW:   15, // 37.5 ns
		TWTR:   3,  // 7.5 ns
		TRTP:   3,  // 7.5 ns
		TWR:    6,  // 15 ns
		TRTW:   2,
		TREFI:  0, // refresh disabled by default; see DESIGN.md §7
		TRFC:   51,
		// 40 ns: a bank is occupied by one column access at a time, per the
		// paper's per-access latency model (row hit 40ns / closed 60 /
		// conflict 80 = this occupancy plus tRCD and tRP).
		TBankCAS: 16,
	}
}

// DDR3_1333 returns Micron DDR3-1333 (tCK = 1.5 ns) timing parameters, a
// faster device generation than the paper's baseline, for sensitivity
// studies. At a 4 GHz core the CPU:DRAM clock ratio is 6.
func DDR3_1333() Timing {
	return Timing{
		TCL:    9, // 13.5 ns
		TCWL:   7,
		TRCD:   9,  // 13.5 ns
		TRP:    9,  // 13.5 ns
		TRAS:   24, // 36 ns
		TRC:    33, // 49.5 ns
		TBurst: 4,  // BL=8 -> 6 ns
		TCCD:   4,
		TRRD:   4,  // 6 ns
		TFAW:   20, // 30 ns
		TWTR:   5,  // 7.5 ns
		TRTP:   5,  // 7.5 ns
		TWR:    10, // 15 ns
		TRTW:   2,
		TREFI:  0,
		TRFC:   107, // 160 ns for a 2 Gb device
		// Same non-pipelined bank abstraction as the baseline, scaled to
		// the faster clock: ~36 ns of bank occupancy per column access.
		TBankCAS: 24,
	}
}

// Validate reports whether the timing parameters are internally consistent.
// It returns a non-nil error describing the first violated relation.
func (t Timing) Validate() error {
	switch {
	case t.TCL <= 0 || t.TCWL <= 0 || t.TRCD <= 0 || t.TRP <= 0:
		return errBadTiming("tCL/tCWL/tRCD/tRP must be positive")
	case t.TBurst <= 0:
		return errBadTiming("tBurst must be positive")
	case t.TRAS < t.TRCD:
		return errBadTiming("tRAS must cover at least tRCD")
	case t.TRC < t.TRAS+t.TRP:
		return errBadTiming("tRC must be at least tRAS+tRP")
	case t.TFAW < t.TRRD:
		return errBadTiming("tFAW must be at least tRRD")
	case t.TREFI < 0 || t.TRFC < 0:
		return errBadTiming("refresh parameters must be non-negative")
	case t.TBankCAS < 0:
		return errBadTiming("tBankCAS must be non-negative")
	}
	return nil
}

type errBadTiming string

func (e errBadTiming) Error() string { return "dram: invalid timing: " + string(e) }
