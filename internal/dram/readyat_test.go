package dram

import (
	"math"
	"math/rand"
	"testing"
)

// TestReadyAtMatchesCanIssue drives a device with a randomized legal command
// sequence and, after every issue, cross-checks ReadyAt against brute-force
// CanIssue probing for every bank and command class: below the bound the
// command must be illegal, at and above it legal (or, when ReadyAt reports
// MaxInt64, illegal over the whole probe horizon). This is the exactness
// contract the next-event clock relies on — an overshoot here would make the
// engine step over the first legal cycle of a command.
func TestReadyAtMatchesCanIssue(t *testing.T) {
	d, err := NewDevice(DDR2_800(), DefaultGeometry())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	cmds := []Command{CmdActivate, CmdPrecharge, CmdRead, CmdWrite}
	banks := d.Geometry().Banks
	now := int64(0)

	check := func() {
		for b := 0; b < banks; b++ {
			row := d.OpenRow(b)
			for _, cmd := range cmds {
				at := d.ReadyAt(cmd, b)
				if at == math.MaxInt64 {
					for n := now + 1; n < now+64; n++ {
						if d.CanIssue(n, cmd, b, row) {
							t.Fatalf("bank %d %s: ReadyAt=MaxInt64 but CanIssue true at %d", b, cmd, n)
						}
					}
					continue
				}
				lo := at - 8
				if lo < 0 {
					lo = 0
				}
				for n := lo; n < at+8; n++ {
					if got, want := d.CanIssue(n, cmd, b, row), n >= at; got != want {
						t.Fatalf("bank %d %s: CanIssue(%d)=%v, ReadyAt=%d implies %v",
							b, cmd, n, got, at, want)
					}
				}
			}
		}
	}

	check()
	for i := 0; i < 400; i++ {
		// Collect the currently applicable (command, bank) pairs and issue a
		// random one at a cycle at or shortly after its bound.
		type choice struct {
			cmd  Command
			bank int
			at   int64
		}
		var choices []choice
		for b := 0; b < banks; b++ {
			for _, cmd := range cmds {
				if at := d.ReadyAt(cmd, b); at != math.MaxInt64 {
					choices = append(choices, choice{cmd, b, at})
				}
			}
		}
		if len(choices) == 0 {
			t.Fatal("no command applicable; device wedged")
		}
		c := choices[rng.Intn(len(choices))]
		issueAt := c.at + rng.Int63n(3)
		row := d.OpenRow(c.bank)
		if c.cmd == CmdActivate {
			row = rng.Int63n(8)
		}
		if !d.CanIssue(issueAt, c.cmd, c.bank, row) {
			t.Fatalf("step %d: %s bank %d at %d (ReadyAt %d) unexpectedly illegal",
				i, c.cmd, c.bank, issueAt, c.at)
		}
		d.Issue(issueAt, c.cmd, c.bank, row)
		now = issueAt
		check()
	}
}
