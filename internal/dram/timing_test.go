package dram

import "testing"

func TestDDR2_800MatchesPaperTable2(t *testing.T) {
	// Table 2: tCL = tRCD = tRP = 15 ns, BL/2 = 10 ns at tCK = 2.5 ns.
	tm := DDR2_800()
	if tm.TCL != 6 {
		t.Errorf("tCL = %d DRAM cycles, want 6 (15 ns)", tm.TCL)
	}
	if tm.TRCD != 6 {
		t.Errorf("tRCD = %d DRAM cycles, want 6 (15 ns)", tm.TRCD)
	}
	if tm.TRP != 6 {
		t.Errorf("tRP = %d DRAM cycles, want 6 (15 ns)", tm.TRP)
	}
	if tm.TBurst != 4 {
		t.Errorf("tBurst = %d DRAM cycles, want 4 (10 ns)", tm.TBurst)
	}
	if err := tm.Validate(); err != nil {
		t.Fatalf("baseline timing invalid: %v", err)
	}
}

func TestTimingValidateRejectsBadRelations(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Timing)
	}{
		{"zero tCL", func(tm *Timing) { tm.TCL = 0 }},
		{"negative tRCD", func(tm *Timing) { tm.TRCD = -1 }},
		{"zero burst", func(tm *Timing) { tm.TBurst = 0 }},
		{"tRAS < tRCD", func(tm *Timing) { tm.TRAS = tm.TRCD - 1 }},
		{"tRC < tRAS+tRP", func(tm *Timing) { tm.TRC = tm.TRAS }},
		{"tFAW < tRRD", func(tm *Timing) { tm.TFAW = tm.TRRD - 1 }},
		{"negative tREFI", func(tm *Timing) { tm.TREFI = -1 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			tm := DDR2_800()
			c.mutate(&tm)
			if err := tm.Validate(); err == nil {
				t.Errorf("Validate accepted invalid timing (%s)", c.name)
			}
		})
	}
}

func TestCommandString(t *testing.T) {
	want := map[Command]string{
		CmdNone: "NOP", CmdActivate: "ACT", CmdPrecharge: "PRE",
		CmdRead: "RD", CmdWrite: "WR", CmdRefresh: "REF", Command(99): "???",
	}
	for c, s := range want {
		if got := c.String(); got != s {
			t.Errorf("Command(%d).String() = %q, want %q", c, got, s)
		}
	}
}

func TestRowStateString(t *testing.T) {
	if RowHit.String() != "hit" || RowClosed.String() != "closed" || RowConflict.String() != "conflict" {
		t.Error("unexpected RowState string values")
	}
	if RowState(42).String() != "???" {
		t.Error("out-of-range RowState should stringify to ???")
	}
}

func TestDDR3_1333Valid(t *testing.T) {
	tm := DDR3_1333()
	if err := tm.Validate(); err != nil {
		t.Fatalf("DDR3-1333 timing invalid: %v", err)
	}
	base := DDR2_800()
	// Faster clock: more cycles for the same wall-clock constraints.
	if tm.TRAS <= base.TRAS || tm.TRC <= base.TRC {
		t.Error("DDR3 cycle counts should exceed DDR2's at the faster clock")
	}
}
