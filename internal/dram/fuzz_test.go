package dram

import "testing"

// FuzzMapUnmap hardens the address mapping: any address maps to an
// in-range location, and canonical addresses round-trip exactly.
func FuzzMapUnmap(f *testing.F) {
	f.Add(int64(0))
	f.Add(int64(64))
	f.Add(int64(1) << 40)
	f.Add(int64(-4096))
	g := DefaultGeometry()
	capacity := g.RowBytes * int64(g.Banks) * g.Rows
	f.Fuzz(func(t *testing.T, addr int64) {
		loc := g.Map(addr)
		if loc.Bank < 0 || loc.Bank >= g.Banks {
			t.Fatalf("bank %d out of range for addr %d", loc.Bank, addr)
		}
		if loc.Row < 0 || loc.Row >= g.Rows {
			t.Fatalf("row %d out of range for addr %d", loc.Row, addr)
		}
		if loc.Col < 0 || loc.Col >= g.ColumnsPerRow() {
			t.Fatalf("col %d out of range for addr %d", loc.Col, addr)
		}
		if addr >= 0 && addr < capacity {
			canonical := (addr / g.LineBytes) * g.LineBytes
			if got := g.Unmap(g.Map(canonical)); got != canonical {
				t.Fatalf("round trip %d -> %d", canonical, got)
			}
		}
	})
}
