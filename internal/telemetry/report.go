package telemetry

import (
	"encoding/json"
	"fmt"
)

// Schema identifies the run-report wire format. Bump the version suffix on
// any incompatible change; readers reject mismatched schemas.
const Schema = "parbs.telemetry/v1"

// Histogram is a power-of-two latency histogram: Buckets[i] counts values
// in [2^i, 2^(i+1)) DRAM cycles, the last bucket open-ended.
type Histogram struct {
	Buckets []int64 `json:"buckets"`
	Count   int64   `json:"count"`
	Sum     int64   `json:"sum"`
	Max     int64   `json:"max"`
}

// ThreadSeries is one thread's per-epoch telemetry.
type ThreadSeries struct {
	Thread          int       `json:"thread"`
	Benchmark       string    `json:"benchmark,omitempty"`
	QueueOccupancy  []float64 `json:"queue_occupancy"`
	WindowOccupancy []float64 `json:"window_occupancy"`
	IPC             []float64 `json:"ipc"`
	MCPI            []float64 `json:"mcpi"`
	Slowdown        []float64 `json:"slowdown,omitempty"`
	BLP             []float64 `json:"blp"`
	AvgReadLatency  []float64 `json:"avg_read_latency"`
	ReadLatency     Histogram `json:"read_latency"`
}

// BankSeries is one DRAM bank's per-epoch data-bus utilization (fraction of
// the epoch the bank's CAS bursts occupied the data bus).
type BankSeries struct {
	Bank        int       `json:"bank"`
	Utilization []float64 `json:"utilization"`
}

// BatchSeries describes PAR-BS batch dynamics per epoch. It is present only
// for batching schedulers.
type BatchSeries struct {
	Formed       []float64 `json:"formed"`
	MeanSize     []float64 `json:"mean_size"`
	MeanDuration []float64 `json:"mean_duration"`
	TotalFormed  int64     `json:"total_formed"`
}

// LoopStats describes the run loop that produced the report: how many DRAM
// cycles the simulated span covered, how many of those the next-event engine
// actually evaluated, and how many it jumped over. SkipRatio is
// SkippedCycles/TotalCycles. Purely observational — two runs differing only
// in loop mode carry identical telemetry apart from this section.
type LoopStats struct {
	TotalCycles     int64   `json:"total_cycles"`
	EvaluatedCycles int64   `json:"evaluated_cycles"`
	SkippedCycles   int64   `json:"skipped_cycles"`
	SkipRatio       float64 `json:"skip_ratio"`
}

// RunReport is the versioned, machine-readable result of one probed run.
// Every series is indexed by epoch, aligned with EpochEndCycles.
type RunReport struct {
	Schema          string         `json:"schema"`
	Policy          string         `json:"policy,omitempty"`
	Workload        string         `json:"workload,omitempty"`
	EpochDRAMCycles int64          `json:"epoch_dram_cycles"`
	Epochs          int            `json:"epochs"`
	DroppedEpochs   int            `json:"dropped_epochs"`
	EpochEndCycles  []int64        `json:"epoch_end_cycles"`
	RowHitRate      []float64      `json:"row_hit_rate"`
	BusUtilization  []float64      `json:"bus_utilization"`
	Threads         []ThreadSeries `json:"threads"`
	Banks           []BankSeries   `json:"banks"`
	Batches         *BatchSeries   `json:"batches,omitempty"`
	ReadLatency     Histogram      `json:"read_latency"`
	// Loop is present when the run recorded its loop accounting (additive
	// field; schema version unchanged).
	Loop *LoopStats `json:"loop,omitempty"`
}

// ReportMeta labels a report and optionally joins per-thread alone-run MCPI
// so the report can carry instantaneous slowdown series.
type ReportMeta struct {
	Policy     string
	Workload   string
	Benchmarks []string
	// AloneMCPI[t] is thread t's MCPI when run alone; when provided (same
	// length as threads), each ThreadSeries gains Slowdown = MCPI/AloneMCPI.
	AloneMCPI []float64
}

// aloneMCPIFloor guards slowdown division for compute-bound threads whose
// alone MCPI is ~0; mirrors the floor used by internal/metrics.
const aloneMCPIFloor = 1e-4

// Report materializes the probe's ring buffers into a RunReport, unrolling
// the ring into chronological order. The probe remains usable afterwards.
func (p *Probe) Report(meta ReportMeta) *RunReport {
	r := &RunReport{
		Schema:          Schema,
		Policy:          meta.Policy,
		Workload:        meta.Workload,
		EpochDRAMCycles: p.epochLen,
		Epochs:          p.n,
		DroppedEpochs:   p.dropped,
	}
	unrollI := func(src []int64) []int64 {
		out := make([]int64, p.n)
		for i := 0; i < p.n; i++ {
			out[i] = src[(p.head+i)%p.capSlots]
		}
		return out
	}
	unrollF := func(src []float64) []float64 {
		out := make([]float64, p.n)
		for i := 0; i < p.n; i++ {
			out[i] = src[(p.head+i)%p.capSlots]
		}
		return out
	}
	r.EpochEndCycles = unrollI(p.epochEnd)
	r.RowHitRate = unrollF(p.rowHit)
	r.BusUtilization = unrollF(p.busUtil)

	r.Threads = make([]ThreadSeries, p.threads)
	var global Histogram
	global.Buckets = make([]int64, LatencyBuckets)
	for t := 0; t < p.threads; t++ {
		ts := ThreadSeries{
			Thread:          t,
			QueueOccupancy:  unrollF(p.queueOcc[t]),
			WindowOccupancy: unrollF(p.winOcc[t]),
			IPC:             unrollF(p.ipc[t]),
			MCPI:            unrollF(p.mcpi[t]),
			BLP:             unrollF(p.blp[t]),
			AvgReadLatency:  unrollF(p.readLat[t]),
		}
		if t < len(meta.Benchmarks) {
			ts.Benchmark = meta.Benchmarks[t]
		}
		if len(meta.AloneMCPI) == p.threads {
			alone := meta.AloneMCPI[t]
			if alone < aloneMCPIFloor {
				alone = aloneMCPIFloor
			}
			ts.Slowdown = make([]float64, p.n)
			for i, m := range ts.MCPI {
				ts.Slowdown[i] = m / alone
			}
		}
		h := Histogram{Buckets: make([]int64, LatencyBuckets)}
		for b, v := range p.latHist[t] {
			h.Buckets[b] = v
			global.Buckets[b] += v
		}
		h.Count, h.Sum, h.Max = p.latCount[t], p.latSum[t], p.latMax[t]
		global.Count += h.Count
		global.Sum += h.Sum
		if h.Max > global.Max {
			global.Max = h.Max
		}
		ts.ReadLatency = h
		r.Threads[t] = ts
	}
	r.ReadLatency = global

	r.Banks = make([]BankSeries, p.banks)
	for b := 0; b < p.banks; b++ {
		r.Banks[b] = BankSeries{Bank: b, Utilization: unrollF(p.bankUtil[b])}
	}

	if p.totalBatches > 0 {
		r.Batches = &BatchSeries{
			Formed:       unrollF(p.batchFormed),
			MeanSize:     unrollF(p.batchSize),
			MeanDuration: unrollF(p.batchDur),
			TotalFormed:  p.totalBatches,
		}
	}
	if p.loopSet {
		ls := &LoopStats{
			TotalCycles:     p.loopTotal,
			EvaluatedCycles: p.loopEvaluated,
			SkippedCycles:   p.loopSkipped,
		}
		if p.loopTotal > 0 {
			ls.SkipRatio = float64(p.loopSkipped) / float64(p.loopTotal)
		}
		r.Loop = ls
	}
	return r
}

// JSON renders the report as indented JSON.
func (r *RunReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// ReportFromJSON parses a report produced by JSON, rejecting unknown or
// missing schema identifiers.
func ReportFromJSON(data []byte) (*RunReport, error) {
	var r RunReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("telemetry: parse report: %w", err)
	}
	if r.Schema != Schema {
		return nil, fmt.Errorf("telemetry: unsupported report schema %q (want %q)", r.Schema, Schema)
	}
	return &r, nil
}
