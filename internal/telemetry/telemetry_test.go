package telemetry

import (
	"encoding/json"
	"reflect"
	"testing"
)

// boundProbe returns a probe bound to a small 2-thread, 2-bank system.
func boundProbe(cfg Config) *Probe {
	p := NewProbe(cfg)
	p.Bind(2, 2, 4, 8)
	return p
}

func TestProbeDefaults(t *testing.T) {
	p := NewProbe(Config{})
	if got := p.EpochDRAMCycles(); got != DefaultEpochDRAMCycles {
		t.Errorf("default epoch = %d, want %d", got, DefaultEpochDRAMCycles)
	}
}

// TestSampleDeltas feeds two epochs of known cumulative counters and checks
// every derived per-epoch series.
func TestSampleDeltas(t *testing.T) {
	p := boundProbe(Config{EpochDRAMCycles: 100})
	// Epoch 1: thread 0 ran 200 instructions over 1000 CPU cycles with 400
	// stall cycles; 10 reads completed for 500 cycles of latency; BLP 15/10.
	threads := []ThreadSample{
		{Instructions: 200, CPUCycles: 1000, MemStallCycles: 400, QueueLen: 3,
			WindowOccupancy: 7, ReadsCompleted: 10, TotalReadLatency: 500,
			BLPSum: 15, BLPCycles: 10},
		{},
	}
	// Bank 0 took 5 CAS at burst 4 over the 100-cycle epoch: util 0.2.
	// Device: 6 CAS, 2 activates -> row-hit 4/6; 30 busy cycles -> util 0.3.
	p.Sample(100, threads, []int64{5, 1}, DeviceSample{Reads: 5, Writes: 1, Activates: 2, BusyCycles: 30})
	// Epoch 2: thread 0 advances by half as much.
	threads[0] = ThreadSample{Instructions: 300, CPUCycles: 2000, MemStallCycles: 600,
		QueueLen: 1, WindowOccupancy: 2, ReadsCompleted: 15, TotalReadLatency: 900,
		BLPSum: 20, BLPCycles: 15}
	p.Sample(200, threads, []int64{5, 3}, DeviceSample{Reads: 8, Writes: 2, Activates: 6, BusyCycles: 50})

	r := p.Report(ReportMeta{})
	if r.Epochs != 2 || len(r.EpochEndCycles) != 2 || r.EpochEndCycles[1] != 200 {
		t.Fatalf("epochs = %d, ends = %v; want 2 epochs ending at 100, 200", r.Epochs, r.EpochEndCycles)
	}
	t0 := r.Threads[0]
	close := func(got, want float64, name string) {
		t.Helper()
		if diff := got - want; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	close(t0.IPC[0], 0.2, "ipc[0]")
	close(t0.IPC[1], 0.1, "ipc[1]")
	close(t0.MCPI[0], 2.0, "mcpi[0]")
	close(t0.MCPI[1], 2.0, "mcpi[1]")
	close(t0.QueueOccupancy[1], 1, "queue[1]")
	close(t0.WindowOccupancy[0], 7, "window[0]")
	close(t0.BLP[0], 1.5, "blp[0]")
	close(t0.BLP[1], 1.0, "blp[1]")
	close(t0.AvgReadLatency[0], 50, "avglat[0]")
	close(t0.AvgReadLatency[1], 80, "avglat[1]")
	close(r.Banks[0].Utilization[0], 0.2, "bank0 util[0]")
	close(r.Banks[0].Utilization[1], 0, "bank0 util[1]")
	close(r.Banks[1].Utilization[1], 8.0/100, "bank1 util[1]")
	close(r.RowHitRate[0], 4.0/6, "rowhit[0]")
	close(r.RowHitRate[1], 0, "rowhit[1]") // 4 CAS, 4 ACT in epoch 2
	close(r.BusUtilization[0], 0.3, "busutil[0]")
	close(r.BusUtilization[1], 0.2, "busutil[1]")
	// Thread 1 was idle throughout: every series must be zero, not NaN.
	for i := range r.Threads[1].IPC {
		if r.Threads[1].IPC[i] != 0 || r.Threads[1].MCPI[i] != 0 || r.Threads[1].BLP[i] != 0 {
			t.Errorf("idle thread produced non-zero epoch %d", i)
		}
	}
}

// TestRingOverflow: past MaxEpochs, the oldest epochs are dropped and the
// report keeps the newest in chronological order.
func TestRingOverflow(t *testing.T) {
	p := NewProbe(Config{EpochDRAMCycles: 10, MaxEpochs: 4})
	p.Bind(1, 1, 4, 100) // expect > MaxEpochs: capacity clamps to 4
	threads := make([]ThreadSample, 1)
	bank := make([]int64, 1)
	for i := int64(1); i <= 10; i++ {
		threads[0].Instructions = i * 100
		threads[0].CPUCycles = i * 1000
		p.Sample(i*10, threads, bank, DeviceSample{})
	}
	if p.Epochs() != 10 {
		t.Errorf("Epochs() = %d, want 10 (sampled, including dropped)", p.Epochs())
	}
	r := p.Report(ReportMeta{})
	if r.Epochs != 4 || r.DroppedEpochs != 6 {
		t.Fatalf("report: %d kept, %d dropped; want 4 kept, 6 dropped", r.Epochs, r.DroppedEpochs)
	}
	want := []int64{70, 80, 90, 100}
	if !reflect.DeepEqual(r.EpochEndCycles, want) {
		t.Errorf("kept epochs end at %v, want %v", r.EpochEndCycles, want)
	}
	// Deltas must stay correct across the wrap (prev snapshots are global,
	// not per-slot).
	if got := r.Threads[0].IPC[3]; got != 0.1 {
		t.Errorf("ipc after wrap = %v, want 0.1", got)
	}
}

// TestRebase clears warmup-phase event state so reports cover only the
// measured window.
func TestRebase(t *testing.T) {
	p := boundProbe(Config{EpochDRAMCycles: 100})
	p.ObserveReadLatency(0, 40)
	p.BatchFormed(50, 8)
	p.Rebase()
	p.Sample(100, make([]ThreadSample, 2), make([]int64, 2), DeviceSample{})
	r := p.Report(ReportMeta{})
	if r.ReadLatency.Count != 0 {
		t.Errorf("latency count after Rebase = %d, want 0", r.ReadLatency.Count)
	}
	if r.Batches != nil {
		t.Errorf("batch series present after Rebase with no post-warmup batches")
	}
}

// TestLatencyHistogramBuckets pins the power-of-two bucket boundaries.
func TestLatencyHistogramBuckets(t *testing.T) {
	p := boundProbe(Config{})
	cases := []struct {
		lat    int64
		bucket int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {7, 2}, {8, 3},
		{1023, 9}, {1024, 10}, {1 << 40, LatencyBuckets - 1},
	}
	for _, c := range cases {
		p.ObserveReadLatency(0, c.lat)
	}
	p.Sample(1024, make([]ThreadSample, 2), make([]int64, 2), DeviceSample{})
	h := p.Report(ReportMeta{}).Threads[0].ReadLatency
	counts := map[int]int64{}
	for _, c := range cases {
		counts[c.bucket]++
	}
	for b, want := range counts {
		if h.Buckets[b] != want {
			t.Errorf("bucket %d = %d, want %d", b, h.Buckets[b], want)
		}
	}
	if h.Count != int64(len(cases)) || h.Max != 1<<40 {
		t.Errorf("count %d max %d, want %d and %d", h.Count, h.Max, len(cases), int64(1)<<40)
	}
}

// TestHotPathsAllocationFree pins Sample, ObserveReadLatency and the batch
// hooks at zero allocations.
func TestHotPathsAllocationFree(t *testing.T) {
	p := boundProbe(Config{EpochDRAMCycles: 100, MaxEpochs: 8})
	threads := make([]ThreadSample, 2)
	bank := make([]int64, 2)
	end := int64(0)
	avg := testing.AllocsPerRun(100, func() {
		for i := 0; i < 10; i++ {
			p.ObserveReadLatency(i%2, int64(40+i))
			p.BatchFormed(end, 4)
			p.BatchCompleted(end, 300)
		}
		end += 100
		threads[0].Instructions += 50
		threads[0].CPUCycles += 1000
		p.Sample(end, threads, bank, DeviceSample{})
	})
	if avg != 0 {
		t.Errorf("telemetry hot paths allocate %.1f objects per epoch, want 0", avg)
	}
}

// TestReportJSONRoundTrip: a report must survive JSON serialization exactly.
func TestReportJSONRoundTrip(t *testing.T) {
	p := boundProbe(Config{EpochDRAMCycles: 100})
	p.ObserveReadLatency(0, 55)
	p.BatchFormed(10, 6)
	p.BatchCompleted(90, 80)
	threads := []ThreadSample{
		{Instructions: 100, CPUCycles: 1000, MemStallCycles: 300, QueueLen: 2,
			WindowOccupancy: 5, ReadsCompleted: 4, TotalReadLatency: 220, BLPSum: 9, BLPCycles: 5},
		{Instructions: 50, CPUCycles: 1000},
	}
	p.Sample(100, threads, []int64{3, 1}, DeviceSample{Reads: 3, Writes: 1, Activates: 1, BusyCycles: 16})
	orig := p.Report(ReportMeta{
		Policy: "PAR-BS", Workload: "CSI",
		Benchmarks: []string{"mcf", "lbm"},
		AloneMCPI:  []float64{2.0, 0.5},
	})
	data, err := orig.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ReportFromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, back) {
		t.Errorf("report changed across JSON round trip:\n orig: %+v\n back: %+v", orig, back)
	}
	if back.Threads[0].Slowdown == nil || back.Threads[0].Slowdown[0] <= 0 {
		t.Errorf("slowdown series missing after round trip: %+v", back.Threads[0].Slowdown)
	}
}

// TestReportSchemaStability pins the exact top-level JSON key set: any
// rename or removal is a schema break and must bump the version string.
func TestReportSchemaStability(t *testing.T) {
	p := boundProbe(Config{EpochDRAMCycles: 100})
	p.BatchFormed(10, 3)
	p.Sample(100, make([]ThreadSample, 2), make([]int64, 2), DeviceSample{})
	p.RecordLoopStats(100, 60, 40)
	data, err := p.Report(ReportMeta{Policy: "x", Workload: "y"}).JSON()
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"schema", "policy", "workload", "epoch_dram_cycles", "epochs",
		"dropped_epochs", "epoch_end_cycles", "row_hit_rate",
		"bus_utilization", "threads", "banks", "batches", "read_latency",
		"loop",
	}
	for _, k := range want {
		if _, ok := m[k]; !ok {
			t.Errorf("top-level key %q missing from report JSON", k)
		}
	}
	if len(m) != len(want) {
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		t.Errorf("report has %d top-level keys %v, want the %d pinned ones %v — bump the schema version on any change",
			len(m), keys, len(want), want)
	}
	var hdr struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(data, &hdr); err != nil || hdr.Schema != Schema {
		t.Errorf("schema field = %q, want %q", hdr.Schema, Schema)
	}
}

func TestReportFromJSONRejectsForeignSchema(t *testing.T) {
	if _, err := ReportFromJSON([]byte(`{"schema":"parbs.telemetry/v999"}`)); err == nil {
		t.Error("foreign schema accepted")
	}
	if _, err := ReportFromJSON([]byte(`{`)); err == nil {
		t.Error("malformed JSON accepted")
	}
}
