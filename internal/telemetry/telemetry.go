// Package telemetry is the simulator's observability layer: a probe that
// samples controller, device, core and scheduler counters on a fixed epoch
// into preallocated ring buffers, and renders them as structured, versioned
// JSON run reports (see report.go).
//
// The probe is strictly passive — it only reads cumulative counters that the
// simulation maintains anyway — so attaching one cannot perturb scheduling
// decisions; the command-stream equivalence tests in internal/sim pin that.
// All buffers are allocated at Bind time: per-epoch sampling and per-event
// observation (read completions, batch formation) perform no allocations.
package telemetry

// DefaultEpochDRAMCycles is the default sampling period. At the baseline
// 10:1 CPU:DRAM clock ratio it corresponds to 10240 CPU cycles, giving
// ~195 epochs over the paper's 2M-cycle measurement window.
const DefaultEpochDRAMCycles = 1024

// DefaultMaxEpochs bounds the buffered epochs when the caller does not
// choose; beyond it the oldest epochs are dropped (ring semantics).
const DefaultMaxEpochs = 4096

// LatencyBuckets is the number of power-of-two read-latency histogram
// buckets: bucket i counts latencies in [2^i, 2^(i+1)) DRAM cycles, with
// bucket 0 covering [0, 2) and the top bucket open-ended.
const LatencyBuckets = 24

// Config sizes a Probe. The zero value selects the defaults above.
type Config struct {
	// EpochDRAMCycles is the sampling period in DRAM cycles (>= 1).
	EpochDRAMCycles int64
	// MaxEpochs caps buffered epochs; older epochs are dropped when the
	// ring wraps and reported as DroppedEpochs.
	MaxEpochs int
}

// ThreadSample carries one thread's cumulative counters at an epoch
// boundary. The probe differences consecutive samples itself; callers pass
// the raw running totals.
type ThreadSample struct {
	Instructions     int64
	CPUCycles        int64
	MemStallCycles   int64
	QueueLen         int // buffered reads at the sample instant
	WindowOccupancy  int // instructions in the core's window at the instant
	ReadsCompleted   int64
	TotalReadLatency int64
	BLPSum           int64
	BLPCycles        int64
}

// DeviceSample carries the DRAM device's cumulative counters at an epoch
// boundary.
type DeviceSample struct {
	Reads      int64
	Writes     int64
	Activates  int64
	BusyCycles int64
}

// Probe collects one run's time series. Construct with NewProbe, attach via
// the simulation configuration; the sim layer calls Bind before the first
// cycle and Sample at every epoch boundary after warmup.
type Probe struct {
	cfg      Config
	epochLen int64

	threads int
	banks   int
	burst   int64
	bound   bool

	// Ring state shared by every series: capacity, start slot, length, and
	// the count of epochs overwritten after the ring filled.
	capSlots int
	head     int
	n        int
	dropped  int

	epochEnd []int64 // DRAM cycle at each slot's epoch end

	// Per-thread series, [thread][slot].
	queueOcc [][]float64
	winOcc   [][]float64
	ipc      [][]float64
	mcpi     [][]float64
	blp      [][]float64
	readLat  [][]float64

	// Per-bank series, [bank][slot].
	bankUtil [][]float64

	// Global series, [slot].
	rowHit  []float64
	busUtil []float64

	// Batch series, [slot]; fed by the BatchFormed/BatchCompleted hooks.
	batchFormed  []float64
	batchSize    []float64
	batchDur     []float64
	totalBatches int64

	// Per-thread read-latency histograms, [thread][bucket].
	latHist  [][LatencyBuckets]int64
	latCount []int64
	latSum   []int64
	latMax   []int64

	// Previous cumulative snapshots for epoch deltas.
	prevThreads []ThreadSample
	prevBankCAS []int64
	prevDev     DeviceSample

	// In-epoch batch accumulators, reset every Sample.
	epBatches  int64
	epSizeSum  int64
	epDurSum   int64
	epDurCount int64

	// Run-loop accounting (next-event clock), recorded once at run end.
	loopTotal     int64
	loopEvaluated int64
	loopSkipped   int64
	loopSet       bool
}

// NewProbe returns an unbound probe with the given configuration.
func NewProbe(cfg Config) *Probe {
	if cfg.EpochDRAMCycles <= 0 {
		cfg.EpochDRAMCycles = DefaultEpochDRAMCycles
	}
	if cfg.MaxEpochs <= 0 {
		cfg.MaxEpochs = DefaultMaxEpochs
	}
	return &Probe{cfg: cfg, epochLen: cfg.EpochDRAMCycles}
}

// EpochDRAMCycles returns the sampling period.
func (p *Probe) EpochDRAMCycles() int64 { return p.epochLen }

// Epochs returns the number of epochs sampled so far, including any dropped
// from the ring.
func (p *Probe) Epochs() int { return p.n + p.dropped }

// DroppedEpochs returns how many sampled epochs were overwritten after the
// ring filled.
func (p *Probe) DroppedEpochs() int { return p.dropped }

// Bind sizes every buffer for a run over the given system shape and resets
// collected state. expectEpochs hints the run length so short runs do not
// pay for MaxEpochs slots; the ring still grows-by-wrapping past the hint
// up to MaxEpochs. The sim layer calls Bind once per run.
func (p *Probe) Bind(threads, banks int, burstCycles, expectEpochs int64) {
	if threads <= 0 || banks <= 0 {
		panic("telemetry: Bind needs positive thread and bank counts")
	}
	capSlots := p.cfg.MaxEpochs
	if expectEpochs > 0 && expectEpochs+1 < int64(capSlots) {
		capSlots = int(expectEpochs) + 1
	}
	if capSlots < 4 {
		capSlots = 4
	}
	p.threads, p.banks, p.burst = threads, banks, burstCycles
	p.capSlots = capSlots
	p.head, p.n, p.dropped = 0, 0, 0
	p.bound = true

	p.epochEnd = make([]int64, capSlots)
	series := func() [][]float64 {
		s := make([][]float64, threads)
		for i := range s {
			s[i] = make([]float64, capSlots)
		}
		return s
	}
	p.queueOcc, p.winOcc, p.ipc = series(), series(), series()
	p.mcpi, p.blp, p.readLat = series(), series(), series()
	p.bankUtil = make([][]float64, banks)
	for b := range p.bankUtil {
		p.bankUtil[b] = make([]float64, capSlots)
	}
	p.rowHit = make([]float64, capSlots)
	p.busUtil = make([]float64, capSlots)
	p.batchFormed = make([]float64, capSlots)
	p.batchSize = make([]float64, capSlots)
	p.batchDur = make([]float64, capSlots)

	p.latHist = make([][LatencyBuckets]int64, threads)
	p.latCount = make([]int64, threads)
	p.latSum = make([]int64, threads)
	p.latMax = make([]int64, threads)

	p.prevThreads = make([]ThreadSample, threads)
	p.prevBankCAS = make([]int64, banks)
	p.prevDev = DeviceSample{}
	p.totalBatches = 0
	p.epBatches, p.epSizeSum, p.epDurSum, p.epDurCount = 0, 0, 0, 0
	p.loopTotal, p.loopEvaluated, p.loopSkipped, p.loopSet = 0, 0, 0, false
}

// Rebase clears event-driven state accumulated during warmup (latency
// histograms, batch counts) so only the measured window is reported. The
// sim layer calls it at the warmup boundary, right after resetting the
// cumulative simulation counters the probe snapshots.
func (p *Probe) Rebase() {
	for t := range p.latHist {
		p.latHist[t] = [LatencyBuckets]int64{}
		p.latCount[t], p.latSum[t], p.latMax[t] = 0, 0, 0
	}
	for i := range p.prevThreads {
		p.prevThreads[i] = ThreadSample{}
	}
	for i := range p.prevBankCAS {
		p.prevBankCAS[i] = 0
	}
	p.prevDev = DeviceSample{}
	p.totalBatches = 0
	p.epBatches, p.epSizeSum, p.epDurSum, p.epDurCount = 0, 0, 0, 0
}

// nextSlot claims the ring slot for a new epoch, dropping the oldest epoch
// once the ring is full.
func (p *Probe) nextSlot() int {
	if p.n < p.capSlots {
		s := p.head + p.n
		if s >= p.capSlots {
			s -= p.capSlots
		}
		p.n++
		return s
	}
	s := p.head
	p.head++
	if p.head == p.capSlots {
		p.head = 0
	}
	p.dropped++
	return s
}

// Sample records one epoch ending at DRAM cycle end. threads and bankCAS
// carry cumulative counters (one entry per thread / per bank); the probe
// differences them against the previous sample. It performs no allocations.
func (p *Probe) Sample(end int64, threads []ThreadSample, bankCAS []int64, dev DeviceSample) {
	if !p.bound {
		panic("telemetry: Sample before Bind")
	}
	if len(threads) != p.threads || len(bankCAS) != p.banks {
		panic("telemetry: Sample shape mismatch with Bind")
	}
	s := p.nextSlot()
	p.epochEnd[s] = end

	for t := 0; t < p.threads; t++ {
		cur, prev := threads[t], p.prevThreads[t]
		dInstr := cur.Instructions - prev.Instructions
		dCycles := cur.CPUCycles - prev.CPUCycles
		dStall := cur.MemStallCycles - prev.MemStallCycles
		dReads := cur.ReadsCompleted - prev.ReadsCompleted
		dLat := cur.TotalReadLatency - prev.TotalReadLatency
		dBLPSum := cur.BLPSum - prev.BLPSum
		dBLPCycles := cur.BLPCycles - prev.BLPCycles

		p.queueOcc[t][s] = float64(cur.QueueLen)
		p.winOcc[t][s] = float64(cur.WindowOccupancy)
		p.ipc[t][s] = ratio(float64(dInstr), float64(dCycles))
		p.mcpi[t][s] = ratio(float64(dStall), float64(dInstr))
		p.blp[t][s] = ratio(float64(dBLPSum), float64(dBLPCycles))
		p.readLat[t][s] = ratio(float64(dLat), float64(dReads))
		p.prevThreads[t] = cur
	}

	epoch := float64(p.epochLen)
	for b := 0; b < p.banks; b++ {
		dCAS := bankCAS[b] - p.prevBankCAS[b]
		p.bankUtil[b][s] = float64(dCAS*p.burst) / epoch
		p.prevBankCAS[b] = bankCAS[b]
	}

	dCAS := (dev.Reads + dev.Writes) - (p.prevDev.Reads + p.prevDev.Writes)
	dACT := dev.Activates - p.prevDev.Activates
	hits := dCAS - dACT
	if hits < 0 {
		hits = 0
	}
	p.rowHit[s] = ratio(float64(hits), float64(dCAS))
	p.busUtil[s] = float64(dev.BusyCycles-p.prevDev.BusyCycles) / epoch
	p.prevDev = dev

	p.batchFormed[s] = float64(p.epBatches)
	p.batchSize[s] = ratio(float64(p.epSizeSum), float64(p.epBatches))
	p.batchDur[s] = ratio(float64(p.epDurSum), float64(p.epDurCount))
	p.epBatches, p.epSizeSum, p.epDurSum, p.epDurCount = 0, 0, 0, 0
}

// ratio returns num/den, or 0 for an empty denominator (an idle epoch).
func ratio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}

// ObserveReadLatency records one completed read's service latency in DRAM
// cycles. The controller calls it from its retire path; it is allocation
// free.
func (p *Probe) ObserveReadLatency(thread int, lat int64) {
	p.latHist[thread][latBucket(lat)]++
	p.latCount[thread]++
	p.latSum[thread] += lat
	if lat > p.latMax[thread] {
		p.latMax[thread] = lat
	}
}

// latBucket maps a latency to its power-of-two histogram bucket.
func latBucket(lat int64) int {
	b := 0
	for v := lat; v >= 2 && b < LatencyBuckets-1; v >>= 1 {
		b++
	}
	return b
}

// BatchFormed implements the scheduler batch observer (see
// internal/core.BatchObserver): it accrues one formed batch of the given
// size into the current epoch.
func (p *Probe) BatchFormed(now int64, size int) {
	p.epBatches++
	p.epSizeSum += int64(size)
	p.totalBatches++
}

// BatchCompleted implements the scheduler batch observer: it accrues one
// completed batch's duration (DRAM cycles) into the current epoch.
func (p *Probe) BatchCompleted(now int64, durationDRAM int64) {
	p.epDurSum += durationDRAM
	p.epDurCount++
}

// RecordLoopStats stores the run loop's cycle accounting — the total DRAM
// cycles the run spanned, how many the next-event engine evaluated, and how
// many it skipped — for the report's "loop" section. The sim layer calls it
// once at run end; a report generated from a probe that never saw it omits
// the section.
func (p *Probe) RecordLoopStats(total, evaluated, skipped int64) {
	p.loopTotal, p.loopEvaluated, p.loopSkipped = total, evaluated, skipped
	p.loopSet = true
}
