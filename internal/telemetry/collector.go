package telemetry

// Collector accumulates the probe's event-driven observations — read
// latencies and batch lifecycle counts — for one execution shard of a
// sharded multi-channel run. Every channel's controller and scheduler feed
// their own collector (so shards never contend on shared probe state, and
// parallel shard execution stays race-free); the run loop absorbs the
// collectors into the shared Probe at epoch boundaries, in channel order.
//
// Every absorbed quantity is a commutative integer aggregate (sums, counts
// and maxima), so the probe's reported series are identical whether events
// flow through collectors or straight into the probe — and identical
// between sequential and parallel shard execution, which the differential
// equivalence tests in internal/sim pin byte for byte.
type Collector struct {
	latHist  [][LatencyBuckets]int64
	latCount []int64
	latSum   []int64
	latMax   []int64

	epBatches  int64
	epSizeSum  int64
	epDurSum   int64
	epDurCount int64
}

// NewCollector returns a collector sized for the given thread count.
func NewCollector(threads int) *Collector {
	if threads <= 0 {
		panic("telemetry: NewCollector needs a positive thread count")
	}
	return &Collector{
		latHist:  make([][LatencyBuckets]int64, threads),
		latCount: make([]int64, threads),
		latSum:   make([]int64, threads),
		latMax:   make([]int64, threads),
	}
}

// ObserveReadLatency records one completed read's service latency in DRAM
// cycles (memctrl.LatencyObserver). Allocation free.
func (c *Collector) ObserveReadLatency(thread int, lat int64) {
	c.latHist[thread][latBucket(lat)]++
	c.latCount[thread]++
	c.latSum[thread] += lat
	if lat > c.latMax[thread] {
		c.latMax[thread] = lat
	}
}

// BatchFormed implements the scheduler batch observer
// (core.BatchObserver) for the collector's shard.
func (c *Collector) BatchFormed(now int64, size int) {
	c.epBatches++
	c.epSizeSum += int64(size)
}

// BatchCompleted implements the scheduler batch observer for the
// collector's shard.
func (c *Collector) BatchCompleted(now int64, durationDRAM int64) {
	c.epDurSum += durationDRAM
	c.epDurCount++
}

// Reset discards everything accumulated so far, e.g. at the warmup
// boundary (mirroring Probe.Rebase for the shard-local state).
func (c *Collector) Reset() {
	for t := range c.latHist {
		c.latHist[t] = [LatencyBuckets]int64{}
		c.latCount[t], c.latSum[t], c.latMax[t] = 0, 0, 0
	}
	c.epBatches, c.epSizeSum, c.epDurSum, c.epDurCount = 0, 0, 0, 0
}

// Absorb folds the collector's accumulated observations into the probe and
// resets the collector. The run loop calls it for every shard, in channel
// order, before each epoch Sample and once at run end.
func (p *Probe) Absorb(c *Collector) {
	if !p.bound {
		panic("telemetry: Absorb before Bind")
	}
	if len(c.latHist) != p.threads {
		panic("telemetry: Absorb shape mismatch with Bind")
	}
	for t := range c.latHist {
		for b, n := range c.latHist[t] {
			p.latHist[t][b] += n
		}
		p.latCount[t] += c.latCount[t]
		p.latSum[t] += c.latSum[t]
		if c.latMax[t] > p.latMax[t] {
			p.latMax[t] = c.latMax[t]
		}
	}
	p.epBatches += c.epBatches
	p.epSizeSum += c.epSizeSum
	p.epDurSum += c.epDurSum
	p.epDurCount += c.epDurCount
	p.totalBatches += c.epBatches
	c.Reset()
}
