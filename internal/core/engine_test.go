package core

import (
	"strings"
	"testing"

	"repro/internal/dram"
	"repro/internal/memctrl"
)

func newEngineController(t *testing.T, threads int, opts Options) (*memctrl.Controller, *Engine) {
	t.Helper()
	dev, err := dram.NewDevice(dram.DDR2_800(), dram.DefaultGeometry())
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(opts)
	c, err := memctrl.NewController(dev, e, memctrl.DefaultConfig(threads))
	if err != nil {
		t.Fatal(err)
	}
	return c, e
}

// addr builds a per-thread address hitting a chosen (bank, row) with the
// default geometry's XOR hash, by inverting the mapping.
func addrFor(g dram.Geometry, bank int, row, col int64) int64 {
	return g.Unmap(dram.Location{Bank: bank, Row: row, Col: col})
}

func TestOptionsValidate(t *testing.T) {
	cases := []struct {
		name string
		opts Options
		ok   bool
	}{
		{"defaults", DefaultOptions(), true},
		{"no cap", Options{Batch: FullBatching}, true},
		{"negative cap", Options{MarkingCap: -1}, false},
		{"static without duration", Options{Batch: StaticBatching}, false},
		{"duration without static", Options{BatchDuration: 100}, false},
		{"static ok", Options{Batch: StaticBatching, BatchDuration: 100}, true},
		{"priorities wrong len", Options{Priorities: []int{1, 2}}, false},
		{"priority zero", Options{Priorities: []int{1, 0, 1, 1}}, false},
		{"opportunistic ok", Options{Priorities: []int{1, 1, 2, OpportunisticPriority}}, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.opts.Validate(4)
			if (err == nil) != c.ok {
				t.Errorf("Validate = %v, want ok=%v", err, c.ok)
			}
		})
	}
}

func TestEngineNames(t *testing.T) {
	if got := NewEngine(DefaultOptions()).Name(); got != "PAR-BS" {
		t.Errorf("default name = %q, want PAR-BS", got)
	}
	e := NewEngine(Options{Batch: StaticBatching, BatchDuration: 320, MarkingCap: 5})
	if got := e.Name(); got != "BS(static-320,cap=5,max-total)" {
		t.Errorf("static name = %q", got)
	}
	e = NewEngine(Options{Batch: EmptySlotBatching, Rank: RoundRobin})
	if got := e.Name(); got != "BS(eslot,no-cap,round-robin)" {
		t.Errorf("eslot name = %q", got)
	}
}

func TestBatchModeRankModeStrings(t *testing.T) {
	if FullBatching.String() != "full" || StaticBatching.String() != "static" ||
		EmptySlotBatching.String() != "eslot" || BatchMode(9).String() != "???" {
		t.Error("unexpected BatchMode strings")
	}
	names := map[RankMode]string{
		MaxTotal: "max-total", TotalMax: "total-max", RandomRank: "random",
		RoundRobin: "round-robin", NoRankFRFCFS: "no-rank(FR-FCFS)",
		NoRankFCFS: "no-rank(FCFS)", RankMode(9): "???",
	}
	for m, want := range names {
		if m.String() != want {
			t.Errorf("RankMode %d = %q, want %q", m, m.String(), want)
		}
	}
}

func TestMarkingCapLimitsBatch(t *testing.T) {
	opts := DefaultOptions()
	opts.MarkingCap = 2
	c, e := newEngineController(t, 2, opts)
	g := c.Device().Geometry()
	// Thread 0: 5 requests to one bank; only 2 may be marked.
	for i := int64(0); i < 5; i++ {
		c.EnqueueRead(0, addrFor(g, 3, 7, i), 0)
	}
	c.Tick(0) // forms the batch
	marked := 0
	for r := c.FirstRead(); r != nil; r = r.NextBuffered() {
		if r.Marked {
			marked++
		}
	}
	if marked != 2 {
		t.Errorf("marked = %d, want 2 (Marking-Cap)", marked)
	}
	if e.TotalMarked() != 2 {
		t.Errorf("TotalMarked = %d, want 2", e.TotalMarked())
	}
	// The two marked ones must be the oldest.
	i := 0
	for r := c.FirstRead(); r != nil; r = r.NextBuffered() {
		want := i < 2
		if r.Marked != want {
			t.Errorf("request %d marked=%v, want %v (oldest-first marking)", i, r.Marked, want)
		}
		i++
	}
}

func TestNoCapMarksEverything(t *testing.T) {
	opts := DefaultOptions()
	opts.MarkingCap = 0
	c, e := newEngineController(t, 1, opts)
	g := c.Device().Geometry()
	for i := int64(0); i < 10; i++ {
		c.EnqueueRead(0, addrFor(g, 0, 1, i%8), 0)
	}
	c.Tick(0)
	if e.TotalMarked() != 10 {
		t.Errorf("TotalMarked = %d, want 10 with no cap", e.TotalMarked())
	}
}

func TestNewBatchOnlyAfterCompletion(t *testing.T) {
	opts := DefaultOptions()
	opts.MarkingCap = 1
	c, e := newEngineController(t, 1, opts)
	g := c.Device().Geometry()
	for i := int64(0); i < 3; i++ {
		c.EnqueueRead(0, addrFor(g, 0, int64(i), 0), 0)
	}
	c.Tick(0)
	if e.BatchesFormed() != 1 || e.TotalMarked() != 1 {
		t.Fatalf("after first tick: batches=%d marked=%d, want 1/1", e.BatchesFormed(), e.TotalMarked())
	}
	// Run until everything drains; batches must have formed sequentially
	// (3 requests, cap 1, same bank -> 3 batches).
	for now := int64(1); now < 500; now++ {
		c.Tick(now)
	}
	if got := c.ThreadStats(0).ReadsCompleted; got != 3 {
		t.Fatalf("completed %d reads, want 3", got)
	}
	if e.BatchesFormed() != 3 {
		t.Errorf("batches formed = %d, want 3", e.BatchesFormed())
	}
	if e.AvgBatchCycles() <= 0 {
		t.Errorf("avg batch cycles = %f, want > 0", e.AvgBatchCycles())
	}
}

// TestMarkedPrioritizedOverUnmarked constructs a batch, then adds a row-hit
// request from another thread: the row-hit must NOT bypass marked requests
// (Rule 2: BS before RH).
func TestMarkedPrioritizedOverUnmarked(t *testing.T) {
	opts := DefaultOptions()
	c, _ := newEngineController(t, 2, opts)
	g := c.Device().Geometry()
	// Thread 0: two conflicting rows in bank 0 -> marked batch.
	c.EnqueueRead(0, addrFor(g, 0, 1, 0), 0)
	c.EnqueueRead(0, addrFor(g, 0, 2, 0), 0)
	var order []int
	c.SetOnComplete(func(r *memctrl.Request, end int64) { order = append(order, r.Thread) })
	c.Tick(0) // batch formed: both thread-0 requests marked
	// Open row 1 will be active after first request; thread 1 now issues a
	// request to row 1 (a row hit once open) — but it is unmarked.
	now := int64(1)
	for ; now < 30; now++ {
		c.Tick(now)
	}
	c.EnqueueRead(1, addrFor(g, 0, 1, 1), now)
	for ; now < 400; now++ {
		c.Tick(now)
	}
	if len(order) != 3 {
		t.Fatalf("completed %d, want 3", len(order))
	}
	if order[0] != 0 || order[1] != 0 || order[2] != 1 {
		t.Errorf("service order by thread = %v; marked requests must finish first", order)
	}
}

// TestMaxTotalRankingOrdersThreads reproduces Rule 3 on a live controller:
// a thread with low max-bank-load outranks one with high max-bank-load.
func TestMaxTotalRankingOrdersThreads(t *testing.T) {
	opts := DefaultOptions()
	c, e := newEngineController(t, 3, opts)
	g := c.Device().Geometry()
	// Thread 0: 1 request in each of banks 0..2 (max 1, total 3).
	for b := 0; b < 3; b++ {
		c.EnqueueRead(0, addrFor(g, b, 1, 0)+1<<40*0, 0)
	}
	// Thread 1: 2 requests in bank 3 (max 2, total 2).
	c.EnqueueRead(1, addrFor(g, 3, 2, 0), 0)
	c.EnqueueRead(1, addrFor(g, 3, 3, 0), 0)
	// Thread 2: 4 requests in bank 4 (max 4).
	for i := int64(0); i < 4; i++ {
		c.EnqueueRead(2, addrFor(g, 4, 4+i, 0), 0)
	}
	c.Tick(0)
	if !(e.RankPosition(0) < e.RankPosition(1) && e.RankPosition(1) < e.RankPosition(2)) {
		t.Errorf("rank positions = %d,%d,%d; want thread 0 < 1 < 2",
			e.RankPosition(0), e.RankPosition(1), e.RankPosition(2))
	}
}

func TestTotalMaxRankingSwapsRules(t *testing.T) {
	opts := DefaultOptions()
	opts.Rank = TotalMax
	c, e := newEngineController(t, 2, opts)
	g := c.Device().Geometry()
	// Thread 0: total 3 spread (max 1). Thread 1: total 2 in one bank (max 2).
	for b := 0; b < 3; b++ {
		c.EnqueueRead(0, addrFor(g, b, 1, 0), 0)
	}
	c.EnqueueRead(1, addrFor(g, 5, 2, 0), 0)
	c.EnqueueRead(1, addrFor(g, 5, 3, 0), 0)
	c.Tick(0)
	// Under Total-Max, thread 1 (total 2) outranks thread 0 (total 3), the
	// opposite of Max-Total.
	if !(e.RankPosition(1) < e.RankPosition(0)) {
		t.Errorf("Total-Max: rank(1)=%d rank(0)=%d; want thread 1 ranked higher",
			e.RankPosition(1), e.RankPosition(0))
	}
}

func TestRoundRobinRankingRotates(t *testing.T) {
	opts := DefaultOptions()
	opts.Rank = RoundRobin
	opts.MarkingCap = 1
	c, e := newEngineController(t, 4, opts)
	g := c.Device().Geometry()
	c.EnqueueRead(0, addrFor(g, 0, 1, 0), 0)
	c.Tick(0)
	first := make([]int, 4)
	for t := range first {
		first[t] = e.RankPosition(t)
	}
	// Drain and trigger a second batch.
	for now := int64(1); now < 200; now++ {
		c.Tick(now)
	}
	c.EnqueueRead(0, addrFor(g, 0, 2, 0), 200)
	c.Tick(200)
	rotated := false
	for t := range first {
		if e.RankPosition(t) != first[t] {
			rotated = true
		}
	}
	if !rotated {
		t.Error("round-robin ranking did not rotate between batches")
	}
}

// TestStarvationFreedom is the paper's key fairness property: no request
// waits more than a bounded number of batches. With cap c and T threads and
// B banks, any marked batch is finite, so every request is serviced within
// a finite number of batches. We drive an adversarial workload (one thread
// hammering row hits) and check the victim's request completes.
func TestStarvationFreedom(t *testing.T) {
	opts := DefaultOptions()
	c, _ := newEngineController(t, 2, opts)
	g := c.Device().Geometry()
	victimDone := false
	c.SetOnComplete(func(r *memctrl.Request, end int64) {
		if r.Thread == 1 {
			victimDone = true
		}
	})
	// Victim: a single row-conflict request in bank 0.
	c.EnqueueRead(1, addrFor(g, 0, 99, 0), 0)
	// Attacker: continuous stream of row hits to bank 0, row 1.
	col := int64(0)
	for now := int64(0); now < 3000 && !victimDone; now++ {
		if now%4 == 0 {
			c.EnqueueRead(0, addrFor(g, 0, 1, col%32), now)
			col++
		}
		c.Tick(now)
	}
	if !victimDone {
		t.Error("victim request starved despite batching (starvation-freedom violated)")
	}
}

func TestOpportunisticNeverMarked(t *testing.T) {
	opts := DefaultOptions()
	opts.Priorities = []int{1, OpportunisticPriority}
	c, e := newEngineController(t, 2, opts)
	g := c.Device().Geometry()
	c.EnqueueRead(0, addrFor(g, 0, 1, 0), 0)
	c.EnqueueRead(1, addrFor(g, 1, 1, 0), 0)
	c.Tick(0)
	for r := c.FirstRead(); r != nil; r = r.NextBuffered() {
		if r.Thread == 1 && r.Marked {
			t.Error("opportunistic thread's request was marked")
		}
	}
	if e.TotalMarked() != 1 {
		t.Errorf("TotalMarked = %d, want 1", e.TotalMarked())
	}
	// Opportunistic requests still get service when the system is free.
	done := 0
	c.SetOnComplete(func(r *memctrl.Request, end int64) { done++ })
	for now := int64(1); now < 500; now++ {
		c.Tick(now)
	}
	if done != 2 {
		t.Errorf("completed %d, want 2 (opportunistic request must not be dropped)", done)
	}
}

func TestPriorityBasedMarkingEveryXthBatch(t *testing.T) {
	opts := DefaultOptions()
	opts.MarkingCap = 1
	opts.Priorities = []int{1, 2}
	c, e := newEngineController(t, 2, opts)
	g := c.Device().Geometry()
	// Keep both threads supplied with requests; thread 1 (priority 2) must
	// participate in only every other batch.
	markedBatches := map[int64]bool{}
	for now := int64(0); now < 4000; now++ {
		if c.ReadsPerThread(0) < 2 {
			c.EnqueueRead(0, addrFor(g, 0, int64(now%7), 0), now)
		}
		if c.ReadsPerThread(1) < 2 {
			c.EnqueueRead(1, addrFor(g, 1, int64(now%5), 0), now)
		}
		c.Tick(now)
		for r := c.FirstRead(); r != nil; r = r.NextBuffered() {
			if r.Thread == 1 && r.Marked {
				markedBatches[e.BatchesFormed()] = true
			}
		}
	}
	if len(markedBatches) == 0 {
		t.Fatal("priority-2 thread never marked")
	}
	for b := range markedBatches {
		if b%2 != 0 {
			t.Errorf("priority-2 thread marked in odd batch %d; want even batches only", b)
		}
	}
}

func TestEmptySlotAdmitsLateRequests(t *testing.T) {
	opts := DefaultOptions()
	opts.Batch = EmptySlotBatching
	opts.MarkingCap = 3
	c, e := newEngineController(t, 2, opts)
	g := c.Device().Geometry()
	// Thread 0 starts a long batch.
	for i := int64(0); i < 3; i++ {
		c.EnqueueRead(0, addrFor(g, 0, 1+i, 0), 0)
	}
	c.Tick(0)
	if e.TotalMarked() != 3 {
		t.Fatalf("TotalMarked = %d, want 3", e.TotalMarked())
	}
	// Thread 1 arrives late; it has empty slots, so its request joins.
	c.EnqueueRead(1, addrFor(g, 1, 9, 0), 1)
	if e.TotalMarked() != 4 {
		t.Errorf("TotalMarked = %d after late arrival, want 4 (eslot admission)", e.TotalMarked())
	}
	// A late arrival beyond the cap must NOT join.
	for i := int64(0); i < 3; i++ {
		c.EnqueueRead(1, addrFor(g, 1, 20+i, 0), 2)
	}
	if e.TotalMarked() != 6 {
		t.Errorf("TotalMarked = %d, want 6 (cap 3 per thread per bank)", e.TotalMarked())
	}
}

func TestFullBatchingDoesNotAdmitLateRequests(t *testing.T) {
	opts := DefaultOptions()
	c, e := newEngineController(t, 2, opts)
	g := c.Device().Geometry()
	c.EnqueueRead(0, addrFor(g, 0, 1, 0), 0)
	c.Tick(0)
	c.EnqueueRead(1, addrFor(g, 1, 9, 0), 1)
	if e.TotalMarked() != 1 {
		t.Errorf("TotalMarked = %d, want 1 (full batching must not admit late requests)", e.TotalMarked())
	}
}

func TestStaticBatchingRemarksPeriodically(t *testing.T) {
	opts := Options{Batch: StaticBatching, BatchDuration: 50, MarkingCap: 5, Rank: MaxTotal}
	c, e := newEngineController(t, 1, opts)
	g := c.Device().Geometry()
	// Slow trickle of requests; batches must form on schedule regardless.
	for now := int64(0); now < 500; now++ {
		if now%40 == 0 {
			c.EnqueueRead(0, addrFor(g, 0, int64(now), 0), now)
		}
		c.Tick(now)
	}
	// 500 cycles / 50 per batch = ~10 markings.
	if got := e.BatchesFormed(); got < 9 || got > 11 {
		t.Errorf("static batches formed = %d, want ~10", got)
	}
}

func TestEngineAttachRejectsBadOptions(t *testing.T) {
	dev, err := dram.NewDevice(dram.DDR2_800(), dram.DefaultGeometry())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("attach with bad options did not panic")
		}
	}()
	e := NewEngine(Options{MarkingCap: -3})
	memctrl.NewController(dev, e, memctrl.DefaultConfig(2)) //nolint:errcheck
}

func TestBatchStatsTelemetry(t *testing.T) {
	opts := DefaultOptions()
	c, e := newEngineController(t, 2, opts)
	g := c.Device().Geometry()
	done := 0
	c.SetOnComplete(func(r *memctrl.Request, end int64) { done++ })
	sent := 0
	for now := int64(0); now < 12000; now++ {
		if now%25 == 0 && sent < 200 {
			th := sent % 2
			c.EnqueueRead(th, addrFor(g, sent%8, int64(sent%40)+int64(th)*600, 0), now)
			sent++
		}
		c.Tick(now)
	}
	st := e.BatchStats()
	if st.Formed == 0 || st.MaxSize == 0 {
		t.Fatalf("telemetry dead: %+v", st)
	}
	var sizes, durs int64
	for i := range st.SizeHist {
		sizes += st.SizeHist[i]
		durs += st.DurHist[i]
	}
	if sizes != st.Formed {
		t.Errorf("size histogram total %d != batches formed %d", sizes, st.Formed)
	}
	if durs == 0 || durs > st.Formed {
		t.Errorf("duration histogram total %d vs formed %d", durs, st.Formed)
	}
	if s := st.String(); !strings.Contains(s, "batches formed") {
		t.Errorf("rendering broken: %q", s)
	}
}

func TestBucketLayout(t *testing.T) {
	cases := []struct {
		v, base int64
		want    int
	}{
		{1, 2, 0}, {2, 2, 1}, {3, 2, 1}, {4, 2, 2}, {7, 2, 2}, {8, 2, 3},
		{1 << 20, 2, 9}, {15, 32, 0}, {32, 32, 1}, {64, 32, 2},
	}
	for _, c := range cases {
		if got := bucket(c.v, c.base); got != c.want {
			t.Errorf("bucket(%d,%d) = %d, want %d", c.v, c.base, got, c.want)
		}
	}
}
