package core

import (
	"fmt"
	"sort"
)

// This file implements the paper's Figure 3 abstraction: scheduling within a
// single batch across independent banks, with a latency unit of 1 for
// row-conflict requests and 0.5 for row-hit requests. It abstracts away the
// DRAM bus and timing constraints, exactly as the figure does, and is used
// both as an executable reproduction of the figure and as a fast model for
// reasoning about within-batch policies.

// AbsRequest is one marked request in the abstract batch model.
type AbsRequest struct {
	// Thread is the requesting thread, 0-based.
	Thread int
	// Row identifies the DRAM row the request targets. Two requests to the
	// same row of the same bank serviced back-to-back make the second a
	// row hit.
	Row int
}

// AbsBatch is a batch of marked requests: per bank, the arrival order
// (index 0 is the oldest request, the figure's bottom-most rectangle).
type AbsBatch struct {
	Banks [][]AbsRequest
}

// AbsPolicy selects the within-batch service order of the abstract model.
type AbsPolicy int

const (
	// AbsFCFS services each bank's requests strictly in arrival order.
	AbsFCFS AbsPolicy = iota
	// AbsFRFCFS prioritizes row hits, then arrival order.
	AbsFRFCFS
	// AbsPARBS prioritizes row hits, then Max-Total thread rank, then
	// arrival order (all requests are marked, so the BS rule is moot).
	AbsPARBS
)

// String names the policy as in Figure 3.
func (p AbsPolicy) String() string {
	switch p {
	case AbsFCFS:
		return "FCFS"
	case AbsFRFCFS:
		return "FR-FCFS"
	case AbsPARBS:
		return "PAR-BS"
	default:
		return "???"
	}
}

// NumThreads returns the number of threads present in the batch
// (1 + highest thread index).
func (b AbsBatch) NumThreads() int {
	n := 0
	for _, bank := range b.Banks {
		for _, r := range bank {
			if r.Thread+1 > n {
				n = r.Thread + 1
			}
		}
	}
	return n
}

// MaxBankLoad returns the thread's max-bank-load: its largest request count
// in any single bank (Rule 3, Max rule).
func (b AbsBatch) MaxBankLoad(thread int) int {
	m := 0
	for _, bank := range b.Banks {
		n := 0
		for _, r := range bank {
			if r.Thread == thread {
				n++
			}
		}
		if n > m {
			m = n
		}
	}
	return m
}

// TotalLoad returns the thread's total marked request count
// (Rule 3, Total tie-breaker).
func (b AbsBatch) TotalLoad(thread int) int {
	n := 0
	for _, bank := range b.Banks {
		for _, r := range bank {
			if r.Thread == thread {
				n++
			}
		}
	}
	return n
}

// Ranking returns the Max-Total ranking of the batch's threads: position 0
// is the highest-ranked thread. Residual ties (equal max and total) are
// broken by thread index for determinism; the paper breaks them randomly.
func (b AbsBatch) Ranking() []int {
	n := b.NumThreads()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		ti, tj := order[i], order[j]
		mi, mj := b.MaxBankLoad(ti), b.MaxBankLoad(tj)
		if mi != mj {
			return mi < mj
		}
		return b.TotalLoad(ti) < b.TotalLoad(tj)
	})
	return order
}

// Simulate services the whole batch under the given policy and returns each
// thread's batch completion time (the finish time of its last request, in
// latency units: 1 per row conflict, 0.5 per row hit) along with the average
// over threads — the quantities tabulated under Figure 3.
func (b AbsBatch) Simulate(p AbsPolicy) (finish []float64, avg float64) {
	n := b.NumThreads()
	finish = make([]float64, n)
	rankPos := make([]int, n)
	if p == AbsPARBS {
		for pos, t := range b.Ranking() {
			rankPos[t] = pos
		}
	}
	for _, bank := range b.Banks {
		pending := make([]int, len(bank))
		for i := range pending {
			pending[i] = i
		}
		openRow := -1
		openThread := -1
		t := 0.0
		for len(pending) > 0 {
			bestPos := 0
			for pos := 1; pos < len(pending); pos++ {
				a, cur := bank[pending[pos]], bank[pending[bestPos]]
				ah := a.Thread == openThread && a.Row == openRow
				ch := cur.Thread == openThread && cur.Row == openRow
				var better bool
				switch p {
				case AbsFCFS:
					better = pending[pos] < pending[bestPos]
				case AbsFRFCFS:
					if ah != ch {
						better = ah
					} else {
						better = pending[pos] < pending[bestPos]
					}
				case AbsPARBS:
					switch {
					case ah != ch:
						better = ah
					case rankPos[a.Thread] != rankPos[cur.Thread]:
						better = rankPos[a.Thread] < rankPos[cur.Thread]
					default:
						better = pending[pos] < pending[bestPos]
					}
				}
				if better {
					bestPos = pos
				}
			}
			idx := pending[bestPos]
			r := bank[idx]
			if r.Thread == openThread && r.Row == openRow {
				t += 0.5
			} else {
				t += 1.0
			}
			openRow, openThread = r.Row, r.Thread
			if t > finish[r.Thread] {
				finish[r.Thread] = t
			}
			pending = append(pending[:bestPos], pending[bestPos+1:]...)
		}
	}
	sum := 0.0
	for _, f := range finish {
		sum += f
	}
	if n > 0 {
		avg = sum / float64(n)
	}
	return finish, avg
}

// Figure3Batch returns a batch reproducing the paper's Figure 3 example.
//
// The paper prints the figure graphically; this layout was reconstructed to
// satisfy every constraint stated in the text — Thread 1 has three requests
// to three different banks (max-bank-load 1); Threads 2 and 3 both have
// max-bank-load 2 with Thread 2's total load smaller; Thread 4 has
// max-bank-load 5; the first request to each bank is a row conflict — and it
// reproduces the figure's batch-completion-time tables exactly:
//
//	FCFS:    4, 4, 5, 7    (avg 5)
//	FR-FCFS: 5.5, 3, 4.5, 4.5 (avg 4.375)
//	PAR-BS:  1, 2, 4, 5.5  (avg 3.125)
//
// Rows are encoded as thread*100+group so threads never share rows.
func Figure3Batch() AbsBatch {
	t1, t2, t3, t4 := 0, 1, 2, 3
	row := func(thread, group int) int { return thread*100 + group }
	return AbsBatch{Banks: [][]AbsRequest{
		{ // Bank 0, oldest first
			{t3, row(t3, 0)}, {t2, row(t2, 1)}, {t1, row(t1, 1)},
		},
		{ // Bank 1
			{t3, row(t3, 1)}, {t1, row(t1, 1)}, {t2, row(t2, 0)}, {t3, row(t3, 0)},
		},
		{ // Bank 2
			{t3, row(t3, 0)}, {t4, row(t4, 0)}, {t4, row(t4, 1)}, {t1, row(t1, 0)},
			{t4, row(t4, 0)}, {t4, row(t4, 1)}, {t4, row(t4, 0)},
		},
		{ // Bank 3
			{t4, row(t4, 1)}, {t2, row(t2, 1)}, {t3, row(t3, 0)}, {t2, row(t2, 1)}, {t3, row(t3, 1)},
		},
	}}
}

// String renders the batch bank-by-bank for debugging.
func (b AbsBatch) String() string {
	s := ""
	for i, bank := range b.Banks {
		s += fmt.Sprintf("bank %d:", i)
		for _, r := range bank {
			s += fmt.Sprintf(" T%d(r%d)", r.Thread+1, r.Row)
		}
		s += "\n"
	}
	return s
}
