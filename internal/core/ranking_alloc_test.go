package core

import (
	"math/rand"
	"testing"

	"repro/internal/dram"
	"repro/internal/memctrl"
)

// enqueueSpread loads the controller with reads spread over threads, banks
// and rows so ranking has non-trivial input.
func enqueueSpread(t *testing.T, c *memctrl.Controller, n int) {
	t.Helper()
	g := c.Device().Geometry()
	for i := 0; i < n; i++ {
		loc := dram.Location{Bank: i % g.Banks, Row: int64(i % 16), Col: 0}
		if _, ok := c.EnqueueRead(i%c.NumThreads(), g.Unmap(loc), 0); !ok {
			t.Fatalf("buffer full at %d", i)
		}
	}
}

// TestComputeRankingAllocationFree: batch formation's ranking step must
// reuse the engine-owned scratch buffers — zero allocations per batch in
// steady state, for every ranking scheme that ranks.
func TestComputeRankingAllocationFree(t *testing.T) {
	for _, rank := range []RankMode{MaxTotal, TotalMax, RandomRank, RoundRobin} {
		t.Run(rank.String(), func(t *testing.T) {
			opts := DefaultOptions()
			opts.Rank = rank
			ctrl, e := newEngineController(t, 8, opts)
			enqueueSpread(t, ctrl, 64)
			e.formBatch(0) // warm scratch state
			avg := testing.AllocsPerRun(100, func() {
				e.computeRanking()
			})
			if avg != 0 {
				t.Errorf("%s ranking allocates %.2f objects per batch, want 0", rank, avg)
			}
		})
	}
}

// TestRandomRankMatchesRandPerm pins the allocation-free inside-out shuffle
// to the exact permutation sequence rand.Perm would have produced: the
// rewrite must not change any seeded experiment.
func TestRandomRankMatchesRandPerm(t *testing.T) {
	const threads, batches = 8, 20
	opts := DefaultOptions()
	opts.Rank = RandomRank
	opts.Seed = 7
	ctrl, e := newEngineController(t, threads, opts)
	enqueueSpread(t, ctrl, 32)
	reference := rand.New(rand.NewSource(opts.Seed))
	for batch := 0; batch < batches; batch++ {
		e.computeRanking()
		want := reference.Perm(threads)
		for i := 0; i < threads; i++ {
			if e.RankPosition(i) != want[i] {
				t.Fatalf("batch %d: rankOf = %v diverges from rand.Perm at thread %d (want %v)",
					batch, snapshotRanks(e, threads), i, want)
			}
		}
	}
}

func snapshotRanks(e *Engine, threads int) []int {
	out := make([]int, threads)
	for i := range out {
		out[i] = e.RankPosition(i)
	}
	return out
}
