package core

import (
	"fmt"
	"strings"
)

// BatchStats summarizes PAR-BS batch telemetry over a run: how large
// batches were (marked requests at formation) and how long they took to
// complete, in DRAM cycles. The paper reports the average batch duration
// (~1269 CPU cycles in Case Study II, Section 8.1.2); the histograms here
// expose the full shape for analysis and debugging.
type BatchStats struct {
	// Formed is the number of batches formed.
	Formed int64
	// SizeHist buckets batch sizes: [1], [2-3], [4-7], [8-15], ... powers
	// of two up to the last bucket which is unbounded.
	SizeHist [10]int64
	// DurHist buckets completed batch durations in DRAM cycles with the
	// same power-of-two layout starting at 16.
	DurHist [10]int64
	// MaxSize and MaxDuration track the extremes.
	MaxSize     int
	MaxDuration int64
}

// bucket maps v into a power-of-two histogram slot with base `base`.
func bucket(v int64, base int64) int {
	b := 0
	for v >= base && b < 9 {
		v /= 2
		b++
	}
	return b
}

// recordSize accounts a batch's size at formation.
func (s *BatchStats) recordSize(n int) {
	s.Formed++
	s.SizeHist[bucket(int64(n), 2)]++
	if n > s.MaxSize {
		s.MaxSize = n
	}
}

// recordDuration accounts a completed batch's duration.
func (s *BatchStats) recordDuration(d int64) {
	s.DurHist[bucket(d, 32)]++
	if d > s.MaxDuration {
		s.MaxDuration = d
	}
}

// String renders the histograms compactly.
func (s BatchStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "batches formed: %d (max size %d, max duration %d DRAM cycles)\n", s.Formed, s.MaxSize, s.MaxDuration)
	b.WriteString("size histogram (1,2,4,...):     ")
	for _, v := range s.SizeHist {
		fmt.Fprintf(&b, " %d", v)
	}
	b.WriteString("\nduration histogram (16,32,...): ")
	for _, v := range s.DurHist {
		fmt.Fprintf(&b, " %d", v)
	}
	b.WriteByte('\n')
	return b.String()
}

// BatchStats returns a copy of the engine's batch telemetry.
func (e *Engine) BatchStats() BatchStats { return e.batchStats }
