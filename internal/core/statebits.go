package core

import "math/bits"

// This file reproduces the paper's hardware-cost accounting: the Table 1
// register inventory and the Figure 4 per-request priority value.

// log2 returns ceil(log2(n)) for n >= 1, the register width needed to count
// or index n things.
func log2(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// StateBits returns the additional hardware state, in bits, that PAR-BS
// requires beyond an FR-FCFS controller, following Table 1:
//
//   - per request: the Marked bit (1), the thread-rank portion of the
//     priority value (log2 threads, Figure 4), and a Thread-ID
//     (log2 threads);
//   - per thread per bank: ReqsInBankPerThread (log2 bufEntries), for the
//     Max rule;
//   - per thread: ReqsPerThread (log2 bufEntries), for the Total rule;
//   - global: TotalMarkedRequests (log2 bufEntries) and the 5-bit
//     Marking-Cap register.
//
// For the paper's example (8 threads, 128-entry request buffer, 8 banks)
// this is 1412 bits.
func StateBits(threads, bufEntries, banks int) int {
	perRequest := 1 + log2(threads) + log2(threads)
	perThreadPerBank := log2(bufEntries)
	perThread := log2(bufEntries)
	global := log2(bufEntries) + 5
	return bufEntries*perRequest + threads*banks*perThreadPerBank + threads*perThread + global
}

// Priority is the Figure 4 priority value: a single comparable integer per
// request, ordered so that a larger value is scheduled first. From most to
// least significant: marked bit, row-hit bit, thread rank, request ID
// (older = larger). The thread-rank field is the only storage PAR-BS adds
// over FR-FCFS.
type Priority uint64

// idBits is the width of the request-ID field in the encoded priority.
// 32 bits of ID far exceeds any request buffer while leaving room for the
// rank field.
const idBits = 32

// EncodePriority packs a request's scheduling attributes into a Figure 4
// priority value. rankPos is the thread's rank position (0 = highest rank),
// numThreads bounds the rank field width, and id is the request's arrival
// sequence number (smaller = older).
func EncodePriority(marked, rowHit bool, rankPos, numThreads int, id int64) Priority {
	rankWidth := log2(numThreads)
	if rankWidth == 0 {
		rankWidth = 1
	}
	// Invert rank and ID so that "better" becomes "numerically larger".
	rankVal := uint64(numThreads-1-rankPos) & ((1 << rankWidth) - 1)
	idVal := uint64((int64(1)<<idBits - 1) - id)
	var p uint64
	if marked {
		p |= 1 << (idBits + rankWidth + 1)
	}
	if rowHit {
		p |= 1 << (idBits + rankWidth)
	}
	p |= rankVal << idBits
	p |= idVal
	return Priority(p)
}
