package core

import (
	"testing"

	"repro/internal/dram"
	"repro/internal/memctrl"
)

// candidate fabricates a comparator input.
func candidate(id int64, thread int, marked, hit bool) memctrl.Candidate {
	state := dram.RowConflict
	cmd := dram.CmdPrecharge
	if hit {
		state = dram.RowHit
		cmd = dram.CmdRead
	}
	return memctrl.Candidate{
		Req:      &memctrl.Request{ID: id, Thread: thread, Marked: marked},
		Cmd:      cmd,
		RowState: state,
	}
}

// attachedEngine returns an engine wired to a controller so rank state is
// allocated; rank positions are forced through a crafted batch.
func attachedEngine(t *testing.T, threads int, opts Options) (*memctrl.Controller, *Engine) {
	t.Helper()
	return newEngineController(t, threads, opts)
}

// TestRule2Order checks each prioritization rule in sequence on crafted
// candidate pairs: BS > RH > RANK > FCFS.
func TestRule2Order(t *testing.T) {
	c, e := attachedEngine(t, 2, DefaultOptions())
	g := c.Device().Geometry()
	// Give thread 0 a lighter load than thread 1 so rank(0) < rank(1).
	c.EnqueueRead(0, addrFor(g, 0, 1, 0), 0)
	c.EnqueueRead(1, addrFor(g, 1, 2, 0), 0)
	c.EnqueueRead(1, addrFor(g, 1, 3, 0), 0)
	c.Tick(0)
	if !(e.RankPosition(0) < e.RankPosition(1)) {
		t.Fatalf("setup: rank(0)=%d rank(1)=%d", e.RankPosition(0), e.RankPosition(1))
	}

	// Rule 1 (BS): marked conflict beats unmarked row hit.
	if !e.Better(candidate(9, 1, true, false), candidate(1, 0, false, true)) {
		t.Error("marked-first violated")
	}
	// Rule 2 (RH): both marked, row hit beats older conflict.
	if !e.Better(candidate(9, 1, true, true), candidate(1, 0, true, false)) {
		t.Error("row-hit-first violated among marked")
	}
	// Rule 3 (RANK): both marked, both hits, higher rank beats older.
	if !e.Better(candidate(9, 0, true, true), candidate(1, 1, true, true)) {
		t.Error("higher-rank-first violated")
	}
	// Rule 4 (FCFS): identical otherwise, older first.
	if !e.Better(candidate(1, 0, true, true), candidate(9, 0, true, true)) {
		t.Error("oldest-first violated")
	}
	// Antisymmetry spot check.
	a, b := candidate(1, 0, true, true), candidate(9, 0, true, true)
	if e.Better(a, b) && e.Better(b, a) {
		t.Error("comparator not antisymmetric")
	}
}

// TestPriorityRulePosition checks the Section 5 PRIORITY rule sits between
// BS and RH: a higher-priority thread's conflict beats a lower-priority
// thread's row hit when both are marked, but marking still dominates.
func TestPriorityRulePosition(t *testing.T) {
	opts := DefaultOptions()
	opts.Priorities = []int{1, 2}
	_, e := attachedEngine(t, 2, opts)

	// PRIORITY above RH: priority-1 conflict beats priority-2 hit.
	if !e.Better(candidate(9, 0, true, false), candidate(1, 1, true, true)) {
		t.Error("higher-priority-first must precede row-hit-first")
	}
	// BS above PRIORITY: a marked priority-2 request beats an unmarked
	// priority-1 request.
	if !e.Better(candidate(9, 1, true, false), candidate(1, 0, false, true)) {
		t.Error("marked-first must precede priority")
	}
}

// TestOpportunisticBelowEverything: an opportunistic thread's candidates
// lose to any normal-priority unmarked candidate.
func TestOpportunisticBelowEverything(t *testing.T) {
	opts := DefaultOptions()
	opts.Priorities = []int{1, OpportunisticPriority}
	_, e := attachedEngine(t, 2, opts)
	if !e.Better(candidate(9, 0, false, false), candidate(1, 1, false, true)) {
		t.Error("opportunistic row hit must lose to a normal conflict")
	}
}

// TestNoRankVariantsDropRules verifies the Figure 13 rank-free modes.
func TestNoRankVariantsDropRules(t *testing.T) {
	frOpts := DefaultOptions()
	frOpts.Rank = NoRankFRFCFS
	_, fr := attachedEngine(t, 2, frOpts)
	// Row-hit still honored...
	if !fr.Better(candidate(9, 1, true, true), candidate(1, 0, true, false)) {
		t.Error("no-rank(FR-FCFS) must keep row-hit-first")
	}
	// ...but rank is not: with equal hit status, age decides regardless of
	// thread loads.
	if !fr.Better(candidate(1, 1, true, true), candidate(9, 0, true, true)) {
		t.Error("no-rank(FR-FCFS) must fall back to age, not rank")
	}

	fcOpts := DefaultOptions()
	fcOpts.Rank = NoRankFCFS
	_, fc := attachedEngine(t, 2, fcOpts)
	// Row-hit dropped too: older conflict beats younger hit.
	if !fc.Better(candidate(1, 0, true, false), candidate(9, 1, true, true)) {
		t.Error("no-rank(FCFS) must ignore row-hit status")
	}
	// Marking still dominates in both.
	if !fc.Better(candidate(9, 0, true, false), candidate(1, 1, false, false)) {
		t.Error("no-rank(FCFS) must keep marked-first")
	}
}
