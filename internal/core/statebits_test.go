package core

import (
	"testing"
	"testing/quick"
)

// TestTable1StateBits reproduces the paper's hardware-cost claim exactly:
// "Assuming an 8-core CMP, 128-entry request buffer and 8 DRAM banks, the
// extra hardware state ... required to implement PAR-BS (beyond FR-FCFS)
// is 1412 bits."
func TestTable1StateBits(t *testing.T) {
	if got := StateBits(8, 128, 8); got != 1412 {
		t.Errorf("StateBits(8, 128, 8) = %d, want 1412", got)
	}
}

func TestStateBitsComponents(t *testing.T) {
	// 4-core: per-request 1+2+2=5 bits x 128 = 640; 4*8*7 = 224; 4*7 = 28;
	// 7+5 = 12 => 904.
	if got := StateBits(4, 128, 8); got != 904 {
		t.Errorf("StateBits(4, 128, 8) = %d, want 904", got)
	}
	// 16-core: per-request 1+4+4=9 x 128 = 1152; 16*8*7 = 896; 16*7 = 112;
	// 12 => 2172.
	if got := StateBits(16, 128, 8); got != 2172 {
		t.Errorf("StateBits(16, 128, 8) = %d, want 2172", got)
	}
}

func TestStateBitsMonotone(t *testing.T) {
	f := func(t8 uint8, e8 uint8, b8 uint8) bool {
		threads := int(t8%15) + 2
		entries := int(e8%200) + 8
		banks := int(b8%15) + 1
		base := StateBits(threads, entries, banks)
		return StateBits(threads+1, entries, banks) >= base &&
			StateBits(threads, entries+1, banks) >= base &&
			StateBits(threads, entries, banks+1) >= base
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLog2(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 128: 7, 129: 8}
	for n, want := range cases {
		if got := log2(n); got != want {
			t.Errorf("log2(%d) = %d, want %d", n, got, want)
		}
	}
}

// TestEncodePriorityOrdering verifies the Figure 4 encoding yields the same
// order as the Rule 2 comparator: marked > row-hit > rank > age, checked as
// a property over random attribute pairs.
func TestEncodePriorityOrdering(t *testing.T) {
	const threads = 8
	type attrs struct {
		marked, hit bool
		rank        int
		id          int64
	}
	better := func(a, b attrs) bool { // Rule 2 reference order
		if a.marked != b.marked {
			return a.marked
		}
		if a.hit != b.hit {
			return a.hit
		}
		if a.rank != b.rank {
			return a.rank < b.rank
		}
		return a.id < b.id
	}
	f := func(m1, h1 bool, r1 uint8, id1 uint16, m2, h2 bool, r2 uint8, id2 uint16) bool {
		a := attrs{m1, h1, int(r1) % threads, int64(id1)}
		b := attrs{m2, h2, int(r2) % threads, int64(id2)}
		pa := EncodePriority(a.marked, a.hit, a.rank, threads, a.id)
		pb := EncodePriority(b.marked, b.hit, b.rank, threads, b.id)
		switch {
		case better(a, b) && !better(b, a):
			return pa > pb
		case better(b, a) && !better(a, b):
			return pb > pa
		default:
			return pa == pb
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestEncodePrioritySingleThread(t *testing.T) {
	// Degenerate single-thread system must still encode without overlap.
	hi := EncodePriority(true, false, 0, 1, 0)
	lo := EncodePriority(false, true, 0, 1, 0)
	if hi <= lo {
		t.Error("marked must outrank row-hit even with one thread")
	}
}
