package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/memctrl"
)

// BatchObserver receives batch lifecycle events (formation, completion).
// *telemetry.Probe satisfies it; defining the interface here keeps this
// package free of a telemetry dependency.
type BatchObserver interface {
	BatchFormed(now int64, size int)
	BatchCompleted(now int64, durationDRAM int64)
}

// LifecycleObserver receives per-request marking events and detailed batch
// spans. *trace.Tracer satisfies it; as with BatchObserver, the interface
// lives here so core stays free of an observability dependency. Strictly
// passive: it cannot influence marking or ranking.
type LifecycleObserver interface {
	// RequestMarked fires for each request marked into batch (Rule 1 and
	// the empty-slot admission path).
	RequestMarked(id int64, thread int, batch int64, now int64)
	// BatchFormedDetail fires once per batch formation with the batch's
	// total marked size, per-thread marked counts, and how many requests
	// the Marking-Cap clipped out. perThread is only valid for the call.
	BatchFormedDetail(batch int64, now int64, size int, perThread []int, clipped int)
	// BatchDrained fires when every marked request of the batch has been
	// serviced (never under StaticBatching, which re-marks on a timer).
	BatchDrained(batch int64, now int64, duration int64)
}

// Engine is the PAR-BS scheduler: a memctrl.Policy implementing request
// batching (Rule 1), the within-batch prioritization rules (Rule 2, plus the
// PRIORITY rule of Section 5), and per-batch thread ranking (Rule 3).
type Engine struct {
	opts Options
	ctrl *memctrl.Controller
	rng  *rand.Rand

	threads int
	banks   int

	// rankOf maps thread -> rank position; 0 is the highest rank.
	rankOf []int
	// markedInBatch counts requests marked this batch per thread per bank;
	// it implements the Marking-Cap and empty-slot admission checks.
	markedInBatch [][]int
	// totalMarked mirrors Table 1's TotalMarkedRequests register: marked
	// requests not yet fully serviced.
	totalMarked int
	// batchIndex counts formed batches, starting at 1; a thread with
	// priority X is marked only when batchIndex is a multiple of X.
	batchIndex int64
	// epoch versions the (marking, ranking) state for the controller's
	// candidate cache; see OrderEpoch.
	epoch uint64
	// prio is the per-thread comparable priority, baked in OnAttach.
	prio []int

	// nextStaticMark is the next re-marking cycle for StaticBatching.
	nextStaticMark int64

	batchStart    int64
	batchesFormed int64
	batchCycleSum int64

	// adaptiveCap is the live Marking-Cap under Options.AdaptiveCap.
	adaptiveCap  int
	lastBatchLen int64

	// maxBatchWait tracks the most batches any request waited before being
	// marked — the paper's starvation bound made observable. Each request's
	// arrival-time batch index lives in its Stamp scratch field.
	maxBatchWait int64

	// permScratch and sorter are reused across batches so ranking performs
	// no steady-state allocations (batches form every few hundred cycles).
	permScratch []int
	sorter      rankSorter

	batchStats BatchStats

	// observer, when non-nil, is notified of batch formation/completion.
	// Purely observational: it cannot influence marking or ranking.
	observer BatchObserver
	// lifecycle, when non-nil, receives per-request marking events and
	// detailed batch spans; lifecycleScratch is its reused per-thread
	// count buffer.
	lifecycle        LifecycleObserver
	lifecycleScratch []int
}

// rankKey is one thread's ranking key: its marked-request load shape
// (max-per-bank and total) plus a random tie-breaker.
type rankKey struct {
	thread  int
	max     int
	total   int
	tiebrk  int64
	inBatch bool
}

// rankSorter orders rank keys for Max-Total (or, with totalMax set,
// Total-Max) shortest-job-first ranking; see Engine.computeRanking. Less is
// a strict total order (tiebrk values are distinct with overwhelming
// probability), so the sorted permutation is unique.
type rankSorter struct {
	keys     []rankKey
	totalMax bool
}

func (s *rankSorter) Len() int      { return len(s.keys) }
func (s *rankSorter) Swap(i, j int) { s.keys[i], s.keys[j] = s.keys[j], s.keys[i] }
func (s *rankSorter) Less(i, j int) bool {
	a, b := s.keys[i], s.keys[j]
	if a.inBatch != b.inBatch {
		return a.inBatch
	}
	x1, y1, x2, y2 := a.max, a.total, b.max, b.total
	if s.totalMax {
		x1, y1, x2, y2 = a.total, a.max, b.total, b.max
	}
	if x1 != x2 {
		return x1 < x2
	}
	if y1 != y2 {
		return y1 < y2
	}
	return a.tiebrk < b.tiebrk
}

// NewEngine builds a PAR-BS engine with the given options. Option validity
// is checked against the controller's thread count at attach time.
func NewEngine(opts Options) *Engine {
	return &Engine{
		opts: opts,
		rng:  rand.New(rand.NewSource(opts.Seed)),
	}
}

// Name identifies the engine configuration in result tables.
func (e *Engine) Name() string {
	d := DefaultOptions()
	if e.opts.Batch == d.Batch && e.opts.Rank == d.Rank && e.opts.MarkingCap == d.MarkingCap {
		return "PAR-BS"
	}
	cap := "no-cap"
	if e.opts.MarkingCap > 0 {
		cap = fmt.Sprintf("cap=%d", e.opts.MarkingCap)
	}
	if e.opts.Batch == StaticBatching {
		return fmt.Sprintf("BS(static-%d,%s,%s)", e.opts.BatchDuration, cap, e.opts.Rank)
	}
	return fmt.Sprintf("BS(%s,%s,%s)", e.opts.Batch, cap, e.opts.Rank)
}

// Options returns the engine's configuration.
func (e *Engine) Options() Options { return e.opts }

// SetBatchObserver registers an observer for batch lifecycle events; nil
// detaches. The sim layer wires telemetry probes through this.
func (e *Engine) SetBatchObserver(o BatchObserver) { e.observer = o }

// SetLifecycleObserver registers an observer for per-request marking and
// detailed batch spans; nil detaches. The sim layer wires tracers through
// this. Call after OnAttach (the sim layer constructs the controller first).
func (e *Engine) SetLifecycleObserver(o LifecycleObserver) {
	e.lifecycle = o
	if o != nil && e.lifecycleScratch == nil {
		e.lifecycleScratch = make([]int, e.threads)
	}
}

// BatchesFormed returns how many batches have been formed.
func (e *Engine) BatchesFormed() int64 { return e.batchesFormed }

// AvgBatchCycles returns the mean batch completion time in DRAM cycles
// (the paper reports ~1269 CPU cycles for Case Study II).
func (e *Engine) AvgBatchCycles() float64 {
	if e.batchesFormed == 0 {
		return 0
	}
	return float64(e.batchCycleSum) / float64(e.batchesFormed)
}

// OnAttach wires the engine to its controller and allocates per-thread
// per-bank marking state. It panics on invalid options: misconfiguration is
// a programming error, and callers can pre-check with Options.Validate.
func (e *Engine) OnAttach(c *memctrl.Controller) {
	e.ctrl = c
	e.threads = c.NumThreads()
	e.banks = c.Device().Geometry().Banks
	if err := e.opts.Validate(e.threads); err != nil {
		panic(err)
	}
	e.rankOf = make([]int, e.threads)
	e.prio = make([]int, e.threads)
	for t := range e.prio {
		e.prio[t] = comparablePriority(e.opts, t)
	}
	e.permScratch = make([]int, e.threads)
	e.sorter = rankSorter{keys: make([]rankKey, e.threads), totalMax: e.opts.Rank == TotalMax}
	e.markedInBatch = make([][]int, e.threads)
	for t := range e.markedInBatch {
		e.markedInBatch[t] = make([]int, e.banks)
	}
	if e.opts.AdaptiveCap {
		e.adaptiveCap = e.opts.MarkingCap
		min, max := e.opts.capBounds()
		if e.adaptiveCap < min {
			e.adaptiveCap = min
		}
		if e.adaptiveCap > max {
			e.adaptiveCap = max
		}
	}
}

// OnCycle forms a new batch when due: for full and empty-slot batching, when
// all marked requests have been serviced and work is waiting; for static
// batching, every BatchDuration cycles.
func (e *Engine) OnCycle(now int64) {
	switch e.opts.Batch {
	case StaticBatching:
		if now >= e.nextStaticMark {
			e.formBatch(now)
			e.nextStaticMark = now + e.opts.BatchDuration
		}
	default:
		if e.totalMarked == 0 && e.ctrl.PendingReads() > 0 {
			e.formBatch(now)
		}
	}
}

// NextPolicyEventAt implements memctrl.NextEventer. Under StaticBatching the
// only self-driven event is the re-marking deadline; under the batch-driven
// modes a formation can fire on any cycle while unmarked work is pending
// (formBatch may mark nothing and retry — opportunistic-only threads), so the
// bound collapses to now+1 in that state. Everything else the engine does is
// triggered by enqueue/issue/complete events, which the next-event clock
// already treats as skip barriers.
func (e *Engine) NextPolicyEventAt(now int64) int64 {
	if e.opts.Batch == StaticBatching {
		if e.nextStaticMark <= now+1 {
			return now + 1
		}
		return e.nextStaticMark
	}
	if e.totalMarked == 0 && e.ctrl.PendingReads() > 0 {
		return now + 1
	}
	return math.MaxInt64
}

// currentCap returns the live marking cap: the adaptive value when
// enabled, otherwise the configured Marking-Cap.
func (e *Engine) currentCap() int {
	if e.opts.AdaptiveCap {
		return e.adaptiveCap
	}
	return e.opts.effectiveCap()
}

// AdaptiveCapValue exposes the live cap for tests and experiments.
func (e *Engine) AdaptiveCapValue() int { return e.currentCap() }

// adaptCap moves the cap toward the batch-turnaround setpoint: batches
// much longer than the target shrink the cap (less delay for unmarked
// requests); much shorter ones grow it (more locality per batch).
func (e *Engine) adaptCap() {
	if !e.opts.AdaptiveCap || e.lastBatchLen == 0 {
		return
	}
	min, max := e.opts.capBounds()
	target := e.opts.targetBatch()
	switch {
	case e.lastBatchLen > target*3/2 && e.adaptiveCap > min:
		e.adaptiveCap--
	case e.lastBatchLen < target/2 && e.adaptiveCap < max:
		e.adaptiveCap++
	}
}

// formBatch implements Rule 1 (batch formation and marking) and Rule 3
// (thread ranking).
func (e *Engine) formBatch(now int64) {
	e.adaptCap()
	e.batchIndex++
	e.batchesFormed++
	e.batchStart = now
	for t := range e.markedInBatch {
		for b := range e.markedInBatch[t] {
			e.markedInBatch[t][b] = 0
		}
	}
	capacity := e.currentCap()
	clipped := 0
	for r := e.ctrl.FirstRead(); r != nil; r = r.NextBuffered() { // buffer order == oldest first
		if r.Marked {
			// Only possible under StaticBatching: leftovers stay marked and
			// consume their thread's slots in the new batch.
			e.markedInBatch[r.Thread][r.Loc.Bank]++
			continue
		}
		if !e.threadMarkedThisBatch(r.Thread) {
			continue
		}
		if e.markedInBatch[r.Thread][r.Loc.Bank] >= capacity {
			clipped++
			continue
		}
		r.Marked = true
		e.markedInBatch[r.Thread][r.Loc.Bank]++
		e.totalMarked++
		if waited := e.batchIndex - 1 - r.Stamp; waited > e.maxBatchWait {
			e.maxBatchWait = waited
		}
		if e.lifecycle != nil {
			e.lifecycle.RequestMarked(r.ID, r.Thread, e.batchIndex, now)
		}
	}
	e.batchStats.recordSize(e.totalMarked)
	if e.observer != nil {
		e.observer.BatchFormed(now, e.totalMarked)
	}
	if e.lifecycle != nil {
		pt := e.lifecycleScratch
		for t := range pt {
			pt[t] = 0
			for b := 0; b < e.banks; b++ {
				pt[t] += e.markedInBatch[t][b]
			}
		}
		e.lifecycle.BatchFormedDetail(e.batchIndex, now, e.totalMarked, pt, clipped)
	}
	e.computeRanking()
	// Marking and ranking both changed: retire all cached candidate orderings.
	e.epoch++
}

// OrderEpoch implements memctrl.EpochedPolicy. Better reads the Marked bits
// and the thread ranking, both rewritten only by formBatch (empty-slot
// marking under ImmediateBatching touches only the request being enqueued,
// whose bank the enqueue itself invalidates), so versioning batch
// formations is sufficient for the controller's candidate cache.
func (e *Engine) OrderEpoch() uint64 { return e.epoch }

// threadMarkedThisBatch implements priority-based marking (Section 5):
// priority-X threads participate in every Xth batch; opportunistic threads
// never participate.
func (e *Engine) threadMarkedThisBatch(thread int) bool {
	p := e.opts.priorityOf(thread)
	if p == OpportunisticPriority {
		return false
	}
	return e.batchIndex%int64(p) == 0
}

// computeRanking implements Rule 3 and the Section 4.4 alternatives. Threads
// with marked requests are ranked by the selected scheme; threads without
// marked requests are ranked below them (their requests are unmarked, so
// this ordering only breaks ties among unmarked requests).
func (e *Engine) computeRanking() {
	switch e.opts.Rank {
	case NoRankFRFCFS, NoRankFCFS:
		return // ranking unused
	case RandomRank:
		// Inside-out Fisher-Yates into the scratch slice, drawing the same
		// rng sequence as rand.Perm so ranks are reproducible across the
		// allocation-free rewrite.
		p := e.permScratch
		for i := 0; i < e.threads; i++ {
			j := e.rng.Intn(i + 1)
			p[i] = p[j]
			p[j] = i
		}
		copy(e.rankOf, p)
		return
	case RoundRobin:
		for t := 0; t < e.threads; t++ {
			e.rankOf[t] = (t + int(e.batchIndex)) % e.threads
		}
		return
	}

	// Max-Total / Total-Max over marked request counts.
	keys := e.sorter.keys
	for t := 0; t < e.threads; t++ {
		k := rankKey{thread: t, tiebrk: e.rng.Int63()}
		for b := 0; b < e.banks; b++ {
			n := e.markedInBatch[t][b]
			if n == 0 {
				// Rank batch-less threads by their outstanding load so the
				// ordering is still shortest-job-first among them.
				n = e.ctrl.ReadsInBank(t, b)
			} else {
				k.inBatch = true
			}
			k.total += n
			if n > k.max {
				k.max = n
			}
		}
		keys[t] = k
	}
	sort.Sort(&e.sorter)
	for pos, k := range keys {
		e.rankOf[k.thread] = pos
	}
}

// OnEnqueue admits late-arriving requests into the current batch under
// EmptySlotBatching (Section 4.4).
func (e *Engine) OnEnqueue(r *memctrl.Request, now int64) {
	r.Stamp = e.batchIndex
	if e.opts.Batch != EmptySlotBatching || e.totalMarked == 0 {
		return
	}
	if !e.threadMarkedThisBatch(r.Thread) {
		return
	}
	if e.markedInBatch[r.Thread][r.Loc.Bank] >= e.currentCap() {
		return
	}
	r.Marked = true
	e.markedInBatch[r.Thread][r.Loc.Bank]++
	e.totalMarked++
	if e.lifecycle != nil {
		e.lifecycle.RequestMarked(r.ID, r.Thread, e.batchIndex, now)
	}
}

// OnIssue is part of memctrl.Policy; PAR-BS needs no per-command bookkeeping.
func (e *Engine) OnIssue(memctrl.Candidate, int64) {}

// OnComplete decrements TotalMarkedRequests when a marked request is fully
// serviced; the batch ends when the count reaches zero.
func (e *Engine) OnComplete(r *memctrl.Request, now int64) {
	if !r.Marked {
		return
	}
	e.totalMarked--
	if e.totalMarked == 0 && e.opts.Batch != StaticBatching {
		e.lastBatchLen = now - e.batchStart
		e.batchCycleSum += e.lastBatchLen
		e.batchStats.recordDuration(e.lastBatchLen)
		if e.observer != nil {
			e.observer.BatchCompleted(now, e.lastBatchLen)
		}
		if e.lifecycle != nil {
			e.lifecycle.BatchDrained(e.batchIndex, now, e.lastBatchLen)
		}
	}
}

// Better implements the PAR-BS request prioritization (Rule 2 with the
// Section 5 PRIORITY rule): marked-first, higher-priority-thread-first,
// row-hit-first, higher-rank-first, oldest-first. The rank-free variants
// drop the rank rule (and, for NoRankFCFS, the row-hit rule).
func (e *Engine) Better(a, b memctrl.Candidate) bool {
	if a.Req.Marked != b.Req.Marked {
		return a.Req.Marked
	}
	pa, pb := e.prio[a.Req.Thread], e.prio[b.Req.Thread]
	if pa != pb {
		return pa < pb
	}
	if e.opts.Rank != NoRankFCFS && a.IsRowHit() != b.IsRowHit() {
		return a.IsRowHit()
	}
	if e.opts.Rank != NoRankFCFS && e.opts.Rank != NoRankFRFCFS {
		if ra, rb := e.rankOf[a.Req.Thread], e.rankOf[b.Req.Thread]; ra != rb {
			return ra < rb
		}
	}
	return a.Req.ID < b.Req.ID
}

// comparablePriority maps a thread's priority level to a sortable value with
// opportunistic threads last. Priorities are fixed at construction, so
// OnAttach bakes the mapping into e.prio and the comparison hot path never
// touches (or copies) Options again.
func comparablePriority(opts Options, thread int) int {
	p := opts.priorityOf(thread)
	if p == OpportunisticPriority {
		return math.MaxInt
	}
	return p
}

// TotalMarked exposes the TotalMarkedRequests register for tests and
// invariant checks.
func (e *Engine) TotalMarked() int { return e.totalMarked }

// RankPosition returns thread's current rank position (0 = highest rank).
func (e *Engine) RankPosition(thread int) int { return e.rankOf[thread] }

// MaxBatchWait returns the largest number of whole batches any request
// waited in the buffer before being marked. With Marking-Cap c, a thread
// with q buffered requests to one bank waits at most ceil(q/c)-1 batches —
// the starvation bound batching provides (Section 4.3).
func (e *Engine) MaxBatchWait() int64 { return e.maxBatchWait }
