package core

import (
	"math"
	"math/rand"
	"testing"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// TestFigure3 reproduces the paper's Figure 3 batch-completion-time tables
// exactly: FCFS (4,4,5,7; avg 5), FR-FCFS (5.5,3,4.5,4.5; avg 4.375),
// PAR-BS (1,2,4,5.5; avg 3.125).
func TestFigure3(t *testing.T) {
	b := Figure3Batch()
	cases := []struct {
		policy AbsPolicy
		finish [4]float64
		avg    float64
	}{
		{AbsFCFS, [4]float64{4, 4, 5, 7}, 5},
		{AbsFRFCFS, [4]float64{5.5, 3, 4.5, 4.5}, 4.375},
		{AbsPARBS, [4]float64{1, 2, 4, 5.5}, 3.125},
	}
	for _, c := range cases {
		t.Run(c.policy.String(), func(t *testing.T) {
			finish, avg := b.Simulate(c.policy)
			if len(finish) != 4 {
				t.Fatalf("got %d threads, want 4", len(finish))
			}
			for i := range c.finish {
				if !almostEq(finish[i], c.finish[i]) {
					t.Errorf("thread %d completion = %v, want %v", i+1, finish[i], c.finish[i])
				}
			}
			if !almostEq(avg, c.avg) {
				t.Errorf("average completion = %v, want %v", avg, c.avg)
			}
		})
	}
}

// TestFigure3Constraints checks the thread-load constraints the paper states
// about the example: T1 has 3 requests in 3 banks, T2/T3 max-bank-load 2
// with T2's total smaller, T4 max-bank-load 5.
func TestFigure3Constraints(t *testing.T) {
	b := Figure3Batch()
	if got := b.NumThreads(); got != 4 {
		t.Fatalf("threads = %d, want 4", got)
	}
	if b.MaxBankLoad(0) != 1 || b.TotalLoad(0) != 3 {
		t.Errorf("T1: max=%d total=%d, want max=1 total=3", b.MaxBankLoad(0), b.TotalLoad(0))
	}
	if b.MaxBankLoad(1) != 2 {
		t.Errorf("T2 max-bank-load = %d, want 2", b.MaxBankLoad(1))
	}
	if b.MaxBankLoad(2) != 2 {
		t.Errorf("T3 max-bank-load = %d, want 2", b.MaxBankLoad(2))
	}
	if b.TotalLoad(1) >= b.TotalLoad(2) {
		t.Errorf("T2 total (%d) must be below T3 total (%d)", b.TotalLoad(1), b.TotalLoad(2))
	}
	if b.MaxBankLoad(3) != 5 {
		t.Errorf("T4 max-bank-load = %d, want 5", b.MaxBankLoad(3))
	}
	// First request to each bank must be a row conflict by construction
	// (openRow starts empty), and no two threads share a row.
	seen := map[int]int{}
	for _, bank := range b.Banks {
		for _, r := range bank {
			if th, ok := seen[r.Row]; ok && th != r.Thread {
				t.Errorf("row %d shared by threads %d and %d", r.Row, th, r.Thread)
			}
			seen[r.Row] = r.Thread
		}
	}
}

// TestFigure3Ranking checks Rule 3 on the example: ranking must be
// T1 > T2 > T3 > T4, for the reasons the paper gives.
func TestFigure3Ranking(t *testing.T) {
	b := Figure3Batch()
	got := b.Ranking()
	want := []int{0, 1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ranking = %v, want %v", got, want)
		}
	}
}

// TestAbstractPARBSNeverWorseThanFCFSOnAvg spot-checks the shortest-job-first
// intuition on a set of random batches: PAR-BS's average completion time is
// never worse than FCFS's on these inputs (row hits and ranking only help).
func TestAbstractPARBSBeatsFCFSOnFig3Permutations(t *testing.T) {
	base := Figure3Batch()
	// Rotate arrival order within each bank to build variants.
	for shift := 0; shift < 3; shift++ {
		b := AbsBatch{Banks: make([][]AbsRequest, len(base.Banks))}
		for i, bank := range base.Banks {
			r := make([]AbsRequest, len(bank))
			for j := range bank {
				r[j] = bank[(j+shift)%len(bank)]
			}
			b.Banks[i] = r
		}
		_, fcfsAvg := b.Simulate(AbsFCFS)
		_, parbsAvg := b.Simulate(AbsPARBS)
		if parbsAvg > fcfsAvg+1e-9 {
			t.Errorf("shift %d: PAR-BS avg %v worse than FCFS avg %v", shift, parbsAvg, fcfsAvg)
		}
	}
}

func TestAbsPolicyString(t *testing.T) {
	if AbsFCFS.String() != "FCFS" || AbsFRFCFS.String() != "FR-FCFS" || AbsPARBS.String() != "PAR-BS" {
		t.Error("unexpected AbsPolicy names")
	}
	if AbsPolicy(9).String() != "???" {
		t.Error("out-of-range AbsPolicy should stringify to ???")
	}
}

func TestEmptyBatch(t *testing.T) {
	var b AbsBatch
	finish, avg := b.Simulate(AbsPARBS)
	if len(finish) != 0 || avg != 0 {
		t.Errorf("empty batch: finish=%v avg=%v, want empty and 0", finish, avg)
	}
}

func TestBatchString(t *testing.T) {
	s := Figure3Batch().String()
	if s == "" {
		t.Error("String returned empty")
	}
}

// TestAbstractMakespanProperty: per-bank total service time is minimized by
// maximal row-hit chaining. PAR-BS and FR-FCFS both chain all open-row
// requests before closing a row, so on any batch their bank makespans are
// equal to each other and never worse than FCFS's.
func TestAbstractMakespanProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	makespan := func(b AbsBatch, p AbsPolicy) float64 {
		finish, _ := b.Simulate(p)
		m := 0.0
		for _, f := range finish {
			if f > m {
				m = f
			}
		}
		return m
	}
	for trial := 0; trial < 60; trial++ {
		b := AbsBatch{Banks: make([][]AbsRequest, 1+rng.Intn(4))}
		threads := 2 + rng.Intn(3)
		for bank := range b.Banks {
			n := rng.Intn(8)
			for i := 0; i < n; i++ {
				th := rng.Intn(threads)
				b.Banks[bank] = append(b.Banks[bank], AbsRequest{Thread: th, Row: th*100 + rng.Intn(2)})
			}
		}
		fc := makespan(b, AbsFCFS)
		fr := makespan(b, AbsFRFCFS)
		pb := makespan(b, AbsPARBS)
		if pb > fc+1e-9 {
			t.Fatalf("trial %d: PAR-BS makespan %v exceeds FCFS %v on\n%s", trial, pb, fc, b)
		}
		if fr > fc+1e-9 {
			t.Fatalf("trial %d: FR-FCFS makespan %v exceeds FCFS %v on\n%s", trial, fr, fc, b)
		}
		if pb != fr {
			t.Fatalf("trial %d: PAR-BS makespan %v != FR-FCFS %v (both chain maximally) on\n%s", trial, pb, fr, b)
		}
	}
}
