package core

import (
	"math/rand"
	"testing"

	"repro/internal/memctrl"
)

// TestStarvationBoundProperty drives PAR-BS with randomized adversarial
// workloads and checks the Section 4.3 guarantee: with Marking-Cap c and a
// B-entry buffer, no request waits more than ceil(B/c) whole batches
// before being marked (in practice far fewer; the bound here is loose but
// must never be exceeded).
func TestStarvationBoundProperty(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		opts := DefaultOptions()
		opts.MarkingCap = 3
		c, e := newEngineController(t, 4, opts)
		g := c.Device().Geometry()
		rng := rand.New(rand.NewSource(seed))
		for now := int64(0); now < 30000; now++ {
			// Aggressive threads flood two banks; a meek thread trickles.
			if rng.Intn(2) == 0 {
				th := rng.Intn(3)
				c.EnqueueRead(th, addrFor(g, rng.Intn(2), int64(rng.Intn(64))+int64(th)*500, 0), now)
			}
			if now%500 == 0 {
				c.EnqueueRead(3, addrFor(g, 5, 1600+now%32, 0), now)
			}
			c.Tick(now)
		}
		// Loose bound: buffer 128 entries, cap 3 per thread per bank;
		// a batch can hold at most the whole buffer, so any request must
		// be marked within buffer/cap batches.
		bound := int64(128/3 + 1)
		if got := e.MaxBatchWait(); got > bound {
			t.Errorf("seed %d: a request waited %d batches (> bound %d)", seed, got, bound)
		}
		if e.MaxBatchWait() == 0 && e.BatchesFormed() > 10 {
			// With flooding threads, some waiting must have occurred;
			// a zero here would mean the instrumentation is dead.
			t.Error("MaxBatchWait never moved despite backlog")
		}
	}
}

// TestNoBatchWaitWhenUnderCap: if every thread stays under the cap, all
// requests join the next batch (wait 0).
func TestNoBatchWaitWhenUnderCap(t *testing.T) {
	opts := DefaultOptions() // cap 5
	c, e := newEngineController(t, 2, opts)
	g := c.Device().Geometry()
	for now := int64(0); now < 5000; now++ {
		if now%200 == 0 {
			c.EnqueueRead(int(now/200)%2, addrFor(g, int(now)%8, now%31, 0), now)
		}
		c.Tick(now)
	}
	if got := e.MaxBatchWait(); got != 0 {
		t.Errorf("max batch wait = %d with under-cap load, want 0", got)
	}
}

// TestArrivalTrackingCleansUp: completing every request must leave the wait
// bound untouched — stamps on departed requests can never count again.
func TestArrivalTrackingCleansUp(t *testing.T) {
	opts := DefaultOptions()
	c, e := newEngineController(t, 1, opts)
	g := c.Device().Geometry()
	done := 0
	c.SetOnComplete(func(r *memctrl.Request, end int64) { done++ })
	for i := int64(0); i < 20; i++ {
		c.EnqueueRead(0, addrFor(g, int(i)%8, i, 0), 0)
	}
	for now := int64(0); now < 3000 && done < 20; now++ {
		c.Tick(now)
	}
	if done != 20 {
		t.Fatalf("completed %d of 20", done)
	}
	if got := e.MaxBatchWait(); got != 0 {
		t.Errorf("max batch wait = %d after draining under-cap load, want 0", got)
	}
}
