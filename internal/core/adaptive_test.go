package core

import (
	"testing"

	"repro/internal/memctrl"
)

func TestAdaptiveCapOptionValidation(t *testing.T) {
	good := []Options{
		{MarkingCap: 5, AdaptiveCap: true},
		{AdaptiveCap: true, CapMin: 2, CapMax: 8, TargetBatchCycles: 100},
		{Batch: EmptySlotBatching, AdaptiveCap: true},
	}
	for i, o := range good {
		if err := o.Validate(4); err != nil {
			t.Errorf("good adaptive options %d rejected: %v", i, err)
		}
	}
	bad := []Options{
		{Batch: StaticBatching, BatchDuration: 100, AdaptiveCap: true},
		{AdaptiveCap: true, CapMin: 5, CapMax: 2},
		{AdaptiveCap: true, TargetBatchCycles: -1},
		{CapMin: 2},            // bounds without AdaptiveCap
		{TargetBatchCycles: 5}, // target without AdaptiveCap
	}
	for i, o := range bad {
		if err := o.Validate(4); err == nil {
			t.Errorf("bad adaptive options %d accepted", i)
		}
	}
}

func TestAdaptiveCapShrinksUnderLoad(t *testing.T) {
	opts := DefaultOptions()
	opts.AdaptiveCap = true
	opts.CapMin = 1
	opts.CapMax = 10
	opts.TargetBatchCycles = 40 // tiny setpoint: real batches overshoot
	c, e := newEngineController(t, 2, opts)
	g := c.Device().Geometry()
	start := e.AdaptiveCapValue()
	// Sustained heavy load in one bank: batches take far longer than 40
	// cycles, so the cap must walk down to its minimum.
	row := int64(0)
	for now := int64(0); now < 20000; now++ {
		for c.ReadsPerThread(0) < 12 {
			c.EnqueueRead(0, addrFor(g, 0, row%97, 0), now)
			row++
		}
		c.Tick(now)
	}
	if got := e.AdaptiveCapValue(); got >= start {
		t.Errorf("adaptive cap = %d after overload, want below initial %d", got, start)
	}
	if got := e.AdaptiveCapValue(); got < opts.CapMin {
		t.Errorf("adaptive cap %d fell below CapMin %d", got, opts.CapMin)
	}
}

func TestAdaptiveCapGrowsWhenBatchesAreShort(t *testing.T) {
	opts := DefaultOptions()
	opts.MarkingCap = 2
	opts.AdaptiveCap = true
	opts.CapMin = 1
	opts.CapMax = 10
	opts.TargetBatchCycles = 100_000 // huge setpoint: every batch is "short"
	c, e := newEngineController(t, 1, opts)
	g := c.Device().Geometry()
	row := int64(0)
	for now := int64(0); now < 20000; now++ {
		if c.ReadsPerThread(0) < 4 {
			c.EnqueueRead(0, addrFor(g, int(row)%8, row%97, 0), now)
			row++
		}
		c.Tick(now)
	}
	if got := e.AdaptiveCapValue(); got <= 2 {
		t.Errorf("adaptive cap = %d, want growth above initial 2", got)
	}
	if got := e.AdaptiveCapValue(); got > opts.CapMax {
		t.Errorf("adaptive cap %d exceeded CapMax %d", got, opts.CapMax)
	}
}

func TestAdaptiveCapDisabledKeepsStaticValue(t *testing.T) {
	opts := DefaultOptions() // cap 5, no adaptation
	c, e := newEngineController(t, 1, opts)
	g := c.Device().Geometry()
	for now := int64(0); now < 5000; now++ {
		if c.ReadsPerThread(0) < 8 {
			c.EnqueueRead(0, addrFor(g, 0, now%31, 0), now)
		}
		c.Tick(now)
	}
	if got := e.AdaptiveCapValue(); got != 5 {
		t.Errorf("static cap drifted to %d, want 5", got)
	}
}

// TestAdaptiveEngineCompletesWork is a liveness check: adaptation must not
// break batching invariants.
func TestAdaptiveEngineCompletesWork(t *testing.T) {
	opts := DefaultOptions()
	opts.AdaptiveCap = true
	c, _ := newEngineController(t, 2, opts)
	g := c.Device().Geometry()
	done := 0
	c.SetOnComplete(func(r *memctrl.Request, end int64) { done++ })
	sent := 0
	for now := int64(0); now < 30000; now++ {
		if now%9 == 0 && sent < 400 {
			th := sent % 2
			c.EnqueueRead(th, addrFor(g, sent%8, int64(sent%53)+int64(th)*500, 0), now)
			sent++
		}
		c.Tick(now)
	}
	for now := int64(30000); now < 90000 && done < sent; now++ {
		c.Tick(now)
	}
	if done != sent {
		t.Errorf("completed %d of %d under adaptive batching", done, sent)
	}
}
