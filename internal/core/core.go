// Package core implements the paper's primary contribution: the
// Parallelism-Aware Batch Scheduler (PAR-BS) of Mutlu & Moscibroda,
// "Parallelism-Aware Batch Scheduling: Enhancing both Performance and
// Fairness of Shared DRAM Systems" (ISCA 2008).
//
// PAR-BS combines two ideas:
//
//   - Request batching (Section 4.1): outstanding requests are grouped into
//     batches; requests of the current batch ("marked" requests) are strictly
//     prioritized over newer requests, which bounds the delay any request can
//     suffer and makes the scheduler starvation-free. Up to Marking-Cap
//     requests per thread per bank are marked when a batch forms.
//
//   - Parallelism-aware within-batch scheduling (Section 4.2): within a
//     batch, requests are prioritized marked-first, then row-hit-first, then
//     by a per-batch thread ranking (Max-Total, a shortest-job-first rule),
//     then oldest-first. Ranking threads identically across all banks
//     restores each thread's intra-thread bank-level parallelism.
//
// The Engine type implements the full scheduler as a memctrl.Policy,
// including the paper's design alternatives (Section 4.4: time-based static
// batching, empty-slot batching, Total-Max / random / round-robin rankings,
// and rank-free FR-FCFS/FCFS within a batch) and its system-level thread
// priority support (Section 5: priority-based marking, a PRIORITY rule
// between the BS and RH rules, and purely opportunistic service).
//
// The package also contains an abstract within-batch model (abstract.go)
// reproducing the paper's Figure 3 worked example, the Figure 4 priority
// value encoding, and the Table 1 hardware cost arithmetic.
package core

import (
	"fmt"
	"math"
)

// BatchMode selects how batches are formed (Sections 4.1 and 4.4).
type BatchMode int

const (
	// FullBatching forms a new batch only when every marked request has been
	// fully serviced. This is PAR-BS's batching mode.
	FullBatching BatchMode = iota
	// StaticBatching re-marks outstanding requests every BatchDuration DRAM
	// cycles regardless of whether the previous batch finished
	// ("Time-Based Static Batching", Section 4.4).
	StaticBatching
	// EmptySlotBatching is FullBatching plus late admission: a request
	// arriving mid-batch joins the batch if its thread has used fewer than
	// Marking-Cap marked slots for that bank ("Eslot", Section 4.4).
	EmptySlotBatching
)

// String names the batch mode as in the paper's figures.
func (m BatchMode) String() string {
	switch m {
	case FullBatching:
		return "full"
	case StaticBatching:
		return "static"
	case EmptySlotBatching:
		return "eslot"
	default:
		return "???"
	}
}

// RankMode selects the within-batch thread ranking (Sections 4.2 and 8.3.3).
type RankMode int

const (
	// MaxTotal is PAR-BS's shortest-job-first ranking (Rule 3): threads with
	// lower max-bank-load rank higher; ties broken by lower total-load, then
	// randomly.
	MaxTotal RankMode = iota
	// TotalMax swaps the two rules: total-load first, then max-bank-load.
	TotalMax
	// RandomRank assigns a random permutation each batch.
	RandomRank
	// RoundRobin rotates thread ranks across consecutive batches.
	RoundRobin
	// NoRankFRFCFS disables ranking; within a batch requests follow
	// FR-FCFS (row-hit first, then oldest).
	NoRankFRFCFS
	// NoRankFCFS disables ranking and row-hit-first; within a batch
	// requests are serviced strictly oldest-first.
	NoRankFCFS
)

// String names the rank mode as in the paper's Figure 13.
func (m RankMode) String() string {
	switch m {
	case MaxTotal:
		return "max-total"
	case TotalMax:
		return "total-max"
	case RandomRank:
		return "random"
	case RoundRobin:
		return "round-robin"
	case NoRankFRFCFS:
		return "no-rank(FR-FCFS)"
	case NoRankFCFS:
		return "no-rank(FCFS)"
	default:
		return "???"
	}
}

// OpportunisticPriority is the special lowest priority level L (Section 5):
// requests from such threads are never marked and rank below every other
// unmarked request, so they are serviced only when the memory system would
// otherwise be idle.
const OpportunisticPriority = -1

// Options configures a PAR-BS Engine. The zero value of most fields selects
// the paper's defaults; use DefaultOptions for the evaluated configuration.
type Options struct {
	// MarkingCap limits how many requests per thread per bank join a batch.
	// Zero means no cap (all outstanding requests are marked). The paper's
	// default is 5 (Section 7.2).
	MarkingCap int
	// Batch selects the batching mode; PAR-BS uses FullBatching.
	Batch BatchMode
	// BatchDuration is the re-marking period in DRAM cycles for
	// StaticBatching. The paper sweeps 400..25600 CPU cycles (Figure 12).
	BatchDuration int64
	// Rank selects the within-batch ranking; PAR-BS uses MaxTotal.
	Rank RankMode
	// Priorities holds the per-thread priority level: 1 is highest, larger
	// is lower, OpportunisticPriority is never marked. Nil or an empty
	// slice means every thread has priority 1. A thread with priority X has
	// its requests marked only every Xth batch (Section 5).
	Priorities []int
	// Seed drives the random tie-breaks in ranking.
	Seed int64

	// AdaptiveCap enables the extension the paper suggests in Section
	// 8.3.1 ("it is possible to improve our mechanism by making the
	// Marking-Cap adaptive"): the cap is adjusted at each batch formation
	// to keep batch turnaround near TargetBatchCycles — long batches
	// shrink the cap (bounding the delay of unmarked requests), short
	// batches grow it (recovering row-buffer locality). Requires
	// FullBatching or EmptySlotBatching.
	AdaptiveCap bool
	// CapMin and CapMax bound the adaptive cap (defaults 1 and 10).
	CapMin, CapMax int
	// TargetBatchCycles is the batch-turnaround setpoint in DRAM cycles
	// (default 128, about the paper's observed ~1269 CPU cycles).
	TargetBatchCycles int64
}

// DefaultOptions returns the configuration evaluated in the paper:
// full batching with Marking-Cap 5 and Max-Total ranking.
func DefaultOptions() Options {
	return Options{MarkingCap: 5, Batch: FullBatching, Rank: MaxTotal, Seed: 1}
}

// Validate reports whether the options are usable for numThreads threads.
func (o Options) Validate(numThreads int) error {
	if o.MarkingCap < 0 {
		return fmt.Errorf("core: options: MarkingCap must be >= 0, got %d", o.MarkingCap)
	}
	if o.Batch == StaticBatching && o.BatchDuration <= 0 {
		return fmt.Errorf("core: options: StaticBatching requires a positive BatchDuration")
	}
	if o.Batch != StaticBatching && o.BatchDuration != 0 {
		return fmt.Errorf("core: options: BatchDuration is only meaningful with StaticBatching")
	}
	if len(o.Priorities) != 0 && len(o.Priorities) != numThreads {
		return fmt.Errorf("core: options: got %d priorities for %d threads", len(o.Priorities), numThreads)
	}
	for t, p := range o.Priorities {
		if p < 1 && p != OpportunisticPriority {
			return fmt.Errorf("core: options: thread %d has priority %d; want >= 1 or OpportunisticPriority", t, p)
		}
	}
	if o.AdaptiveCap {
		if o.Batch == StaticBatching {
			return fmt.Errorf("core: options: AdaptiveCap requires full or empty-slot batching")
		}
		min, max := o.capBounds()
		if min < 1 || min > max {
			return fmt.Errorf("core: options: adaptive cap bounds [%d,%d] invalid", min, max)
		}
		if o.TargetBatchCycles < 0 {
			return fmt.Errorf("core: options: TargetBatchCycles must be non-negative")
		}
	} else if o.CapMin != 0 || o.CapMax != 0 || o.TargetBatchCycles != 0 {
		return fmt.Errorf("core: options: CapMin/CapMax/TargetBatchCycles are only meaningful with AdaptiveCap")
	}
	return nil
}

// capBounds returns the adaptive cap bounds with defaults applied.
func (o Options) capBounds() (min, max int) {
	min, max = o.CapMin, o.CapMax
	if min == 0 {
		min = 1
	}
	if max == 0 {
		max = 10
	}
	return min, max
}

// targetBatch returns the adaptive turnaround setpoint with its default:
// ~128 DRAM cycles, the batch turnaround the paper's default cap of 5
// achieves (it reports ~1269 CPU cycles for Case Study II).
func (o Options) targetBatch() int64 {
	if o.TargetBatchCycles == 0 {
		return 128
	}
	return o.TargetBatchCycles
}

// priorityOf returns the priority level of a thread, defaulting to 1.
func (o Options) priorityOf(thread int) int {
	if len(o.Priorities) == 0 {
		return 1
	}
	return o.Priorities[thread]
}

// effectiveCap returns the marking cap with 0 meaning unlimited.
func (o Options) effectiveCap() int {
	if o.MarkingCap == 0 {
		return math.MaxInt
	}
	return o.MarkingCap
}
