package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	parbs "repro"
)

// stubRunner is a controllable Runner: every call blocks until gate closes
// (letting tests fill the queue deterministically while worker 1 is busy),
// then takes delay of wall time. It records per-client call counts.
type stubRunner struct {
	mu    sync.Mutex
	calls map[string]int
	gate  chan struct{}
	delay time.Duration
}

func newStubRunner(delay time.Duration) *stubRunner {
	return &stubRunner{calls: map[string]int{}, gate: make(chan struct{}), delay: delay}
}

func (sr *stubRunner) run(ctx context.Context, spec Spec, sink Sink) (*Result, error) {
	<-sr.gate
	sr.mu.Lock()
	sr.calls[spec.Client]++
	sr.mu.Unlock()
	select {
	case <-time.After(sr.delay):
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return &Result{Report: json.RawMessage(`{"scheduler":"stub"}`)}, nil
}

func (sr *stubRunner) total() int {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	n := 0
	for _, c := range sr.calls {
		n += c
	}
	return n
}

// submit POSTs a spec and returns the HTTP status and decoded view.
func submit(t *testing.T, base string, spec Spec) (int, jobView) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/runs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v jobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil && resp.StatusCode < 400 {
		t.Fatalf("decode response (%d): %v", resp.StatusCode, err)
	}
	return resp.StatusCode, v
}

func getRun(t *testing.T, base, id string) jobView {
	t.Helper()
	resp, err := http.Get(base + "/v1/runs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", id, resp.StatusCode)
	}
	var v jobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// waitDone polls a run until it reaches a terminal state.
func waitDone(t *testing.T, base, id string, timeout time.Duration) jobView {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		v := getRun(t, base, id)
		if v.Status == StatusDone || v.Status == StatusFailed {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("run %s still %s after %v", id, v.Status, timeout)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// metricValue extracts one sample value from Prometheus exposition text.
func metricValue(t *testing.T, body, name string) int64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, name+" ") {
			var v int64
			if _, err := fmt.Sscanf(line[len(name)+1:], "%d", &v); err != nil {
				t.Fatalf("parse metric %s from %q: %v", name, line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s absent from:\n%s", name, body)
	return 0
}

func fetchMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return buf.String()
}

// floodAndSparse submits 12 expensive flood jobs then 2 cheap sparse jobs
// from two client goroutines (flood first, so the sparse client arrives
// into an already-flooded queue), waits for completion, and returns the
// sparse client's worst dispatch sequence and worst wait.
func floodAndSparse(t *testing.T, sv *Server, sr *stubRunner) (worstSeq int64, worstWait time.Duration) {
	t.Helper()
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	var ids []string
	var mu sync.Mutex
	floodDone := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		defer close(floodDone)
		for seed := int64(1); seed <= 12; seed++ {
			spec := testSpec("flood", seed)
			spec.System.MeasureCycles = 1_000_000
			code, v := submit(t, ts.URL, spec)
			if code != http.StatusAccepted {
				t.Errorf("flood submit: status %d", code)
			}
			mu.Lock()
			ids = append(ids, v.ID)
			mu.Unlock()
		}
	}()
	sparseIDs := make([]string, 0, 2)
	go func() {
		defer wg.Done()
		<-floodDone
		for seed := int64(1); seed <= 2; seed++ {
			spec := testSpec("sparse", seed)
			spec.System.MeasureCycles = 100_000
			code, v := submit(t, ts.URL, spec)
			if code != http.StatusAccepted {
				t.Errorf("sparse submit: status %d", code)
			}
			mu.Lock()
			ids = append(ids, v.ID)
			sparseIDs = append(sparseIDs, v.ID)
			mu.Unlock()
		}
	}()
	wg.Wait()
	close(sr.gate) // all 14 jobs are admitted; let the worker run
	for _, id := range ids {
		if v := waitDone(t, ts.URL, id, 10*time.Second); v.Status != StatusDone {
			t.Fatalf("job %s finished %s: %s", id, v.Status, v.Error)
		}
	}
	for _, id := range sparseIDs {
		v := getRun(t, ts.URL, id)
		if v.DispatchSeq > worstSeq {
			worstSeq = v.DispatchSeq
		}
		if w := time.Duration(v.WaitMS) * time.Millisecond; w > worstWait {
			worstWait = w
		}
	}
	return worstSeq, worstWait
}

// TestEndToEndBatchAdmissionVsFIFO is the acceptance e2e: a flooding and a
// sparse client submit concurrently against a FIFO server and a PAR-BS
// server; batched admission must bound the sparse client's worst-case wait
// below the FIFO baseline. Then, on the PAR-BS server: an identical
// resubmission replays from the result cache without a new simulation,
// graceful shutdown completes every accepted job, and the /metrics counters
// reconcile with the number of submitted jobs.
func TestEndToEndBatchAdmissionVsFIFO(t *testing.T) {
	const delay = 10 * time.Millisecond

	fifoStub := newStubRunner(delay)
	fifoSrv := New(Options{Workers: 1, QueueCap: 100, Admission: AdmissionFIFO, Runner: fifoStub.run})
	fifoSeq, fifoWait := floodAndSparse(t, fifoSrv, fifoStub)
	if err := fifoSrv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	parbsStub := newStubRunner(delay)
	parbsSrv := New(Options{Workers: 1, QueueCap: 100, Admission: AdmissionPARBS, MarkingCap: 2, Runner: parbsStub.run})
	parbsSeq, parbsWait := floodAndSparse(t, parbsSrv, parbsStub)

	// FIFO dispatches the sparse client behind the whole flood (seq 13-14);
	// batched Max–Total admission pulls it into the next batch (seq ~3).
	if fifoSeq != 14 {
		t.Errorf("FIFO worst sparse dispatch seq = %d, want 14 (behind the 12-job flood)", fifoSeq)
	}
	if parbsSeq >= fifoSeq {
		t.Errorf("batched admission dispatch seq %d !< FIFO %d", parbsSeq, fifoSeq)
	}
	if parbsSeq > 5 {
		t.Errorf("batched admission dispatched sparse at seq %d; marking cap 2 bounds it to the second batch", parbsSeq)
	}
	if parbsWait >= fifoWait {
		t.Errorf("batched admission worst sparse wait %v !< FIFO %v", parbsWait, fifoWait)
	}
	t.Logf("worst sparse: FIFO seq %d wait %v; PAR-BS seq %d wait %v", fifoSeq, fifoWait, parbsSeq, parbsWait)

	// --- Cached replay on the PAR-BS server ---
	ts := httptest.NewServer(parbsSrv.Handler())
	defer ts.Close()
	before := parbsStub.total()
	replay := testSpec("flood", 1)
	replay.System.MeasureCycles = 1_000_000
	code, v := submit(t, ts.URL, replay)
	if code != http.StatusOK {
		t.Fatalf("cached resubmission: status %d, want 200", code)
	}
	if !v.Cached || v.Status != StatusDone || len(v.Report) == 0 {
		t.Fatalf("cached resubmission view = %+v", v)
	}
	if after := parbsStub.total(); after != before {
		t.Errorf("cached resubmission ran a new simulation (%d -> %d calls)", before, after)
	}

	// --- Graceful shutdown completes all accepted jobs ---
	var lateIDs []string
	for seed := int64(100); seed < 103; seed++ {
		code, v := submit(t, ts.URL, testSpec("late", seed))
		if code != http.StatusAccepted {
			t.Fatalf("late submit: status %d", code)
		}
		lateIDs = append(lateIDs, v.ID)
	}
	if err := parbsSrv.Shutdown(context.Background()); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	for _, id := range lateIDs {
		if v := getRun(t, ts.URL, id); v.Status != StatusDone {
			t.Errorf("accepted job %s not completed by graceful shutdown: %s", id, v.Status)
		}
	}
	// Draining: new submissions refused, health degraded.
	if code, _ := submit(t, ts.URL, testSpec("late", 200)); code != http.StatusServiceUnavailable {
		t.Errorf("post-shutdown submit: status %d, want 503", code)
	}
	if resp, err := http.Get(ts.URL + "/healthz"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("draining healthz: status %d, want 503", resp.StatusCode)
		}
	}

	// --- Metrics reconcile with the submissions above ---
	// 14 flood+sparse + 1 cached replay + 3 late = 18 accepted, all
	// completed, none failed or rejected; 17 simulations ran.
	body := fetchMetrics(t, ts.URL)
	checks := map[string]int64{
		"parbs_serve_jobs_accepted_total":  18,
		"parbs_serve_jobs_completed_total": 18,
		"parbs_serve_jobs_failed_total":    0,
		"parbs_serve_jobs_rejected_total":  0,
		"parbs_serve_cache_hits_total":     1,
		"parbs_serve_queue_depth":          0,
	}
	for name, want := range checks {
		if got := metricValue(t, body, name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if got := metricValue(t, body, "parbs_serve_batches_formed_total"); got < 2 {
		t.Errorf("batches_formed_total = %d, want >= 2", got)
	}
	if parbsStub.total() != 17 {
		t.Errorf("stub ran %d simulations, want 17 (18 accepted - 1 cache hit)", parbsStub.total())
	}
	if !strings.Contains(body, `parbs_serve_wait_ms_count{client="sparse"}`) {
		t.Error("per-client wait histogram missing the sparse client")
	}
	// 17 simulations executed (the cached replay never dispatched), all
	// under the PAR-BS policy, so the run-duration histogram carries them.
	if got := metricValue(t, body, `parbs_serve_run_duration_ms_count{policy="PAR-BS"}`); got != 17 {
		t.Errorf("run_duration count = %d, want 17", got)
	}
	// Every formed admission batch eventually drains once the queue empties.
	if got := metricValue(t, body, "parbs_serve_admission_batch_duration_ms_count"); got < 2 {
		t.Errorf("admission batch duration count = %d, want >= 2", got)
	}
	if !strings.Contains(body, `parbs_build_info{version=`) {
		t.Error("build info gauge missing")
	}
	if !strings.Contains(body, "parbs_serve_uptime_seconds ") {
		t.Error("uptime counter missing")
	}
}

// TestTraceArtifactFlowsThrough: a spec requesting a trace gets the
// runner's Chrome trace artifact embedded in the terminal job view, a spec
// without one does not, and the two hash to different cache keys.
func TestTraceArtifactFlowsThrough(t *testing.T) {
	runner := func(ctx context.Context, spec Spec, sink Sink) (*Result, error) {
		res := &Result{Report: json.RawMessage(`{"scheduler":"stub"}`)}
		if spec.Trace != nil {
			res.Trace = json.RawMessage(`{"traceEvents":[]}`)
		}
		return res, nil
	}
	sv := New(Options{Workers: 1, Runner: runner})
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	plain := testSpec("tracer", 1)
	traced := testSpec("tracer", 1)
	traced.Trace = &TraceSpec{MaxEvents: 1 << 10}
	if plain.hash() == traced.hash() {
		t.Error("trace spec does not contribute to the content hash")
	}

	code, v := submit(t, ts.URL, traced)
	if code != http.StatusAccepted {
		t.Fatalf("submit traced: status %d", code)
	}
	done := waitDone(t, ts.URL, v.ID, 5*time.Second)
	if done.Status != StatusDone {
		t.Fatalf("traced job: %s (%s)", done.Status, done.Error)
	}
	if len(done.Trace) == 0 || !json.Valid(done.Trace) {
		t.Errorf("traced job view carries no valid trace artifact: %q", done.Trace)
	}

	code, v = submit(t, ts.URL, plain)
	if code != http.StatusAccepted {
		t.Fatalf("submit plain: status %d", code)
	}
	if done := waitDone(t, ts.URL, v.ID, 5*time.Second); len(done.Trace) != 0 {
		t.Errorf("untraced job view carries a trace artifact: %q", done.Trace)
	}
	if err := sv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestQueueBackpressure429: beyond QueueCap the server rejects with 429 and
// counts the rejection; the accepted jobs still drain.
func TestQueueBackpressure429(t *testing.T) {
	sr := newStubRunner(time.Millisecond)
	sv := New(Options{Workers: 1, QueueCap: 2, Runner: sr.run})
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	var ids []string
	// Job 1 dispatches (blocks on the gate), jobs 2-3 fill the queue.
	for seed := int64(1); seed <= 3; seed++ {
		code, v := submit(t, ts.URL, testSpec("c", seed))
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", seed, code)
		}
		ids = append(ids, v.ID)
	}
	if code, _ := submit(t, ts.URL, testSpec("c", 4)); code != http.StatusTooManyRequests {
		t.Fatalf("over-capacity submit: status %d, want 429", code)
	}
	close(sr.gate)
	for _, id := range ids {
		if v := waitDone(t, ts.URL, id, 5*time.Second); v.Status != StatusDone {
			t.Errorf("job %s: %s", id, v.Status)
		}
	}
	if err := sv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	body := fetchMetrics(t, ts.URL)
	if got := metricValue(t, body, "parbs_serve_jobs_rejected_total"); got != 1 {
		t.Errorf("rejected_total = %d, want 1", got)
	}
}

// TestJobPanicIsIsolated: a panicking job fails cleanly; the worker and
// the server survive and keep serving.
func TestJobPanicIsIsolated(t *testing.T) {
	calls := 0
	sv := New(Options{Workers: 1, Runner: func(ctx context.Context, spec Spec, _ Sink) (*Result, error) {
		calls++
		if calls == 1 {
			panic("poisoned job")
		}
		return &Result{Report: json.RawMessage(`{}`)}, nil
	}})
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	_, bad := submit(t, ts.URL, testSpec("a", 1))
	if v := waitDone(t, ts.URL, bad.ID, 5*time.Second); v.Status != StatusFailed || !strings.Contains(v.Error, "panicked") {
		t.Errorf("panicked job view: status %s error %q", v.Status, v.Error)
	}
	_, good := submit(t, ts.URL, testSpec("a", 2))
	if v := waitDone(t, ts.URL, good.ID, 5*time.Second); v.Status != StatusDone {
		t.Errorf("post-panic job: %s (%s)", v.Status, v.Error)
	}
	if err := sv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	body := fetchMetrics(t, ts.URL)
	if metricValue(t, body, "parbs_serve_jobs_failed_total") != 1 ||
		metricValue(t, body, "parbs_serve_jobs_completed_total") != 1 {
		t.Errorf("metrics after panic:\n%s", body)
	}
}

// TestJobDeadline: timeout_ms is enforced through context cancellation.
func TestJobDeadline(t *testing.T) {
	sv := New(Options{Workers: 1, Runner: func(ctx context.Context, spec Spec, _ Sink) (*Result, error) {
		<-ctx.Done() // a run that never finishes on its own
		return nil, ctx.Err()
	}})
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()
	spec := testSpec("a", 1)
	spec.TimeoutMS = 25
	_, v := submit(t, ts.URL, spec)
	got := waitDone(t, ts.URL, v.ID, 5*time.Second)
	if got.Status != StatusFailed || !strings.Contains(got.Error, "deadline") {
		t.Errorf("deadline job: status %s error %q", got.Status, got.Error)
	}
	if err := sv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestShutdownDeadlineHardAborts: when the drain deadline expires, stuck
// jobs are aborted through context cancellation and Shutdown returns the
// context error instead of hanging.
func TestShutdownDeadlineHardAborts(t *testing.T) {
	sv := New(Options{Workers: 1, Runner: func(ctx context.Context, spec Spec, _ Sink) (*Result, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}})
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()
	_, v := submit(t, ts.URL, testSpec("a", 1))
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := sv.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Shutdown returned %v, want DeadlineExceeded", err)
	}
	if got := getRun(t, ts.URL, v.ID); got.Status != StatusFailed {
		t.Errorf("hard-aborted job status %s, want failed", got.Status)
	}
}

// TestSSEProgressStream: the events endpoint streams progress heartbeats
// and ends with a done event carrying the terminal view.
func TestSSEProgressStream(t *testing.T) {
	release := make(chan struct{})
	sv := New(Options{Workers: 1, Runner: func(ctx context.Context, spec Spec, sink Sink) (*Result, error) {
		sink.Progress(parbs.Progress{Phase: "warmup", CPUCycles: 10, TotalCPUCycles: 100})
		<-release // keep the job alive until the subscriber is attached
		sink.Progress(parbs.Progress{Phase: "measure", CPUCycles: 50, TotalCPUCycles: 100})
		return &Result{Report: json.RawMessage(`{}`)}, nil
	}})
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	_, v := submit(t, ts.URL, testSpec("a", 1))
	resp, err := http.Get(ts.URL + "/v1/runs/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	close(release)

	events := map[string]int{}
	var lastData string
	sc := bufio.NewScanner(resp.Body)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = line[len("event: "):]
			events[event]++
			lastData = ""
		case strings.HasPrefix(line, "data: "):
			lastData = line[len("data: "):]
		}
		if event == "done" && lastData != "" {
			break
		}
	}
	if events["progress"] == 0 {
		t.Error("no progress events before done")
	}
	if events["done"] != 1 {
		t.Fatalf("events seen: %v, want exactly one done", events)
	}
	var final jobView
	if err := json.Unmarshal([]byte(lastData), &final); err != nil {
		t.Fatalf("done payload %q: %v", lastData, err)
	}
	if final.Status != StatusDone || final.ID != v.ID {
		t.Errorf("done view = %+v", final)
	}
	if err := sv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestSimulationServerEndToEnd drives the real SimulationRunner through
// HTTP: a small PAR-BS run with telemetry completes, embeds a versioned
// telemetry report, streams real progress over SSE, and replays from cache.
func TestSimulationServerEndToEnd(t *testing.T) {
	sv := New(Options{Workers: 2})
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	spec := testSpec("e2e", 1)
	spec.Telemetry = &TelemetrySpec{EpochCycles: 10_240}
	code, v := submit(t, ts.URL, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	done := waitDone(t, ts.URL, v.ID, 120*time.Second)
	if done.Status != StatusDone {
		t.Fatalf("simulation failed: %s", done.Error)
	}
	var rep struct {
		Scheduler  string  `json:"scheduler"`
		Unfairness float64 `json:"unfairness"`
		Threads    []struct {
			Benchmark   string  `json:"benchmark"`
			MemSlowdown float64 `json:"mem_slowdown"`
		} `json:"threads"`
	}
	if err := json.Unmarshal(done.Report, &rep); err != nil {
		t.Fatalf("report payload: %v", err)
	}
	if rep.Scheduler != "PAR-BS" || len(rep.Threads) != 4 || rep.Unfairness <= 0 {
		t.Errorf("report = %+v", rep)
	}
	var tel struct {
		Schema string `json:"schema"`
		Epochs int    `json:"epochs"`
	}
	if err := json.Unmarshal(done.Telemetry, &tel); err != nil {
		t.Fatalf("telemetry payload: %v", err)
	}
	if tel.Schema != parbs.TelemetrySchema || tel.Epochs == 0 {
		t.Errorf("telemetry = %+v", tel)
	}

	// Identical resubmission replays instantly from the content-hash cache.
	code, replay := submit(t, ts.URL, spec)
	if code != http.StatusOK || !replay.Cached || replay.Status != StatusDone {
		t.Errorf("replay: code %d view %+v", code, replay)
	}
	if !bytes.Equal(replay.Report, done.Report) {
		t.Error("cached report differs from the original")
	}
	if err := sv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}
