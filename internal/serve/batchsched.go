package serve

import (
	"sort"
	"time"
)

// admitter orders accepted jobs for dispatch. Implementations are not
// safe for concurrent use; the Queue serializes access.
type admitter interface {
	// add accepts a job into the waiting set.
	add(j *Job)
	// next returns the next job to dispatch, or nil when empty.
	next() *Job
	// size reports the number of waiting jobs.
	size() int
	// batches reports the total batches formed (0 for FIFO).
	batches() int64
}

// fifoAdmitter dispatches in arrival order — the baseline the e2e tests
// measure the batch scheduler against, and the analog of the paper's FCFS.
type fifoAdmitter struct {
	q []*Job
}

func (f *fifoAdmitter) add(j *Job) { f.q = append(f.q, j) }

func (f *fifoAdmitter) next() *Job {
	if len(f.q) == 0 {
		return nil
	}
	j := f.q[0]
	f.q[0] = nil
	f.q = f.q[1:]
	return j
}

func (f *fifoAdmitter) size() int      { return len(f.q) }
func (f *fifoAdmitter) batches() int64 { return 0 }

// parbsAdmitter re-instantiates the paper's Section 3 rules one level up,
// on the service's own admission queue:
//
//   - Batch formation (Rule 1/2 analog): when the current batch empties, up
//     to markingCap waiting jobs per client are marked. Marked jobs
//     strictly precede anything that arrives later, so a job's worst-case
//     wait is bounded by the batches ahead of it — at most
//     ceil(position/markingCap) batches of at most markingCap × clients
//     jobs each — no matter how hard another client floods the queue
//     (starvation-freedom).
//
//   - Max–Total ranking (Rule 3 analog): within a batch, clients are
//     ranked shortest-job-first by estimated cost — lowest max single-job
//     cost first, total cost breaking ties (the paper ranks threads by
//     max-per-bank then total outstanding requests). Within a client, jobs
//     stay in arrival order.
type parbsAdmitter struct {
	markingCap int
	// waiting holds each client's unmarked jobs in arrival order.
	waiting map[string][]*Job
	// batch holds the current batch's marked jobs, flattened in rank order.
	batch  []*Job
	formed int64
	total  int
	// formedAt stamps the current batch's formation time; onDrained, when
	// set, observes each batch's formation-to-drain lifetime (wired to the
	// server's metrics registry).
	formedAt  time.Time
	onDrained func(time.Duration)
}

// defaultMarkingCap mirrors the paper's Marking-Cap default of 5: big
// enough to preserve a flooding client's intra-batch locality, small enough
// to bound everyone else's wait.
const defaultMarkingCap = 5

func newParbsAdmitter(markingCap int) *parbsAdmitter {
	if markingCap <= 0 {
		markingCap = defaultMarkingCap
	}
	return &parbsAdmitter{markingCap: markingCap, waiting: make(map[string][]*Job)}
}

func (p *parbsAdmitter) add(j *Job) {
	p.waiting[j.Client] = append(p.waiting[j.Client], j)
	p.total++
}

func (p *parbsAdmitter) next() *Job {
	if len(p.batch) == 0 {
		p.formBatch()
	}
	if len(p.batch) == 0 {
		return nil
	}
	j := p.batch[0]
	p.batch[0] = nil
	p.batch = p.batch[1:]
	p.total--
	if len(p.batch) == 0 && p.onDrained != nil {
		p.onDrained(time.Since(p.formedAt))
	}
	return j
}

func (p *parbsAdmitter) size() int      { return p.total }
func (p *parbsAdmitter) batches() int64 { return p.formed }

// clientRank carries one client's marked jobs and its ranking signals.
type clientRank struct {
	jobs     []*Job
	maxCost  int64
	total    int64
	earliest int64
}

// formBatch marks up to markingCap jobs per waiting client and flattens
// them into dispatch order by Max–Total client rank.
func (p *parbsAdmitter) formBatch() {
	if p.total == 0 {
		return
	}
	ranks := make([]clientRank, 0, len(p.waiting))
	for client, jobs := range p.waiting {
		if len(jobs) == 0 {
			continue
		}
		n := p.markingCap
		if n > len(jobs) {
			n = len(jobs)
		}
		r := clientRank{jobs: jobs[:n:n], earliest: jobs[0].arrival}
		for _, j := range r.jobs {
			if j.Cost > r.maxCost {
				r.maxCost = j.Cost
			}
			r.total += j.Cost
		}
		rest := jobs[n:]
		if len(rest) == 0 {
			delete(p.waiting, client)
		} else {
			p.waiting[client] = rest
		}
		ranks = append(ranks, r)
	}
	// Shortest job first: lowest max, then lowest total, then FCFS. The
	// arrival tie-break also makes batch contents independent of map order.
	sort.Slice(ranks, func(a, b int) bool {
		ra, rb := ranks[a], ranks[b]
		if ra.maxCost != rb.maxCost {
			return ra.maxCost < rb.maxCost
		}
		if ra.total != rb.total {
			return ra.total < rb.total
		}
		return ra.earliest < rb.earliest
	})
	for _, r := range ranks {
		p.batch = append(p.batch, r.jobs...)
	}
	p.formed++
	p.formedAt = time.Now()
}
