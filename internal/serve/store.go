package serve

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	parbs "repro"
)

// Status is a job's lifecycle state.
type Status string

// Job lifecycle states. Terminal states are StatusDone and StatusFailed.
const (
	StatusQueued  Status = "queued"
	StatusRunning Status = "running"
	StatusDone    Status = "done"
	StatusFailed  Status = "failed"
)

// Result is a completed job's payload: the run report and, when requested,
// the embedded parbs.telemetry/v1 report and/or Chrome trace-event
// artifact. Results are immutable once published and shared between a job
// and the content-hash cache.
type Result struct {
	Report    json.RawMessage
	Telemetry json.RawMessage
	Trace     json.RawMessage
	// TraceEvents is the raw parbs.trace/v1 JSONL, kept when the spec set
	// trace.events. Served at GET /v1/runs/{id}/trace and consumed by
	// POST /v1/analysis {"run": id}; not embedded in the job view (it can
	// be megabytes).
	TraceEvents []byte
}

// Job is one accepted simulation run.
type Job struct {
	// Immutable after admission.
	ID      string
	Client  string
	Spec    Spec
	Hash    string
	Cost    int64
	arrival int64 // admission order within the queue

	mu          sync.Mutex
	status      Status
	cached      bool
	submittedAt time.Time
	startedAt   time.Time
	finishedAt  time.Time
	dispatchSeq int64 // global 1-based order the worker pool started it
	result      *Result
	errMsg      string

	// done closes on entry to a terminal state; SSE streams and tests wait
	// on it.
	done chan struct{}
	subs *broadcaster
	// live buffers the job's incremental trace chunks for live analysis;
	// nil unless the spec requested trace events.
	live *liveTrace
}

// start transitions the job to running.
func (j *Job) start(seq int64, now time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.status = StatusRunning
	j.dispatchSeq = seq
	j.startedAt = now
}

// finish transitions the job to its terminal state and wakes waiters.
func (j *Job) finish(res *Result, err error, now time.Time) {
	j.mu.Lock()
	if err != nil {
		j.status = StatusFailed
		j.errMsg = err.Error()
	} else {
		j.status = StatusDone
		j.result = res
	}
	j.finishedAt = now
	j.mu.Unlock()
	close(j.done)
	j.subs.close()
	if j.live != nil {
		j.live.closeStream()
	}
}

// finishCached completes the job instantly from a cached result: no
// dispatch, no simulation.
func (j *Job) finishCached(res *Result, now time.Time) {
	j.mu.Lock()
	j.status = StatusDone
	j.cached = true
	j.result = res
	j.finishedAt = now
	j.mu.Unlock()
	close(j.done)
	j.subs.close()
	if j.live != nil {
		j.live.closeStream()
	}
}

// Snapshot is a consistent copy of a job's mutable state.
type Snapshot struct {
	Status      Status
	Cached      bool
	SubmittedAt time.Time
	StartedAt   time.Time
	FinishedAt  time.Time
	DispatchSeq int64
	Result      *Result
	Err         string
}

// snapshot copies the mutable state under the job's lock.
func (j *Job) snapshot() Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Snapshot{
		Status:      j.status,
		Cached:      j.cached,
		SubmittedAt: j.submittedAt,
		StartedAt:   j.startedAt,
		FinishedAt:  j.finishedAt,
		DispatchSeq: j.dispatchSeq,
		Result:      j.result,
		Err:         j.errMsg,
	}
}

// Wait returns the job's wait in queue: submission to dispatch (or to now
// while still queued).
func (s Snapshot) Wait(now time.Time) time.Duration {
	switch {
	case s.StartedAt.IsZero() && s.FinishedAt.IsZero():
		return now.Sub(s.SubmittedAt)
	case s.StartedAt.IsZero():
		// Cached replay: never dispatched.
		return s.FinishedAt.Sub(s.SubmittedAt)
	default:
		return s.StartedAt.Sub(s.SubmittedAt)
	}
}

// Store owns the job table and the content-hash result cache. The job
// table is bounded: past maxJobs records, admitting a new job evicts the
// oldest terminal (done or failed) ones. Live jobs are never evicted — a
// flood of long runs can push the table past the cap, which then shrinks
// back as they finish. Eviction drops only the job record (its ID stops
// resolving); the content-hash result cache is untouched, so an identical
// resubmission still replays instantly.
type Store struct {
	mu      sync.Mutex
	seq     int64
	maxJobs int
	jobs    map[string]*Job
	order   []string // admission order, oldest first; len == len(jobs)
	cache   map[string]*Result
}

// DefaultMaxJobs bounds the job table when Options.MaxJobs is zero.
const DefaultMaxJobs = 4096

// NewStore returns an empty store retaining at most maxJobs job records
// (0 selects DefaultMaxJobs, negative means unbounded).
func NewStore(maxJobs int) *Store {
	if maxJobs == 0 {
		maxJobs = DefaultMaxJobs
	}
	return &Store{maxJobs: maxJobs, jobs: make(map[string]*Job), cache: make(map[string]*Result)}
}

// NewJob admits a job record in the queued state, evicting the oldest
// terminal records if the table is past its cap.
func (st *Store) NewJob(spec Spec, now time.Time) *Job {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.seq++
	j := &Job{
		ID:     fmt.Sprintf("r-%06d", st.seq),
		Client: spec.Client,
		Spec:   spec,
		Hash:   spec.hash(),
		Cost:   spec.cost(),

		status:      StatusQueued,
		submittedAt: now,
		done:        make(chan struct{}),
		subs:        newBroadcaster(),
	}
	if spec.Trace != nil && spec.Trace.Events {
		j.live = newLiveTrace()
	}
	st.jobs[j.ID] = j
	st.order = append(st.order, j.ID)
	st.evictLocked()
	return j
}

// evictLocked removes oldest-first terminal jobs until the table fits the
// cap (or no terminal job remains). Caller holds st.mu.
func (st *Store) evictLocked() {
	if st.maxJobs < 0 || len(st.jobs) <= st.maxJobs {
		return
	}
	kept := st.order[:0]
	for i, id := range st.order {
		if len(st.jobs) <= st.maxJobs {
			kept = append(kept, st.order[i:]...)
			break
		}
		j := st.jobs[id]
		select {
		case <-j.done: // terminal: evictable
			delete(st.jobs, id)
		default: // queued or running: keep
			kept = append(kept, id)
		}
	}
	st.order = kept
}

// Get returns the job with the given ID.
func (st *Store) Get(id string) (*Job, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	return j, ok
}

// Cached returns the cached result for a content hash, if any.
func (st *Store) Cached(hash string) (*Result, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	r, ok := st.cache[hash]
	return r, ok
}

// PutCache publishes a completed result under its content hash.
func (st *Store) PutCache(hash string, r *Result) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.cache[hash] = r
}

// Jobs returns the number of admitted jobs.
func (st *Store) Jobs() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.jobs)
}

// liveTrace accumulates a running job's incremental trace chunks and lets
// followers read the growing prefix. Unlike the progress broadcaster it
// never drops: live analysis needs every byte, not just the newest. The
// buffer is bounded by the tracer's own MaxEvents cap upstream, so a
// follower is at most one trace-artifact's worth of memory behind.
type liveTrace struct {
	mu     sync.Mutex
	buf    []byte
	closed bool
	// notify closes and is replaced whenever the buffer grows or the
	// stream closes; followers wait on the instance they last observed.
	notify chan struct{}
}

func newLiveTrace() *liveTrace {
	return &liveTrace{notify: make(chan struct{})}
}

// append adds a chunk (called from the simulation goroutine's sink hook).
func (lt *liveTrace) append(chunk []byte) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	if lt.closed {
		return
	}
	lt.buf = append(lt.buf, chunk...)
	close(lt.notify)
	lt.notify = make(chan struct{})
}

// closeStream marks the stream complete and wakes all followers.
func (lt *liveTrace) closeStream() {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	if lt.closed {
		return
	}
	lt.closed = true
	close(lt.notify)
}

// next returns the bytes past from, whether the stream has closed, and a
// channel that signals further growth (nil data when nothing new yet).
func (lt *liveTrace) next(from int) (data []byte, closed bool, wait <-chan struct{}) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	if from < len(lt.buf) {
		return lt.buf[from:], lt.closed, lt.notify
	}
	return nil, lt.closed, lt.notify
}

// broadcaster fans a job's progress heartbeats out to its SSE subscribers.
// publish never blocks (the hook runs inside the simulator loop): each
// subscriber holds a 1-slot channel and a stale snapshot is replaced by the
// newest — SSE consumers want the latest state, not every epoch.
type broadcaster struct {
	mu     sync.Mutex
	subs   map[chan parbs.Progress]struct{}
	closed bool
}

func newBroadcaster() *broadcaster {
	return &broadcaster{subs: make(map[chan parbs.Progress]struct{})}
}

// subscribe registers a listener; cancel removes it. Subscribing to an
// already-closed broadcaster returns a closed channel.
func (b *broadcaster) subscribe() (<-chan parbs.Progress, func()) {
	b.mu.Lock()
	defer b.mu.Unlock()
	ch := make(chan parbs.Progress, 1)
	if b.closed {
		close(ch)
		return ch, func() {}
	}
	b.subs[ch] = struct{}{}
	return ch, func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		if _, ok := b.subs[ch]; ok {
			delete(b.subs, ch)
		}
	}
}

// publish delivers the newest snapshot to every subscriber, dropping stale
// undelivered ones.
func (b *broadcaster) publish(p parbs.Progress) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for ch := range b.subs {
		select {
		case ch <- p:
		default:
			select {
			case <-ch:
			default:
			}
			select {
			case ch <- p:
			default:
			}
		}
	}
}

// close ends the stream: subscriber channels close after any buffered
// final snapshot drains.
func (b *broadcaster) close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for ch := range b.subs {
		close(ch)
		delete(b.subs, ch)
	}
}
