package serve

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	parbs "repro"
)

// Status is a job's lifecycle state.
type Status string

// Job lifecycle states. Terminal states are StatusDone and StatusFailed.
const (
	StatusQueued  Status = "queued"
	StatusRunning Status = "running"
	StatusDone    Status = "done"
	StatusFailed  Status = "failed"
)

// Result is a completed job's payload: the run report and, when requested,
// the embedded parbs.telemetry/v1 report and/or Chrome trace-event
// artifact. Results are immutable once published and shared between a job
// and the content-hash cache.
type Result struct {
	Report    json.RawMessage
	Telemetry json.RawMessage
	Trace     json.RawMessage
}

// Job is one accepted simulation run.
type Job struct {
	// Immutable after admission.
	ID      string
	Client  string
	Spec    Spec
	Hash    string
	Cost    int64
	arrival int64 // admission order within the queue

	mu          sync.Mutex
	status      Status
	cached      bool
	submittedAt time.Time
	startedAt   time.Time
	finishedAt  time.Time
	dispatchSeq int64 // global 1-based order the worker pool started it
	result      *Result
	errMsg      string

	// done closes on entry to a terminal state; SSE streams and tests wait
	// on it.
	done chan struct{}
	subs *broadcaster
}

// start transitions the job to running.
func (j *Job) start(seq int64, now time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.status = StatusRunning
	j.dispatchSeq = seq
	j.startedAt = now
}

// finish transitions the job to its terminal state and wakes waiters.
func (j *Job) finish(res *Result, err error, now time.Time) {
	j.mu.Lock()
	if err != nil {
		j.status = StatusFailed
		j.errMsg = err.Error()
	} else {
		j.status = StatusDone
		j.result = res
	}
	j.finishedAt = now
	j.mu.Unlock()
	close(j.done)
	j.subs.close()
}

// finishCached completes the job instantly from a cached result: no
// dispatch, no simulation.
func (j *Job) finishCached(res *Result, now time.Time) {
	j.mu.Lock()
	j.status = StatusDone
	j.cached = true
	j.result = res
	j.finishedAt = now
	j.mu.Unlock()
	close(j.done)
	j.subs.close()
}

// Snapshot is a consistent copy of a job's mutable state.
type Snapshot struct {
	Status      Status
	Cached      bool
	SubmittedAt time.Time
	StartedAt   time.Time
	FinishedAt  time.Time
	DispatchSeq int64
	Result      *Result
	Err         string
}

// snapshot copies the mutable state under the job's lock.
func (j *Job) snapshot() Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Snapshot{
		Status:      j.status,
		Cached:      j.cached,
		SubmittedAt: j.submittedAt,
		StartedAt:   j.startedAt,
		FinishedAt:  j.finishedAt,
		DispatchSeq: j.dispatchSeq,
		Result:      j.result,
		Err:         j.errMsg,
	}
}

// Wait returns the job's wait in queue: submission to dispatch (or to now
// while still queued).
func (s Snapshot) Wait(now time.Time) time.Duration {
	switch {
	case s.StartedAt.IsZero() && s.FinishedAt.IsZero():
		return now.Sub(s.SubmittedAt)
	case s.StartedAt.IsZero():
		// Cached replay: never dispatched.
		return s.FinishedAt.Sub(s.SubmittedAt)
	default:
		return s.StartedAt.Sub(s.SubmittedAt)
	}
}

// Store owns the job table and the content-hash result cache.
type Store struct {
	mu    sync.Mutex
	seq   int64
	jobs  map[string]*Job
	cache map[string]*Result
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{jobs: make(map[string]*Job), cache: make(map[string]*Result)}
}

// NewJob admits a job record in the queued state.
func (st *Store) NewJob(spec Spec, now time.Time) *Job {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.seq++
	j := &Job{
		ID:     fmt.Sprintf("r-%06d", st.seq),
		Client: spec.Client,
		Spec:   spec,
		Hash:   spec.hash(),
		Cost:   spec.cost(),

		status:      StatusQueued,
		submittedAt: now,
		done:        make(chan struct{}),
		subs:        newBroadcaster(),
	}
	st.jobs[j.ID] = j
	return j
}

// Get returns the job with the given ID.
func (st *Store) Get(id string) (*Job, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	return j, ok
}

// Cached returns the cached result for a content hash, if any.
func (st *Store) Cached(hash string) (*Result, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	r, ok := st.cache[hash]
	return r, ok
}

// PutCache publishes a completed result under its content hash.
func (st *Store) PutCache(hash string, r *Result) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.cache[hash] = r
}

// Jobs returns the number of admitted jobs.
func (st *Store) Jobs() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.jobs)
}

// broadcaster fans a job's progress heartbeats out to its SSE subscribers.
// publish never blocks (the hook runs inside the simulator loop): each
// subscriber holds a 1-slot channel and a stale snapshot is replaced by the
// newest — SSE consumers want the latest state, not every epoch.
type broadcaster struct {
	mu     sync.Mutex
	subs   map[chan parbs.Progress]struct{}
	closed bool
}

func newBroadcaster() *broadcaster {
	return &broadcaster{subs: make(map[chan parbs.Progress]struct{})}
}

// subscribe registers a listener; cancel removes it. Subscribing to an
// already-closed broadcaster returns a closed channel.
func (b *broadcaster) subscribe() (<-chan parbs.Progress, func()) {
	b.mu.Lock()
	defer b.mu.Unlock()
	ch := make(chan parbs.Progress, 1)
	if b.closed {
		close(ch)
		return ch, func() {}
	}
	b.subs[ch] = struct{}{}
	return ch, func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		if _, ok := b.subs[ch]; ok {
			delete(b.subs, ch)
		}
	}
}

// publish delivers the newest snapshot to every subscriber, dropping stale
// undelivered ones.
func (b *broadcaster) publish(p parbs.Progress) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for ch := range b.subs {
		select {
		case ch <- p:
		default:
			select {
			case <-ch:
			default:
			}
			select {
			case ch <- p:
			default:
			}
		}
	}
}

// close ends the stream: subscriber channels close after any buffered
// final snapshot drains.
func (b *broadcaster) close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for ch := range b.subs {
		close(ch)
		delete(b.subs, ch)
	}
}
