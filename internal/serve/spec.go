// Package serve is the simulation-as-a-service layer: an HTTP/JSON API
// that accepts simulation jobs, executes them on a bounded worker pool via
// the public parbs API, and serves results and live progress.
//
// Its admission queue dogfoods the paper's scheduler one level up: jobs are
// grouped into batches per client (marked jobs strictly precede later
// arrivals, bounding worst-case wait) and clients within a batch are ranked
// Max–Total shortest-job-first by estimated cost, so one client flooding
// the queue cannot starve others. See batchsched.go and DESIGN.md §11.
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"

	parbs "repro"
)

// Spec is the wire form of one simulation job — the body of POST /v1/runs.
type Spec struct {
	// Client identifies the submitter for admission batching and metrics.
	// Empty maps to "anonymous".
	Client string `json:"client,omitempty"`
	// System shapes the simulated machine.
	System SystemSpec `json:"system"`
	// Workload selects the benchmark mix.
	Workload WorkloadSpec `json:"workload"`
	// Scheduler selects the DRAM scheduling policy under test.
	Scheduler SchedulerSpec `json:"scheduler"`
	// Telemetry, when present, attaches a collector; the run result then
	// embeds a parbs.telemetry/v1 report.
	Telemetry *TelemetrySpec `json:"telemetry,omitempty"`
	// Trace, when present, attaches a lifecycle tracer; the run result then
	// embeds a Chrome trace-event JSON artifact (Perfetto-loadable).
	Trace *TraceSpec `json:"trace,omitempty"`
	// TimeoutMS caps the job's wall-clock execution; 0 means no deadline.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// SystemSpec mirrors parbs.System. Zero fields select the paper's baseline.
type SystemSpec struct {
	Cores    int `json:"cores"`
	Channels int `json:"channels,omitempty"`
	// ChannelMode organizes the channels: "lockstep" (default) or
	// "independent" (one scheduler per channel; see parbs.ChannelMode).
	ChannelMode string `json:"channel_mode,omitempty"`
	// Parallelism bounds the worker goroutines of an independent-channel
	// run: 0 = GOMAXPROCS, 1 = sequential. Execution speed only; results
	// are byte-identical at every level, so it is excluded from the result
	// cache key.
	Parallelism   int    `json:"parallelism,omitempty"`
	Banks         int    `json:"banks,omitempty"`
	MeasureCycles int64  `json:"measure_cycles,omitempty"`
	WarmupCycles  int64  `json:"warmup_cycles,omitempty"`
	Seed          int64  `json:"seed,omitempty"`
	Device        string `json:"device,omitempty"`
}

// WorkloadSpec names either a paper case study ("CSI", "CSII", "CSIII") or
// an explicit benchmark list (one per core, Table 3 names).
type WorkloadSpec struct {
	Mix        string   `json:"mix,omitempty"`
	Benchmarks []string `json:"benchmarks,omitempty"`
}

// SchedulerSpec selects a policy by paper name; the PAR-BS knobs apply only
// when Name is "PAR-BS".
type SchedulerSpec struct {
	Name          string `json:"name"`
	MarkingCap    *int   `json:"marking_cap,omitempty"`
	Batching      string `json:"batching,omitempty"`
	BatchDuration int64  `json:"batch_duration,omitempty"`
	Ranking       string `json:"ranking,omitempty"`
	Seed          int64  `json:"seed,omitempty"`
}

// TelemetrySpec mirrors parbs.TelemetryConfig.
type TelemetrySpec struct {
	EpochCycles int64 `json:"epoch_cycles,omitempty"`
	MaxEpochs   int   `json:"max_epochs,omitempty"`
}

// TraceSpec mirrors parbs.TracerConfig. Events additionally keeps the raw
// parbs.trace/v1 JSONL in the result, served at GET /v1/runs/{id}/trace
// and analyzable in place via POST /v1/analysis {"run": id}.
type TraceSpec struct {
	MaxEvents int  `json:"max_events,omitempty"`
	Events    bool `json:"events,omitempty"`
}

// Baseline cycle budgets, mirrored from sim.DefaultConfig for cost
// estimation of specs that leave the fields zero.
const (
	defaultMeasureCycles = 2_000_000
	defaultWarmupCycles  = 200_000
)

// normalize fills defaults and validates everything validatable without
// running: system shape, workload existence and length, scheduler options.
func (sp *Spec) normalize() error {
	if sp.Client == "" {
		sp.Client = "anonymous"
	}
	if sp.System.Cores <= 0 {
		return fmt.Errorf("system.cores must be positive, got %d", sp.System.Cores)
	}
	if sp.TimeoutMS < 0 {
		return fmt.Errorf("timeout_ms must be non-negative, got %d", sp.TimeoutMS)
	}
	if sp.System.Parallelism < 0 {
		return fmt.Errorf("system.parallelism must be non-negative, got %d", sp.System.Parallelism)
	}
	if err := sp.system().Validate(); err != nil {
		return err
	}
	w, err := sp.workload()
	if err != nil {
		return err
	}
	if got := len(w.Benchmarks()); got != sp.System.Cores {
		return fmt.Errorf("workload %q has %d benchmarks for %d cores", w.Name(), got, sp.System.Cores)
	}
	if _, err := sp.scheduler(); err != nil {
		return err
	}
	return nil
}

// system lowers the spec onto a parbs.System.
func (sp Spec) system() parbs.System {
	sys := parbs.DefaultSystem(sp.System.Cores)
	sys.Channels = sp.System.Channels
	sys.ChannelMode = parbs.ChannelMode(sp.System.ChannelMode)
	sys.Banks = sp.System.Banks
	sys.MeasureCycles = sp.System.MeasureCycles
	sys.WarmupCycles = sp.System.WarmupCycles
	if sp.System.Seed != 0 {
		sys.Seed = sp.System.Seed
	}
	sys.Device = parbs.Device(sp.System.Device)
	return sys
}

// workload resolves the mix name or benchmark list.
func (sp Spec) workload() (parbs.Workload, error) {
	switch {
	case sp.Workload.Mix != "" && len(sp.Workload.Benchmarks) > 0:
		return parbs.Workload{}, fmt.Errorf("workload: give either mix or benchmarks, not both")
	case sp.Workload.Mix != "":
		switch sp.Workload.Mix {
		case "CSI":
			return parbs.CaseStudyI(), nil
		case "CSII":
			return parbs.CaseStudyII(), nil
		case "CSIII":
			return parbs.CaseStudyIII(), nil
		}
		return parbs.Workload{}, fmt.Errorf("workload: unknown mix %q (want CSI, CSII, CSIII or benchmarks)", sp.Workload.Mix)
	case len(sp.Workload.Benchmarks) > 0:
		return parbs.WorkloadFromNames(sp.Workload.Benchmarks...)
	}
	return parbs.Workload{}, fmt.Errorf("workload: needs a mix name or a benchmark list")
}

// scheduler constructs a fresh policy instance (parbs schedulers are
// single-use; one is built per execution and per validation).
func (sp Spec) scheduler() (parbs.Scheduler, error) {
	if sp.Scheduler.Name == "" {
		return parbs.Scheduler{}, fmt.Errorf("scheduler.name is required (one of %v)", parbs.SchedulerNames())
	}
	if sp.Scheduler.Name != "PAR-BS" {
		return parbs.SchedulerByName(sp.Scheduler.Name)
	}
	opts := parbs.PARBSOptions{
		Batching:      parbs.Batching(sp.Scheduler.Batching),
		BatchDuration: sp.Scheduler.BatchDuration,
		Ranking:       parbs.Ranking(sp.Scheduler.Ranking),
		Seed:          sp.Scheduler.Seed,
	}
	if sp.Scheduler.MarkingCap != nil {
		opts.MarkingCap = *sp.Scheduler.MarkingCap
	}
	return parbs.NewPARBSWithOptions(opts)
}

// timeout returns the job's execution deadline, 0 for none.
func (sp Spec) timeout() time.Duration {
	return time.Duration(sp.TimeoutMS) * time.Millisecond
}

// cost estimates the job's work as simulated cycles × cores — the
// admission scheduler's Max–Total ranking signal (shorter estimated jobs
// rank first within a batch, the paper's shortest-job-first rule).
func (sp Spec) cost() int64 {
	measure := sp.System.MeasureCycles
	if measure <= 0 {
		measure = defaultMeasureCycles
	}
	warmup := sp.System.WarmupCycles
	if warmup <= 0 {
		warmup = defaultWarmupCycles
	}
	return (measure + warmup) * int64(sp.System.Cores)
}

// hash is the job's content hash: identical simulations (regardless of the
// submitting client, its timeout, or the worker parallelism — which cannot
// change results) hash equal, keying the result cache.
func (sp Spec) hash() string {
	canonSys := sp.System
	canonSys.Parallelism = 0
	canonical := struct {
		System    SystemSpec     `json:"system"`
		Workload  WorkloadSpec   `json:"workload"`
		Scheduler SchedulerSpec  `json:"scheduler"`
		Telemetry *TelemetrySpec `json:"telemetry,omitempty"`
		Trace     *TraceSpec     `json:"trace,omitempty"`
	}{canonSys, sp.Workload, sp.Scheduler, sp.Telemetry, sp.Trace}
	data, err := json.Marshal(canonical)
	if err != nil {
		// Spec is plain data; Marshal cannot fail. Keep a distinct key
		// anyway so a miss is the worst outcome.
		return fmt.Sprintf("unhashable:%v", err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}
