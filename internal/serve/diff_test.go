package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/trace"
)

// testTraceJSONLB is the comparison arm for diff tests: same workload shape
// as testTraceJSONL but an unbatched FR-FCFS-style run where thread 1
// finishes far sooner.
func testTraceJSONLB(t *testing.T) []byte {
	t.Helper()
	log := &trace.Log{
		Meta: trace.Meta{
			Policy: "FR-FCFS", Workload: "stub", Cores: 2, Banks: 2,
			CPUPerDRAM: 10, TotalDRAM: 1000, ReadBufEntries: 64,
		},
		Events: []trace.Event{
			{Kind: trace.KindArrive, Cycle: 0, Req: 1, Thread: 0, Bank: 0, Row: 7},
			{Kind: trace.KindArrive, Cycle: 10, Req: 2, Thread: 1, Bank: 1, Row: 9},
			{Kind: trace.KindComplete, Cycle: 180, Req: 1, Thread: 0, Bank: 0, Row: 160},
			{Kind: trace.KindComplete, Cycle: 400, Req: 2, Thread: 1, Bank: 1, Row: 380},
		},
	}
	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, log); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDiffEndpoints drives the cross-run diff surface: diff by run IDs, by
// retained analysis ID, by multipart snapshot/trace upload, every rendering,
// and the error paths with their counters.
func TestDiffEndpoints(t *testing.T) {
	jsonlA := testTraceJSONL(t)
	jsonlB := testTraceJSONLB(t)
	runner := func(ctx context.Context, spec Spec, sink Sink) (*Result, error) {
		res := &Result{Report: json.RawMessage(`{"scheduler":"stub"}`)}
		if spec.Trace != nil && spec.Trace.Events {
			if spec.Client == "db" {
				res.TraceEvents = jsonlB
			} else {
				res.TraceEvents = jsonlA
			}
		}
		return res, nil
	}
	sv := New(Options{Workers: 2, Runner: runner})
	defer sv.Shutdown(context.Background())
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	runID := func(client string, seed int64) string {
		spec := testSpec(client, seed)
		spec.Trace = &TraceSpec{Events: true}
		_, v := submit(t, ts.URL, spec)
		if done := waitDone(t, ts.URL, v.ID, 5*time.Second); done.Status != StatusDone {
			t.Fatalf("run %s: %s (%s)", v.ID, done.Status, done.Error)
		}
		return v.ID
	}
	runA := runID("da", 1)
	runB := runID("db", 2)

	postDiff := func(body string) (*http.Response, diffCreatedView) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/analysis/diff", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var created diffCreatedView
		if resp.StatusCode < 400 {
			if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
				t.Fatal(err)
			}
		}
		resp.Body.Close()
		return resp, created
	}

	// Diff by run IDs.
	resp, created := postDiff(fmt.Sprintf(`{"a":%q,"b":%q}`, runA, runB))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("diff by run IDs: status %d", resp.StatusCode)
	}
	if created.Schema != analysis.DiffSchema || !strings.HasPrefix(created.ID, "d-") {
		t.Fatalf("created view: %+v", created)
	}
	d := created.Report
	if d.A.Meta.Policy != "PAR-BS" || d.B.Meta.Policy != "FR-FCFS" {
		t.Fatalf("arm policies: A=%s B=%s", d.A.Meta.Policy, d.B.Meta.Policy)
	}
	if len(d.Threads) != 2 || len(d.Mismatches) != 0 {
		t.Errorf("diff shape: %d threads, mismatches %v", len(d.Threads), d.Mismatches)
	}
	// Thread 1 is starved in A (completes at 900) and prompt in B (400):
	// its wait delta must be strongly negative.
	if d.Threads[1].DWait >= 0 {
		t.Errorf("t1 DWait = %d, want negative (B waits less)", d.Threads[1].DWait)
	}
	if d.Batches.BatchesA != 1 || d.Batches.BatchesB != 0 {
		t.Errorf("batches A=%d B=%d, want 1/0", d.Batches.BatchesA, d.Batches.BatchesB)
	}

	// Every rendering of the retained diff.
	getOK := func(path, wantType string) []byte {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		b := readBody(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, wantType) {
			t.Errorf("GET %s: content type %q, want %q", path, ct, wantType)
		}
		return b
	}
	var again analysis.DiffReport
	if err := json.Unmarshal(getOK("/v1/diffs/"+created.ID, "application/json"), &again); err != nil {
		t.Fatal(err)
	}
	if again.Threads[1].DWait != d.Threads[1].DWait {
		t.Error("GET JSON diff disagrees with the creation response")
	}
	text := string(getOK("/v1/diffs/"+created.ID+"/report", "text/plain"))
	for _, want := range []string{"analysis diff: A=PAR-BS  B=FR-FCFS", "deltas are B−A", "unfairness"} {
		if !strings.Contains(text, want) {
			t.Errorf("text diff missing %q:\n%s", want, text)
		}
	}
	dash := string(getOK("/v1/diffs/"+created.ID+"/dashboard", "text/html"))
	for _, want := range []string{"Analysis diff", "<svg", "dLat p99", "Unfairness"} {
		if !strings.Contains(dash, want) {
			t.Errorf("diff dashboard missing %q", want)
		}
	}

	// One arm can be a retained analysis ID.
	aResp := postAnalysisRef(t, ts.URL, runA)
	var aCreated struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(aResp.Body).Decode(&aCreated); err != nil {
		t.Fatal(err)
	}
	aResp.Body.Close()
	if resp, c := postDiff(fmt.Sprintf(`{"a":%q,"b":%q}`, aCreated.ID, runB)); resp.StatusCode != http.StatusCreated ||
		c.Report.A.Meta.Policy != "PAR-BS" {
		t.Errorf("diff by analysis ID: status %d", resp.StatusCode)
	}

	// Multipart upload: arm a as a binary snapshot, arm b as raw JSONL.
	storeA, err := analysis.Ingest(bytes.NewReader(jsonlA))
	if err != nil {
		t.Fatal(err)
	}
	var snapA bytes.Buffer
	if err := storeA.WriteSnapshot(&snapA); err != nil {
		t.Fatal(err)
	}
	var mp bytes.Buffer
	mw := multipart.NewWriter(&mp)
	fw, _ := mw.CreateFormFile("a", "a.parbs-analysis")
	fw.Write(snapA.Bytes())
	fw, _ = mw.CreateFormFile("b", "b.jsonl")
	fw.Write(jsonlB)
	mw.Close()
	resp, err = http.Post(ts.URL+"/v1/analysis/diff?window_cycles=100", mw.FormDataContentType(), &mp)
	if err != nil {
		t.Fatal(err)
	}
	var mpCreated diffCreatedView
	if err := json.NewDecoder(resp.Body).Decode(&mpCreated); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || mpCreated.Report.WindowCycles != 100 {
		t.Errorf("multipart diff: status %d window %d, want 201/100",
			resp.StatusCode, mpCreated.Report.WindowCycles)
	}

	// Error paths.
	if resp, _ := postDiff(fmt.Sprintf(`{"a":"r-999999","b":%q}`, runB)); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown arm: status %d, want 404", resp.StatusCode)
	}
	if resp, _ := postDiff(fmt.Sprintf(`{"a":%q}`, runA)); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing arm: status %d, want 400", resp.StatusCode)
	}
	if resp, _ := http.Get(ts.URL + "/v1/diffs/d-999999"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown diff: status %d, want 404", resp.StatusCode)
	}

	// Counters reconcile: 3 diffs computed, 2 failed submissions.
	metrics := fetchMetrics(t, ts.URL)
	if got := metricValue(t, metrics, "parbs_serve_analysis_diffs_total"); got != 3 {
		t.Errorf("analysis_diffs_total = %d, want 3", got)
	}
	if got := metricValue(t, metrics, "parbs_serve_analysis_diff_errors_total"); got != 2 {
		t.Errorf("analysis_diff_errors_total = %d, want 2", got)
	}
}

// TestDiffStoreEviction: the bounded diff store drops oldest entries.
func TestDiffStoreEviction(t *testing.T) {
	ds := newDiffStore(2)
	a := ds.add(nil)
	b := ds.add(nil)
	c := ds.add(nil)
	if _, ok := ds.get(a.id); ok {
		t.Errorf("oldest diff %s survived past the cap", a.id)
	}
	for _, e := range []*diffEntry{b, c} {
		if _, ok := ds.get(e.id); !ok {
			t.Errorf("diff %s evicted prematurely", e.id)
		}
	}
}
