package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	parbs "repro"
)

// Schema identifies the job-status wire format served at GET /v1/runs/{id}.
const Schema = "parbs.serve/v1"

// Admission selects the admission-queue scheduling discipline.
type Admission string

// Admission disciplines.
const (
	// AdmissionPARBS batches per client and ranks Max–Total (default).
	AdmissionPARBS Admission = "parbs"
	// AdmissionFIFO dispatches in arrival order — the fairness baseline.
	AdmissionFIFO Admission = "fifo"
)

// Options configures a Server. The zero value selects the defaults.
type Options struct {
	// Workers sizes the simulation worker pool (default GOMAXPROCS).
	Workers int
	// QueueCap bounds the admission queue; submissions beyond it are
	// rejected with 429 (default 64).
	QueueCap int
	// Admission selects the queue discipline (default AdmissionPARBS).
	Admission Admission
	// MarkingCap bounds jobs marked per client per admission batch
	// (default 5, the paper's Marking-Cap).
	MarkingCap int
	// DefaultTimeout caps jobs that do not set timeout_ms; 0 = no cap.
	DefaultTimeout time.Duration
	// MaxJobs bounds the job table: past it, admitting a job evicts the
	// oldest terminal records (default DefaultMaxJobs; negative =
	// unbounded). The content-hash result cache is unaffected.
	MaxJobs int
	// MaxAnalyses bounds retained trace-analysis results (default
	// DefaultMaxAnalyses).
	MaxAnalyses int
	// Runner executes jobs (default SimulationRunner with a shared
	// AloneCache). Tests substitute stubs.
	Runner Runner
}

// Server is the simulation service: admission queue, worker pool, job
// store, result cache, and HTTP API. Construct with New, mount Handler,
// and call Shutdown to drain.
type Server struct {
	opts     Options
	store    *Store
	analyses *analysisStore
	diffs    *diffStore
	queue    *Queue
	metrics  *Metrics
	pool     *pool
	mux      *http.ServeMux

	// baseCtx parents every job execution; cancel is the hard-abort used
	// when a graceful drain overruns its deadline.
	baseCtx context.Context
	cancel  context.CancelFunc

	draining    atomic.Bool
	dispatchSeq atomic.Int64
}

// New starts a Server: the worker pool is live on return.
func New(opts Options) *Server {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.QueueCap <= 0 {
		opts.QueueCap = 64
	}
	if opts.Admission == "" {
		opts.Admission = AdmissionPARBS
	}
	if opts.Runner == nil {
		opts.Runner = SimulationRunner(parbs.NewAloneCache())
	}
	metrics := NewMetrics()
	var adm admitter
	switch opts.Admission {
	case AdmissionFIFO:
		adm = &fifoAdmitter{}
	default:
		p := newParbsAdmitter(opts.MarkingCap)
		p.onDrained = metrics.observeBatch
		adm = p
	}
	s := &Server{
		opts:     opts,
		store:    NewStore(opts.MaxJobs),
		analyses: newAnalysisStore(opts.MaxAnalyses),
		diffs:    newDiffStore(opts.MaxAnalyses),
		metrics:  metrics,
		queue:    newQueue(adm, opts.QueueCap),
	}
	s.baseCtx, s.cancel = context.WithCancel(context.Background())
	s.pool = startPool(opts.Workers, s.queue, s.runJob)

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/runs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/runs/{id}", s.handleGet)
	s.mux.HandleFunc("GET /v1/runs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/runs/{id}/trace", s.handleRunTrace)
	s.mux.HandleFunc("POST /v1/analysis", s.handleAnalyze)
	// Diff GETs live under /v1/diffs: a literal "diff" segment under
	// /v1/analysis would be ambiguous against the {id} wildcard routes.
	s.mux.HandleFunc("POST /v1/analysis/diff", s.handleDiff)
	s.mux.HandleFunc("GET /v1/diffs/{id}", s.handleDiffJSON)
	s.mux.HandleFunc("GET /v1/diffs/{id}/report", s.handleDiffText)
	s.mux.HandleFunc("GET /v1/diffs/{id}/dashboard", s.handleDiffDashboard)
	s.mux.HandleFunc("GET /v1/analysis/{id}", s.handleAnalysisJSON)
	s.mux.HandleFunc("GET /v1/analysis/{id}/report", s.handleAnalysisText)
	s.mux.HandleFunc("GET /v1/analysis/{id}/snapshot", s.handleAnalysisSnapshot)
	s.mux.HandleFunc("GET /v1/analysis/{id}/dashboard", s.handleAnalysisDashboard)
	s.mux.HandleFunc("GET /v1/analysis/{id}/live", s.handleAnalysisLive)
	s.mux.HandleFunc("GET /v1/analysis/{id}/live/dashboard", s.handleAnalysisLiveDashboard)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// Handler returns the service's HTTP API.
func (s *Server) Handler() http.Handler { return s.mux }

// Shutdown drains gracefully: admissions stop (503/429), every already
// accepted job still runs to completion, and the worker pool exits. If ctx
// expires first, in-flight and remaining jobs are hard-aborted through
// context cancellation (they finish in the failed state) and the error is
// ctx's. Shutdown does not close HTTP listeners — that is the caller's
// http.Server.Shutdown, sequenced after this drain so SSE streams end.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.queue.close()
	done := make(chan struct{})
	go func() {
		s.pool.wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.cancel() // hard abort: jobs observe cancellation at their next checkpoint
		<-done
		return ctx.Err()
	}
}

// runJob executes one dispatched job on a worker, with panic recovery and
// deadline enforcement.
func (s *Server) runJob(j *Job) {
	seq := s.dispatchSeq.Add(1)
	j.start(seq, time.Now())
	ctx := s.baseCtx
	timeout := j.Spec.timeout()
	if timeout <= 0 {
		timeout = s.opts.DefaultTimeout
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	res, err := s.safeRun(ctx, j)
	now := time.Now()
	j.finish(res, err, now)
	snap := j.snapshot()
	if err != nil {
		s.metrics.jobFailed(j.Client, snap.Wait(now))
		return
	}
	s.store.PutCache(j.Hash, res)
	s.metrics.jobCompleted(j.Client, snap.Wait(now))
	s.metrics.observeRun(j.Spec.Scheduler.Name, now.Sub(snap.StartedAt))
}

// safeRun invokes the Runner, converting panics into job failures so one
// poisoned job cannot take a worker (or the server) down.
func (s *Server) safeRun(ctx context.Context, j *Job) (res *Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			res, err = nil, fmt.Errorf("job panicked: %v", p)
		}
	}()
	sink := Sink{
		Progress: func(p parbs.Progress) {
			s.metrics.observeOccupancy(p)
			j.subs.publish(p)
		},
	}
	if j.live != nil {
		sink.TraceChunk = j.live.append
	}
	return s.opts.Runner(ctx, j.Spec, sink)
}

// httpError writes a JSON error payload.
func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// jobView is the wire form of a job's status (GET /v1/runs/{id} and the
// submission response).
type jobView struct {
	Schema      string          `json:"schema"`
	ID          string          `json:"id"`
	Client      string          `json:"client"`
	Status      Status          `json:"status"`
	Cached      bool            `json:"cached"`
	Cost        int64           `json:"cost"`
	SubmittedAt time.Time       `json:"submitted_at"`
	StartedAt   *time.Time      `json:"started_at,omitempty"`
	FinishedAt  *time.Time      `json:"finished_at,omitempty"`
	WaitMS      int64           `json:"wait_ms"`
	DispatchSeq int64           `json:"dispatch_seq,omitempty"`
	Report      json.RawMessage `json:"report,omitempty"`
	Telemetry   json.RawMessage `json:"telemetry,omitempty"`
	Trace       json.RawMessage `json:"trace,omitempty"`
	Error       string          `json:"error,omitempty"`
}

func viewOf(j *Job) jobView {
	snap := j.snapshot()
	v := jobView{
		Schema:      Schema,
		ID:          j.ID,
		Client:      j.Client,
		Status:      snap.Status,
		Cached:      snap.Cached,
		Cost:        j.Cost,
		SubmittedAt: snap.SubmittedAt,
		WaitMS:      snap.Wait(time.Now()).Milliseconds(),
		DispatchSeq: snap.DispatchSeq,
		Error:       snap.Err,
	}
	if !snap.StartedAt.IsZero() {
		t := snap.StartedAt
		v.StartedAt = &t
	}
	if !snap.FinishedAt.IsZero() {
		t := snap.FinishedAt
		v.FinishedAt = &t
	}
	if snap.Result != nil {
		v.Report = snap.Result.Report
		v.Telemetry = snap.Result.Telemetry
		v.Trace = snap.Result.Trace
	}
	return v
}

// handleSubmit admits one job: 200 with the completed view on a cache hit,
// 202 on admission, 400 on a malformed spec, 429 on backpressure, 503 while
// draining.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, ErrShuttingDown)
		return
	}
	var spec Spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("parse spec: %w", err))
		return
	}
	if err := spec.normalize(); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	// Content-hash replay: an identical completed simulation answers
	// instantly, no queue slot, no simulation.
	if res, ok := s.store.Cached(spec.hash()); ok {
		j := s.store.NewJob(spec, time.Now())
		j.finishCached(res, time.Now())
		s.metrics.jobAccepted()
		s.metrics.cacheHit()
		s.metrics.jobCompleted(j.Client, 0)
		writeJSON(w, http.StatusOK, viewOf(j))
		return
	}
	j := s.store.NewJob(spec, time.Now())
	if err := s.queue.Add(j); err != nil {
		code := http.StatusServiceUnavailable
		if errors.Is(err, ErrQueueFull) {
			code = http.StatusTooManyRequests
		}
		s.metrics.jobRejected()
		httpError(w, code, err)
		return
	}
	s.metrics.jobAccepted()
	writeJSON(w, http.StatusAccepted, viewOf(j))
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.store.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown run %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, viewOf(j))
}

// progressView is the SSE wire form of a parbs.Progress heartbeat.
type progressView struct {
	Phase          string `json:"phase"`
	CPUCycles      int64  `json:"cpu_cycles"`
	TotalCPUCycles int64  `json:"total_cpu_cycles"`
	CommandsIssued int64  `json:"commands_issued"`
	PendingReads   int    `json:"pending_reads"`
	// PendingPerChannel is the per-channel request-buffer occupancy on
	// Independent-channel systems; omitted under Lockstep.
	PendingPerChannel []int `json:"pending_per_channel,omitempty"`
}

func progressViewOf(p parbs.Progress) progressView {
	return progressView{
		Phase:             p.Phase,
		CPUCycles:         p.CPUCycles,
		TotalCPUCycles:    p.TotalCPUCycles,
		CommandsIssued:    p.CommandsIssued,
		PendingReads:      p.PendingReads,
		PendingPerChannel: p.PendingPerChannel,
	}
}

// handleEvents streams a job's progress as Server-Sent Events: "progress"
// events with heartbeat JSON, then one final "done" event carrying the
// job's terminal view.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.store.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown run %q", r.PathValue("id")))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, fmt.Errorf("response writer does not support streaming"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	// Subscribe before the terminal-state check so a completion between the
	// two cannot be missed.
	ch, unsubscribe := j.subs.subscribe()
	defer unsubscribe()
	sendDone := func() {
		data, _ := json.Marshal(viewOf(j))
		fmt.Fprintf(w, "event: done\ndata: %s\n\n", data)
		flusher.Flush()
	}
	for {
		select {
		case p, open := <-ch:
			if !open {
				sendDone()
				return
			}
			data, _ := json.Marshal(progressViewOf(p))
			fmt.Fprintf(w, "event: progress\ndata: %s\n\n", data)
			flusher.Flush()
		case <-j.done:
			// Drain any last buffered heartbeat, then finish.
			select {
			case p, open := <-ch:
				if open {
					data, _ := json.Marshal(progressViewOf(p))
					fmt.Fprintf(w, "event: progress\ndata: %s\n\n", data)
				}
			default:
			}
			sendDone()
			return
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.render(w, s.queue.Depth(), s.queue.Batches())
}
