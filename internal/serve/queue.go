package serve

import (
	"errors"
	"sync"
)

// Sentinel admission errors, mapped to HTTP statuses by the server.
var (
	// ErrQueueFull rejects a submission when the bounded queue is at
	// capacity (429 backpressure).
	ErrQueueFull = errors.New("serve: admission queue full")
	// ErrShuttingDown rejects submissions after graceful shutdown began.
	ErrShuttingDown = errors.New("serve: server is shutting down")
)

// Queue is the bounded admission queue between the HTTP handlers and the
// worker pool. It wraps an admitter (FIFO or PAR-BS batch scheduling) with
// capacity, arrival stamping, and drain-on-close semantics.
type Queue struct {
	mu       sync.Mutex
	cond     *sync.Cond
	adm      admitter
	capacity int
	arrival  int64
	closed   bool
}

func newQueue(adm admitter, capacity int) *Queue {
	q := &Queue{adm: adm, capacity: capacity}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Add admits a job, stamping its arrival order.
func (q *Queue) Add(j *Job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrShuttingDown
	}
	if q.adm.size() >= q.capacity {
		return ErrQueueFull
	}
	q.arrival++
	j.arrival = q.arrival
	q.adm.add(j)
	q.cond.Signal()
	return nil
}

// take blocks until a job is available and returns it, or returns nil once
// the queue is closed and fully drained. Workers pull under the lock, the
// same shape as internal/exp's parallelFor.
func (q *Queue) take() *Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if j := q.adm.next(); j != nil {
			return j
		}
		if q.closed {
			return nil
		}
		q.cond.Wait()
	}
}

// close stops admissions and wakes all workers to drain what remains.
func (q *Queue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}

// Depth reports the number of jobs waiting for a worker.
func (q *Queue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.adm.size()
}

// Batches reports the total admission batches formed so far.
func (q *Queue) Batches() int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.adm.batches()
}

// pool runs queued jobs on a fixed set of workers until the queue closes
// and drains. Graceful shutdown is: queue.close(), then pool.wait() — every
// accepted job still executes (under a canceled base context jobs fail
// fast, which is the hard-abort path).
type pool struct {
	wg sync.WaitGroup
}

func startPool(workers int, q *Queue, run func(*Job)) *pool {
	p := &pool{}
	for w := 0; w < workers; w++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for {
				j := q.take()
				if j == nil {
					return
				}
				run(j)
			}
		}()
	}
	return p
}

// wait blocks until all workers exit.
func (p *pool) wait() { p.wg.Wait() }
