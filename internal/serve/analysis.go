package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"repro/internal/analysis"
)

// DefaultMaxAnalyses bounds retained analysis results when
// Options.MaxAnalyses is zero. Each entry holds the columnar event store
// (for snapshots and re-analysis) plus the computed report, so the bound
// is deliberately small.
const DefaultMaxAnalyses = 32

// analysisEntry is one retained trace analysis: the ingested columnar
// store and the report computed from it at submission time.
type analysisEntry struct {
	id     string
	store  *analysis.Store
	report *analysis.Report
}

// analysisStore retains completed analyses up to a cap, evicting oldest
// first. Unlike jobs, analyses are immutable results with no live state,
// so eviction is unconditional FIFO.
type analysisStore struct {
	mu      sync.Mutex
	seq     int64
	max     int
	entries map[string]*analysisEntry
	order   []string
}

func newAnalysisStore(max int) *analysisStore {
	if max <= 0 {
		max = DefaultMaxAnalyses
	}
	return &analysisStore{max: max, entries: make(map[string]*analysisEntry)}
}

func (as *analysisStore) add(store *analysis.Store, report *analysis.Report) *analysisEntry {
	as.mu.Lock()
	defer as.mu.Unlock()
	as.seq++
	e := &analysisEntry{id: fmt.Sprintf("a-%06d", as.seq), store: store, report: report}
	as.entries[e.id] = e
	as.order = append(as.order, e.id)
	for len(as.entries) > as.max {
		delete(as.entries, as.order[0])
		as.order = as.order[1:]
	}
	return e
}

func (as *analysisStore) get(id string) (*analysisEntry, bool) {
	as.mu.Lock()
	defer as.mu.Unlock()
	e, ok := as.entries[id]
	return e, ok
}

// analyzeRequest is the JSON body of POST /v1/analysis when the trace is
// referenced by run ID rather than inlined.
type analyzeRequest struct {
	Run          string `json:"run"`
	WindowCycles int64  `json:"window_cycles,omitempty"`
	TopK         int    `json:"top_k,omitempty"`
}

// analysisCreatedView is the POST /v1/analysis response: the new
// analysis ID, links to its renderings, and the full report.
type analysisCreatedView struct {
	Schema    string           `json:"schema"`
	ID        string           `json:"id"`
	Report    *analysis.Report `json:"report"`
	Text      string           `json:"text_url"`
	Dashboard string           `json:"dashboard_url"`
	Snapshot  string           `json:"snapshot_url"`
}

// handleAnalyze ingests a parbs.trace/v1 JSONL trace and computes the
// windowed bottleneck report. Two submission forms:
//
//   - Content-Type application/json: {"run": "r-000001", ...} references a
//     completed job that was submitted with trace.events=true.
//   - any other Content-Type: the body IS the JSONL trace; window_cycles
//     and top_k come from query parameters.
//
// Truncated traces (dropped events, torn tail) are accepted: the report
// covers the recorded prefix and carries truncated=true.
func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	var (
		raw []byte
		opt analysis.Options
	)
	if ct := r.Header.Get("Content-Type"); strings.HasPrefix(ct, "application/json") {
		var req analyzeRequest
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("parse request: %w", err))
			return
		}
		if req.Run == "" {
			httpError(w, http.StatusBadRequest, fmt.Errorf(`"run" is required in the JSON form (or POST the JSONL trace directly)`))
			return
		}
		j, ok := s.store.Get(req.Run)
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("unknown run %q", req.Run))
			return
		}
		snap := j.snapshot()
		if snap.Status != StatusDone {
			httpError(w, http.StatusConflict, fmt.Errorf("run %s is %s, not done", req.Run, snap.Status))
			return
		}
		if snap.Result == nil || len(snap.Result.TraceEvents) == 0 {
			httpError(w, http.StatusConflict, fmt.Errorf("run %s has no event trace; submit it with trace.events=true", req.Run))
			return
		}
		raw = snap.Result.TraceEvents
		opt = analysis.Options{WindowCycles: req.WindowCycles, TopK: req.TopK}
	} else {
		const maxTrace = 256 << 20
		body, err := readAll(r.Body, maxTrace)
		if err != nil {
			httpError(w, http.StatusRequestEntityTooLarge, err)
			return
		}
		raw = body
		if opt.WindowCycles, err = queryInt64(r, "window_cycles"); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		topK, err := queryInt64(r, "top_k")
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		opt.TopK = int(topK)
	}

	store, err := analysis.Ingest(bytes.NewReader(raw))
	if err != nil {
		s.metrics.analysisFailed()
		httpError(w, http.StatusBadRequest, fmt.Errorf("ingest trace: %w", err))
		return
	}
	e := s.analyses.add(store, store.Analyze(opt))
	s.metrics.analysisDone()
	writeJSON(w, http.StatusCreated, analysisCreatedView{
		Schema:    analysis.Schema,
		ID:        e.id,
		Report:    e.report,
		Text:      "/v1/analysis/" + e.id + "/report",
		Dashboard: "/v1/analysis/" + e.id + "/dashboard",
		Snapshot:  "/v1/analysis/" + e.id + "/snapshot",
	})
}

func (s *Server) analysisEntry(w http.ResponseWriter, r *http.Request) (*analysisEntry, bool) {
	e, ok := s.analyses.get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown analysis %q (evicted or never created)", r.PathValue("id")))
	}
	return e, ok
}

func (s *Server) handleAnalysisJSON(w http.ResponseWriter, r *http.Request) {
	if e, ok := s.analysisEntry(w, r); ok {
		writeJSON(w, http.StatusOK, e.report)
	}
}

func (s *Server) handleAnalysisText(w http.ResponseWriter, r *http.Request) {
	e, ok := s.analysisEntry(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	e.report.WriteText(w)
}

func (s *Server) handleAnalysisSnapshot(w http.ResponseWriter, r *http.Request) {
	e, ok := s.analysisEntry(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%s.parbs-analysis", e.id))
	e.store.WriteSnapshot(w)
}

// handleRunTrace serves a completed run's raw parbs.trace/v1 JSONL.
func (s *Server) handleRunTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.store.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown run %q", r.PathValue("id")))
		return
	}
	snap := j.snapshot()
	if snap.Status != StatusDone {
		httpError(w, http.StatusConflict, fmt.Errorf("run %s is %s, not done", j.ID, snap.Status))
		return
	}
	if snap.Result == nil || len(snap.Result.TraceEvents) == 0 {
		httpError(w, http.StatusNotFound, fmt.Errorf("run %s has no event trace; submit it with trace.events=true", j.ID))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Write(snap.Result.TraceEvents)
}

// readAll reads r up to limit bytes, erroring (rather than silently
// truncating) past it.
func readAll(r io.Reader, limit int64) ([]byte, error) {
	var buf bytes.Buffer
	n, err := buf.ReadFrom(io.LimitReader(r, limit+1))
	if err != nil {
		return nil, err
	}
	if n > limit {
		return nil, fmt.Errorf("trace body exceeds %d bytes", limit)
	}
	return buf.Bytes(), nil
}

func queryInt64(r *http.Request, key string) (int64, error) {
	v := r.URL.Query().Get(key)
	if v == "" {
		return 0, nil
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("query %s=%q: want a non-negative integer", key, v)
	}
	return n, nil
}
