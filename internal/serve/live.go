package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/analysis"
	"repro/internal/trace"
)

// Live analysis: GET /v1/analysis/{id}/live follows a run's trace stream as
// it is produced, re-analyzing the growing prefix and pushing "report" SSE
// events. Consistency model: every pushed report equals the post-hoc report
// of the trace prefix received so far; once the run completes, the final
// report event is byte-identical to analyzing the whole stored trace.

// liveSendInterval rate-limits intermediate report events; the final report
// after stream close is always sent.
const liveSendInterval = 250 * time.Millisecond

// firstLine returns the bytes up to (not including) the first newline.
func firstLine(b []byte) []byte {
	if i := bytes.IndexByte(b, '\n'); i >= 0 {
		return b[:i]
	}
	return b
}

// liveJob resolves the {id} run and its live trace buffer, writing the HTTP
// error itself on failure.
func (s *Server) liveJob(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	j, ok := s.store.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown run %q", r.PathValue("id")))
		return nil, false
	}
	if j.live == nil {
		httpError(w, http.StatusConflict, fmt.Errorf("run %s has no event trace; submit it with trace.events=true", j.ID))
		return nil, false
	}
	return j, true
}

func analysisQueryOptions(r *http.Request) (analysis.Options, error) {
	var opt analysis.Options
	var err error
	if opt.WindowCycles, err = queryInt64(r, "window_cycles"); err != nil {
		return opt, err
	}
	topK, err := queryInt64(r, "top_k")
	if err != nil {
		return opt, err
	}
	opt.TopK = int(topK)
	return opt, nil
}

// handleAnalysisLive streams the evolving analysis of a running job as SSE:
// "report" events carry the windowed report of the prefix ingested so far,
// then one final "report" (converged with the completed trace) and a "done"
// event. Works on completed runs too — one report, then done.
func (s *Server) handleAnalysisLive(w http.ResponseWriter, r *http.Request) {
	j, ok := s.liveJob(w, r)
	if !ok {
		return
	}
	opt, err := analysisQueryOptions(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, fmt.Errorf("response writer does not support streaming"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	s.metrics.liveSessionStart()
	defer s.metrics.liveSessionEnd()

	li := analysis.NewLiveIngester()
	ingested := 0
	feed := func(chunk []byte) {
		// Event-line damage is absorbed (the prefix stays queryable); header
		// damage surfaces as a nil report below.
		li.Feed(chunk)
		if n := li.Events(); n > ingested {
			s.metrics.observeIngest(int64(n - ingested))
			ingested = n
		}
	}
	send := func(event string, v any) {
		data, _ := json.Marshal(v)
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
		flusher.Flush()
	}

	var lastSent time.Time
	from := 0
	for {
		data, closed, wait := j.live.next(from)
		if len(data) > 0 {
			from += len(data)
			feed(data)
			if now := time.Now(); now.Sub(lastSent) >= liveSendInterval {
				if rep := li.Report(opt); rep != nil {
					send("report", rep)
					lastSent = now
				}
			}
		}
		if closed {
			break
		}
		select {
		case <-wait:
		case <-r.Context().Done():
			return
		}
	}

	// Stream over: reconcile against the completed job. Cached replays never
	// streamed a byte (feed the stored trace whole), and live stream headers
	// carry events=0/dropped=0 — the finished log's header has the truth.
	snap := j.snapshot()
	if snap.Result != nil && len(snap.Result.TraceEvents) > 0 {
		if from == 0 {
			feed(snap.Result.TraceEvents)
		}
		if _, dropped, _, err := trace.ParseHeader(firstLine(snap.Result.TraceEvents)); err == nil {
			li.SetDropped(dropped)
		}
	}
	li.Finalize()
	rep := li.Report(opt)
	if rep == nil {
		msg := "no trace header received"
		if snap.Err != "" {
			msg = "run failed: " + snap.Err
		}
		send("error", map[string]string{"error": msg})
		return
	}
	send("report", rep)
	send("done", map[string]any{"events": li.Events(), "truncated": rep.Truncated})
}

// liveWaitingPage renders while the run has not yet produced its header line.
const liveWaitingPage = `<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8"><meta http-equiv="refresh" content="2">
<title>live analysis %s</title></head>
<body style="font: 14px system-ui, sans-serif; margin: 2rem">
<h1>Live analysis %s</h1><p>Waiting for the first trace chunk&hellip;</p></body></html>
`

// handleAnalysisLiveDashboard serves the SVG dashboard of the run's current
// trace prefix, auto-refreshing while the run is still producing events.
// Stateless: each request re-ingests the prefix buffered so far.
func (s *Server) handleAnalysisLiveDashboard(w http.ResponseWriter, r *http.Request) {
	j, ok := s.liveJob(w, r)
	if !ok {
		return
	}
	opt, err := analysisQueryOptions(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	li := analysis.NewLiveIngester()
	data, closed, _ := j.live.next(0)
	snap := j.snapshot()
	if closed && snap.Result != nil && len(snap.Result.TraceEvents) > 0 {
		// Completed run: the stored trace is authoritative (cached replays
		// never streamed) and its header carries the true drop count.
		li.Feed(snap.Result.TraceEvents)
		if _, dropped, _, err := trace.ParseHeader(firstLine(snap.Result.TraceEvents)); err == nil {
			li.SetDropped(dropped)
		}
		li.Finalize()
	} else if len(data) > 0 {
		li.Feed(data)
	}
	s.metrics.observeIngest(int64(li.Events()))
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	rep := li.Report(opt)
	if rep == nil {
		fmt.Fprintf(w, liveWaitingPage, j.ID, j.ID)
		return
	}
	v := buildDashView(j.ID, rep)
	v.Live = true
	if !closed {
		v.RefreshSeconds = 2
	}
	dashTmpl.Execute(w, v)
}
