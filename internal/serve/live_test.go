package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/analysis"
)

// sseEvent is one parsed Server-Sent Event.
type sseEvent struct {
	name string
	data string
}

// readSSE parses an SSE stream to EOF.
func readSSE(t *testing.T, r io.Reader) []sseEvent {
	t.Helper()
	var evs []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.name = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			cur.data = line[len("data: "):]
		case line == "":
			if cur.name != "" || cur.data != "" {
				evs = append(evs, cur)
				cur = sseEvent{}
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan SSE: %v", err)
	}
	return evs
}

func lastByName(evs []sseEvent, name string) (sseEvent, int) {
	idx := -1
	var found sseEvent
	for i, e := range evs {
		if e.name == name {
			found, idx = e, i
		}
	}
	return found, idx
}

// TestLiveAnalysisConvergence: following a running job's trace stream over
// SSE yields a final report byte-identical to the post-hoc analysis of the
// completed trace — the live pipeline's central consistency guarantee.
func TestLiveAnalysisConvergence(t *testing.T) {
	jsonl := testTraceJSONL(t)
	lines := bytes.SplitAfter(jsonl, []byte("\n"))
	release := make(chan struct{})
	runner := func(ctx context.Context, spec Spec, sink Sink) (*Result, error) {
		res := &Result{Report: json.RawMessage(`{"scheduler":"stub"}`)}
		if spec.Trace == nil || !spec.Trace.Events {
			return res, nil
		}
		// Stream the header immediately, hold the rest until the follower
		// attaches, then drip the events line by line.
		sink.TraceChunk(lines[0])
		<-release
		for _, ln := range lines[1:] {
			if len(bytes.TrimSpace(ln)) > 0 {
				sink.TraceChunk(ln)
			}
		}
		res.TraceEvents = jsonl
		return res, nil
	}
	sv := New(Options{Workers: 1, Runner: runner})
	defer sv.Shutdown(context.Background())
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	// Live on a run without trace events is a 409, not a hang.
	plain := testSpec("lv", 1)
	_, pv := submit(t, ts.URL, plain)
	if resp, _ := http.Get(ts.URL + "/v1/analysis/" + pv.ID + "/live"); resp.StatusCode != http.StatusConflict {
		t.Errorf("live on untraced run: status %d, want 409", resp.StatusCode)
	}

	traced := testSpec("lv", 2)
	traced.Trace = &TraceSpec{Events: true}
	code, v := submit(t, ts.URL, traced)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	resp, err := http.Get(ts.URL + "/v1/analysis/" + v.ID + "/live")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	close(release)
	evs := readSSE(t, resp.Body)
	resp.Body.Close()

	postHoc, err := analysis.Ingest(bytes.NewReader(jsonl))
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(postHoc.Analyze(analysis.Options{}))
	if err != nil {
		t.Fatal(err)
	}

	final, finalIdx := lastByName(evs, "report")
	if finalIdx < 0 {
		t.Fatalf("no report events in stream: %+v", evs)
	}
	if final.data != string(want) {
		t.Errorf("live final report diverged from post-hoc analysis:\nlive:     %s\npost-hoc: %s", final.data, want)
	}
	done, doneIdx := lastByName(evs, "done")
	if doneIdx != len(evs)-1 || doneIdx < finalIdx {
		t.Fatalf("stream did not end with done after the final report: %+v", evs)
	}
	var doneView struct {
		Events    int  `json:"events"`
		Truncated bool `json:"truncated"`
	}
	if err := json.Unmarshal([]byte(done.data), &doneView); err != nil {
		t.Fatal(err)
	}
	if doneView.Events != 6 || doneView.Truncated {
		t.Errorf("done event = %+v, want 6 events, not truncated", doneView)
	}

	// A live session against the already-completed run converges instantly:
	// one report (identical) and done.
	waitDone(t, ts.URL, v.ID, 5*time.Second)
	resp, err = http.Get(ts.URL + "/v1/analysis/" + v.ID + "/live")
	if err != nil {
		t.Fatal(err)
	}
	evs = readSSE(t, resp.Body)
	resp.Body.Close()
	if final, idx := lastByName(evs, "report"); idx < 0 || final.data != string(want) {
		t.Errorf("completed-run live report diverged:\n%+v", evs)
	}

	// The live gauge returns to zero once sessions end; the ingest counter
	// saw each session's events (two full passes over the 6-event trace).
	metrics := fetchMetrics(t, ts.URL)
	if got := metricValue(t, metrics, "parbs_serve_live_analysis_sessions"); got != 0 {
		t.Errorf("live_analysis_sessions = %d, want 0 after streams closed", got)
	}
	if got := metricValue(t, metrics, "parbs_serve_analysis_ingest_events_total"); got < 12 {
		t.Errorf("analysis_ingest_events_total = %d, want >= 12", got)
	}
}

// TestLiveDashboard: the live dashboard auto-refreshes while the run is in
// flight and renders the full percentile-bearing view once it completes.
func TestLiveDashboard(t *testing.T) {
	jsonl := testTraceJSONL(t)
	lines := bytes.SplitAfter(jsonl, []byte("\n"))
	release := make(chan struct{})
	runner := func(ctx context.Context, spec Spec, sink Sink) (*Result, error) {
		res := &Result{Report: json.RawMessage(`{"scheduler":"stub"}`)}
		if spec.Trace == nil || !spec.Trace.Events {
			return res, nil
		}
		sink.TraceChunk(lines[0])
		sink.TraceChunk(lines[1])
		<-release
		res.TraceEvents = jsonl
		return res, nil
	}
	sv := New(Options{Workers: 1, Runner: runner})
	defer sv.Shutdown(context.Background())
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	traced := testSpec("ld", 1)
	traced.Trace = &TraceSpec{Events: true}
	_, v := submit(t, ts.URL, traced)

	// Poll until the mid-run dashboard has ingested the header: it must
	// carry the refresh tag and the live banner.
	var mid string
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/analysis/" + v.ID + "/live/dashboard")
		if err != nil {
			t.Fatal(err)
		}
		mid = string(readBody(t, resp))
		if strings.Contains(mid, "Trace analysis") || time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !strings.Contains(mid, `http-equiv="refresh"`) {
		t.Errorf("mid-run dashboard missing refresh tag:\n%s", mid)
	}
	if !strings.Contains(mid, "Live view") {
		t.Errorf("mid-run dashboard missing live banner")
	}

	close(release)
	waitDone(t, ts.URL, v.ID, 5*time.Second)
	resp, err := http.Get(ts.URL + "/v1/analysis/" + v.ID + "/live/dashboard")
	if err != nil {
		t.Fatal(err)
	}
	final := string(readBody(t, resp))
	if strings.Contains(final, `http-equiv="refresh"`) {
		t.Error("completed-run dashboard still refreshes")
	}
	for _, want := range []string{"Latency percentiles", "lat p99", "<svg"} {
		if !strings.Contains(final, want) {
			t.Errorf("completed dashboard missing %q", want)
		}
	}
}
