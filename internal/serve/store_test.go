package serve

import (
	"encoding/json"
	"testing"
	"time"

	parbs "repro"
)

func testSpec(client string, seed int64) Spec {
	return Spec{
		Client:    client,
		System:    SystemSpec{Cores: 4, Seed: seed, MeasureCycles: 100_000, WarmupCycles: 10_000},
		Workload:  WorkloadSpec{Mix: "CSI"},
		Scheduler: SchedulerSpec{Name: "PAR-BS"},
	}
}

func TestSpecNormalizeRejectsBadInput(t *testing.T) {
	cases := map[string]Spec{
		"no cores":        {Workload: WorkloadSpec{Mix: "CSI"}, Scheduler: SchedulerSpec{Name: "FCFS"}},
		"bad mix":         {System: SystemSpec{Cores: 4}, Workload: WorkloadSpec{Mix: "nope"}, Scheduler: SchedulerSpec{Name: "FCFS"}},
		"no workload":     {System: SystemSpec{Cores: 4}, Scheduler: SchedulerSpec{Name: "FCFS"}},
		"mix+benchmarks":  {System: SystemSpec{Cores: 4}, Workload: WorkloadSpec{Mix: "CSI", Benchmarks: []string{"mcf"}}, Scheduler: SchedulerSpec{Name: "FCFS"}},
		"wrong count":     {System: SystemSpec{Cores: 8}, Workload: WorkloadSpec{Mix: "CSI"}, Scheduler: SchedulerSpec{Name: "FCFS"}},
		"bad scheduler":   {System: SystemSpec{Cores: 4}, Workload: WorkloadSpec{Mix: "CSI"}, Scheduler: SchedulerSpec{Name: "LRU"}},
		"no scheduler":    {System: SystemSpec{Cores: 4}, Workload: WorkloadSpec{Mix: "CSI"}},
		"bad device":      {System: SystemSpec{Cores: 4, Device: "rambus"}, Workload: WorkloadSpec{Mix: "CSI"}, Scheduler: SchedulerSpec{Name: "FCFS"}},
		"bad ranking":     {System: SystemSpec{Cores: 4}, Workload: WorkloadSpec{Mix: "CSI"}, Scheduler: SchedulerSpec{Name: "PAR-BS", Ranking: "alphabetical"}},
		"negative t/o":    {System: SystemSpec{Cores: 4}, Workload: WorkloadSpec{Mix: "CSI"}, Scheduler: SchedulerSpec{Name: "FCFS"}, TimeoutMS: -1},
		"bogus benchmark": {System: SystemSpec{Cores: 1}, Workload: WorkloadSpec{Benchmarks: []string{"doom"}}, Scheduler: SchedulerSpec{Name: "FCFS"}},
		"bad chan mode":   {System: SystemSpec{Cores: 4, ChannelMode: "ganged"}, Workload: WorkloadSpec{Mix: "CSI"}, Scheduler: SchedulerSpec{Name: "FCFS"}},
		"chans > cores":   {System: SystemSpec{Cores: 4, Channels: 8}, Workload: WorkloadSpec{Mix: "CSI"}, Scheduler: SchedulerSpec{Name: "FCFS"}},
		"negative par":    {System: SystemSpec{Cores: 4, Parallelism: -1}, Workload: WorkloadSpec{Mix: "CSI"}, Scheduler: SchedulerSpec{Name: "FCFS"}},
	}
	for name, sp := range cases {
		if err := sp.normalize(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	good := testSpec("alice", 1)
	if err := good.normalize(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	if good.Client != "alice" {
		t.Error("normalize rewrote the client")
	}
	anon := testSpec("", 1)
	if err := anon.normalize(); err != nil || anon.Client != "anonymous" {
		t.Errorf("empty client normalized to %q (%v), want anonymous", anon.Client, err)
	}
}

// TestSpecHashIgnoresClientAndTimeout: the result cache must replay across
// clients and timeout settings but never across simulation parameters.
func TestSpecHashIgnoresClientAndTimeout(t *testing.T) {
	a, b := testSpec("alice", 1), testSpec("bob", 1)
	b.TimeoutMS = 5000
	if a.hash() != b.hash() {
		t.Error("hash depends on client or timeout")
	}
	c := testSpec("alice", 2)
	if a.hash() == c.hash() {
		t.Error("different seeds hash equal")
	}
	d := testSpec("alice", 1)
	d.Telemetry = &TelemetrySpec{EpochCycles: 10_240}
	if a.hash() == d.hash() {
		t.Error("telemetry request does not change the hash")
	}
	// Parallelism changes wall-clock speed only (results are byte-identical),
	// so it must replay from cache; channel mode changes the simulated
	// machine, so it must not.
	e := testSpec("alice", 1)
	e.System.Parallelism = 4
	if a.hash() != e.hash() {
		t.Error("parallelism changes the hash; identical results cannot replay")
	}
	f := testSpec("alice", 1)
	f.System.Channels = 2
	f.System.ChannelMode = "independent"
	if a.hash() == f.hash() {
		t.Error("channel mode does not change the hash")
	}
}

func TestSpecCostScalesWithCyclesAndCores(t *testing.T) {
	small := Spec{System: SystemSpec{Cores: 4, MeasureCycles: 100_000, WarmupCycles: 10_000}}
	big := Spec{System: SystemSpec{Cores: 8, MeasureCycles: 100_000, WarmupCycles: 10_000}}
	if small.cost() >= big.cost() {
		t.Errorf("cost(4 cores)=%d !< cost(8 cores)=%d", small.cost(), big.cost())
	}
	defaulted := Spec{System: SystemSpec{Cores: 4}}
	if got, want := defaulted.cost(), int64(4*(defaultMeasureCycles+defaultWarmupCycles)); got != want {
		t.Errorf("zero-cycle spec cost = %d, want defaults %d", got, want)
	}
}

func TestStoreCacheRoundTrip(t *testing.T) {
	st := NewStore(0)
	now := time.Now()
	j1 := st.NewJob(testSpec("a", 1), now)
	j2 := st.NewJob(testSpec("a", 1), now)
	if j1.ID == j2.ID {
		t.Fatal("duplicate job IDs")
	}
	if _, ok := st.Get(j1.ID); !ok {
		t.Fatal("stored job not found")
	}
	if _, ok := st.Get("r-999999"); ok {
		t.Fatal("phantom job found")
	}
	if _, ok := st.Cached(j1.Hash); ok {
		t.Fatal("cache hit before any completion")
	}
	res := &Result{Report: json.RawMessage(`{"scheduler":"PAR-BS"}`)}
	st.PutCache(j1.Hash, res)
	got, ok := st.Cached(j2.Hash)
	if !ok || string(got.Report) != string(res.Report) {
		t.Fatal("identical spec missed the cache")
	}
	if st.Jobs() != 2 {
		t.Errorf("store holds %d jobs, want 2", st.Jobs())
	}
}

func TestBroadcasterCoalescesAndCloses(t *testing.T) {
	b := newBroadcaster()
	ch, cancel := b.subscribe()
	defer cancel()
	// Publishing twice without a read keeps only the newest snapshot.
	b.publish(parbs.Progress{CPUCycles: 1})
	b.publish(parbs.Progress{CPUCycles: 2})
	if p := <-ch; p.CPUCycles != 2 {
		t.Errorf("read stale snapshot %d, want 2", p.CPUCycles)
	}
	b.close()
	if _, open := <-ch; open {
		t.Error("subscriber channel still open after close")
	}
	// Late subscribers see a closed channel, publish is a no-op.
	late, _ := b.subscribe()
	b.publish(parbs.Progress{CPUCycles: 3})
	if _, open := <-late; open {
		t.Error("late subscriber channel open after close")
	}
}
