package serve

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync"
	"time"
)

// waitBuckets is the number of power-of-two wait histogram buckets:
// bucket 0 counts sub-millisecond waits, bucket i>0 counts waits in
// [2^(i-1), 2^i) milliseconds, the last bucket open-ended (~17 min and up).
const waitBuckets = 21

// waitHist is one client's queue-wait histogram.
type waitHist struct {
	buckets [waitBuckets]int64
	count   int64
	sumMS   int64
	maxMS   int64
}

func (h *waitHist) observe(d time.Duration) {
	ms := d.Milliseconds()
	if ms < 0 {
		ms = 0
	}
	b := bits.Len64(uint64(ms))
	if b >= waitBuckets {
		b = waitBuckets - 1
	}
	h.buckets[b]++
	h.count++
	h.sumMS += ms
	if ms > h.maxMS {
		h.maxMS = ms
	}
}

// Metrics holds the service counters exported at /metrics. All methods are
// safe for concurrent use.
type Metrics struct {
	mu        sync.Mutex
	accepted  int64
	rejected  int64
	completed int64
	failed    int64
	cacheHits int64
	waits     map[string]*waitHist
}

// NewMetrics returns an empty counter set.
func NewMetrics() *Metrics {
	return &Metrics{waits: make(map[string]*waitHist)}
}

func (m *Metrics) jobAccepted() { m.add(&m.accepted) }
func (m *Metrics) jobRejected() { m.add(&m.rejected) }

func (m *Metrics) jobCompleted(client string, wait time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.completed++
	m.observeWait(client, wait)
}

func (m *Metrics) jobFailed(client string, wait time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.failed++
	m.observeWait(client, wait)
}

func (m *Metrics) cacheHit() { m.add(&m.cacheHits) }

func (m *Metrics) add(c *int64) {
	m.mu.Lock()
	*c++
	m.mu.Unlock()
}

// observeWait records a completed job's queue wait; callers hold m.mu.
func (m *Metrics) observeWait(client string, wait time.Duration) {
	h := m.waits[client]
	if h == nil {
		h = &waitHist{}
		m.waits[client] = h
	}
	h.observe(wait)
}

// Counters is a consistent snapshot of the scalar counters.
type Counters struct {
	Accepted, Rejected, Completed, Failed, CacheHits int64
}

// Snapshot returns the current counter values.
func (m *Metrics) Snapshot() Counters {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Counters{
		Accepted:  m.accepted,
		Rejected:  m.rejected,
		Completed: m.completed,
		Failed:    m.failed,
		CacheHits: m.cacheHits,
	}
}

// render writes the counters in Prometheus text exposition format. The
// gauges (queue depth, batch count) are sampled by the caller so Metrics
// stays a plain counter bag.
func (m *Metrics) render(w io.Writer, queueDepth int, batchesFormed int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP parbs_serve_%s %s\n# TYPE parbs_serve_%s counter\nparbs_serve_%s %d\n",
			name, help, name, name, v)
	}
	counter("jobs_accepted_total", "Jobs admitted to the queue (including cached replays).", m.accepted)
	counter("jobs_rejected_total", "Submissions rejected by queue backpressure.", m.rejected)
	counter("jobs_completed_total", "Jobs finished successfully (including cached replays).", m.completed)
	counter("jobs_failed_total", "Jobs that errored, timed out, or panicked.", m.failed)
	counter("cache_hits_total", "Submissions served instantly from the content-hash result cache.", m.cacheHits)
	counter("batches_formed_total", "Admission batches formed by the PAR-BS scheduler.", batchesFormed)
	fmt.Fprintf(w, "# HELP parbs_serve_queue_depth Jobs waiting for a worker.\n# TYPE parbs_serve_queue_depth gauge\nparbs_serve_queue_depth %d\n", queueDepth)

	fmt.Fprintf(w, "# HELP parbs_serve_wait_ms Per-client queue wait (milliseconds), power-of-two buckets.\n# TYPE parbs_serve_wait_ms histogram\n")
	clients := make([]string, 0, len(m.waits))
	for c := range m.waits {
		clients = append(clients, c)
	}
	sort.Strings(clients)
	for _, c := range clients {
		h := m.waits[c]
		var cum int64
		for i := 0; i < waitBuckets-1; i++ {
			// Buckets 0..i together hold waits < 2^i ms, i.e. le = 2^i - 1.
			cum += h.buckets[i]
			fmt.Fprintf(w, "parbs_serve_wait_ms_bucket{client=%q,le=\"%d\"} %d\n", c, int64(1)<<i-1, cum)
		}
		fmt.Fprintf(w, "parbs_serve_wait_ms_bucket{client=%q,le=\"+Inf\"} %d\n", c, h.count)
		fmt.Fprintf(w, "parbs_serve_wait_ms_sum{client=%q} %d\n", c, h.sumMS)
		fmt.Fprintf(w, "parbs_serve_wait_ms_count{client=%q} %d\n", c, h.count)
		fmt.Fprintf(w, "parbs_serve_wait_ms_max{client=%q} %d\n", c, h.maxMS)
	}
}
