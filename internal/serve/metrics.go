package serve

import (
	"fmt"
	"io"
	"math/bits"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	parbs "repro"
)

// waitBuckets is the number of power-of-two wait histogram buckets:
// bucket 0 counts sub-millisecond waits, bucket i>0 counts waits in
// [2^(i-1), 2^i) milliseconds, the last bucket open-ended (~17 min and up).
const waitBuckets = 21

// waitHist is one client's queue-wait histogram.
type waitHist struct {
	buckets [waitBuckets]int64
	count   int64
	sumMS   int64
	maxMS   int64
}

func (h *waitHist) observe(d time.Duration) {
	ms := d.Milliseconds()
	if ms < 0 {
		ms = 0
	}
	b := bits.Len64(uint64(ms))
	if b >= waitBuckets {
		b = waitBuckets - 1
	}
	h.buckets[b]++
	h.count++
	h.sumMS += ms
	if ms > h.maxMS {
		h.maxMS = ms
	}
}

// durSummary is a count/sum/max duration summary (no buckets).
type durSummary struct {
	count int64
	sumMS int64
	maxMS int64
}

func (s *durSummary) observe(d time.Duration) {
	ms := d.Milliseconds()
	if ms < 0 {
		ms = 0
	}
	s.count++
	s.sumMS += ms
	if ms > s.maxMS {
		s.maxMS = ms
	}
}

// Metrics holds the service counters exported at /metrics. All methods are
// safe for concurrent use.
type Metrics struct {
	mu        sync.Mutex
	start     time.Time
	accepted  int64
	rejected  int64
	completed int64
	failed    int64
	cacheHits int64
	// analyses counts trace analyses computed via POST /v1/analysis;
	// analysisErrs counts submissions whose trace failed to ingest.
	analyses     int64
	analysisErrs int64
	// liveSessions gauges currently-open live-analysis SSE followers;
	// ingestEvents counts trace events consumed by live ingesters.
	liveSessions int64
	ingestEvents int64
	// diffs counts cross-run diff reports computed via POST
	// /v1/analysis/diff; diffErrs counts submissions that failed to resolve
	// or ingest either arm.
	diffs    int64
	diffErrs int64
	waits    map[string]*waitHist
	// runs holds per-policy simulation run durations (dispatch to finish)
	// for successfully completed jobs.
	runs map[string]*waitHist
	// batchDur summarizes admission batch lifetimes (formation to drain).
	batchDur durSummary
	// pending is the most recent heartbeat's per-channel request-buffer
	// occupancy (index = channel). Lockstep runs report one ganged stream
	// as channel 0; Independent runs report every channel. Last-writer-wins
	// across concurrent jobs — it is a liveness gauge, not an accumulator.
	pending []int64
}

// NewMetrics returns an empty counter set.
func NewMetrics() *Metrics {
	return &Metrics{
		start: time.Now(),
		waits: make(map[string]*waitHist),
		runs:  make(map[string]*waitHist),
	}
}

func (m *Metrics) jobAccepted() { m.add(&m.accepted) }
func (m *Metrics) jobRejected() { m.add(&m.rejected) }

func (m *Metrics) jobCompleted(client string, wait time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.completed++
	m.observeWait(client, wait)
}

func (m *Metrics) jobFailed(client string, wait time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.failed++
	m.observeWait(client, wait)
}

func (m *Metrics) cacheHit() { m.add(&m.cacheHits) }

func (m *Metrics) analysisDone()   { m.add(&m.analyses) }
func (m *Metrics) analysisFailed() { m.add(&m.analysisErrs) }

func (m *Metrics) liveSessionStart() { m.add(&m.liveSessions) }
func (m *Metrics) liveSessionEnd() {
	m.mu.Lock()
	m.liveSessions--
	m.mu.Unlock()
}

// observeIngest records n trace events consumed by a live ingester.
func (m *Metrics) observeIngest(n int64) {
	if n <= 0 {
		return
	}
	m.mu.Lock()
	m.ingestEvents += n
	m.mu.Unlock()
}

func (m *Metrics) diffDone()   { m.add(&m.diffs) }
func (m *Metrics) diffFailed() { m.add(&m.diffErrs) }

// observeRun records a successful job's simulation duration under its
// policy name.
func (m *Metrics) observeRun(policy string, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.runs[policy]
	if h == nil {
		h = &waitHist{}
		m.runs[policy] = h
	}
	h.observe(d)
}

// observeBatch records one admission batch's formation-to-drain lifetime.
// Wired as the parbsAdmitter's drain callback.
func (m *Metrics) observeBatch(d time.Duration) {
	m.mu.Lock()
	m.batchDur.observe(d)
	m.mu.Unlock()
}

// observeOccupancy records a progress heartbeat's request-buffer occupancy
// for the pending-reads gauge. Alone-baseline phases are skipped: their
// single-thread occupancy would make the shared-run gauge sawtooth.
func (m *Metrics) observeOccupancy(p parbs.Progress) {
	if p.Phase != "measure" && p.Phase != "warmup" {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(p.PendingPerChannel) == 0 {
		m.pending = append(m.pending[:0], int64(p.PendingReads))
		return
	}
	m.pending = m.pending[:0]
	for _, n := range p.PendingPerChannel {
		m.pending = append(m.pending, int64(n))
	}
}

func (m *Metrics) add(c *int64) {
	m.mu.Lock()
	*c++
	m.mu.Unlock()
}

// observeWait records a completed job's queue wait; callers hold m.mu.
func (m *Metrics) observeWait(client string, wait time.Duration) {
	h := m.waits[client]
	if h == nil {
		h = &waitHist{}
		m.waits[client] = h
	}
	h.observe(wait)
}

// Counters is a consistent snapshot of the scalar counters.
type Counters struct {
	Accepted, Rejected, Completed, Failed, CacheHits int64
}

// Snapshot returns the current counter values.
func (m *Metrics) Snapshot() Counters {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Counters{
		Accepted:  m.accepted,
		Rejected:  m.rejected,
		Completed: m.completed,
		Failed:    m.failed,
		CacheHits: m.cacheHits,
	}
}

// render writes the counters in Prometheus text exposition format. The
// gauges (queue depth, batch count) are sampled by the caller so Metrics
// stays a plain counter bag.
func (m *Metrics) render(w io.Writer, queueDepth int, batchesFormed int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP parbs_serve_%s %s\n# TYPE parbs_serve_%s counter\nparbs_serve_%s %d\n",
			name, help, name, name, v)
	}
	counter("jobs_accepted_total", "Jobs admitted to the queue (including cached replays).", m.accepted)
	counter("jobs_rejected_total", "Submissions rejected by queue backpressure.", m.rejected)
	counter("jobs_completed_total", "Jobs finished successfully (including cached replays).", m.completed)
	counter("jobs_failed_total", "Jobs that errored, timed out, or panicked.", m.failed)
	counter("cache_hits_total", "Submissions served instantly from the content-hash result cache.", m.cacheHits)
	counter("analyses_total", "Trace analyses computed via POST /v1/analysis.", m.analyses)
	counter("analysis_errors_total", "Analysis submissions whose trace failed to ingest.", m.analysisErrs)
	counter("analysis_ingest_events_total", "Trace events consumed by live-analysis ingesters.", m.ingestEvents)
	counter("analysis_diffs_total", "Cross-run diff reports computed via POST /v1/analysis/diff.", m.diffs)
	counter("analysis_diff_errors_total", "Diff submissions that failed to resolve or ingest an arm.", m.diffErrs)
	counter("batches_formed_total", "Admission batches formed by the PAR-BS scheduler.", batchesFormed)
	fmt.Fprintf(w, "# HELP parbs_serve_queue_depth Jobs waiting for a worker.\n# TYPE parbs_serve_queue_depth gauge\nparbs_serve_queue_depth %d\n", queueDepth)
	fmt.Fprintf(w, "# HELP parbs_serve_live_analysis_sessions Live-analysis SSE sessions currently open.\n# TYPE parbs_serve_live_analysis_sessions gauge\nparbs_serve_live_analysis_sessions %d\n", m.liveSessions)
	if len(m.pending) > 0 {
		fmt.Fprintf(w, "# HELP parbs_serve_pending_reads Request-buffer occupancy per DRAM channel at the latest shared-run heartbeat.\n# TYPE parbs_serve_pending_reads gauge\n")
		for ch, n := range m.pending {
			fmt.Fprintf(w, "parbs_serve_pending_reads{channel=\"%d\"} %d\n", ch, n)
		}
	}

	fmt.Fprintf(w, "# HELP parbs_build_info Build metadata; the value is always 1.\n# TYPE parbs_build_info gauge\n")
	fmt.Fprintf(w, "parbs_build_info{version=%q,go=%q} 1\n", buildVersion(), runtime.Version())
	fmt.Fprintf(w, "# HELP parbs_serve_uptime_seconds Seconds since the metrics registry was created.\n# TYPE parbs_serve_uptime_seconds counter\n")
	fmt.Fprintf(w, "parbs_serve_uptime_seconds %.3f\n", time.Since(m.start).Seconds())

	fmt.Fprintf(w, "# HELP parbs_serve_wait_ms Per-client queue wait (milliseconds), power-of-two buckets.\n# TYPE parbs_serve_wait_ms histogram\n")
	renderHists(w, "parbs_serve_wait_ms", "client", m.waits)

	fmt.Fprintf(w, "# HELP parbs_serve_run_duration_ms Per-policy simulation run duration for completed jobs (milliseconds), power-of-two buckets.\n# TYPE parbs_serve_run_duration_ms histogram\n")
	renderHists(w, "parbs_serve_run_duration_ms", "policy", m.runs)

	fmt.Fprintf(w, "# HELP parbs_serve_admission_batch_duration_ms Admission batch lifetime, formation to drain (milliseconds).\n# TYPE parbs_serve_admission_batch_duration_ms summary\n")
	fmt.Fprintf(w, "parbs_serve_admission_batch_duration_ms_count %d\n", m.batchDur.count)
	fmt.Fprintf(w, "parbs_serve_admission_batch_duration_ms_sum %d\n", m.batchDur.sumMS)
	fmt.Fprintf(w, "parbs_serve_admission_batch_duration_ms_max %d\n", m.batchDur.maxMS)
}

// renderHists writes one labeled histogram family in label order.
func renderHists(w io.Writer, name, label string, hists map[string]*waitHist) {
	keys := make([]string, 0, len(hists))
	for k := range hists {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		h := hists[k]
		var cum int64
		for i := 0; i < waitBuckets-1; i++ {
			// Buckets 0..i together hold values < 2^i ms, i.e. le = 2^i - 1.
			cum += h.buckets[i]
			fmt.Fprintf(w, "%s_bucket{%s=%q,le=\"%d\"} %d\n", name, label, k, int64(1)<<i-1, cum)
		}
		fmt.Fprintf(w, "%s_bucket{%s=%q,le=\"+Inf\"} %d\n", name, label, k, h.count)
		fmt.Fprintf(w, "%s_sum{%s=%q} %d\n", name, label, k, h.sumMS)
		fmt.Fprintf(w, "%s_count{%s=%q} %d\n", name, label, k, h.count)
		fmt.Fprintf(w, "%s_max{%s=%q} %d\n", name, label, k, h.maxMS)
	}
}

// buildVersion reports the main module's version from the embedded build
// info ("(devel)" for plain go build, a pseudo-version for installs).
func buildVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		return bi.Main.Version
	}
	return "unknown"
}
