package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"

	"repro/internal/analysis"
)

// Cross-run diff endpoints: POST /v1/analysis/diff aligns two runs (by run
// ID, retained analysis ID, or uploaded snapshot/trace) and retains the
// resulting DiffReport under a d- ID for JSON, text, and dashboard renders.

// diffEntry is one retained cross-run comparison.
type diffEntry struct {
	id     string
	report *analysis.DiffReport
}

// diffStore retains completed diffs up to a cap, evicting oldest first —
// same unconditional FIFO as analysisStore (diffs are immutable results).
type diffStore struct {
	mu      sync.Mutex
	seq     int64
	max     int
	entries map[string]*diffEntry
	order   []string
}

func newDiffStore(max int) *diffStore {
	if max <= 0 {
		max = DefaultMaxAnalyses
	}
	return &diffStore{max: max, entries: make(map[string]*diffEntry)}
}

func (ds *diffStore) add(report *analysis.DiffReport) *diffEntry {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	ds.seq++
	e := &diffEntry{id: fmt.Sprintf("d-%06d", ds.seq), report: report}
	ds.entries[e.id] = e
	ds.order = append(ds.order, e.id)
	for len(ds.entries) > ds.max {
		delete(ds.entries, ds.order[0])
		ds.order = ds.order[1:]
	}
	return e
}

func (ds *diffStore) get(id string) (*diffEntry, bool) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	e, ok := ds.entries[id]
	return e, ok
}

// diffRequest is the JSON body of POST /v1/analysis/diff: each arm is a run
// ID (r-…, needs trace.events=true) or a retained analysis ID (a-…).
type diffRequest struct {
	A            string `json:"a"`
	B            string `json:"b"`
	WindowCycles int64  `json:"window_cycles,omitempty"`
	TopK         int    `json:"top_k,omitempty"`
}

// diffCreatedView is the POST response: the new diff ID, render links, and
// the full aligned report.
type diffCreatedView struct {
	Schema    string               `json:"schema"`
	ID        string               `json:"id"`
	Report    *analysis.DiffReport `json:"report"`
	Text      string               `json:"text_url"`
	Dashboard string               `json:"dashboard_url"`
}

// resolveArm turns a run or analysis ID into a columnar store. The returned
// code is the HTTP status to use on error.
func (s *Server) resolveArm(name, ref string) (*analysis.Store, int, error) {
	if e, ok := s.analyses.get(ref); ok {
		return e.store, 0, nil
	}
	j, ok := s.store.Get(ref)
	if !ok {
		return nil, http.StatusNotFound, fmt.Errorf("%s: unknown run or analysis %q", name, ref)
	}
	snap := j.snapshot()
	if snap.Status != StatusDone {
		return nil, http.StatusConflict, fmt.Errorf("%s: run %s is %s, not done", name, ref, snap.Status)
	}
	if snap.Result == nil || len(snap.Result.TraceEvents) == 0 {
		return nil, http.StatusConflict, fmt.Errorf("%s: run %s has no event trace; submit it with trace.events=true", name, ref)
	}
	st, err := analysis.Ingest(bytes.NewReader(snap.Result.TraceEvents))
	if err != nil {
		return nil, http.StatusBadRequest, fmt.Errorf("%s: ingest trace of %s: %w", name, ref, err)
	}
	return st, 0, nil
}

// parseArmBytes sniffs an uploaded arm: a binary analysis snapshot (any
// parbs.analysis/v* version) or a raw parbs.trace/v1 JSONL trace.
func parseArmBytes(name string, raw []byte) (*analysis.Store, error) {
	if bytes.HasPrefix(raw, []byte("parbs.analysis/v")) {
		st, err := analysis.ReadSnapshot(bytes.NewReader(raw))
		if err != nil {
			return nil, fmt.Errorf("%s: read snapshot: %w", name, err)
		}
		return st, nil
	}
	st, err := analysis.Ingest(bytes.NewReader(raw))
	if err != nil {
		return nil, fmt.Errorf("%s: ingest trace: %w", name, err)
	}
	return st, nil
}

// handleDiff computes a cross-run diff. Two submission forms:
//
//   - Content-Type application/json: {"a": "...", "b": "..."} where each arm
//     is a run ID or retained analysis ID; window_cycles/top_k in the body.
//   - Content-Type multipart/form-data: file parts "a" and "b", each a
//     binary analysis snapshot or raw JSONL trace; window_cycles/top_k come
//     from query parameters.
//
// Deltas are B − A throughout.
func (s *Server) handleDiff(w http.ResponseWriter, r *http.Request) {
	fail := func(code int, err error) {
		s.metrics.diffFailed()
		httpError(w, code, err)
	}
	var (
		sa, sb *analysis.Store
		opt    analysis.Options
	)
	switch ct := r.Header.Get("Content-Type"); {
	case strings.HasPrefix(ct, "application/json"):
		var req diffRequest
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			fail(http.StatusBadRequest, fmt.Errorf("parse request: %w", err))
			return
		}
		if req.A == "" || req.B == "" {
			fail(http.StatusBadRequest, fmt.Errorf(`both "a" and "b" are required (run or analysis IDs)`))
			return
		}
		var code int
		var err error
		if sa, code, err = s.resolveArm("a", req.A); err != nil {
			fail(code, err)
			return
		}
		if sb, code, err = s.resolveArm("b", req.B); err != nil {
			fail(code, err)
			return
		}
		opt = analysis.Options{WindowCycles: req.WindowCycles, TopK: req.TopK}
	case strings.HasPrefix(ct, "multipart/"):
		arm := func(name string) (*analysis.Store, error) {
			f, _, err := r.FormFile(name)
			if err != nil {
				return nil, fmt.Errorf("multipart part %q: %w", name, err)
			}
			defer f.Close()
			const maxArm = 256 << 20
			raw, err := readAll(f, maxArm)
			if err != nil {
				return nil, err
			}
			return parseArmBytes(name, raw)
		}
		var err error
		if sa, err = arm("a"); err != nil {
			fail(http.StatusBadRequest, err)
			return
		}
		if sb, err = arm("b"); err != nil {
			fail(http.StatusBadRequest, err)
			return
		}
		if opt, err = analysisQueryOptions(r); err != nil {
			fail(http.StatusBadRequest, err)
			return
		}
	default:
		fail(http.StatusBadRequest, fmt.Errorf("unsupported Content-Type %q: use application/json (IDs) or multipart/form-data (snapshot/trace uploads)", ct))
		return
	}

	e := s.diffs.add(analysis.Diff(sa, sb, opt))
	s.metrics.diffDone()
	writeJSON(w, http.StatusCreated, diffCreatedView{
		Schema:    analysis.DiffSchema,
		ID:        e.id,
		Report:    e.report,
		Text:      "/v1/diffs/" + e.id + "/report",
		Dashboard: "/v1/diffs/" + e.id + "/dashboard",
	})
}

func (s *Server) diffEntry(w http.ResponseWriter, r *http.Request) (*diffEntry, bool) {
	e, ok := s.diffs.get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown diff %q (evicted or never created)", r.PathValue("id")))
	}
	return e, ok
}

func (s *Server) handleDiffJSON(w http.ResponseWriter, r *http.Request) {
	if e, ok := s.diffEntry(w, r); ok {
		writeJSON(w, http.StatusOK, e.report)
	}
}

func (s *Server) handleDiffText(w http.ResponseWriter, r *http.Request) {
	e, ok := s.diffEntry(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	e.report.WriteText(w)
}
