package serve

import (
	"strings"
	"testing"

	parbs "repro"
)

// TestOccupancyGauge: progress heartbeats feed the per-channel pending-reads
// gauge, alone-baseline phases are ignored, and lockstep runs expose their
// single ganged stream as channel 0.
func TestOccupancyGauge(t *testing.T) {
	m := NewMetrics()

	renderOut := func() string {
		var b strings.Builder
		m.render(&b, 0, 0)
		return b.String()
	}
	if out := renderOut(); strings.Contains(out, "parbs_serve_pending_reads") {
		t.Error("gauge rendered before any heartbeat")
	}

	m.observeOccupancy(parbs.Progress{Phase: "measure", PendingReads: 7})
	if out := renderOut(); !strings.Contains(out, `parbs_serve_pending_reads{channel="0"} 7`) {
		t.Errorf("lockstep heartbeat not exposed as channel 0:\n%s", out)
	}

	m.observeOccupancy(parbs.Progress{Phase: "measure", PendingReads: 9, PendingPerChannel: []int{4, 5}})
	out := renderOut()
	for _, want := range []string{
		`parbs_serve_pending_reads{channel="0"} 4`,
		`parbs_serve_pending_reads{channel="1"} 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}

	// An alone-baseline heartbeat must not clobber the shared-run snapshot.
	m.observeOccupancy(parbs.Progress{Phase: "alone:mcf", PendingReads: 1, PendingPerChannel: []int{1}})
	if out := renderOut(); !strings.Contains(out, `parbs_serve_pending_reads{channel="1"} 5`) {
		t.Errorf("alone-phase heartbeat clobbered the gauge:\n%s", out)
	}
}

// TestSSEProgressPerChannel: the SSE wire form carries per-channel occupancy
// when present and omits it under lockstep.
func TestSSEProgressPerChannel(t *testing.T) {
	v := progressViewOf(parbs.Progress{Phase: "measure", PendingReads: 9, PendingPerChannel: []int{4, 5}})
	if len(v.PendingPerChannel) != 2 || v.PendingPerChannel[0] != 4 || v.PendingPerChannel[1] != 5 {
		t.Errorf("progressViewOf dropped per-channel occupancy: %+v", v)
	}
	if v := progressViewOf(parbs.Progress{Phase: "measure", PendingReads: 9}); v.PendingPerChannel != nil {
		t.Errorf("lockstep view should omit pending_per_channel, got %v", v.PendingPerChannel)
	}
}
