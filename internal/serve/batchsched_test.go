package serve

import (
	"fmt"
	"testing"
)

// job builds a bare job for admitter-level tests; arrival mimics the
// queue's stamping.
func job(client string, cost, arrival int64) *Job {
	return &Job{ID: fmt.Sprintf("%s-%d", client, arrival), Client: client, Cost: cost, arrival: arrival}
}

func drain(a admitter) []*Job {
	var out []*Job
	for j := a.next(); j != nil; j = a.next() {
		out = append(out, j)
	}
	return out
}

func TestFIFOAdmitterPreservesArrivalOrder(t *testing.T) {
	f := &fifoAdmitter{}
	for i := int64(1); i <= 5; i++ {
		f.add(job("c", 10, i))
	}
	for i, j := range drain(f) {
		if j.arrival != int64(i+1) {
			t.Fatalf("position %d got arrival %d", i, j.arrival)
		}
	}
	if f.batches() != 0 {
		t.Errorf("FIFO reported %d batches", f.batches())
	}
}

// TestMarkingCapBoundsPerClientShare: a batch takes at most markingCap jobs
// per client, so a flooding client cannot fill a batch.
func TestMarkingCapBoundsPerClientShare(t *testing.T) {
	p := newParbsAdmitter(2)
	for i := int64(1); i <= 10; i++ {
		p.add(job("flood", 100, i))
	}
	p.add(job("sparse", 100, 11))
	// First batch: 2 flood + 1 sparse.
	batch := []*Job{p.next(), p.next(), p.next()}
	counts := map[string]int{}
	for _, j := range batch {
		counts[j.Client]++
	}
	if counts["flood"] != 2 || counts["sparse"] != 1 {
		t.Fatalf("first batch client shares = %v, want flood:2 sparse:1", counts)
	}
	// The 4th dispatch starts batch two: flood only now.
	if j := p.next(); j.Client != "flood" {
		t.Fatalf("batch 2 started with %s", j.Client)
	}
	if p.batches() != 2 {
		t.Errorf("formed %d batches, want 2", p.batches())
	}
}

// TestMaxTotalRanking: within a batch, the client with the cheaper jobs is
// served first (shortest job first); ties fall to total cost, then arrival.
func TestMaxTotalRanking(t *testing.T) {
	p := newParbsAdmitter(2)
	p.add(job("heavy", 1000, 1))
	p.add(job("heavy", 1000, 2))
	p.add(job("light", 10, 3))
	p.add(job("light", 10, 4))
	order := drain(p)
	if len(order) != 4 {
		t.Fatalf("drained %d jobs", len(order))
	}
	for i, want := range []string{"light", "light", "heavy", "heavy"} {
		if order[i].Client != want {
			t.Fatalf("dispatch order %v, want light before heavy",
				[]string{order[0].Client, order[1].Client, order[2].Client, order[3].Client})
		}
	}

	// Equal max: lower total wins.
	p = newParbsAdmitter(3)
	p.add(job("two", 50, 1))
	p.add(job("two", 50, 2))
	p.add(job("one", 50, 3))
	if j := p.next(); j.Client != "one" {
		t.Errorf("equal-max tie went to %s, want the lower-total client", j.Client)
	}

	// Equal max and total: earlier arrival wins.
	p = newParbsAdmitter(1)
	p.add(job("b", 50, 2))
	p.add(job("a", 50, 1))
	if j := p.next(); j.Client != "a" {
		t.Errorf("full tie went to %s, want the earlier arrival", j.Client)
	}
}

// TestBatchBoundsWorstCaseWait: marked batches strictly precede later
// arrivals, so a sparse client's job dispatches within
// ceil(position/cap) batches of bounded size — here, ahead of most of an
// earlier flood, and never behind jobs submitted after it.
func TestBatchBoundsWorstCaseWait(t *testing.T) {
	const cap = 2
	p := newParbsAdmitter(cap)
	for i := int64(1); i <= 20; i++ {
		p.add(job("flood", 100, i))
	}
	p.add(job("sparse", 10, 21))
	order := drain(p)
	pos := -1
	for i, j := range order {
		if j.Client == "sparse" {
			pos = i
			break
		}
	}
	// Batch 1 (flood-only, formed semantics: sparse is present before the
	// first next() call here, so it lands in batch 1 and ranks first).
	if pos < 0 {
		t.Fatal("sparse job never dispatched")
	}
	if pos > cap {
		t.Errorf("sparse job dispatched at position %d behind a 20-job flood; cap %d should bound it", pos, cap)
	}
}

// TestLateArrivalWaitsForNextBatch: jobs arriving after a batch formed do
// not preempt it (the strict batch boundary that gives marked jobs their
// wait bound).
func TestLateArrivalWaitsForNextBatch(t *testing.T) {
	p := newParbsAdmitter(2)
	p.add(job("flood", 100, 1))
	p.add(job("flood", 100, 2))
	if j := p.next(); j.Client != "flood" {
		t.Fatal("expected flood job")
	}
	// Batch 1 is formed and half-dispatched; a cheap job arrives late.
	p.add(job("late", 1, 3))
	if j := p.next(); j.Client != "flood" {
		t.Errorf("late arrival %s preempted the current batch", j.Client)
	}
	if j := p.next(); j.Client != "late" {
		t.Error("late arrival missing from the next batch")
	}
}
