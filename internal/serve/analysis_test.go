package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/trace"
)

// testTraceJSONL renders a small hand-sequenced parbs.trace/v1 trace: two
// threads on two banks, thread 1's request starved long enough to make it
// the unambiguous bottleneck.
func testTraceJSONL(t *testing.T) []byte {
	t.Helper()
	log := &trace.Log{
		Meta: trace.Meta{
			Policy: "PAR-BS", Workload: "stub", Cores: 2, Banks: 2,
			CPUPerDRAM: 10, TotalDRAM: 1000, MarkingCap: 5, ReadBufEntries: 64,
		},
		Events: []trace.Event{
			{Kind: trace.KindArrive, Cycle: 0, Req: 1, Thread: 0, Bank: 0, Row: 7},
			{Kind: trace.KindArrive, Cycle: 10, Req: 2, Thread: 1, Bank: 1, Row: 9},
			{Kind: trace.KindMark, Cycle: 50, Req: 1, Thread: 0, Bank: 0},
			{Kind: trace.KindBatch, Cycle: 50, Req: 0, Row: 1},
			{Kind: trace.KindComplete, Cycle: 200, Req: 1, Thread: 0, Bank: 0, Row: 200},
			{Kind: trace.KindComplete, Cycle: 900, Req: 2, Thread: 1, Bank: 1, Row: 890},
		},
		BatchPerThread: [][]int32{{1, 0}},
	}
	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, log); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestAnalysisEndpoints drives the full HTTP analysis surface: a traced
// run's JSONL is retrievable, analyzable by reference and by direct POST,
// and every rendering (JSON, text, dashboard, snapshot) agrees.
func TestAnalysisEndpoints(t *testing.T) {
	jsonl := testTraceJSONL(t)
	runner := func(ctx context.Context, spec Spec, sink Sink) (*Result, error) {
		res := &Result{Report: json.RawMessage(`{"scheduler":"stub"}`)}
		if spec.Trace != nil && spec.Trace.Events {
			res.TraceEvents = jsonl
		}
		return res, nil
	}
	sv := New(Options{Workers: 1, Runner: runner})
	defer sv.Shutdown(context.Background())
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	// A run submitted without trace.events has no trace to serve or analyze.
	plain := testSpec("an", 1)
	plain.Trace = &TraceSpec{}
	_, v := submit(t, ts.URL, plain)
	waitDone(t, ts.URL, v.ID, 5*time.Second)
	if resp, _ := http.Get(ts.URL + "/v1/runs/" + v.ID + "/trace"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("trace of untraced run: status %d, want 404", resp.StatusCode)
	}
	if code := postAnalysisRef(t, ts.URL, v.ID).StatusCode; code != http.StatusConflict {
		t.Errorf("analyze untraced run: status %d, want 409", code)
	}

	// A run with trace.events=true serves its raw JSONL verbatim.
	traced := testSpec("an", 2)
	traced.Trace = &TraceSpec{Events: true}
	_, v = submit(t, ts.URL, traced)
	if done := waitDone(t, ts.URL, v.ID, 5*time.Second); done.Status != StatusDone {
		t.Fatalf("traced run: %s (%s)", done.Status, done.Error)
	}
	resp, err := http.Get(ts.URL + "/v1/runs/" + v.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK || !bytes.Equal(body, jsonl) {
		t.Fatalf("run trace: status %d, %d bytes (want %d)", resp.StatusCode, len(body), len(jsonl))
	}

	// Analyze by run reference.
	resp = postAnalysisRef(t, ts.URL, v.ID)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("analyze by reference: status %d: %s", resp.StatusCode, readBody(t, resp))
	}
	var created struct {
		Schema string           `json:"schema"`
		ID     string           `json:"id"`
		Report *analysis.Report `json:"report"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if created.Schema != analysis.Schema || created.ID == "" {
		t.Fatalf("created view: %+v", created)
	}
	r := created.Report
	if len(r.TopThreads) == 0 || r.TopThreads[0].ID != 1 {
		t.Errorf("top thread = %+v, want the starved t1", r.TopThreads)
	}
	if r.Requests != 2 || len(r.Batches) != 1 {
		t.Errorf("report requests=%d batches=%d, want 2/1", r.Requests, len(r.Batches))
	}

	// Every rendering of the same analysis.
	getOK := func(path, wantType string) []byte {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		b := readBody(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, wantType) {
			t.Errorf("GET %s: content type %q, want %q", path, ct, wantType)
		}
		return b
	}
	jsonBody := getOK("/v1/analysis/"+created.ID, "application/json")
	var again analysis.Report
	if err := json.Unmarshal(jsonBody, &again); err != nil {
		t.Fatal(err)
	}
	if again.TopThreads[0] != r.TopThreads[0] {
		t.Error("GET JSON report disagrees with the creation response")
	}
	text := string(getOK("/v1/analysis/"+created.ID+"/report", "text/plain"))
	if !strings.Contains(text, "bottleneck attribution") || !strings.Contains(text, "t1") {
		t.Errorf("text report missing attribution:\n%s", text)
	}
	dash := string(getOK("/v1/analysis/"+created.ID+"/dashboard", "text/html"))
	for _, want := range []string{"<svg", "Bottleneck attribution", "t1", "unmarked wait", "heatmap"} {
		if !strings.Contains(dash, want) {
			t.Errorf("dashboard missing %q", want)
		}
	}
	snap := getOK("/v1/analysis/"+created.ID+"/snapshot", "application/octet-stream")
	store, err := analysis.ReadSnapshot(bytes.NewReader(snap))
	if err != nil {
		t.Fatalf("downloaded snapshot unreadable: %v", err)
	}
	if got := store.Analyze(analysis.Options{}); got.TopThreads[0].ID != r.TopThreads[0].ID {
		t.Error("snapshot round trip changed the analysis")
	}

	// Direct JSONL POST, with options in the query string.
	resp, err = http.Post(ts.URL+"/v1/analysis?window_cycles=100&top_k=1",
		"application/x-ndjson", bytes.NewReader(jsonl))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("direct POST: status %d", resp.StatusCode)
	}
	if got := created.Report; got.WindowCycles != 100 || len(got.Windows) != 10 || len(got.TopThreads) != 1 {
		t.Errorf("direct POST report: window_cycles=%d windows=%d topK=%d",
			got.WindowCycles, len(got.Windows), len(got.TopThreads))
	}

	// A truncated trace (torn final line) is accepted and flagged, never
	// rejected: analytics must degrade gracefully.
	torn := jsonl[:len(jsonl)-20]
	resp, err = http.Post(ts.URL+"/v1/analysis", "application/x-ndjson", bytes.NewReader(torn))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || !created.Report.Truncated {
		t.Errorf("torn trace: status %d truncated=%v, want 201/true",
			resp.StatusCode, created.Report.Truncated)
	}

	// Error paths: unknown run, unknown analysis, unparseable header.
	if code := postAnalysisRef(t, ts.URL, "r-999999").StatusCode; code != http.StatusNotFound {
		t.Errorf("analyze unknown run: status %d, want 404", code)
	}
	if resp, _ := http.Get(ts.URL + "/v1/analysis/a-999999"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown analysis: status %d, want 404", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/analysis", "application/x-ndjson",
		strings.NewReader("this is not a trace\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage trace: status %d, want 400", resp.StatusCode)
	}

	// Counters: 3 successful analyses, 1 ingest failure.
	metrics := fetchMetrics(t, ts.URL)
	if got := metricValue(t, metrics, "parbs_serve_analyses_total"); got != 3 {
		t.Errorf("analyses_total = %d, want 3", got)
	}
	if got := metricValue(t, metrics, "parbs_serve_analysis_errors_total"); got != 1 {
		t.Errorf("analysis_errors_total = %d, want 1", got)
	}
}

func postAnalysisRef(t *testing.T, base, runID string) *http.Response {
	t.Helper()
	body := fmt.Sprintf(`{"run":%q}`, runID)
	resp, err := http.Post(base+"/v1/analysis", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readBody(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestAnalysisStoreEviction: the bounded analysis store drops oldest
// entries past its cap.
func TestAnalysisStoreEviction(t *testing.T) {
	as := newAnalysisStore(2)
	a := as.add(nil, nil)
	b := as.add(nil, nil)
	c := as.add(nil, nil)
	if _, ok := as.get(a.id); ok {
		t.Errorf("oldest analysis %s survived past the cap", a.id)
	}
	for _, e := range []*analysisEntry{b, c} {
		if _, ok := as.get(e.id); !ok {
			t.Errorf("analysis %s evicted prematurely", e.id)
		}
	}
}

// TestJobStoreEviction: past MaxJobs, admitting a job evicts the oldest
// terminal records — in admission order, skipping live jobs — and never
// touches the content-hash result cache.
func TestJobStoreEviction(t *testing.T) {
	st := NewStore(3)
	now := time.Now()
	jobs := make([]*Job, 0, 5)
	for seed := int64(1); seed <= 5; seed++ {
		jobs = append(jobs, st.NewJob(testSpec("ev", seed), now))
		// Jobs 1, 2, 4 complete; 3 and 5 stay live. Eviction triggers on
		// each admission but only terminal jobs may go.
		if seed == 1 || seed == 2 || seed == 4 {
			j := jobs[seed-1]
			res := &Result{Report: json.RawMessage(`{}`)}
			j.finish(res, nil, now)
			st.PutCache(j.Hash, res)
		}
	}
	// After 5 admissions with cap 3: job 1 was evicted when job 4 arrived
	// (table at 4 > 3, job 1 terminal and oldest), job 2 when job 5 arrived.
	for i, wantAlive := range []bool{false, false, true, true, true} {
		_, ok := st.Get(jobs[i].ID)
		if ok != wantAlive {
			t.Errorf("job %s alive=%v, want %v", jobs[i].ID, ok, wantAlive)
		}
	}
	if st.Jobs() != 3 {
		t.Errorf("store holds %d jobs, want 3", st.Jobs())
	}

	// Live jobs are never evicted, even when that overflows the cap: finish
	// nothing and admit two more.
	j6 := st.NewJob(testSpec("ev", 6), now) // evicts job 4 (terminal)
	j7 := st.NewJob(testSpec("ev", 7), now) // nothing evictable: 3,5,6,7 live
	for _, j := range []*Job{jobs[2], jobs[4], j6, j7} {
		if _, ok := st.Get(j.ID); !ok {
			t.Errorf("live job %s was evicted", j.ID)
		}
	}
	if st.Jobs() != 4 {
		t.Errorf("store holds %d jobs, want 4 (cap exceeded by live jobs)", st.Jobs())
	}

	// The result cache is untouched by job eviction: the evicted job 1's
	// spec still replays.
	if _, ok := st.Cached(jobs[0].Hash); !ok {
		t.Error("cache entry lost with its evicted job")
	}

	// Admitting once more with a terminal job present shrinks back to cap.
	j6.finish(&Result{}, nil, now)
	st.NewJob(testSpec("ev", 8), now)
	if _, ok := st.Get(j6.ID); ok {
		t.Error("terminal job survived the next admission past the cap")
	}
}
