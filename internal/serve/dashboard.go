package serve

import (
	"fmt"
	"html/template"
	"net/http"

	"repro/internal/analysis"
)

// The dashboard is a single self-contained HTML page: html/template plus
// inline SVG, no scripts, no external assets. Geometry is computed here
// in Go (the template only places ready-made rectangles) so the template
// stays free of arithmetic.

// rect is one positioned SVG rectangle with a hover tooltip.
type rect struct {
	X, Y, W, H float64
	Fill       string
	Title      string
}

// labelAt is one positioned SVG text element.
type labelAt struct {
	X, Y float64
	Text string
}

// threadBarView is one thread's stacked wait-decomposition bar, already
// placed at its row offset.
type threadBarView struct {
	Label  string
	Y      float64
	TextY  float64
	Segs   []rect
	Total  int64
	TotalX float64
}

// attrRow is one rank of the side-by-side bank/thread attribution table.
type attrRow struct {
	Rank                 int
	Bank, BankCycles     string
	Thread, ThreadCycles string
}

// pctRow is one thread's latency/wait percentile table row.
type pctRow struct {
	Label string
	Lat   analysis.Percentiles
	Wait  analysis.Percentiles
}

// dashView is everything the dashboard template consumes.
type dashView struct {
	ID string
	R  *analysis.Report

	// Live marks a mid-run view computed from the trace prefix received so
	// far; RefreshSeconds > 0 emits a meta-refresh tag so the page reloads
	// until the run completes.
	Live           bool
	RefreshSeconds int

	AttrRows []attrRow
	PctRows  []pctRow

	ThreadBars []threadBarView
	BarsW      float64
	BarsH      float64

	// Busy-per-window timeline.
	TimelineW float64
	TimelineH float64
	BusyBars  []rect

	// Bank × window wait heatmap.
	HeatW, HeatH float64
	HeatCells    []rect
	HeatLabels   []labelAt

	BatchesDrained int
	BatchAvgSpan   float64
}

const (
	dashBarW     = 640.0
	dashBarH     = 22.0
	dashRowPitch = 28.0
	dashCellH    = 16.0
	dashTimeline = 96.0
)

// heatFill maps a 0..1 intensity onto a white→dark-red ramp.
func heatFill(f float64) string {
	f = min(max(f, 0), 1)
	// Interpolate #ffffff → #b2182b.
	r := 255 + f*(178-255)
	g := 255 + f*(24-255)
	b := 255 + f*(43-255)
	return fmt.Sprintf("#%02x%02x%02x", int(r), int(g), int(b))
}

func buildDashView(id string, r *analysis.Report) *dashView {
	v := &dashView{ID: id, R: r, BarsW: dashBarW}

	for i := 0; i < max(len(r.TopBanks), len(r.TopThreads)); i++ {
		row := attrRow{Rank: i + 1, Bank: "-", BankCycles: "-", Thread: "-", ThreadCycles: "-"}
		if i < len(r.TopBanks) {
			row.Bank = r.TopBanks[i].Label
			row.BankCycles = fmt.Sprint(r.TopBanks[i].Cycles)
		}
		if i < len(r.TopThreads) {
			row.Thread = r.TopThreads[i].Label
			row.ThreadCycles = fmt.Sprint(r.TopThreads[i].Cycles)
		}
		v.AttrRows = append(v.AttrRows, row)
	}

	for _, t := range r.Threads {
		v.PctRows = append(v.PctRows, pctRow{
			Label: fmt.Sprintf("t%d", t.Thread), Lat: t.LatencyPct, Wait: t.WaitPct,
		})
	}

	// Stacked per-thread bars, all on a shared scale so lengths compare.
	var maxTotal int64 = 1
	for _, t := range r.Threads {
		if tot := t.Wait + t.Service; tot > maxTotal {
			maxTotal = tot
		}
	}
	for i, t := range r.Threads {
		y := float64(i) * dashRowPitch
		bar := threadBarView{
			Label: fmt.Sprintf("t%d", t.Thread), Y: y, TextY: y + 16,
			Total: t.Wait + t.Service, TotalX: dashBarW + 8,
		}
		x := 0.0
		for _, seg := range []struct {
			cycles int64
			fill   string
			name   string
		}{
			{t.Unmarked, "#e08214", "unmarked wait"},
			{t.Marked, "#b2182b", "marked wait"},
			{t.Service, "#4393c3", "service"},
		} {
			w := dashBarW * float64(seg.cycles) / float64(maxTotal)
			if seg.cycles > 0 {
				bar.Segs = append(bar.Segs, rect{
					X: x, Y: y, W: w, H: dashBarH, Fill: seg.fill,
					Title: fmt.Sprintf("t%d %s: %d cycles", t.Thread, seg.name, seg.cycles),
				})
			}
			x += w
		}
		v.ThreadBars = append(v.ThreadBars, bar)
	}
	v.BarsH = float64(len(r.Threads)) * dashRowPitch

	// Busy% timeline: one bar per window.
	n := len(r.Windows)
	cellW := min(max(900.0/float64(max(n, 1)), 2), 28)
	v.TimelineW = cellW * float64(n)
	v.TimelineH = dashTimeline
	for i, win := range r.Windows {
		span := win.End - win.Start
		busy := 0.0
		if span > 0 {
			busy = float64(win.BusyCycles) / float64(span)
		}
		h := busy * dashTimeline
		v.BusyBars = append(v.BusyBars, rect{
			X: float64(i) * cellW, Y: dashTimeline - h, W: max(cellW-1, 1), H: h, Fill: "#4393c3",
			Title: fmt.Sprintf("window %d [%d,%d): busy %.1f%%, %d commands, %d arrivals, %d done",
				win.Index, win.Start, win.End, 100*busy, win.Commands, win.Arrivals, win.Completions),
		})
	}

	// Bank×window wait heatmap on a shared intensity scale.
	banks := 0
	if n > 0 {
		banks = len(r.Windows[0].Banks)
	}
	var maxWait int64 = 1
	for _, win := range r.Windows {
		for _, b := range win.Banks {
			if b.Wait > maxWait {
				maxWait = b.Wait
			}
		}
	}
	v.HeatW = cellW * float64(n)
	v.HeatH = dashCellH * float64(banks)
	for bi := 0; bi < banks; bi++ {
		label := "b" + fmt.Sprint(bi)
		if bi < len(r.Banks) {
			label = r.Banks[bi].Label
		}
		v.HeatLabels = append(v.HeatLabels, labelAt{
			X: -6, Y: float64(bi)*dashCellH + dashCellH - 4, Text: label,
		})
		for wi, win := range r.Windows {
			b := win.Banks[bi]
			v.HeatCells = append(v.HeatCells, rect{
				X: float64(wi) * cellW, Y: float64(bi) * dashCellH,
				W: cellW, H: dashCellH, Fill: heatFill(float64(b.Wait) / float64(maxWait)),
				Title: fmt.Sprintf("%s window %d: wait %d cycles, depth %.2f, %d commands",
					label, win.Index, b.Wait, b.QueueDepth, b.Commands),
			})
		}
	}

	var spanSum int64
	for _, b := range r.Batches {
		if b.Drained >= 0 {
			v.BatchesDrained++
			spanSum += b.Drained - b.Formed
		}
	}
	if v.BatchesDrained > 0 {
		v.BatchAvgSpan = float64(spanSum) / float64(v.BatchesDrained)
	}
	return v
}

var dashTmpl = template.Must(template.New("dashboard").Funcs(template.FuncMap{
	"f":   func(x float64) string { return fmt.Sprintf("%.1f", x) },
	"add": func(a, b float64) string { return fmt.Sprintf("%.1f", a+b) },
}).Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
{{if gt .RefreshSeconds 0}}<meta http-equiv="refresh" content="{{.RefreshSeconds}}">
{{end}}<title>trace analysis {{.ID}}{{if .Live}} (live){{end}} — {{.R.Meta.Policy}}</title>
<style>
  body { font: 14px/1.5 system-ui, sans-serif; margin: 2rem auto; max-width: 1080px; color: #1a1a1a; padding: 0 1rem; }
  h1 { font-size: 1.3rem; } h2 { font-size: 1.05rem; margin-top: 2rem; }
  table { border-collapse: collapse; margin: .5rem 0; }
  th, td { padding: .2rem .7rem; text-align: right; border-bottom: 1px solid #ddd; }
  th { font-weight: 600; } td:first-child, th:first-child { text-align: left; }
  .meta { color: #555; }
  .warn { background: #fff3cd; border: 1px solid #e0c060; padding: .5rem .8rem; border-radius: 4px; }
  .legend span { display: inline-block; margin-right: 1.2rem; }
  .swatch { display: inline-block; width: .8em; height: .8em; margin-right: .35em; vertical-align: -.05em; }
  svg text { font: 11px system-ui, sans-serif; fill: #444; }
</style>
</head>
<body>
<h1>Trace analysis {{.ID}}{{if .Live}} <span class="meta">(live)</span>{{end}}</h1>
<p class="meta">policy {{.R.Meta.Policy}} · workload {{.R.Meta.Workload}} · {{.R.Meta.Cores}} cores ·
{{.R.Meta.Banks}} banks{{if gt .R.Meta.Channels 1}} · {{.R.Meta.Channels}} channels{{end}} ·
marking cap {{.R.Meta.MarkingCap}} · {{.R.Events}} events ·
span [0, {{.R.SpanEnd}}) DRAM cycles · {{len .R.Windows}} × {{.R.WindowCycles}}-cycle windows ·
{{.R.Requests}} reads completed, {{.R.InFlight}} in flight</p>
{{if gt .R.Dropped 0}}<p class="warn">Data loss: {{.R.Dropped}} events dropped at record time (tracer buffer cap) — figures cover the recorded prefix only.</p>{{end}}
{{if .R.IngestTruncated}}<p class="warn">Data loss: trace stream truncated during ingest (torn tail or malformed line) — figures cover the parseable prefix only.</p>{{end}}
{{if .Live}}<p class="meta">Live view: aggregates cover the trace prefix received so far{{if gt .RefreshSeconds 0}}; this page refreshes every {{.RefreshSeconds}}&#8201;s until the run completes{{end}}.</p>{{end}}

<h2>Bottleneck attribution (whole span)</h2>
<table>
<tr><th>#</th><th>bank</th><th>wait cycles</th><th>thread</th><th>wait cycles</th></tr>
{{range .AttrRows}}<tr><td>{{.Rank}}</td><td>{{.Bank}}</td><td>{{.BankCycles}}</td><td>{{.Thread}}</td><td>{{.ThreadCycles}}</td></tr>
{{end}}</table>

<h2>Per-thread wait decomposition</h2>
<p class="legend">
<span><span class="swatch" style="background:#e08214"></span>unmarked wait</span>
<span><span class="swatch" style="background:#b2182b"></span>marked wait</span>
<span><span class="swatch" style="background:#4393c3"></span>service</span>
</p>
<svg width="{{add .BarsW 180}}" height="{{f .BarsH}}" role="img" aria-label="per-thread wait decomposition">
<g transform="translate(40,0)">
{{range .ThreadBars}}<text x="-34" y="{{f .TextY}}">{{.Label}}</text>
{{range .Segs}}<rect x="{{f .X}}" y="{{f .Y}}" width="{{f .W}}" height="{{f .H}}" fill="{{.Fill}}"><title>{{.Title}}</title></rect>
{{end}}<text x="{{f .TotalX}}" y="{{f .TextY}}">{{.Total}} cy</text>
{{end}}</g>
</svg>

<h2>Latency percentiles (cycles, nearest-rank)</h2>
<p class="meta">all reads: p50 {{.R.LatencyPct.P50}} · p90 {{.R.LatencyPct.P90}} · p99 {{.R.LatencyPct.P99}}</p>
<table>
<tr><th>thread</th><th>lat p50</th><th>lat p90</th><th>lat p99</th><th>wait p50</th><th>wait p90</th><th>wait p99</th></tr>
{{range .PctRows}}<tr><td>{{.Label}}</td><td>{{.Lat.P50}}</td><td>{{.Lat.P90}}</td><td>{{.Lat.P99}}</td><td>{{.Wait.P50}}</td><td>{{.Wait.P90}}</td><td>{{.Wait.P99}}</td></tr>
{{end}}</table>

<h2>Bus busy per window</h2>
<svg width="{{add .TimelineW 40}}" height="{{add .TimelineH 20}}" role="img" aria-label="bus busy timeline">
<g transform="translate(20,4)">
<line x1="0" y1="{{f .TimelineH}}" x2="{{f .TimelineW}}" y2="{{f .TimelineH}}" stroke="#999"/>
{{range .BusyBars}}<rect x="{{f .X}}" y="{{f .Y}}" width="{{f .W}}" height="{{f .H}}" fill="{{.Fill}}"><title>{{.Title}}</title></rect>
{{end}}</g>
</svg>

<h2>Queued wait by bank and window</h2>
<svg width="{{add .HeatW 70}}" height="{{add .HeatH 10}}" role="img" aria-label="bank wait heatmap">
<g transform="translate(60,4)">
{{range .HeatCells}}<rect x="{{f .X}}" y="{{f .Y}}" width="{{f .W}}" height="{{f .H}}" fill="{{.Fill}}" stroke="#fff" stroke-width="0.5"><title>{{.Title}}</title></rect>
{{end}}{{range .HeatLabels}}<text x="{{f .X}}" y="{{f .Y}}" text-anchor="end">{{.Text}}</text>
{{end}}</g>
</svg>

<h2>Batches</h2>
<p>{{len .R.Batches}} formed, {{.BatchesDrained}} drained{{if gt .BatchesDrained 0}} (average formation→drain span {{printf "%.0f" .BatchAvgSpan}} cycles){{end}}.</p>

{{if .Live}}<p class="meta">Streams: <a href="/v1/analysis/{{.ID}}/live">live SSE reports</a></p>
{{else}}<p class="meta">Renderings: <a href="/v1/analysis/{{.ID}}">JSON</a> ·
<a href="/v1/analysis/{{.ID}}/report">text report</a> ·
<a href="/v1/analysis/{{.ID}}/snapshot">binary snapshot</a></p>
{{end}}
</body>
</html>
`))

func (s *Server) handleAnalysisDashboard(w http.ResponseWriter, r *http.Request) {
	e, ok := s.analysisEntry(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	dashTmpl.Execute(w, buildDashView(e.id, e.report))
}

// diffBarRow is one thread's side-by-side wait decomposition: the A arm's
// bar stacked directly above the B arm's, on one shared scale.
type diffBarRow struct {
	Label        string
	TextY        float64
	SegsA, SegsB []rect
	TotalA       int64
	TotalB       int64
	TotalAY      float64
	TotalBY      float64
}

// diffThreadRow is one line of the diff dashboard's thread table.
type diffThreadRow struct {
	Thread                              int
	WaitA, WaitB, DWait                 int64
	DUnmarked, DLatencyP50, DLatencyP99 int64
}

// diffDashView is everything the diff dashboard template consumes.
type diffDashView struct {
	ID string
	D  *analysis.DiffReport

	ThreadRows []diffThreadRow
	BarRows    []diffBarRow
	BarsW      float64
	BarsH      float64
}

func buildDiffDashView(id string, d *analysis.DiffReport) *diffDashView {
	v := &diffDashView{ID: id, D: d, BarsW: dashBarW}

	var maxTotal int64 = 1
	for _, td := range d.Threads {
		if tot := td.A.Wait + td.A.Service; tot > maxTotal {
			maxTotal = tot
		}
		if tot := td.B.Wait + td.B.Service; tot > maxTotal {
			maxTotal = tot
		}
	}
	const pairPitch = 2*dashBarH + 16
	for i, td := range d.Threads {
		v.ThreadRows = append(v.ThreadRows, diffThreadRow{
			Thread: td.Thread, WaitA: td.A.Wait, WaitB: td.B.Wait, DWait: td.DWait,
			DUnmarked: td.DUnmarked, DLatencyP50: td.DLatencyP50, DLatencyP99: td.DLatencyP99,
		})
		y := float64(i) * pairPitch
		row := diffBarRow{
			Label: fmt.Sprintf("t%d", td.Thread), TextY: y + dashBarH + 4,
			TotalA: td.A.Wait + td.A.Service, TotalAY: y + 16,
			TotalB: td.B.Wait + td.B.Service, TotalBY: y + dashBarH + 18,
		}
		bar := func(tt analysis.ThreadTotals, arm string, barY float64) []rect {
			var segs []rect
			x := 0.0
			for _, seg := range []struct {
				cycles int64
				fill   string
				name   string
			}{
				{tt.Unmarked, "#e08214", "unmarked wait"},
				{tt.Marked, "#b2182b", "marked wait"},
				{tt.Service, "#4393c3", "service"},
			} {
				w := dashBarW * float64(seg.cycles) / float64(maxTotal)
				if seg.cycles > 0 {
					segs = append(segs, rect{
						X: x, Y: barY, W: w, H: dashBarH - 2, Fill: seg.fill,
						Title: fmt.Sprintf("t%d %s %s: %d cycles", td.Thread, arm, seg.name, seg.cycles),
					})
				}
				x += w
			}
			return segs
		}
		row.SegsA = bar(td.A, "A", y)
		row.SegsB = bar(td.B, "B", y+dashBarH)
		v.BarRows = append(v.BarRows, row)
	}
	v.BarsH = float64(len(d.Threads)) * pairPitch
	return v
}

var diffTmpl = template.Must(template.New("diff").Funcs(template.FuncMap{
	"f":   func(x float64) string { return fmt.Sprintf("%.1f", x) },
	"add": func(a, b float64) string { return fmt.Sprintf("%.1f", a+b) },
	"f3":  func(x float64) string { return fmt.Sprintf("%.3f", x) },
}).Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>analysis diff {{.ID}} — {{.D.A.Meta.Policy}} vs {{.D.B.Meta.Policy}}</title>
<style>
  body { font: 14px/1.5 system-ui, sans-serif; margin: 2rem auto; max-width: 1080px; color: #1a1a1a; padding: 0 1rem; }
  h1 { font-size: 1.3rem; } h2 { font-size: 1.05rem; margin-top: 2rem; }
  table { border-collapse: collapse; margin: .5rem 0; }
  th, td { padding: .2rem .7rem; text-align: right; border-bottom: 1px solid #ddd; }
  th { font-weight: 600; } td:first-child, th:first-child { text-align: left; }
  .meta { color: #555; }
  .warn { background: #fff3cd; border: 1px solid #e0c060; padding: .5rem .8rem; border-radius: 4px; }
  .legend span { display: inline-block; margin-right: 1.2rem; }
  .swatch { display: inline-block; width: .8em; height: .8em; margin-right: .35em; vertical-align: -.05em; }
  svg text { font: 11px system-ui, sans-serif; fill: #444; }
</style>
</head>
<body>
<h1>Analysis diff {{.ID}}: A={{.D.A.Meta.Policy}} vs B={{.D.B.Meta.Policy}}</h1>
<p class="meta">deltas are B−A · workload {{.D.A.Meta.Workload}} ·
span A {{.D.A.SpanEnd}} / B {{.D.B.SpanEnd}} cycles · window {{.D.WindowCycles}} cycles ·
batches A {{.D.Batches.BatchesA}} / B {{.D.Batches.BatchesB}}</p>
{{range .D.Mismatches}}<p class="warn">MISMATCH {{.}}</p>
{{end}}{{if .D.A.Truncated}}<p class="warn">Arm A is truncated — deltas cover its recorded prefix only.</p>{{end}}
{{if .D.B.Truncated}}<p class="warn">Arm B is truncated — deltas cover its recorded prefix only.</p>{{end}}

<h2>Unfairness (p50 latency max/min)</h2>
<p>A {{f3 .D.UnfairnessA}} → B {{f3 .D.UnfairnessB}} ({{printf "%+.3f" .D.UnfairnessDelta}})</p>

<h2>Per-thread wait, side by side</h2>
<p class="legend">
<span><span class="swatch" style="background:#e08214"></span>unmarked wait</span>
<span><span class="swatch" style="background:#b2182b"></span>marked wait</span>
<span><span class="swatch" style="background:#4393c3"></span>service</span>
<span>top bar = A, bottom bar = B</span>
</p>
<svg width="{{add .BarsW 200}}" height="{{f .BarsH}}" role="img" aria-label="per-thread wait, A above B">
<g transform="translate(40,0)">
{{range .BarRows}}<text x="-34" y="{{f .TextY}}">{{.Label}}</text>
{{range .SegsA}}<rect x="{{f .X}}" y="{{f .Y}}" width="{{f .W}}" height="{{f .H}}" fill="{{.Fill}}"><title>{{.Title}}</title></rect>
{{end}}{{range .SegsB}}<rect x="{{f .X}}" y="{{f .Y}}" width="{{f .W}}" height="{{f .H}}" fill="{{.Fill}}"><title>{{.Title}}</title></rect>
{{end}}<text x="{{add $.BarsW 8}}" y="{{f .TotalAY}}">A {{.TotalA}} cy</text>
<text x="{{add $.BarsW 8}}" y="{{f .TotalBY}}">B {{.TotalB}} cy</text>
{{end}}</g>
</svg>

<h2>Thread deltas</h2>
<table>
<tr><th>thread</th><th>waitA</th><th>waitB</th><th>dWait</th><th>dUnmarked</th><th>dLat p50</th><th>dLat p99</th></tr>
{{range .ThreadRows}}<tr><td>t{{.Thread}}</td><td>{{.WaitA}}</td><td>{{.WaitB}}</td><td>{{printf "%+d" .DWait}}</td><td>{{printf "%+d" .DUnmarked}}</td><td>{{printf "%+d" .DLatencyP50}}</td><td>{{printf "%+d" .DLatencyP99}}</td></tr>
{{end}}</table>

<p class="meta">Renderings: <a href="/v1/diffs/{{.ID}}">JSON</a> ·
<a href="/v1/diffs/{{.ID}}/report">text report</a></p>
</body>
</html>
`))

func (s *Server) handleDiffDashboard(w http.ResponseWriter, r *http.Request) {
	e, ok := s.diffEntry(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	diffTmpl.Execute(w, buildDiffDashView(e.id, e.report))
}
