package serve

import (
	"context"
	"encoding/json"
	"fmt"

	parbs "repro"
)

// Sink receives a running job's observability streams. Either hook may be
// nil; both are invoked synchronously from the simulation goroutine, so
// they must be fast and must not block.
type Sink struct {
	// Progress receives heartbeat snapshots (SSE /events, occupancy gauges).
	Progress func(parbs.Progress)
	// TraceChunk receives incremental parbs.trace/v1 JSONL: each call
	// carries the bytes recorded since the previous one (header line
	// first). Concatenated chunks form a valid prefix of the run's trace —
	// the live-analysis endpoint ingests them as they arrive.
	TraceChunk func([]byte)
}

// Runner executes one validated job spec. The default is SimulationRunner;
// tests substitute stubs to make scheduling behavior observable without
// paying for real simulations.
type Runner func(ctx context.Context, spec Spec, sink Sink) (*Result, error)

// reportJSON is the wire form of a parbs.Report, embedded in run results.
type reportJSON struct {
	Scheduler        string             `json:"scheduler"`
	Unfairness       float64            `json:"unfairness"`
	WeightedSpeedup  float64            `json:"weighted_speedup"`
	HmeanSpeedup     float64            `json:"hmean_speedup"`
	WorstCaseLatency int64              `json:"worst_case_latency"`
	BusUtilization   float64            `json:"bus_utilization"`
	Threads          []threadReportJSON `json:"threads"`
}

type threadReportJSON struct {
	Benchmark   string  `json:"benchmark"`
	MemSlowdown float64 `json:"mem_slowdown"`
	IPC         float64 `json:"ipc"`
	BLP         float64 `json:"blp"`
	RowHitRate  float64 `json:"row_hit_rate"`
	ASTPerReq   float64 `json:"ast_per_req"`
}

func marshalReport(rep parbs.Report) (json.RawMessage, error) {
	out := reportJSON{
		Scheduler:        rep.Scheduler,
		Unfairness:       rep.Unfairness,
		WeightedSpeedup:  rep.WeightedSpeedup,
		HmeanSpeedup:     rep.HmeanSpeedup,
		WorstCaseLatency: rep.WorstCaseLatency,
		BusUtilization:   rep.BusUtilization,
	}
	for _, t := range rep.Threads {
		out.Threads = append(out.Threads, threadReportJSON{
			Benchmark:   t.Benchmark,
			MemSlowdown: t.MemSlowdown,
			IPC:         t.IPC,
			BLP:         t.BLP,
			RowHitRate:  t.RowHitRate,
			ASTPerReq:   t.ASTPerReq,
		})
	}
	return json.Marshal(out)
}

// SimulationRunner returns the production Runner: it lowers the spec onto
// the public parbs API and executes it under the job's context, sharing
// alone-run baselines across jobs through cache (identical system shapes
// skip the baseline simulations entirely).
func SimulationRunner(cache *parbs.AloneCache) Runner {
	return func(ctx context.Context, spec Spec, sink Sink) (*Result, error) {
		w, err := spec.workload()
		if err != nil {
			return nil, err
		}
		sched, err := spec.scheduler()
		if err != nil {
			return nil, err
		}
		opts := []parbs.RunOption{parbs.WithParallelism(spec.System.Parallelism)}
		if cache != nil {
			opts = append(opts, parbs.WithAloneCache(cache))
		}
		var tel *parbs.Telemetry
		if spec.Telemetry != nil {
			tel = parbs.NewTelemetry(parbs.TelemetryConfig{
				EpochCycles: spec.Telemetry.EpochCycles,
				MaxEpochs:   spec.Telemetry.MaxEpochs,
			})
			opts = append(opts, parbs.WithTelemetry(tel))
		}
		var tracer *parbs.Tracer
		var stream *parbs.TraceStream
		if spec.Trace != nil {
			tracer = parbs.NewTracer(parbs.TracerConfig{MaxEvents: spec.Trace.MaxEvents})
			opts = append(opts, parbs.WithTrace(tracer))
			if spec.Trace.Events && sink.TraceChunk != nil {
				stream = tracer.Stream()
			}
		}
		// Progress callbacks fire synchronously on the simulation goroutine,
		// which is the one place a mid-run trace flush is race-free.
		if sink.Progress != nil || stream != nil {
			opts = append(opts, parbs.WithProgress(func(p parbs.Progress) {
				if sink.Progress != nil {
					sink.Progress(p)
				}
				if stream != nil {
					if chunk, err := stream.Flush(); err == nil && chunk != nil {
						sink.TraceChunk(chunk)
					}
				}
			}))
		}
		rep, err := parbs.RunContext(ctx, spec.system(), w, sched, opts...)
		if err != nil {
			return nil, err
		}
		if stream != nil {
			// Final flush after the run: everything the last progress
			// heartbeat had not yet seen (sharded runs deliver all their
			// events here, after the shard merge).
			if chunk, err := stream.Flush(); err == nil && chunk != nil {
				sink.TraceChunk(chunk)
			}
		}
		res := &Result{}
		if res.Report, err = marshalReport(rep); err != nil {
			return nil, fmt.Errorf("marshal report: %w", err)
		}
		if tel != nil {
			if res.Telemetry, err = tel.JSON(); err != nil {
				return nil, fmt.Errorf("render telemetry: %w", err)
			}
		}
		if tracer != nil {
			if res.Trace, err = tracer.ChromeTrace(); err != nil {
				return nil, fmt.Errorf("render trace: %w", err)
			}
			if spec.Trace.Events {
				if res.TraceEvents, err = tracer.EventsJSONL(); err != nil {
					return nil, fmt.Errorf("render trace events: %w", err)
				}
			}
		}
		return res, nil
	}
}
