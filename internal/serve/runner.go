package serve

import (
	"context"
	"encoding/json"
	"fmt"

	parbs "repro"
)

// Runner executes one validated job spec. The default is SimulationRunner;
// tests substitute stubs to make scheduling behavior observable without
// paying for real simulations.
type Runner func(ctx context.Context, spec Spec, progress func(parbs.Progress)) (*Result, error)

// reportJSON is the wire form of a parbs.Report, embedded in run results.
type reportJSON struct {
	Scheduler        string             `json:"scheduler"`
	Unfairness       float64            `json:"unfairness"`
	WeightedSpeedup  float64            `json:"weighted_speedup"`
	HmeanSpeedup     float64            `json:"hmean_speedup"`
	WorstCaseLatency int64              `json:"worst_case_latency"`
	BusUtilization   float64            `json:"bus_utilization"`
	Threads          []threadReportJSON `json:"threads"`
}

type threadReportJSON struct {
	Benchmark   string  `json:"benchmark"`
	MemSlowdown float64 `json:"mem_slowdown"`
	IPC         float64 `json:"ipc"`
	BLP         float64 `json:"blp"`
	RowHitRate  float64 `json:"row_hit_rate"`
	ASTPerReq   float64 `json:"ast_per_req"`
}

func marshalReport(rep parbs.Report) (json.RawMessage, error) {
	out := reportJSON{
		Scheduler:        rep.Scheduler,
		Unfairness:       rep.Unfairness,
		WeightedSpeedup:  rep.WeightedSpeedup,
		HmeanSpeedup:     rep.HmeanSpeedup,
		WorstCaseLatency: rep.WorstCaseLatency,
		BusUtilization:   rep.BusUtilization,
	}
	for _, t := range rep.Threads {
		out.Threads = append(out.Threads, threadReportJSON{
			Benchmark:   t.Benchmark,
			MemSlowdown: t.MemSlowdown,
			IPC:         t.IPC,
			BLP:         t.BLP,
			RowHitRate:  t.RowHitRate,
			ASTPerReq:   t.ASTPerReq,
		})
	}
	return json.Marshal(out)
}

// SimulationRunner returns the production Runner: it lowers the spec onto
// the public parbs API and executes it under the job's context, sharing
// alone-run baselines across jobs through cache (identical system shapes
// skip the baseline simulations entirely).
func SimulationRunner(cache *parbs.AloneCache) Runner {
	return func(ctx context.Context, spec Spec, progress func(parbs.Progress)) (*Result, error) {
		w, err := spec.workload()
		if err != nil {
			return nil, err
		}
		sched, err := spec.scheduler()
		if err != nil {
			return nil, err
		}
		opts := []parbs.RunOption{parbs.WithParallelism(spec.System.Parallelism)}
		if cache != nil {
			opts = append(opts, parbs.WithAloneCache(cache))
		}
		if progress != nil {
			opts = append(opts, parbs.WithProgress(progress))
		}
		var tel *parbs.Telemetry
		if spec.Telemetry != nil {
			tel = parbs.NewTelemetry(parbs.TelemetryConfig{
				EpochCycles: spec.Telemetry.EpochCycles,
				MaxEpochs:   spec.Telemetry.MaxEpochs,
			})
			opts = append(opts, parbs.WithTelemetry(tel))
		}
		var tracer *parbs.Tracer
		if spec.Trace != nil {
			tracer = parbs.NewTracer(parbs.TracerConfig{MaxEvents: spec.Trace.MaxEvents})
			opts = append(opts, parbs.WithTrace(tracer))
		}
		rep, err := parbs.RunContext(ctx, spec.system(), w, sched, opts...)
		if err != nil {
			return nil, err
		}
		res := &Result{}
		if res.Report, err = marshalReport(rep); err != nil {
			return nil, fmt.Errorf("marshal report: %w", err)
		}
		if tel != nil {
			if res.Telemetry, err = tel.JSON(); err != nil {
				return nil, fmt.Errorf("render telemetry: %w", err)
			}
		}
		if tracer != nil {
			if res.Trace, err = tracer.ChromeTrace(); err != nil {
				return nil, fmt.Errorf("render trace: %w", err)
			}
			if spec.Trace.Events {
				if res.TraceEvents, err = tracer.EventsJSONL(); err != nil {
					return nil, fmt.Errorf("render trace events: %w", err)
				}
			}
		}
		return res, nil
	}
}
