package trace

import (
	"fmt"
	"io"
	"sort"
)

// The forensics analyzer folds an event log into per-request wait
// decomposition, per-thread worst-case latencies, and the starvation
// audit. Each completed request's latency splits into three phases:
//
//	unmarked-queued: arrival → marked into a batch (or first command,
//	                 for policies that never mark)
//	marked-waiting:  marked → first DRAM command issued on its behalf
//	service:         first command → data return
//
// The audit checks the paper's §4.3 starvation-freedom argument against
// observation: under batching with Marking-Cap C and a request buffer of
// R entries per bank, a newly arrived request is marked no later than the
// next batch formation and a thread can have at most ceil(R/C)-1 older
// batches' worth of same-bank requests ahead of it, so no request waits
// more than ceil(R/C) batch formations before being marked and serviced.
// The analyzer verifies the structural form of the bound — the maximum
// number of batch formations any request sat through — and derives an
// empirical cycle envelope from the observed worst batch span.

// ThreadForensics aggregates the wait decomposition for one thread's
// completed read requests (writes are fire-and-forget and excluded).
type ThreadForensics struct {
	Thread int
	// Reads is the number of completed reads folded in.
	Reads int64
	// AvgLatency is the mean arrival→return latency in DRAM cycles.
	AvgLatency float64
	// MaxLatency is the worst observed latency; MaxLatencyReq its request.
	MaxLatency    int64
	MaxLatencyReq int64
	// UnmarkedWait, MarkedWait, and Service are summed phase durations
	// across the thread's reads (divide by Reads for means).
	UnmarkedWait int64
	MarkedWait   int64
	Service      int64
	// MaxBatchesWaited is the most batch formations any one of the
	// thread's requests observed between arriving and being marked.
	MaxBatchesWaited int64
}

// Audit is the starvation audit verdict.
type Audit struct {
	// Batched reports whether the traced policy formed batches at all.
	// When false, the policy provides no delay bound and Holds is false.
	Batched    bool
	MarkingCap int
	ReadBuf    int
	// BatchWaitBound is ceil(ReadBuf/MarkingCap)-1: the §4.3 bound on how
	// many batch formations can pass a buffered request over before it is
	// marked. -1 when inapplicable (no cap, or unbatched policy).
	BatchWaitBound int64
	// MaxBatchesWaited is the observed worst case across all requests.
	MaxBatchesWaited int64
	// BatchWaitOK reports MaxBatchesWaited <= BatchWaitBound.
	BatchWaitOK bool
	// DelayBoundCycles is the empirical cycle envelope implied by the
	// batch-wait bound and the worst observed batch span:
	// (BatchWaitBound+2) * MaxBatchSpan — the +2 covers the residual of
	// the batch in flight at arrival plus the request's own batch's
	// drain. -1 when inapplicable.
	DelayBoundCycles int64
	// MaxDelayCycles is the worst observed request latency, with the
	// offending thread and request alongside.
	MaxDelayCycles int64
	MaxDelayThread int
	MaxDelayReq    int64
	// DelayOK reports MaxDelayCycles <= DelayBoundCycles.
	DelayOK bool
	// Holds is the overall verdict: batched, bound applicable, and both
	// checks passed.
	Holds bool
}

// Analysis is the analyzer's output.
type Analysis struct {
	Meta Meta
	// Truncated reports that the log is an incomplete prefix of the run —
	// the tracer's buffer filled (Dropped > 0) or the stream itself was cut.
	// The numbers below then under-report the full run honestly: they cover
	// exactly the recorded prefix, and the starvation audit's observed
	// maxima are lower bounds.
	Truncated bool
	// Dropped is the event count the tracer discarded after its buffer
	// filled (from the log header).
	Dropped  int64
	Requests int64
	Threads  []ThreadForensics
	// Batches counts batch formations; MaxBatchSpan and AvgBatchSpan
	// summarize formation→drain durations (0 when drains are untraced).
	Batches      int64
	MaxBatchSpan int64
	AvgBatchSpan float64
	Audit        Audit
}

// reqState tracks one in-flight request during the scan.
type reqState struct {
	arrival      int64
	marked       int64 // -1 until marked
	firstCmd     int64 // -1 until a command issues for it
	arrivalBatch int64 // batches formed before arrival
	markedBatch  int64 // batches formed when marked
	write        bool
}

// Analyze folds the log into forensics and the starvation audit. The scan
// relies on the stream's faithful interleaving of arrivals, marks, and
// batch formations (the controller emits arrival before the policy can
// mark, and batch events sit at their true position), so batches-waited
// counts are exact.
func Analyze(log *Log) *Analysis {
	a := &Analysis{Meta: log.Meta, Dropped: log.Dropped, Truncated: log.Dropped > 0}
	live := make(map[int64]*reqState)
	perThread := make(map[int32]*ThreadForensics)
	th := func(id int32) *ThreadForensics {
		t := perThread[id]
		if t == nil {
			t = &ThreadForensics{Thread: int(id)}
			perThread[id] = t
		}
		return t
	}

	var batchesFormed int64
	var spanSum, spanCount int64
	var maxBatchesWaited int64
	audit := &a.Audit
	audit.MaxDelayThread = -1
	audit.MaxDelayReq = -1

	for _, ev := range log.Events {
		switch ev.Kind {
		case KindArrive:
			live[ev.Req] = &reqState{arrival: ev.Cycle, marked: -1,
				firstCmd: -1, arrivalBatch: batchesFormed, write: ev.Write}
		case KindMark:
			if r := live[ev.Req]; r != nil && r.marked < 0 {
				r.marked = ev.Cycle
				r.markedBatch = batchesFormed
			}
		case KindBatch:
			batchesFormed++
		case KindBatchEnd:
			spanSum += ev.Row
			spanCount++
			if ev.Row > a.MaxBatchSpan {
				a.MaxBatchSpan = ev.Row
			}
		case KindCommand:
			if r := live[ev.Req]; r != nil && r.firstCmd < 0 {
				r.firstCmd = ev.Cycle
			}
		case KindComplete:
			r := live[ev.Req]
			if r == nil {
				continue // pre-trace arrival
			}
			delete(live, ev.Req)
			if r.write {
				continue
			}
			t := th(ev.Thread)
			t.Reads++
			a.Requests++
			lat := ev.Row
			t.AvgLatency += float64(lat)
			if lat > t.MaxLatency {
				t.MaxLatency = lat
				t.MaxLatencyReq = ev.Req
			}
			if lat > audit.MaxDelayCycles {
				audit.MaxDelayCycles = lat
				audit.MaxDelayThread = int(ev.Thread)
				audit.MaxDelayReq = ev.Req
			}
			markEnd := r.firstCmd
			if markEnd < 0 {
				markEnd = ev.Cycle
			}
			if r.marked >= 0 {
				if markEnd >= r.marked {
					t.UnmarkedWait += r.marked - r.arrival
					t.MarkedWait += markEnd - r.marked
				} else {
					// Serviced before its mark: an unmarked request issued
					// while its bank had no marked candidate, then swept into
					// a batch mid-flight. Its whole pre-command wait was
					// spent unmarked.
					t.UnmarkedWait += markEnd - r.arrival
				}
				waited := r.markedBatch - r.arrivalBatch
				if waited > t.MaxBatchesWaited {
					t.MaxBatchesWaited = waited
				}
				if waited > maxBatchesWaited {
					maxBatchesWaited = waited
				}
			} else {
				t.UnmarkedWait += markEnd - r.arrival
			}
			t.Service += ev.Cycle - markEnd
		}
	}

	for _, t := range perThread {
		if t.Reads > 0 {
			t.AvgLatency /= float64(t.Reads)
		}
		a.Threads = append(a.Threads, *t)
	}
	sort.Slice(a.Threads, func(i, j int) bool { return a.Threads[i].Thread < a.Threads[j].Thread })

	a.Batches = batchesFormed
	if spanCount > 0 {
		a.AvgBatchSpan = float64(spanSum) / float64(spanCount)
	}

	audit.MarkingCap = log.Meta.MarkingCap
	audit.ReadBuf = log.Meta.ReadBufEntries
	audit.Batched = batchesFormed > 0
	audit.MaxBatchesWaited = maxBatchesWaited
	audit.BatchWaitBound = -1
	audit.DelayBoundCycles = -1
	if audit.Batched && audit.MarkingCap > 0 && audit.ReadBuf > 0 {
		// ceil(ReadBuf/Cap)-1: even the newest of a full buffer of
		// same-thread same-bank requests is passed over by at most that
		// many batch formations before being marked (§4.3).
		audit.BatchWaitBound = int64((audit.ReadBuf+audit.MarkingCap-1)/audit.MarkingCap) - 1
		if audit.BatchWaitBound < 0 {
			audit.BatchWaitBound = 0
		}
		audit.BatchWaitOK = audit.MaxBatchesWaited <= audit.BatchWaitBound
		if a.MaxBatchSpan > 0 {
			audit.DelayBoundCycles = (audit.BatchWaitBound + 2) * a.MaxBatchSpan
			audit.DelayOK = audit.MaxDelayCycles <= audit.DelayBoundCycles
			audit.Holds = audit.BatchWaitOK && audit.DelayOK
		} else {
			// Drain spans untraced (static batching): only the structural
			// bound is checkable.
			audit.Holds = audit.BatchWaitOK
		}
	}
	return a
}

// WriteText renders the analysis as a human-readable report. The final
// line is "starvation audit: PASS" or "starvation audit: FAIL ..." —
// greppable by the trace-smoke script.
func (a *Analysis) WriteText(w io.Writer) error {
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }
	p("run: policy=%s workload=%s cores=%d banks=%d marking_cap=%d read_buf=%d\n",
		a.Meta.Policy, a.Meta.Workload, a.Meta.Cores, a.Meta.Banks,
		a.Meta.MarkingCap, a.Meta.ReadBufEntries)
	if a.Truncated {
		p("NOTE: log is truncated (%d events dropped at record time); figures cover the recorded prefix only\n", a.Dropped)
	}
	p("requests analyzed: %d completed reads; batches formed: %d", a.Requests, a.Batches)
	if a.MaxBatchSpan > 0 {
		p(" (avg span %.0f cycles, max %d)", a.AvgBatchSpan, a.MaxBatchSpan)
	}
	p("\n\n")
	p("per-thread wait decomposition (DRAM cycles, means over completed reads):\n")
	p("  thread    reads  avg_lat  unmarked    marked   service   max_lat  max_req  batches_waited\n")
	for _, t := range a.Threads {
		n := float64(t.Reads)
		if n == 0 {
			n = 1
		}
		p("  %6d %8d %8.0f %9.0f %9.0f %9.0f %9d %8d %15d\n",
			t.Thread, t.Reads, t.AvgLatency,
			float64(t.UnmarkedWait)/n, float64(t.MarkedWait)/n,
			float64(t.Service)/n, t.MaxLatency, t.MaxLatencyReq, t.MaxBatchesWaited)
	}
	p("\n")
	au := &a.Audit
	if !au.Batched {
		p("starvation audit: policy %q formed no batches — it provides no Marking-Cap\n", a.Meta.Policy)
		p("delay bound; worst observed delay %d cycles (thread %d, request %d) is unbounded by design.\n",
			au.MaxDelayCycles, au.MaxDelayThread, au.MaxDelayReq)
		p("starvation audit: FAIL (no bound to audit)\n")
		return nil
	}
	if au.BatchWaitBound < 0 {
		p("starvation audit: batching active but Marking-Cap is uncapped; no finite bound to audit.\n")
		p("starvation audit: FAIL (no bound to audit)\n")
		return nil
	}
	p("starvation audit (Marking-Cap bound, paper §4.3):\n")
	p("  batch-wait bound   ceil(%d/%d)-1 = %d batch formations\n", au.ReadBuf, au.MarkingCap, au.BatchWaitBound)
	p("  observed worst     %d batch formations  [%s]\n", au.MaxBatchesWaited, okFail(au.BatchWaitOK))
	if au.DelayBoundCycles >= 0 {
		p("  delay envelope     (bound+2) x max batch span = %d cycles\n", au.DelayBoundCycles)
		p("  observed worst     %d cycles (thread %d, request %d)  [%s]\n",
			au.MaxDelayCycles, au.MaxDelayThread, au.MaxDelayReq, okFail(au.DelayOK))
	}
	if au.Holds {
		p("starvation audit: PASS\n")
	} else {
		p("starvation audit: FAIL\n")
	}
	return nil
}

func okFail(ok bool) string {
	if ok {
		return "ok"
	}
	return "VIOLATED"
}
