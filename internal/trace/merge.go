package trace

import "sort"

// MergeShards folds per-channel shard tracers (NewShard) back into t as
// one globally time-ordered event stream. The merge is deterministic:
// shard streams are concatenated in channel order and stable-sorted by
// cycle, so events of one cycle appear in channel order and events within
// one shard keep their recording order — exactly the stream a sequential
// channel-order execution of the same shards produces, which is what makes
// parallel and sequential sharded runs byte-identical (pinned by the
// equivalence tests in internal/sim).
//
// Each KindBatch event's per-thread counts follow it through the merge
// (shards number their batches independently; the Channel stamp plus the
// batch index identify a batch in the merged stream). The parent tracer's
// buffer cap applies to the merged stream: overflow is cut from the tail
// of the sorted order and counted as dropped, like any other overflow.
//
// shards must be indexed by channel (shards[ch].channel == ch). t must be
// bound; any events t recorded directly are discarded in favor of the
// shard streams.
func (t *Tracer) MergeShards(shards []*Tracer) {
	total := 0
	for _, sh := range shards {
		total += len(sh.events)
		t.dropped += sh.dropped
	}
	merged := make([]Event, 0, total)
	for _, sh := range shards {
		merged = append(merged, sh.events...)
	}
	sort.SliceStable(merged, func(i, j int) bool { return merged[i].Cycle < merged[j].Cycle })
	if len(merged) > t.cfg.MaxEvents {
		t.dropped += int64(len(merged) - t.cfg.MaxEvents)
		merged = merged[:t.cfg.MaxEvents]
	}
	// Re-derive the per-thread batch shapes in merged KindBatch order: the
	// i-th KindBatch event of shard ch is that shard's i-th batchPT entry.
	nextPT := make([]int, len(shards))
	var batchPT [][]int32
	for _, ev := range merged {
		if ev.Kind != KindBatch {
			continue
		}
		sh := shards[ev.Channel]
		batchPT = append(batchPT, sh.batchPT[nextPT[ev.Channel]])
		nextPT[ev.Channel]++
	}
	t.events = merged
	t.batchPT = batchPT
}
