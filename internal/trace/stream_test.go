package trace

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"repro/internal/dram"
)

// streamFixture records a tiny two-request run and renders it to JSONL.
func streamFixture(t *testing.T) (*Log, string) {
	t.Helper()
	tr := NewTracer(Config{})
	tr.Bind(Meta{Policy: "PAR-BS", Workload: "synthetic", Cores: 2, Banks: 2,
		MarkingCap: 2, ReadBufEntries: 4, TotalDRAM: 1000})
	tr.RequestArrived(1, 0, 0, 7, false, 0)
	tr.RequestMarked(1, 0, 0, 10)
	tr.BatchFormedDetail(0, 10, 1, []int{1, 0}, 0)
	tr.CommandIssued(1, 0, dram.CmdActivate, 0, 7, 0, 20)
	tr.RequestCompleted(1, 0, 50, 50)
	tr.BatchDrained(0, 50, 40)
	tr.RequestArrived(2, 1, 1, 9, false, 60)
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, tr.Log()); err != nil {
		t.Fatal(err)
	}
	return tr.Log(), buf.String()
}

// TestScannerMatchesReadLog: streaming the fixture yields exactly the
// events ReadLog materializes, including the per-thread batch shape.
func TestScannerMatchesReadLog(t *testing.T) {
	want, jsonl := streamFixture(t)
	sc, err := NewScanner(strings.NewReader(jsonl))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Meta() != want.Meta {
		t.Errorf("Meta = %+v, want %+v", sc.Meta(), want.Meta)
	}
	if sc.HeaderEvents() != len(want.Events) || sc.Dropped() != 0 {
		t.Errorf("header events=%d dropped=%d, want %d/0",
			sc.HeaderEvents(), sc.Dropped(), len(want.Events))
	}
	var got []Event
	var batchPT [][]int32
	for {
		ev, pt, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, ev)
		if ev.Kind == KindBatch {
			batchPT = append(batchPT, append([]int32(nil), pt...))
		}
	}
	if len(got) != len(want.Events) {
		t.Fatalf("streamed %d events, want %d", len(got), len(want.Events))
	}
	for i := range got {
		if got[i] != want.Events[i] {
			t.Errorf("event %d = %+v, want %+v", i, got[i], want.Events[i])
		}
	}
	if len(batchPT) != 1 || len(batchPT[0]) != 2 || batchPT[0][0] != 1 {
		t.Errorf("batch per-thread = %v, want [[1 0]]", batchPT)
	}
}

// TestScannerTruncatedMidLine: a log cut mid-line delivers every complete
// prefix event and then ErrTruncated, never an error that hides the prefix.
func TestScannerTruncatedMidLine(t *testing.T) {
	_, jsonl := streamFixture(t)
	lines := strings.SplitAfter(strings.TrimRight(jsonl, "\n"), "\n")
	// Cut the final line in half (it is the second arrive).
	last := lines[len(lines)-1]
	cut := strings.Join(lines[:len(lines)-1], "") + last[:len(last)/2]

	sc, err := NewScanner(strings.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		_, _, err := sc.Next()
		if err != nil {
			if !errors.Is(err, ErrTruncated) {
				t.Fatalf("Next err = %v, want ErrTruncated", err)
			}
			break
		}
		n++
	}
	if n != 6 { // 7 events minus the cut tail
		t.Errorf("delivered %d prefix events, want 6", n)
	}
}

// TestScannerGarbageMidStream: damage in the middle of the stream also
// degrades to the parseable prefix plus ErrTruncated.
func TestScannerGarbageMidStream(t *testing.T) {
	_, jsonl := streamFixture(t)
	lines := strings.SplitAfter(strings.TrimRight(jsonl, "\n"), "\n")
	mangled := strings.Join(lines[:4], "") + "{\"kind\": \"arr\x00ve\", not json\n" + strings.Join(lines[4:], "")
	sc, err := NewScanner(strings.NewReader(mangled))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		_, _, err := sc.Next()
		if err != nil {
			if !errors.Is(err, ErrTruncated) {
				t.Fatalf("Next err = %v, want ErrTruncated", err)
			}
			break
		}
		n++
	}
	if n != 3 { // 3 complete event lines precede the damage
		t.Errorf("delivered %d prefix events, want 3", n)
	}
}

// TestScannerRejectsBadHeader: header damage is fatal — nothing after it
// can be trusted.
func TestScannerRejectsBadHeader(t *testing.T) {
	if _, err := NewScanner(strings.NewReader("")); err == nil {
		t.Error("empty stream: want error")
	}
	if _, err := NewScanner(strings.NewReader("{\"schema\":\"parbs.trace/v0\",\"kind\":\"run\"}\n")); err == nil {
		t.Error("wrong schema: want error")
	}
	if _, err := NewScanner(strings.NewReader("{not json\n")); err == nil {
		t.Error("mangled header: want error")
	}
}

// TestAnalyzeTruncatedLogFlagged: Dropped > 0 in the log must surface as
// Analysis.Truncated with the partial figures intact, and the text report
// must carry the caveat.
func TestAnalyzeTruncatedLogFlagged(t *testing.T) {
	log, _ := streamFixture(t)
	log.Dropped = 123
	a := Analyze(log)
	if !a.Truncated || a.Dropped != 123 {
		t.Fatalf("Truncated=%v Dropped=%d, want true/123", a.Truncated, a.Dropped)
	}
	if a.Requests != 1 {
		t.Errorf("Requests = %d, want 1 (prefix still analyzed)", a.Requests)
	}
	var buf bytes.Buffer
	if err := a.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "truncated") {
		t.Errorf("text report lacks truncation caveat:\n%s", buf.String())
	}
}

// TestSchemaFieldsMatchWire spot-checks the schema table against the wire
// structs: every line kind is present and the Kind stringer agrees with
// the discriminators the table documents.
func TestSchemaFieldsMatchWire(t *testing.T) {
	fields := SchemaFields()
	kinds := map[string]bool{}
	for _, f := range fields {
		kinds[f.Line] = true
	}
	for _, k := range []Kind{KindArrive, KindMark, KindCommand, KindComplete, KindBatch, KindBatchEnd} {
		if !kinds[k.String()] {
			t.Errorf("schema table missing line kind %q", k)
		}
	}
	if !kinds["run"] {
		t.Error("schema table missing the run header")
	}
}
