package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/dram"
)

// Chrome trace-event rendering: the JSON object format understood by
// Perfetto and chrome://tracing. Each simulated thread becomes a track
// (pid 0, tid = thread); every request is an "X" complete event spanning
// arrival → data return, with the wait decomposition in args; individual
// DRAM commands are "i" instant events on the issuing thread's track; and
// batches are "b"/"e" async spans on a dedicated "scheduler" process
// (pid 1). DRAM cycles map one-to-one onto the format's microsecond
// timestamps — absolute wall time is meaningless for a simulator, and the
// 1:1 mapping keeps cycle arithmetic readable in the UI.

type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	PID   int            `json:"pid"`
	TID   int32          `json:"tid"`
	TS    int64          `json:"ts"`
	Dur   *int64         `json:"dur,omitempty"`
	ID    *int64         `json:"id,omitempty"`
	Cat   string         `json:"cat,omitempty"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData"`
}

// reqSpan accumulates one request's lifecycle while scanning the event
// stream, until its completion event folds it into an "X" span.
type reqSpan struct {
	arrival  int64
	marked   int64 // cycle marked into a batch, -1 if never
	batch    int64 // batch index, -1 if never marked
	firstCmd int64 // first command issued on its behalf, -1 if none yet
	bank     int32
	row      int64
	write    bool
}

// WriteChrome renders the log as Chrome trace-event JSON.
func WriteChrome(w io.Writer, log *Log) error {
	bw := bufio.NewWriter(w)
	out := chromeFile{
		TraceEvents:     make([]chromeEvent, 0, len(log.Events)+2*log.Meta.Cores),
		DisplayTimeUnit: "ns",
		OtherData: map[string]any{
			"schema":      Schema,
			"policy":      log.Meta.Policy,
			"workload":    log.Meta.Workload,
			"marking_cap": log.Meta.MarkingCap,
			"read_buf":    log.Meta.ReadBufEntries,
			"time_unit":   "1 ts = 1 DRAM cycle",
			"dropped":     log.Dropped,
		},
	}
	add := func(ev chromeEvent) { out.TraceEvents = append(out.TraceEvents, ev) }

	add(chromeEvent{Name: "process_name", Phase: "M", PID: 0,
		Args: map[string]any{"name": "memory requests (" + log.Meta.Policy + ")"}})
	add(chromeEvent{Name: "process_name", Phase: "M", PID: 1,
		Args: map[string]any{"name": "scheduler batches"}})
	for t := 0; t < log.Meta.Cores; t++ {
		add(chromeEvent{Name: "thread_name", Phase: "M", PID: 0, TID: int32(t),
			Args: map[string]any{"name": fmt.Sprintf("thread %d", t)}})
	}

	live := make(map[int64]*reqSpan)
	for _, ev := range log.Events {
		switch ev.Kind {
		case KindArrive:
			live[ev.Req] = &reqSpan{arrival: ev.Cycle, marked: -1, batch: -1,
				firstCmd: -1, bank: ev.Bank, row: ev.Row, write: ev.Write}
		case KindMark:
			if r := live[ev.Req]; r != nil {
				r.marked = ev.Cycle
				r.batch = ev.Row
			}
		case KindCommand:
			name := dram.Command(ev.Cmd).String()
			if r := live[ev.Req]; r != nil && r.firstCmd < 0 {
				r.firstCmd = ev.Cycle
			}
			tid := ev.Thread
			if tid < 0 {
				tid = int32(log.Meta.Cores) // controller/refresh track
			}
			add(chromeEvent{Name: name, Phase: "i", PID: 0, TID: tid,
				TS: ev.Cycle, Cat: "cmd", Scope: "t",
				Args: map[string]any{"id": ev.Req, "bank": ev.Bank,
					"row": ev.Row, "rank": ev.Rank}})
		case KindComplete:
			r := live[ev.Req]
			if r == nil {
				continue // arrived before tracing started
			}
			delete(live, ev.Req)
			dur := ev.Cycle - r.arrival
			kind := "RD"
			if r.write {
				kind = "WR"
			}
			args := map[string]any{
				"id": ev.Req, "bank": r.bank, "row": r.row,
				"latency": ev.Row,
			}
			// Wait decomposition mirrors the analyzer: unmarked-queued,
			// marked-waiting, service (see analyze.go).
			markEnd := r.firstCmd
			if markEnd < 0 {
				markEnd = ev.Cycle
			}
			if r.marked >= 0 {
				args["batch"] = r.batch
				args["wait_unmarked"] = r.marked - r.arrival
				args["wait_marked"] = markEnd - r.marked
			} else {
				args["wait_unmarked"] = markEnd - r.arrival
				args["wait_marked"] = 0
			}
			args["service"] = ev.Cycle - markEnd
			add(chromeEvent{Name: fmt.Sprintf("%s req %d", kind, ev.Req),
				Phase: "X", PID: 0, TID: ev.Thread, TS: r.arrival, Dur: &dur,
				Cat: "request", Args: args})
		case KindBatch:
			id := ev.Req
			args := map[string]any{"size": ev.Row, "clipped": ev.Rank}
			add(chromeEvent{Name: fmt.Sprintf("batch %d", ev.Req), Phase: "b",
				PID: 1, TS: ev.Cycle, ID: &id, Cat: "batch", Args: args})
		case KindBatchEnd:
			id := ev.Req
			add(chromeEvent{Name: fmt.Sprintf("batch %d", ev.Req), Phase: "e",
				PID: 1, TS: ev.Cycle, ID: &id, Cat: "batch",
				Args: map[string]any{"duration": ev.Row}})
		}
	}

	enc := json.NewEncoder(bw)
	if err := enc.Encode(out); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteChrome renders the tracer's recorded run as Chrome trace-event JSON.
func (t *Tracer) WriteChrome(w io.Writer) error { return WriteChrome(w, t.Log()) }
