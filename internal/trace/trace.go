// Package trace is the simulator's event-level observability layer,
// parallel to and independent of internal/telemetry: where telemetry
// answers "what did the run look like per epoch", trace answers "why did
// *this* request take this long". A Tracer records every request's
// lifecycle — arrival, marking into a batch, each DRAM command issued on
// its behalf (with the thread's rank at issue time), and data return —
// plus batch spans (formation with per-thread sizes and Marking-Cap clips,
// drain duration).
//
// Like the telemetry probe, a tracer is strictly passive: it only observes
// decisions the controller and scheduler already made, so attaching one
// cannot perturb the command stream (pinned by the golden equivalence
// tests in internal/sim), and every hot-path hook is gated on a nil check
// so an untraced run pays nothing (pinned by testing.AllocsPerRun).
//
// Two renderers sit on top of the recorded events: a compact JSONL event
// log with a versioned schema (jsonl.go, Schema) and Chrome trace-event
// JSON loadable in Perfetto or chrome://tracing (chrome.go). The forensics
// analyzer (analyze.go) consumes the log and produces per-request wait
// decomposition, per-thread worst-case latencies, and the starvation audit
// that checks observed delays against the paper's Marking-Cap bound.
package trace

import "repro/internal/dram"

// Schema identifies the JSONL event-log wire format. Bump the version
// suffix on any incompatible change; ReadLog rejects mismatched schemas.
const Schema = "parbs.trace/v1"

// DefaultMaxEvents bounds the buffered events when the caller does not
// choose (~48 MB of fixed-size records at the cap). Past it, new events
// are counted as dropped rather than recorded, so the prefix of the run
// stays complete and analyzable.
const DefaultMaxEvents = 1 << 20

// Kind discriminates lifecycle events.
type Kind uint8

// Lifecycle event kinds.
const (
	// KindArrive is a request entering the controller's buffer.
	KindArrive Kind = iota
	// KindMark is a request being marked into a batch (PAR-BS Rule 1).
	KindMark
	// KindCommand is one DRAM command issued on a request's behalf.
	KindCommand
	// KindComplete is a request's data burst finishing.
	KindComplete
	// KindBatch is a batch formation (size, per-thread shape, cap clips).
	KindBatch
	// KindBatchEnd is a batch draining (all marked requests serviced).
	KindBatchEnd
)

// Event is one fixed-size lifecycle record. Field meaning varies by Kind:
//
//	KindArrive:   Req=request ID, Thread, Bank, Row, Write, Cycle=arrival
//	KindMark:     Req=request ID, Thread, Row=batch index
//	KindCommand:  Req=request ID (-1 for controller-initiated refresh
//	              sequencing), Thread (-1 likewise), Cmd, Bank, Row,
//	              Rank=thread rank at issue (-1 when the policy has none)
//	KindComplete: Req=request ID, Thread, Row=latency (DRAM cycles),
//	              Cycle=data-return cycle
//	KindBatch:    Req=batch index, Row=batch size (marked requests),
//	              Rank=requests clipped by the Marking-Cap
//	KindBatchEnd: Req=batch index, Row=drain duration (DRAM cycles)
type Event struct {
	Cycle  int64
	Req    int64
	Row    int64
	Thread int32
	Bank   int32
	Rank   int32
	// Channel is the recording controller's channel index; 0 in
	// single-channel runs (and omitted from their JSONL, keeping them
	// byte-identical to the pre-multi-channel format).
	Channel int32
	Kind    Kind
	Cmd     uint8 // dram.Command ordinal, KindCommand only
	Write   bool
}

// Meta describes the traced run; the sim layer fills it at Bind time and
// it becomes the JSONL header line. The JSON tags serve the analysis
// layer's wire formats (parbs.analysis/v1 report and snapshot header) —
// the JSONL header itself is runLine, which flattens these fields.
type Meta struct {
	// Policy and Workload name the scheduler and mix.
	Policy   string `json:"policy"`
	Workload string `json:"workload"`
	// Cores and Banks give the system shape. Banks is per channel.
	Cores int `json:"cores"`
	Banks int `json:"banks"`
	// Channels is the independent-channel count of a sharded run; 0 or 1
	// means a single command stream (lock-step channels included).
	Channels int `json:"channels,omitempty"`
	// CPUPerDRAM is the clock ratio (cycles here are DRAM cycles).
	CPUPerDRAM int64 `json:"cpu_per_dram"`
	// WarmupDRAM and TotalDRAM delimit the run in DRAM cycles; the
	// measured window is [WarmupDRAM, TotalDRAM).
	WarmupDRAM int64 `json:"warmup_dram"`
	TotalDRAM  int64 `json:"total_dram"`
	// MarkingCap is the scheduler's configured Marking-Cap; 0 means
	// uncapped or a policy without batching.
	MarkingCap int `json:"marking_cap"`
	// ReadBufEntries is the controller's request-buffer capacity — together
	// with MarkingCap it yields the paper's batch-wait bound (Section 4.3).
	ReadBufEntries int `json:"read_buf"`
}

// Config sizes a Tracer. The zero value selects the defaults.
type Config struct {
	// MaxEvents caps buffered events (default DefaultMaxEvents); beyond it
	// new events are dropped and counted.
	MaxEvents int
}

// Tracer records one run's lifecycle events. Construct with NewTracer,
// attach through the simulation configuration; the controller and
// scheduler feed it through the hooks below. Not safe for concurrent use —
// the simulation is single-threaded per run.
type Tracer struct {
	cfg     Config
	meta    Meta
	bound   bool
	events  []Event
	dropped int64
	// batchPT holds each batch's per-thread marked counts, in
	// batch-formation event order (parallel to the KindBatch events).
	batchPT [][]int32
	// channel is stamped onto every recorded event; non-zero only for
	// shard tracers (NewShard).
	channel int32
}

// NewTracer returns an unbound tracer with the given configuration.
func NewTracer(cfg Config) *Tracer {
	if cfg.MaxEvents <= 0 {
		cfg.MaxEvents = DefaultMaxEvents
	}
	return &Tracer{cfg: cfg}
}

// Bind stamps the run's metadata and resets recorded state. The sim layer
// calls it once per run, before the first cycle.
func (t *Tracer) Bind(meta Meta) {
	t.meta = meta
	t.bound = true
	t.events = t.events[:0]
	t.batchPT = t.batchPT[:0]
	t.dropped = 0
}

// Meta returns the bound run metadata.
func (t *Tracer) Meta() Meta { return t.meta }

// Events returns the number of recorded events.
func (t *Tracer) Events() int { return len(t.events) }

// Dropped returns how many events were discarded after the buffer filled.
func (t *Tracer) Dropped() int64 { return t.dropped }

// record appends an event, honoring the buffer cap.
func (t *Tracer) record(ev Event) {
	if len(t.events) >= t.cfg.MaxEvents {
		t.dropped++
		return
	}
	ev.Channel = t.channel
	t.events = append(t.events, ev)
}

// NewShard derives a tracer for one channel of a sharded run: same buffer
// cap, every recorded event stamped with the channel index. Shard tracers
// are fed by their own channel's controller and scheduler only (so
// parallel shard execution never contends on one event buffer) and are
// folded back into the parent with MergeShards after the run.
func (t *Tracer) NewShard(channel int) *Tracer {
	return &Tracer{cfg: t.cfg, bound: true, channel: int32(channel)}
}

// RequestArrived records a request entering the controller's buffer.
func (t *Tracer) RequestArrived(id int64, thread, bank int, row int64, isWrite bool, now int64) {
	t.record(Event{Kind: KindArrive, Cycle: now, Req: id,
		Thread: int32(thread), Bank: int32(bank), Row: row, Write: isWrite})
}

// RequestMarked records a request being marked into batch. It implements
// part of the scheduler lifecycle observer (see core.LifecycleObserver).
func (t *Tracer) RequestMarked(id int64, thread int, batch int64, now int64) {
	t.record(Event{Kind: KindMark, Cycle: now, Req: id,
		Thread: int32(thread), Row: batch})
}

// CommandIssued records one DRAM command issued on a request's behalf.
// id and thread are -1 for controller-initiated commands (refresh
// sequencing); rank is the issuing thread's rank position at issue time,
// or -1 when the attached policy has no ranking.
func (t *Tracer) CommandIssued(id int64, thread int, cmd dram.Command, bank int, row int64, rank int, now int64) {
	t.record(Event{Kind: KindCommand, Cycle: now, Req: id,
		Thread: int32(thread), Bank: int32(bank), Row: row,
		Rank: int32(rank), Cmd: uint8(cmd)})
}

// RequestCompleted records a request's data burst finishing at cycle end,
// latency DRAM cycles after its arrival.
func (t *Tracer) RequestCompleted(id int64, thread int, end, latency int64) {
	t.record(Event{Kind: KindComplete, Cycle: end, Req: id,
		Thread: int32(thread), Row: latency})
}

// BatchFormedDetail records a batch formation: its index, total marked
// size, per-thread marked counts, and how many requests the Marking-Cap
// clipped out of it. The perThread slice is copied.
func (t *Tracer) BatchFormedDetail(batch int64, now int64, size int, perThread []int, clipped int) {
	if len(t.events) >= t.cfg.MaxEvents {
		t.dropped++
		return
	}
	pt := make([]int32, len(perThread))
	for i, n := range perThread {
		pt[i] = int32(n)
	}
	t.batchPT = append(t.batchPT, pt)
	t.events = append(t.events, Event{Kind: KindBatch, Cycle: now, Req: batch,
		Row: int64(size), Rank: int32(clipped), Channel: t.channel})
}

// BatchDrained records a batch completing: every marked request serviced,
// duration DRAM cycles after formation.
func (t *Tracer) BatchDrained(batch int64, now int64, duration int64) {
	t.record(Event{Kind: KindBatchEnd, Cycle: now, Req: batch, Row: duration})
}

// Log snapshots the recorded run as an immutable event log, the common
// input of the renderers and the analyzer.
func (t *Tracer) Log() *Log {
	return &Log{Meta: t.meta, Dropped: t.dropped, Events: t.events, BatchPerThread: t.batchPT}
}

// Log is one run's recorded event stream: metadata, the events in
// simulation processing order, and each batch's per-thread marked counts
// (in KindBatch event order). Produced by Tracer.Log or ReadLog.
type Log struct {
	Meta    Meta
	Dropped int64
	Events  []Event
	// BatchPerThread holds per-thread marked counts for the i-th KindBatch
	// event in Events.
	BatchPerThread [][]int32
}
