package trace

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// Streaming access to parbs.trace/v1 JSONL. ReadLog (jsonl.go) wants the
// whole log in memory and rejects any malformed line; the Scanner here is
// the ingest-side counterpart: it yields events one at a time so a consumer
// can fold them into aggregates without materializing the event slice, and
// it is deliberately lenient about truncation. Logs arrive truncated in two
// honest ways — the tracer's buffer filled (header dropped > 0) and the
// recorded prefix is complete, or the file itself was cut mid-line (a
// killed run, a partial download). The Scanner surfaces the second as
// ErrTruncated after delivering every parseable prefix event, so analyzers
// degrade to partial results instead of refusing the whole log.

// ErrTruncated reports a JSONL stream that ended mid-line (or with an
// unparseable tail). Every event before the damage has already been
// delivered; the consumer should flag the analysis as partial.
var ErrTruncated = errors.New("trace: event stream truncated mid-line")

// Scanner reads a parbs.trace/v1 event log one event at a time.
// Construct with NewScanner (which consumes and validates the header),
// then call Next until it returns io.EOF or ErrTruncated.
type Scanner struct {
	sc     *bufio.Scanner
	meta   Meta
	drops  int64
	events int // header's event count, informational
	lineNo int
}

// NewScanner consumes the stream's header line and prepares event
// iteration. It fails on an empty stream, an unparseable header, or a
// schema other than Schema — a damaged header leaves nothing trustworthy
// to analyze.
func NewScanner(r io.Reader) (*Scanner, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("trace: empty log")
	}
	meta, dropped, events, err := ParseHeader(sc.Bytes())
	if err != nil {
		return nil, err
	}
	return &Scanner{
		sc:     sc,
		meta:   meta,
		drops:  dropped,
		events: events,
		lineNo: 1,
	}, nil
}

// ParseHeader decodes a parbs.trace/v1 header line into the run metadata
// plus the header's record-time drop count and promised event count. It is
// the incremental counterpart of NewScanner's header consumption, exported
// for line-at-a-time consumers (the analysis layer's live ingester).
func ParseHeader(raw []byte) (meta Meta, dropped int64, events int, err error) {
	var hdr runLine
	if err := json.Unmarshal(raw, &hdr); err != nil {
		return Meta{}, 0, 0, fmt.Errorf("trace: bad header: %w", err)
	}
	if hdr.Schema != Schema {
		return Meta{}, 0, 0, fmt.Errorf("trace: schema %q, want %q", hdr.Schema, Schema)
	}
	return Meta{
		Policy:         hdr.Policy,
		Workload:       hdr.Workload,
		Cores:          hdr.Cores,
		Banks:          hdr.Banks,
		Channels:       hdr.Channels,
		CPUPerDRAM:     hdr.CPUPerDRAM,
		WarmupDRAM:     hdr.WarmupDRAM,
		TotalDRAM:      hdr.TotalDRAM,
		MarkingCap:     hdr.MarkingCap,
		ReadBufEntries: hdr.ReadBuf,
	}, hdr.Dropped, hdr.Events, nil
}

// ParseEventLine decodes one JSONL event line. perThread is non-nil only
// for KindBatch lines and aliases the decode buffer — copy it before the
// raw bytes are reused. Exported for line-at-a-time consumers that cannot
// hand the Scanner a contiguous reader (live tailing of a growing stream).
func ParseEventLine(raw []byte) (Event, []int32, error) {
	return parseEventLine(raw)
}

// Meta returns the run metadata from the header line.
func (s *Scanner) Meta() Meta { return s.meta }

// Dropped returns the header's count of events the tracer discarded after
// its buffer filled. Non-zero means the log is an honest prefix of the run.
func (s *Scanner) Dropped() int64 { return s.drops }

// HeaderEvents returns the event count the header promised; a stream that
// ends early (ErrTruncated) delivers fewer.
func (s *Scanner) HeaderEvents() int { return s.events }

// Line returns the 1-based line number of the most recently read line.
func (s *Scanner) Line() int { return s.lineNo }

// Next returns the next event. For KindBatch events, perThread is the
// batch's per-thread marked counts; it is nil for every other kind and
// must not be retained across calls to Next (it aliases the decode
// buffer's slice only for the current event).
//
// The error is io.EOF at a clean end of stream, ErrTruncated when the
// stream ends with an unparseable line (every prior event was delivered),
// or the underlying reader's error.
func (s *Scanner) Next() (ev Event, perThread []int32, err error) {
	if !s.sc.Scan() {
		if err := s.sc.Err(); err != nil {
			// A line longer than the scanner's 16 MB cap is damage, not a
			// well-formed log; report it as truncation like any other
			// unreadable tail.
			if errors.Is(err, bufio.ErrTooLong) {
				return Event{}, nil, ErrTruncated
			}
			return Event{}, nil, err
		}
		return Event{}, nil, io.EOF
	}
	s.lineNo++
	raw := s.sc.Bytes()
	ev, perThread, perr := parseEventLine(raw)
	if perr != nil {
		// Any malformed event line is treated as the start of damage: a
		// mid-file flipped byte cannot be distinguished from a cut tail
		// without trusting the rest of the stream, and partial-prefix
		// semantics are the honest contract either way.
		return Event{}, nil, ErrTruncated
	}
	return ev, perThread, nil
}

// parseEventLine decodes one JSONL event line. perThread is non-nil only
// for KindBatch lines.
func parseEventLine(raw []byte) (Event, []int32, error) {
	var kind struct {
		Kind string `json:"kind"`
	}
	if err := json.Unmarshal(raw, &kind); err != nil {
		return Event{}, nil, err
	}
	switch kind.Kind {
	case "arrive":
		var l arriveLine
		if err := json.Unmarshal(raw, &l); err != nil {
			return Event{}, nil, err
		}
		return Event{Kind: KindArrive, Cycle: l.Cycle, Req: l.ID, Thread: l.Thread,
			Bank: l.Bank, Row: l.Row, Write: l.Write, Channel: l.Channel}, nil, nil
	case "mark":
		var l markLine
		if err := json.Unmarshal(raw, &l); err != nil {
			return Event{}, nil, err
		}
		return Event{Kind: KindMark, Cycle: l.Cycle, Req: l.ID, Thread: l.Thread,
			Row: l.Batch, Channel: l.Channel}, nil, nil
	case "cmd":
		var l cmdLine
		if err := json.Unmarshal(raw, &l); err != nil {
			return Event{}, nil, err
		}
		cmd, ok := commandByName[l.Cmd]
		if !ok {
			return Event{}, nil, fmt.Errorf("trace: unknown command %q", l.Cmd)
		}
		return Event{Kind: KindCommand, Cycle: l.Cycle, Req: l.ID, Thread: l.Thread,
			Bank: l.Bank, Row: l.Row, Rank: l.Rank, Cmd: uint8(cmd), Channel: l.Channel}, nil, nil
	case "done":
		var l doneLine
		if err := json.Unmarshal(raw, &l); err != nil {
			return Event{}, nil, err
		}
		return Event{Kind: KindComplete, Cycle: l.Cycle, Req: l.ID, Thread: l.Thread,
			Row: l.Latency, Channel: l.Channel}, nil, nil
	case "batch":
		var l batchLine
		if err := json.Unmarshal(raw, &l); err != nil {
			return Event{}, nil, err
		}
		return Event{Kind: KindBatch, Cycle: l.Cycle, Req: l.Batch, Row: l.Size,
			Rank: l.Clipped, Channel: l.Channel}, l.PerThread, nil
	case "batch_end":
		var l batchEndLine
		if err := json.Unmarshal(raw, &l); err != nil {
			return Event{}, nil, err
		}
		return Event{Kind: KindBatchEnd, Cycle: l.Cycle, Req: l.Batch, Row: l.Duration,
			Channel: l.Channel}, nil, nil
	default:
		return Event{}, nil, fmt.Errorf("trace: unknown kind %q", kind.Kind)
	}
}

// String names the event kind with its JSONL wire discriminator.
func (k Kind) String() string {
	switch k {
	case KindArrive:
		return "arrive"
	case KindMark:
		return "mark"
	case KindCommand:
		return "cmd"
	case KindComplete:
		return "done"
	case KindBatch:
		return "batch"
	case KindBatchEnd:
		return "batch_end"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// FieldDoc describes one wire field of a parbs.trace/v1 line — the
// machine-readable schema table behind the documentation and the
// `parbs-trace schema` listing, kept next to the structs it describes so
// the two cannot drift silently (pinned by TestSchemaFieldsMatchWire).
type FieldDoc struct {
	Line  string // line kind ("run" for the header)
	Field string // JSON field name
	Type  string // JSON type as written
	Doc   string // meaning
}

// SchemaFields returns the field-by-field schema of every parbs.trace/v1
// line kind, header first, in wire order.
func SchemaFields() []FieldDoc {
	return []FieldDoc{
		{"run", "schema", "string", "wire format identifier, always \"" + Schema + "\""},
		{"run", "kind", "string", "line discriminator, always \"run\" on the header"},
		{"run", "policy", "string", "scheduling policy name"},
		{"run", "workload", "string", "benchmark mix name"},
		{"run", "cores", "int", "simulated cores (= threads)"},
		{"run", "banks", "int", "DRAM banks per channel"},
		{"run", "channels", "int", "independent channels; omitted for a single command stream"},
		{"run", "cpu_per_dram", "int", "CPU cycles per DRAM cycle (all cycle fields are DRAM cycles)"},
		{"run", "warmup_dram", "int", "measured window start, DRAM cycles"},
		{"run", "total_dram", "int", "run end, DRAM cycles"},
		{"run", "marking_cap", "int", "configured Marking-Cap; 0 = uncapped or unbatched policy"},
		{"run", "read_buf", "int", "request-buffer capacity (with marking_cap: the §4.3 bound)"},
		{"run", "events", "int", "event lines that follow"},
		{"run", "dropped", "int", "events discarded after the tracer's buffer filled"},
		{"arrive", "cycle", "int", "arrival cycle at the controller buffer"},
		{"arrive", "id", "int", "request ID, unique across channels"},
		{"arrive", "thread", "int", "issuing thread (core)"},
		{"arrive", "bank", "int", "target bank"},
		{"arrive", "row", "int", "target row"},
		{"arrive", "write", "bool", "true for a write (fire-and-forget)"},
		{"arrive", "channel", "int", "recording channel; omitted when 0"},
		{"mark", "cycle", "int", "cycle the request was marked into a batch"},
		{"mark", "id", "int", "request ID"},
		{"mark", "thread", "int", "issuing thread"},
		{"mark", "batch", "int", "batch index the request joined"},
		{"mark", "channel", "int", "recording channel; omitted when 0"},
		{"cmd", "cycle", "int", "issue cycle"},
		{"cmd", "id", "int", "serviced request ID; -1 for controller-initiated refresh"},
		{"cmd", "thread", "int", "request's thread; -1 for refresh"},
		{"cmd", "cmd", "string", "DRAM command mnemonic (ACT, PRE, RD, WR, REF)"},
		{"cmd", "bank", "int", "target bank"},
		{"cmd", "row", "int", "target row"},
		{"cmd", "rank", "int", "thread's rank at issue; -1 when the policy has none"},
		{"cmd", "channel", "int", "recording channel; omitted when 0"},
		{"done", "cycle", "int", "data-return cycle"},
		{"done", "id", "int", "request ID"},
		{"done", "thread", "int", "issuing thread"},
		{"done", "latency", "int", "arrival → return, DRAM cycles"},
		{"done", "channel", "int", "recording channel; omitted when 0"},
		{"batch", "cycle", "int", "formation cycle"},
		{"batch", "batch", "int", "batch index"},
		{"batch", "size", "int", "marked requests"},
		{"batch", "clipped", "int", "requests the Marking-Cap excluded"},
		{"batch", "per_thread", "[]int", "marked count per thread"},
		{"batch", "channel", "int", "recording channel; omitted when 0"},
		{"batch_end", "cycle", "int", "drain cycle (all marked requests serviced)"},
		{"batch_end", "batch", "int", "batch index"},
		{"batch_end", "duration", "int", "formation → drain, DRAM cycles"},
		{"batch_end", "channel", "int", "recording channel; omitted when 0"},
	}
}
