package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/dram"
)

// JSONL wire format: one JSON object per line. The first line is the run
// header carrying Schema and the Meta fields; every following line is one
// event, discriminated by "kind". Field order is fixed by the structs
// below so a write → read → write cycle is byte-identical (the schema pin
// test relies on this).

type runLine struct {
	Schema     string `json:"schema"`
	Kind       string `json:"kind"`
	Policy     string `json:"policy"`
	Workload   string `json:"workload"`
	Cores      int    `json:"cores"`
	Banks      int    `json:"banks"`
	Channels   int    `json:"channels,omitempty"`
	CPUPerDRAM int64  `json:"cpu_per_dram"`
	WarmupDRAM int64  `json:"warmup_dram"`
	TotalDRAM  int64  `json:"total_dram"`
	MarkingCap int    `json:"marking_cap"`
	ReadBuf    int    `json:"read_buf"`
	Events     int    `json:"events"`
	Dropped    int64  `json:"dropped"`
}

type arriveLine struct {
	Kind    string `json:"kind"`
	Cycle   int64  `json:"cycle"`
	ID      int64  `json:"id"`
	Thread  int32  `json:"thread"`
	Bank    int32  `json:"bank"`
	Row     int64  `json:"row"`
	Write   bool   `json:"write"`
	Channel int32  `json:"channel,omitempty"`
}

type markLine struct {
	Kind    string `json:"kind"`
	Cycle   int64  `json:"cycle"`
	ID      int64  `json:"id"`
	Thread  int32  `json:"thread"`
	Batch   int64  `json:"batch"`
	Channel int32  `json:"channel,omitempty"`
}

type cmdLine struct {
	Kind    string `json:"kind"`
	Cycle   int64  `json:"cycle"`
	ID      int64  `json:"id"`
	Thread  int32  `json:"thread"`
	Cmd     string `json:"cmd"`
	Bank    int32  `json:"bank"`
	Row     int64  `json:"row"`
	Rank    int32  `json:"rank"`
	Channel int32  `json:"channel,omitempty"`
}

type doneLine struct {
	Kind    string `json:"kind"`
	Cycle   int64  `json:"cycle"`
	ID      int64  `json:"id"`
	Thread  int32  `json:"thread"`
	Latency int64  `json:"latency"`
	Channel int32  `json:"channel,omitempty"`
}

type batchLine struct {
	Kind      string  `json:"kind"`
	Cycle     int64   `json:"cycle"`
	Batch     int64   `json:"batch"`
	Size      int64   `json:"size"`
	Clipped   int32   `json:"clipped"`
	PerThread []int32 `json:"per_thread"`
	Channel   int32   `json:"channel,omitempty"`
}

type batchEndLine struct {
	Kind     string `json:"kind"`
	Cycle    int64  `json:"cycle"`
	Batch    int64  `json:"batch"`
	Duration int64  `json:"duration"`
	Channel  int32  `json:"channel,omitempty"`
}

// headerLine builds the run header line with explicit event/drop counts
// (a completed log writes the real counts; a live stream writes zeros —
// readers treat them as hints, never hard limits).
func headerLine(meta Meta, events int, dropped int64) runLine {
	return runLine{
		Schema:     Schema,
		Kind:       "run",
		Policy:     meta.Policy,
		Workload:   meta.Workload,
		Cores:      meta.Cores,
		Banks:      meta.Banks,
		Channels:   meta.Channels,
		CPUPerDRAM: meta.CPUPerDRAM,
		WarmupDRAM: meta.WarmupDRAM,
		TotalDRAM:  meta.TotalDRAM,
		MarkingCap: meta.MarkingCap,
		ReadBuf:    meta.ReadBufEntries,
		Events:     events,
		Dropped:    dropped,
	}
}

// eventLine builds the wire struct for one event. pt is the per-thread
// shape for KindBatch events (nil otherwise).
func eventLine(ev Event, pt []int32) (any, error) {
	switch ev.Kind {
	case KindArrive:
		return arriveLine{Kind: "arrive", Cycle: ev.Cycle, ID: ev.Req,
			Thread: ev.Thread, Bank: ev.Bank, Row: ev.Row, Write: ev.Write,
			Channel: ev.Channel}, nil
	case KindMark:
		return markLine{Kind: "mark", Cycle: ev.Cycle, ID: ev.Req,
			Thread: ev.Thread, Batch: ev.Row, Channel: ev.Channel}, nil
	case KindCommand:
		return cmdLine{Kind: "cmd", Cycle: ev.Cycle, ID: ev.Req,
			Thread: ev.Thread, Cmd: dram.Command(ev.Cmd).String(),
			Bank: ev.Bank, Row: ev.Row, Rank: ev.Rank, Channel: ev.Channel}, nil
	case KindComplete:
		return doneLine{Kind: "done", Cycle: ev.Cycle, ID: ev.Req,
			Thread: ev.Thread, Latency: ev.Row, Channel: ev.Channel}, nil
	case KindBatch:
		return batchLine{Kind: "batch", Cycle: ev.Cycle, Batch: ev.Req,
			Size: ev.Row, Clipped: ev.Rank, PerThread: pt, Channel: ev.Channel}, nil
	case KindBatchEnd:
		return batchEndLine{Kind: "batch_end", Cycle: ev.Cycle,
			Batch: ev.Req, Duration: ev.Row, Channel: ev.Channel}, nil
	default:
		return nil, fmt.Errorf("trace: unknown event kind %d", ev.Kind)
	}
}

// WriteJSONL renders the log as schema-versioned JSONL.
func WriteJSONL(w io.Writer, log *Log) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(headerLine(log.Meta, len(log.Events), log.Dropped)); err != nil {
		return err
	}
	batch := 0
	for _, ev := range log.Events {
		var pt []int32
		if ev.Kind == KindBatch {
			if batch < len(log.BatchPerThread) {
				pt = log.BatchPerThread[batch]
			}
			batch++
		}
		line, err := eventLine(ev, pt)
		if err != nil {
			return err
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Cursor incrementally renders a tracer's recorded events as parbs.trace/v1
// JSONL: each WriteNew call emits the events recorded since the previous
// call, opening the stream with a header line on the first. The header's
// events and dropped counts are written as zero — they are unknowable while
// the run is still recording — so live consumers must treat them as hints
// and reconcile the real drop count after the run (the completed log's
// header, written by WriteJSONL, carries the truth).
//
// A Cursor shares the Tracer's single-goroutine discipline: call WriteNew
// only from the goroutine that owns the tracer (in practice, from inside a
// progress callback, which the engines invoke synchronously on the
// simulation goroutine) or after the run has returned.
type Cursor struct {
	t          *Tracer
	next       int // first event not yet rendered
	batches    int // KindBatch events rendered so far (batchPT index)
	headerDone bool
}

// NewCursor returns a cursor positioned at the start of t's event stream.
func (t *Tracer) NewCursor() *Cursor { return &Cursor{t: t} }

// Bound reports whether the tracer has been bound to a run (run metadata
// is only trustworthy afterwards).
func (t *Tracer) Bound() bool { return t.bound }

// WriteNew renders every event recorded since the previous call (plus the
// header line on the first call) and advances the cursor.
func (c *Cursor) WriteNew(w io.Writer) error {
	enc := json.NewEncoder(w)
	if !c.headerDone {
		if err := enc.Encode(headerLine(c.t.meta, 0, 0)); err != nil {
			return err
		}
		c.headerDone = true
	}
	for ; c.next < len(c.t.events); c.next++ {
		ev := c.t.events[c.next]
		var pt []int32
		if ev.Kind == KindBatch {
			if c.batches < len(c.t.batchPT) {
				pt = c.t.batchPT[c.batches]
			}
			c.batches++
		}
		line, err := eventLine(ev, pt)
		if err != nil {
			return err
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSONL renders the tracer's recorded run as schema-versioned JSONL.
func (t *Tracer) WriteJSONL(w io.Writer) error { return WriteJSONL(w, t.Log()) }

// commandByName maps the wire mnemonics back to dram.Command ordinals.
var commandByName = map[string]dram.Command{
	dram.CmdNone.String():      dram.CmdNone,
	dram.CmdActivate.String():  dram.CmdActivate,
	dram.CmdPrecharge.String(): dram.CmdPrecharge,
	dram.CmdRead.String():      dram.CmdRead,
	dram.CmdWrite.String():     dram.CmdWrite,
	dram.CmdRefresh.String():   dram.CmdRefresh,
}

// ReadLog parses a JSONL event log produced by WriteJSONL. It rejects
// streams whose header schema is not Schema.
func ReadLog(r io.Reader) (*Log, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("trace: empty log")
	}
	var hdr runLine
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, fmt.Errorf("trace: bad header: %w", err)
	}
	if hdr.Schema != Schema {
		return nil, fmt.Errorf("trace: schema %q, want %q", hdr.Schema, Schema)
	}
	log := &Log{
		Meta: Meta{
			Policy:         hdr.Policy,
			Workload:       hdr.Workload,
			Cores:          hdr.Cores,
			Banks:          hdr.Banks,
			Channels:       hdr.Channels,
			CPUPerDRAM:     hdr.CPUPerDRAM,
			WarmupDRAM:     hdr.WarmupDRAM,
			TotalDRAM:      hdr.TotalDRAM,
			MarkingCap:     hdr.MarkingCap,
			ReadBufEntries: hdr.ReadBuf,
		},
		Dropped: hdr.Dropped,
		Events:  make([]Event, 0, hdr.Events),
	}
	lineNo := 1
	for sc.Scan() {
		lineNo++
		ev, perThread, err := parseEventLine(sc.Bytes())
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		log.Events = append(log.Events, ev)
		if ev.Kind == KindBatch {
			log.BatchPerThread = append(log.BatchPerThread, perThread)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return log, nil
}
