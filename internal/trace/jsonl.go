package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/dram"
)

// JSONL wire format: one JSON object per line. The first line is the run
// header carrying Schema and the Meta fields; every following line is one
// event, discriminated by "kind". Field order is fixed by the structs
// below so a write → read → write cycle is byte-identical (the schema pin
// test relies on this).

type runLine struct {
	Schema     string `json:"schema"`
	Kind       string `json:"kind"`
	Policy     string `json:"policy"`
	Workload   string `json:"workload"`
	Cores      int    `json:"cores"`
	Banks      int    `json:"banks"`
	Channels   int    `json:"channels,omitempty"`
	CPUPerDRAM int64  `json:"cpu_per_dram"`
	WarmupDRAM int64  `json:"warmup_dram"`
	TotalDRAM  int64  `json:"total_dram"`
	MarkingCap int    `json:"marking_cap"`
	ReadBuf    int    `json:"read_buf"`
	Events     int    `json:"events"`
	Dropped    int64  `json:"dropped"`
}

type arriveLine struct {
	Kind    string `json:"kind"`
	Cycle   int64  `json:"cycle"`
	ID      int64  `json:"id"`
	Thread  int32  `json:"thread"`
	Bank    int32  `json:"bank"`
	Row     int64  `json:"row"`
	Write   bool   `json:"write"`
	Channel int32  `json:"channel,omitempty"`
}

type markLine struct {
	Kind    string `json:"kind"`
	Cycle   int64  `json:"cycle"`
	ID      int64  `json:"id"`
	Thread  int32  `json:"thread"`
	Batch   int64  `json:"batch"`
	Channel int32  `json:"channel,omitempty"`
}

type cmdLine struct {
	Kind    string `json:"kind"`
	Cycle   int64  `json:"cycle"`
	ID      int64  `json:"id"`
	Thread  int32  `json:"thread"`
	Cmd     string `json:"cmd"`
	Bank    int32  `json:"bank"`
	Row     int64  `json:"row"`
	Rank    int32  `json:"rank"`
	Channel int32  `json:"channel,omitempty"`
}

type doneLine struct {
	Kind    string `json:"kind"`
	Cycle   int64  `json:"cycle"`
	ID      int64  `json:"id"`
	Thread  int32  `json:"thread"`
	Latency int64  `json:"latency"`
	Channel int32  `json:"channel,omitempty"`
}

type batchLine struct {
	Kind      string  `json:"kind"`
	Cycle     int64   `json:"cycle"`
	Batch     int64   `json:"batch"`
	Size      int64   `json:"size"`
	Clipped   int32   `json:"clipped"`
	PerThread []int32 `json:"per_thread"`
	Channel   int32   `json:"channel,omitempty"`
}

type batchEndLine struct {
	Kind     string `json:"kind"`
	Cycle    int64  `json:"cycle"`
	Batch    int64  `json:"batch"`
	Duration int64  `json:"duration"`
	Channel  int32  `json:"channel,omitempty"`
}

// WriteJSONL renders the log as schema-versioned JSONL.
func WriteJSONL(w io.Writer, log *Log) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(runLine{
		Schema:     Schema,
		Kind:       "run",
		Policy:     log.Meta.Policy,
		Workload:   log.Meta.Workload,
		Cores:      log.Meta.Cores,
		Banks:      log.Meta.Banks,
		CPUPerDRAM: log.Meta.CPUPerDRAM,
		WarmupDRAM: log.Meta.WarmupDRAM,
		TotalDRAM:  log.Meta.TotalDRAM,
		MarkingCap: log.Meta.MarkingCap,
		ReadBuf:    log.Meta.ReadBufEntries,
		Events:     len(log.Events),
		Dropped:    log.Dropped,
	}); err != nil {
		return err
	}
	batch := 0
	for _, ev := range log.Events {
		var line any
		switch ev.Kind {
		case KindArrive:
			line = arriveLine{Kind: "arrive", Cycle: ev.Cycle, ID: ev.Req,
				Thread: ev.Thread, Bank: ev.Bank, Row: ev.Row, Write: ev.Write,
				Channel: ev.Channel}
		case KindMark:
			line = markLine{Kind: "mark", Cycle: ev.Cycle, ID: ev.Req,
				Thread: ev.Thread, Batch: ev.Row, Channel: ev.Channel}
		case KindCommand:
			line = cmdLine{Kind: "cmd", Cycle: ev.Cycle, ID: ev.Req,
				Thread: ev.Thread, Cmd: dram.Command(ev.Cmd).String(),
				Bank: ev.Bank, Row: ev.Row, Rank: ev.Rank, Channel: ev.Channel}
		case KindComplete:
			line = doneLine{Kind: "done", Cycle: ev.Cycle, ID: ev.Req,
				Thread: ev.Thread, Latency: ev.Row, Channel: ev.Channel}
		case KindBatch:
			var pt []int32
			if batch < len(log.BatchPerThread) {
				pt = log.BatchPerThread[batch]
			}
			batch++
			line = batchLine{Kind: "batch", Cycle: ev.Cycle, Batch: ev.Req,
				Size: ev.Row, Clipped: ev.Rank, PerThread: pt, Channel: ev.Channel}
		case KindBatchEnd:
			line = batchEndLine{Kind: "batch_end", Cycle: ev.Cycle,
				Batch: ev.Req, Duration: ev.Row, Channel: ev.Channel}
		default:
			return fmt.Errorf("trace: unknown event kind %d", ev.Kind)
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteJSONL renders the tracer's recorded run as schema-versioned JSONL.
func (t *Tracer) WriteJSONL(w io.Writer) error { return WriteJSONL(w, t.Log()) }

// commandByName maps the wire mnemonics back to dram.Command ordinals.
var commandByName = map[string]dram.Command{
	dram.CmdNone.String():      dram.CmdNone,
	dram.CmdActivate.String():  dram.CmdActivate,
	dram.CmdPrecharge.String(): dram.CmdPrecharge,
	dram.CmdRead.String():      dram.CmdRead,
	dram.CmdWrite.String():     dram.CmdWrite,
	dram.CmdRefresh.String():   dram.CmdRefresh,
}

// ReadLog parses a JSONL event log produced by WriteJSONL. It rejects
// streams whose header schema is not Schema.
func ReadLog(r io.Reader) (*Log, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("trace: empty log")
	}
	var hdr runLine
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, fmt.Errorf("trace: bad header: %w", err)
	}
	if hdr.Schema != Schema {
		return nil, fmt.Errorf("trace: schema %q, want %q", hdr.Schema, Schema)
	}
	log := &Log{
		Meta: Meta{
			Policy:         hdr.Policy,
			Workload:       hdr.Workload,
			Cores:          hdr.Cores,
			Banks:          hdr.Banks,
			Channels:       hdr.Channels,
			CPUPerDRAM:     hdr.CPUPerDRAM,
			WarmupDRAM:     hdr.WarmupDRAM,
			TotalDRAM:      hdr.TotalDRAM,
			MarkingCap:     hdr.MarkingCap,
			ReadBufEntries: hdr.ReadBuf,
		},
		Dropped: hdr.Dropped,
		Events:  make([]Event, 0, hdr.Events),
	}
	lineNo := 1
	for sc.Scan() {
		lineNo++
		ev, perThread, err := parseEventLine(sc.Bytes())
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		log.Events = append(log.Events, ev)
		if ev.Kind == KindBatch {
			log.BatchPerThread = append(log.BatchPerThread, perThread)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return log, nil
}
