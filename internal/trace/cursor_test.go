package trace

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/dram"
)

// TestCursorIncrementalMatchesWriteJSONL: flushing a cursor at arbitrary
// points mid-recording and concatenating the chunks yields the same stream
// as WriteJSONL, except for the header's event/drop counts (zero on the
// live path by design).
func TestCursorIncrementalMatchesWriteJSONL(t *testing.T) {
	tr := NewTracer(Config{MaxEvents: 64})
	tr.Bind(Meta{Policy: "PAR-BS", Workload: "test", Cores: 2, Banks: 2,
		Channels: 3, CPUPerDRAM: 4, WarmupDRAM: 100, TotalDRAM: 1000,
		MarkingCap: 2, ReadBufEntries: 4})
	cur := tr.NewCursor()
	var live bytes.Buffer

	flush := func() {
		if err := cur.WriteNew(&live); err != nil {
			t.Fatal(err)
		}
	}
	flush() // header-only chunk before any event
	tr.RequestArrived(1, 0, 1, 7, false, 0)
	tr.RequestArrived(2, 1, 0, 3, true, 5)
	flush()
	tr.RequestMarked(1, 0, 0, 10)
	tr.BatchFormedDetail(0, 10, 1, []int{1, 0}, 1)
	flush()
	flush() // nothing new: must append nothing
	tr.CommandIssued(1, 0, dram.CmdActivate, 1, 7, 0, 20)
	tr.RequestCompleted(1, 0, 50, 50)
	tr.BatchDrained(0, 60, 50)
	flush()

	var whole bytes.Buffer
	if err := WriteJSONL(&whole, tr.Log()); err != nil {
		t.Fatal(err)
	}
	liveLines := bytes.Split(live.Bytes(), []byte("\n"))
	wholeLines := bytes.Split(whole.Bytes(), []byte("\n"))
	if len(liveLines) != len(wholeLines) {
		t.Fatalf("live stream has %d lines, whole log %d", len(liveLines), len(wholeLines))
	}
	// Event lines must match byte for byte (the batch per-thread shape
	// included); headers differ only in events/dropped.
	for i := 1; i < len(liveLines); i++ {
		if !bytes.Equal(liveLines[i], wholeLines[i]) {
			t.Errorf("line %d diverged:\nlive:  %s\nwhole: %s", i, liveLines[i], wholeLines[i])
		}
	}
	var liveHdr, wholeHdr map[string]any
	if err := json.Unmarshal(liveLines[0], &liveHdr); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(wholeLines[0], &wholeHdr); err != nil {
		t.Fatal(err)
	}
	if liveHdr["events"] != float64(0) || liveHdr["dropped"] != float64(0) {
		t.Errorf("live header counts = %v/%v, want 0/0", liveHdr["events"], liveHdr["dropped"])
	}
	liveHdr["events"] = wholeHdr["events"]
	for k, v := range wholeHdr {
		if liveHdr[k] != v {
			t.Errorf("header field %q: live %v, whole %v", k, liveHdr[k], v)
		}
	}

	// The live stream must itself be a valid parbs.trace/v1 log.
	if _, err := ReadLog(bytes.NewReader(live.Bytes())); err != nil {
		t.Errorf("concatenated live stream unreadable: %v", err)
	}
}

// TestJSONLHeaderCarriesChannels: the header round-trips the channel count
// (multi-channel runs must not collapse to single-channel on re-read).
func TestJSONLHeaderCarriesChannels(t *testing.T) {
	tr := NewTracer(Config{})
	tr.Bind(Meta{Policy: "FR-FCFS", Workload: "w", Cores: 4, Banks: 8,
		Channels: 4, TotalDRAM: 100})
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, tr.Log()); err != nil {
		t.Fatal(err)
	}
	back, err := ReadLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Meta.Channels != 4 {
		t.Errorf("channels after round trip = %d, want 4", back.Meta.Channels)
	}
}

// TestParseHeaderAndEventLine: the exported line parsers agree with the
// scanner's view of the same stream.
func TestParseHeaderAndEventLine(t *testing.T) {
	tr := sampleTracer()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, tr.Log()); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSuffix(buf.Bytes(), []byte("\n")), []byte("\n"))

	meta, dropped, events, err := ParseHeader(lines[0])
	if err != nil {
		t.Fatal(err)
	}
	if meta != tr.meta || dropped != 0 || events != tr.Events() {
		t.Errorf("ParseHeader = %+v/%d/%d", meta, dropped, events)
	}
	if _, _, _, err := ParseHeader([]byte(`{"schema":"bogus/v9","kind":"run"}`)); err == nil {
		t.Error("wrong schema accepted")
	}

	log := tr.Log()
	for i, raw := range lines[1:] {
		ev, pt, err := ParseEventLine(raw)
		if err != nil {
			t.Fatalf("line %d: %v", i+1, err)
		}
		if ev != log.Events[i] {
			t.Errorf("line %d: event %+v, want %+v", i+1, ev, log.Events[i])
		}
		if ev.Kind == KindBatch && len(pt) != 2 {
			t.Errorf("line %d: batch per-thread = %v", i+1, pt)
		}
	}
}
