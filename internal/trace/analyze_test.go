package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/dram"
)

// TestAnalyzeWaitDecomposition builds a hand-sequenced log and checks the
// three-phase split and batches-waited accounting against exact values.
//
// Timeline (MarkingCap 2, ReadBuf 4 → batch-wait bound ceil(4/2)-1 = 1):
//
//	req 1 (thread 0): arrives c0 before any batch, marked at batch 0
//	                  (waited 0), first command c20, returns c50 (lat 50)
//	req 2 (thread 1): arrives c60 after batch 0 (arrivalBatch 1), passed
//	                  over by batch 1, marked at batch 2 (waited 1 = bound),
//	                  first command c110, returns c200 (lat 140)
//	req 3 (thread 0): a write — excluded from read forensics entirely
func TestAnalyzeWaitDecomposition(t *testing.T) {
	tr := NewTracer(Config{})
	tr.Bind(Meta{Policy: "PAR-BS", Workload: "synthetic", Cores: 2, Banks: 1,
		MarkingCap: 2, ReadBufEntries: 4})

	tr.RequestArrived(1, 0, 0, 1, false, 0)
	tr.RequestMarked(1, 0, 0, 10)
	tr.BatchFormedDetail(0, 10, 1, []int{1, 0}, 0)
	tr.CommandIssued(1, 0, dram.CmdActivate, 0, 1, 0, 20)
	tr.RequestArrived(3, 0, 0, 2, true, 30)
	tr.RequestCompleted(1, 0, 50, 50)
	tr.BatchDrained(0, 50, 40)
	tr.RequestCompleted(3, 0, 55, 25) // write retires, ignored

	tr.RequestArrived(2, 1, 0, 9, false, 60)
	tr.BatchFormedDetail(1, 70, 0, []int{0, 0}, 0) // passes req 2 over
	tr.BatchDrained(1, 90, 20)
	tr.RequestMarked(2, 1, 2, 100)
	tr.BatchFormedDetail(2, 100, 1, []int{0, 1}, 1)
	tr.CommandIssued(2, 1, dram.CmdActivate, 0, 9, 0, 110)
	tr.RequestCompleted(2, 1, 200, 140)
	tr.BatchDrained(2, 200, 100)

	a := Analyze(tr.Log())
	if a.Requests != 2 {
		t.Fatalf("Requests = %d, want 2 (write must be excluded)", a.Requests)
	}
	if a.Batches != 3 || a.MaxBatchSpan != 100 {
		t.Errorf("Batches=%d MaxBatchSpan=%d, want 3/100", a.Batches, a.MaxBatchSpan)
	}
	if len(a.Threads) != 2 {
		t.Fatalf("threads = %d, want 2", len(a.Threads))
	}
	t0, t1 := a.Threads[0], a.Threads[1]
	if t0.Reads != 1 || t0.UnmarkedWait != 10 || t0.MarkedWait != 10 || t0.Service != 30 ||
		t0.MaxLatency != 50 || t0.MaxBatchesWaited != 0 {
		t.Errorf("thread 0 decomposition wrong: %+v", t0)
	}
	if t1.Reads != 1 || t1.UnmarkedWait != 40 || t1.MarkedWait != 10 || t1.Service != 90 ||
		t1.MaxLatency != 140 || t1.MaxBatchesWaited != 1 {
		t.Errorf("thread 1 decomposition wrong: %+v", t1)
	}

	au := a.Audit
	if !au.Batched || au.BatchWaitBound != 1 || au.MaxBatchesWaited != 1 || !au.BatchWaitOK {
		t.Errorf("batch-wait audit wrong: %+v", au)
	}
	if au.DelayBoundCycles != 300 { // (1+2) * max span 100
		t.Errorf("DelayBoundCycles = %d, want 300", au.DelayBoundCycles)
	}
	if au.MaxDelayCycles != 140 || au.MaxDelayThread != 1 || au.MaxDelayReq != 2 {
		t.Errorf("worst delay wrong: %+v", au)
	}
	if !au.DelayOK || !au.Holds {
		t.Errorf("audit should hold: %+v", au)
	}

	var buf bytes.Buffer
	if err := a.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "starvation audit: PASS") {
		t.Errorf("text report lacks the PASS line:\n%s", buf.String())
	}
}

// TestAnalyzeDetectsBoundViolation: a request passed over by more batch
// formations than the Marking-Cap permits must flip the verdict to FAIL.
func TestAnalyzeDetectsBoundViolation(t *testing.T) {
	tr := NewTracer(Config{})
	// ReadBuf 5, cap 5 → bound ceil(5/5)-1 = 0 batch formations.
	tr.Bind(Meta{Policy: "PAR-BS", MarkingCap: 5, ReadBufEntries: 5})
	tr.RequestArrived(1, 0, 0, 1, false, 0)
	tr.BatchFormedDetail(0, 5, 0, []int{0}, 0) // passes req 1 over: waited 1 > 0
	tr.BatchDrained(0, 10, 5)
	tr.RequestMarked(1, 0, 1, 20)
	tr.BatchFormedDetail(1, 20, 1, []int{1}, 0)
	tr.CommandIssued(1, 0, dram.CmdActivate, 0, 1, 0, 25)
	tr.RequestCompleted(1, 0, 40, 40)
	tr.BatchDrained(1, 40, 20)

	a := Analyze(tr.Log())
	au := a.Audit
	if au.BatchWaitBound != 0 || au.MaxBatchesWaited != 1 {
		t.Fatalf("setup wrong: bound=%d waited=%d", au.BatchWaitBound, au.MaxBatchesWaited)
	}
	if au.BatchWaitOK || au.Holds {
		t.Errorf("violation not detected: %+v", au)
	}
	var buf bytes.Buffer
	if err := a.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "VIOLATED") || !strings.Contains(out, "starvation audit: FAIL") {
		t.Errorf("text report does not flag the violation:\n%s", out)
	}
}

// TestAnalyzeUnbatchedPolicy: a policy that never forms batches (FR-FCFS)
// offers no bound; the audit reports that rather than vacuously passing.
func TestAnalyzeUnbatchedPolicy(t *testing.T) {
	tr := NewTracer(Config{})
	tr.Bind(Meta{Policy: "FR-FCFS", ReadBufEntries: 64})
	tr.RequestArrived(1, 0, 0, 1, false, 0)
	tr.CommandIssued(1, 0, dram.CmdActivate, 0, 1, -1, 10)
	tr.RequestCompleted(1, 0, 40, 40)

	a := Analyze(tr.Log())
	au := a.Audit
	if au.Batched || au.BatchWaitBound != -1 || au.Holds {
		t.Errorf("unbatched audit wrong: %+v", au)
	}
	// Never marked: the whole pre-command wait counts as unmarked-queued.
	if th := a.Threads[0]; th.UnmarkedWait != 10 || th.MarkedWait != 0 || th.Service != 30 {
		t.Errorf("unmarked decomposition wrong: %+v", th)
	}
	var buf bytes.Buffer
	if err := a.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "starvation audit: FAIL (no bound to audit)") {
		t.Errorf("text report lacks the no-bound FAIL line:\n%s", buf.String())
	}
}

// TestAnalyzeMarkEndFallsBackToCompletion: a marked request with no traced
// command charges its whole post-mark wait to marked-waiting, not service.
func TestAnalyzeMarkEndFallsBackToCompletion(t *testing.T) {
	tr := NewTracer(Config{})
	tr.Bind(Meta{Policy: "PAR-BS", MarkingCap: 5, ReadBufEntries: 5})
	tr.RequestArrived(1, 0, 0, 1, false, 0)
	tr.RequestMarked(1, 0, 0, 10)
	tr.BatchFormedDetail(0, 10, 1, []int{1}, 0)
	tr.RequestCompleted(1, 0, 60, 60)

	a := Analyze(tr.Log())
	if th := a.Threads[0]; th.UnmarkedWait != 10 || th.MarkedWait != 50 || th.Service != 0 {
		t.Errorf("fallback decomposition wrong: %+v", th)
	}
}
