package trace

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/dram"
)

// sampleTracer records a small run exercising every event kind.
func sampleTracer() *Tracer {
	tr := NewTracer(Config{MaxEvents: 64})
	tr.Bind(Meta{Policy: "PAR-BS", Workload: "test", Cores: 2, Banks: 2,
		CPUPerDRAM: 4, WarmupDRAM: 100, TotalDRAM: 1000,
		MarkingCap: 2, ReadBufEntries: 4})
	tr.RequestArrived(1, 0, 1, 7, false, 0)
	tr.RequestArrived(2, 1, 0, 3, true, 5)
	tr.RequestMarked(1, 0, 0, 10)
	tr.BatchFormedDetail(0, 10, 1, []int{1, 0}, 1)
	tr.CommandIssued(1, 0, dram.CmdActivate, 1, 7, 0, 20)
	tr.CommandIssued(-1, -1, dram.CmdRefresh, 0, 0, -1, 25)
	tr.RequestCompleted(1, 0, 50, 50)
	tr.BatchDrained(0, 60, 50)
	return tr
}

func TestTracerRecordsLifecycle(t *testing.T) {
	tr := sampleTracer()
	if tr.Events() != 8 {
		t.Fatalf("Events() = %d, want 8", tr.Events())
	}
	if tr.Dropped() != 0 {
		t.Fatalf("Dropped() = %d, want 0", tr.Dropped())
	}
	wantKinds := []Kind{KindArrive, KindArrive, KindMark, KindBatch,
		KindCommand, KindCommand, KindComplete, KindBatchEnd}
	log := tr.Log()
	for i, ev := range log.Events {
		if ev.Kind != wantKinds[i] {
			t.Errorf("event %d: kind %d, want %d", i, ev.Kind, wantKinds[i])
		}
	}
	if got := log.Events[1]; !got.Write || got.Thread != 1 || got.Cycle != 5 {
		t.Errorf("write arrival mangled: %+v", got)
	}
	if got := log.Events[4]; dram.Command(got.Cmd) != dram.CmdActivate || got.Rank != 0 {
		t.Errorf("command event mangled: %+v", got)
	}
	if got := log.Events[5]; got.Req != -1 || got.Thread != -1 || got.Rank != -1 {
		t.Errorf("controller refresh event not anonymous: %+v", got)
	}
	if len(log.BatchPerThread) != 1 || !reflect.DeepEqual(log.BatchPerThread[0], []int32{1, 0}) {
		t.Errorf("per-thread batch shape = %v, want [[1 0]]", log.BatchPerThread)
	}
}

func TestTracerCapCountsDrops(t *testing.T) {
	tr := NewTracer(Config{MaxEvents: 3})
	tr.Bind(Meta{})
	for i := int64(0); i < 5; i++ {
		tr.RequestArrived(i, 0, 0, 0, false, i)
	}
	tr.BatchFormedDetail(0, 10, 1, []int{1}, 0) // also dropped, no batchPT entry
	if tr.Events() != 3 {
		t.Errorf("Events() = %d, want 3", tr.Events())
	}
	if tr.Dropped() != 3 {
		t.Errorf("Dropped() = %d, want 3", tr.Dropped())
	}
	if got := len(tr.Log().BatchPerThread); got != 0 {
		t.Errorf("dropped batch left %d per-thread entries", got)
	}
}

func TestBindResetsState(t *testing.T) {
	tr := sampleTracer()
	tr.Bind(Meta{Policy: "FR-FCFS"})
	if tr.Events() != 0 || tr.Dropped() != 0 || len(tr.Log().BatchPerThread) != 0 {
		t.Errorf("Bind did not reset: events=%d dropped=%d", tr.Events(), tr.Dropped())
	}
	if tr.Meta().Policy != "FR-FCFS" {
		t.Errorf("Meta not restamped: %+v", tr.Meta())
	}
}

// TestJSONLRoundTrip pins the parbs.trace/v1 wire format: write → read
// recovers the log exactly, and a second write is byte-identical.
func TestJSONLRoundTrip(t *testing.T) {
	log := sampleTracer().Log()
	var first bytes.Buffer
	if err := WriteJSONL(&first, log); err != nil {
		t.Fatal(err)
	}
	back, err := ReadLog(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(log.Meta, back.Meta) {
		t.Errorf("meta round-trip:\n got %+v\nwant %+v", back.Meta, log.Meta)
	}
	if !reflect.DeepEqual(log.Events, back.Events) {
		t.Errorf("events round-trip mismatch (%d vs %d events)", len(back.Events), len(log.Events))
	}
	if !reflect.DeepEqual(log.BatchPerThread, back.BatchPerThread) {
		t.Errorf("per-thread round-trip: got %v, want %v", back.BatchPerThread, log.BatchPerThread)
	}
	var second bytes.Buffer
	if err := WriteJSONL(&second, back); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Error("write→read→write is not byte-identical; the schema pin is broken")
	}
}

func TestReadLogRejectsWrongSchema(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, sampleTracer().Log()); err != nil {
		t.Fatal(err)
	}
	mangled := strings.Replace(buf.String(), Schema, "parbs.trace/v0", 1)
	if _, err := ReadLog(strings.NewReader(mangled)); err == nil ||
		!strings.Contains(err.Error(), "schema") {
		t.Errorf("wrong schema accepted (err = %v)", err)
	}
	if _, err := ReadLog(strings.NewReader("")); err == nil {
		t.Error("empty log accepted")
	}
	if _, err := ReadLog(strings.NewReader(buf.String() + "{\"kind\":\"bogus\"}\n")); err == nil {
		t.Error("unknown event kind accepted")
	}
}

// TestChromeOutputIsValidJSON: the Perfetto artifact must always be one
// well-formed JSON document.
func TestChromeOutputIsValidJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, sampleTracer().Log()); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("chrome trace is not valid JSON:\n%s", buf.String())
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
		OtherData   map[string]any    `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("chrome trace has no events")
	}
	if doc.OtherData["schema"] != Schema {
		t.Errorf("otherData.schema = %v, want %s", doc.OtherData["schema"], Schema)
	}
}
