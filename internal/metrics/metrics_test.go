package metrics

import (
	"math"
	"testing"

	"repro/internal/cpu"
	"repro/internal/memctrl"
)

// outcome builds a ThreadOutcome with the given IPC and MCPI over a fixed
// cycle budget.
func outcome(ipc, mcpi float64) ThreadOutcome {
	const cycles = 1_000_000
	instr := int64(ipc * cycles)
	return ThreadOutcome{
		CPU: cpu.Stats{
			Cycles:         cycles,
			Instructions:   instr,
			MemStallCycles: int64(mcpi * float64(instr)),
			LoadsIssued:    instr / 100,
		},
	}
}

func cmp(aloneIPC, aloneMCPI, sharedIPC, sharedMCPI float64) Comparison {
	return Comparison{Alone: outcome(aloneIPC, aloneMCPI), Shared: outcome(sharedIPC, sharedMCPI)}
}

func TestMemSlowdown(t *testing.T) {
	c := cmp(1.0, 2.0, 0.5, 6.0)
	if got := c.MemSlowdown(); math.Abs(got-3) > 1e-9 {
		t.Errorf("MemSlowdown = %v, want 3", got)
	}
	// Slowdown floors at 1 (noise on stall-free threads).
	c = cmp(1.0, 2.0, 1.0, 1.0)
	if got := c.MemSlowdown(); got != 1 {
		t.Errorf("MemSlowdown = %v, want floor 1", got)
	}
	// Near-zero alone MCPI guarded.
	c = cmp(2.9, 0.0, 2.0, 0.1)
	if got := c.MemSlowdown(); math.IsInf(got, 0) || math.IsNaN(got) {
		t.Errorf("MemSlowdown = %v, must be finite", got)
	}
}

func TestIPCRatioAndSpeedups(t *testing.T) {
	cs := []Comparison{
		cmp(1.0, 1, 0.5, 2), // ratio 0.5
		cmp(2.0, 1, 1.0, 2), // ratio 0.5
	}
	if got := WeightedSpeedup(cs); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("WeightedSpeedup = %v, want 1.0", got)
	}
	if got := HmeanSpeedup(cs); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("HmeanSpeedup = %v, want 0.5", got)
	}
	if got := HmeanSpeedup(nil); got != 0 {
		t.Errorf("HmeanSpeedup(nil) = %v", got)
	}
	var zero Comparison
	if zero.IPCRatio() != 0 {
		t.Error("zero comparison IPCRatio must be 0")
	}
	if HmeanSpeedup([]Comparison{zero}) != 0 {
		t.Error("HmeanSpeedup with dead thread must be 0")
	}
}

func TestUnfairness(t *testing.T) {
	cs := []Comparison{
		cmp(1, 1.0, 0.9, 1.5), // slowdown 1.5
		cmp(1, 1.0, 0.5, 6.0), // slowdown 6
	}
	if got := Unfairness(cs); math.Abs(got-4) > 1e-9 {
		t.Errorf("Unfairness = %v, want 4", got)
	}
	if got := Unfairness(nil); got != 0 {
		t.Errorf("Unfairness(nil) = %v", got)
	}
	// Perfectly fair: identical slowdowns.
	fair := []Comparison{cmp(1, 1, 0.5, 2), cmp(1, 1, 0.5, 2)}
	if got := Unfairness(fair); math.Abs(got-1) > 1e-9 {
		t.Errorf("Unfairness = %v, want 1", got)
	}
}

func TestSlowdowns(t *testing.T) {
	cs := []Comparison{cmp(1, 1, 1, 2), cmp(1, 1, 1, 3)}
	sd := Slowdowns(cs)
	if len(sd) != 2 || math.Abs(sd[0]-2) > 1e-9 || math.Abs(sd[1]-3) > 1e-9 {
		t.Errorf("Slowdowns = %v", sd)
	}
}

func TestAvgASTAndWorstCase(t *testing.T) {
	a := cmp(1, 1, 1, 2)
	a.Shared.CPU.LoadsIssued = 10
	a.Shared.CPU.MemStallCycles = 1000
	a.Shared.Mem = memctrl.ThreadStats{WorstCaseLatency: 500}
	b := cmp(1, 1, 1, 2)
	b.Shared.CPU.LoadsIssued = 0 // no loads: excluded from AST mean
	b.Shared.Mem = memctrl.ThreadStats{WorstCaseLatency: 900}
	cs := []Comparison{a, b}
	if got := AvgASTPerReq(cs); math.Abs(got-100) > 1e-9 {
		t.Errorf("AvgASTPerReq = %v, want 100", got)
	}
	if got := WorstCaseLatency(cs, 10); got != 9000 {
		t.Errorf("WorstCaseLatency = %v, want 9000 (900 DRAM cycles x10)", got)
	}
}
