// Package metrics computes the paper's evaluation metrics (Section 7.1):
// per-thread memory slowdown, the unfairness index (max/min slowdown),
// weighted speedup, hmean speedup, average stall time per request and
// worst-case request latency.
package metrics

import (
	"repro/internal/cpu"
	"repro/internal/memctrl"
	"repro/internal/stats"
)

// ThreadOutcome bundles one thread's measured behavior in one run.
type ThreadOutcome struct {
	// Benchmark is the profile name.
	Benchmark string
	// CPU holds the core-side counters (instructions, stalls, IPC).
	CPU cpu.Stats
	// Mem holds the controller-side counters (latency, BLP, row hits).
	Mem memctrl.ThreadStats
}

// Comparison pairs a thread's shared-run outcome with its alone-run
// baseline on the same memory system.
type Comparison struct {
	Alone  ThreadOutcome
	Shared ThreadOutcome
}

// mcpiFloor guards slowdown ratios for threads whose alone run has nearly
// zero memory stall time (e.g. povray at 0.03 MPKI).
const mcpiFloor = 1e-4

// MemSlowdown returns the thread's memory slowdown
// MCPI_shared / MCPI_alone (Section 7.1).
func (c Comparison) MemSlowdown() float64 {
	alone := c.Alone.CPU.MCPI()
	if alone < mcpiFloor {
		alone = mcpiFloor
	}
	sd := c.Shared.CPU.MCPI() / alone
	if sd < 1 {
		// A thread cannot speed up from interference; tiny dips are
		// measurement noise on nearly-stall-free threads.
		sd = 1
	}
	return sd
}

// IPCRatio returns IPC_shared / IPC_alone, the per-thread speedup term.
func (c Comparison) IPCRatio() float64 {
	alone := c.Alone.CPU.IPC()
	if alone == 0 {
		return 0
	}
	return c.Shared.CPU.IPC() / alone
}

// Slowdowns extracts every thread's memory slowdown.
func Slowdowns(cs []Comparison) []float64 {
	out := make([]float64, len(cs))
	for i, c := range cs {
		out[i] = c.MemSlowdown()
	}
	return out
}

// Unfairness returns the unfairness index: the ratio between the maximum
// and minimum memory slowdown across threads. 1.0 is perfectly fair.
func Unfairness(cs []Comparison) float64 {
	if len(cs) == 0 {
		return 0
	}
	min, max := stats.MinMax(Slowdowns(cs))
	if min == 0 {
		return 0
	}
	return max / min
}

// WeightedSpeedup returns sum_i IPC_shared,i / IPC_alone,i (Snavely &
// Tullsen), the paper's system throughput metric.
func WeightedSpeedup(cs []Comparison) float64 {
	sum := 0.0
	for _, c := range cs {
		sum += c.IPCRatio()
	}
	return sum
}

// HmeanSpeedup returns NumThreads / sum_i (IPC_alone,i / IPC_shared,i)
// (Luo et al.), which balances fairness and throughput.
func HmeanSpeedup(cs []Comparison) float64 {
	if len(cs) == 0 {
		return 0
	}
	ratios := make([]float64, len(cs))
	for i, c := range cs {
		r := c.IPCRatio()
		if r <= 0 {
			return 0
		}
		ratios[i] = r
	}
	return stats.HMean(ratios)
}

// AvgASTPerReq returns the mean of per-thread average stall time per DRAM
// request in the shared run (Table 4's "AST/req"), in CPU cycles.
func AvgASTPerReq(cs []Comparison) float64 {
	vals := make([]float64, 0, len(cs))
	for _, c := range cs {
		if c.Shared.CPU.LoadsIssued > 0 {
			vals = append(vals, c.Shared.CPU.ASTPerReq())
		}
	}
	return stats.Mean(vals)
}

// WorstCaseLatency returns the maximum read latency any thread observed in
// the shared run, in CPU cycles given the CPU:DRAM clock ratio
// (Table 4's "WC lat.").
func WorstCaseLatency(cs []Comparison, cpuPerDRAM int64) int64 {
	var wc int64
	for _, c := range cs {
		if l := c.Shared.Mem.WorstCaseLatency * cpuPerDRAM; l > wc {
			wc = l
		}
	}
	return wc
}
