package sched

import (
	"repro/internal/dram"
	"repro/internal/memctrl"
)

// STFM implements the stall-time fair memory scheduler of Mutlu &
// Moscibroda ("Stall-time fair memory access scheduling for chip
// multiprocessors", MICRO 2007), the best previous scheduler the PAR-BS
// paper compares against.
//
// STFM estimates, inside the controller, each thread's memory slowdown
// S = Tshared/Talone, where Tshared is the memory stall time the thread
// experiences sharing the DRAM system and Talone is an estimate of its
// stall time had it run alone. When the ratio between the maximum and
// minimum slowdown exceeds alpha, the scheduler switches from FR-FCFS to a
// fairness mode that prioritizes the most-slowed thread.
//
// Estimation model (documented approximations, following the descriptions
// in both papers):
//
//   - Tshared accrues one cycle for every DRAM cycle in which the thread
//     has at least one buffered read (the thread is memory-stalled).
//   - Talone = Tshared - TInterference. Interference accrues when a command
//     is issued for another thread: threads waiting on the same bank are
//     charged the command's duration, and threads waiting on other banks
//     are charged the data-bus occupancy of CAS commands. Each charge is
//     divided by the victim's current bank-parallelism estimate (the number
//     of banks it has requests in), mirroring STFM's parallelism-scaled
//     interference accounting — the heuristic whose inaccuracy for
//     high-BLP threads (e.g. mcf) the PAR-BS paper highlights.
//   - Counters are halved every IntervalLength cycles so the estimate
//     tracks phase changes.
//
// Thread weights (Figure 14) scale perceived slowdowns: a weight-w thread's
// slowdown is inflated as 1 + (S-1)*w, so higher-weight threads hit the
// fairness threshold earlier and receive proportionally better service.
type STFM struct {
	// Alpha is the unfairness threshold; the paper uses 1.10.
	Alpha float64
	// IntervalLength is the counter-aging period in DRAM cycles; the paper
	// uses 2^24 processor cycles (2^21 DRAM cycles at a 10:1 clock ratio).
	IntervalLength int64

	weights []float64
	ctrl    *memctrl.Controller

	shared       []float64 // per-thread stall cycles while sharing
	interference []float64 // per-thread estimated extra stall cycles

	unfair     bool
	slowest    int
	burst      int64
	nextAgeing int64
	// epoch versions the (unfair, slowest) decision for the controller's
	// candidate cache; see OrderEpoch.
	epoch uint64
}

// NewSTFM returns an STFM scheduler with the paper's parameters
// (alpha = 1.10, IntervalLength = 2^24 CPU cycles) and equal weights.
func NewSTFM() *STFM {
	return &STFM{Alpha: 1.10, IntervalLength: 1 << 21}
}

// NewSTFMWeighted returns STFM with per-thread weights.
func NewSTFMWeighted(weights []float64) *STFM {
	s := NewSTFM()
	s.weights = append([]float64(nil), weights...)
	return s
}

// Name implements memctrl.Policy.
func (s *STFM) Name() string { return "STFM" }

// OnAttach sizes the per-thread estimators.
func (s *STFM) OnAttach(c *memctrl.Controller) {
	s.ctrl = c
	threads := c.NumThreads()
	if s.weights == nil {
		s.weights = equalWeights(threads)
	}
	if err := validateWeights(s.weights, threads); err != nil {
		panic(err)
	}
	s.shared = make([]float64, threads)
	s.interference = make([]float64, threads)
	s.burst = c.Device().BurstCycles()
	s.nextAgeing = s.IntervalLength
}

// OnEnqueue implements memctrl.Policy.
func (s *STFM) OnEnqueue(*memctrl.Request, int64) {}

// OnIssue charges interference to the threads delayed by this command.
func (s *STFM) OnIssue(c memctrl.Candidate, now int64) {
	issuer := c.Req.Thread
	bank := c.Req.Loc.Bank
	var dur int64
	t := s.ctrl.Device().Timing()
	switch c.Cmd {
	case dram.CmdActivate:
		dur = t.TRCD
	case dram.CmdPrecharge:
		dur = t.TRP
	default:
		// A CAS occupies its bank for the full access (tBankCAS), not just
		// the burst; same-bank waiters are delayed by that much.
		dur = t.TBankCAS
		if dur < s.burst {
			dur = s.burst
		}
	}
	for th := range s.shared {
		if th == issuer {
			continue
		}
		var charge float64
		if s.ctrl.ReadsInBank(th, bank) > 0 {
			charge = float64(dur) // bank interference
		} else if (c.Cmd == dram.CmdRead || c.Cmd == dram.CmdWrite) && s.ctrl.ReadsPerThread(th) > 0 {
			charge = float64(s.burst) // bus interference
		} else {
			continue
		}
		s.interference[th] += charge / float64(s.blpEstimate(th))
	}
}

// blpEstimate returns the number of banks the thread currently has requests
// in (at least 1), STFM's bank-parallelism divisor.
func (s *STFM) blpEstimate(thread int) int {
	banks := s.ctrl.Device().Geometry().Banks
	n := 0
	for b := 0; b < banks; b++ {
		if s.ctrl.ReadsInBank(thread, b) > 0 {
			n++
		}
	}
	if n < 1 {
		n = 1
	}
	return n
}

// OnComplete implements memctrl.Policy.
func (s *STFM) OnComplete(*memctrl.Request, int64) {}

// OnCycle accrues stall time, ages counters, and refreshes the fairness
// mode decision.
func (s *STFM) OnCycle(now int64) {
	for th := range s.shared {
		if s.ctrl.ReadsPerThread(th) > 0 {
			s.shared[th]++
		}
	}
	if now >= s.nextAgeing {
		for th := range s.shared {
			s.shared[th] /= 2
			s.interference[th] /= 2
		}
		s.nextAgeing = now + s.IntervalLength
	}
	maxS, minS := 0.0, 0.0
	slowest := 0
	for th := range s.shared {
		sd := s.Slowdown(th)
		if th == 0 || sd > maxS {
			maxS = sd
			slowest = th
		}
		if th == 0 || sd < minS {
			minS = sd
		}
	}
	unfair := minS > 0 && maxS/minS > s.Alpha
	if unfair != s.unfair || (unfair && slowest != s.slowest) {
		s.epoch++
	}
	s.unfair, s.slowest = unfair, slowest
}

// OrderEpoch implements memctrl.EpochedPolicy. Better depends on exactly
// two pieces of policy state — the fairness-mode flag and, when it is set,
// the identity of the slowest thread — and OnCycle bumps the epoch whenever
// that pair changes. Everything else Better reads (row-hit status, request
// ID) is invariant between bank events. STFM is not a NextEventer, so
// OnCycle runs on every cycle and no decision change can be skipped over.
func (s *STFM) OrderEpoch() uint64 { return s.epoch }

// Slowdown returns the thread's estimated weighted memory slowdown.
func (s *STFM) Slowdown(thread int) float64 {
	sh := s.shared[thread]
	alone := sh - s.interference[thread]
	if alone < 1 {
		alone = 1
	}
	sd := sh / alone
	if sd < 1 {
		sd = 1
	}
	const maxSlowdown = 64 // guard against a vanishing Talone estimate
	if sd > maxSlowdown {
		sd = maxSlowdown
	}
	return 1 + (sd-1)*s.weights[thread]
}

// InFairnessMode reports whether the scheduler is currently prioritizing
// the most-slowed thread rather than running plain FR-FCFS.
func (s *STFM) InFairnessMode() bool { return s.unfair }

// Better implements memctrl.Policy: FR-FCFS normally; in fairness mode,
// the most-slowed thread's requests first, then row-hit, then oldest.
func (s *STFM) Better(a, b memctrl.Candidate) bool {
	if s.unfair {
		as, bs := a.Req.Thread == s.slowest, b.Req.Thread == s.slowest
		if as != bs {
			return as
		}
	}
	if a.IsRowHit() != b.IsRowHit() {
		return a.IsRowHit()
	}
	return a.Req.ID < b.Req.ID
}
