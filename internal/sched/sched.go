// Package sched provides the DRAM scheduling policies evaluated in the
// PAR-BS paper (Mutlu & Moscibroda, ISCA 2008):
//
//   - FCFS: first-come-first-serve over ready commands;
//   - FR-FCFS: first-ready FCFS, the throughput-oriented baseline
//     (Rixner et al., Zuravleff & Robinson) that prioritizes row hits;
//   - NFQ: the network-fair-queueing based QoS scheduler of Nesbit et al.
//     (MICRO 2006), in its FQ-VFTF variant with priority-inversion
//     prevention;
//   - STFM: the stall-time fair memory scheduler of Mutlu & Moscibroda
//     (MICRO 2007);
//   - PAR-BS: the paper's contribution, implemented in internal/core.
//
// All policies order read requests; the controller keeps writes off the
// critical path (see internal/memctrl).
package sched

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/memctrl"
)

// FCFS services requests strictly in arrival order among ready commands.
type FCFS struct{ noopHooks }

// NewFCFS returns the FCFS policy.
func NewFCFS() *FCFS { return &FCFS{} }

// Name implements memctrl.Policy.
func (*FCFS) Name() string { return "FCFS" }

// Better implements memctrl.Policy: oldest first.
func (*FCFS) Better(a, b memctrl.Candidate) bool { return a.Req.ID < b.Req.ID }

// FRFCFS is the first-ready FCFS policy: row-hit commands first, then
// oldest first (Section 3 of the paper).
type FRFCFS struct{ noopHooks }

// NewFRFCFS returns the FR-FCFS policy.
func NewFRFCFS() *FRFCFS { return &FRFCFS{} }

// Name implements memctrl.Policy.
func (*FRFCFS) Name() string { return "FR-FCFS" }

// Better implements memctrl.Policy: row-hit first, then oldest.
func (*FRFCFS) Better(a, b memctrl.Candidate) bool {
	if a.IsRowHit() != b.IsRowHit() {
		return a.IsRowHit()
	}
	return a.Req.ID < b.Req.ID
}

// NewPARBS returns the PAR-BS scheduler with the given options; it is a
// convenience constructor over internal/core.
func NewPARBS(opts core.Options) *core.Engine { return core.NewEngine(opts) }

// NewPARBSDefault returns PAR-BS with the paper's evaluated configuration
// (full batching, Marking-Cap 5, Max-Total ranking).
func NewPARBSDefault() *core.Engine { return core.NewEngine(core.DefaultOptions()) }

// noopHooks provides empty memctrl.Policy hooks for stateless policies.
type noopHooks struct{}

func (noopHooks) OnAttach(*memctrl.Controller)       {}
func (noopHooks) OnEnqueue(*memctrl.Request, int64)  {}
func (noopHooks) OnIssue(memctrl.Candidate, int64)   {}
func (noopHooks) OnComplete(*memctrl.Request, int64) {}
func (noopHooks) OnCycle(int64)                      {}

// NextPolicyEventAt implements memctrl.NextEventer: policies embedding
// noopHooks carry no time-driven state, so they never schedule a
// self-driven event and the simulation clock may skip freely between
// controller events.
func (noopHooks) NextPolicyEventAt(int64) int64 { return math.MaxInt64 }

// OrderEpoch implements memctrl.EpochedPolicy with a constant: FCFS and
// FR-FCFS order on request ID and current row-hit status only, both
// invariant between bank events, so their candidate-cache entries never go
// stale by mere passage of time.
func (noopHooks) OrderEpoch() uint64 { return 0 }

// equalWeights returns a slice of n 1.0 weights.
func equalWeights(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

// validateWeights checks a per-thread weight vector.
func validateWeights(weights []float64, threads int) error {
	if len(weights) != threads {
		return fmt.Errorf("sched: got %d weights for %d threads", len(weights), threads)
	}
	for t, w := range weights {
		if w <= 0 {
			return fmt.Errorf("sched: thread %d has non-positive weight %v", t, w)
		}
	}
	return nil
}
