package sched

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/memctrl"
)

// cand builds a candidate for comparator unit tests.
func cand(id int64, thread int, bank int, hit bool, deadline float64) memctrl.Candidate {
	state := dram.RowConflict
	cmd := dram.CmdPrecharge
	if hit {
		state = dram.RowHit
		cmd = dram.CmdRead
	}
	return memctrl.Candidate{
		Req:      &memctrl.Request{ID: id, Thread: thread, Loc: dram.Location{Bank: bank}, Deadline: deadline},
		Cmd:      cmd,
		RowState: state,
	}
}

func TestFCFSOrder(t *testing.T) {
	p := NewFCFS()
	old := cand(1, 0, 0, false, 0)
	young := cand(2, 1, 0, true, 0)
	if !p.Better(old, young) {
		t.Error("FCFS must prefer the older request even against a row hit")
	}
	if p.Better(young, old) {
		t.Error("FCFS ordering not antisymmetric")
	}
	if p.Name() != "FCFS" {
		t.Error("bad name")
	}
}

func TestFRFCFSOrder(t *testing.T) {
	p := NewFRFCFS()
	oldConflict := cand(1, 0, 0, false, 0)
	youngHit := cand(2, 1, 0, true, 0)
	if !p.Better(youngHit, oldConflict) {
		t.Error("FR-FCFS must prefer a younger row hit over an older conflict")
	}
	hitA, hitB := cand(3, 0, 0, true, 0), cand(4, 0, 0, true, 0)
	if !p.Better(hitA, hitB) {
		t.Error("FR-FCFS must break row-hit ties by age")
	}
	if p.Name() != "FR-FCFS" {
		t.Error("bad name")
	}
}

func newPolicyController(t *testing.T, p memctrl.Policy, threads int) *memctrl.Controller {
	t.Helper()
	dev, err := dram.NewDevice(dram.DDR2_800(), dram.DefaultGeometry())
	if err != nil {
		t.Fatal(err)
	}
	c, err := memctrl.NewController(dev, p, memctrl.DefaultConfig(threads))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNFQDeadlineStamping(t *testing.T) {
	p := NewNFQ()
	c := newPolicyController(t, p, 2)
	g := c.Device().Geometry()
	a1 := g.Unmap(dram.Location{Bank: 0, Row: 1, Col: 0})
	r1, _ := c.EnqueueRead(0, a1, 100)
	if r1.Deadline <= 100 {
		t.Errorf("deadline = %v, want > enqueue time", r1.Deadline)
	}
	// Second request from the same thread to the same bank: deadline must
	// stack on the first (virtual clock advances).
	r2, _ := c.EnqueueRead(0, a1+64, 100)
	if r2.Deadline <= r1.Deadline {
		t.Errorf("second deadline %v not after first %v", r2.Deadline, r1.Deadline)
	}
	// A different thread's first request gets an earlier deadline than the
	// backlogged thread's second — per-thread fair queueing.
	r3, _ := c.EnqueueRead(1, g.Unmap(dram.Location{Bank: 0, Row: 9, Col: 0}), 100)
	if r3.Deadline >= r2.Deadline {
		t.Errorf("fresh thread deadline %v should beat backlogged %v", r3.Deadline, r2.Deadline)
	}
}

func TestNFQWeightsScaleShares(t *testing.T) {
	p := NewNFQWeighted([]float64{8, 1})
	c := newPolicyController(t, p, 2)
	g := c.Device().Geometry()
	addr := func(th int, row int64) int64 {
		return g.Unmap(dram.Location{Bank: 0, Row: row, Col: 0})
	}
	r0, _ := c.EnqueueRead(0, addr(0, 1), 0)
	r1, _ := c.EnqueueRead(1, addr(1, 2), 0)
	// Weight 8 thread's quantum is 1/8th: its deadline is much earlier.
	if (r0.Deadline-0)*8 > (r1.Deadline-0)*1+1e-9 {
		t.Errorf("weighted deadlines wrong: w8 -> %v, w1 -> %v", r0.Deadline, r1.Deadline)
	}
}

func TestNFQBadWeightsPanicOnAttach(t *testing.T) {
	dev, err := dram.NewDevice(dram.DDR2_800(), dram.DefaultGeometry())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("NFQ with wrong weight count did not panic at attach")
		}
	}()
	memctrl.NewController(dev, NewNFQWeighted([]float64{1}), memctrl.DefaultConfig(2)) //nolint:errcheck
}

func TestNFQEarlierDeadlineFirst(t *testing.T) {
	p := NewNFQ()
	newPolicyController(t, p, 2)
	a := cand(1, 0, 0, false, 50)
	b := cand(2, 1, 1, false, 60)
	if !p.Better(a, b) || p.Better(b, a) {
		t.Error("NFQ must prefer the earlier virtual deadline")
	}
	// Equal deadlines: row-hit wins, then age.
	h := cand(3, 0, 2, true, 50)
	nh := cand(4, 1, 3, false, 50)
	if !p.Better(h, nh) {
		t.Error("NFQ must prefer row hit on deadline ties")
	}
}

func TestNFQPriorityInversionPrevention(t *testing.T) {
	p := NewNFQ()
	c := newPolicyController(t, p, 2)
	// Record an activate on bank 0 at cycle 100.
	act := cand(1, 0, 0, false, 0)
	act.Cmd = dram.CmdActivate
	p.OnIssue(act, 100)
	p.OnCycle(101)                      // now = 101, within tRAS of the activate
	hitLate := cand(5, 0, 0, true, 1e9) // terrible deadline but a row hit
	conflictEarly := cand(2, 1, 1, false, 1)
	if !p.Better(hitLate, conflictEarly) {
		t.Error("within tRAS of activate, a row hit must override deadlines")
	}
	// After the tRAS window the deadline order must reassert.
	p.OnCycle(100 + c.Device().Timing().TRAS + 1)
	if p.Better(hitLate, conflictEarly) {
		t.Error("after tRAS window, earliest deadline must win again")
	}
}

func TestSTFMStartsFair(t *testing.T) {
	p := NewSTFM()
	newPolicyController(t, p, 2)
	p.OnCycle(0)
	if p.InFairnessMode() {
		t.Error("STFM must start out of fairness mode")
	}
	if s := p.Slowdown(0); s != 1 {
		t.Errorf("initial slowdown = %v, want 1", s)
	}
	// Out of fairness mode it behaves like FR-FCFS.
	hit := cand(2, 0, 0, true, 0)
	conflict := cand(1, 1, 0, false, 0)
	if !p.Better(hit, conflict) {
		t.Error("STFM outside fairness mode must be FR-FCFS")
	}
}

func TestSTFMFairnessModeTriggers(t *testing.T) {
	p := NewSTFM()
	c := newPolicyController(t, p, 2)
	g := c.Device().Geometry()
	// Thread 1 parks a request in bank 0 and accrues interference while
	// thread 0's commands are issued to the same bank.
	c.EnqueueRead(1, g.Unmap(dram.Location{Bank: 0, Row: 50, Col: 0}), 0)
	c.EnqueueRead(0, g.Unmap(dram.Location{Bank: 0, Row: 1, Col: 0}), 0)
	for i := 0; i < 2000; i++ {
		p.OnCycle(int64(i))
		p.OnIssue(cand(int64(i), 0, 0, false, 0), int64(i))
	}
	if !p.InFairnessMode() {
		t.Errorf("heavy one-sided interference must trigger fairness mode (slowdowns %v vs %v)",
			p.Slowdown(1), p.Slowdown(0))
	}
	// In fairness mode, the slowest thread's conflict beats another's hit.
	victim := cand(100, 1, 0, false, 0)
	aggressorHit := cand(99, 0, 0, true, 0)
	if !p.Better(victim, aggressorHit) {
		t.Error("fairness mode must prioritize the most-slowed thread")
	}
}

func TestSTFMWeightsInflateSlowdown(t *testing.T) {
	pw := NewSTFMWeighted([]float64{4, 1})
	c := newPolicyController(t, pw, 2)
	g := c.Device().Geometry()
	c.EnqueueRead(0, g.Unmap(dram.Location{Bank: 0, Row: 50, Col: 0}), 0)
	c.EnqueueRead(1, g.Unmap(dram.Location{Bank: 0, Row: 60, Col: 0}), 0)
	for i := 0; i < 500; i++ {
		pw.OnCycle(int64(i))
		// Interference flows to BOTH from a phantom third... use thread 1
		// issuing so thread 0 is the victim.
		pw.OnIssue(cand(int64(i), 1, 0, false, 0), int64(i))
	}
	if pw.Slowdown(0) <= pw.Slowdown(1) {
		t.Errorf("weighted victim slowdown %v must exceed issuer's %v", pw.Slowdown(0), pw.Slowdown(1))
	}
}

func TestSTFMAgeingHalvesCounters(t *testing.T) {
	p := NewSTFM()
	p.IntervalLength = 100
	c := newPolicyController(t, p, 2)
	g := c.Device().Geometry()
	c.EnqueueRead(1, g.Unmap(dram.Location{Bank: 0, Row: 50, Col: 0}), 0)
	for i := 0; i < 99; i++ {
		p.OnCycle(int64(i))
		p.OnIssue(cand(int64(i), 0, 0, false, 0), int64(i))
	}
	before := p.Slowdown(1)
	p.OnCycle(100) // ageing boundary
	after := p.Slowdown(1)
	if after > before {
		t.Errorf("ageing must not increase slowdown: before %v after %v", before, after)
	}
}

func TestRegistry(t *testing.T) {
	for _, name := range Names() {
		p, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, p.Name())
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Error("ByName accepted unknown scheduler")
	}
}

// TestAllPoliciesCompleteMixedWorkload drives every registered policy with
// the same mixed multi-thread request stream and checks full completion —
// the controller-level liveness contract.
func TestAllPoliciesCompleteMixedWorkload(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			p, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			c := newPolicyController(t, p, 4)
			g := c.Device().Geometry()
			sent := 0
			now := int64(0)
			for ; now < 5000; now++ {
				if now%5 == 0 && sent < 400 {
					th := sent % 4
					row := int64(sent % 13)
					bank := sent % g.Banks
					addr := g.Unmap(dram.Location{Bank: bank, Row: row + int64(th)*100, Col: int64(sent % 32)})
					if _, ok := c.EnqueueRead(th, addr, now); ok {
						sent++
					}
				}
				c.Tick(now)
			}
			for ; now < 100000 && c.PendingReads() > 0; now++ {
				c.Tick(now)
			}
			var done int64
			for th := 0; th < 4; th++ {
				done += c.ThreadStats(th).ReadsCompleted
			}
			if done != int64(sent) {
				t.Errorf("%s: completed %d of %d reads", name, done, sent)
			}
		})
	}
}

// TestPARBSPreservesBankParallelism reproduces the paper's central claim at
// micro scale (Figure 2): two threads each with requests to two banks.
// Under PAR-BS, the high-parallelism service order must give at least one
// thread overlapped service, yielding strictly better average completion
// than serializing both.
func TestPARBSPreservesBankParallelism(t *testing.T) {
	p := NewPARBS(core.DefaultOptions())
	c := newPolicyController(t, p, 2)
	g := c.Device().Geometry()
	lastDone := map[int]int64{}
	c.SetOnComplete(func(r *memctrl.Request, end int64) {
		if end > lastDone[r.Thread] {
			lastDone[r.Thread] = end
		}
	})
	// T0: banks 0 and 1; T1: banks 0 and 1 (the Figure 2 pattern).
	c.EnqueueRead(0, g.Unmap(dram.Location{Bank: 0, Row: 1, Col: 0}), 0)
	c.EnqueueRead(1, g.Unmap(dram.Location{Bank: 1, Row: 101, Col: 0}), 0)
	c.EnqueueRead(1, g.Unmap(dram.Location{Bank: 0, Row: 102, Col: 0}), 0)
	c.EnqueueRead(0, g.Unmap(dram.Location{Bank: 1, Row: 2, Col: 0}), 0)
	for now := int64(0); now < 500; now++ {
		c.Tick(now)
	}
	if len(lastDone) != 2 {
		t.Fatal("not all threads completed")
	}
	// One thread must finish both its requests within ~one bank access of
	// the other's first completion — i.e., the winner's stall is one bank
	// latency, not two.
	tm := c.Device().Timing()
	oneAccess := tm.TRCD + tm.TCL + c.Device().BurstCycles() + tm.TRP
	min := lastDone[0]
	if lastDone[1] < min {
		min = lastDone[1]
	}
	if min > 2*oneAccess {
		t.Errorf("fastest thread finished at %d; want within ~%d (bank parallelism preserved)", min, 2*oneAccess)
	}
}
