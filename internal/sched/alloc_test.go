//go:build !parbsdebug

package sched

// The scheduling fast path must be allocation-free in steady state: the
// per-cycle decision (candidate cache, intrusive buffers, deferred BLP,
// PAR-BS batch bookkeeping) runs millions of times per simulated second,
// and a single allocation per decision would put the garbage collector on
// the simulator's critical path. The guard below pins zero allocations per
// evaluated cycle; BenchmarkPolicyDecision tracks the decision cost itself
// (run with -benchmem via scripts/bench.sh).
//
// The file is excluded from parbsdebug builds: that tag's per-scan cache
// audit rebuilds every bank into fresh scratch by design, so the
// zero-allocation invariant holds only for release builds.

import (
	"testing"

	"repro/internal/dram"
	"repro/internal/memctrl"
)

// fillDecisionState builds a PAR-BS controller in scheduling steady state:
// the read buffer filled with a multi-thread, multi-bank, multi-row spread
// (plus buffered writebacks), ticked far enough that batch formation,
// thread ranking and the candidate cache are all live. It returns the
// controller and the next cycle to tick. No requests are enqueued after
// this point, so a measured tick window exercises pure decision work.
func fillDecisionState(tb testing.TB, threads int) (*memctrl.Controller, int64) {
	tb.Helper()
	pol, err := ByName("PAR-BS")
	if err != nil {
		tb.Fatal(err)
	}
	dev, err := dram.NewDevice(dram.DDR2_800(), dram.DefaultGeometry())
	if err != nil {
		tb.Fatal(err)
	}
	c, err := memctrl.NewController(dev, pol, memctrl.DefaultConfig(threads))
	if err != nil {
		tb.Fatal(err)
	}
	g := dev.Geometry()
	n := 0
	for r := int64(0); n < 4*g.Banks*threads; r++ {
		for t := 0; t < threads; t++ {
			for b := 0; b < g.Banks; b++ {
				addr := g.Unmap(dram.Location{Bank: b, Row: (int64(t)*97 + r*13) % g.Rows, Col: r % g.ColumnsPerRow()})
				if _, ok := c.EnqueueRead(t, addr, 0); !ok {
					tb.Fatalf("read buffer full after %d enqueues", n)
				}
				n++
			}
		}
	}
	for i := 0; i < 24; i++ {
		addr := g.Unmap(dram.Location{Bank: i % g.Banks, Row: int64(i*31) % g.Rows, Col: 0})
		if !c.EnqueueWrite(i%threads, addr, 0) {
			tb.Fatalf("write buffer full after %d enqueues", i)
		}
	}
	// Warm up past the first batch formations so marking, ranking and the
	// per-bank candidate cache are all populated.
	now := int64(1)
	for ; now <= 100; now++ {
		c.Tick(now)
	}
	return c, now
}

// TestPolicyDecisionAllocFree pins the steady-state scheduling path to zero
// allocations per evaluated cycle. The window is sized so the pre-filled
// buffer cannot drain: a run that went idle would pass vacuously, so the
// guard asserts reads are still pending afterwards.
func TestPolicyDecisionAllocFree(t *testing.T) {
	c, now := fillDecisionState(t, 4)
	allocs := testing.AllocsPerRun(200, func() {
		c.Tick(now)
		now++
	})
	if allocs != 0 {
		t.Errorf("scheduling path allocates %.2f times per evaluated cycle, want 0", allocs)
	}
	if c.PendingReads() == 0 {
		t.Fatal("read buffer drained during the measured window; the guard is vacuous")
	}
}

// BenchmarkPolicyDecision measures the per-evaluated-cycle cost of the full
// scheduling decision — retire, policy hooks, candidate selection, command
// issue — against a PAR-BS steady state. The buffer is refilled from the
// benchmark loop whenever it runs low so every iteration does real decision
// work; refills draw recycled requests, so -benchmem should report zero
// allocations per decision.
func BenchmarkPolicyDecision(b *testing.B) {
	c, now := fillDecisionState(b, 4)
	g := c.Device().Geometry()
	row := int64(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c.PendingReads() < g.Banks {
			row++
			for t := 0; t < 4; t++ {
				for bk := 0; bk < g.Banks; bk++ {
					addr := g.Unmap(dram.Location{Bank: bk, Row: (int64(t)*89 + row*17) % g.Rows, Col: row % g.ColumnsPerRow()})
					if _, ok := c.EnqueueRead(t, addr, now); !ok {
						break
					}
				}
			}
		}
		c.Tick(now)
		now++
	}
}
