package sched

import (
	"fmt"

	"repro/internal/memctrl"
)

// Names lists the scheduler names evaluated in the paper, in its
// presentation order.
func Names() []string {
	return []string{"FR-FCFS", "FCFS", "NFQ", "STFM", "PAR-BS"}
}

// ExtraNames lists additional schedulers beyond the paper's five:
// NFQ-ST is the start-time fair queueing improvement of Rafique et al.
// cited in related work; FR-FCFS+Cap limits row-hit streaks; TDM and
// TDM-strict are the hard-partitioning real-time baselines of [19,16].
func ExtraNames() []string { return []string{"NFQ-ST", "FR-FCFS+Cap", "TDM", "TDM-strict"} }

// ByName constructs a fresh scheduler by its paper name (see Names and
// ExtraNames). PAR-BS is built with the paper's default options (full
// batching, Marking-Cap 5, Max-Total ranking).
func ByName(name string) (memctrl.Policy, error) {
	switch name {
	case "FCFS":
		return NewFCFS(), nil
	case "FR-FCFS":
		return NewFRFCFS(), nil
	case "NFQ":
		return NewNFQ(), nil
	case "NFQ-ST":
		return NewNFQStartTime(), nil
	case "FR-FCFS+Cap":
		return NewFRFCFSCap(4), nil
	case "TDM":
		return NewTDM(64), nil
	case "TDM-strict":
		return NewStrictTDM(64), nil
	case "STFM":
		return NewSTFM(), nil
	case "PAR-BS":
		return NewPARBSDefault(), nil
	default:
		return nil, fmt.Errorf("sched: unknown scheduler %q (known: %v + %v)", name, Names(), ExtraNames())
	}
}
