package sched

import (
	"testing"

	"repro/internal/dram"
)

func TestNFQStartTimeName(t *testing.T) {
	if NewNFQStartTime().Name() != "NFQ-ST" {
		t.Error("bad name")
	}
	p, err := ByName("NFQ-ST")
	if err != nil || p.Name() != "NFQ-ST" {
		t.Errorf("registry: %v %v", p, err)
	}
	if len(ExtraNames()) == 0 {
		t.Error("ExtraNames empty")
	}
}

// TestStartTimeIgnoresOwnBacklog: under STFQ, a backlogged thread's new
// request is stamped with its virtual *start* (which stacks), but compared
// against a fresh thread the gap is one quantum smaller than under VFTF —
// the fresh request does not additionally pay the backlogged thread's
// service quantum.
func TestStartTimeDeadlinesBelowFinishDeadlines(t *testing.T) {
	g := dram.DefaultGeometry()
	addr := g.Unmap(dram.Location{Bank: 0, Row: 1, Col: 0})

	cv := newPolicyController(t, NewNFQ(), 2)
	cs := newPolicyController(t, NewNFQStartTime(), 2)
	rv, _ := cv.EnqueueRead(0, addr, 100)
	rs, _ := cs.EnqueueRead(0, addr, 100)
	if rs.Deadline >= rv.Deadline {
		t.Errorf("start-time deadline %v must precede finish-time deadline %v", rs.Deadline, rv.Deadline)
	}
	// Backlog stacking still happens (second request starts after first's
	// virtual finish).
	rs2, _ := cs.EnqueueRead(0, addr+64, 100)
	if rs2.Deadline <= rs.Deadline {
		t.Errorf("backlogged start %v must be after first start %v", rs2.Deadline, rs.Deadline)
	}
}

// TestStartTimeFairnessOrdering: a fresh thread's first request must beat a
// backlogged thread's queued tail under both variants, but STFQ gives the
// backlogged thread's head request the same start as the fresh thread's
// (fairer head-of-line treatment).
func TestStartTimeHeadOfLineParity(t *testing.T) {
	p := NewNFQStartTime()
	c := newPolicyController(t, p, 2)
	g := dram.DefaultGeometry()
	a0 := g.Unmap(dram.Location{Bank: 0, Row: 1, Col: 0})
	a1 := g.Unmap(dram.Location{Bank: 1, Row: 2, Col: 0})
	r0, _ := c.EnqueueRead(0, a0, 50)
	r1, _ := c.EnqueueRead(1, a1, 50)
	if r0.Deadline != r1.Deadline {
		t.Errorf("same-cycle head-of-line starts differ: %v vs %v", r0.Deadline, r1.Deadline)
	}
}
