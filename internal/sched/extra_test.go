package sched

import (
	"testing"

	"repro/internal/dram"
	"repro/internal/memctrl"
)

// run a bank-capture scenario: an older victim conflict parked behind a
// continuously refilled row-hit stream; returns the service order.
func runCapture(t *testing.T, p memctrl.Policy) []int {
	t.Helper()
	c := newPolicyController(t, p, 2)
	g := c.Device().Geometry()
	var order []int
	c.SetOnComplete(func(r *memctrl.Request, end int64) { order = append(order, r.Thread) })
	// Two hits open the row and start the stream.
	c.EnqueueRead(0, g.Unmap(dram.Location{Bank: 0, Row: 1, Col: 0}), 0)
	c.EnqueueRead(0, g.Unmap(dram.Location{Bank: 0, Row: 1, Col: 1}), 0)
	now := int64(0)
	for ; now < 30; now++ {
		c.Tick(now)
	}
	// The victim arrives while the stream runs...
	c.EnqueueRead(1, g.Unmap(dram.Location{Bank: 0, Row: 900, Col: 0}), now)
	// ...immediately followed by a burst of YOUNGER hits that would all
	// bypass it under plain FR-FCFS.
	for col := int64(2); col < 12; col++ {
		c.EnqueueRead(0, g.Unmap(dram.Location{Bank: 0, Row: 1, Col: col}), now)
	}
	for ; now < 6000 && len(order) < 13; now++ {
		c.Tick(now)
	}
	return order
}

func TestFRFCFSCapBoundsBypasses(t *testing.T) {
	pos := func(order []int) int {
		for i, th := range order {
			if th == 1 {
				return i
			}
		}
		return -1
	}
	capped := runCapture(t, NewFRFCFSCap(2))
	plain := runCapture(t, NewFRFCFS())
	cp, pp := pos(capped), pos(plain)
	if cp < 0 || pp < 0 {
		t.Fatalf("victim never serviced: capped=%v plain=%v", capped, plain)
	}
	if cp >= pp {
		t.Errorf("cap=2 served victim at position %d, plain FR-FCFS at %d; cap must bound bypasses (capped order %v, plain %v)",
			cp, pp, capped, plain)
	}
}

func TestFRFCFSCapDefaultsAndName(t *testing.T) {
	if NewFRFCFSCap(0).Cap != 1 {
		t.Error("cap floor not applied")
	}
	if NewFRFCFSCap(4).Name() != "FR-FCFS+Cap" {
		t.Error("bad name")
	}
}

func TestTDMSlotOwnership(t *testing.T) {
	p := NewTDM(10)
	newPolicyController(t, p, 4)
	cases := map[int64]int{0: 0, 9: 0, 10: 1, 25: 2, 39: 3, 40: 0}
	for now, want := range cases {
		p.OnCycle(now)
		if got := p.Owner(); got != want {
			t.Errorf("cycle %d: owner = %d, want %d", now, got, want)
		}
	}
}

func TestTDMPrefersSlotOwner(t *testing.T) {
	p := NewTDM(100)
	newPolicyController(t, p, 2)
	p.OnCycle(0) // owner = thread 0
	ownerConflict := cand(9, 0, 0, false, 0)
	otherHit := cand(1, 1, 1, true, 0)
	if !p.Better(ownerConflict, otherHit) {
		t.Error("slot owner's request must win")
	}
	// Within the owner's own requests: FR-FCFS.
	if !p.Better(cand(5, 0, 0, true, 0), cand(2, 0, 0, false, 0)) {
		t.Error("row-hit-first must apply within the slot")
	}
}

func TestStrictTDMEligibility(t *testing.T) {
	p := NewStrictTDM(50)
	c := newPolicyController(t, p, 2)
	g := c.Device().Geometry()
	if p.Name() != "TDM-strict" || NewTDM(50).Name() != "TDM" {
		t.Error("bad names")
	}
	p.OnCycle(0)
	r0 := &memctrl.Request{Thread: 0}
	r1 := &memctrl.Request{Thread: 1}
	if !p.Eligible(r0) || p.Eligible(r1) {
		t.Error("strict TDM must admit only the slot owner")
	}
	// Work-conserving variant admits everyone.
	wc := NewTDM(50)
	newPolicyController(t, wc, 2)
	wc.OnCycle(0)
	if !wc.Eligible(r1) {
		t.Error("work-conserving TDM must admit all threads")
	}

	// End to end: with strict TDM, an out-of-slot thread's request waits
	// for its slot even with the channel idle.
	var doneAt int64 = -1
	c.SetOnComplete(func(r *memctrl.Request, end int64) { doneAt = end })
	c.EnqueueRead(1, g.Unmap(dram.Location{Bank: 0, Row: 1, Col: 0}), 0)
	for now := int64(0); now < 400 && doneAt < 0; now++ {
		c.Tick(now)
	}
	if doneAt < 50 {
		t.Errorf("out-of-slot request serviced at %d, before thread 1's slot begins at 50", doneAt)
	}
}

// TestTDMHardIsolation: under strict TDM, an aggressor cannot slow the
// victim's slot service beyond slot-wait effects — the hard-QoS property —
// while total throughput suffers vs FR-FCFS.
func TestTDMCompletesWork(t *testing.T) {
	p := NewStrictTDM(32)
	c := newPolicyController(t, p, 2)
	g := c.Device().Geometry()
	done := 0
	c.SetOnComplete(func(r *memctrl.Request, end int64) { done++ })
	sent := 0
	for now := int64(0); now < 20000; now++ {
		if now%20 == 0 && sent < 200 {
			th := sent % 2
			c.EnqueueRead(th, g.Unmap(dram.Location{Bank: sent % 8, Row: int64(sent%40) + int64(th)*600, Col: 0}), now)
			sent++
		}
		c.Tick(now)
	}
	for now := int64(20000); now < 80000 && done < sent; now++ {
		c.Tick(now)
	}
	if done != sent {
		t.Errorf("strict TDM completed %d of %d", done, sent)
	}
}

func TestRegistryExtras(t *testing.T) {
	for _, name := range ExtraNames() {
		p, err := ByName(name)
		if err != nil || p.Name() != name {
			t.Errorf("ByName(%q) = %v, %v", name, p, err)
		}
	}
}
