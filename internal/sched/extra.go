package sched

import (
	"math"

	"repro/internal/dram"
	"repro/internal/memctrl"
)

// This file holds additional baselines beyond the paper's four:
//
//   - FRFCFSCap: FR-FCFS with a cap on consecutive row hits per bank, the
//     classic streak-limited variant (after Mutlu & Moscibroda's MICRO 2007
//     discussion of FR-FCFS+Cap) that blunts bank capture without full QoS
//     machinery;
//   - TDM: per-thread time-division multiplexing, the hard-guarantee
//     approach of the real-time controllers the paper cites ([19], [16]),
//     which trades throughput for exact bandwidth partitioning.

// FRFCFSCap is FR-FCFS+Cap (as discussed alongside STFM in Mutlu &
// Moscibroda, MICRO 2007): a row hit may bypass an older waiting request
// to the same bank at most Cap times in a row. Once the cap is reached,
// the row-hit preference is suspended for that bank and the oldest
// request wins, bounding bank capture without full QoS machinery.
type FRFCFSCap struct {
	// Cap is the maximum consecutive younger-hit bypasses per bank.
	Cap int

	ctrl *memctrl.Controller
	// bypass counts consecutive younger-hit bypasses per bank.
	bypass []int
}

// NewFRFCFSCap returns the bypass-capped FR-FCFS baseline; a cap of 4
// bounds bank capture at roughly one batch of hits.
func NewFRFCFSCap(limit int) *FRFCFSCap {
	if limit < 1 {
		limit = 1
	}
	return &FRFCFSCap{Cap: limit}
}

// Name implements memctrl.Policy.
func (p *FRFCFSCap) Name() string { return "FR-FCFS+Cap" }

// OnAttach sizes the per-bank bypass tracking.
func (p *FRFCFSCap) OnAttach(c *memctrl.Controller) {
	p.ctrl = c
	p.bypass = make([]int, c.Device().Geometry().Banks)
}

// OnEnqueue implements memctrl.Policy.
func (p *FRFCFSCap) OnEnqueue(*memctrl.Request, int64) {}

// OnIssue updates the bypass counters: a CAS row hit that leaves an older
// request to the same bank waiting counts as a bypass; servicing the
// bank's oldest request (or any non-hit) resets the counter.
func (p *FRFCFSCap) OnIssue(c memctrl.Candidate, now int64) {
	b := c.Req.Loc.Bank
	isCAS := c.Cmd == dram.CmdRead || c.Cmd == dram.CmdWrite
	if isCAS && c.IsRowHit() && p.olderWaiting(c.Req) {
		p.bypass[b]++
		return
	}
	if isCAS {
		p.bypass[b] = 0
	}
}

// olderWaiting reports whether a request older than r waits for r's bank.
// Bank queues are in arrival (== ID) order and r is still buffered when
// OnIssue runs, so it suffices to check whether r heads its bank's queue.
func (p *FRFCFSCap) olderWaiting(r *memctrl.Request) bool {
	return p.ctrl.FirstReadInBank(r.Loc.Bank) != r
}

// OnComplete implements memctrl.Policy.
func (p *FRFCFSCap) OnComplete(*memctrl.Request, int64) {}

// OnCycle implements memctrl.Policy.
func (p *FRFCFSCap) OnCycle(int64) {}

// NextPolicyEventAt implements memctrl.NextEventer: the bypass counters
// change only on issue events, never with bare time.
func (p *FRFCFSCap) NextPolicyEventAt(int64) int64 { return math.MaxInt64 }

// OrderEpoch implements memctrl.EpochedPolicy with a constant: the only
// state in Better is the per-bank bypass counter, which is uniform across a
// bank's candidates (capped applies to the whole bank) and equal within a
// class (every hit-class candidate is a row hit, every other class none),
// and it changes only on CAS issues — bank events the controller already
// invalidates on.
func (p *FRFCFSCap) OrderEpoch() uint64 { return 0 }

// capped reports whether the candidate's row-hit preference is suspended.
func (p *FRFCFSCap) capped(c memctrl.Candidate) bool {
	return c.IsRowHit() && p.bypass[c.Req.Loc.Bank] >= p.Cap
}

// Better implements FR-FCFS with the bypass cap.
func (p *FRFCFSCap) Better(a, b memctrl.Candidate) bool {
	ah := a.IsRowHit() && !p.capped(a)
	bh := b.IsRowHit() && !p.capped(b)
	if ah != bh {
		return ah
	}
	return a.Req.ID < b.Req.ID
}

// TDM services threads in fixed time slots: during thread t's slot only
// t's requests are eligible (FR-FCFS among them); if t has no ready
// request the slot is work-conserving and falls back to global FR-FCFS.
// SlotCycles controls the slot width in DRAM cycles.
type TDM struct {
	// SlotCycles is the time slot width; the default 64 covers roughly two
	// row-conflict accesses.
	SlotCycles int64

	threads int
	now     int64
	// strict disables the work-conserving fallback (pure hard partitioning,
	// as in hard real-time controllers).
	strict bool
}

// NewTDM returns a work-conserving time-division-multiplexed scheduler.
func NewTDM(slotCycles int64) *TDM {
	if slotCycles < 1 {
		slotCycles = 64
	}
	return &TDM{SlotCycles: slotCycles}
}

// NewStrictTDM returns the non-work-conserving variant: slots are never
// reassigned, giving hard bandwidth isolation at maximum throughput cost.
func NewStrictTDM(slotCycles int64) *TDM {
	t := NewTDM(slotCycles)
	t.strict = true
	return t
}

// Name implements memctrl.Policy.
func (p *TDM) Name() string {
	if p.strict {
		return "TDM-strict"
	}
	return "TDM"
}

// OnAttach records the thread count.
func (p *TDM) OnAttach(c *memctrl.Controller) { p.threads = c.NumThreads() }

// OnEnqueue implements memctrl.Policy.
func (p *TDM) OnEnqueue(*memctrl.Request, int64) {}

// OnIssue implements memctrl.Policy.
func (p *TDM) OnIssue(memctrl.Candidate, int64) {}

// OnComplete implements memctrl.Policy.
func (p *TDM) OnComplete(*memctrl.Request, int64) {}

// OnCycle tracks time for slot ownership.
func (p *TDM) OnCycle(now int64) { p.now = now }

// NextPolicyEventAt implements memctrl.NextEventer. Slot ownership is a pure
// function of the clock: the work-conserving variant reads it only when
// ordering live candidates (an evaluated cycle), and the strict variant's
// eligibility can at worst refuse service, which leaves the controller
// re-evaluating cycle by cycle via the NextEventAt clamp — slot boundaries
// are therefore never stepped over.
func (p *TDM) NextPolicyEventAt(int64) int64 { return math.MaxInt64 }

// OrderEpoch implements memctrl.EpochedPolicy: the slot index. Better's
// owner preference (and the strict variant's eligibility) is a pure
// function of the slot owner, so within one slot the within-bank order is
// frozen and every slot handoff forces a rebuild. OnCycle has refreshed
// p.now before any scan runs.
func (p *TDM) OrderEpoch() uint64 { return uint64(p.now / p.SlotCycles) }

// Owner returns the thread owning the current slot.
func (p *TDM) Owner() int {
	if p.threads == 0 {
		return 0
	}
	return int(p.now/p.SlotCycles) % p.threads
}

// Better prioritizes the slot owner's requests, then FR-FCFS.
func (p *TDM) Better(a, b memctrl.Candidate) bool {
	owner := p.Owner()
	ao, bo := a.Req.Thread == owner, b.Req.Thread == owner
	if ao != bo {
		return ao
	}
	if a.IsRowHit() != b.IsRowHit() {
		return a.IsRowHit()
	}
	return a.Req.ID < b.Req.ID
}

// Eligible implements the strict variant's hard partitioning: the
// controller consults it through memctrl.EligibilityPolicy.
func (p *TDM) Eligible(r *memctrl.Request) bool {
	if !p.strict {
		return true
	}
	return r.Thread == p.Owner()
}
