package sched

import (
	"math"

	"repro/internal/dram"
	"repro/internal/memctrl"
)

// NFQ implements the network-fair-queueing memory scheduler of Nesbit et al.
// ("Fair queuing memory systems", MICRO 2006) in the FQ-VFTF (virtual finish
// time first) variant the paper compares against, including the priority
// inversion prevention optimization with a tRAS threshold (Section 7.2).
//
// Each thread owns a virtual clock per bank. A request's virtual finish time
// (deadline) is
//
//	VFT = max(now, lastVFT[thread][bank]) + quantum/weight[thread]
//
// where quantum is the nominal bank service time times the thread count, so
// that with equal weights each thread is entitled to a 1/N share of each
// bank. Requests are serviced earliest-deadline-first. Using real time as
// the lower bound of the virtual start reproduces the *idleness problem*
// the PAR-BS paper describes: a thread that was idle receives a burst of
// early deadlines when it returns, which lets bursty threads interleave
// with — and serialize — a high-bank-parallelism thread's requests.
//
// Priority inversion prevention: within tRAS of a bank's last activate,
// row-hit candidates to that bank are served ahead of earlier-deadline
// row-conflict candidates, bounding how long a stream of hits can be
// preempted without sacrificing the open row.
type NFQ struct {
	weights []float64
	ctrl    *memctrl.Controller
	threads int
	// startTime switches from virtual-finish-time-first (Nesbit et al.'s
	// FQ-VFTF) to start-time fair queueing (Rafique et al., PACT 2007),
	// which the paper's related-work section cites as a fairness
	// improvement: ordering by virtual start times avoids penalizing
	// threads for the length of their own backlog.
	startTime bool

	tras int64
	// lastVFT[thread][bank] is the thread's last assigned virtual finish
	// time in that bank.
	lastVFT [][]float64
	// lastACT[bank] is the cycle of the bank's most recent activate.
	lastACT []int64
	now     int64
}

// NewNFQ returns an NFQ scheduler with equal thread weights; use
// NewNFQWeighted to assign bandwidth shares.
func NewNFQ() *NFQ { return &NFQ{} }

// NewNFQWeighted returns an NFQ scheduler whose thread i receives a
// bandwidth share proportional to weights[i].
func NewNFQWeighted(weights []float64) *NFQ {
	return &NFQ{weights: append([]float64(nil), weights...)}
}

// NewNFQStartTime returns the start-time fair queueing variant
// (Rafique et al.), ordering requests by virtual start rather than
// virtual finish time.
func NewNFQStartTime() *NFQ { return &NFQ{startTime: true} }

// Name implements memctrl.Policy.
func (n *NFQ) Name() string {
	if n.startTime {
		return "NFQ-ST"
	}
	return "NFQ"
}

// OnAttach sizes the virtual clocks.
func (n *NFQ) OnAttach(c *memctrl.Controller) {
	n.ctrl = c
	threads := c.NumThreads()
	if n.weights == nil {
		n.weights = equalWeights(threads)
	}
	if err := validateWeights(n.weights, threads); err != nil {
		panic(err)
	}
	g := c.Device().Geometry()
	t := c.Device().Timing()
	n.threads = threads
	n.tras = t.TRAS
	n.lastVFT = make([][]float64, threads)
	for i := range n.lastVFT {
		n.lastVFT[i] = make([]float64, g.Banks)
	}
	n.lastACT = make([]int64, g.Banks)
	for i := range n.lastACT {
		n.lastACT[i] = -t.TRAS
	}
}

// OnEnqueue stamps the request's virtual deadline: its finish time under
// FQ-VFTF, or its start time under start-time fair queueing. The service
// quantum reflects the request's expected cost at arrival — a row hit is
// cheap, a conflict pays precharge + activate — scaled by the thread
// count and weight, as in Nesbit et al.'s per-request service estimates.
// Variable quanta are what make the two variants differ: with constant
// quanta and equal weights, start and finish orderings coincide.
func (n *NFQ) OnEnqueue(r *memctrl.Request, now int64) {
	start := n.lastVFT[r.Thread][r.Loc.Bank]
	if f := float64(now); f > start {
		start = f
	}
	t := n.ctrl.Device().Timing()
	service := t.TBankCAS
	switch n.ctrl.Device().RowStateOf(r.Loc.Bank, r.Loc.Row) {
	case dram.RowClosed:
		service += t.TRCD
	case dram.RowConflict:
		service += t.TRP + t.TRCD
	}
	finish := start + float64(service)*float64(n.threads)/n.weights[r.Thread]
	if n.startTime {
		r.Deadline = start
	} else {
		r.Deadline = finish
	}
	n.lastVFT[r.Thread][r.Loc.Bank] = finish
}

// OnIssue tracks bank activates for the priority-inversion window.
func (n *NFQ) OnIssue(c memctrl.Candidate, now int64) {
	if c.Cmd == dram.CmdActivate {
		n.lastACT[c.Req.Loc.Bank] = now
	}
}

// OnComplete implements memctrl.Policy.
func (n *NFQ) OnComplete(*memctrl.Request, int64) {}

// OnCycle records the current cycle for the tRAS window test.
func (n *NFQ) OnCycle(now int64) { n.now = now }

// NextPolicyEventAt implements memctrl.NextEventer. OnCycle only caches the
// clock, and Better (which reads the cache) runs solely on evaluated cycles
// right after OnCycle, so NFQ has no self-driven events: virtual finish
// times update on enqueue, and the tRAS inversion window is re-read with a
// fresh clock whenever candidates exist.
func (n *NFQ) NextPolicyEventAt(int64) int64 { return math.MaxInt64 }

// OrderEpoch implements memctrl.EpochedPolicy with a constant. The only
// time-varying term in Better is the tRAS inversion boost, and it is
// uniform within a bank and class: all of a bank's hit-class candidates
// share one (lastACT, IsRowHit) pair, and the other classes are never
// boosted — so the window expiring cannot reorder a class internally, only
// shift fresh cross-class comparisons. Deadlines are immutable after
// OnEnqueue, and lastACT moves only on activates, which change the bank's
// open row and force a rebuild anyway.
func (n *NFQ) OrderEpoch() uint64 { return 0 }

// Better implements earliest-virtual-finish-time-first with the tRAS
// priority-inversion prevention window.
func (n *NFQ) Better(a, b memctrl.Candidate) bool {
	// Within tRAS of its bank's activate, a row hit beats any deadline.
	ah := a.IsRowHit() && n.now-n.lastACT[a.Req.Loc.Bank] < n.tras
	bh := b.IsRowHit() && n.now-n.lastACT[b.Req.Loc.Bank] < n.tras
	if ah != bh {
		return ah
	}
	if a.Req.Deadline != b.Req.Deadline {
		return a.Req.Deadline < b.Req.Deadline
	}
	if a.IsRowHit() != b.IsRowHit() {
		return a.IsRowHit()
	}
	return a.Req.ID < b.Req.ID
}
