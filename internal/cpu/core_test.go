package cpu

import (
	"testing"

	"repro/internal/memctrl"
)

// scriptTrace replays a fixed item list, then yields empty items.
type scriptTrace struct {
	items []Item
	pos   int
}

func (s *scriptTrace) Next() Item {
	if s.pos >= len(s.items) {
		return Item{}
	}
	it := s.items[s.pos]
	s.pos++
	return it
}

// fakePort accepts requests and lets tests complete them manually.
type fakePort struct {
	issued      []*memctrl.Request
	writes      []int64
	rejectReads bool
	rejectWrite bool
	nextID      int64
}

func (p *fakePort) IssueRead(thread int, addr int64, tag int) bool {
	if p.rejectReads {
		return false
	}
	r := &memctrl.Request{ID: p.nextID, Thread: thread, Addr: addr, Tag: tag}
	p.nextID++
	p.issued = append(p.issued, r)
	return true
}

func (p *fakePort) IssueWrite(thread int, addr int64) bool {
	if p.rejectWrite {
		return false
	}
	p.writes = append(p.writes, addr)
	return true
}

func newCore(t *testing.T, items []Item) (*Core, *fakePort) {
	t.Helper()
	port := &fakePort{}
	c, err := NewCore(0, DefaultConfig(), &scriptTrace{items: items}, port)
	if err != nil {
		t.Fatal(err)
	}
	return c, port
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.WindowSize = 0
	if bad.Validate() == nil {
		t.Error("zero window accepted")
	}
}

func TestDefaultConfigMatchesPaperTable2(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.WindowSize != 128 || cfg.CommitWidth != 3 || cfg.MSHRs != 32 {
		t.Errorf("config %+v does not match Table 2 (128-entry window, 3-wide, 32 MSHRs)", cfg)
	}
}

func TestPureComputeRetiresAtCommitWidth(t *testing.T) {
	c, _ := newCore(t, []Item{{NonMem: 300}})
	c.Tick(0, 100)
	st := c.Stats()
	if st.Instructions != 300 {
		t.Errorf("instructions = %d, want 300", st.Instructions)
	}
	if st.MemStallCycles != 0 {
		t.Errorf("memory stalls = %d, want 0 for pure compute", st.MemStallCycles)
	}
	// 300 instructions at width 3 need >= 100 cycles... the first cycle
	// both fetches and commits, so IPC approaches 3.
	if ipc := st.IPC(); ipc < 2.5 || ipc > 3.0 {
		t.Errorf("IPC = %f, want ~3", ipc)
	}
}

func TestLoadMissStallsUntilCompletion(t *testing.T) {
	c, port := newCore(t, []Item{{NonMem: 0, Access: Access{Addr: 64}, HasAccess: true}, {NonMem: 100}})
	c.Tick(0, 10)
	if len(port.issued) != 1 {
		t.Fatalf("loads issued = %d, want 1", len(port.issued))
	}
	st := c.Stats()
	if st.MemStallCycles < 5 {
		t.Errorf("memory stall cycles = %d, want most of the 10 cycles", st.MemStallCycles)
	}
	if st.LoadsCompleted != 0 {
		t.Error("load completed without delivery")
	}
	// Deliver at cycle 12 and continue: commit resumes.
	c.Complete(port.issued[0], 12)
	c.Tick(10, 40)
	st = c.Stats()
	if st.LoadsCompleted != 1 {
		t.Errorf("loads completed = %d, want 1", st.LoadsCompleted)
	}
	if st.Instructions != 101 {
		t.Errorf("instructions = %d, want 101 (load + 100 compute)", st.Instructions)
	}
	if c.Outstanding() != 0 {
		t.Errorf("outstanding = %d, want 0", c.Outstanding())
	}
}

func TestOverlappedMissesStallOnce(t *testing.T) {
	// Figure 1: two independent load misses close together expose roughly
	// one memory latency, not two.
	mk := func() []Item {
		return []Item{
			{NonMem: 1, Access: Access{Addr: 64, Bank: 0}, HasAccess: true},
			{NonMem: 1, Access: Access{Addr: 1 << 20, Bank: 1}, HasAccess: true},
			{NonMem: 50},
		}
	}
	const lat = 160
	// Serial: second load's data arrives one latency after the first.
	c1, p1 := newCore(t, mk())
	c1.Tick(0, 5)
	if len(p1.issued) != 2 {
		t.Fatalf("issued %d, want 2", len(p1.issued))
	}
	c1.Complete(p1.issued[0], lat)
	c1.Complete(p1.issued[1], 2*lat)
	c1.Tick(5, 3*lat)
	serial := c1.Stats().MemStallCycles

	// Overlapped: both arrive around one latency.
	c2, p2 := newCore(t, mk())
	c2.Tick(0, 5)
	c2.Complete(p2.issued[0], lat)
	c2.Complete(p2.issued[1], lat+10)
	c2.Tick(5, 3*lat)
	overlapped := c2.Stats().MemStallCycles

	if overlapped >= serial {
		t.Errorf("overlapped stall %d !< serialized stall %d", overlapped, serial)
	}
	if float64(serial) < 1.8*float64(overlapped) {
		t.Errorf("stall ratio %d/%d; want near 2x (Figure 1 behaviour)", serial, overlapped)
	}
}

func TestMSHRLimitBlocksFetch(t *testing.T) {
	// Distinct banks so MaxPerBank does not bind before the MSHR cap.
	var items []Item
	for i := 0; i < 40; i++ {
		items = append(items, Item{NonMem: 0, Access: Access{Addr: int64(i) * 64, Bank: i}, HasAccess: true})
	}
	c, port := newCore(t, items)
	c.Tick(0, 100)
	if got := c.Outstanding(); got != 32 {
		t.Errorf("outstanding = %d, want MSHR cap 32", got)
	}
	if len(port.issued) != 32 {
		t.Errorf("issued = %d, want 32", len(port.issued))
	}
}

func TestMaxPerBankSerializesSameBank(t *testing.T) {
	items := []Item{
		{NonMem: 0, Access: Access{Addr: 64, Bank: 3}, HasAccess: true},
		{NonMem: 0, Access: Access{Addr: 128, Bank: 3}, HasAccess: true},
		{NonMem: 10},
	}
	port := &fakePort{}
	cfg := DefaultConfig()
	cfg.MaxPerBank = 1
	c, err := NewCore(0, cfg, &scriptTrace{items: items}, port)
	if err != nil {
		t.Fatal(err)
	}
	c.Tick(0, 10)
	if len(port.issued) != 1 {
		t.Fatalf("issued %d, want 1 (second same-bank miss must wait)", len(port.issued))
	}
	c.Complete(port.issued[0], 11)
	c.Tick(10, 10)
	if len(port.issued) != 2 {
		t.Errorf("issued %d after completion, want 2", len(port.issued))
	}
}

func TestMaxPerBankZeroDisablesCap(t *testing.T) {
	port := &fakePort{}
	cfg := DefaultConfig()
	cfg.MaxPerBank = 0
	items := []Item{
		{NonMem: 0, Access: Access{Addr: 64, Bank: 3}, HasAccess: true},
		{NonMem: 0, Access: Access{Addr: 128, Bank: 3}, HasAccess: true},
		{NonMem: 10},
	}
	c, err := NewCore(0, cfg, &scriptTrace{items: items}, port)
	if err != nil {
		t.Fatal(err)
	}
	c.Tick(0, 10)
	if len(port.issued) != 2 {
		t.Errorf("issued %d, want 2 with cap disabled", len(port.issued))
	}
}

func TestWindowLimitBlocksFetch(t *testing.T) {
	// One pending load at the head plus compute: window fills at 128.
	c, port := newCore(t, []Item{
		{NonMem: 0, Access: Access{Addr: 64}, HasAccess: true},
		{NonMem: 1000},
	})
	c.Tick(0, 200)
	if got := c.Stats().Instructions; got != 0 {
		t.Errorf("committed %d instructions behind a pending head load", got)
	}
	// The window holds the load + 127 compute instructions.
	c.Complete(port.issued[0], 201)
	c.Tick(200, 2)
	if got := c.Stats().Instructions; got == 0 {
		t.Error("no instructions committed after load completion")
	}
}

func TestRejectedReadRetries(t *testing.T) {
	c, port := newCore(t, []Item{{NonMem: 0, Access: Access{Addr: 64}, HasAccess: true}, {NonMem: 10}})
	port.rejectReads = true
	c.Tick(0, 5)
	if len(port.issued) != 0 {
		t.Fatal("request issued despite rejection")
	}
	port.rejectReads = false
	c.Tick(5, 5)
	if len(port.issued) != 1 {
		t.Error("request not retried after rejection cleared")
	}
}

func TestStoreIssuesAtCommitAndRetries(t *testing.T) {
	c, port := newCore(t, []Item{
		{NonMem: 2, Access: Access{Addr: 64, IsWrite: true}, HasAccess: true},
		{NonMem: 10},
	})
	port.rejectWrite = true
	c.Tick(0, 10)
	st := c.Stats()
	if st.WritesIssued != 0 {
		t.Fatal("write issued despite full buffer")
	}
	if st.StoreStallCycles == 0 {
		t.Error("store stall cycles not accounted")
	}
	port.rejectWrite = false
	c.Tick(10, 10)
	st = c.Stats()
	if st.WritesIssued != 1 {
		t.Errorf("writes issued = %d, want 1 after retry", st.WritesIssued)
	}
	if st.Instructions != 13 {
		t.Errorf("instructions = %d, want 13", st.Instructions)
	}
}

func TestStatsDerivedMetrics(t *testing.T) {
	s := Stats{Cycles: 1000, Instructions: 500, MemStallCycles: 300, LoadsIssued: 10}
	if s.IPC() != 0.5 {
		t.Errorf("IPC = %f", s.IPC())
	}
	if s.MCPI() != 0.6 {
		t.Errorf("MCPI = %f", s.MCPI())
	}
	if s.MPKI() != 20 {
		t.Errorf("MPKI = %f", s.MPKI())
	}
	if s.ASTPerReq() != 30 {
		t.Errorf("AST/req = %f", s.ASTPerReq())
	}
	var zero Stats
	if zero.IPC() != 0 || zero.MCPI() != 0 || zero.MPKI() != 0 || zero.ASTPerReq() != 0 {
		t.Error("zero stats must not divide by zero")
	}
	d := s.Sub(Stats{Cycles: 400, Instructions: 100, MemStallCycles: 100, LoadsIssued: 4})
	if d.Cycles != 600 || d.Instructions != 400 || d.MemStallCycles != 200 || d.LoadsIssued != 6 {
		t.Errorf("Sub wrong: %+v", d)
	}
}

func TestUnknownCompletionPanics(t *testing.T) {
	c, _ := newCore(t, []Item{{NonMem: 10}})
	c.Complete(&memctrl.Request{ID: 999}, 0)
	defer func() {
		if recover() == nil {
			t.Error("unknown completion did not panic")
		}
	}()
	c.Tick(0, 1)
}

func TestEmptyTraceDoesNotSpin(t *testing.T) {
	c, _ := newCore(t, nil)
	c.Tick(0, 100) // must terminate
	if c.Stats().Instructions != 0 {
		t.Error("phantom instructions committed")
	}
}
