// Package cpu models the processing cores of the paper's baseline CMP
// (Table 2) at the abstraction level DRAM-scheduling studies need: a
// 128-entry instruction window with in-order commit (3 instructions per
// cycle), a cap of 32 outstanding misses (MSHRs), and precise stall
// accounting — the core stalls when the oldest instruction in the window is
// a load whose DRAM request is outstanding (Section 2 of the paper).
//
// Cores are trace-driven: a TraceSource supplies an instruction stream of
// non-memory instruction runs punctuated by memory accesses. Multiple
// last-level-cache misses inside the window overlap naturally, producing
// the memory-level parallelism whose preservation PAR-BS is about.
package cpu

import (
	"fmt"
	"math"

	"repro/internal/memctrl"
)

// Config sizes a core. Use DefaultConfig for the paper's baseline.
type Config struct {
	// WindowSize is the instruction window capacity (Table 2: 128).
	WindowSize int
	// CommitWidth is the per-cycle fetch and commit width (Table 2: 3).
	CommitWidth int
	// MSHRs caps outstanding load misses (Table 2: 32).
	MSHRs int
	// MaxPerBank caps outstanding load misses per DRAM bank (0 = no cap,
	// the default). A cap of 1 is an ablation knob that models fully
	// dependent per-bank miss chains; the baseline instead relies on the
	// device's non-pipelined banks (dram.Timing.TBankCAS) to reproduce the
	// paper's per-request stall times.
	MaxPerBank int
}

// DefaultConfig returns the paper's baseline core configuration.
func DefaultConfig() Config {
	return Config{WindowSize: 128, CommitWidth: 3, MSHRs: 32}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.WindowSize <= 0 || c.CommitWidth <= 0 || c.MSHRs <= 0 {
		return fmt.Errorf("cpu: config fields must be positive: %+v", c)
	}
	if c.MaxPerBank < 0 {
		return fmt.Errorf("cpu: MaxPerBank must be non-negative, got %d", c.MaxPerBank)
	}
	return nil
}

// Access is one memory access in a trace.
type Access struct {
	// Addr is the physical byte address of the cache line.
	Addr int64
	// Bank is the DRAM bank the address maps to; the trace generator fills
	// it in so the core can enforce Config.MaxPerBank.
	Bank int
	// IsWrite marks a writeback (dirty eviction) rather than a load miss.
	IsWrite bool
}

// Item is one trace element: a run of non-memory instructions followed by
// one memory access. A terminal run with no access has HasAccess false.
type Item struct {
	// NonMem is the number of non-memory instructions preceding the access.
	NonMem int64
	// Access is the memory access, valid when HasAccess.
	Access Access
	// HasAccess distinguishes a trailing instruction run from an access.
	HasAccess bool
}

// TraceSource supplies an unbounded instruction stream.
type TraceSource interface {
	// Next returns the next trace item. Sources for finite traces may
	// return items with HasAccess == false forever once exhausted.
	Next() Item
}

// MemPort is the core's connection to the memory system.
type MemPort interface {
	// IssueRead sends a load miss to DRAM, or returns false when the memory
	// system cannot accept the request this cycle (buffer full); the core
	// retries. tag is the issuing core's window slot: the port must store it
	// in the request's Tag field before any completion for the request can
	// be signaled, so Complete can route the data back slot-directly.
	IssueRead(thread int, addr int64, tag int) bool
	// IssueWrite sends a writeback. It returns false when the write buffer
	// is full; the core stalls the store's commit and retries.
	IssueWrite(thread int, addr int64) bool
}

// Stats aggregates a core's execution counters.
type Stats struct {
	// Cycles is the number of CPU cycles simulated.
	Cycles int64
	// Instructions is the number of committed instructions.
	Instructions int64
	// MemStallCycles counts cycles in which nothing committed because the
	// oldest instruction was a load with an outstanding DRAM request —
	// the paper's memory stall time.
	MemStallCycles int64
	// StoreStallCycles counts cycles blocked on a full write buffer.
	StoreStallCycles int64
	// LoadsIssued counts load misses sent to DRAM.
	LoadsIssued int64
	// LoadsCompleted counts load misses whose data returned.
	LoadsCompleted int64
	// WritesIssued counts writebacks sent to DRAM.
	WritesIssued int64
}

// IPC returns retired instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

// MCPI returns memory stall cycles per instruction, the paper's memory
// intensity metric (Table 3).
func (s Stats) MCPI() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.MemStallCycles) / float64(s.Instructions)
}

// MPKI returns load misses per 1000 instructions (Table 3's L2 MPKI).
func (s Stats) MPKI() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return 1000 * float64(s.LoadsIssued) / float64(s.Instructions)
}

// ASTPerReq returns the average stall time per DRAM request in CPU cycles
// (Table 3 and Table 4's "AST/req").
func (s Stats) ASTPerReq() float64 {
	if s.LoadsIssued == 0 {
		return 0
	}
	return float64(s.MemStallCycles) / float64(s.LoadsIssued)
}

// Sub returns s - o field-wise; used to discard warmup.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Cycles:           s.Cycles - o.Cycles,
		Instructions:     s.Instructions - o.Instructions,
		MemStallCycles:   s.MemStallCycles - o.MemStallCycles,
		StoreStallCycles: s.StoreStallCycles - o.StoreStallCycles,
		LoadsIssued:      s.LoadsIssued - o.LoadsIssued,
		LoadsCompleted:   s.LoadsCompleted - o.LoadsCompleted,
		WritesIssued:     s.WritesIssued - o.WritesIssued,
	}
}

type entryKind uint8

const (
	entryNonMem entryKind = iota
	entryLoad
	entryStore
)

type entry struct {
	kind  entryKind
	count int64 // remaining instructions for entryNonMem
	addr  int64
	bank  int
	// pending marks a load whose data has not returned.
	pending bool
	// issued marks a load whose request was accepted by the memory system.
	issued bool
}

// Core is one trace-driven processing core.
//
// The instruction window and the completion queue are value-typed ring
// buffers: the core's per-CPU-cycle loop is the simulator's innermost hot
// path (cores tick CPUCyclesPerDRAM times per controller cycle), and the
// earlier pointer-per-entry window both allocated on every fetch and cost a
// cache miss on every head inspection.
type Core struct {
	cfg   Config
	id    int
	trace TraceSource
	port  MemPort
	// window is a FIFO ring of wLen entries, oldest at slot wHead; a window
	// entry occupies its slot until retired, so slots are stable handles.
	// Capacity is WindowSize: every entry covers at least one instruction.
	window []entry
	wHead  int
	wLen   int
	// windowCount is the number of instructions occupying the window
	// (non-memory entries count their run length).
	windowCount int
	outstanding int // loads in flight (MSHR occupancy)
	// fetchItem is the partially-consumed current trace item.
	fetchItem    Item
	fetchPending bool
	// perBank tracks outstanding loads per DRAM bank for Config.MaxPerBank;
	// it grows on demand to the highest bank index seen.
	perBank []int
	// completions due for delivery, a FIFO ring of cLen entries starting at
	// cHead (bursts complete in order).
	completions []completion
	cHead, cLen int
	stats       Stats
	// blockedUntil is set when the last Tick call ended in a provable stall:
	// the CPU cycle before which the core cannot make progress (MaxInt64 for
	// "until something external happens"), or 0 when the core was still
	// progressing. See BlockedUntil.
	blockedUntil int64
	// portStalled records that some cycle of the last Tick call had a memory
	// port call rejected (read buffer or write buffer full). See
	// BlockedOnPort.
	portStalled bool
}

type completion struct {
	at   int64
	slot int // window slot of the completed load (the request's Tag)
}

// NewCore builds a core reading from trace and issuing to port.
func NewCore(id int, cfg Config, trace TraceSource, port MemPort) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Core{
		cfg:         cfg,
		id:          id,
		trace:       trace,
		port:        port,
		window:      make([]entry, cfg.WindowSize),
		completions: make([]completion, cfg.MSHRs),
	}, nil
}

// head returns the oldest window entry; the window must be non-empty.
func (c *Core) head() *entry { return &c.window[c.wHead] }

// pushEntry appends an entry at the window tail and returns its slot. The
// ring cannot overflow — every entry occupies at least one instruction and
// fetch admits at most WindowSize instructions — but a violated invariant
// must fail loudly rather than overwrite the oldest instruction.
func (c *Core) pushEntry(e entry) int {
	if c.wLen == len(c.window) {
		panic("cpu: instruction window ring overflow")
	}
	slot := c.wHead + c.wLen
	if slot >= len(c.window) {
		slot -= len(c.window)
	}
	c.window[slot] = e
	c.wLen++
	return slot
}

// tail returns the newest window entry, or nil when the window is empty.
func (c *Core) tail() *entry {
	if c.wLen == 0 {
		return nil
	}
	slot := c.wHead + c.wLen - 1
	if slot >= len(c.window) {
		slot -= len(c.window)
	}
	return &c.window[slot]
}

// pushCompletion appends to the completion ring, growing it if the
// controller ever outpaces the MSHR-sized pre-allocation.
func (c *Core) pushCompletion(comp completion) {
	if c.cLen == len(c.completions) {
		grown := make([]completion, 2*len(c.completions))
		for i := 0; i < c.cLen; i++ {
			grown[i] = c.completions[(c.cHead+i)%len(c.completions)]
		}
		c.completions, c.cHead = grown, 0
	}
	slot := c.cHead + c.cLen
	if slot >= len(c.completions) {
		slot -= len(c.completions)
	}
	c.completions[slot] = comp
	c.cLen++
}

// ID returns the core's thread index.
func (c *Core) ID() int { return c.id }

// Stats returns the accumulated counters.
func (c *Core) Stats() Stats { return c.stats }

// ResetStats zeroes the counters, e.g. after warmup. Window contents and
// in-flight requests are preserved.
func (c *Core) ResetStats() { c.stats = Stats{} }

// Outstanding returns current MSHR occupancy (loads in flight).
func (c *Core) Outstanding() int { return c.outstanding }

// WindowOccupancy returns the number of instructions currently occupying
// the instruction window.
func (c *Core) WindowOccupancy() int { return c.windowCount }

// Complete schedules delivery of a finished DRAM read at CPU cycle `at`.
// The controller's completion callback must route requests to the issuing
// core. Only the request's Tag (the window slot recorded at issue) is read
// and the handle is not retained, so the memory system is free to recycle
// the request once every completion callback for it has returned.
func (c *Core) Complete(req *memctrl.Request, at int64) {
	c.pushCompletion(completion{at: at, slot: req.Tag})
}

// Tick simulates CPU cycles [start, start+n). The sim layer calls it once
// per DRAM cycle with the CPU:DRAM clock ratio.
//
// Stalled cycles are fast-forwarded: within one Tick call nothing outside
// the core can change (the controller ticks only after every core has, and
// completions are scheduled with explicit future timestamps), so once a
// cycle provably makes no progress, every following cycle up to the next
// scheduled completion evolves identically — only the cycle and stall
// counters advance. Memory-bound cores spend most of their time in exactly
// this state, and replaying it cycle by cycle dominated simulator cost.
func (c *Core) Tick(start int64, n int) {
	end := start + int64(n)
	c.blockedUntil = 0
	c.portStalled = false
	for cyc := start; cyc < end; cyc++ {
		wasMidItem := c.fetchPending
		loadsCompleted := c.stats.LoadsCompleted
		loadsIssued := c.stats.LoadsIssued
		writesIssued := c.stats.WritesIssued
		instructions := c.stats.Instructions
		windowCount := c.windowCount
		memStall := c.stats.MemStallCycles
		storeStall := c.stats.StoreStallCycles

		c.deliver(cyc)
		c.fetch()
		c.commit(cyc)
		c.stats.Cycles++

		// Progress happened (or the fetch engine consumed trace items, which
		// skipping would replay incorrectly): keep stepping cycle by cycle.
		if !wasMidItem || !c.fetchPending ||
			loadsCompleted != c.stats.LoadsCompleted ||
			loadsIssued != c.stats.LoadsIssued ||
			writesIssued != c.stats.WritesIssued ||
			instructions != c.stats.Instructions ||
			windowCount != c.windowCount {
			continue
		}
		// Pure stall cycle: nothing can unblock before the next completion.
		wake := int64(math.MaxInt64)
		if c.cLen > 0 {
			wake = c.completions[c.cHead].at
		}
		if wake >= end {
			// Blocked through the rest of this call: account the remaining
			// cycles in closed form and publish the wake bound so the
			// next-event clock can skip whole DRAM cycles (see BlockedUntil).
			skip := end - cyc - 1
			c.stats.Cycles += skip
			c.stats.MemStallCycles += skip * (c.stats.MemStallCycles - memStall)
			c.stats.StoreStallCycles += skip * (c.stats.StoreStallCycles - storeStall)
			c.blockedUntil = wake
			return
		}
		if skip := wake - cyc - 1; skip > 0 {
			c.stats.Cycles += skip
			c.stats.MemStallCycles += skip * (c.stats.MemStallCycles - memStall)
			c.stats.StoreStallCycles += skip * (c.stats.StoreStallCycles - storeStall)
			cyc += skip
		}
	}
}

// BlockedUntil reports the core's stall bound after its last Tick call: 0
// when the core was still making progress (it must be ticked every cycle),
// otherwise a CPU cycle strictly before which the core is guaranteed to do
// nothing — no commits, no fetches, and in particular no memory-port calls.
// Completions queued by the controller after the Tick (via Complete) lower
// the bound, so the returned value stays safe across the tick/controller
// ordering within one DRAM cycle. math.MaxInt64 means the core can only be
// unblocked by an external event (a buffer slot freeing on a command issue),
// which the caller must treat as ending any skip span.
func (c *Core) BlockedUntil() int64 {
	b := c.blockedUntil
	if b == 0 {
		return 0
	}
	if c.cLen > 0 {
		if at := c.completions[c.cHead].at; at < b {
			b = at
		}
	}
	return b
}

// BlockedOnPort reports whether any cycle of the last Tick call had a memory
// port call rejected. A port-blocked core can be unblocked by a command
// issuing at the controller (a CAS frees a read-buffer slot, a write issue
// frees a write-buffer slot) — an event BlockedUntil cannot see — so its
// stall bound is only valid over spans in which the whole system is
// quiescent, never for gating this core alone while others keep the
// controller busy. The flag is conservative: it latches on any rejected call
// during the Tick even if the core later progressed past it.
func (c *Core) BlockedOnPort() bool { return c.portStalled }

// deliver marks loads whose data has arrived by cycle cyc.
func (c *Core) deliver(cyc int64) {
	for c.cLen > 0 && c.completions[c.cHead].at <= cyc {
		comp := c.completions[c.cHead]
		c.cHead++
		if c.cHead == len(c.completions) {
			c.cHead = 0
		}
		c.cLen--
		e := &c.window[comp.slot]
		if e.kind != entryLoad || !e.pending {
			panic("cpu: completion routed to a slot with no pending load")
		}
		e.pending = false
		c.outstanding--
		c.bankDelta(e.bank, -1)
		c.stats.LoadsCompleted++
	}
}

// fetch brings up to CommitWidth instructions into the window, issuing load
// misses to the memory system as they enter (at most one memory op per
// cycle, per Table 2).
func (c *Core) fetch() {
	budget := c.cfg.CommitWidth
	memOpDone := false
	for budget > 0 {
		if !c.fetchPending {
			c.fetchItem = c.trace.Next()
			c.fetchPending = true
			if c.fetchItem.NonMem == 0 && !c.fetchItem.HasAccess {
				// Empty item: the source has nothing this cycle. Treat it
				// as a fetch bubble rather than spinning.
				c.fetchPending = false
				return
			}
		}
		it := &c.fetchItem
		if it.NonMem > 0 {
			room := c.cfg.WindowSize - c.windowCount
			take := int64(budget)
			if take > it.NonMem {
				take = it.NonMem
			}
			if take > int64(room) {
				take = int64(room)
			}
			if take == 0 {
				return // window full
			}
			c.appendNonMem(take)
			it.NonMem -= take
			budget -= int(take)
			continue
		}
		if !it.HasAccess {
			// Pure gap item exhausted; move on.
			c.fetchPending = false
			continue
		}
		if memOpDone {
			return // one memory op per cycle
		}
		if c.windowCount >= c.cfg.WindowSize {
			return
		}
		if it.Access.IsWrite {
			c.pushEntry(entry{kind: entryStore, addr: it.Access.Addr})
			c.windowCount++
		} else {
			if c.outstanding >= c.cfg.MSHRs {
				return // no MSHR: fetch stalls
			}
			if c.cfg.MaxPerBank > 0 && c.bankLoad(it.Access.Bank) >= c.cfg.MaxPerBank {
				return // same-bank dependence: wait for the previous miss
			}
			slot := c.wHead + c.wLen // where pushEntry will place the load
			if slot >= len(c.window) {
				slot -= len(c.window)
			}
			if !c.port.IssueRead(c.id, it.Access.Addr, slot) {
				c.portStalled = true
				return // request buffer full: retry next cycle
			}
			c.pushEntry(entry{kind: entryLoad, addr: it.Access.Addr, bank: it.Access.Bank, pending: true, issued: true})
			c.windowCount++
			c.outstanding++
			c.bankDelta(it.Access.Bank, 1)
			c.stats.LoadsIssued++
		}
		memOpDone = true
		budget--
		c.fetchPending = false
	}
}

// appendNonMem adds a run of non-memory instructions, merging with the tail
// entry when possible to keep the window compact.
func (c *Core) appendNonMem(n int64) {
	if tail := c.tail(); tail != nil && tail.kind == entryNonMem {
		tail.count += n
		c.windowCount += int(n)
		return
	}
	c.pushEntry(entry{kind: entryNonMem, count: n})
	c.windowCount += int(n)
}

// commit retires up to CommitWidth instructions from the window head and
// accounts stall cycles.
func (c *Core) commit(cyc int64) {
	budget := c.cfg.CommitWidth
	committed := 0
	for budget > 0 && c.wLen > 0 {
		head := c.head()
		switch head.kind {
		case entryNonMem:
			take := int64(budget)
			if take > head.count {
				take = head.count
			}
			head.count -= take
			c.windowCount -= int(take)
			c.stats.Instructions += take
			committed += int(take)
			budget -= int(take)
			if head.count == 0 {
				c.popHead()
			}
		case entryLoad:
			if head.pending {
				if committed == 0 {
					c.stats.MemStallCycles++
				}
				return
			}
			c.popHead()
			c.windowCount--
			c.stats.Instructions++
			committed++
			budget--
		case entryStore:
			if !c.port.IssueWrite(c.id, head.addr) {
				c.portStalled = true
				if committed == 0 {
					c.stats.StoreStallCycles++
				}
				return
			}
			c.stats.WritesIssued++
			c.popHead()
			c.windowCount--
			c.stats.Instructions++
			committed++
			budget--
		}
	}
}

// popHead retires the oldest window entry, clearing its slot so request
// pointers do not outlive the instruction.
func (c *Core) popHead() {
	c.window[c.wHead] = entry{}
	c.wHead++
	if c.wHead == len(c.window) {
		c.wHead = 0
	}
	c.wLen--
}

// bankLoad returns outstanding loads to bank, growing the table on demand.
func (c *Core) bankLoad(bank int) int {
	if bank < 0 || bank >= len(c.perBank) {
		return 0
	}
	return c.perBank[bank]
}

func (c *Core) bankDelta(bank, d int) {
	if bank < 0 {
		return
	}
	for bank >= len(c.perBank) {
		c.perBank = append(c.perBank, 0)
	}
	c.perBank[bank] += d
}
