package cpu

import (
	"math"
	"testing"
)

// TestBlockedUntilLoadStall exercises the stall bound the next-event clock
// consumes: zero while the core progresses, MaxInt64 once it is wedged
// behind a pending load with nothing scheduled, and lowered by a completion
// queued after the core's tick (the controller runs later in the same DRAM
// cycle).
func TestBlockedUntilLoadStall(t *testing.T) {
	c, port := newCore(t, []Item{
		{NonMem: 1, Access: Access{Addr: 64}, HasAccess: true},
		{NonMem: 1 << 20},
	})
	c.Tick(0, 10)
	if got := c.BlockedUntil(); got != 0 {
		t.Fatalf("still progressing at cycle 10: BlockedUntil = %d, want 0", got)
	}
	// Let the window fill behind the pending load; the core is then provably
	// stalled with no completion scheduled.
	for i := int64(1); i <= 20; i++ {
		c.Tick(i*10, 10)
	}
	if got := c.BlockedUntil(); got != int64(math.MaxInt64) {
		t.Fatalf("stalled with nothing scheduled: BlockedUntil = %d, want MaxInt64", got)
	}
	// A completion queued between ticks lowers the bound immediately.
	c.Complete(port.issued[0], 777)
	if got := c.BlockedUntil(); got != 777 {
		t.Fatalf("BlockedUntil = %d after Complete at 777, want 777", got)
	}
	// Ticking across the wake cycle resumes commit.
	before := c.Stats().Instructions
	c.Tick(210, 600)
	if c.Stats().Instructions == before {
		t.Fatal("core did not resume after its completion was delivered")
	}
	if got := c.BlockedUntil(); got != 0 {
		t.Fatalf("BlockedUntil = %d after resuming, want 0", got)
	}
}

// TestBlockedUntilStoreStall pins the external-unblock case: a core wedged
// on a full write buffer reports MaxInt64 (only a command issue can free a
// slot), and resumes once the port accepts the store.
func TestBlockedUntilStoreStall(t *testing.T) {
	c, port := newCore(t, []Item{
		{NonMem: 1, Access: Access{Addr: 64, IsWrite: true}, HasAccess: true},
		{NonMem: 1 << 20},
	})
	port.rejectWrite = true
	for i := int64(0); i <= 20; i++ {
		c.Tick(i*10, 10)
	}
	if got := c.BlockedUntil(); got != int64(math.MaxInt64) {
		t.Fatalf("store-stalled: BlockedUntil = %d, want MaxInt64", got)
	}
	if c.Stats().StoreStallCycles == 0 {
		t.Fatal("no store stall cycles accounted; scenario is vacuous")
	}
	port.rejectWrite = false
	before := c.Stats().Instructions
	c.Tick(210, 10)
	if c.Stats().Instructions == before {
		t.Fatal("core did not resume once the write buffer accepted the store")
	}
}
