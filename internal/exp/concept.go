package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/memctrl"
	"repro/internal/sched"
)

// This file reproduces the paper's conceptual figures: Figure 1 (latency
// overlap in a single core), Figure 2 (parallelism-aware scheduling
// halves a core's stall time) and Figure 3 (the within-batch worked
// example with its exact completion-time tables).

func init() {
	register(Experiment{ID: "F1", Title: "Single-core request overlap (conceptual)", Run: runF1})
	register(Experiment{ID: "F2", Title: "Parallelism-aware vs conventional scheduling, 2 cores (conceptual)", Run: runF2})
	register(Experiment{ID: "F3", Title: "Within-batch scheduling worked example (exact)", Run: runF3})
}

// scriptedTrace replays fixed items then idles.
type scriptedTrace struct {
	items []cpu.Item
	pos   int
}

func (s *scriptedTrace) Next() cpu.Item {
	if s.pos >= len(s.items) {
		return cpu.Item{}
	}
	it := s.items[s.pos]
	s.pos++
	return it
}

// scriptedPort completes reads at fixed times.
type scriptedPort struct {
	delays []int64 // per-issue completion time
	core   *cpu.Core
	n      int
}

func (p *scriptedPort) IssueRead(thread int, addr int64, tag int) bool {
	r := &memctrl.Request{ID: int64(p.n), Thread: thread, Addr: addr, Tag: tag}
	p.core.Complete(r, p.delays[p.n])
	p.n++
	return true
}

func (p *scriptedPort) IssueWrite(int, int64) bool { return true }

// runF1 contrasts serialized vs overlapped service of two independent load
// misses, as in Figure 1: the overlapped case exposes roughly one bank
// access latency instead of two.
func runF1(x *Context) (*Table, error) {
	const lat = 160 // uncontended row-closed access, CPU cycles
	run := func(second int64) (int64, error) {
		port := &scriptedPort{delays: []int64{lat, second}}
		trace := &scriptedTrace{items: []cpu.Item{
			{NonMem: 1, Access: cpu.Access{Addr: 64, Bank: 0}, HasAccess: true},
			{NonMem: 1, Access: cpu.Access{Addr: 1 << 20, Bank: 1}, HasAccess: true},
			{NonMem: 60},
		}}
		c, err := cpu.NewCore(0, cpu.DefaultConfig(), trace, port)
		if err != nil {
			return 0, err
		}
		port.core = c
		c.Tick(0, 3*lat)
		return c.Stats().MemStallCycles, nil
	}
	serial, err := run(2 * lat)
	if err != nil {
		return nil, err
	}
	overlap, err := run(lat + 10)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID: "F1", Title: "Stall time of one core: serialized vs overlapped misses",
		Header: []string{"service", "stall cycles", "exposed latencies"},
	}
	t.AddRow("serialized (one after another)", d(serial), f2(float64(serial)/lat))
	t.AddRow("overlapped (different banks)", d(overlap), f2(float64(overlap)/lat))
	if overlap*18 > serial*10 {
		t.AddNote("UNEXPECTED: overlap did not halve stall time")
	} else {
		t.AddNote("overlapping hides one bank access latency, as in Figure 1")
	}
	return t, nil
}

// runF2 plays the Figure 2 request pattern (two threads, two banks, two
// requests each) through a real controller under a conventional scheduler
// (FR-FCFS) and under PAR-BS, and reports each thread's completion of its
// request pair.
func runF2(x *Context) (*Table, error) {
	play := func(policy memctrl.Policy) (done [2]int64, err error) {
		dev, err := dram.NewDevice(dram.DDR2_800(), dram.DefaultGeometry())
		if err != nil {
			return done, err
		}
		ctrl, err := memctrl.NewController(dev, policy, memctrl.DefaultConfig(2))
		if err != nil {
			return done, err
		}
		ctrl.SetOnComplete(func(r *memctrl.Request, end int64) {
			if end > done[r.Thread] {
				done[r.Thread] = end
			}
		})
		g := dev.Geometry()
		at := func(bank int, row int64) int64 {
			return g.Unmap(dram.Location{Bank: bank, Row: row, Col: 0})
		}
		// Figure 2 arrival order: T0->B0, T1->B1, T1->B0, T0->B1.
		ctrl.EnqueueRead(0, at(0, 1), 0)
		ctrl.EnqueueRead(1, at(1, 101), 0)
		ctrl.EnqueueRead(1, at(0, 102), 0)
		ctrl.EnqueueRead(0, at(1, 2), 0)
		for now := int64(0); now < 400; now++ {
			ctrl.Tick(now)
		}
		return done, nil
	}
	conv, err := play(sched.NewFRFCFS())
	if err != nil {
		return nil, err
	}
	par, err := play(sched.NewPARBSDefault())
	if err != nil {
		return nil, err
	}
	avg := func(d [2]int64) float64 { return float64(d[0]+d[1]) / 2 }
	t := &Table{
		ID: "F2", Title: "Per-core completion of two-request pairs (DRAM cycles)",
		Header: []string{"scheduler", "core 0 done", "core 1 done", "avg"},
	}
	t.AddRow("conventional (FR-FCFS)", d(conv[0]), d(conv[1]), f1(avg(conv)))
	t.AddRow("PAR-BS", d(par[0]), d(par[1]), f1(avg(par)))
	if avg(par) < avg(conv) {
		t.AddNote("parallelism-aware order reduces average stall, as in Figure 2")
	} else {
		t.AddNote("UNEXPECTED: PAR-BS did not reduce average completion")
	}
	return t, nil
}

// runF3 reproduces Figure 3's completion-time tables exactly using the
// abstract within-batch model.
func runF3(x *Context) (*Table, error) {
	b := core.Figure3Batch()
	t := &Table{
		ID: "F3", Title: "Batch-completion times (latency units; paper values exact)",
		Header: []string{"scheduler", "T1", "T2", "T3", "T4", "AVG", "paper AVG"},
	}
	paperAvg := map[core.AbsPolicy]float64{core.AbsFCFS: 5, core.AbsFRFCFS: 4.375, core.AbsPARBS: 3.125}
	for _, p := range []core.AbsPolicy{core.AbsFCFS, core.AbsFRFCFS, core.AbsPARBS} {
		finish, avg := b.Simulate(p)
		row := []string{p.String()}
		for _, f := range finish {
			row = append(row, fmt.Sprintf("%g", f))
		}
		row = append(row, fmt.Sprintf("%g", avg), fmt.Sprintf("%g", paperAvg[p]))
		t.AddRow(row...)
		if avg != paperAvg[p] {
			t.AddNote("MISMATCH for %s: got %g, paper %g", p, avg, paperAvg[p])
		}
	}
	t.AddNote("layout reconstructed from the figure's stated constraints; all 12 completion times match the paper")
	return t, nil
}
