package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/memctrl"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/workload"
)

// This file reproduces the Section 8.3 analysis figures: Figure 11
// (Marking-Cap), Figure 12 (batching choice) and Figure 13 (within-batch
// ranking schemes).

func init() {
	register(Experiment{ID: "F11", Title: "Effect of Marking-Cap", Run: runF11})
	register(Experiment{ID: "F12", Title: "Effect of batching choice (static/eslot/full)", Run: runF12})
	register(Experiment{ID: "F13", Title: "Effect of within-batch ranking scheme", Run: runF13})
}

// variant names one scheduler configuration in a sweep.
type variant struct {
	label string
	make  func() memctrl.Policy
}

// sweepSet evaluates each variant over the mixes and returns per-variant
// GMEAN (unfairness, weighted, hmean).
func sweepSet(x *Context, cores int, mixes []workload.Mix, variants []variant) (*Table, error) {
	cfg := x.Config(cores)
	if err := x.prepareAlone(x.ctx(), cfg, mixes); err != nil {
		return nil, err
	}
	type cell struct{ unf, wsp, hsp []float64 }
	cells := make([]cell, len(variants))
	type job struct{ vi, mi int }
	var jobs []job
	for vi := range variants {
		for mi := range mixes {
			jobs = append(jobs, job{vi, mi})
		}
	}
	results := make([][]MixResult, len(variants))
	for i := range results {
		results[i] = make([]MixResult, len(mixes))
	}
	err := parallelFor(x.ctx(), len(jobs), func(i int) error {
		j := jobs[i]
		r, err := x.RunMix(cfg, mixes[j.mi], variants[j.vi].make())
		if err != nil {
			return err
		}
		results[j.vi][j.mi] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	t := &Table{Header: []string{"variant", "GMEAN unfairness", "GMEAN Wspeedup", "GMEAN Hspeedup"}}
	for vi, v := range variants {
		for mi := range mixes {
			r := results[vi][mi]
			cells[vi].unf = append(cells[vi].unf, r.Unfair)
			cells[vi].wsp = append(cells[vi].wsp, r.WSpeedup)
			cells[vi].hsp = append(cells[vi].hsp, r.HSpeedup)
		}
		t.AddRow(v.label, f2(stats.GeoMean(cells[vi].unf)), f3(stats.GeoMean(cells[vi].wsp)), f3(stats.GeoMean(cells[vi].hsp)))
	}
	return t, nil
}

// caseSlowdowns runs one mix under each variant and formats per-thread
// slowdowns as note lines.
func caseSlowdowns(x *Context, t *Table, mix workload.Mix, variants []variant) error {
	cfg := x.Config(len(mix.Benchmarks))
	if err := x.prepareAlone(x.ctx(), cfg, []workload.Mix{mix}); err != nil {
		return err
	}
	lines := make([]string, len(variants))
	err := parallelFor(x.ctx(), len(variants), func(i int) error {
		r, err := x.RunMix(cfg, mix, variants[i].make())
		if err != nil {
			return err
		}
		s := fmt.Sprintf("%s [%s]:", mix.Name, variants[i].label)
		for j, c := range r.Cs {
			s += fmt.Sprintf(" %s=%.2f", mix.Benchmarks[j].Name, c.MemSlowdown())
		}
		lines[i] = s
		return nil
	})
	if err != nil {
		return err
	}
	for _, l := range lines {
		t.AddNote("%s", l)
	}
	return nil
}

// sweepMixes is the workload set used by the Section 8.3 sweeps.
func sweepMixes(x *Context) []workload.Mix {
	n := x.MixCount(24)
	return append([]workload.Mix{workload.CaseStudyI(), workload.CaseStudyII()},
		workload.RandomMixes(n, 4, x.Seed+11)...)
}

func parbsVariant(label string, opts core.Options) variant {
	return variant{label: label, make: func() memctrl.Policy { return sched.NewPARBS(opts) }}
}

func runF11(x *Context) (*Table, error) {
	caps := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 20}
	if x.Quick {
		caps = []int{1, 3, 5, 10}
	}
	var variants []variant
	for _, c := range caps {
		o := core.DefaultOptions()
		o.MarkingCap = c
		variants = append(variants, parbsVariant(fmt.Sprintf("c=%d", c), o))
	}
	noCap := core.DefaultOptions()
	noCap.MarkingCap = 0
	variants = append(variants, parbsVariant("no-c", noCap))

	t, err := sweepSet(x, 4, sweepMixes(x), variants)
	if err != nil {
		return nil, err
	}
	t.ID, t.Title = "F11", "PAR-BS fairness and throughput vs Marking-Cap (4-core)"
	if err := caseSlowdowns(x, t, workload.CaseStudyI(), variants); err != nil {
		return nil, err
	}
	if err := caseSlowdowns(x, t, workload.CaseStudyII(), variants); err != nil {
		return nil, err
	}
	t.AddNote("paper: c=1 gives the worst throughput (destroys locality); c=5 is the sweet spot; very large caps re-introduce FR-FCFS-like unfairness")
	return t, nil
}

func runF12(x *Context) (*Table, error) {
	durationsCPU := []int64{400, 800, 1600, 3200, 6400, 12800, 25600}
	if x.Quick {
		durationsCPU = []int64{400, 3200, 25600}
	}
	var variants []variant
	for _, dur := range durationsCPU {
		o := core.DefaultOptions()
		o.Batch = core.StaticBatching
		o.BatchDuration = dur / 10 // CPU cycles -> DRAM cycles
		variants = append(variants, parbsVariant(fmt.Sprintf("st-%d", dur), o))
	}
	eslot := core.DefaultOptions()
	eslot.Batch = core.EmptySlotBatching
	variants = append(variants, parbsVariant("eslot", eslot))
	variants = append(variants, parbsVariant("full", core.DefaultOptions()))

	t, err := sweepSet(x, 4, sweepMixes(x), variants)
	if err != nil {
		return nil, err
	}
	t.ID, t.Title = "F12", "Batching choice: time-based static vs empty-slot vs full (4-core)"
	if err := caseSlowdowns(x, t, workload.CaseStudyI(), variants); err != nil {
		return nil, err
	}
	if err := caseSlowdowns(x, t, workload.CaseStudyII(), variants); err != nil {
		return nil, err
	}
	t.AddNote("paper: small static durations degenerate to rank/row-hit-first (unfair); the static sweet spot is 3200 cycles; full batching is best on average")
	return t, nil
}

func rankVariants(x *Context) []variant {
	mk := func(label string, r core.RankMode) variant {
		o := core.DefaultOptions()
		o.Rank = r
		o.Seed = x.Seed
		return parbsVariant(label, o)
	}
	return []variant{
		mk("max-total(PAR-BS)", core.MaxTotal),
		mk("total-max", core.TotalMax),
		mk("random", core.RandomRank),
		mk("round-robin", core.RoundRobin),
		mk("no-rank(FR-FCFS)", core.NoRankFRFCFS),
		mk("no-rank(FCFS)", core.NoRankFCFS),
		{label: "STFM (reference)", make: func() memctrl.Policy { return sched.NewSTFM() }},
	}
}

func runF13(x *Context) (*Table, error) {
	variants := rankVariants(x)
	t, err := sweepSet(x, 4, sweepMixes(x), variants)
	if err != nil {
		return nil, err
	}
	t.ID, t.Title = "F13", "Within-batch ranking schemes vs STFM (4-core)"
	lbm := workload.CaseStudyIII()
	if err := caseSlowdowns(x, t, lbm, variants); err != nil {
		return nil, err
	}
	matlab4, err := workload.FourCopies("matlab")
	if err != nil {
		return nil, err
	}
	if err := caseSlowdowns(x, t, matlab4, variants); err != nil {
		return nil, err
	}
	t.AddNote("paper: random/round-robin lose 5.7%%/9.8%% weighted/hmean vs Max-Total; no-rank FR-FCFS loses 4.7%%/10.7%%; ranking matters for 4x lbm (high BLP), not for 4x matlab")
	return t, nil
}
