package exp

import (
	"fmt"

	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/workload"
)

// This file reproduces the aggregate evaluations: Figure 8 (100 4-core
// workloads), Figure 9 (8-core), Figure 10 (16-core) and Table 4 (summary
// across all system sizes).

func init() {
	register(Experiment{ID: "F8", Title: "4-core: 10 sample workloads + GMEAN over the full set", Run: runF8})
	register(Experiment{ID: "F9", Title: "8-core mixed workload", Run: runF9})
	register(Experiment{ID: "F10", Title: "16-core: 5 sample workloads + GMEAN over 12", Run: runF10})
	register(Experiment{ID: "T4", Title: "Summary: fairness and throughput on 4/8/16-core systems", Run: runT4})
}

// aggregate holds per-scheduler geometric means over a workload set.
type aggregate struct {
	Unfair, WSp, HSp, AST float64
	WCLat                 int64
}

// runSet evaluates every scheduler on every mix (in parallel) and returns
// per-scheduler aggregates plus the per-mix unfairness for sample columns.
func runSet(x *Context, cores int, mixes []workload.Mix) (map[string]aggregate, map[string][]MixResult, error) {
	cfg := x.Config(cores)
	if err := x.prepareAlone(x.ctx(), cfg, mixes); err != nil {
		return nil, nil, err
	}
	names := sched.Names()
	type job struct{ mi, si int }
	jobs := make([]job, 0, len(mixes)*len(names))
	for mi := range mixes {
		for si := range names {
			jobs = append(jobs, job{mi, si})
		}
	}
	results := make([][]MixResult, len(mixes))
	for i := range results {
		results[i] = make([]MixResult, len(names))
	}
	err := parallelFor(x.ctx(), len(jobs), func(i int) error {
		j := jobs[i]
		pol, err := sched.ByName(names[j.si])
		if err != nil {
			return err
		}
		r, err := x.RunMix(cfg, mixes[j.mi], pol)
		if err != nil {
			return err
		}
		results[j.mi][j.si] = r
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	aggs := map[string]aggregate{}
	perSched := map[string][]MixResult{}
	for si, name := range names {
		var unf, wsp, hsp, ast []float64
		var wc int64
		for mi := range mixes {
			r := results[mi][si]
			unf = append(unf, r.Unfair)
			wsp = append(wsp, r.WSpeedup)
			hsp = append(hsp, r.HSpeedup)
			ast = append(ast, r.AvgAST)
			if r.WCLatency > wc {
				wc = r.WCLatency
			}
			perSched[name] = append(perSched[name], r)
		}
		aggs[name] = aggregate{
			Unfair: stats.GeoMean(unf),
			WSp:    stats.GeoMean(wsp),
			HSp:    stats.GeoMean(hsp),
			AST:    stats.Mean(ast),
			WCLat:  wc,
		}
	}
	return aggs, perSched, nil
}

func runF8(x *Context) (*Table, error) {
	samples := workload.Figure8Samples()
	n := x.MixCount(100)
	mixes := append([]workload.Mix{}, samples...)
	extra := workload.RandomMixes(n, 4, x.Seed)
	if x.Quick {
		mixes = mixes[:3]
	}
	mixes = append(mixes, extra...)
	aggs, perSched, err := runSet(x, 4, mixes)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID: "F8", Title: fmt.Sprintf("Unfairness and throughput over %d 4-core workloads", len(mixes)),
		Header: []string{"scheduler", "GMEAN unfairness", "GMEAN Wspeedup", "GMEAN Hspeedup"},
	}
	for _, name := range sched.Names() {
		a := aggs[name]
		t.AddRow(name, f2(a.Unfair), f3(a.WSp), f3(a.HSp))
	}
	// Sample columns: unfairness per sample workload under each scheduler.
	for i, m := range mixes {
		if i >= len(samples) || (x.Quick && i >= 3) {
			break
		}
		row := fmt.Sprintf("%s (%v):", m.Name, workload.Names(m.Benchmarks))
		for _, name := range sched.Names() {
			row += fmt.Sprintf(" %s=%.2f", name, perSched[name][i].Unfair)
		}
		t.AddNote("sample unfairness %s", row)
	}
	t.AddNote("paper GMEAN over 100 workloads: unfairness 3.12/1.64/1.56/1.36/1.22; PAR-BS improves fairness 1.11X and hmean-speedup 8.3%% over STFM")
	return t, nil
}

func runF9(x *Context) (*Table, error) {
	mix := workload.Figure9Workload()
	t, err := caseStudyTable(x, "F9", "8-core mixed workload (3 intensive + 5 non-intensive)", mix)
	if err != nil {
		return nil, err
	}
	t.AddNote("paper: unfairness 4.78/4.54/3.21/1.66/1.39; all prior schedulers slow mcf >= 3.5X, PAR-BS 2.8X")
	return t, nil
}

func runF10(x *Context) (*Table, error) {
	samples := workload.Figure10Samples()
	n := x.MixCount(12)
	mixes := append([]workload.Mix{}, samples...)
	if x.Quick {
		mixes = mixes[:2]
	}
	mixes = append(mixes, workload.RandomMixes(n, 16, x.Seed+2)...)
	aggs, perSched, err := runSet(x, 16, mixes)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID: "F10", Title: fmt.Sprintf("Unfairness and throughput over %d 16-core workloads", len(mixes)),
		Header: []string{"scheduler", "GMEAN unfairness", "GMEAN Wspeedup", "GMEAN Hspeedup"},
	}
	for _, name := range sched.Names() {
		a := aggs[name]
		t.AddRow(name, f2(a.Unfair), f3(a.WSp), f3(a.HSp))
	}
	for i := range samples {
		if i >= len(mixes) || (x.Quick && i >= 2) {
			break
		}
		row := samples[i].Name + ":"
		for _, name := range sched.Names() {
			row += fmt.Sprintf(" %s=%.2f", name, perSched[name][i].Unfair)
		}
		t.AddNote("sample unfairness %s", row)
	}
	t.AddNote("paper GMEAN over 12 workloads: unfairness 4.99/3.06/3.74/1.81/1.63; PAR-BS +3.2%% weighted, +5.1%% hmean vs STFM")
	return t, nil
}

func runT4(x *Context) (*Table, error) {
	t := &Table{
		ID: "T4", Title: "Summary across system sizes (GMEAN unfairness/speedups, mean AST, max WC latency)",
		Header: []string{"system", "scheduler", "unfairness", "Wspeedup", "Hspeedup", "AST/req", "WC lat"},
	}
	type sys struct {
		cores int
		mixes []workload.Mix
	}
	systems := []sys{
		{4, append(workload.Figure8Samples(), workload.RandomMixes(x.MixCount(90), 4, x.Seed)...)},
		{8, append([]workload.Mix{workload.Figure9Workload()}, workload.RandomMixes(x.MixCount(15), 8, x.Seed+1)...)},
		{16, append(workload.Figure10Samples(), workload.RandomMixes(x.MixCount(7), 16, x.Seed+2)...)},
	}
	if x.Quick {
		for i := range systems {
			if len(systems[i].mixes) > 4 {
				systems[i].mixes = systems[i].mixes[:4]
			}
		}
	}
	for _, s := range systems {
		aggs, _, err := runSet(x, s.cores, s.mixes)
		if err != nil {
			return nil, err
		}
		for _, name := range sched.Names() {
			a := aggs[name]
			t.AddRow(fmt.Sprintf("%d-core", s.cores), name, f2(a.Unfair), f3(a.WSp), f3(a.HSp), f1(a.AST), d(a.WCLat))
		}
		st, pb := aggs["STFM"], aggs["PAR-BS"]
		t.AddRow(fmt.Sprintf("%d-core", s.cores), "PAR-BS vs STFM",
			fmt.Sprintf("%.2fX", st.Unfair/pb.Unfair),
			fmt.Sprintf("%+.1f%%", 100*(pb.WSp/st.WSp-1)),
			fmt.Sprintf("%+.1f%%", 100*(pb.HSp/st.HSp-1)),
			fmt.Sprintf("%+.1f%%", 100*(1-pb.AST/st.AST)),
			fmt.Sprintf("%.2fX", float64(st.WCLat)/float64(pb.WCLat)))
	}
	t.AddNote("paper deltas vs STFM: fairness 1.11X/1.08X/1.11X, weighted +4.4/+4.3/+3.2%%, hmean +8.3/+6.1/+5.1%%, AST -7.1/-5.9/-5.3%%, WC 1.46X/2.26X/2.11X for 4/8/16 cores")
	return t, nil
}
