package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/memctrl"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// This file holds extension experiments beyond the paper's figures:
// the varying-system-parameter studies its extended technical report
// ([26], MSR-TR-2008-26) covers, the adaptive Marking-Cap the paper
// suggests as future work (Section 8.3.1), the start-time fair queueing
// improvement cited in related work, and a DRAM-refresh sensitivity check.

func init() {
	register(Experiment{ID: "X1", Title: "[extension] Sensitivity to DRAM bank count", Run: runX1})
	register(Experiment{ID: "X2", Title: "[extension] Sensitivity to lock-step channel count", Run: runX2})
	register(Experiment{ID: "X3", Title: "[extension] Sensitivity to request buffer size", Run: runX3})
	register(Experiment{ID: "X4", Title: "[extension] Adaptive Marking-Cap vs fixed caps", Run: runX4})
	register(Experiment{ID: "X5", Title: "[extension] NFQ virtual-finish vs start-time fair queueing", Run: runX5})
	register(Experiment{ID: "X6", Title: "[extension] Impact of DRAM refresh", Run: runX6})
	register(Experiment{ID: "X7", Title: "[extension] DDR3-1333 vs DDR2-800 device generation", Run: runX7})
}

// sensitivity runs CSI under three representative schedulers for each
// configuration mutation.
func sensitivity(x *Context, id, title, param string, values []string,
	mutate func(cfg *sim.Config, idx int)) (*Table, error) {
	mix := workload.CaseStudyI()
	t := &Table{ID: id, Title: title,
		Header: []string{param, "scheduler", "unfairness", "Wspeedup", "Hspeedup", "AST/req"}}
	scheds := []string{"FR-FCFS", "STFM", "PAR-BS"}
	type row struct {
		cells []string
	}
	rows := make([][]row, len(values))
	err := parallelFor(x.ctx(), len(values), func(vi int) error {
		// A private context per configuration: alone baselines depend on
		// the memory system shape.
		sub := NewContext(x.Quick)
		sub.Seed = x.Seed
		cfg := sub.Config(4)
		mutate(&cfg, vi)
		if err := cfg.Validate(); err != nil {
			return err
		}
		for _, p := range mix.Benchmarks {
			if _, err := aloneWith(sub, cfg, p); err != nil {
				return err
			}
		}
		for _, name := range scheds {
			pol, err := sched.ByName(name)
			if err != nil {
				return err
			}
			r, err := runMixWith(sub, cfg, mix, pol)
			if err != nil {
				return err
			}
			rows[vi] = append(rows[vi], row{cells: []string{
				values[vi], name, f2(r.Unfair), f3(r.WSpeedup), f3(r.HSpeedup), f1(r.AvgAST),
			}})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, rs := range rows {
		for _, r := range rs {
			t.AddRow(r.cells...)
		}
	}
	return t, nil
}

// aloneWith and runMixWith bypass the context's channel-keyed alone cache,
// which is insufficient when other system parameters vary.
func aloneWith(x *Context, cfg sim.Config, p workload.Profile) (any, error) {
	return x.Alone(cfg, p)
}

func runMixWith(x *Context, cfg sim.Config, mix workload.Mix, pol memctrl.Policy) (MixResult, error) {
	return x.RunMix(cfg, mix, pol)
}

func runX1(x *Context) (*Table, error) {
	banks := []int{4, 8, 16}
	t, err := sensitivity(x, "X1", "CSI across bank counts", "banks",
		[]string{"4", "8", "16"}, func(cfg *sim.Config, i int) {
			cfg.Geometry.Banks = banks[i]
		})
	if err != nil {
		return nil, err
	}
	t.AddNote("more banks ease conflicts for every scheduler; PAR-BS's edge is largest when banks are scarce")
	return t, nil
}

func runX2(x *Context) (*Table, error) {
	chans := []int{1, 2, 4}
	t, err := sensitivity(x, "X2", "CSI across lock-step channel counts", "channels",
		[]string{"1", "2", "4"}, func(cfg *sim.Config, i int) {
			cfg.Geometry.Channels = chans[i]
		})
	if err != nil {
		return nil, err
	}
	t.AddNote("extra bandwidth shortens bursts; contention (and scheduler differences) shrink accordingly")
	return t, nil
}

func runX3(x *Context) (*Table, error) {
	bufs := []int{32, 64, 128, 256}
	t, err := sensitivity(x, "X3", "CSI across request buffer sizes", "buffer",
		[]string{"32", "64", "128", "256"}, func(cfg *sim.Config, i int) {
			cfg.Ctrl.ReadBufEntries = bufs[i]
		})
	if err != nil {
		return nil, err
	}
	t.AddNote("small buffers throttle memory-intensive threads at the core; larger buffers expose more reordering freedom")
	return t, nil
}

func runX4(x *Context) (*Table, error) {
	mk := func(label string, opts core.Options) variant {
		return parbsVariant(label, opts)
	}
	fixed := func(c int) core.Options {
		o := core.DefaultOptions()
		o.MarkingCap = c
		return o
	}
	adaptive := core.DefaultOptions()
	adaptive.AdaptiveCap = true
	adaptive.CapMin = 1
	adaptive.CapMax = 10
	variants := []variant{
		mk("fixed c=1", fixed(1)),
		mk("fixed c=5", fixed(5)),
		mk("fixed c=10", fixed(10)),
		mk("adaptive [1,10]", adaptive),
	}
	t, err := sweepSet(x, 4, sweepMixes(x), variants)
	if err != nil {
		return nil, err
	}
	t.ID, t.Title = "X4", "Adaptive Marking-Cap (Section 8.3.1 future work) vs fixed caps"
	t.AddNote("the adaptive cap tracks batch turnaround; it should sit between the best fixed caps without per-workload tuning")
	return t, nil
}

func runX5(x *Context) (*Table, error) {
	variants := []variant{
		{label: "NFQ (FQ-VFTF)", make: func() memctrl.Policy { return sched.NewNFQ() }},
		{label: "NFQ-ST (start-time)", make: func() memctrl.Policy { return sched.NewNFQStartTime() }},
		{label: "PAR-BS", make: func() memctrl.Policy { return sched.NewPARBSDefault() }},
	}
	t, err := sweepSet(x, 4, sweepMixes(x), variants)
	if err != nil {
		return nil, err
	}
	t.ID, t.Title = "X5", "Start-time fair queueing (Rafique et al.) vs FQ-VFTF vs PAR-BS"
	if err := caseSlowdowns(x, t, workload.CaseStudyI(), variants); err != nil {
		return nil, err
	}
	t.AddNote("start-time fair queueing improves NFQ's fairness as its authors report, but remains parallelism-unaware")
	return t, nil
}

func runX6(x *Context) (*Table, error) {
	mix := workload.CaseStudyI()
	t := &Table{ID: "X6", Title: "DRAM refresh impact on CSI (PAR-BS)",
		Header: []string{"tREFI (DRAM cycles)", "unfairness", "Wspeedup", "Hspeedup", "refreshes"}}
	// 7.8 us at 2.5 ns/cycle is ~3120 cycles; sweep around it.
	for _, trefi := range []int64{0, 3120, 1560} {
		sub := NewContext(x.Quick)
		sub.Seed = x.Seed
		cfg := sub.Config(4)
		cfg.Timing.TREFI = trefi
		for _, p := range mix.Benchmarks {
			if _, err := sub.Alone(cfg, p); err != nil {
				return nil, err
			}
		}
		r, err := sub.RunMix(cfg, mix, sched.NewPARBSDefault())
		if err != nil {
			return nil, err
		}
		label := "off"
		if trefi > 0 {
			label = fmt.Sprintf("%d", trefi)
		}
		t.AddRow(label, f2(r.Unfair), f3(r.WSpeedup), f3(r.HSpeedup), d(r.Raw.DRAM.Refreshes))
	}
	t.AddNote("refresh steals a small, scheduler-independent slice of bandwidth; the paper disables it, and so does our baseline")
	return t, nil
}

func runX7(x *Context) (*Table, error) {
	mix := workload.CaseStudyI()
	t := &Table{ID: "X7", Title: "CSI on DDR2-800 (paper baseline) vs DDR3-1333",
		Header: []string{"device", "scheduler", "unfairness", "Wspeedup", "Hspeedup", "AST/req (CPU cyc)"}}
	devices := []struct {
		name   string
		mutate func(cfg *sim.Config)
	}{
		{"DDR2-800", func(*sim.Config) {}},
		{"DDR3-1333", func(cfg *sim.Config) {
			cfg.Timing = dram.DDR3_1333()
			cfg.CPUCyclesPerDRAM = 6
		}},
	}
	for _, dvc := range devices {
		sub := NewContext(x.Quick)
		sub.Seed = x.Seed
		cfg := sub.Config(4)
		dvc.mutate(&cfg)
		for _, p := range mix.Benchmarks {
			if _, err := sub.Alone(cfg, p); err != nil {
				return nil, err
			}
		}
		for _, name := range []string{"FR-FCFS", "PAR-BS"} {
			pol, err := sched.ByName(name)
			if err != nil {
				return nil, err
			}
			r, err := sub.RunMix(cfg, mix, pol)
			if err != nil {
				return nil, err
			}
			t.AddRow(dvc.name, name, f2(r.Unfair), f3(r.WSpeedup), f3(r.HSpeedup), f1(r.AvgAST))
		}
	}
	t.AddNote("the faster device relieves contention; PAR-BS's fairness advantage persists across generations")
	return t, nil
}
