package exp

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// roundTripJSON asserts a produced table survives the versioned JSON
// artifact format exactly — the contract behind cmd/experiments -json.
func roundTripJSON(t *testing.T, tb *Table) {
	t.Helper()
	data, err := tb.JSON()
	if err != nil {
		t.Fatalf("%s: marshal: %v", tb.ID, err)
	}
	back, err := TableFromJSON(data)
	if err != nil {
		t.Fatalf("%s: parse: %v", tb.ID, err)
	}
	if !reflect.DeepEqual(tb, back) {
		t.Errorf("%s changed across JSON round trip:\n orig: %+v\n back: %+v", tb.ID, tb, back)
	}
}

func TestRegistryComplete(t *testing.T) {
	// One experiment per evaluation artifact, then the extensions.
	want := []string{"F1", "F2", "T2", "T3", "F3", "T1", "F5", "F6", "F7", "F8", "F9", "F10", "T4", "F11", "F12", "F13", "F14",
		"X1", "X2", "X3", "X4", "X5", "X6", "X7", "X8", "X9", "X10", "X11"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("registry has %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registry order %v, want %v", got, want)
		}
	}
	if _, err := ByID("F5"); err != nil {
		t.Error(err)
	}
	if _, err := ByID("F99"); err == nil {
		t.Error("ByID accepted unknown id")
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{ID: "X", Title: "demo", Header: []string{"a", "bb"}}
	tb.AddRow("x", "1")
	tb.AddNote("hello %d", 7)
	s := tb.String()
	for _, want := range []string{"== X: demo ==", "a", "bb", "hello 7"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
}

// TestConceptExperimentsExact runs the cheap, deterministic experiments and
// requires that none of them report a mismatch.
func TestConceptExperimentsExact(t *testing.T) {
	x := NewContext(true)
	for _, id := range []string{"F1", "F2", "F3", "T1", "T2"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		tb, err := e.Run(x)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tb.Rows) == 0 {
			t.Errorf("%s produced no rows", id)
		}
		for _, n := range tb.Notes {
			if strings.Contains(n, "MISMATCH") || strings.Contains(n, "UNEXPECTED") {
				t.Errorf("%s: %s", id, n)
			}
		}
	}
}

// TestCaseStudyExperimentsQuick exercises the simulation-backed experiments
// at reduced scale and checks structural sanity.
func TestCaseStudyExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed experiments")
	}
	x := NewContext(true)
	for _, id := range []string{"F5", "F6", "F7", "F9", "F14"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		tb, err := e.Run(x)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tb.Rows) < 4 {
			t.Errorf("%s produced %d rows, want >= 4 (one per scheduler)", id, len(tb.Rows))
		}
		roundTripJSON(t, tb)
	}
}

// TestAggregateExperimentsQuick exercises the heavy sweeps at reduced scale.
func TestAggregateExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("aggregate experiments")
	}
	x := NewContext(true)
	for _, id := range []string{"T3", "F8", "F10", "T4", "F11", "F12", "F13", "X1", "X4", "X5", "X6"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		tb, err := e.Run(x)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tb.Rows) == 0 {
			t.Errorf("%s produced no rows", id)
		}
		roundTripJSON(t, tb)
	}
}

// TestTableJSONSchema pins the artifact's top-level key set and schema
// string, and rejects foreign schemas.
func TestTableJSONSchema(t *testing.T) {
	tb := &Table{ID: "X", Title: "demo", Header: []string{"a"}, Rows: [][]string{{"1"}}}
	tb.AddNote("n")
	roundTripJSON(t, tb)
	data, err := tb.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	want := []string{"schema", "id", "title", "header", "rows", "notes"}
	for _, k := range want {
		if _, ok := m[k]; !ok {
			t.Errorf("artifact missing top-level key %q", k)
		}
	}
	if len(m) != len(want) {
		t.Errorf("artifact has %d top-level keys, want %d — bump %s on schema changes", len(m), len(want), TableSchema)
	}
	if _, err := TableFromJSON([]byte(`{"schema":"parbs.exp/v999"}`)); err == nil {
		t.Error("foreign schema accepted")
	}
}

func TestMixCountScaling(t *testing.T) {
	full := NewContext(false)
	quick := NewContext(true)
	if full.MixCount(100) != 100 {
		t.Error("full context must not scale down")
	}
	if got := quick.MixCount(100); got != 12 {
		t.Errorf("quick MixCount(100) = %d, want 12", got)
	}
	if got := quick.MixCount(8); got != 3 {
		t.Errorf("quick MixCount(8) = %d, want floor 3", got)
	}
}
