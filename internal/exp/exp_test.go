package exp

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	// One experiment per evaluation artifact, then the extensions.
	want := []string{"F1", "F2", "T2", "T3", "F3", "T1", "F5", "F6", "F7", "F8", "F9", "F10", "T4", "F11", "F12", "F13", "F14",
		"X1", "X2", "X3", "X4", "X5", "X6", "X7", "X8", "X9", "X10", "X11"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("registry has %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registry order %v, want %v", got, want)
		}
	}
	if _, err := ByID("F5"); err != nil {
		t.Error(err)
	}
	if _, err := ByID("F99"); err == nil {
		t.Error("ByID accepted unknown id")
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{ID: "X", Title: "demo", Header: []string{"a", "bb"}}
	tb.AddRow("x", "1")
	tb.AddNote("hello %d", 7)
	s := tb.String()
	for _, want := range []string{"== X: demo ==", "a", "bb", "hello 7"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
}

// TestConceptExperimentsExact runs the cheap, deterministic experiments and
// requires that none of them report a mismatch.
func TestConceptExperimentsExact(t *testing.T) {
	x := NewContext(true)
	for _, id := range []string{"F1", "F2", "F3", "T1", "T2"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		tb, err := e.Run(x)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tb.Rows) == 0 {
			t.Errorf("%s produced no rows", id)
		}
		for _, n := range tb.Notes {
			if strings.Contains(n, "MISMATCH") || strings.Contains(n, "UNEXPECTED") {
				t.Errorf("%s: %s", id, n)
			}
		}
	}
}

// TestCaseStudyExperimentsQuick exercises the simulation-backed experiments
// at reduced scale and checks structural sanity.
func TestCaseStudyExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed experiments")
	}
	x := NewContext(true)
	for _, id := range []string{"F5", "F6", "F7", "F9", "F14"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		tb, err := e.Run(x)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tb.Rows) < 4 {
			t.Errorf("%s produced %d rows, want >= 4 (one per scheduler)", id, len(tb.Rows))
		}
	}
}

// TestAggregateExperimentsQuick exercises the heavy sweeps at reduced scale.
func TestAggregateExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("aggregate experiments")
	}
	x := NewContext(true)
	for _, id := range []string{"T3", "F8", "F10", "T4", "F11", "F12", "F13", "X1", "X4", "X5", "X6"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		tb, err := e.Run(x)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tb.Rows) == 0 {
			t.Errorf("%s produced no rows", id)
		}
	}
}

func TestMixCountScaling(t *testing.T) {
	full := NewContext(false)
	quick := NewContext(true)
	if full.MixCount(100) != 100 {
		t.Error("full context must not scale down")
	}
	if got := quick.MixCount(100); got != 12 {
		t.Errorf("quick MixCount(100) = %d, want 12", got)
	}
	if got := quick.MixCount(8); got != 3 {
		t.Errorf("quick MixCount(8) = %d, want floor 3", got)
	}
}
