package exp

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/memctrl"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Context carries shared experiment state: the simulation scale, the seed,
// and a cache of alone-run baselines (one per benchmark per system shape).
type Context struct {
	// Quick reduces workload counts and simulated cycles for smoke runs
	// and benchmarks; the full experiments use Quick == false.
	Quick bool
	// Seed drives workload construction and trace generation.
	Seed int64
	// Ctx, when non-nil, cancels in-flight experiments: parallel workers
	// stop scheduling new simulations and running simulations abort at
	// their next epoch checkpoint. Nil means no cancellation (and keeps
	// the simulator's zero-overhead no-checkpoint fast path).
	Ctx context.Context
	// Parallelism bounds the worker goroutines of Independent-channel runs
	// (the X8 channel-organization experiment): 0 = GOMAXPROCS, 1 =
	// sequential. Results are byte-identical either way.
	Parallelism int

	mu    sync.Mutex
	alone map[aloneKey]metrics.ThreadOutcome
}

type aloneKey struct {
	bench    string
	channels int
}

// NewContext returns a Context with the given fidelity.
func NewContext(quick bool) *Context {
	return &Context{Quick: quick, Seed: 1, alone: make(map[aloneKey]metrics.ThreadOutcome)}
}

// Config returns the simulation configuration for a system with the given
// core count at the context's fidelity.
func (x *Context) Config(cores int) sim.Config {
	cfg := sim.DefaultConfig(cores)
	cfg.Seed = x.Seed
	cfg.Context = x.Ctx
	cfg.Parallelism = x.Parallelism
	if x.Quick {
		cfg.WarmupCPUCycles = 50_000
		cfg.MeasureCPUCycles = 500_000
	}
	return cfg
}

// ctx returns the context experiments run under, defaulting to Background.
func (x *Context) ctx() context.Context {
	if x.Ctx != nil {
		return x.Ctx
	}
	return context.Background()
}

// MixCount scales a workload-count to the context's fidelity.
func (x *Context) MixCount(full int) int {
	if !x.Quick {
		return full
	}
	n := full / 8
	if n < 3 {
		n = 3
	}
	return n
}

// Alone returns the cached alone-run baseline for the benchmark on the
// given system shape.
func (x *Context) Alone(cfg sim.Config, p workload.Profile) (metrics.ThreadOutcome, error) {
	key := aloneKey{bench: p.Name, channels: cfg.Geometry.Channels}
	x.mu.Lock()
	out, ok := x.alone[key]
	x.mu.Unlock()
	if ok {
		return out, nil
	}
	out, err := sim.RunAlone(cfg, p)
	if err != nil {
		return out, err
	}
	x.mu.Lock()
	x.alone[key] = out
	x.mu.Unlock()
	return out, nil
}

// MixResult is one shared run reduced to the paper's metrics.
type MixResult struct {
	Mix       workload.Mix
	Policy    string
	Cs        []metrics.Comparison
	Raw       sim.Result
	Unfair    float64
	WSpeedup  float64
	HSpeedup  float64
	AvgAST    float64
	WCLatency int64
}

// RunMix simulates the mix under the policy and joins it with the cached
// alone baselines.
func (x *Context) RunMix(cfg sim.Config, mix workload.Mix, policy memctrl.Policy) (MixResult, error) {
	res, err := sim.Run(cfg, mix, policy)
	if err != nil {
		return MixResult{}, fmt.Errorf("mix %s: %w", mix.Name, err)
	}
	cs := make([]metrics.Comparison, len(res.Threads))
	for i, th := range res.Threads {
		alone, err := x.Alone(cfg, mix.Benchmarks[i])
		if err != nil {
			return MixResult{}, err
		}
		cs[i] = metrics.Comparison{Alone: alone, Shared: th}
	}
	return MixResult{
		Mix:       mix,
		Policy:    res.Policy,
		Cs:        cs,
		Raw:       res,
		Unfair:    metrics.Unfairness(cs),
		WSpeedup:  metrics.WeightedSpeedup(cs),
		HSpeedup:  metrics.HmeanSpeedup(cs),
		AvgAST:    metrics.AvgASTPerReq(cs),
		WCLatency: metrics.WorstCaseLatency(cs, cfg.CPUCyclesPerDRAM),
	}, nil
}

// parallelFor runs fn(i) for i in [0,n) on up to GOMAXPROCS workers and
// returns the first error. Workers pull the next index under a lock and
// check ctx before each pull, so cancellation stops scheduling new indexes
// (in-flight fn calls finish; simulations observe the same ctx through
// sim.Config.Context and abort at their next checkpoint). internal/serve's
// worker pool reuses this pull-under-lock shape for its job queue.
func parallelFor(ctx context.Context, n int, fn func(i int) error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		next int
		err  error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if err != nil || next >= n || ctx.Err() != nil {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()
				if e := fn(i); e != nil {
					mu.Lock()
					if err == nil {
						err = e
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	if err == nil {
		err = ctx.Err()
	}
	return err
}

// prepareAlone pre-computes alone baselines for every benchmark in the
// mixes, in parallel, so subsequent RunMix calls hit the cache. ctx
// cancellation stops scheduling new baseline runs.
func (x *Context) prepareAlone(ctx context.Context, cfg sim.Config, mixes []workload.Mix) error {
	seen := map[string]workload.Profile{}
	for _, m := range mixes {
		for _, p := range m.Benchmarks {
			seen[p.Name] = p
		}
	}
	ps := make([]workload.Profile, 0, len(seen))
	for _, p := range seen {
		ps = append(ps, p)
	}
	return parallelFor(ctx, len(ps), func(i int) error {
		_, err := x.Alone(cfg, ps[i])
		return err
	})
}
