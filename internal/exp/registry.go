package exp

import (
	"fmt"
	"sort"
)

// Experiment regenerates one of the paper's tables or figures.
type Experiment struct {
	// ID is the artifact identifier: F<figure> or T<table>.
	ID string
	// Title says what the artifact shows.
	Title string
	// Run produces the reproduction.
	Run func(x *Context) (*Table, error)
}

// registry holds all experiments in presentation order.
var registry []Experiment

func register(e Experiment) {
	registry = append(registry, e)
}

// All returns every registered experiment in the paper's order.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	sort.SliceStable(out, func(i, j int) bool { return orderKey(out[i].ID) < orderKey(out[j].ID) })
	return out
}

// orderKey sorts T1..T4 with figures interleaved in paper order.
func orderKey(id string) int {
	order := map[string]int{
		"F1": 1, "F2": 2, "T2": 3, "T3": 4, "F3": 5, "T1": 6,
		"F5": 10, "F6": 11, "F7": 12, "F8": 13, "F9": 14, "F10": 15,
		"T4": 16, "F11": 17, "F12": 18, "F13": 19, "F14": 20,
	}
	if k, ok := order[id]; ok {
		return k
	}
	return 100
}

// ByID returns the experiment with the given identifier.
func ByID(id string) (Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("exp: unknown experiment %q", id)
}

// IDs lists all experiment identifiers in order.
func IDs() []string {
	all := All()
	ids := make([]string, len(all))
	for i, e := range all {
		ids[i] = e.ID
	}
	return ids
}
