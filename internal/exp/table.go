// Package exp contains one registered experiment per table and figure of
// the paper's evaluation (Figures 1-3 and 5-14, Tables 1-4), each of which
// regenerates the corresponding artifact as a text table. The cmd/experiments
// binary runs them; bench_test.go exposes each as a testing.B benchmark.
package exp

import (
	"encoding/json"
	"fmt"
	"strings"
)

// TableSchema identifies the JSON artifact format for experiment tables.
const TableSchema = "parbs.exp/v1"

// Table is a rendered experiment result.
type Table struct {
	// ID is the experiment identifier ("F5", "T4", ...).
	ID string
	// Title describes the artifact being reproduced.
	Title string
	// Header names the columns.
	Header []string
	// Rows hold the data, one slice per row.
	Rows [][]string
	// Notes carry caveats and paper-vs-measured commentary.
	Notes []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a note line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			if i == 0 {
				b.WriteString(c + strings.Repeat(" ", pad))
			} else {
				b.WriteString(strings.Repeat(" ", pad) + c)
			}
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// tableJSON is the versioned wire form of a Table.
type tableJSON struct {
	Schema string     `json:"schema"`
	ID     string     `json:"id"`
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	Notes  []string   `json:"notes,omitempty"`
}

// JSON renders the table as a versioned machine-readable artifact
// (schema "parbs.exp/v1").
func (t *Table) JSON() ([]byte, error) {
	return json.MarshalIndent(tableJSON{
		Schema: TableSchema,
		ID:     t.ID,
		Title:  t.Title,
		Header: t.Header,
		Rows:   t.Rows,
		Notes:  t.Notes,
	}, "", "  ")
}

// TableFromJSON parses a JSON table artifact, rejecting unknown schemas.
func TableFromJSON(data []byte) (*Table, error) {
	var tj tableJSON
	if err := json.Unmarshal(data, &tj); err != nil {
		return nil, fmt.Errorf("exp: parse table artifact: %w", err)
	}
	if tj.Schema != TableSchema {
		return nil, fmt.Errorf("exp: unsupported table schema %q (want %q)", tj.Schema, TableSchema)
	}
	return &Table{ID: tj.ID, Title: tj.Title, Header: tj.Header, Rows: tj.Rows, Notes: tj.Notes}, nil
}

// f2 formats a float with two decimals; f3 with three.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func d(v int64) string    { return fmt.Sprintf("%d", v) }
