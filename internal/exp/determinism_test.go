package exp

import (
	"bytes"
	"runtime"
	"testing"
)

// TestArtifactsDeterministicAcrossGOMAXPROCS: the JSON artifacts behind
// cmd/experiments -quick -json must be byte-identical whether the worker
// pool runs serially or 8-wide — parallelFor changes wall-clock, never
// results. F5 fans out across schedulers and T3 across mixes, so both
// exercise the pool with work that would expose ordering or shared-state
// leaks between indexes.
func TestArtifactsDeterministicAcrossGOMAXPROCS(t *testing.T) {
	if testing.Short() {
		t.Skip("runs quick-fidelity simulations")
	}
	run := func(procs int, id string) []byte {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		tb, err := e.Run(NewContext(true))
		if err != nil {
			t.Fatalf("%s at GOMAXPROCS=%d: %v", id, procs, err)
		}
		data, err := tb.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	for _, id := range []string{"F5", "T3"} {
		serial := run(1, id)
		wide := run(8, id)
		if !bytes.Equal(serial, wide) {
			t.Errorf("%s artifact differs between GOMAXPROCS=1 and 8:\n serial: %s\n   wide: %s",
				id, serial, wide)
		}
	}
}
