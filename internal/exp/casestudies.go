package exp

import (
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// This file reproduces the 4-core case studies of Section 8.1: Figure 5
// (memory-intensive mix), Figure 6 (non-intensive mix) and Figure 7 (four
// copies of lbm).

func init() {
	register(Experiment{ID: "F5", Title: "Case Study I: memory-intensive workload", Run: runF5})
	register(Experiment{ID: "F6", Title: "Case Study II: non-intensive workload", Run: runF6})
	register(Experiment{ID: "F7", Title: "Case Study III: four copies of lbm", Run: runF7})
}

// caseStudyTable runs the mix under all five schedulers and tabulates
// per-thread memory slowdowns, unfairness and system throughput.
func caseStudyTable(x *Context, id, title string, mix workload.Mix) (*Table, error) {
	cfg := x.Config(len(mix.Benchmarks))
	if err := x.prepareAlone(x.ctx(), cfg, []workload.Mix{mix}); err != nil {
		return nil, err
	}
	header := []string{"scheduler"}
	for _, p := range mix.Benchmarks {
		header = append(header, p.Name)
	}
	header = append(header, "unfairness", "Wspeedup", "Hspeedup", "AST/req", "WC lat")
	t := &Table{ID: id, Title: title, Header: header}

	names := sched.Names()
	results := make([]MixResult, len(names))
	err := parallelFor(x.ctx(), len(names), func(i int) error {
		pol, err := sched.ByName(names[i])
		if err != nil {
			return err
		}
		r, err := x.RunMix(cfg, mix, pol)
		if err != nil {
			return err
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, r := range results {
		row := []string{r.Policy}
		for _, c := range r.Cs {
			row = append(row, f2(c.MemSlowdown()))
		}
		row = append(row, f2(r.Unfair), f3(r.WSpeedup), f3(r.HSpeedup), f1(r.AvgAST), d(r.WCLatency))
		t.AddRow(row...)
	}
	return t, nil
}

func runF5(x *Context) (*Table, error) {
	t, err := caseStudyTable(x, "F5", "Memory slowdowns and throughput, CSI (libquantum+mcf+GemsFDTD+xalancbmk)", workload.CaseStudyI())
	if err != nil {
		return nil, err
	}
	t.AddNote("paper: unfairness 5.26 (FR-FCFS) / 1.72 (FCFS) / 1.71 (NFQ) / 1.42 (STFM) / 1.07 (PAR-BS); PAR-BS best fairness and throughput")
	return t, nil
}

func runF6(x *Context) (*Table, error) {
	t, err := caseStudyTable(x, "F6", "Memory slowdowns and throughput, CSII (matlab+h264ref+omnetpp+hmmer)", workload.CaseStudyII())
	if err != nil {
		return nil, err
	}
	t.AddNote("paper: unfairness 3.90 / 1.47 / 1.87 / 1.30 / 1.19; only PAR-BS avoids penalizing high-BLP omnetpp")
	return t, nil
}

func runF7(x *Context) (*Table, error) {
	mix := workload.CaseStudyIII()
	t, err := caseStudyTable(x, "F7", "Four copies of lbm: fairness trivial, throughput differs", mix)
	if err != nil {
		return nil, err
	}
	// Row-buffer hit rate per scheduler: the paper reports NFQ destroying
	// lbm's locality (61% -> 31%).
	cfg := x.Config(4)
	hit := &Table{ID: "F7b", Title: "system row-hit rate per scheduler (4x lbm)"}
	_ = hit
	rates := []string{"row-hit rate"}
	for _, name := range sched.Names() {
		pol, err := sched.ByName(name)
		if err != nil {
			return nil, err
		}
		res, err := sim.Run(cfg, mix, pol)
		if err != nil {
			return nil, err
		}
		rates = append(rates, f3(res.DRAM.RowHitRate()))
	}
	t.AddNote("device row-hit rate by scheduler (%v): %v", sched.Names(), rates[1:])
	t.AddNote("paper: all schedulers fair (unfairness 1.00); NFQ loses the most locality and throughput; PAR-BS best throughput")
	return t, nil
}
