package exp

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/sched"
	"repro/internal/workload"
)

func TestParallelForRunsAll(t *testing.T) {
	var n int64
	if err := parallelFor(context.Background(), 100, func(i int) error {
		atomic.AddInt64(&n, 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Errorf("ran %d of 100", n)
	}
	if err := parallelFor(context.Background(), 0, func(int) error { return nil }); err != nil {
		t.Errorf("empty parallelFor errored: %v", err)
	}
}

func TestParallelForPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	err := parallelFor(context.Background(), 50, func(i int) error {
		if i == 7 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("got %v, want boom", err)
	}
}

// TestParallelForPreCanceled: a canceled context schedules no work at all
// and reports the context's error.
func TestParallelForPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var n int64
	err := parallelFor(ctx, 100, func(i int) error {
		atomic.AddInt64(&n, 1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("got %v, want context.Canceled", err)
	}
	if n != 0 {
		t.Errorf("canceled parallelFor still ran %d indexes", n)
	}
}

// TestParallelForCancellationStopsScheduling: canceling mid-flight lets
// in-flight calls finish but stops new indexes from being scheduled — at
// most one extra index per worker can slip in between the cancel and the
// workers' next pull.
func TestParallelForCancellationStopsScheduling(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const n = 100_000
	var ran int64
	err := parallelFor(ctx, n, func(i int) error {
		if atomic.AddInt64(&ran, 1) == 1 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("got %v, want context.Canceled", err)
	}
	// Every worker may have had one index in flight when cancel hit, and the
	// canceling call itself counts; anything near n means cancel was ignored.
	if limit := int64(2 * (runtime.GOMAXPROCS(0) + 1)); ran > limit {
		t.Errorf("ran %d of %d indexes after cancellation (limit %d)", ran, n, limit)
	}
}

func TestAloneCacheHitsByChannelShape(t *testing.T) {
	x := NewContext(true)
	cfg := x.Config(4)
	p := workload.MustByName("gromacs")
	first, err := x.Alone(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	again, err := x.Alone(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if first.CPU != again.CPU {
		t.Error("cache returned a different outcome")
	}
	// Different channel shape must be a separate cache entry.
	cfg8 := x.Config(8)
	other, err := x.Alone(cfg8, p)
	if err != nil {
		t.Fatal(err)
	}
	if other.CPU == first.CPU {
		t.Error("8-core (2-channel) baseline identical to 1-channel; cache key too coarse")
	}
}

func TestRunMixReportsPolicyError(t *testing.T) {
	x := NewContext(true)
	cfg := x.Config(4)
	cfg.Cores = 3 // mismatch vs 4-benchmark mix
	_, err := x.RunMix(cfg, workload.CaseStudyI(), sched.NewFCFS())
	if err == nil {
		t.Error("mismatched mix accepted")
	}
}

func TestContextConfigFidelity(t *testing.T) {
	quick := NewContext(true).Config(4)
	full := NewContext(false).Config(4)
	if quick.MeasureCPUCycles >= full.MeasureCPUCycles {
		t.Error("quick context must simulate fewer cycles")
	}
	if quick.Cores != 4 || full.Cores != 4 {
		t.Error("core count must be preserved")
	}
}
