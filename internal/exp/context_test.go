package exp

import (
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/sched"
	"repro/internal/workload"
)

func TestParallelForRunsAll(t *testing.T) {
	var n int64
	if err := parallelFor(100, func(i int) error {
		atomic.AddInt64(&n, 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Errorf("ran %d of 100", n)
	}
	if err := parallelFor(0, func(int) error { return nil }); err != nil {
		t.Errorf("empty parallelFor errored: %v", err)
	}
}

func TestParallelForPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	err := parallelFor(50, func(i int) error {
		if i == 7 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("got %v, want boom", err)
	}
}

func TestAloneCacheHitsByChannelShape(t *testing.T) {
	x := NewContext(true)
	cfg := x.Config(4)
	p := workload.MustByName("gromacs")
	first, err := x.Alone(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	again, err := x.Alone(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if first.CPU != again.CPU {
		t.Error("cache returned a different outcome")
	}
	// Different channel shape must be a separate cache entry.
	cfg8 := x.Config(8)
	other, err := x.Alone(cfg8, p)
	if err != nil {
		t.Fatal(err)
	}
	if other.CPU == first.CPU {
		t.Error("8-core (2-channel) baseline identical to 1-channel; cache key too coarse")
	}
}

func TestRunMixReportsPolicyError(t *testing.T) {
	x := NewContext(true)
	cfg := x.Config(4)
	cfg.Cores = 3 // mismatch vs 4-benchmark mix
	_, err := x.RunMix(cfg, workload.CaseStudyI(), sched.NewFCFS())
	if err == nil {
		t.Error("mismatched mix accepted")
	}
}

func TestContextConfigFidelity(t *testing.T) {
	quick := NewContext(true).Config(4)
	full := NewContext(false).Config(4)
	if quick.MeasureCPUCycles >= full.MeasureCPUCycles {
		t.Error("quick context must simulate fewer cycles")
	}
	if quick.Cores != 4 || full.Cores != 4 {
		t.Error("core count must be preserved")
	}
}
