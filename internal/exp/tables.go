package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/workload"
)

// This file reproduces the paper's Tables 1-3: the hardware cost inventory,
// the baseline configuration, and the benchmark characterization.

func init() {
	register(Experiment{ID: "T1", Title: "PAR-BS hardware state beyond FR-FCFS (exact)", Run: runT1})
	register(Experiment{ID: "T2", Title: "Baseline CMP and memory system configuration", Run: runT2})
	register(Experiment{ID: "T3", Title: "Benchmark characteristics: measured vs paper", Run: runT3})
}

func runT1(x *Context) (*Table, error) {
	const (
		threads = 8
		entries = 128
		banks   = 8
	)
	t := &Table{
		ID: "T1", Title: "Additional state for an 8-core CMP, 128-entry buffer, 8 banks",
		Header: []string{"register", "bits each", "count", "total bits"},
	}
	rows := []struct {
		name  string
		each  int
		count int
	}{
		{"Marked (per request)", 1, entries},
		{"Priority thread-rank field (per request)", 3, entries},
		{"Thread-ID (per request)", 3, entries},
		{"ReqsInBankPerThread", 7, threads * banks},
		{"ReqsPerThread", 7, threads},
		{"TotalMarkedRequests", 7, 1},
		{"Marking-Cap", 5, 1},
	}
	total := 0
	for _, r := range rows {
		t.AddRow(r.name, d(int64(r.each)), d(int64(r.count)), d(int64(r.each*r.count)))
		total += r.each * r.count
	}
	got := core.StateBits(threads, entries, banks)
	t.AddRow("TOTAL", "", "", d(int64(total)))
	t.AddNote("StateBits(%d,%d,%d) = %d bits; paper reports 1412", threads, entries, banks, got)
	if got != 1412 || total != 1412 {
		t.AddNote("MISMATCH: expected exactly 1412 bits")
	}
	return t, nil
}

func runT2(x *Context) (*Table, error) {
	cfg := x.Config(4)
	tm := cfg.Timing
	t := &Table{
		ID: "T2", Title: "Baseline configuration vs paper Table 2",
		Header: []string{"parameter", "ours", "paper"},
	}
	ns := func(cycles int64) string { return fmt.Sprintf("%.1f ns", float64(cycles)*2.5) }
	t.AddRow("cores : channels", fmt.Sprintf("%d : %d", cfg.Cores, cfg.Geometry.Channels), "4:1, 8:2, 16:4")
	t.AddRow("request buffer", d(int64(cfg.Ctrl.ReadBufEntries)), "128")
	t.AddRow("write buffer", d(int64(cfg.Ctrl.WriteBufEntries)), "64")
	t.AddRow("instruction window", d(int64(cfg.Core.WindowSize)), "128")
	t.AddRow("commit width", d(int64(cfg.Core.CommitWidth)), "3")
	t.AddRow("MSHRs", d(int64(cfg.Core.MSHRs)), "32")
	t.AddRow("banks", d(int64(cfg.Geometry.Banks)), "8")
	t.AddRow("row size", d(cfg.Geometry.RowBytes), "2048")
	t.AddRow("tCL", ns(tm.TCL), "15 ns")
	t.AddRow("tRCD", ns(tm.TRCD), "15 ns")
	t.AddRow("tRP", ns(tm.TRP), "15 ns")
	t.AddRow("BL/2", ns(tm.TBurst), "10 ns")
	// Uncontended round trip: command-to-data (tCL + burst) plus the
	// L2-path overhead, with tRCD/tRP prepended for closed/conflict rows.
	data := tm.TCL + tm.TBurst
	hit := data*cfg.CPUCyclesPerDRAM + cfg.CompletionOverheadCPU
	closed := (tm.TRCD+data)*cfg.CPUCyclesPerDRAM + cfg.CompletionOverheadCPU
	conflict := (tm.TRP+tm.TRCD+data)*cfg.CPUCyclesPerDRAM + cfg.CompletionOverheadCPU
	t.AddRow("round-trip row hit", fmt.Sprintf("%d cyc", hit), "160 cyc (40 ns)")
	t.AddRow("round-trip closed", fmt.Sprintf("%d cyc", closed), "240 cyc (60 ns)")
	t.AddRow("round-trip conflict", fmt.Sprintf("%d cyc", conflict), "320 cyc (80 ns)")
	return t, nil
}

func runT3(x *Context) (*Table, error) {
	cfg := x.Config(4)
	bs := workload.Benchmarks()
	t := &Table{
		ID: "T3", Title: "Alone-run characterization on the baseline 4-core memory system",
		Header: []string{"benchmark", "cat", "MPKI", "(paper)", "RBhit", "(paper)", "BLP", "(paper)", "MCPI", "(paper)", "AST/req", "(paper)"},
	}
	rows := make([][]string, len(bs))
	err := parallelFor(x.ctx(), len(bs), func(i int) error {
		p := bs[i]
		out, err := x.Alone(cfg, p)
		if err != nil {
			return err
		}
		rows[i] = []string{
			p.Name, d(int64(p.Category)),
			f2(out.CPU.MPKI()), f2(p.MPKI),
			f3(out.Mem.RowHitRate()), f3(p.RowHit),
			f2(out.Mem.BLP()), f2(p.BLP),
			f2(out.CPU.MCPI()), f2(p.MCPI),
			f1(out.CPU.ASTPerReq()), f1(p.ASTPerReq),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	t.AddNote("targets are the paper's Table 3; MPKI/RBhit/BLP are generation targets, MCPI and AST/req emerge from our memory system")
	return t, nil
}
