package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/memctrl"
	"repro/internal/sched"
	"repro/internal/workload"
)

// This file reproduces Figure 14: system-level thread priority support —
// weighted lbm copies (left) and purely opportunistic service (right).

func init() {
	register(Experiment{ID: "F14", Title: "Thread priorities and opportunistic service", Run: runF14})
}

func runF14(x *Context) (*Table, error) {
	t := &Table{
		ID: "F14", Title: "Thread priority support: slowdowns per thread",
		Header: []string{"scenario", "scheduler", "t0", "t1", "t2", "t3"},
	}

	// Left: four copies of lbm with NFQ/STFM weights 8-8-4-1 and PAR-BS
	// priorities 1-1-2-8 (priority 1 == weight 8).
	lbm := workload.CaseStudyIII()
	weights := []float64{8, 8, 4, 1}
	prios := []int{1, 1, 2, 8}
	left := []variant{
		{label: "FR-FCFS", make: func() memctrl.Policy { return sched.NewFRFCFS() }},
		{label: "NFQ-shares-8-8-4-1", make: func() memctrl.Policy { return sched.NewNFQWeighted(weights) }},
		{label: "STFM-weights-8-8-4-1", make: func() memctrl.Policy { return sched.NewSTFMWeighted(weights) }},
		{label: "PAR-BS-pri-1-1-2-8", make: func() memctrl.Policy {
			o := core.DefaultOptions()
			o.Priorities = prios
			return sched.NewPARBS(o)
		}},
	}
	if err := prioRows(x, t, "4x lbm weighted", lbm, left); err != nil {
		return nil, err
	}

	// Right: omnetpp is the only important thread; the rest are served
	// opportunistically (PAR-BS level L; NFQ/STFM approximate with weight
	// 8192 vs 1 as in the paper).
	mix, err := workload.MixOf("opportunistic", "libquantum", "milc", "omnetpp", "astar")
	if err != nil {
		return nil, err
	}
	big := []float64{1, 1, 8192, 1}
	right := []variant{
		{label: "FR-FCFS", make: func() memctrl.Policy { return sched.NewFRFCFS() }},
		{label: "NFQ-1-1-8K-1", make: func() memctrl.Policy { return sched.NewNFQWeighted(big) }},
		{label: "STFM-1-1-8K-1", make: func() memctrl.Policy { return sched.NewSTFMWeighted(big) }},
		{label: "PAR-BS-L-L-0-L", make: func() memctrl.Policy {
			o := core.DefaultOptions()
			o.Priorities = []int{core.OpportunisticPriority, core.OpportunisticPriority, 1, core.OpportunisticPriority}
			return sched.NewPARBS(o)
		}},
	}
	if err := prioRows(x, t, "omnetpp high, rest opportunistic", mix, right); err != nil {
		return nil, err
	}
	t.AddNote("paper left: highest-priority lbm slows 2.09 (NFQ) / 2.15 (STFM) / 1.88 (PAR-BS)")
	t.AddNote("paper right: omnetpp slows 1.19 (NFQ) / 1.14 (STFM) / 1.04 (PAR-BS)")
	return t, nil
}

func prioRows(x *Context, t *Table, scenario string, mix workload.Mix, variants []variant) error {
	cfg := x.Config(len(mix.Benchmarks))
	if err := x.prepareAlone(x.ctx(), cfg, []workload.Mix{mix}); err != nil {
		return err
	}
	rows := make([][]string, len(variants))
	err := parallelFor(x.ctx(), len(variants), func(i int) error {
		r, err := x.RunMix(cfg, mix, variants[i].make())
		if err != nil {
			return err
		}
		row := []string{scenario, variants[i].label}
		for _, c := range r.Cs {
			row = append(row, fmt.Sprintf("%.2f", c.MemSlowdown()))
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return err
	}
	t.Rows = append(t.Rows, rows...)
	return nil
}
