package exp

import (
	"repro/internal/memctrl"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Second batch of extension experiments: channel organization and the
// hard-QoS / capped baselines from the paper's related-work section.

func init() {
	register(Experiment{ID: "X8", Title: "[extension] Lock-step (ganged) vs independent channels", Run: runX8})
	register(Experiment{ID: "X9", Title: "[extension] Hard-QoS and capped baselines vs PAR-BS", Run: runX9})
}

// runX8 compares the paper's lock-step channel organization against fully
// independent per-channel controllers at equal aggregate bandwidth, on the
// 8-core workload (2 channels).
func runX8(x *Context) (*Table, error) {
	mix := workload.Figure9Workload()
	cfg := x.Config(8)
	if err := x.prepareAlone(x.ctx(), cfg, []workload.Mix{mix}); err != nil {
		return nil, err
	}
	t := &Table{ID: "X8", Title: "8-core mixed workload: channel organization",
		Header: []string{"organization", "scheduler", "unfairness", "Wspeedup", "Hspeedup", "WC lat"}}
	for _, name := range []string{"FR-FCFS", "PAR-BS"} {
		pol, err := sched.ByName(name)
		if err != nil {
			return nil, err
		}
		r, err := x.RunMix(cfg, mix, pol)
		if err != nil {
			return nil, err
		}
		t.AddRow("lock-step", name, f2(r.Unfair), f3(r.WSpeedup), f3(r.HSpeedup), d(r.WCLatency))
	}
	for _, name := range []string{"FR-FCFS", "PAR-BS"} {
		name := name
		res, err := sim.RunIndependent(cfg, mix, func() memctrl.Policy {
			p, err := sched.ByName(name)
			if err != nil {
				panic(err)
			}
			return p
		})
		if err != nil {
			return nil, err
		}
		cs := make([]metrics.Comparison, len(res.Threads))
		for i, th := range res.Threads {
			alone, err := x.Alone(cfg, mix.Benchmarks[i])
			if err != nil {
				return nil, err
			}
			cs[i] = metrics.Comparison{Alone: alone, Shared: th}
		}
		t.AddRow("independent", name,
			f2(metrics.Unfairness(cs)),
			f3(metrics.WeightedSpeedup(cs)),
			f3(metrics.HmeanSpeedup(cs)),
			d(metrics.WorstCaseLatency(cs, cfg.CPUCyclesPerDRAM)))
	}
	t.AddNote("alone baselines use the lock-step organization in both cases, so rows compare shared-mode behavior at equal bandwidth")
	t.AddNote("independent channels split the scheduler's view: PAR-BS batches per channel, slightly weakening cross-bank ranking but also halving per-controller load")
	return t, nil
}

// runX9 places the hard-partitioning and streak-capped baselines on the
// fairness/throughput map next to the paper's schedulers.
func runX9(x *Context) (*Table, error) {
	variants := []variant{
		{label: "FR-FCFS", make: func() memctrl.Policy { return sched.NewFRFCFS() }},
		{label: "FR-FCFS+Cap(4)", make: func() memctrl.Policy { return sched.NewFRFCFSCap(4) }},
		{label: "TDM(64)", make: func() memctrl.Policy { return sched.NewTDM(64) }},
		{label: "TDM-strict(64)", make: func() memctrl.Policy { return sched.NewStrictTDM(64) }},
		{label: "PAR-BS", make: func() memctrl.Policy { return sched.NewPARBSDefault() }},
	}
	t, err := sweepSet(x, 4, sweepMixes(x), variants)
	if err != nil {
		return nil, err
	}
	t.ID, t.Title = "X9", "Hard-QoS (TDM) and capped (FR-FCFS+Cap) baselines vs PAR-BS"
	if err := caseSlowdowns(x, t, workload.CaseStudyI(), variants); err != nil {
		return nil, err
	}
	t.AddNote("the paper's Section 9 notes hard real-time controllers trade unacceptable throughput for guarantees; strict TDM shows that cost, while PAR-BS reaches similar fairness without it")
	return t, nil
}
