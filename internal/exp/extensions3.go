package exp

import (
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Third batch of extension experiments: controller page policy and
// address-mapping trade-offs.

func init() {
	register(Experiment{ID: "X10", Title: "[extension] Open-page vs closed-page row policy", Run: runX10})
	register(Experiment{ID: "X11", Title: "[extension] Row-interleaved vs line-interleaved address mapping", Run: runX11})
}

// runX10 contrasts the baseline open-page policy (rows stay open, row-hit
// scheduling exploits them) against closed-page (every access
// auto-precharges unless a queued request wants the row).
func runX10(x *Context) (*Table, error) {
	mix := workload.CaseStudyI()
	t := &Table{ID: "X10", Title: "CSI under open-page vs closed-page controllers",
		Header: []string{"page policy", "scheduler", "unfairness", "Wspeedup", "Hspeedup", "row-hit rate"}}
	for _, closed := range []bool{false, true} {
		sub := NewContext(x.Quick)
		sub.Seed = x.Seed
		cfg := sub.Config(4)
		cfg.Ctrl.ClosedPage = closed
		label := "open-page"
		if closed {
			label = "closed-page"
		}
		for _, p := range mix.Benchmarks {
			if _, err := sub.Alone(cfg, p); err != nil {
				return nil, err
			}
		}
		for _, name := range []string{"FR-FCFS", "PAR-BS"} {
			pol, err := sched.ByName(name)
			if err != nil {
				return nil, err
			}
			r, err := sub.RunMix(cfg, mix, pol)
			if err != nil {
				return nil, err
			}
			t.AddRow(label, name, f2(r.Unfair), f3(r.WSpeedup), f3(r.HSpeedup), f3(r.Raw.DRAM.RowHitRate()))
		}
	}
	t.AddNote("closed page trades the streamers' row hits for faster conflicts; it also blunts FR-FCFS's bank-capture unfairness — batching gets the same effect without losing the hits")
	return t, nil
}

// runX11 demonstrates the mapping trade-off with a recorded trace: lbm is
// recorded under the baseline row-interleaved layout, then the same
// address stream is replayed on a line-interleaved device, which turns its
// sequential rows into bank-alternating accesses.
func runX11(x *Context) (*Table, error) {
	base := x.Config(1)
	base.Geometry.Channels = 1
	items := workload.RecordTrace(workload.MustByName("lbm"), 0, base.Geometry, x.Seed, 80_000)

	t := &Table{ID: "X11", Title: "lbm's recorded address stream under two address mappings (alone)",
		Header: []string{"mapping", "row-hit rate", "BLP", "MCPI", "AST/req"}}
	for _, lineIl := range []bool{false, true} {
		cfg := base
		cfg.Geometry.LineInterleaved = lineIl
		label := "row-interleaved (baseline)"
		if lineIl {
			label = "line-interleaved"
		}
		replay := workload.TraceProfile("lbm-replay", items, cfg.Geometry, true)
		out, err := sim.RunAlone(cfg, replay)
		if err != nil {
			return nil, err
		}
		t.AddRow(label, f3(out.Mem.RowHitRate()), f2(out.Mem.BLP()), f2(out.CPU.MCPI()), f1(out.CPU.ASTPerReq()))
	}
	t.AddNote("line interleaving converts row locality into bank spread: hits drop, BLP rises — whether that wins depends on whether the scheduler can use the parallelism")
	return t, nil
}
