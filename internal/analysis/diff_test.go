package analysis

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/dram"
	"repro/internal/trace"
)

// fixtureLogB is the fixture run with the roles flipped enough to produce
// visible deltas: thread 1's read is serviced much sooner, and an extra
// bank-0 command shifts the occupancy.
func fixtureLogB() *trace.Log {
	tr := trace.NewTracer(trace.Config{})
	tr.Bind(trace.Meta{Policy: "FR-FCFS", Workload: "synthetic", Cores: 2, Banks: 2,
		ReadBufEntries: 64, TotalDRAM: 1000})
	tr.RequestArrived(1, 0, 0, 3, false, 0)
	tr.RequestArrived(2, 1, 1, 9, false, 80)
	tr.CommandIssued(1, 0, dram.CmdActivate, 0, 3, 0, 150)
	tr.CommandIssued(1, 0, dram.CmdRead, 0, 3, 0, 160)
	tr.RequestCompleted(1, 0, 250, 250)
	tr.CommandIssued(2, 1, dram.CmdActivate, 1, 9, -1, 120)
	tr.RequestCompleted(2, 1, 180, 100)
	return tr.Log()
}

func TestDiffAlignmentAndDeltas(t *testing.T) {
	a := FromLog(fixtureLog())  // PAR-BS fixture: 1 batch, t1 waits long
	b := FromLog(fixtureLogB()) // FR-FCFS fixture: no batches, t1 fast

	d := Diff(a, b, Options{WindowCycles: 100})
	if d.Schema != DiffSchema {
		t.Fatalf("schema = %q", d.Schema)
	}
	if len(d.Mismatches) != 0 {
		t.Fatalf("same-config arms reported mismatches: %v", d.Mismatches)
	}
	if d.WindowCycles != 100 || len(d.Windows) != 10 {
		t.Fatalf("windows = %d x %d, want 10 x 100", len(d.Windows), d.WindowCycles)
	}

	// Thread deltas: t1's wait drops from 700 (400 queued + 300 in-flight)
	// to 40 ([80,120) before its first command).
	t1 := d.Threads[1]
	if t1.A.Wait != 700 || t1.B.Wait != 40 || t1.DWait != -660 {
		t.Errorf("t1 wait delta: A=%d B=%d D=%d, want 700/40/-660", t1.A.Wait, t1.B.Wait, t1.DWait)
	}
	// t0 is identical in both runs except the marked split: A marks
	// [50,150), B has no marking so the same 150 cycles are all unmarked.
	t0 := d.Threads[0]
	if t0.DWait != 0 || t0.DMarked != -100 || t0.DUnmarked != 100 {
		t.Errorf("t0 deltas: DWait=%d DMarked=%d DUnmarked=%d, want 0/-100/100",
			t0.DWait, t0.DMarked, t0.DUnmarked)
	}

	// Bank deltas: bank 1's wait collapses with t1's.
	if d.Banks[1].DWait != -660 {
		t.Errorf("bank 1 DWait = %d, want -660", d.Banks[1].DWait)
	}

	// Batch summary: one batch in A, none in B.
	if d.Batches.BatchesA != 1 || d.Batches.BatchesB != 0 || d.Batches.MaxSpanA != 200 {
		t.Errorf("batches = %+v, want A 1 (max span 200), B 0", d.Batches)
	}

	// Window deltas: window 1 gains B's bank-1 command ([120) vs [480)).
	w1 := d.Windows[1]
	if w1.DCommands != 1 {
		t.Errorf("window 1 DCommands = %d, want +1", w1.DCommands)
	}
	w4 := d.Windows[4]
	if w4.DCommands != -1 {
		t.Errorf("window 4 DCommands = %d, want -1 (A's cmd at 480 gone)", w4.DCommands)
	}

	// Unfairness proxy: A's p50 latencies are 250 (t0) and 450 (t1) → 1.8;
	// B's are 250 and 100 → 2.5.
	if d.UnfairnessA < 1.79 || d.UnfairnessA > 1.81 {
		t.Errorf("unfairness A = %v, want 1.8", d.UnfairnessA)
	}
	if d.UnfairnessB < 2.49 || d.UnfairnessB > 2.51 {
		t.Errorf("unfairness B = %v, want 2.5", d.UnfairnessB)
	}

	var buf bytes.Buffer
	if err := d.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"A=PAR-BS", "B=FR-FCFS", "deltas are B−A", "unfairness"} {
		if !strings.Contains(out, want) {
			t.Errorf("diff text missing %q:\n%s", want, out)
		}
	}
}

// TestDiffMismatchedConfigs: differing shapes are diffed with zero-padding
// and every config divergence is recorded.
func TestDiffMismatchedConfigs(t *testing.T) {
	a := FromLog(fixtureLog())
	big := fixtureLogB()
	big.Meta.Cores = 4
	big.Meta.Banks = 4
	big.Meta.Workload = "other"
	b := FromLog(big)

	d := Diff(a, b, Options{})
	if len(d.Mismatches) == 0 {
		t.Fatal("mismatched configs reported no mismatches")
	}
	joined := strings.Join(d.Mismatches, "; ")
	for _, want := range []string{"cores", "banks", "workload"} {
		if !strings.Contains(joined, want) {
			t.Errorf("mismatches missing %q: %v", want, d.Mismatches)
		}
	}
	// Zero-padded alignment: 4 threads and 4 banks, the extra rows diffing
	// against zeros.
	if len(d.Threads) != 4 || len(d.Banks) != 4 {
		t.Fatalf("aligned %d threads / %d banks, want 4/4", len(d.Threads), len(d.Banks))
	}
	if d.Threads[3].A.Wait != 0 || d.Threads[3].DWait != d.Threads[3].B.Wait {
		t.Errorf("zero-padded thread 3 wrong: %+v", d.Threads[3])
	}
}

// TestDiffDefaultWidthCoversLongerRun: with no width given, the common
// width derives from the longer span so both arms get aligned windows.
func TestDiffDefaultWidthCoversLongerRun(t *testing.T) {
	a := FromLog(fixtureLog()) // span 1000
	longLog := fixtureLogB()
	longLog.Meta.TotalDRAM = 3200 // span 3200
	b := FromLog(longLog)

	d := Diff(a, b, Options{})
	if want := int64(100); d.WindowCycles != want { // ceil(3200/32)
		t.Errorf("derived width = %d, want %d", d.WindowCycles, want)
	}
	if len(d.Windows) != len(d.B.Windows) {
		t.Errorf("aligned windows = %d, want the longer arm's %d", len(d.Windows), len(d.B.Windows))
	}
}
