package analysis

import "sort"

// Exact percentiles. Latency tails are the judging criterion of the
// bandwidth-regulation successor literature, so the columns here are exact
// nearest-rank percentiles over every completed read — never a sketch, and
// never interpolated: P(p) of n sorted samples is sorted[ceil(p/100·n)-1].
// With one sample every percentile is that sample; with none every
// percentile is zero.

// Percentiles holds exact nearest-rank p50/p90/p99 of one sample set, in
// DRAM cycles.
type Percentiles struct {
	P50 int64 `json:"p50"`
	P90 int64 `json:"p90"`
	P99 int64 `json:"p99"`
}

// percentilesOf computes exact nearest-rank percentiles, sorting samples in
// place. Empty input yields the zero value.
func percentilesOf(samples []int64) Percentiles {
	n := len(samples)
	if n == 0 {
		return Percentiles{}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	rank := func(p int64) int64 {
		// ceil(p/100 · n) − 1, computed in integers.
		i := (p*int64(n) + 99) / 100
		return samples[i-1]
	}
	return Percentiles{P50: rank(50), P90: rank(90), P99: rank(99)}
}

// sampleSet accumulates per-entity latency/wait samples during the
// attribution pass: whole-span per thread, per bank, and overall, plus
// per-window splits keyed by the completion window.
type sampleSet struct {
	all        []int64
	thrLat     [][]int64 // [thread] latency (arrival → data return)
	thrWait    [][]int64 // [thread] queued wait (arrival → first command)
	bankLat    [][]int64
	bankWait   [][]int64
	winLat     [][]int64 // [window]
	winThrLat  [][]int64 // [window*threads + thread]
	winBankLat [][]int64 // [window*banks + bank]
	threads    int
	banks      int
}

func newSampleSet(windows, threads, banks int) *sampleSet {
	return &sampleSet{
		thrLat: make([][]int64, threads), thrWait: make([][]int64, threads),
		bankLat: make([][]int64, banks), bankWait: make([][]int64, banks),
		winLat:     make([][]int64, windows),
		winThrLat:  make([][]int64, windows*threads),
		winBankLat: make([][]int64, windows*banks),
		threads:    threads, banks: banks,
	}
}

// add records one completed read: lat is arrival→return, wait is
// arrival→first command (the queued portion), win the completion window.
func (ss *sampleSet) add(thread, bank int32, win int, lat, wait int64) {
	ss.all = append(ss.all, lat)
	ss.thrLat[thread] = append(ss.thrLat[thread], lat)
	ss.thrWait[thread] = append(ss.thrWait[thread], wait)
	ss.bankLat[bank] = append(ss.bankLat[bank], lat)
	ss.bankWait[bank] = append(ss.bankWait[bank], wait)
	ss.winLat[win] = append(ss.winLat[win], lat)
	ss.winThrLat[win*ss.threads+int(thread)] = append(ss.winThrLat[win*ss.threads+int(thread)], lat)
	ss.winBankLat[win*ss.banks+int(bank)] = append(ss.winBankLat[win*ss.banks+int(bank)], lat)
}
