package analysis

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/dram"
	"repro/internal/trace"
)

// fixtureLog records a small two-thread, two-bank run with precisely
// placed phases so window aggregates can be checked against hand-derived
// values.
//
// Timeline (window width 100 in the tests, span [0, 1000)):
//
//	req 1 (t0, bank 0): arrives c0,  marked c50,  first cmd c150, done c250
//	                    → unmarked [0,50) marked [50,150) service [150,250)
//	req 2 (t1, bank 1): arrives c80, never marked, first cmd c480, done c530
//	                    → unmarked [80,480) service [480,530)
//	req 3 (t0, bank 0): a write — queue residency only, no wait attribution
//	req 4 (t1, bank 1): arrives c700, never serviced → in flight, unmarked
//	                    wait [700,1000) attributed to bank 1 / thread 1
func fixtureLog() *trace.Log {
	tr := trace.NewTracer(trace.Config{})
	tr.Bind(trace.Meta{Policy: "PAR-BS", Workload: "synthetic", Cores: 2, Banks: 2,
		MarkingCap: 5, ReadBufEntries: 64, TotalDRAM: 1000})
	tr.RequestArrived(1, 0, 0, 3, false, 0)
	tr.RequestMarked(1, 0, 0, 50)
	tr.BatchFormedDetail(0, 50, 1, []int{1, 0}, 0)
	tr.RequestArrived(2, 1, 1, 9, false, 80)
	tr.CommandIssued(1, 0, dram.CmdActivate, 0, 3, 0, 150)
	tr.CommandIssued(1, 0, dram.CmdRead, 0, 3, 0, 160)
	tr.RequestCompleted(1, 0, 250, 250)
	tr.BatchDrained(0, 250, 200)
	tr.RequestArrived(3, 0, 0, 4, true, 300)
	tr.RequestCompleted(3, 0, 400, 100) // write retires
	tr.CommandIssued(2, 1, dram.CmdActivate, 1, 9, -1, 480)
	tr.RequestCompleted(2, 1, 530, 450)
	tr.RequestArrived(4, 1, 1, 11, false, 700)
	return tr.Log()
}

func TestAnalyzeWindowedDecomposition(t *testing.T) {
	s := FromLog(fixtureLog())
	r := s.Analyze(Options{WindowCycles: 100, TopK: 3})

	if len(r.Windows) != 10 || r.SpanEnd != 1000 || r.WindowCycles != 100 {
		t.Fatalf("windows=%d span=%d width=%d, want 10/1000/100",
			len(r.Windows), r.SpanEnd, r.WindowCycles)
	}
	if r.Requests != 2 || r.InFlight != 1 {
		t.Fatalf("Requests=%d InFlight=%d, want 2/1", r.Requests, r.InFlight)
	}

	// Thread totals: t0 unmarked 50, marked 100, service 100.
	// t1: req 2 unmarked 400 + req 4 unmarked 300 = 700, service 50.
	t0, t1 := r.Threads[0], r.Threads[1]
	if t0.Reads != 1 || t0.Unmarked != 50 || t0.Marked != 100 || t0.Service != 100 || t0.Wait != 150 {
		t.Errorf("thread 0 totals wrong: %+v", t0)
	}
	if t1.Reads != 1 || t1.InFlight != 1 || t1.Unmarked != 700 || t1.Marked != 0 || t1.Service != 50 || t1.Wait != 700 {
		t.Errorf("thread 1 totals wrong: %+v", t1)
	}

	// Window 0 [0,100): t0 unmarked [0,50)=50 + marked [50,100)=50;
	// t1 unmarked [80,100)=20. Commands 0.
	w0 := r.Windows[0]
	if w0.Threads[0].Unmarked != 50 || w0.Threads[0].Marked != 50 || w0.Threads[1].Unmarked != 20 {
		t.Errorf("window 0 threads wrong: %+v", w0.Threads)
	}
	if w0.Arrivals != 2 || w0.BatchesFormed != 1 || w0.Commands != 0 {
		t.Errorf("window 0 counters wrong: %+v", w0)
	}
	// Window 1 [100,200): t0 marked [100,150)=50 + service [150,200)=50;
	// t1 unmarked 100. Two commands on bank 0, both busy cycles.
	w1 := r.Windows[1]
	if w1.Threads[0].Marked != 50 || w1.Threads[0].Service != 50 || w1.Threads[1].Unmarked != 100 {
		t.Errorf("window 1 threads wrong: %+v", w1.Threads)
	}
	if w1.Commands != 2 || w1.BusyCycles != 2 || w1.Banks[0].Commands != 2 {
		t.Errorf("window 1 commands wrong: %+v", w1)
	}
	// Window 1 bank wait: bank 0 gets t0's marked 50; bank 1 t1's 100.
	if w1.Banks[0].Wait != 50 || w1.Banks[1].Wait != 100 {
		t.Errorf("window 1 bank wait = %d/%d, want 50/100", w1.Banks[0].Wait, w1.Banks[1].Wait)
	}
	// Window 7 [700,800): only the in-flight req 4's unmarked wait.
	w7 := r.Windows[7]
	if w7.Threads[1].Unmarked != 100 || w7.Banks[1].Wait != 100 {
		t.Errorf("window 7 in-flight attribution wrong: %+v", w7)
	}

	// Bank totals: bank 0 wait = t0's 150; bank 1 = 400+300 = 700.
	if r.Banks[0].Wait != 150 || r.Banks[1].Wait != 700 {
		t.Errorf("bank waits = %d/%d, want 150/700", r.Banks[0].Wait, r.Banks[1].Wait)
	}
	// Queue residency: bank 0 = req1 [0,250) + req3 [300,400) = 350 cycles
	// over span 1000 → 0.35. Bank 1 = [80,530)+[700,1000) = 750 → 0.75.
	if got := r.Banks[0].QueueDepth; got < 0.349 || got > 0.351 {
		t.Errorf("bank 0 queue depth = %v, want 0.35", got)
	}
	if got := r.Banks[1].QueueDepth; got < 0.749 || got > 0.751 {
		t.Errorf("bank 1 queue depth = %v, want 0.75", got)
	}

	// Attribution: bank 1 and thread 1 dominate.
	if len(r.TopBanks) == 0 || r.TopBanks[0].ID != 1 || r.TopBanks[0].Cycles != 700 {
		t.Errorf("top bank = %+v, want bank 1 / 700", r.TopBanks)
	}
	if len(r.TopThreads) == 0 || r.TopThreads[0].ID != 1 || r.TopThreads[0].Cycles != 700 {
		t.Errorf("top thread = %+v, want thread 1 / 700", r.TopThreads)
	}

	// Batch timeline: one batch formed at 50, drained at 250.
	if len(r.Batches) != 1 || r.Batches[0].Formed != 50 || r.Batches[0].Drained != 250 {
		t.Errorf("batches = %+v, want one span [50,250]", r.Batches)
	}
}

func TestRangeQueries(t *testing.T) {
	s := FromLog(fixtureLog())
	r := s.Analyze(Options{WindowCycles: 100})

	// Cycles [0,300): t0 waited 150 on bank 0, t1 waited 220 on bank 1.
	top := r.RangeTopBanks(0, 300, 2)
	if len(top) != 2 || top[0].ID != 1 || top[0].Cycles != 220 || top[1].ID != 0 || top[1].Cycles != 150 {
		t.Errorf("RangeTopBanks(0,300) = %+v, want bank1/220 then bank0/150", top)
	}
	// Cycles [600,1000): only the in-flight request's 300 on bank 1 / t1.
	top = r.RangeTopBanks(600, 1000, 5)
	if len(top) != 1 || top[0].ID != 1 || top[0].Cycles != 300 {
		t.Errorf("RangeTopBanks(600,1000) = %+v, want bank1/300", top)
	}
	thr := r.RangeTopThreads(600, 0, 5) // to=0 → span end
	if len(thr) != 1 || thr[0].ID != 1 || thr[0].Cycles != 300 {
		t.Errorf("RangeTopThreads(600,end) = %+v, want t1/300", thr)
	}
	// Partial window overlap scales proportionally: [0,50) is half of
	// window 0, whose bank-0 wait is 100 (50 unmarked + 50 marked).
	top = r.RangeTopBanks(0, 50, 5)
	if len(top) < 1 || top[0].ID != 0 || top[0].Cycles != 50 {
		t.Errorf("RangeTopBanks(0,50) = %+v, want bank0/50", top)
	}
}

func TestIngestStreamingMatchesFromLog(t *testing.T) {
	log := fixtureLog()
	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, log); err != nil {
		t.Fatal(err)
	}
	streamed, err := Ingest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	direct := FromLog(log)
	if streamed.Events() != direct.Events() || streamed.Meta() != direct.Meta() {
		t.Fatalf("streamed %d events (%+v), direct %d", streamed.Events(), streamed.Meta(), direct.Events())
	}
	// The stores must analyze identically.
	a, b := streamed.Analyze(Options{WindowCycles: 100}), direct.Analyze(Options{WindowCycles: 100})
	if a.Requests != b.Requests || a.Threads[0] != b.Threads[0] || a.Banks[1] != b.Banks[1] {
		t.Errorf("streamed and direct analyses diverge: %+v vs %+v", a.Threads, b.Threads)
	}
}

func TestIngestTruncatedStream(t *testing.T) {
	log := fixtureLog()
	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, log); err != nil {
		t.Fatal(err)
	}
	full := buf.String()

	// Cut mid-line: ingest keeps the parseable prefix and flags it.
	cut := full[:len(full)-20]
	s, err := Ingest(strings.NewReader(cut))
	if err != nil {
		t.Fatalf("Ingest(cut) err = %v, want graceful truncation", err)
	}
	if !s.Truncated() {
		t.Error("cut stream: Truncated() = false, want true")
	}
	if s.Events() != len(log.Events)-1 {
		t.Errorf("cut stream kept %d events, want %d", s.Events(), len(log.Events)-1)
	}
	// A truncated store still analyzes (partial results, no panic), and the
	// report carries the flag.
	r := s.Analyze(Options{})
	if !r.Truncated {
		t.Error("report of truncated store lacks the flag")
	}
	var out bytes.Buffer
	if err := r.WriteText(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "truncated") {
		t.Error("text report of truncated store lacks the caveat")
	}

	// Record-time drops (header dropped > 0) also flag the store.
	dropped := strings.Replace(full, "\"dropped\":0", "\"dropped\":42", 1)
	s, err = Ingest(strings.NewReader(dropped))
	if err != nil {
		t.Fatal(err)
	}
	if !s.Truncated() || s.Dropped() != 42 {
		t.Errorf("dropped>0: Truncated=%v Dropped=%d, want true/42", s.Truncated(), s.Dropped())
	}

	// Header damage is the one fatal case.
	if _, err := Ingest(strings.NewReader("{bogus\n")); err == nil {
		t.Error("mangled header: want error")
	}
}

func TestToLogRoundTrip(t *testing.T) {
	log := fixtureLog()
	back := FromLog(log).ToLog()
	if len(back.Events) != len(log.Events) {
		t.Fatalf("round trip lost events: %d vs %d", len(back.Events), len(log.Events))
	}
	for i := range back.Events {
		if back.Events[i] != log.Events[i] {
			t.Errorf("event %d = %+v, want %+v", i, back.Events[i], log.Events[i])
		}
	}
	// The bridge feeds trace.Analyze: spot-check it agrees.
	a := trace.Analyze(back)
	if a.Requests != 2 || a.Batches != 1 {
		t.Errorf("trace.Analyze over ToLog: requests=%d batches=%d, want 2/1", a.Requests, a.Batches)
	}
}

func TestAnalyzeWindowWidthClamp(t *testing.T) {
	s := FromLog(fixtureLog())
	// A 1-cycle width over a 1000-cycle span would want 1000 windows; fine
	// (< maxWindows). A degenerate zero-width falls back to DefaultWindows.
	if got := len(s.Analyze(Options{WindowCycles: 1}).Windows); got != 1000 {
		t.Errorf("width 1: %d windows, want 1000", got)
	}
	if got := len(s.Analyze(Options{}).Windows); got != DefaultWindows {
		t.Errorf("default width: %d windows, want %d", got, DefaultWindows)
	}
}
