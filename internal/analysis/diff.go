package analysis

import (
	"fmt"
	"io"
)

// Cross-run diffing. PAR-BS's claims are comparative — fairness and
// throughput relative to FR-FCFS and friends — so the diff is a first-class
// artifact: two stores in, one aligned report out. Alignment rules:
//
//   - Both runs are re-analyzed with one common window width (the given
//     Options width, or the default division of the longer run's span), so
//     window k covers the same cycle range in both arms.
//   - Threads and banks align by index; an entity present in only one run
//     diffs against a zero row rather than being dropped.
//   - Config mismatches (cores, banks, channels, workload, span) do not
//     refuse the diff — comparing a 4-core run against an 8-core run is
//     legitimate — but every mismatch is recorded in Mismatches so a report
//     can never silently compare apples to oranges. Policy difference is
//     the expected case and is not a mismatch.
//
// All deltas are B minus A.

// DiffSchema identifies the diff report JSON.
const DiffSchema = "parbs.analysis.diff/v1"

// ThreadDelta is one thread's cross-run comparison.
type ThreadDelta struct {
	Thread int `json:"thread"`
	// A and B are the whole-span rollups of each arm (zero row when the
	// thread exists in only one).
	A ThreadTotals `json:"a"`
	B ThreadTotals `json:"b"`
	// Deltas of the wait decomposition and the latency tail, B − A.
	DWait       int64 `json:"d_wait"`
	DUnmarked   int64 `json:"d_unmarked"`
	DMarked     int64 `json:"d_marked"`
	DService    int64 `json:"d_service"`
	DLatencyP50 int64 `json:"d_latency_p50"`
	DLatencyP99 int64 `json:"d_latency_p99"`
}

// BankDelta is one bank's cross-run comparison.
type BankDelta struct {
	Bank  int        `json:"bank"`
	Label string     `json:"label"`
	A     BankTotals `json:"a"`
	B     BankTotals `json:"b"`
	// DCommands and DWait shift the occupancy picture; DQueueDepth the
	// time-averaged buffered-request count.
	DCommands   int64   `json:"d_commands"`
	DWait       int64   `json:"d_wait"`
	DQueueDepth float64 `json:"d_queue_depth"`
}

// WindowDelta compares one aligned time slice.
type WindowDelta struct {
	Index int   `json:"index"`
	Start int64 `json:"start"`
	End   int64 `json:"end"`
	// Deltas of bus activity and request flow, B − A. Windows beyond one
	// arm's span diff against zeros.
	DCommands    int64 `json:"d_commands"`
	DBusyCycles  int64 `json:"d_busy_cycles"`
	DArrivals    int64 `json:"d_arrivals"`
	DCompletions int64 `json:"d_completions"`
}

// BatchDelta summarizes batch-span changes between the arms.
type BatchDelta struct {
	BatchesA  int   `json:"batches_a"`
	BatchesB  int   `json:"batches_b"`
	MaxSpanA  int64 `json:"max_span_a"`
	MaxSpanB  int64 `json:"max_span_b"`
	MeanSpanA int64 `json:"mean_span_a"`
	MeanSpanB int64 `json:"mean_span_b"`
}

// DiffReport is the aligned comparison of two runs. The full per-arm
// reports ride along so a consumer can drill into either side without
// re-analyzing.
type DiffReport struct {
	Schema string `json:"schema"`
	// A and B are the complete windowed reports of each arm, computed with
	// the common WindowCycles below.
	A *Report `json:"a"`
	B *Report `json:"b"`
	// WindowCycles is the common window width both arms were analyzed at.
	WindowCycles int64 `json:"window_cycles"`
	// Mismatches lists config differences between the runs (empty when the
	// arms are directly comparable).
	Mismatches []string `json:"mismatches,omitempty"`

	Threads []ThreadDelta `json:"threads"`
	Banks   []BankDelta   `json:"banks"`
	Windows []WindowDelta `json:"windows"`
	Batches BatchDelta    `json:"batches"`

	// Unfairness is the max/min ratio of per-thread p50 read latency
	// (threads with completed reads only) — a trace-derived proxy for the
	// paper's slowdown-based unfairness metric, which needs alone-run
	// baselines a single trace does not carry. Zero when undefined.
	UnfairnessA     float64 `json:"unfairness_a"`
	UnfairnessB     float64 `json:"unfairness_b"`
	UnfairnessDelta float64 `json:"unfairness_delta"`
}

// spanOf mirrors Analyze's span derivation: the metadata's total DRAM
// cycles, extended by any event past it.
func spanOf(s *Store) int64 {
	end := s.meta.TotalDRAM
	for _, c := range s.cycle {
		if c >= end {
			end = c + 1
		}
	}
	if end < 1 {
		end = 1
	}
	return end
}

// Diff aligns and compares two runs. opt.WindowCycles fixes the common
// window width (0 divides the longer span into DefaultWindows); opt.TopK
// passes through to both arms' reports.
func Diff(a, b *Store, opt Options) *DiffReport {
	width := opt.WindowCycles
	if width <= 0 {
		longest := max(spanOf(a), spanOf(b))
		width = (longest + DefaultWindows - 1) / DefaultWindows
	}
	if width < 1 {
		width = 1
	}
	ra := a.Analyze(Options{WindowCycles: width, TopK: opt.TopK})
	rb := b.Analyze(Options{WindowCycles: width, TopK: opt.TopK})

	d := &DiffReport{Schema: DiffSchema, A: ra, B: rb, WindowCycles: ra.WindowCycles}
	mismatch := func(field string, va, vb any) {
		if va != vb {
			d.Mismatches = append(d.Mismatches,
				fmt.Sprintf("%s: %v (A) vs %v (B)", field, va, vb))
		}
	}
	mismatch("workload", ra.Meta.Workload, rb.Meta.Workload)
	mismatch("cores", ra.Meta.Cores, rb.Meta.Cores)
	mismatch("banks", ra.Meta.Banks, rb.Meta.Banks)
	mismatch("channels", ra.Meta.Channels, rb.Meta.Channels)
	// Policy and Marking-Cap are deliberately not compared: differing
	// scheduling configuration is the expected case, not a misalignment.
	mismatch("total_dram", ra.Meta.TotalDRAM, rb.Meta.TotalDRAM)
	mismatch("span_end", ra.SpanEnd, rb.SpanEnd)
	if ra.WindowCycles != rb.WindowCycles {
		// Only possible if one arm hit the maxWindows clamp; the aligned
		// window table below would be lying, so say so loudly.
		d.Mismatches = append(d.Mismatches, fmt.Sprintf(
			"window width diverged under the window-count clamp: %d (A) vs %d (B)",
			ra.WindowCycles, rb.WindowCycles))
	}

	// Threads by index, zero-padded.
	nThr := max(len(ra.Threads), len(rb.Threads))
	for t := 0; t < nThr; t++ {
		td := ThreadDelta{Thread: t, A: ThreadTotals{Thread: t}, B: ThreadTotals{Thread: t}}
		if t < len(ra.Threads) {
			td.A = ra.Threads[t]
		}
		if t < len(rb.Threads) {
			td.B = rb.Threads[t]
		}
		td.DWait = td.B.Wait - td.A.Wait
		td.DUnmarked = td.B.Unmarked - td.A.Unmarked
		td.DMarked = td.B.Marked - td.A.Marked
		td.DService = td.B.Service - td.A.Service
		td.DLatencyP50 = td.B.LatencyPct.P50 - td.A.LatencyPct.P50
		td.DLatencyP99 = td.B.LatencyPct.P99 - td.A.LatencyPct.P99
		d.Threads = append(d.Threads, td)
	}

	// Banks by global index, zero-padded; labels come from whichever arm
	// has the bank.
	nBanks := max(len(ra.Banks), len(rb.Banks))
	for bk := 0; bk < nBanks; bk++ {
		bd := BankDelta{Bank: bk}
		if bk < len(ra.Banks) {
			bd.A = ra.Banks[bk]
			bd.Label = bd.A.Label
		}
		if bk < len(rb.Banks) {
			bd.B = rb.Banks[bk]
			bd.Label = bd.B.Label
		}
		bd.DCommands = bd.B.Commands - bd.A.Commands
		bd.DWait = bd.B.Wait - bd.A.Wait
		bd.DQueueDepth = bd.B.QueueDepth - bd.A.QueueDepth
		d.Banks = append(d.Banks, bd)
	}

	// Windows by index: identical width, so window k spans the same cycles
	// in both arms; the longer run's extra windows diff against zeros.
	nWin := max(len(ra.Windows), len(rb.Windows))
	for w := 0; w < nWin; w++ {
		var wa, wb Window
		if w < len(ra.Windows) {
			wa = ra.Windows[w]
		}
		if w < len(rb.Windows) {
			wb = rb.Windows[w]
		}
		ref := wa
		if w >= len(ra.Windows) {
			ref = wb
		}
		d.Windows = append(d.Windows, WindowDelta{
			Index: w, Start: ref.Start, End: ref.End,
			DCommands:    wb.Commands - wa.Commands,
			DBusyCycles:  wb.BusyCycles - wa.BusyCycles,
			DArrivals:    wb.Arrivals - wa.Arrivals,
			DCompletions: wb.Completions - wa.Completions,
		})
	}

	d.Batches = BatchDelta{BatchesA: len(ra.Batches), BatchesB: len(rb.Batches)}
	d.Batches.MaxSpanA, d.Batches.MeanSpanA = batchSpanStats(ra.Batches)
	d.Batches.MaxSpanB, d.Batches.MeanSpanB = batchSpanStats(rb.Batches)

	d.UnfairnessA = latencyUnfairness(ra.Threads)
	d.UnfairnessB = latencyUnfairness(rb.Threads)
	d.UnfairnessDelta = d.UnfairnessB - d.UnfairnessA
	return d
}

// batchSpanStats returns the max and mean formation→drain span over drained
// batches (zero when none drained inside the log).
func batchSpanStats(spans []BatchSpan) (maxSpan, mean int64) {
	var sum, n int64
	for _, bs := range spans {
		if bs.Drained < 0 {
			continue
		}
		span := bs.Drained - bs.Formed
		if span > maxSpan {
			maxSpan = span
		}
		sum += span
		n++
	}
	if n > 0 {
		mean = sum / n
	}
	return maxSpan, mean
}

// latencyUnfairness is max/min per-thread p50 read latency over threads
// with completed reads; zero when fewer than one thread qualifies or the
// minimum is zero.
func latencyUnfairness(threads []ThreadTotals) float64 {
	var lo, hi int64
	for _, tt := range threads {
		if tt.Reads == 0 {
			continue
		}
		p := tt.LatencyPct.P50
		if lo == 0 || p < lo {
			lo = p
		}
		if p > hi {
			hi = p
		}
	}
	if lo <= 0 {
		return 0
	}
	return float64(hi) / float64(lo)
}

// WriteText renders the diff for terminals; `parbs-trace diff` and the
// smoke script parse this layout.
func (d *DiffReport) WriteText(w io.Writer) error {
	bw := &errWriter{w: w}
	pol := func(r *Report) string {
		if r.Meta.Policy == "" {
			return "?"
		}
		return r.Meta.Policy
	}
	bw.printf("analysis diff: A=%s  B=%s  (deltas are B−A)\n", pol(d.A), pol(d.B))
	bw.printf("  span A %d cycles, B %d cycles; window %d cycles\n",
		d.A.SpanEnd, d.B.SpanEnd, d.WindowCycles)
	if d.A.Truncated || d.B.Truncated {
		bw.printf("  NOTE: truncated arms: A=%v B=%v — deltas cover recorded prefixes only\n",
			d.A.Truncated, d.B.Truncated)
	}
	for _, m := range d.Mismatches {
		bw.printf("  MISMATCH %s\n", m)
	}

	bw.printf("\nthreads (wait decomposition, B−A):\n")
	bw.printf("  %-4s %14s %14s %14s %14s %12s %12s\n",
		"thr", "waitA", "waitB", "dWait", "dUnmarked", "dLat.p50", "dLat.p99")
	for _, td := range d.Threads {
		bw.printf("  t%-3d %14d %14d %+14d %+14d %+12d %+12d\n",
			td.Thread, td.A.Wait, td.B.Wait, td.DWait, td.DUnmarked,
			td.DLatencyP50, td.DLatencyP99)
	}

	bw.printf("\nbanks (occupancy shift, B−A):\n")
	bw.printf("  %-8s %12s %12s %+12s %+14s\n", "bank", "cmdsA", "cmdsB", "dCmds", "dWait")
	for _, bd := range d.Banks {
		if bd.A.Commands == 0 && bd.B.Commands == 0 && bd.DWait == 0 {
			continue
		}
		bw.printf("  %-8s %12d %12d %+12d %+14d\n",
			bd.Label, bd.A.Commands, bd.B.Commands, bd.DCommands, bd.DWait)
	}

	bw.printf("\nbatches: A %d (max span %d, mean %d) → B %d (max span %d, mean %d)\n",
		d.Batches.BatchesA, d.Batches.MaxSpanA, d.Batches.MeanSpanA,
		d.Batches.BatchesB, d.Batches.MaxSpanB, d.Batches.MeanSpanB)
	bw.printf("unfairness (p50 latency max/min): A %.3f → B %.3f (%+.3f)\n",
		d.UnfairnessA, d.UnfairnessB, d.UnfairnessDelta)
	return bw.err
}

// errWriter folds write errors so the renderer reads linearly.
type errWriter struct {
	w   io.Writer
	err error
}

func (ew *errWriter) printf(format string, args ...any) {
	if ew.err != nil {
		return
	}
	_, ew.err = fmt.Fprintf(ew.w, format, args...)
}
