package analysis

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"

	"repro/internal/trace"
)

// parbs.analysis/v2 snapshot: the columnar store serialized for reuse
// across processes (ingest once, query many times; ship a snapshot instead
// of re-parsing a multi-hundred-MB JSONL). Layout, all integers little
// endian:
//
//	magic    "parbs.analysis/v2\n"
//	u32      header JSON length, then that many bytes of snapHeader JSON
//	columns  cycle,req,row int64; thread,bank,rank,channel int32;
//	         kind,cmd,write u8 — each a packed array of Events() entries
//	batches  per KindBatch event: u32 count + that many int32 per-thread
//	         marked counts
//	u64      FNV-1a 64 of every byte after the header JSON (the columns and
//	         batch shapes) — snapshot files travel between machines, and a
//	         silently corrupt column would poison every query downstream
//
// The magic carries the version: any incompatible change bumps Schema and
// old readers fail loudly on the first 18 bytes. v2 added ingest_truncated
// to the header JSON; the body layout is unchanged, so the reader accepts
// the v1 magic too and infers the flag (a v1 store marked truncated with
// zero record-time drops could only have been cut during ingest).

// snapHeader is the snapshot's JSON header.
type snapHeader struct {
	Meta            trace.Meta `json:"meta"`
	Truncated       bool       `json:"truncated"`
	IngestTruncated bool       `json:"ingest_truncated,omitempty"`
	Dropped         int64      `json:"dropped"`
	Events          int        `json:"events"`
	Batches         int        `json:"batches"`
}

// WriteSnapshot serializes the store in parbs.analysis/v2 form.
func (s *Store) WriteSnapshot(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(Schema + "\n"); err != nil {
		return err
	}
	hdr, err := json.Marshal(snapHeader{
		Meta: s.meta, Truncated: s.truncated, IngestTruncated: s.ingestTruncated,
		Dropped: s.dropped, Events: len(s.kind), Batches: len(s.batchPT),
	})
	if err != nil {
		return err
	}
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(len(hdr)))
	if _, err := bw.Write(u32[:]); err != nil {
		return err
	}
	if _, err := bw.Write(hdr); err != nil {
		return err
	}

	sum := fnv.New64a()
	body := io.MultiWriter(bw, sum)
	if err := writeI64s(body, s.cycle); err != nil {
		return err
	}
	if err := writeI64s(body, s.req); err != nil {
		return err
	}
	if err := writeI64s(body, s.row); err != nil {
		return err
	}
	if err := writeI32s(body, s.thread); err != nil {
		return err
	}
	if err := writeI32s(body, s.bank); err != nil {
		return err
	}
	if err := writeI32s(body, s.rank); err != nil {
		return err
	}
	if err := writeI32s(body, s.channel); err != nil {
		return err
	}
	if _, err := body.Write(s.kind); err != nil {
		return err
	}
	if _, err := body.Write(s.cmd); err != nil {
		return err
	}
	if err := writeBools(body, s.write); err != nil {
		return err
	}
	for _, pt := range s.batchPT {
		binary.LittleEndian.PutUint32(u32[:], uint32(len(pt)))
		if _, err := body.Write(u32[:]); err != nil {
			return err
		}
		if err := writeI32s(body, pt); err != nil {
			return err
		}
	}
	var u64 [8]byte
	binary.LittleEndian.PutUint64(u64[:], sum.Sum64())
	if _, err := bw.Write(u64[:]); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadSnapshot deserializes a parbs.analysis snapshot (v2 or the legacy
// v1 magic), verifying the magic, the declared lengths, and the body
// checksum.
func ReadSnapshot(r io.Reader) (*Store, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	magic := make([]byte, len(Schema)+1)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("analysis: snapshot magic: %w", err)
	}
	v1 := string(magic) == SchemaV1+"\n"
	if string(magic) != Schema+"\n" && !v1 {
		return nil, fmt.Errorf("analysis: not a %s snapshot", Schema)
	}
	var u32 [4]byte
	if _, err := io.ReadFull(br, u32[:]); err != nil {
		return nil, err
	}
	hdrLen := binary.LittleEndian.Uint32(u32[:])
	if hdrLen > 1<<20 {
		return nil, fmt.Errorf("analysis: implausible snapshot header length %d", hdrLen)
	}
	hdrBytes := make([]byte, hdrLen)
	if _, err := io.ReadFull(br, hdrBytes); err != nil {
		return nil, err
	}
	var hdr snapHeader
	if err := json.Unmarshal(hdrBytes, &hdr); err != nil {
		return nil, fmt.Errorf("analysis: snapshot header: %w", err)
	}
	if hdr.Events < 0 || hdr.Batches < 0 || hdr.Batches > hdr.Events {
		return nil, fmt.Errorf("analysis: implausible snapshot counts: events=%d batches=%d", hdr.Events, hdr.Batches)
	}

	sum := fnv.New64a()
	body := io.TeeReader(br, sum)
	n := hdr.Events
	s := &Store{meta: hdr.Meta, truncated: hdr.Truncated,
		ingestTruncated: hdr.IngestTruncated, dropped: hdr.Dropped}
	if v1 && s.truncated && s.dropped == 0 {
		// v1 headers did not record the distinction; truncation without
		// record-time drops can only have come from a damaged stream.
		s.ingestTruncated = true
	}
	var err error
	if s.cycle, err = readI64s(body, n); err != nil {
		return nil, err
	}
	if s.req, err = readI64s(body, n); err != nil {
		return nil, err
	}
	if s.row, err = readI64s(body, n); err != nil {
		return nil, err
	}
	if s.thread, err = readI32s(body, n); err != nil {
		return nil, err
	}
	if s.bank, err = readI32s(body, n); err != nil {
		return nil, err
	}
	if s.rank, err = readI32s(body, n); err != nil {
		return nil, err
	}
	if s.channel, err = readI32s(body, n); err != nil {
		return nil, err
	}
	s.kind = make([]uint8, n)
	if _, err := io.ReadFull(body, s.kind); err != nil {
		return nil, err
	}
	s.cmd = make([]uint8, n)
	if _, err := io.ReadFull(body, s.cmd); err != nil {
		return nil, err
	}
	if s.write, err = readBools(body, n); err != nil {
		return nil, err
	}
	s.batchPT = make([][]int32, hdr.Batches)
	for i := range s.batchPT {
		if _, err := io.ReadFull(body, u32[:]); err != nil {
			return nil, err
		}
		m := binary.LittleEndian.Uint32(u32[:])
		if int(m) > 1<<20 {
			return nil, fmt.Errorf("analysis: implausible batch shape length %d", m)
		}
		if s.batchPT[i], err = readI32s(body, int(m)); err != nil {
			return nil, err
		}
	}
	want := sum.Sum64()
	var u64 [8]byte
	if _, err := io.ReadFull(br, u64[:]); err != nil {
		return nil, fmt.Errorf("analysis: snapshot checksum: %w", err)
	}
	if got := binary.LittleEndian.Uint64(u64[:]); got != want {
		return nil, fmt.Errorf("analysis: snapshot checksum mismatch (stored %x, computed %x)", got, want)
	}
	return s, nil
}

// chunk is the encode/decode staging size, in elements.
const chunk = 4096

func writeI64s(w io.Writer, vals []int64) error {
	buf := make([]byte, 8*chunk)
	for len(vals) > 0 {
		n := min(len(vals), chunk)
		for i, v := range vals[:n] {
			binary.LittleEndian.PutUint64(buf[8*i:], uint64(v))
		}
		if _, err := w.Write(buf[:8*n]); err != nil {
			return err
		}
		vals = vals[n:]
	}
	return nil
}

func writeI32s(w io.Writer, vals []int32) error {
	buf := make([]byte, 4*chunk)
	for len(vals) > 0 {
		n := min(len(vals), chunk)
		for i, v := range vals[:n] {
			binary.LittleEndian.PutUint32(buf[4*i:], uint32(v))
		}
		if _, err := w.Write(buf[:4*n]); err != nil {
			return err
		}
		vals = vals[n:]
	}
	return nil
}

func writeBools(w io.Writer, vals []bool) error {
	buf := make([]byte, chunk)
	for len(vals) > 0 {
		n := min(len(vals), chunk)
		for i, v := range vals[:n] {
			if v {
				buf[i] = 1
			} else {
				buf[i] = 0
			}
		}
		if _, err := w.Write(buf[:n]); err != nil {
			return err
		}
		vals = vals[n:]
	}
	return nil
}

func readI64s(r io.Reader, n int) ([]int64, error) {
	out := make([]int64, n)
	buf := make([]byte, 8*chunk)
	for i := 0; i < n; {
		m := min(n-i, chunk)
		if _, err := io.ReadFull(r, buf[:8*m]); err != nil {
			return nil, err
		}
		for j := 0; j < m; j++ {
			out[i+j] = int64(binary.LittleEndian.Uint64(buf[8*j:]))
		}
		i += m
	}
	return out, nil
}

func readI32s(r io.Reader, n int) ([]int32, error) {
	out := make([]int32, n)
	buf := make([]byte, 4*chunk)
	for i := 0; i < n; {
		m := min(n-i, chunk)
		if _, err := io.ReadFull(r, buf[:4*m]); err != nil {
			return nil, err
		}
		for j := 0; j < m; j++ {
			out[i+j] = int32(binary.LittleEndian.Uint32(buf[4*j:]))
		}
		i += m
	}
	return out, nil
}

func readBools(r io.Reader, n int) ([]bool, error) {
	out := make([]bool, n)
	buf := make([]byte, chunk)
	for i := 0; i < n; {
		m := min(n-i, chunk)
		if _, err := io.ReadFull(r, buf[:m]); err != nil {
			return nil, err
		}
		for j := 0; j < m; j++ {
			out[i+j] = buf[j] != 0
		}
		i += m
	}
	return out, nil
}
