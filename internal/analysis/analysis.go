// Package analysis is the trace-analytics subsystem: it ingests
// parbs.trace/v1 lifecycle event logs (internal/trace) into an in-memory
// columnar store, computes windowed aggregates — per-bank / per-channel
// occupancy and queue depth, per-thread wait decomposition over time,
// batch formation/drain timelines — and ranks bottlenecks (top-K banks and
// threads by contributed wait) per window and over any cycle range.
//
// The module is dependency-free by charter, so there is no sqlite here:
// the store keeps each event field in its own slice (struct-of-arrays, the
// same layout a column store would give us) and persists through a
// versioned binary snapshot format, parbs.analysis/v1 (snapshot.go), that
// round-trips byte-identically.
//
// Ingest is streaming (trace.Scanner) and deliberately tolerant of
// truncation: a log whose tracer dropped events (header dropped > 0) or
// whose tail was cut mid-line ingests to a store covering the recorded
// prefix, flagged Truncated, never an error — a forensics tool that
// refuses damaged evidence is useless at exactly the wrong moment.
//
// Three front ends sit on top: the typed query API (Analyze → Report,
// window.go), the `parbs-trace report` subcommand, and the parbs-serve
// /v1/analysis endpoints with the embedded HTML dashboard.
package analysis

import (
	"errors"
	"io"

	"repro/internal/trace"
)

// Schema identifies both the binary snapshot format (snapshot.go) and the
// report JSON the query layer emits. v2 added the ingest-truncation flag to
// the snapshot header (the percentile columns are derived at Analyze time,
// so they need no storage change); SchemaV1 snapshots remain readable.
const (
	Schema   = "parbs.analysis/v2"
	SchemaV1 = "parbs.analysis/v1"
)

// Store is the in-memory columnar event store: one slice per event field,
// parallel by index, in the log's simulation processing order. Construct
// with FromLog, Ingest, or ReadSnapshot. A Store is immutable once built
// and safe for concurrent readers.
type Store struct {
	meta      trace.Meta
	truncated bool
	// ingestTruncated records stream damage found while reading (torn
	// tail, malformed line) as opposed to record-time buffer drops.
	ingestTruncated bool
	dropped         int64

	kind    []uint8
	cycle   []int64
	req     []int64
	row     []int64
	thread  []int32
	bank    []int32
	rank    []int32
	channel []int32
	cmd     []uint8
	write   []bool

	// batchPT holds per-thread marked counts for the i-th KindBatch event.
	batchPT [][]int32
}

// Meta returns the traced run's metadata.
func (s *Store) Meta() trace.Meta { return s.meta }

// Events returns the number of stored events.
func (s *Store) Events() int { return len(s.kind) }

// Truncated reports that the store covers an incomplete prefix of the run:
// the tracer dropped events at record time, or the ingested stream was cut.
func (s *Store) Truncated() bool { return s.truncated }

// Dropped returns the record-time drop count from the log header.
func (s *Store) Dropped() int64 { return s.dropped }

// IngestTruncated reports that the ingested stream itself was damaged (cut
// mid-line or mid-stream), distinct from record-time drops; see Truncated
// for the union of both conditions.
func (s *Store) IngestTruncated() bool { return s.ingestTruncated }

// append adds one event to the columns.
func (s *Store) append(ev trace.Event, perThread []int32) {
	s.kind = append(s.kind, uint8(ev.Kind))
	s.cycle = append(s.cycle, ev.Cycle)
	s.req = append(s.req, ev.Req)
	s.row = append(s.row, ev.Row)
	s.thread = append(s.thread, ev.Thread)
	s.bank = append(s.bank, ev.Bank)
	s.rank = append(s.rank, ev.Rank)
	s.channel = append(s.channel, ev.Channel)
	s.cmd = append(s.cmd, ev.Cmd)
	s.write = append(s.write, ev.Write)
	if ev.Kind == trace.KindBatch {
		s.batchPT = append(s.batchPT, append([]int32(nil), perThread...))
	}
}

// grow preallocates the columns for n more events.
func (s *Store) grow(n int) {
	if n <= 0 {
		return
	}
	s.kind = make([]uint8, 0, n)
	s.cycle = make([]int64, 0, n)
	s.req = make([]int64, 0, n)
	s.row = make([]int64, 0, n)
	s.thread = make([]int32, 0, n)
	s.bank = make([]int32, 0, n)
	s.rank = make([]int32, 0, n)
	s.channel = make([]int32, 0, n)
	s.cmd = make([]uint8, 0, n)
	s.write = make([]bool, 0, n)
}

// FromLog builds a store from an in-memory event log (a completed Tracer's
// Log or trace.ReadLog output).
func FromLog(log *trace.Log) *Store {
	s := &Store{meta: log.Meta, dropped: log.Dropped, truncated: log.Dropped > 0}
	s.grow(len(log.Events))
	batch := 0
	for _, ev := range log.Events {
		var pt []int32
		if ev.Kind == trace.KindBatch {
			if batch < len(log.BatchPerThread) {
				pt = log.BatchPerThread[batch]
			}
			batch++
		}
		s.append(ev, pt)
	}
	return s
}

// Ingest streams a parbs.trace/v1 JSONL log into a store. Truncated input
// — record-time drops or a mid-line cut — yields a store over the
// parseable prefix with Truncated set; only header damage (nothing
// trustworthy follows) or a reader failure is an error.
func Ingest(r io.Reader) (*Store, error) {
	sc, err := trace.NewScanner(r)
	if err != nil {
		return nil, err
	}
	s := &Store{meta: sc.Meta(), dropped: sc.Dropped(), truncated: sc.Dropped() > 0}
	s.grow(sc.HeaderEvents())
	for {
		ev, pt, err := sc.Next()
		if err == io.EOF {
			return s, nil
		}
		if errors.Is(err, trace.ErrTruncated) {
			s.truncated = true
			s.ingestTruncated = true
			return s, nil
		}
		if err != nil {
			return nil, err
		}
		s.append(ev, pt)
	}
}

// ToLog materializes the store back into a trace.Log — the bridge to the
// existing forensics analyzer (trace.Analyze) and renderers.
func (s *Store) ToLog() *trace.Log {
	log := &trace.Log{Meta: s.meta, Dropped: s.dropped,
		Events: make([]trace.Event, len(s.kind)), BatchPerThread: s.batchPT}
	for i := range s.kind {
		log.Events[i] = trace.Event{
			Kind: trace.Kind(s.kind[i]), Cycle: s.cycle[i], Req: s.req[i],
			Row: s.row[i], Thread: s.thread[i], Bank: s.bank[i],
			Rank: s.rank[i], Channel: s.channel[i], Cmd: s.cmd[i], Write: s.write[i],
		}
	}
	return log
}
