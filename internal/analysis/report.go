package analysis

import (
	"fmt"
	"io"
)

// WriteText renders the report as human-readable tables: whole-span
// bottleneck attribution first (the question a starvation audit asks),
// then per-thread wait decomposition, the window timeline, and the batch
// summary. `parbs-trace report` prints this; -json emits the Report
// struct instead.
func (r *Report) WriteText(w io.Writer) error {
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	m := r.Meta
	p("run: policy=%s workload=%s cores=%d banks=%d", m.Policy, m.Workload, m.Cores, m.Banks)
	if m.Channels > 1 {
		p(" channels=%d", m.Channels)
	}
	p(" marking_cap=%d read_buf=%d\n", m.MarkingCap, m.ReadBufEntries)
	p("events: %d  span: [0, %d) DRAM cycles  windows: %d x %d cycles\n",
		r.Events, r.SpanEnd, len(r.Windows), r.WindowCycles)
	p("requests: %d completed reads, %d still in flight at span end\n", r.Requests, r.InFlight)
	p("latency percentiles (all reads, cycles): p50=%d p90=%d p99=%d\n",
		r.LatencyPct.P50, r.LatencyPct.P90, r.LatencyPct.P99)
	if r.Dropped > 0 {
		p("NOTE: trace truncated (%d events dropped at record time); figures cover the recorded prefix only\n", r.Dropped)
	}
	if r.IngestTruncated {
		p("NOTE: trace stream truncated during ingest (torn tail or malformed line); figures cover the parseable prefix only\n")
	}

	p("\nbottleneck attribution (queued wait = unmarked + marked cycles, whole span):\n")
	p("  rank  bank        wait_cycles      thread      wait_cycles\n")
	n := max(len(r.TopBanks), len(r.TopThreads))
	for i := 0; i < n; i++ {
		bankLbl, bankWait, thrLbl, thrWait := "-", "-", "-", "-"
		if i < len(r.TopBanks) {
			bankLbl = r.TopBanks[i].Label
			bankWait = fmt.Sprintf("%d", r.TopBanks[i].Cycles)
		}
		if i < len(r.TopThreads) {
			thrLbl = r.TopThreads[i].Label
			thrWait = fmt.Sprintf("%d", r.TopThreads[i].Cycles)
		}
		p("  %4d  %-8s %14s      %-8s %14s\n", i+1, bankLbl, bankWait, thrLbl, thrWait)
	}

	p("\nper-thread wait decomposition (cycle sums over the span; percentiles nearest-rank per read):\n")
	p("  thread    reads  inflight    unmarked      marked     service   lat.p50   lat.p90   lat.p99  wait.p99\n")
	for _, t := range r.Threads {
		p("  %6d %8d %9d %11d %11d %11d %9d %9d %9d %9d\n",
			t.Thread, t.Reads, t.InFlight, t.Unmarked, t.Marked, t.Service,
			t.LatencyPct.P50, t.LatencyPct.P90, t.LatencyPct.P99, t.WaitPct.P99)
	}

	p("\nwindow timeline (busy%% = cycles with a command issued):\n")
	p("  window          cycles  commands  busy%%  arrivals  done  batches  top bank (wait)      top thread (wait)\n")
	for _, win := range r.Windows {
		span := win.End - win.Start
		busy := 0.0
		if span > 0 {
			busy = 100 * float64(win.BusyCycles) / float64(span)
		}
		topB, topT := "-", "-"
		if len(win.TopBanks) > 0 {
			topB = fmt.Sprintf("%s (%d)", win.TopBanks[0].Label, win.TopBanks[0].Cycles)
		}
		if len(win.TopThreads) > 0 {
			topT = fmt.Sprintf("%s (%d)", win.TopThreads[0].Label, win.TopThreads[0].Cycles)
		}
		p("  %7d %7d-%-7d %9d %6.1f %9d %5d %8d  %-20s %-20s\n",
			win.Index, win.Start, win.End, win.Commands, busy,
			win.Arrivals, win.Completions, win.BatchesFormed, topB, topT)
	}

	formed, drained := len(r.Batches), 0
	var spanSum, spanMax int64
	for _, b := range r.Batches {
		if b.Drained >= 0 {
			drained++
			d := b.Drained - b.Formed
			spanSum += d
			if d > spanMax {
				spanMax = d
			}
		}
	}
	p("\nbatches: %d formed, %d drained", formed, drained)
	if drained > 0 {
		p(" (avg span %.0f cycles, max %d)", float64(spanSum)/float64(drained), spanMax)
	}
	p("\n")
	return err
}
