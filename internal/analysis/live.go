package analysis

import (
	"bytes"
	"sync"

	"repro/internal/trace"
)

// LiveIngester incrementally consumes a parbs.trace/v1 JSONL stream that is
// still being produced — a running job's trace chunks, or a file tailed on
// disk — and keeps a columnar store current so windowed reports can be
// computed at any moment without rescanning.
//
// Consistency model: every report reflects exactly the complete lines fed
// so far — a prefix of the trace. Report(opt) at any instant returns
// byte-identical aggregates to Ingest-ing that same prefix post hoc and
// calling Analyze(opt); once the stream ends (Finalize after the last Feed)
// the live report converges to the post-hoc report of the whole trace.
//
// Damage handling mirrors Ingest: a malformed line marks the store
// ingest-truncated and permanently stops consumption (everything after the
// first tear is untrustworthy), but the prefix already ingested stays
// queryable. Header damage is the only fatal error.
//
// All methods are safe for concurrent use; feeding and reporting may come
// from different goroutines.
type LiveIngester struct {
	mu sync.Mutex

	store      *Store
	buf        []byte // undelivered tail: bytes after the last newline fed
	headerSeen bool
	headerEvs  int // event count promised by the header (0 on live streams)
	damaged    bool
	finalized  bool
	headerErr  error
}

// NewLiveIngester returns an empty ingester awaiting the stream's header
// line.
func NewLiveIngester() *LiveIngester {
	return &LiveIngester{store: &Store{}}
}

// Feed appends a chunk of the stream. Chunks may split lines arbitrarily;
// incomplete tails are buffered until the terminating newline arrives. The
// only error is header damage — nothing trustworthy follows a bad header.
// Event-line damage is absorbed: the store is flagged ingest-truncated and
// later chunks are ignored.
func (li *LiveIngester) Feed(chunk []byte) error {
	li.mu.Lock()
	defer li.mu.Unlock()
	if li.damaged || li.finalized {
		return li.headerErr
	}
	li.buf = append(li.buf, chunk...)
	for {
		nl := bytes.IndexByte(li.buf, '\n')
		if nl < 0 {
			return nil
		}
		line := li.buf[:nl]
		li.buf = li.buf[nl+1:]
		if err := li.consumeLine(line); err != nil {
			return err
		}
		if li.damaged {
			return nil
		}
	}
}

// consumeLine ingests one complete line under li.mu.
func (li *LiveIngester) consumeLine(line []byte) error {
	if len(bytes.TrimSpace(line)) == 0 {
		return nil
	}
	if !li.headerSeen {
		meta, dropped, events, err := trace.ParseHeader(line)
		if err != nil {
			li.damaged = true
			li.headerErr = err
			return err
		}
		li.headerSeen = true
		li.headerEvs = events
		li.store.meta = meta
		li.store.dropped = dropped
		li.store.truncated = dropped > 0
		li.store.grow(events)
		return nil
	}
	ev, pt, err := trace.ParseEventLine(line)
	if err != nil {
		// First tear: keep the prefix, refuse everything after.
		li.store.truncated = true
		li.store.ingestTruncated = true
		li.damaged = true
		return nil
	}
	li.store.append(ev, pt)
	return nil
}

// Finalize declares the stream complete: a buffered unterminated tail is
// consumed as the final line (files legitimately end without a trailing
// newline; Scanner accepts the same). Further Feed calls are ignored.
func (li *LiveIngester) Finalize() {
	li.mu.Lock()
	defer li.mu.Unlock()
	if li.finalized {
		return
	}
	li.finalized = true
	if li.damaged || len(bytes.TrimSpace(li.buf)) == 0 {
		li.buf = nil
		return
	}
	li.consumeLine(li.buf)
	li.buf = nil
}

// SetDropped reconciles the record-time drop count once the true value is
// known (live stream headers carry zero — the count is unknowable mid-run;
// the completed log's header has the truth).
func (li *LiveIngester) SetDropped(n int64) {
	li.mu.Lock()
	defer li.mu.Unlock()
	li.store.dropped = n
	if n > 0 {
		li.store.truncated = true
	}
}

// Report computes the windowed analysis of the prefix ingested so far, or
// nil before the header line has arrived (there is no run to describe yet).
// The returned report is a self-contained value; the ingester keeps moving
// underneath it.
func (li *LiveIngester) Report(opt Options) *Report {
	li.mu.Lock()
	defer li.mu.Unlock()
	if !li.headerSeen {
		return nil
	}
	return li.store.Analyze(opt)
}

// HeaderSeen reports whether the stream's header line has been ingested.
func (li *LiveIngester) HeaderSeen() bool {
	li.mu.Lock()
	defer li.mu.Unlock()
	return li.headerSeen
}

// HeaderEvents returns the event count promised by the header (zero on
// live streams, whose headers are written before the run finishes).
func (li *LiveIngester) HeaderEvents() int {
	li.mu.Lock()
	defer li.mu.Unlock()
	return li.headerEvs
}

// Events returns the number of events ingested so far.
func (li *LiveIngester) Events() int {
	li.mu.Lock()
	defer li.mu.Unlock()
	return len(li.store.kind)
}
