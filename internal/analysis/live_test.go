package analysis

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/trace"
)

// fixtureJSONL renders the fixture log as a JSONL stream.
func fixtureJSONL(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, fixtureLog()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// reportJSON marshals a report for byte-identity comparison.
func reportJSON(t *testing.T, r *Report) []byte {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestLiveIngestConvergence pins the consistency model: a live ingester fed
// the stream in arbitrary chunk sizes converges to byte-identical final
// aggregates as the post-hoc Ingest → Analyze of the same bytes.
func TestLiveIngestConvergence(t *testing.T) {
	stream := fixtureJSONL(t)
	opt := Options{WindowCycles: 100, TopK: 3}

	post, err := Ingest(bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	want := reportJSON(t, post.Analyze(opt))

	for _, chunkSize := range []int{1, 7, 64, 1 << 20} {
		li := NewLiveIngester()
		for off := 0; off < len(stream); off += chunkSize {
			end := min(off+chunkSize, len(stream))
			if err := li.Feed(stream[off:end]); err != nil {
				t.Fatalf("chunk %d: Feed: %v", chunkSize, err)
			}
		}
		li.Finalize()
		got := reportJSON(t, li.Report(opt))
		if !bytes.Equal(got, want) {
			t.Errorf("chunk size %d: live report diverges from post-hoc report", chunkSize)
		}
	}
}

// TestLiveIngestPrefixConsistency checks that a mid-stream report equals
// the post-hoc analysis of exactly the lines delivered so far.
func TestLiveIngestPrefixConsistency(t *testing.T) {
	stream := fixtureJSONL(t)
	opt := Options{WindowCycles: 100}

	// Split after the 6th line: a clean line boundary mid-stream.
	lines := bytes.SplitAfter(stream, []byte("\n"))
	prefix := bytes.Join(lines[:6], nil)

	li := NewLiveIngester()
	if err := li.Feed(prefix); err != nil {
		t.Fatal(err)
	}
	post, err := Ingest(bytes.NewReader(prefix))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := reportJSON(t, li.Report(opt)), reportJSON(t, post.Analyze(opt)); !bytes.Equal(got, want) {
		t.Error("mid-stream live report diverges from post-hoc report of the same prefix")
	}

	// Feeding the rest and finalizing converges to the full report.
	if err := li.Feed(bytes.Join(lines[6:], nil)); err != nil {
		t.Fatal(err)
	}
	li.Finalize()
	full, err := Ingest(bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := reportJSON(t, li.Report(opt)), reportJSON(t, full.Analyze(opt)); !bytes.Equal(got, want) {
		t.Error("final live report diverges from full post-hoc report")
	}
}

// TestLiveIngestBeforeHeader: no report exists until the header arrives.
func TestLiveIngestBeforeHeader(t *testing.T) {
	li := NewLiveIngester()
	if r := li.Report(Options{}); r != nil {
		t.Fatalf("report before header = %+v, want nil", r)
	}
	if li.HeaderSeen() {
		t.Fatal("HeaderSeen before any input")
	}
	// A partial header line alone is not enough either.
	stream := fixtureJSONL(t)
	if err := li.Feed(stream[:10]); err != nil {
		t.Fatal(err)
	}
	if li.HeaderSeen() || li.Report(Options{}) != nil {
		t.Fatal("partial header line must not produce a report")
	}
	if err := li.Feed(stream[10:]); err != nil {
		t.Fatal(err)
	}
	if !li.HeaderSeen() || li.Report(Options{}) == nil {
		t.Fatal("header not recognized after completion")
	}
}

// TestLiveIngestDamage: a malformed event line flags ingest truncation,
// keeps the prefix, and permanently stops consumption; a malformed header
// is a hard error.
func TestLiveIngestDamage(t *testing.T) {
	stream := fixtureJSONL(t)
	lines := bytes.SplitAfter(stream, []byte("\n"))

	li := NewLiveIngester()
	if err := li.Feed(bytes.Join(lines[:3], nil)); err != nil {
		t.Fatal(err)
	}
	before := li.Events()
	if err := li.Feed([]byte("{torn garbage\n")); err != nil {
		t.Fatalf("event damage must not error, got %v", err)
	}
	if err := li.Feed(bytes.Join(lines[3:], nil)); err != nil {
		t.Fatal(err)
	}
	if li.Events() != before {
		t.Errorf("events after damage = %d, want frozen at %d", li.Events(), before)
	}
	r := li.Report(Options{WindowCycles: 100})
	if !r.Truncated || !r.IngestTruncated {
		t.Errorf("damaged stream: Truncated=%v IngestTruncated=%v, want true/true", r.Truncated, r.IngestTruncated)
	}

	bad := NewLiveIngester()
	if err := bad.Feed([]byte("{bogus header\n")); err == nil {
		t.Fatal("bad header must error")
	}
	if err := bad.Feed(lines[0]); err == nil {
		t.Fatal("feeding after header damage must keep failing")
	}
}

// TestLiveIngestSetDropped: reconciling the record-time drop count after
// the run marks the store truncated.
func TestLiveIngestSetDropped(t *testing.T) {
	li := NewLiveIngester()
	if err := li.Feed(fixtureJSONL(t)); err != nil {
		t.Fatal(err)
	}
	li.Finalize()
	li.SetDropped(17)
	r := li.Report(Options{WindowCycles: 100})
	if !r.Truncated || r.Dropped != 17 || r.IngestTruncated {
		t.Errorf("after SetDropped(17): Truncated=%v Dropped=%d IngestTruncated=%v, want true/17/false",
			r.Truncated, r.Dropped, r.IngestTruncated)
	}
}

// TestLiveIngestFinalizeTail: a stream whose last line lacks the trailing
// newline still ingests completely once finalized (Scanner parity).
func TestLiveIngestFinalizeTail(t *testing.T) {
	stream := fixtureJSONL(t)
	trimmed := bytes.TrimSuffix(stream, []byte("\n"))

	li := NewLiveIngester()
	if err := li.Feed(trimmed); err != nil {
		t.Fatal(err)
	}
	n := li.Events()
	li.Finalize()
	if li.Events() != n+1 {
		t.Errorf("Finalize consumed %d events from the tail, want 1", li.Events()-n)
	}
	post, err := Ingest(bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if li.Events() != post.Events() {
		t.Errorf("finalized events = %d, post-hoc = %d", li.Events(), post.Events())
	}
}
