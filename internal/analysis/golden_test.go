package analysis_test

import (
	"bytes"
	"testing"

	"repro/internal/analysis"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// The §4.3 memory-attack scenario, end to end: a matlab-like stream
// attacker (93.7% row hits, 78 MPKI) co-scheduled with three victims, run
// with tracing, rendered to JSONL, ingested through the streaming path,
// and analyzed into the windowed bottleneck report. The simulator is
// deterministic for a fixed seed, so the report's aggregates are pinned
// to exact values — any drift in the tracer, the JSONL codec, the ingest
// path, or the window/attribution math trips this test.
//
// The pinned picture is the paper's §4.3 story told by attribution: under
// PAR-BS the attacker (thread 0) carries the queued wait — batching and
// Marking-Cap shift the cost of its flood onto it — while the victims'
// completed-read counts stay high. The FR-FCFS companion run shows the
// victims completing far fewer reads (the denial of service), which the
// cross-policy assertions at the bottom pin relatively.

// attackStore runs the scenario under the named policy and ingests it
// through the full JSONL → Ingest pipeline.
func attackStore(t *testing.T, policy string) *analysis.Store {
	t.Helper()
	cfg := sim.DefaultConfig(4)
	cfg.WarmupCPUCycles = 0
	cfg.MeasureCPUCycles = 400_000
	cfg.Tracer = trace.NewTracer(trace.Config{})
	mix, err := workload.MixOf("attack", "matlab", "omnetpp", "hmmer", "sjeng")
	if err != nil {
		t.Fatal(err)
	}
	pol, err := sched.ByName(policy)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(cfg, mix, pol); err != nil {
		t.Fatal(err)
	}
	var jsonl bytes.Buffer
	if err := trace.WriteJSONL(&jsonl, cfg.Tracer.Log()); err != nil {
		t.Fatal(err)
	}
	store, err := analysis.Ingest(&jsonl)
	if err != nil {
		t.Fatal(err)
	}
	if store.Truncated() {
		t.Fatal("attack trace unexpectedly truncated")
	}
	return store
}

// attackReport analyzes the scenario under the named policy.
func attackReport(t *testing.T, policy string, windowCycles int64) *analysis.Report {
	t.Helper()
	return attackStore(t, policy).Analyze(analysis.Options{WindowCycles: windowCycles, TopK: 3})
}

func TestGoldenMemoryAttackPARBS(t *testing.T) {
	r := attackReport(t, "PAR-BS", 5000)

	if r.Events != 28455 || r.SpanEnd != 40000 || len(r.Windows) != 8 {
		t.Fatalf("shape drifted: events=%d span=%d windows=%d, want 28455/40000/8",
			r.Events, r.SpanEnd, len(r.Windows))
	}
	if r.Requests != 4626 || r.InFlight != 20 || len(r.Batches) != 312 {
		t.Fatalf("requests=%d inflight=%d batches=%d, want 4626/20/312",
			r.Requests, r.InFlight, len(r.Batches))
	}

	// Whole-span bottleneck attribution: bank 1 tops the bank ranking, and
	// the attacker thread 0 carries the queued wait.
	if len(r.TopBanks) == 0 || r.TopBanks[0].ID != 1 || r.TopBanks[0].Cycles != 98392 {
		t.Errorf("top bank = %+v, want b1/98392", r.TopBanks)
	}
	if len(r.TopThreads) == 0 || r.TopThreads[0].ID != 0 || r.TopThreads[0].Cycles != 431139 {
		t.Errorf("top thread = %+v, want t0/431139", r.TopThreads)
	}

	// Per-thread wait decomposition over the span, exact — including the
	// nearest-rank latency/wait percentiles (the attacker's tail is an
	// order of magnitude above the victims' even while PAR-BS shields them).
	want := []analysis.ThreadTotals{
		{Thread: 0, Reads: 1533, InFlight: 5, Unmarked: 334532, Marked: 96607, Service: 25917, Wait: 431139,
			LatencyPct: analysis.Percentiles{P50: 230, P90: 665, P99: 898},
			WaitPct:    analysis.Percentiles{P50: 212, P90: 653, P99: 888}},
		{Thread: 1, Reads: 1773, InFlight: 6, Unmarked: 37155, Marked: 12246, Service: 54956, Wait: 49401,
			LatencyPct: analysis.Percentiles{P50: 41, P90: 117, P99: 265},
			WaitPct:    analysis.Percentiles{P50: 8, P90: 70, P99: 227}},
		{Thread: 2, Reads: 976, InFlight: 1, Unmarked: 22870, Marked: 9174, Service: 26579, Wait: 32044,
			LatencyPct: analysis.Percentiles{P50: 42, P90: 126, P99: 266},
			WaitPct:    analysis.Percentiles{P50: 13, P90: 89, P99: 243}},
		{Thread: 3, Reads: 344, InFlight: 2, Unmarked: 5504, Marked: 2323, Service: 10734, Wait: 7827,
			LatencyPct: analysis.Percentiles{P50: 38, P90: 112, P99: 194},
			WaitPct:    analysis.Percentiles{P50: 3, P90: 73, P99: 150}},
	}
	for i, w := range want {
		if r.Threads[i] != w {
			t.Errorf("thread %d = %+v, want %+v", i, r.Threads[i], w)
		}
	}

	// Per-window decomposition, spot-pinned at both ends of the run.
	w0 := r.Windows[0]
	if w0.Commands != 1718 || w0.BusyCycles != 1718 || w0.Arrivals != 763 ||
		w0.Completions != 592 || w0.BatchesFormed != 40 || w0.BatchesDrained != 39 {
		t.Errorf("window 0 counters drifted: %+v", w0)
	}
	if (w0.Threads[0] != analysis.ThreadWindow{Unmarked: 54081, Marked: 13148, Service: 3316, Completions: 206,
		LatencyPct: analysis.Percentiles{P50: 253, P90: 728, P99: 883}}) {
		t.Errorf("window 0 thread 0 = %+v", w0.Threads[0])
	}
	if len(w0.TopBanks) == 0 || w0.TopBanks[0].ID != 0 || w0.TopBanks[0].Cycles != 30995 {
		t.Errorf("window 0 top bank = %+v, want b0/30995", w0.TopBanks)
	}
	w7 := r.Windows[7]
	if (w7.Threads[0] != analysis.ThreadWindow{Unmarked: 28252, Marked: 10810, Service: 3619, Completions: 218,
		LatencyPct: analysis.Percentiles{P50: 146, P90: 393, P99: 631}}) {
		t.Errorf("window 7 thread 0 = %+v", w7.Threads[0])
	}
	if len(w7.TopBanks) == 0 || w7.TopBanks[0].ID != 6 || w7.TopBanks[0].Cycles != 12446 {
		t.Errorf("window 7 top bank = %+v, want b6/12446", w7.TopBanks)
	}

	// The range query the dashboard asks ("what stalled cycles 10k–30k").
	rb := r.RangeTopBanks(10000, 30000, 3)
	if len(rb) != 3 || rb[0].ID != 1 || rb[0].Cycles != 69949 {
		t.Errorf("RangeTopBanks(10k,30k) = %+v, want b1/69949 first", rb)
	}
	rt := r.RangeTopThreads(10000, 30000, 3)
	if len(rt) != 3 || rt[0].ID != 0 || rt[0].Cycles != 210939 {
		t.Errorf("RangeTopThreads(10k,30k) = %+v, want t0/210939 first", rt)
	}
}

func TestGoldenMemoryAttackComparative(t *testing.T) {
	parbs := attackReport(t, "PAR-BS", 5000)
	frfcfs := attackReport(t, "FR-FCFS", 5000)

	// FR-FCFS forms no batches and leaves every wait cycle unmarked.
	if len(frfcfs.Batches) != 0 {
		t.Errorf("FR-FCFS formed %d batches, want 0", len(frfcfs.Batches))
	}
	for _, th := range frfcfs.Threads {
		if th.Marked != 0 {
			t.Errorf("FR-FCFS thread %d has marked wait %d, want 0", th.Thread, th.Marked)
		}
	}
	// The §4.3 denial of service, seen through completions: every victim
	// completes substantially more reads under PAR-BS (pinned loosely so
	// this survives unrelated calibration changes; the exact PAR-BS values
	// are pinned above).
	for _, i := range []int{1, 2, 3} {
		p, f := parbs.Threads[i].Reads, frfcfs.Threads[i].Reads
		if float64(p) < 1.1*float64(f) {
			t.Errorf("victim thread %d: %d reads under PAR-BS vs %d under FR-FCFS — batching should lift it",
				i, p, f)
		}
	}
}

// TestGoldenAttackDiff pins the cross-run diff of the §4.3 runs: the
// PAR-BS arm must reproduce the golden attribution (t0 wait 431139) and
// the aligned deltas must carry the comparative story — FR-FCFS gives the
// attacker less queued wait (the victims pay instead) and zero batches.
func TestGoldenAttackDiff(t *testing.T) {
	frfcfs := attackStore(t, "FR-FCFS")
	parbs := attackStore(t, "PAR-BS")

	d := analysis.Diff(frfcfs, parbs, analysis.Options{WindowCycles: 5000, TopK: 3})
	if d.Schema != analysis.DiffSchema {
		t.Fatalf("schema = %q", d.Schema)
	}
	// Both arms share the workload and span, so the diff must align clean.
	if len(d.Mismatches) != 0 {
		t.Fatalf("unexpected mismatches: %v", d.Mismatches)
	}
	// The PAR-BS arm (B) reproduces the seed golden attribution.
	if d.B.Threads[0].Wait != 431139 {
		t.Errorf("PAR-BS arm t0 wait = %d, want 431139", d.B.Threads[0].Wait)
	}
	if d.Threads[0].DWait != 431139-d.A.Threads[0].Wait {
		t.Errorf("t0 DWait = %d, inconsistent with arms %d/%d",
			d.Threads[0].DWait, d.A.Threads[0].Wait, d.B.Threads[0].Wait)
	}
	// PAR-BS marks requests; FR-FCFS never does.
	if d.Batches.BatchesA != 0 || d.Batches.BatchesB != 312 {
		t.Errorf("batches = %d/%d, want 0/312", d.Batches.BatchesA, d.Batches.BatchesB)
	}
	for _, td := range d.Threads {
		if td.A.Marked != 0 {
			t.Errorf("FR-FCFS arm thread %d has marked wait %d", td.Thread, td.A.Marked)
		}
	}
	// Every victim completes more reads under PAR-BS — positive read deltas.
	for _, i := range []int{1, 2, 3} {
		if d.Threads[i].B.Reads <= d.Threads[i].A.Reads {
			t.Errorf("victim t%d reads: %d (FR-FCFS) → %d (PAR-BS), want an increase",
				i, d.Threads[i].A.Reads, d.Threads[i].B.Reads)
		}
	}
	// The text rendering carries the golden value and the arm labels.
	var buf bytes.Buffer
	if err := d.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"A=FR-FCFS", "B=PAR-BS", "431139"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("diff text missing %q:\n%s", want, out)
		}
	}
}
