package analysis

import (
	"bytes"
	"testing"

	"repro/internal/dram"
	"repro/internal/trace"
)

// syntheticJSONL renders a plausible n-event trace: request lifecycles
// cycling over 8 banks and 4 threads, with a batch line every 64 events.
// The content does not matter for ingest speed — only the line mix does.
func syntheticJSONL(n int) []byte {
	log := &trace.Log{
		Meta: trace.Meta{
			Policy: "PAR-BS", Workload: "synthetic", Cores: 4, Banks: 8,
			CPUPerDRAM: 10, TotalDRAM: int64(n), MarkingCap: 5, ReadBufEntries: 128,
		},
	}
	for i := 0; len(log.Events) < n; i++ {
		c := int64(i)
		req := int64(i / 4)
		th := int32(i % 4)
		bk := int32(i % 8)
		switch i % 4 {
		case 0:
			log.Events = append(log.Events, trace.Event{
				Kind: trace.KindArrive, Cycle: c, Req: req, Thread: th, Bank: bk, Row: req % 512,
			})
		case 1:
			log.Events = append(log.Events, trace.Event{
				Kind: trace.KindMark, Cycle: c, Req: req, Thread: th, Bank: bk,
			})
		case 2:
			log.Events = append(log.Events, trace.Event{
				Kind: trace.KindCommand, Cycle: c, Req: req, Thread: th, Bank: bk,
				Cmd: uint8(dram.CmdRead), Row: req % 512,
			})
		case 3:
			log.Events = append(log.Events, trace.Event{
				Kind: trace.KindComplete, Cycle: c, Req: req, Thread: th, Bank: bk, Row: 40,
			})
		}
		if i%64 == 63 {
			log.Events = append(log.Events, trace.Event{
				Kind: trace.KindBatch, Cycle: c, Req: int64(i / 64), Row: 16,
			})
			log.BatchPerThread = append(log.BatchPerThread, []int32{4, 4, 4, 4})
		}
	}
	log.Events = log.Events[:n]
	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, log); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// BenchmarkIngest1M guards the acceptance bound that a million-event
// JSONL trace ingests in O(seconds): one iteration must stay well under a
// second on any plausible machine, and the events/s metric makes
// regressions visible in CI bench output.
func BenchmarkIngest1M(b *testing.B) {
	const n = 1_000_000
	raw := syntheticJSONL(n)
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := Ingest(bytes.NewReader(raw))
		if err != nil {
			b.Fatal(err)
		}
		if s.Events() != n {
			b.Fatalf("ingested %d events, want %d", s.Events(), n)
		}
	}
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkAnalyze1M times the windowed aggregation pass over an
// already-ingested million-event store.
func BenchmarkAnalyze1M(b *testing.B) {
	const n = 1_000_000
	s, err := Ingest(bytes.NewReader(syntheticJSONL(n)))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := s.Analyze(Options{})
		if len(r.Windows) == 0 {
			b.Fatal("no windows")
		}
	}
}
