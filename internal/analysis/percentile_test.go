package analysis

import "testing"

// TestPercentilesNearestRank pins the exact nearest-rank definition:
// P(p) = sorted[ceil(p/100 · n) − 1], no interpolation.
func TestPercentilesNearestRank(t *testing.T) {
	cases := []struct {
		name    string
		samples []int64
		want    Percentiles
	}{
		{"empty", nil, Percentiles{}},
		{"single", []int64{42}, Percentiles{P50: 42, P90: 42, P99: 42}},
		{"two", []int64{10, 20}, Percentiles{P50: 10, P90: 20, P99: 20}},
		// n=10: ranks ceil(5)=5, ceil(9)=9, ceil(9.9)=10 → values 50/90/100.
		{"ten", []int64{100, 10, 20, 30, 40, 50, 60, 70, 80, 90},
			Percentiles{P50: 50, P90: 90, P99: 100}},
		// n=4: ranks ceil(2)=2, ceil(3.6)=4, ceil(3.96)=4.
		{"four", []int64{4, 1, 3, 2}, Percentiles{P50: 2, P90: 4, P99: 4}},
		// n=100: p99 is the 99th value, not the max.
		{"hundred", seq100(), Percentiles{P50: 50, P90: 90, P99: 99}},
	}
	for _, tc := range cases {
		if got := percentilesOf(tc.samples); got != tc.want {
			t.Errorf("%s: percentilesOf = %+v, want %+v", tc.name, got, tc.want)
		}
	}
}

func seq100() []int64 {
	out := make([]int64, 100)
	for i := range out {
		out[i] = int64(100 - i) // reversed, so the sort matters
	}
	return out
}

// TestReportPercentiles checks the fixture's hand-derivable percentiles:
// t0 completes one read (latency 250, wait 150), t1 one read (450/400);
// the in-flight request and the write contribute no samples.
func TestReportPercentiles(t *testing.T) {
	r := FromLog(fixtureLog()).Analyze(Options{WindowCycles: 100})

	if want := (Percentiles{P50: 250, P90: 450, P99: 450}); r.LatencyPct != want {
		t.Errorf("overall LatencyPct = %+v, want %+v", r.LatencyPct, want)
	}
	if want := (Percentiles{P50: 250, P90: 250, P99: 250}); r.Threads[0].LatencyPct != want {
		t.Errorf("t0 LatencyPct = %+v, want %+v", r.Threads[0].LatencyPct, want)
	}
	if want := (Percentiles{P50: 150, P90: 150, P99: 150}); r.Threads[0].WaitPct != want {
		t.Errorf("t0 WaitPct = %+v, want %+v", r.Threads[0].WaitPct, want)
	}
	if want := (Percentiles{P50: 450, P90: 450, P99: 450}); r.Threads[1].LatencyPct != want {
		t.Errorf("t1 LatencyPct = %+v, want %+v", r.Threads[1].LatencyPct, want)
	}
	// Banks: bank 0 served t0's read, bank 1 t1's.
	if r.Banks[0].LatencyPct.P50 != 250 || r.Banks[1].LatencyPct.P50 != 450 {
		t.Errorf("bank latency p50 = %d/%d, want 250/450",
			r.Banks[0].LatencyPct.P50, r.Banks[1].LatencyPct.P50)
	}
	if r.Banks[1].WaitPct.P99 != 400 {
		t.Errorf("bank 1 WaitPct.P99 = %d, want 400", r.Banks[1].WaitPct.P99)
	}
	// Windows key on the completion cycle: t0's read completes at 250
	// (window 2), t1's at 530 (window 5).
	if r.Windows[2].LatencyPct.P50 != 250 || r.Windows[2].Threads[0].LatencyPct.P50 != 250 {
		t.Errorf("window 2 percentiles wrong: %+v", r.Windows[2].LatencyPct)
	}
	if r.Windows[5].LatencyPct.P50 != 450 || r.Windows[5].Banks[1].LatencyPct.P50 != 450 {
		t.Errorf("window 5 percentiles wrong: %+v", r.Windows[5].LatencyPct)
	}
	// Empty windows carry zero percentiles.
	if r.Windows[9].LatencyPct != (Percentiles{}) {
		t.Errorf("empty window 9 has percentiles %+v", r.Windows[9].LatencyPct)
	}
}
