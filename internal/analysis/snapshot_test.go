package analysis

import (
	"bytes"
	"strings"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	s := FromLog(fixtureLog())
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf.Bytes(), []byte(Schema+"\n")) {
		t.Fatalf("snapshot does not open with the %s magic", Schema)
	}
	back, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Meta() != s.Meta() || back.Events() != s.Events() ||
		back.Truncated() != s.Truncated() || back.Dropped() != s.Dropped() {
		t.Fatalf("round trip changed header: %+v vs %+v", back.Meta(), s.Meta())
	}
	for i := 0; i < s.Events(); i++ {
		if s.kind[i] != back.kind[i] || s.cycle[i] != back.cycle[i] ||
			s.req[i] != back.req[i] || s.row[i] != back.row[i] ||
			s.thread[i] != back.thread[i] || s.bank[i] != back.bank[i] ||
			s.rank[i] != back.rank[i] || s.channel[i] != back.channel[i] ||
			s.cmd[i] != back.cmd[i] || s.write[i] != back.write[i] {
			t.Fatalf("event %d diverged after round trip", i)
		}
	}
	if len(back.batchPT) != len(s.batchPT) {
		t.Fatalf("batch shapes lost: %d vs %d", len(back.batchPT), len(s.batchPT))
	}

	// Write → read → write must be byte-identical (the format is a cache
	// key as much as a file format).
	var again bytes.Buffer
	if err := back.WriteSnapshot(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("snapshot re-serialization is not byte-identical")
	}
}

func TestSnapshotRejectsDamage(t *testing.T) {
	s := FromLog(fixtureLog())
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	if _, err := ReadSnapshot(strings.NewReader("not a snapshot at all")); err == nil {
		t.Error("bad magic: want error")
	}

	// Flip one byte in a column: the checksum must catch it.
	bad := append([]byte(nil), good...)
	bad[len(bad)-20] ^= 0xff
	if _, err := ReadSnapshot(bytes.NewReader(bad)); err == nil {
		t.Error("flipped column byte: want checksum error")
	}

	// Truncated file: clean error, no panic.
	if _, err := ReadSnapshot(bytes.NewReader(good[:len(good)/2])); err == nil {
		t.Error("truncated snapshot: want error")
	}
}
