package analysis

import (
	"bytes"
	"strings"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	s := FromLog(fixtureLog())
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf.Bytes(), []byte(Schema+"\n")) {
		t.Fatalf("snapshot does not open with the %s magic", Schema)
	}
	back, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Meta() != s.Meta() || back.Events() != s.Events() ||
		back.Truncated() != s.Truncated() || back.Dropped() != s.Dropped() {
		t.Fatalf("round trip changed header: %+v vs %+v", back.Meta(), s.Meta())
	}
	for i := 0; i < s.Events(); i++ {
		if s.kind[i] != back.kind[i] || s.cycle[i] != back.cycle[i] ||
			s.req[i] != back.req[i] || s.row[i] != back.row[i] ||
			s.thread[i] != back.thread[i] || s.bank[i] != back.bank[i] ||
			s.rank[i] != back.rank[i] || s.channel[i] != back.channel[i] ||
			s.cmd[i] != back.cmd[i] || s.write[i] != back.write[i] {
			t.Fatalf("event %d diverged after round trip", i)
		}
	}
	if len(back.batchPT) != len(s.batchPT) {
		t.Fatalf("batch shapes lost: %d vs %d", len(back.batchPT), len(s.batchPT))
	}

	// Write → read → write must be byte-identical (the format is a cache
	// key as much as a file format).
	var again bytes.Buffer
	if err := back.WriteSnapshot(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("snapshot re-serialization is not byte-identical")
	}
}

func TestSnapshotRejectsDamage(t *testing.T) {
	s := FromLog(fixtureLog())
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	if _, err := ReadSnapshot(strings.NewReader("not a snapshot at all")); err == nil {
		t.Error("bad magic: want error")
	}

	// Flip one byte in a column: the checksum must catch it.
	bad := append([]byte(nil), good...)
	bad[len(bad)-20] ^= 0xff
	if _, err := ReadSnapshot(bytes.NewReader(bad)); err == nil {
		t.Error("flipped column byte: want checksum error")
	}

	// Truncated file: clean error, no panic.
	if _, err := ReadSnapshot(bytes.NewReader(good[:len(good)/2])); err == nil {
		t.Error("truncated snapshot: want error")
	}

	// Errors must be descriptive, never a panic: check the three classes.
	_, err := ReadSnapshot(strings.NewReader("parbs.analysis/v9\nxx"))
	if err == nil || !strings.Contains(err.Error(), "not a") {
		t.Errorf("wrong-version magic error undescriptive: %v", err)
	}
	// Corrupt the stored checksum itself: the mismatch must name both sums.
	badSum := append([]byte(nil), good...)
	badSum[len(badSum)-1] ^= 0xff
	_, err = ReadSnapshot(bytes.NewReader(badSum))
	if err == nil || !strings.Contains(err.Error(), "checksum mismatch") {
		t.Errorf("checksum error undescriptive: %v", err)
	}
}

// TestSnapshotV1Compat: v1 snapshots stay readable. The v2 body layout is
// unchanged and the checksum covers only the body, so a v1 fixture is a v2
// snapshot with the legacy magic patched in (v1 headers never carried
// ingest_truncated, which omitempty reproduces).
func TestSnapshotV1Compat(t *testing.T) {
	s := FromLog(fixtureLog())
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	v1 := append([]byte(SchemaV1+"\n"), buf.Bytes()[len(Schema)+1:]...)

	back, err := ReadSnapshot(bytes.NewReader(v1))
	if err != nil {
		t.Fatalf("v1 snapshot unreadable: %v", err)
	}
	if back.Meta() != s.Meta() || back.Events() != s.Events() {
		t.Errorf("v1 read drifted: %+v / %d events", back.Meta(), back.Events())
	}
	// Re-serializing a v1 read produces a v2 snapshot (reads upgrade).
	var again bytes.Buffer
	if err := back.WriteSnapshot(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(again.Bytes(), []byte(Schema+"\n")) {
		t.Error("v1 read did not re-serialize as v2")
	}
}

// TestSnapshotV1InfersIngestTruncation: a v1 store flagged truncated with
// zero record-time drops can only have been cut during ingest; the reader
// reconstructs the distinction v1 headers could not record.
func TestSnapshotV1InfersIngestTruncation(t *testing.T) {
	s := FromLog(fixtureLog())
	// Ingest-truncated store: flag set, dropped == 0. A v1 writer would
	// record only truncated.
	s.truncated = true
	s.ingestTruncated = true
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()[len(Schema)+1:]
	// Strip the v2-only header field so the fixture is a faithful v1 file.
	hdrLen := int(uint32(raw[0]) | uint32(raw[1])<<8 | uint32(raw[2])<<16 | uint32(raw[3])<<24)
	hdr := bytes.Replace(raw[4:4+hdrLen], []byte(`,"ingest_truncated":true`), nil, 1)
	var v1 bytes.Buffer
	v1.WriteString(SchemaV1 + "\n")
	v1.Write([]byte{byte(len(hdr)), byte(len(hdr) >> 8), byte(len(hdr) >> 16), byte(len(hdr) >> 24)})
	v1.Write(hdr)
	v1.Write(raw[4+hdrLen:])

	back, err := ReadSnapshot(bytes.NewReader(v1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !back.Truncated() || !back.IngestTruncated() {
		t.Errorf("v1 inference: Truncated=%v IngestTruncated=%v, want true/true",
			back.Truncated(), back.IngestTruncated())
	}

	// A v2 snapshot of the same store round-trips the explicit flag.
	back2, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !back2.IngestTruncated() {
		t.Error("v2 snapshot dropped the explicit ingest_truncated flag")
	}
}
