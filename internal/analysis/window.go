package analysis

import (
	"fmt"
	"sort"

	"repro/internal/trace"
)

// Windowed aggregation. The run's cycle span [0, end) is divided into
// fixed-width windows; every aggregate below is a per-window series, so
// "which bank stalled batch formation in cycles 40k–60k" is a range query
// over precomputed columns instead of a Perfetto session.
//
// Wait attribution follows the same three-phase decomposition as
// trace.Analyze (unmarked-queued / marked-waiting / service), but spread
// over windows by exact cycle overlap: a request that waited from cycle
// 900 to 1300 with 1000-cycle windows contributes 100 cycles to window 0
// and 300 to window 1. Requests still in flight when the log ends
// contribute their wait up to the end of the span — a starving request
// that never completed is precisely the one a bottleneck query must not
// drop.

// Default shape of an analysis when Options leaves the fields zero.
const (
	DefaultWindows = 32
	DefaultTopK    = 5
	// maxWindows caps the window count so a tiny requested width on a long
	// run cannot explode the report; the width is raised to fit.
	maxWindows = 4096
)

// Options shapes Analyze's aggregation.
type Options struct {
	// WindowCycles is the window width in DRAM cycles; 0 divides the run
	// span into DefaultWindows equal windows.
	WindowCycles int64
	// TopK bounds the per-window and overall bottleneck rankings
	// (default DefaultTopK).
	TopK int
}

// Contribution is one ranked entry of a bottleneck attribution: an entity
// (bank or thread) and the wait cycles it accounts for.
type Contribution struct {
	// ID is the global bank index (channel*banks+bank) or the thread index.
	ID int `json:"id"`
	// Label is the human form ("b3", "ch1:b2", "t0").
	Label string `json:"label"`
	// Cycles is the attributed wait in DRAM cycles.
	Cycles int64 `json:"cycles"`
}

// BankWindow is one bank's activity inside one window.
type BankWindow struct {
	// Commands counts DRAM commands issued to the bank.
	Commands int64 `json:"commands"`
	// QueueDepth is the time-averaged count of buffered requests targeting
	// the bank (arrival to data return).
	QueueDepth float64 `json:"queue_depth"`
	// Wait is the queued wait (unmarked + marked phases) contributed by
	// requests targeting the bank, in cycles overlapping this window.
	Wait int64 `json:"wait"`
	// LatencyPct holds exact nearest-rank percentiles of the latencies of
	// reads to this bank that completed in this window.
	LatencyPct Percentiles `json:"latency_pct"`
}

// ThreadWindow is one thread's wait decomposition inside one window.
type ThreadWindow struct {
	Unmarked int64 `json:"unmarked"`
	Marked   int64 `json:"marked"`
	Service  int64 `json:"service"`
	// Completions counts reads whose data returned in this window.
	Completions int64 `json:"completions"`
	// LatencyPct holds exact percentiles of the latencies of this thread's
	// reads that completed in this window.
	LatencyPct Percentiles `json:"latency_pct"`
}

// Window is one time slice's aggregates.
type Window struct {
	Index int `json:"index"`
	// [Start, End) in DRAM cycles; the last window may be short.
	Start int64 `json:"start"`
	End   int64 `json:"end"`
	// Commands and BusyCycles summarize command-bus occupancy: commands
	// issued, and cycles on which at least one channel issued.
	Commands   int64 `json:"commands"`
	BusyCycles int64 `json:"busy_cycles"`
	Arrivals   int64 `json:"arrivals"`
	// Completions counts read data returns.
	Completions    int64 `json:"completions"`
	BatchesFormed  int64 `json:"batches_formed"`
	BatchesDrained int64 `json:"batches_drained"`
	// Banks is indexed by global bank (channel*banks + bank); Channels by
	// channel (commands per channel); Threads by thread.
	Banks    []BankWindow   `json:"banks"`
	Channels []int64        `json:"channels,omitempty"`
	Threads  []ThreadWindow `json:"threads"`
	// TopBanks and TopThreads rank this window's wait contributors.
	TopBanks   []Contribution `json:"top_banks"`
	TopThreads []Contribution `json:"top_threads"`
	// LatencyPct holds exact percentiles of all read latencies completing
	// in this window.
	LatencyPct Percentiles `json:"latency_pct"`
}

// BankTotals is one bank's whole-span rollup.
type BankTotals struct {
	Bank    int    `json:"bank"`    // global index
	Channel int    `json:"channel"` // channel the bank lives on
	Label   string `json:"label"`
	// Commands, Wait, and QueueDepth as in BankWindow, over the full span.
	Commands   int64   `json:"commands"`
	Wait       int64   `json:"wait"`
	QueueDepth float64 `json:"queue_depth"`
	// LatencyPct and WaitPct hold exact whole-span percentiles of this
	// bank's completed-read latencies and queued waits.
	LatencyPct Percentiles `json:"latency_pct"`
	WaitPct    Percentiles `json:"wait_pct"`
}

// ThreadTotals is one thread's whole-span rollup.
type ThreadTotals struct {
	Thread int `json:"thread"`
	// Reads counts completed reads; InFlight reads that never returned
	// inside the log (their wait up to the span end is still attributed).
	Reads    int64 `json:"reads"`
	InFlight int64 `json:"in_flight"`
	Unmarked int64 `json:"unmarked"`
	Marked   int64 `json:"marked"`
	Service  int64 `json:"service"`
	// Wait is Unmarked+Marked — the attribution ranking signal.
	Wait int64 `json:"wait"`
	// LatencyPct and WaitPct hold exact whole-span percentiles of this
	// thread's completed-read latencies and queued waits (arrival to first
	// command). In-flight requests are excluded — a percentile over
	// unfinished samples would be a lower bound masquerading as a fact.
	LatencyPct Percentiles `json:"latency_pct"`
	WaitPct    Percentiles `json:"wait_pct"`
}

// BatchSpan is one batch's formation/drain timeline entry.
type BatchSpan struct {
	Batch   int64 `json:"batch"`
	Channel int32 `json:"channel,omitempty"`
	Formed  int64 `json:"formed"`
	// Drained is the drain cycle, -1 when the log ends first.
	Drained int64 `json:"drained"`
	Size    int64 `json:"size"`
	Clipped int32 `json:"clipped"`
}

// Report is the windowed analysis of one store — the typed query API's
// root object and the wire form of GET /v1/analysis/{id}/report.
type Report struct {
	Schema    string     `json:"schema"`
	Meta      trace.Meta `json:"meta"`
	Truncated bool       `json:"truncated"`
	// IngestTruncated distinguishes damage found while reading the stream
	// (torn tail, malformed line) from record-time buffer drops, which are
	// reported via Dropped. Either condition sets Truncated.
	IngestTruncated bool  `json:"ingest_truncated"`
	Dropped         int64 `json:"dropped"`
	Events          int   `json:"events"`
	// SpanEnd is the analyzed span's exclusive end ([0, SpanEnd)).
	SpanEnd      int64 `json:"span_end"`
	WindowCycles int64 `json:"window_cycles"`
	// Requests counts completed reads; InFlight requests open at span end.
	Requests int64 `json:"requests"`
	InFlight int64 `json:"in_flight"`

	Windows []Window       `json:"windows"`
	Banks   []BankTotals   `json:"banks"`
	Threads []ThreadTotals `json:"threads"`
	Batches []BatchSpan    `json:"batches"`
	// TopBanks and TopThreads are the whole-span bottleneck attribution.
	TopBanks   []Contribution `json:"top_banks"`
	TopThreads []Contribution `json:"top_threads"`
	// LatencyPct holds exact whole-span percentiles over every completed
	// read's latency.
	LatencyPct Percentiles `json:"latency_pct"`

	topK int
}

// reqOpen tracks one in-flight request during the scan.
type reqOpen struct {
	arrival  int64
	marked   int64 // -1 until marked
	firstCmd int64 // -1 until a command issues
	bank     int32 // global bank index
	thread   int32
	write    bool
}

// Analyze folds the store into a windowed report.
func (s *Store) Analyze(opt Options) *Report {
	channels := s.meta.Channels
	if channels < 1 {
		channels = 1
	}
	banksPer := s.meta.Banks
	if banksPer < 1 {
		banksPer = 1
	}
	threads := s.meta.Cores
	if threads < 1 {
		threads = 1
	}

	end := s.meta.TotalDRAM
	for _, c := range s.cycle {
		if c >= end {
			end = c + 1
		}
	}
	if end < 1 {
		end = 1
	}
	width := opt.WindowCycles
	if width <= 0 {
		width = (end + DefaultWindows - 1) / DefaultWindows
	}
	if width < 1 {
		width = 1
	}
	if n := (end + width - 1) / width; n > maxWindows {
		width = (end + maxWindows - 1) / maxWindows
	}
	nWin := int((end + width - 1) / width)
	topK := opt.TopK
	if topK <= 0 {
		topK = DefaultTopK
	}

	nBanks := channels * banksPer
	r := &Report{
		Schema: Schema, Meta: s.meta, Truncated: s.truncated,
		IngestTruncated: s.ingestTruncated, Dropped: s.dropped,
		Events: len(s.kind), SpanEnd: end, WindowCycles: width, topK: topK,
		Windows: make([]Window, nWin),
	}
	for w := range r.Windows {
		win := &r.Windows[w]
		win.Index = w
		win.Start = int64(w) * width
		win.End = min(win.Start+width, end)
		win.Banks = make([]BankWindow, nBanks)
		win.Threads = make([]ThreadWindow, threads)
		if channels > 1 {
			win.Channels = make([]int64, channels)
		}
	}
	winOf := func(c int64) int {
		if c < 0 {
			return 0
		}
		if w := int(c / width); w < nWin {
			return w
		}
		return nWin - 1
	}
	// spread distributes [a,b) across windows by exact overlap.
	spread := func(a, b int64, add func(w int, amt int64)) {
		if b > end {
			b = end
		}
		if a < 0 {
			a = 0
		}
		for a < b {
			w := winOf(a)
			stop := min(r.Windows[w].End, b)
			add(w, stop-a)
			a = stop
		}
	}

	bankOf := func(channel, bank int32) int32 {
		g := channel*int32(banksPer) + bank
		if g < 0 || g >= int32(nBanks) {
			return 0
		}
		return g
	}
	threadOK := func(t int32) bool { return t >= 0 && int(t) < threads }

	// Pass 1: command/arrival/batch counters straight into windows; request
	// lifecycles collected for the attribution pass.
	open := make(map[int64]*reqOpen)
	type closedReq struct {
		reqOpen
		completed int64
	}
	var finished []closedReq
	var lastBusy int64 = -1
	drainedAt := make(map[[2]int64]int64)
	var spans []BatchSpan
	for i := range s.kind {
		cyc := s.cycle[i]
		w := winOf(cyc)
		win := &r.Windows[w]
		switch trace.Kind(s.kind[i]) {
		case trace.KindArrive:
			win.Arrivals++
			open[s.req[i]] = &reqOpen{arrival: cyc, marked: -1, firstCmd: -1,
				bank: bankOf(s.channel[i], s.bank[i]), thread: s.thread[i], write: s.write[i]}
		case trace.KindMark:
			if q := open[s.req[i]]; q != nil && q.marked < 0 {
				q.marked = cyc
			}
		case trace.KindCommand:
			win.Commands++
			win.Banks[bankOf(s.channel[i], s.bank[i])].Commands++
			if win.Channels != nil {
				ch := s.channel[i]
				if ch >= 0 && int(ch) < len(win.Channels) {
					win.Channels[ch]++
				}
			}
			if cyc != lastBusy {
				win.BusyCycles++
				lastBusy = cyc
			}
			if q := open[s.req[i]]; q != nil && q.firstCmd < 0 {
				q.firstCmd = cyc
			}
		case trace.KindComplete:
			q := open[s.req[i]]
			if q == nil {
				continue // pre-trace arrival
			}
			delete(open, s.req[i])
			if !q.write {
				win.Completions++
				if threadOK(q.thread) {
					win.Threads[q.thread].Completions++
				}
			}
			finished = append(finished, closedReq{reqOpen: *q, completed: cyc})
		case trace.KindBatch:
			win.BatchesFormed++
			spans = append(spans, BatchSpan{Batch: s.req[i], Channel: s.channel[i],
				Formed: cyc, Drained: -1, Size: s.row[i], Clipped: s.rank[i]})
		case trace.KindBatchEnd:
			win.BatchesDrained++
			drainedAt[[2]int64{int64(s.channel[i]), s.req[i]}] = cyc
		}
	}
	for i := range spans {
		if d, ok := drainedAt[[2]int64{int64(spans[i].Channel), spans[i].Batch}]; ok {
			spans[i].Drained = d
		}
	}
	r.Batches = spans

	// Pass 2: attribution. Each request's phases spread over windows, onto
	// its thread and its bank.
	r.Banks = make([]BankTotals, nBanks)
	for b := range r.Banks {
		r.Banks[b] = BankTotals{Bank: b, Channel: b / banksPer, Label: bankLabel(b, banksPer, channels)}
	}
	r.Threads = make([]ThreadTotals, threads)
	for t := range r.Threads {
		r.Threads[t].Thread = t
	}
	samples := newSampleSet(nWin, threads, nBanks)
	attribute := func(q *reqOpen, completed int64, live bool) {
		// Queue residency (all requests, writes included): arrival → return.
		spread(q.arrival, completed, func(w int, amt int64) {
			r.Windows[w].Banks[q.bank].QueueDepth += float64(amt)
		})
		if q.write || !threadOK(q.thread) {
			return
		}
		tt := &r.Threads[q.thread]
		if live {
			tt.InFlight++
		} else {
			tt.Reads++
			r.Requests++
		}
		markEnd := q.firstCmd
		if markEnd < 0 {
			markEnd = completed
		}
		if !live {
			// Percentile samples: completed reads only. Latency is arrival →
			// data return; wait is the queued portion (arrival → first
			// command); the window is the one the read completed in.
			samples.add(q.thread, q.bank, winOf(completed),
				completed-q.arrival, markEnd-q.arrival)
		}
		unmarkedEnd := markEnd
		if q.marked >= 0 && markEnd >= q.marked {
			unmarkedEnd = q.marked
			spread(q.marked, markEnd, func(w int, amt int64) {
				r.Windows[w].Threads[q.thread].Marked += amt
				r.Windows[w].Banks[q.bank].Wait += amt
				tt.Marked += amt
				r.Banks[q.bank].Wait += amt
			})
		}
		spread(q.arrival, unmarkedEnd, func(w int, amt int64) {
			r.Windows[w].Threads[q.thread].Unmarked += amt
			r.Windows[w].Banks[q.bank].Wait += amt
			tt.Unmarked += amt
			r.Banks[q.bank].Wait += amt
		})
		if !live {
			spread(markEnd, completed, func(w int, amt int64) {
				r.Windows[w].Threads[q.thread].Service += amt
				tt.Service += amt
			})
		}
	}
	for i := range finished {
		attribute(&finished[i].reqOpen, finished[i].completed, false)
	}
	r.InFlight = int64(len(open))
	for _, q := range open {
		attribute(q, end, true)
	}

	// Normalize queue depths to time averages and roll totals up.
	for w := range r.Windows {
		win := &r.Windows[w]
		span := float64(win.End - win.Start)
		if span <= 0 {
			span = 1
		}
		for b := range win.Banks {
			r.Banks[b].Commands += win.Banks[b].Commands
			r.Banks[b].QueueDepth += win.Banks[b].QueueDepth // still cycle-sums
			win.Banks[b].QueueDepth /= span
		}
		win.TopBanks = topBanks(win.Banks, topK, banksPer, channels)
		win.TopThreads = topThreads(win.Threads, topK)
	}
	for b := range r.Banks {
		r.Banks[b].QueueDepth /= float64(end)
	}
	for t := range r.Threads {
		r.Threads[t].Wait = r.Threads[t].Unmarked + r.Threads[t].Marked
	}

	bt := make([]BankWindow, nBanks)
	for b := range r.Banks {
		bt[b] = BankWindow{Wait: r.Banks[b].Wait}
	}
	r.TopBanks = topBanks(bt, topK, banksPer, channels)
	tw := make([]ThreadWindow, threads)
	for t := range r.Threads {
		tw[t] = ThreadWindow{Unmarked: r.Threads[t].Unmarked, Marked: r.Threads[t].Marked}
	}
	r.TopThreads = topThreads(tw, topK)

	// Percentile columns, exact nearest-rank over the collected samples.
	r.LatencyPct = percentilesOf(samples.all)
	for t := range r.Threads {
		r.Threads[t].LatencyPct = percentilesOf(samples.thrLat[t])
		r.Threads[t].WaitPct = percentilesOf(samples.thrWait[t])
	}
	for b := range r.Banks {
		r.Banks[b].LatencyPct = percentilesOf(samples.bankLat[b])
		r.Banks[b].WaitPct = percentilesOf(samples.bankWait[b])
	}
	for w := range r.Windows {
		win := &r.Windows[w]
		win.LatencyPct = percentilesOf(samples.winLat[w])
		for t := range win.Threads {
			win.Threads[t].LatencyPct = percentilesOf(samples.winThrLat[w*threads+t])
		}
		for b := range win.Banks {
			win.Banks[b].LatencyPct = percentilesOf(samples.winBankLat[w*nBanks+b])
		}
	}
	return r
}

// bankLabel renders a global bank index ("b3", or "ch1:b2" on multi-channel
// systems).
func bankLabel(global, banksPer, channels int) string {
	if channels <= 1 {
		return fmt.Sprintf("b%d", global)
	}
	return fmt.Sprintf("ch%d:b%d", global/banksPer, global%banksPer)
}

// topBanks ranks banks by contributed wait, descending, dropping zeros.
func topBanks(banks []BankWindow, k, banksPer, channels int) []Contribution {
	out := make([]Contribution, 0, len(banks))
	for b := range banks {
		if banks[b].Wait > 0 {
			out = append(out, Contribution{ID: b, Label: bankLabel(b, banksPer, channels), Cycles: banks[b].Wait})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cycles != out[j].Cycles {
			return out[i].Cycles > out[j].Cycles
		}
		return out[i].ID < out[j].ID
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// topThreads ranks threads by queued wait (unmarked+marked), descending.
func topThreads(threads []ThreadWindow, k int) []Contribution {
	out := make([]Contribution, 0, len(threads))
	for t := range threads {
		if w := threads[t].Unmarked + threads[t].Marked; w > 0 {
			out = append(out, Contribution{ID: t, Label: fmt.Sprintf("t%d", t), Cycles: w})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cycles != out[j].Cycles {
			return out[i].Cycles > out[j].Cycles
		}
		return out[i].ID < out[j].ID
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// RangeTopBanks ranks banks by wait contributed inside [from, to) cycles.
// Windows partially covered by the range contribute proportionally to the
// overlap (the aggregates are window-resolution).
func (r *Report) RangeTopBanks(from, to int64, k int) []Contribution {
	banksPer := max(r.Meta.Banks, 1)
	channels := max(r.Meta.Channels, 1)
	acc := make([]BankWindow, channels*banksPer)
	r.rangeAccumulate(from, to, func(win *Window, frac float64) {
		for b := range win.Banks {
			acc[b].Wait += int64(float64(win.Banks[b].Wait) * frac)
		}
	})
	if k <= 0 {
		k = r.topK
	}
	return topBanks(acc, k, banksPer, channels)
}

// RangeTopThreads ranks threads by queued wait inside [from, to) cycles.
func (r *Report) RangeTopThreads(from, to int64, k int) []Contribution {
	acc := make([]ThreadWindow, max(r.Meta.Cores, 1))
	r.rangeAccumulate(from, to, func(win *Window, frac float64) {
		for t := range win.Threads {
			acc[t].Unmarked += int64(float64(win.Threads[t].Unmarked) * frac)
			acc[t].Marked += int64(float64(win.Threads[t].Marked) * frac)
		}
	})
	if k <= 0 {
		k = r.topK
	}
	return topThreads(acc, k)
}

// rangeAccumulate visits every window overlapping [from, to) with its
// overlap fraction.
func (r *Report) rangeAccumulate(from, to int64, visit func(win *Window, frac float64)) {
	if from < 0 {
		from = 0
	}
	if to <= 0 || to > r.SpanEnd {
		to = r.SpanEnd
	}
	for w := range r.Windows {
		win := &r.Windows[w]
		lo, hi := max(win.Start, from), min(win.End, to)
		if hi <= lo {
			continue
		}
		visit(win, float64(hi-lo)/float64(win.End-win.Start))
	}
}
