// Command parbs-sim runs one multiprogrammed workload under one DRAM
// scheduler and prints the paper's evaluation metrics.
//
// Usage:
//
//	parbs-sim -sched PAR-BS -mix libquantum,mcf,GemsFDTD,xalancbmk
//	parbs-sim -sched STFM -mix CSII
//	parbs-sim -sched PAR-BS -mix CSI -telemetry run.json [-epoch 1024]
//	parbs-sim -sched PAR-BS -mix CSI -trace run.trace.json -trace-events run.jsonl
//	parbs-sim -device ddr3-1333 -mix CSI
//	parbs-sim -list
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	parbs "repro"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/memctrl"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		schedName = flag.String("sched", "PAR-BS", "scheduler: "+strings.Join(sched.Names(), ", "))
		mixSpec   = flag.String("mix", "CSI", "named mix (CSI, CSII, CSIII, F9) or comma-separated benchmarks")
		cycles    = flag.Int64("cycles", 2_000_000, "measured CPU cycles")
		warmup    = flag.Int64("warmup", -1, "warmup CPU cycles discarded from statistics (-1 = paper default)")
		seed      = flag.Int64("seed", 1, "trace seed")
		device    = flag.String("device", "", "DRAM device: "+strings.Join(parbs.DeviceNames(), ", "))
		list      = flag.Bool("list", false, "list benchmarks and named mixes, then exit")
		timeline  = flag.Int64("timeline", 0, "print an ASCII per-bank command timeline of the first N DRAM cycles")
		batchInfo = flag.Bool("batchstats", false, "print PAR-BS batch telemetry (size/duration histograms)")
		telFile   = flag.String("telemetry", "", "write a JSON telemetry run report (schema "+telemetry.Schema+") to this file")
		epoch     = flag.Int64("epoch", 0, "telemetry sampling epoch in DRAM cycles (default 1024)")
		traceFile = flag.String("trace", "", "write a Chrome trace-event JSON (Perfetto/chrome://tracing) to this file")
		eventFile = flag.String("trace-events", "", "write a JSONL lifecycle event log (schema "+trace.Schema+", for parbs-trace analyze) to this file")
		maxEvents = flag.Int("trace-max-events", 0, "cap buffered trace events (default 2^20)")
		timeout   = flag.Duration("timeout", 0, "wall-clock deadline for the whole run, e.g. 30s (0 = none)")
		ticked    = flag.Bool("ticked", false, "force the legacy one-cycle-per-iteration run loop (disables next-event cycle skipping)")
		channels  = flag.Int("channels", 0, "DRAM channels (0 scales with cores as in the paper: 1/2/4 for 4/8/16)")
		chanMode  = flag.String("channel-mode", "", "channel organization: "+strings.Join(parbs.ChannelModeNames(), ", ")+" (default lockstep, the paper's ganged organization)")
		par       = flag.Int("parallelism", 0, "worker goroutines for -channel-mode independent (0 = GOMAXPROCS, 1 = sequential; results are identical either way)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the run (pprof format) to this file")
		memProf   = flag.String("memprofile", "", "write an end-of-run heap profile (pprof format) to this file")
	)
	flag.Parse()

	if *list {
		fmt.Println("schedulers:", strings.Join(sched.Names(), ", "))
		fmt.Println("named mixes: CSI, CSII, CSIII, F9")
		fmt.Println("benchmarks (Table 3):")
		for _, p := range workload.Benchmarks() {
			fmt.Printf("  %-12s cat=%d MPKI=%.2f RBhit=%.3f BLP=%.2f\n",
				p.Name, p.Category, p.MPKI, p.RowHit, p.BLP)
		}
		return
	}

	mix, err := resolveMix(*mixSpec)
	if err != nil {
		fatal(err)
	}
	cfg := sim.DefaultConfig(len(mix.Benchmarks))
	cfg.MeasureCPUCycles = *cycles
	if *warmup >= 0 {
		cfg.WarmupCPUCycles = *warmup
	}
	cfg.Seed = *seed
	cfg.ForceTicked = *ticked
	if *timeout > 0 {
		// The deadline is the RunContext-style cooperative one: the shared
		// run and every alone baseline poll it at their epoch checkpoints.
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		cfg.Context = ctx
	}
	dev, err := parbs.ParseDevice(*device)
	if err != nil {
		fatal(err)
	}
	if dev == parbs.DDR3_1333 {
		cfg.Timing = dram.DDR3_1333()
		cfg.CPUCyclesPerDRAM = 6 // 4 GHz over a 667 MHz command clock
	}
	mode, err := parbs.ParseChannelMode(*chanMode)
	if err != nil {
		fatal(err)
	}
	// Validate the flag shape through the public API so the CLI rejects
	// exactly what RunContext would.
	sys := parbs.DefaultSystem(len(mix.Benchmarks))
	sys.Channels = *channels
	sys.ChannelMode = mode
	sys.Device = dev
	if err := sys.Validate(); err != nil {
		fatal(err)
	}
	if *par < 0 {
		fatal(fmt.Errorf("-parallelism needs a non-negative worker count, got %d", *par))
	}
	if *channels > 0 {
		cfg.Geometry.Channels = *channels
	}
	cfg.Parallelism = *par
	var tl *memctrl.Timeline
	if *timeline > 0 {
		tl = memctrl.NewTimeline(cfg.Geometry.Banks)
		tl.WithThreads = true
		cfg.CommandLog = tl.Record
	}
	var probe *telemetry.Probe
	if *telFile != "" {
		probe = telemetry.NewProbe(telemetry.Config{EpochDRAMCycles: *epoch})
		cfg.Probe = probe
	}
	var tracer *trace.Tracer
	if *traceFile != "" || *eventFile != "" {
		tracer = trace.NewTracer(trace.Config{MaxEvents: *maxEvents})
		cfg.Tracer = tracer
	}

	policy, err := sched.ByName(*schedName)
	if err != nil {
		fatal(err)
	}
	// Profiling covers the shared run plus the alone baselines computed for
	// the slowdown columns — all the simulation work the invocation does.
	// Inspect with `go tool pprof <binary|.> <file>`.
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
	}
	var res sim.Result
	runAlone := sim.RunAlone
	if mode == parbs.Independent {
		name := *schedName
		res, err = sim.RunIndependent(cfg, mix, func() memctrl.Policy {
			p, ferr := sched.ByName(name)
			if ferr != nil {
				panic(ferr) // unreachable: ByName succeeded above
			}
			return p
		})
		runAlone = sim.RunAloneIndependent
	} else {
		res, err = sim.Run(cfg, mix, policy)
	}
	if err != nil {
		fatal(err)
	}
	chanOrg := "lock-step"
	if mode == parbs.Independent {
		chanOrg = "independent"
	}
	var cs []metrics.Comparison
	aloneMCPI := make([]float64, len(res.Threads))
	fmt.Printf("mix %s under %s (%d cores, %d %s channels)\n",
		mix.Name, res.Policy, cfg.Cores, cfg.Geometry.Channels, chanOrg)
	fmt.Printf("%-12s %10s %8s %8s %8s %8s %10s\n",
		"thread", "slowdown", "IPC", "MCPI", "BLP", "RBhit", "AST/req")
	for i, th := range res.Threads {
		alone, err := runAlone(cfg, mix.Benchmarks[i])
		if err != nil {
			fatal(err)
		}
		aloneMCPI[i] = alone.CPU.MCPI()
		c := metrics.Comparison{Alone: alone, Shared: th}
		cs = append(cs, c)
		fmt.Printf("%-12s %10.2f %8.3f %8.2f %8.2f %8.3f %10.1f\n",
			th.Benchmark, c.MemSlowdown(), th.CPU.IPC(), th.CPU.MCPI(),
			th.Mem.BLP(), th.Mem.RowHitRate(), th.CPU.ASTPerReq())
	}
	fmt.Printf("\nunfairness        %8.2f\n", metrics.Unfairness(cs))
	fmt.Printf("weighted speedup  %8.3f\n", metrics.WeightedSpeedup(cs))
	fmt.Printf("hmean speedup     %8.3f\n", metrics.HmeanSpeedup(cs))
	fmt.Printf("avg AST/req       %8.1f cycles\n", metrics.AvgASTPerReq(cs))
	fmt.Printf("worst-case lat.   %8d cycles\n", metrics.WorstCaseLatency(cs, cfg.CPUCyclesPerDRAM))
	fmt.Printf("bus utilization   %8.1f%%\n", 100*res.BusUtilization())
	if total := res.EvaluatedCycles + res.SkippedCycles; total > 0 {
		fmt.Printf("engine            %8d of %d DRAM cycles evaluated (%.1f%% skipped)\n",
			res.EvaluatedCycles, total, 100*float64(res.SkippedCycles)/float64(total))
	}
	if tl != nil {
		fmt.Printf("\n%s", tl.Render(0, *timeline))
	}
	if *batchInfo {
		if mode == parbs.Independent {
			fmt.Println("\n-batchstats is per-controller state; unavailable with -channel-mode independent")
		} else if eng, ok := policy.(*core.Engine); ok {
			fmt.Printf("\n%s", eng.BatchStats())
			fmt.Printf("max batches any request waited unmarked: %d\n", eng.MaxBatchWait())
		} else {
			fmt.Println("\n-batchstats requires a PAR-BS scheduler")
		}
	}
	if probe != nil {
		rep := probe.Report(telemetry.ReportMeta{
			Policy:     res.Policy,
			Workload:   mix.Name,
			Benchmarks: workload.Names(mix.Benchmarks),
			AloneMCPI:  aloneMCPI,
		})
		data, err := rep.JSON()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*telFile, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("\ntelemetry: %d epochs (%d DRAM cycles each) written to %s\n",
			rep.Epochs, rep.EpochDRAMCycles, *telFile)
	}
	if tracer != nil {
		if *traceFile != "" {
			if err := writeTrace(*traceFile, tracer.WriteChrome); err != nil {
				fatal(err)
			}
			fmt.Printf("\ntrace: %d events written to %s (load in Perfetto or chrome://tracing)\n",
				tracer.Events(), *traceFile)
		}
		if *eventFile != "" {
			if err := writeTrace(*eventFile, tracer.WriteJSONL); err != nil {
				fatal(err)
			}
			fmt.Printf("trace events: %d written to %s (analyze with parbs-trace analyze)\n",
				tracer.Events(), *eventFile)
		}
		if n := tracer.Dropped(); n > 0 {
			fmt.Printf("trace: %d events dropped after the buffer filled; raise -trace-max-events\n", n)
		}
	}
	if *cpuProf != "" {
		pprof.StopCPUProfile()
		fmt.Printf("\ncpu profile written to %s\n", *cpuProf)
	}
	if *memProf != "" {
		writeHeapProfile(*memProf)
		fmt.Printf("heap profile written to %s\n", *memProf)
	}
}

// writeHeapProfile records an end-of-run heap snapshot; the GC beforehand
// settles the live-object numbers so retained memory reads true.
func writeHeapProfile(path string) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
}

// writeTrace renders one tracer output into path.
func writeTrace(path string, render func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := render(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func resolveMix(spec string) (workload.Mix, error) {
	switch spec {
	case "CSI":
		return workload.CaseStudyI(), nil
	case "CSII":
		return workload.CaseStudyII(), nil
	case "CSIII":
		return workload.CaseStudyIII(), nil
	case "F9":
		return workload.Figure9Workload(), nil
	}
	names := strings.Split(spec, ",")
	for i := range names {
		names[i] = strings.TrimSpace(names[i])
	}
	return workload.MixOf("custom", names...)
}

func fatal(err error) {
	if errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "parbs-sim: -timeout deadline exceeded:", err)
		os.Exit(124)
	}
	fmt.Fprintln(os.Stderr, "parbs-sim:", err)
	os.Exit(1)
}
