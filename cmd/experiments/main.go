// Command experiments regenerates every table and figure of the paper's
// evaluation. By default it runs the full suite at full fidelity and writes
// one text file per artifact under -out, plus a combined report on stdout.
//
// Usage:
//
//	experiments [-run F5,T4,...] [-quick] [-out results] [-json] [-seed N]
//
// With -json (requires -out), each experiment additionally writes a
// versioned machine-readable <ID>.json artifact (schema "parbs.exp/v1")
// next to its <ID>.txt table.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/exp"
)

func main() {
	var (
		runList = flag.String("run", "", "comma-separated experiment IDs (default: all)")
		quick   = flag.Bool("quick", false, "reduced workload counts and cycles")
		outDir  = flag.String("out", "", "directory for per-experiment result files")
		jsonOut = flag.Bool("json", false, "also write <ID>.json artifacts under -out")
		seed    = flag.Int64("seed", 1, "workload construction seed")
		list    = flag.Bool("list", false, "list experiment IDs and exit")
		par     = flag.Int("parallelism", 0, "worker goroutines for independent-channel runs (0 = GOMAXPROCS; results identical)")
	)
	flag.Parse()

	if *jsonOut && *outDir == "" {
		fatal(fmt.Errorf("-json requires -out"))
	}

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	var selected []exp.Experiment
	if *runList == "" {
		selected = exp.All()
	} else {
		for _, id := range strings.Split(*runList, ",") {
			e, err := exp.ByID(strings.TrimSpace(id))
			if err != nil {
				fatal(err)
			}
			selected = append(selected, e)
		}
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
	}

	// Ctrl-C (or SIGTERM) cancels the context; running simulations abort at
	// their next checkpoint, parallel workers stop scheduling new runs, and
	// artifacts completed before the interrupt stay flushed on disk — no
	// partially written files.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *par < 0 {
		fatal(fmt.Errorf("-parallelism needs a non-negative worker count, got %d", *par))
	}
	x := exp.NewContext(*quick)
	x.Seed = *seed
	x.Ctx = ctx
	x.Parallelism = *par
	completed := 0
	for _, e := range selected {
		if ctx.Err() != nil {
			interrupted(completed, len(selected))
		}
		start := time.Now()
		fmt.Fprintf(os.Stderr, "running %s (%s)...\n", e.ID, e.Title)
		tb, err := e.Run(x)
		if err != nil {
			if ctx.Err() != nil {
				interrupted(completed, len(selected))
			}
			fatal(fmt.Errorf("%s: %w", e.ID, err))
		}
		fmt.Fprintf(os.Stderr, "  done in %v\n", time.Since(start).Round(time.Millisecond))
		fmt.Println(tb.String())
		if *outDir != "" {
			path := filepath.Join(*outDir, e.ID+".txt")
			if err := os.WriteFile(path, []byte(tb.String()), 0o644); err != nil {
				fatal(err)
			}
			if *jsonOut {
				data, err := tb.JSON()
				if err != nil {
					fatal(fmt.Errorf("%s: %w", e.ID, err))
				}
				path := filepath.Join(*outDir, e.ID+".json")
				if err := os.WriteFile(path, data, 0o644); err != nil {
					fatal(err)
				}
			}
		}
		completed++
	}
}

// interrupted reports a clean early exit: everything finished before the
// signal is already on disk, the in-flight experiment is discarded whole.
func interrupted(completed, selected int) {
	fmt.Fprintf(os.Stderr, "experiments: interrupted; %d of %d artifacts completed and flushed\n",
		completed, selected)
	os.Exit(130)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
